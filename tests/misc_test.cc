// Coverage for the small support pieces: domain registry, timers, table
// rendering, annotated-table rendering, and a storage round-trip fuzz
// with adversarial strings.

#include <gtest/gtest.h>

#include <filesystem>

#include "common/random.h"
#include "common/timer.h"
#include "pattern/domain.h"
#include "pattern/storage.h"
#include "relational/table.h"

namespace pcdb {
namespace {

/// Prevents the optimizer from deleting a computation feeding a timer.
void benchmark_do_not_optimize(double& value) {
  asm volatile("" : "+m"(value));
}

TEST(DomainRegistryTest, ExactAndBaseNameLookup) {
  DomainRegistry registry;
  EXPECT_TRUE(registry.empty());
  registry.SetDomain("day", {Value("Mon"), Value("Tue")});
  ASSERT_NE(registry.Lookup("day"), nullptr);
  EXPECT_EQ(registry.Lookup("day")->size(), 2u);
  // Qualified lookups fall back to the base name.
  ASSERT_NE(registry.Lookup("W.day"), nullptr);
  EXPECT_EQ(registry.Lookup("W.day")->size(), 2u);
  EXPECT_EQ(registry.Lookup("week"), nullptr);
  EXPECT_FALSE(registry.empty());
}

TEST(DomainRegistryTest, QualifiedRegistrationBeatsBaseName) {
  DomainRegistry registry;
  registry.SetDomain("day", {Value("Mon")});
  registry.SetDomain("W.day", {Value("Mon"), Value("Tue"), Value("Wed")});
  EXPECT_EQ(registry.Lookup("W.day")->size(), 3u);
  EXPECT_EQ(registry.Lookup("day")->size(), 1u);
  EXPECT_EQ(registry.Lookup("X.day")->size(), 1u);  // falls back to base
}

TEST(DomainRegistryTest, SetDomainReplaces) {
  DomainRegistry registry;
  registry.SetDomain("a", {Value(1)});
  registry.SetDomain("a", {Value(1), Value(2)});
  EXPECT_EQ(registry.Lookup("a")->size(), 2u);
}

TEST(WallTimerTest, MeasuresElapsedTime) {
  WallTimer timer;
  double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i * 0.5;
  benchmark_do_not_optimize(sink);
  EXPECT_GT(timer.ElapsedMicros(), 0.0);
  EXPECT_GE(timer.ElapsedMillis(), 0.0);
  double before = timer.ElapsedMicros();
  timer.Reset();
  EXPECT_LE(timer.ElapsedMicros(), before + 1e6);
}

TEST(TableRenderTest, TruncatesLongTables) {
  Table t(Schema({{"n", ValueType::kInt64}}));
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(t.Append({Value(i)}).ok());
  }
  std::string rendered = t.ToString(/*max_rows=*/3);
  EXPECT_NE(rendered.find("(7 more rows)"), std::string::npos);
  EXPECT_NE(rendered.find("| n |"), std::string::npos);
}

TEST(StorageFuzzTest, AdversarialStringsRoundTrip) {
  Rng rng(13579);
  const std::vector<std::string> nasty = {
      "*",    "\\",  "|",        "\\*", "a|b",  "*|*",
      "\\\\", "x*y", "trailing\\", "",   "pipe|", "norm"};
  auto dir = std::filesystem::temp_directory_path() / "pcdb_storage_fuzz";
  for (int round = 0; round < 25; ++round) {
    std::filesystem::remove_all(dir);
    AnnotatedDatabase adb;
    ASSERT_TRUE(adb.CreateTable("t", Schema({{"a", ValueType::kString},
                                             {"b", ValueType::kString}}))
                    .ok());
    int rows = static_cast<int>(rng.UniformInt(0, 6));
    for (int i = 0; i < rows; ++i) {
      ASSERT_TRUE(
          adb.AddRow("t", {rng.Pick(nasty), rng.Pick(nasty)}).ok());
    }
    int patterns = static_cast<int>(rng.UniformInt(0, 4));
    for (int i = 0; i < patterns; ++i) {
      std::vector<Pattern::Cell> cells;
      for (int j = 0; j < 2; ++j) {
        cells.push_back(rng.Bernoulli(0.4)
                            ? Pattern::Wildcard()
                            : Pattern::Cell(Value(rng.Pick(nasty))));
      }
      ASSERT_TRUE(adb.AddPattern("t", Pattern(std::move(cells))).ok());
    }
    ASSERT_TRUE(SaveAnnotatedDatabase(adb, dir.string()).ok());
    auto loaded = LoadAnnotatedDatabase(dir.string());
    ASSERT_TRUE(loaded.ok()) << "round " << round << ": "
                             << loaded.status().ToString();
    EXPECT_TRUE((*loaded->database().GetTable("t"))
                    ->BagEquals(**adb.database().GetTable("t")))
        << "round " << round;
    EXPECT_TRUE(loaded->patterns("t").SetEquals(adb.patterns("t")))
        << "round " << round;
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace pcdb
