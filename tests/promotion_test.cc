#include <gtest/gtest.h>

#include "common/random.h"
#include "pattern/minimize.h"
#include "pattern/promotion.h"

namespace pcdb {
namespace {

Pattern P(const std::vector<std::string>& fields) {
  std::vector<Pattern::Cell> cells;
  for (const auto& f : fields) {
    if (f == "*") {
      cells.push_back(Pattern::Wildcard());
    } else {
      cells.push_back(Value(f));
    }
  }
  return Pattern(std::move(cells));
}

/// The extended example of §5.1: R(A,B,C) with patterns p1=(a,c,∗),
/// p2=(b,∗,d), p3=(a,e,d); R'(A',B') with rows (a,g),(b,g),(c,h) and
/// pattern p0=(∗,g); join R.A = R'.A'.
struct Section51Example {
  Section51Example() {
    r_patterns.Add(P({"a", "c", "*"}));
    r_patterns.Add(P({"b", "*", "d"}));
    r_patterns.Add(P({"a", "e", "d"}));
    rp_patterns.Add(P({"*", "g"}));
    rp_data = Table(Schema(
        {{"A2", ValueType::kString}, {"B2", ValueType::kString}}));
    PCDB_CHECK(rp_data.Append({"a", "g"}).ok());
    PCDB_CHECK(rp_data.Append({"b", "g"}).ok());
    PCDB_CHECK(rp_data.Append({"c", "h"}).ok());
    r_data = Table(Schema({{"A", ValueType::kString},
                           {"B", ValueType::kString},
                           {"C", ValueType::kString}}));
  }

  PatternSet r_patterns;
  PatternSet rp_patterns;
  Table r_data;
  Table rp_data;
};

TEST(PromotionTest, Section51ExtendedExample) {
  Section51Example ex;
  PromotionStats stats;
  auto promoted = PromoteOneDirection(ex.rp_patterns, 0, ex.rp_data,
                                      ex.r_patterns, 0, PromotionOptions{},
                                      &stats);
  // The paper derives exactly the unifiers (∗,c,d) and (∗,e,d).
  ASSERT_EQ(promoted.size(), 2u);
  PatternSet unifiers;
  for (const auto& [u, p0_index] : promoted) {
    unifiers.Add(u);
    EXPECT_EQ(p0_index, 0u);
  }
  EXPECT_TRUE(unifiers.Contains(P({"*", "c", "d"})));
  EXPECT_TRUE(unifiers.Contains(P({"*", "e", "d"})));
  EXPECT_EQ(stats.attempts, 1u);
  EXPECT_EQ(stats.trivial_failures, 0u);
  EXPECT_GT(stats.choice_sets_tested, 0u);
}

TEST(PromotionTest, Section51FullJoinOutput) {
  Section51Example ex;
  PatternSet out = InstanceAwarePatternJoin(ex.r_patterns, 0, ex.r_data,
                                            ex.rp_patterns, 0, ex.rp_data);
  // Promoted patterns (∗,c,d,∗,g) and (∗,e,d,∗,g) appear in the result.
  EXPECT_TRUE(out.Contains(P({"*", "c", "d", "*", "g"})))
      << out.ToString();
  EXPECT_TRUE(out.Contains(P({"*", "e", "d", "*", "g"})))
      << out.ToString();
}

TEST(PromotionTest, MotivatingExampleSummarizesTeams) {
  // Example 9: M(ID, resp, reason) with (∗,A,∗),(∗,B,∗) patterns joined
  // with the complete σ_spec=hw(T) whose data has exactly teams A and B
  // promotes to the all-wildcard pattern.
  PatternSet maint;
  maint.Add(P({"*", "A", "*"}));
  maint.Add(P({"*", "B", "*"}));
  maint.Add(P({"*", "C", "*"}));
  Table maint_data(Schema({{"ID", ValueType::kString},
                           {"responsible", ValueType::kString},
                           {"reason", ValueType::kString}}));
  ASSERT_TRUE(maint_data.Append({"tw37", "A", "disk failure"}).ok());
  ASSERT_TRUE(maint_data.Append({"tw83", "B", "unknown"}).ok());
  PatternSet teams;
  teams.Add(P({"*", "*"}));
  Table teams_data(Schema({{"name", ValueType::kString},
                           {"specialization", ValueType::kString}}));
  ASSERT_TRUE(teams_data.Append({"A", "hardware"}).ok());
  ASSERT_TRUE(teams_data.Append({"B", "hardware"}).ok());

  PatternSet out = InstanceAwarePatternJoin(maint, 1, maint_data, teams, 0,
                                            teams_data);
  PatternSet minimized = Minimize(out);
  // "The entire result of the join is complete": (∗,∗,∗,∗,∗).
  ASSERT_EQ(minimized.size(), 1u);
  EXPECT_EQ(minimized[0], Pattern::AllWildcards(5));
}

TEST(PromotionTest, EmptyAllowableDomainYieldsVacuousPattern) {
  // If no source row matches p0, the p0-part of the join is empty and
  // complete forever: the fully general target pattern is sound.
  PatternSet source;
  source.Add(P({"*", "g"}));
  Table source_data(
      Schema({{"A2", ValueType::kString}, {"B2", ValueType::kString}}));
  ASSERT_TRUE(source_data.Append({"a", "h"}).ok());  // no row matches (∗,g)
  PatternSet target;
  target.Add(P({"x", "y"}));
  auto promoted = PromoteOneDirection(source, 0, source_data, target, 0,
                                      PromotionOptions{}, nullptr);
  ASSERT_EQ(promoted.size(), 1u);
  EXPECT_EQ(promoted[0].first, Pattern::AllWildcards(2));
}

TEST(PromotionTest, TrivialFailureWhenASetEmpty) {
  PatternSet source;
  source.Add(P({"*", "g"}));
  Table source_data(
      Schema({{"A2", ValueType::kString}, {"B2", ValueType::kString}}));
  ASSERT_TRUE(source_data.Append({"a", "g"}).ok());
  ASSERT_TRUE(source_data.Append({"b", "g"}).ok());
  PatternSet target;
  target.Add(P({"a", "x"}));  // covers value a only; no pattern for b
  PromotionStats stats;
  auto promoted = PromoteOneDirection(source, 0, source_data, target, 0,
                                      PromotionOptions{}, &stats);
  EXPECT_TRUE(promoted.empty());
  EXPECT_EQ(stats.trivial_failures, 1u);
}

TEST(PromotionTest, SourcePatternsWithConstantAtJoinDoNotPromote) {
  PatternSet source;
  source.Add(P({"a", "g"}));  // constant at the join attribute
  Table source_data(
      Schema({{"A2", ValueType::kString}, {"B2", ValueType::kString}}));
  ASSERT_TRUE(source_data.Append({"a", "g"}).ok());
  PatternSet target;
  target.Add(P({"a", "x"}));
  PromotionStats stats;
  auto promoted = PromoteOneDirection(source, 0, source_data, target, 0,
                                      PromotionOptions{}, &stats);
  EXPECT_TRUE(promoted.empty());
  EXPECT_EQ(stats.attempts, 0u);
}

TEST(PromotionTest, WildcardTargetPatternsFillChoiceSets) {
  // A target pattern with '*' at the join attribute can stand in for any
  // required value.
  PatternSet source;
  source.Add(P({"*", "g"}));
  Table source_data(
      Schema({{"A2", ValueType::kString}, {"B2", ValueType::kString}}));
  ASSERT_TRUE(source_data.Append({"a", "g"}).ok());
  ASSERT_TRUE(source_data.Append({"b", "g"}).ok());
  PatternSet target;
  target.Add(P({"a", "c"}));
  target.Add(P({"*", "*"}));  // covers b (and everything else)
  auto promoted = PromoteOneDirection(source, 0, source_data, target, 0,
                                      PromotionOptions{}, nullptr);
  PatternSet unifiers;
  for (const auto& [u, i] : promoted) unifiers.Add(u);
  // Choice {a→(∗,c), b→(∗,∗)} unifies to (∗,c); choice {a→(∗,∗), b→(∗,∗)}
  // gives (∗,∗), which subsumes (∗,c).
  EXPECT_TRUE(unifiers.Contains(P({"*", "*"}))) << unifiers.ToString();
  // Disabling wildcard stand-ins makes the b A-set empty.
  PromotionOptions no_wild;
  no_wild.include_wildcard_patterns = false;
  PromotionStats stats;
  auto none = PromoteOneDirection(source, 0, source_data, target, 0, no_wild,
                                  &stats);
  EXPECT_TRUE(none.empty());
  EXPECT_EQ(stats.trivial_failures, 1u);
}

/// Generates a random promotion scenario and checks that every
/// optimization configuration yields the same minimized result as the
/// unoptimized search.
TEST(PromotionTest, OptimizationsPreserveResults) {
  Rng rng(4242);
  for (int round = 0; round < 25; ++round) {
    // Source side: arity 2, join attr 0.
    PatternSet source;
    source.Add(P({"*", "g" + std::to_string(rng.UniformInt(0, 1))}));
    Table source_data(
        Schema({{"A2", ValueType::kString}, {"B2", ValueType::kString}}));
    for (int i = 0; i < 6; ++i) {
      ASSERT_TRUE(
          source_data
              .Append({"v" + std::to_string(rng.UniformInt(0, 2)),
                       "g" + std::to_string(rng.UniformInt(0, 1))})
              .ok());
    }
    // Target side: arity 3, join attr 0.
    PatternSet target;
    const int n = static_cast<int>(rng.UniformInt(2, 10));
    for (int i = 0; i < n; ++i) {
      std::vector<Pattern::Cell> cells;
      cells.push_back(rng.Bernoulli(0.3)
                          ? Pattern::Wildcard()
                          : Pattern::Cell(Value(
                                "v" + std::to_string(rng.UniformInt(0, 2)))));
      for (int j = 0; j < 2; ++j) {
        cells.push_back(rng.Bernoulli(0.5)
                            ? Pattern::Wildcard()
                            : Pattern::Cell(Value(
                                  "w" + std::to_string(rng.UniformInt(0, 2)))));
      }
      target.Add(Pattern(std::move(cells)));
    }

    PromotionOptions baseline;
    baseline.enable_pruning = false;
    baseline.enable_subsumption_detection = false;
    baseline.smallest_sets_first = false;
    auto collect = [&](const PromotionOptions& opts) {
      PatternSet set;
      for (const auto& [u, i] :
           PromoteOneDirection(source, 0, source_data, target, 0, opts,
                               nullptr)) {
        set.Add(u);
      }
      return Minimize(set);
    };
    PatternSet expected = collect(baseline);
    for (int mask = 1; mask < 8; ++mask) {
      PromotionOptions opts;
      opts.enable_pruning = mask & 1;
      opts.enable_subsumption_detection = mask & 2;
      opts.smallest_sets_first = mask & 4;
      PatternSet got = collect(opts);
      EXPECT_TRUE(got.SetEquals(expected))
          << "round " << round << " mask " << mask << "\nexpected:\n"
          << expected.ToString() << "got:\n"
          << got.ToString();
    }
  }
}

TEST(PromotionTest, OptimizationsReduceTestedSets) {
  // The paper reports 40–99% fewer set tests with the optimizations.
  Section51Example ex;
  // Enlarge the target side so pruning has something to do.
  for (int i = 0; i < 6; ++i) {
    ex.r_patterns.Add(P({"a", "x" + std::to_string(i), "y"}));
    ex.r_patterns.Add(P({"b", "y" + std::to_string(i), "z"}));
  }
  PromotionOptions fast;
  PromotionStats fast_stats;
  PromoteOneDirection(ex.rp_patterns, 0, ex.rp_data, ex.r_patterns, 0, fast,
                      &fast_stats);
  PromotionOptions slow;
  slow.enable_pruning = false;
  slow.enable_subsumption_detection = false;
  PromotionStats slow_stats;
  PromoteOneDirection(ex.rp_patterns, 0, ex.rp_data, ex.r_patterns, 0, slow,
                      &slow_stats);
  EXPECT_LT(fast_stats.choice_sets_tested, slow_stats.choice_sets_tested);
  EXPECT_EQ(slow_stats.choice_sets_tested, slow_stats.naive_choice_sets);
}

TEST(PromotionTest, TimeoutProducesPartialSoundResult) {
  // A pathological instance with a huge choice-set space and a timeout
  // that must fire.
  PatternSet source;
  source.Add(P({"*", "g"}));
  Table source_data(
      Schema({{"A2", ValueType::kString}, {"B2", ValueType::kString}}));
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(source_data.Append({"v" + std::to_string(i), "g"}).ok());
  }
  PatternSet target;
  for (int v = 0; v < 8; ++v) {
    for (int j = 0; j < 40; ++j) {
      target.Add(P({"v" + std::to_string(v), "b" + std::to_string(j),
                    "c" + std::to_string(j % 3)}));
    }
  }
  PromotionOptions opts;
  opts.timeout_millis = 0.01;
  opts.enable_subsumption_detection = false;
  PromotionStats stats;
  PromoteOneDirection(source, 0, source_data, target, 0, opts, &stats);
  EXPECT_TRUE(stats.timed_out);
}

TEST(PromotionTest, PromotedPatternsShrinkMinimizedOutput) {
  // Table 9's observation: promotion *reduces* the minimized output size
  // because promoted patterns subsume regular join outputs.
  PatternSet maint;
  for (const char* team : {"A", "B"}) {
    for (int i = 0; i < 3; ++i) {
      maint.Add(P({"id" + std::to_string(i), team, "*"}));
    }
    maint.Add(P({"*", team, "*"}));
  }
  Table maint_data(Schema({{"ID", ValueType::kString},
                           {"responsible", ValueType::kString},
                           {"reason", ValueType::kString}}));
  ASSERT_TRUE(maint_data.Append({"id0", "A", "r"}).ok());
  ASSERT_TRUE(maint_data.Append({"id1", "B", "r"}).ok());
  PatternSet teams;
  teams.Add(P({"*", "*"}));
  Table teams_data(Schema({{"name", ValueType::kString},
                           {"spec", ValueType::kString}}));
  ASSERT_TRUE(teams_data.Append({"A", "hw"}).ok());
  ASSERT_TRUE(teams_data.Append({"B", "hw"}).ok());

  PatternSet plain = Minimize(PatternJoin(maint, 1, teams, 0));
  PatternSet aware = Minimize(InstanceAwarePatternJoin(
      maint, 1, maint_data, teams, 0, teams_data));
  EXPECT_LT(aware.size(), plain.size());
  // Everything the plain join asserts is still covered.
  for (const Pattern& p : plain) {
    EXPECT_TRUE(aware.AnySubsumes(p)) << p.ToString();
  }
}

}  // namespace
}  // namespace pcdb
