#include <gtest/gtest.h>

#include "pattern/annotated_eval.h"
#include "pattern/constraints.h"
#include "pattern/entailment.h"
#include "workloads/maintenance_example.h"

namespace pcdb {
namespace {

Pattern P(const std::vector<std::string>& fields) {
  std::vector<Pattern::Cell> cells;
  for (const auto& f : fields) {
    if (f == "*") {
      cells.push_back(Pattern::Wildcard());
    } else {
      cells.push_back(Value(f));
    }
  }
  return Pattern(std::move(cells));
}

AnnotatedDatabase SimpleEmployees() {
  AnnotatedDatabase adb;
  PCDB_CHECK(adb.CreateTable("emp", Schema({{"id", ValueType::kString},
                                            {"dept", ValueType::kString},
                                            {"name", ValueType::kString}}))
                 .ok());
  PCDB_CHECK(adb.AddRow("emp", {"e1", "sales", "alice"}).ok());
  PCDB_CHECK(adb.AddRow("emp", {"e2", "dev", "bob"}).ok());
  return adb;
}

TEST(KeyConstraintTest, DerivesOnePatternPerKeyValue) {
  AnnotatedDatabase adb = SimpleEmployees();
  auto derived = DeriveKeyPatterns(adb, {"emp", {"id"}});
  ASSERT_TRUE(derived.ok()) << derived.status().ToString();
  PatternSet expected;
  expected.Add(P({"e1", "*", "*"}));
  expected.Add(P({"e2", "*", "*"}));
  EXPECT_TRUE(derived->SetEquals(expected)) << derived->ToString();
}

TEST(KeyConstraintTest, CompositeKey) {
  AnnotatedDatabase adb = SimpleEmployees();
  auto derived = DeriveKeyPatterns(adb, {"emp", {"id", "dept"}});
  ASSERT_TRUE(derived.ok());
  EXPECT_EQ(derived->size(), 2u);
  EXPECT_TRUE(derived->Contains(P({"e1", "sales", "*"})));
}

TEST(KeyConstraintTest, DuplicateKeyValuesYieldOnePattern) {
  AnnotatedDatabase adb = SimpleEmployees();
  ASSERT_TRUE(adb.AddRow("emp", {"e1", "sales", "alice2"}).ok());
  auto derived = DeriveKeyPatterns(adb, {"emp", {"id"}});
  ASSERT_TRUE(derived.ok());
  EXPECT_EQ(derived->size(), 2u);
}

TEST(KeyConstraintTest, RejectsBadColumnsAndEmptyKeys) {
  AnnotatedDatabase adb = SimpleEmployees();
  EXPECT_FALSE(DeriveKeyPatterns(adb, {"emp", {"nope"}}).ok());
  EXPECT_FALSE(DeriveKeyPatterns(adb, {"emp", {}}).ok());
  EXPECT_FALSE(DeriveKeyPatterns(adb, {"ghost", {"id"}}).ok());
}

TEST(KeyConstraintTest, ApplyMergesAndMinimizes) {
  AnnotatedDatabase adb = SimpleEmployees();
  ASSERT_TRUE(adb.AddPattern("emp", {"*", "sales", "*"}).ok());
  ASSERT_TRUE(ApplyKeyConstraint(&adb, {"emp", {"id"}}).ok());
  const PatternSet& patterns = adb.patterns("emp");
  // (e1, sales, alice) is keyed AND in the complete sales slice; the key
  // pattern (e1,*,*) is NOT subsumed by (∗,sales,∗) so both survive.
  EXPECT_TRUE(patterns.Contains(P({"*", "sales", "*"})));
  EXPECT_TRUE(patterns.Contains(P({"e1", "*", "*"})));
  EXPECT_TRUE(patterns.Contains(P({"e2", "*", "*"})));
}

TEST(KeyConstraintTest, DerivedPatternsEntailedUnderKeySemantics) {
  AnnotatedDatabase adb = SimpleEmployees();
  auto derived = DeriveKeyPatterns(adb, {"emp", {"id"}});
  ASSERT_TRUE(derived.ok());
  EntailmentOptions with_key;
  with_key.keys = {{"emp", {"id"}}};
  // A single-scan query needs at most one added tuple for a witness;
  // keeping the bound low keeps the completion enumeration tractable.
  with_key.max_added_tuples = 1;
  EntailmentOptions without_key;
  without_key.max_added_tuples = 1;
  for (const Pattern& p : *derived) {
    // Entailed once the checker knows the key...
    auto constrained = EntailsWrtInstance(adb, Expr::Scan("emp"), p, with_key);
    ASSERT_TRUE(constrained.ok()) << constrained.status().ToString();
    EXPECT_TRUE(*constrained) << p.ToString();
    // ... and NOT entailed without it (a completion may add a second
    // tuple with the same id).
    auto plain = EntailsWrtInstance(adb, Expr::Scan("emp"), p, without_key);
    ASSERT_TRUE(plain.ok());
    EXPECT_FALSE(*plain) << p.ToString();
  }
}

TEST(KeyConstraintTest, StrengthensQueryAnnotations) {
  // A keyed lookup becomes provably complete even though the table as a
  // whole is open-world.
  AnnotatedDatabase adb = SimpleEmployees();
  ASSERT_TRUE(ApplyKeyConstraint(&adb, {"emp", {"id"}}).ok());
  ExprPtr q = Expr::SelectConst(Expr::Scan("emp"), "id", "e1");
  auto result = EvaluateAnnotated(q, adb);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->patterns.AnySubsumes(Pattern::AllWildcards(3)))
      << result->patterns.ToString();
}

TEST(InclusionConstraintTest, DomainFromCompleteReference) {
  AnnotatedDatabase adb = MakeMaintenanceDatabase();
  // Maintenance.responsible ⊆ Teams.name, and Teams is fully complete:
  // the possible responsible values are exactly the stored team names.
  InclusionConstraint fk{"Maintenance", "responsible", "Teams", "name"};
  auto domain = DeriveInclusionDomain(adb, fk);
  ASSERT_TRUE(domain.ok()) << domain.status().ToString();
  EXPECT_EQ(domain->size(), 4u);  // A, B, C, D
}

TEST(InclusionConstraintTest, NoBoundWithoutFullCompleteness) {
  AnnotatedDatabase adb = MakeMaintenanceDatabase();
  // Warnings has only partial completeness patterns: its ID column gives
  // no sound domain bound.
  InclusionConstraint fk{"Maintenance", "ID", "Warnings", "ID"};
  auto domain = DeriveInclusionDomain(adb, fk);
  EXPECT_FALSE(domain.ok());
  EXPECT_EQ(domain.status().code(), StatusCode::kNotFound);
}

TEST(InclusionConstraintTest, ApplyFeedsZombieGeneration) {
  AnnotatedDatabase adb = MakeMaintenanceDatabase();
  ASSERT_TRUE(ApplyInclusionConstraint(
                  &adb, {"Maintenance", "responsible", "Teams", "name"})
                  .ok());
  ASSERT_NE(adb.domains().Lookup("responsible"), nullptr);
  // Zombies for σ_{responsible=A}(Maintenance) now enumerate B, C, D.
  AnnotatedEvalOptions options;
  options.zombies = true;
  options.minimize_each_step = false;
  AnnotatedEvalInfo info;
  auto result = EvaluateAnnotated(
      Expr::SelectConst(Expr::Scan("Maintenance"), "responsible", "A"), adb,
      options, &info);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(info.zombies_added, 3u);
}

TEST(InclusionConstraintTest, RejectsUnknownColumns) {
  AnnotatedDatabase adb = MakeMaintenanceDatabase();
  EXPECT_FALSE(
      ApplyInclusionConstraint(&adb, {"Maintenance", "ghost", "Teams", "name"})
          .ok());
  EXPECT_FALSE(
      ApplyInclusionConstraint(&adb, {"Maintenance", "ID", "Teams", "ghost"})
          .ok());
}

}  // namespace
}  // namespace pcdb
