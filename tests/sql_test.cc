#include <gtest/gtest.h>

#include "pattern/annotated_eval.h"
#include "relational/evaluator.h"
#include "sql/lexer.h"
#include "sql/parser.h"
#include "sql/planner.h"
#include "workloads/maintenance_example.h"

namespace pcdb {
namespace {

TEST(LexerTest, TokenizesAllKinds) {
  auto tokens = Tokenize("SELECT a.b, COUNT(*) FROM t WHERE x = 'it''s' "
                         "AND y = 12 AND z = 1.5");
  ASSERT_TRUE(tokens.ok());
  std::vector<TokenKind> kinds;
  for (const Token& t : *tokens) kinds.push_back(t.kind);
  EXPECT_EQ(kinds.front(), TokenKind::kIdentifier);
  EXPECT_EQ(kinds.back(), TokenKind::kEnd);
  // Find the escaped string literal.
  bool found_string = false;
  for (const Token& t : *tokens) {
    if (t.kind == TokenKind::kString) {
      EXPECT_EQ(t.text, "it's");
      found_string = true;
    }
  }
  EXPECT_TRUE(found_string);
}

TEST(LexerTest, RejectsUnterminatedString) {
  EXPECT_FALSE(Tokenize("SELECT 'oops").ok());
}

TEST(LexerTest, RejectsUnknownCharacter) {
  EXPECT_FALSE(Tokenize("SELECT a % b").ok());
}

TEST(LexerTest, KeywordsCaseInsensitive) {
  auto tokens = Tokenize("select");
  ASSERT_TRUE(tokens.ok());
  EXPECT_TRUE((*tokens)[0].IsKeyword("SELECT"));
  EXPECT_TRUE((*tokens)[0].IsKeyword("select"));
}

TEST(ParserTest, SelectStarWithJoins) {
  auto stmt = ParseSelect(
      "SELECT * FROM Warnings W JOIN Maintenance M ON W.ID=M.ID "
      "JOIN Teams T ON M.responsible=T.name "
      "WHERE W.week=2 AND T.specialization='hardware'");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_TRUE(stmt->select_star);
  ASSERT_EQ(stmt->from.size(), 3u);
  EXPECT_EQ(stmt->from[0].table, "Warnings");
  EXPECT_EQ(stmt->from[0].EffectiveAlias(), "W");
  // 2 join conditions + 2 where conjuncts.
  ASSERT_EQ(stmt->predicates.size(), 4u);
  EXPECT_TRUE(stmt->predicates[0].rhs_is_column);
  EXPECT_FALSE(stmt->predicates[2].rhs_is_column);
  EXPECT_EQ(stmt->predicates[2].rhs_value, Value(2));
  EXPECT_EQ(stmt->predicates[3].rhs_value, Value("hardware"));
}

TEST(ParserTest, CommaJoinStyle) {
  auto stmt = ParseSelect(
      "SELECT * FROM country, city WHERE country.capital=city.name");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ(stmt->from.size(), 2u);
  ASSERT_EQ(stmt->predicates.size(), 1u);
  EXPECT_TRUE(stmt->predicates[0].rhs_is_column);
}

TEST(ParserTest, BareAliases) {
  auto stmt = ParseSelect(
      "SELECT * FROM city c1, city c2 WHERE c1.name=c2.name");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->from[0].EffectiveAlias(), "c1");
  EXPECT_EQ(stmt->from[1].EffectiveAlias(), "c2");
}

TEST(ParserTest, GroupByWithAggregates) {
  auto stmt = ParseSelect(
      "SELECT country, COUNT(*) AS n, SUM(population) FROM City "
      "GROUP BY country");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  ASSERT_EQ(stmt->items.size(), 3u);
  EXPECT_FALSE(stmt->items[0].is_aggregate);
  EXPECT_TRUE(stmt->items[1].is_aggregate);
  EXPECT_TRUE(stmt->items[1].count_star);
  EXPECT_EQ(stmt->items[1].alias, "n");
  EXPECT_EQ(stmt->items[2].func, AggFunc::kSum);
  ASSERT_EQ(stmt->group_by.size(), 1u);
}

TEST(ParserTest, RejectsSumStar) {
  EXPECT_FALSE(ParseSelect("SELECT SUM(*) FROM t").ok());
}

TEST(ParserTest, RejectsTrailingGarbage) {
  EXPECT_FALSE(ParseSelect("SELECT * FROM t HAVING x = 1").ok());
}

TEST(ParserTest, OrderByAndLimit) {
  auto stmt = ParseSelect(
      "SELECT * FROM Warnings ORDER BY week DESC, day LIMIT 5");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  ASSERT_EQ(stmt->order_by.size(), 2u);
  EXPECT_TRUE(stmt->order_by[0].descending);
  EXPECT_FALSE(stmt->order_by[1].descending);
  EXPECT_TRUE(stmt->has_limit);
  EXPECT_EQ(stmt->limit, 5u);
}

TEST(ParserTest, RejectsNegativeOrMissingLimit) {
  EXPECT_FALSE(ParseSelect("SELECT * FROM t LIMIT -3").ok());
  EXPECT_FALSE(ParseSelect("SELECT * FROM t LIMIT").ok());
  EXPECT_FALSE(ParseSelect("SELECT * FROM t LIMIT many").ok());
}

TEST(ParserTest, RejectsMissingFrom) {
  EXPECT_FALSE(ParseSelect("SELECT *").ok());
}

class PlannerTest : public ::testing::Test {
 protected:
  void SetUp() override { adb_ = MakeMaintenanceDatabase(); }
  AnnotatedDatabase adb_;
};

TEST_F(PlannerTest, QhwSqlMatchesAlgebraicPlan) {
  // The SQL form of Q_hw from §1 must return exactly the same rows as
  // the hand-built algebra expression (1).
  auto plan = PlanSql(
      "SELECT * FROM Warnings W JOIN Maintenance M ON W.ID=M.ID "
      "JOIN Teams T ON M.responsible=T.name "
      "WHERE W.week=2 AND T.specialization='hardware'",
      adb_.database());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  auto sql_result = Evaluate(*plan, adb_.database());
  auto algebra_result =
      Evaluate(MakeHardwareWarningsQuery(), adb_.database());
  ASSERT_TRUE(sql_result.ok());
  ASSERT_TRUE(algebra_result.ok());
  EXPECT_TRUE(sql_result->BagEquals(*algebra_result));
}

TEST_F(PlannerTest, QhwSqlPatternsMatchAlgebraicPlan) {
  auto plan = PlanSql(
      "SELECT * FROM Warnings W JOIN Maintenance M ON W.ID=M.ID "
      "JOIN Teams T ON M.responsible=T.name "
      "WHERE W.week=2 AND T.specialization='hardware'",
      adb_.database());
  ASSERT_TRUE(plan.ok());
  auto sql_result = EvaluateAnnotated(*plan, adb_);
  auto algebra_result = EvaluateAnnotated(MakeHardwareWarningsQuery(), adb_);
  ASSERT_TRUE(sql_result.ok());
  ASSERT_TRUE(algebra_result.ok());
  EXPECT_TRUE(sql_result->patterns.SetEquals(algebra_result->patterns))
      << sql_result->patterns.ToString();
}

TEST_F(PlannerTest, ProjectionList) {
  auto plan = PlanSql("SELECT message, day FROM Warnings WHERE week=1",
                      adb_.database());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  auto result = Evaluate(*plan, adb_.database());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->schema().arity(), 2u);
  EXPECT_EQ(result->num_rows(), 4u);
  EXPECT_EQ(result->schema().column(1).name, "Warnings.day");
}

TEST_F(PlannerTest, SelfJoinWithAliases) {
  auto plan = PlanSql(
      "SELECT * FROM Maintenance m1, Maintenance m2 WHERE m1.ID=m2.ID",
      adb_.database());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  auto result = Evaluate(*plan, adb_.database());
  ASSERT_TRUE(result.ok());
  // tw37, tw59, tw83 match once each; tw140 (2 rows) matches 4 ways.
  EXPECT_EQ(result->num_rows(), 7u);
}

TEST_F(PlannerTest, DuplicateAliasRejected) {
  auto plan = PlanSql("SELECT * FROM Teams, Teams", adb_.database());
  EXPECT_FALSE(plan.ok());
}

TEST_F(PlannerTest, CrossJoinWhenNoPredicateConnects) {
  auto plan = PlanSql("SELECT * FROM Teams t1, Maintenance m1",
                      adb_.database());
  ASSERT_TRUE(plan.ok());
  auto result = Evaluate(*plan, adb_.database());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 25u);
}

TEST_F(PlannerTest, GroupByCount) {
  auto plan = PlanSql(
      "SELECT responsible, COUNT(*) AS n FROM Maintenance "
      "GROUP BY responsible",
      adb_.database());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  auto result = Evaluate(*plan, adb_.database());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 4u);
  EXPECT_EQ(result->schema().column(1).name, "n");
}

TEST_F(PlannerTest, SelectListReordersAggregates) {
  auto plan = PlanSql(
      "SELECT COUNT(*) AS n, responsible FROM Maintenance "
      "GROUP BY responsible",
      adb_.database());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  auto result = Evaluate(*plan, adb_.database());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->schema().column(0).name, "n");
  EXPECT_EQ(result->schema().column(0).type, ValueType::kInt64);
}

TEST_F(PlannerTest, UngroupedColumnRejected) {
  auto plan = PlanSql(
      "SELECT reason, COUNT(*) FROM Maintenance GROUP BY responsible",
      adb_.database());
  EXPECT_FALSE(plan.ok());
}

TEST_F(PlannerTest, OrderByProducesSortedOutput) {
  auto plan = PlanSql(
      "SELECT day, week FROM Warnings ORDER BY week DESC, day",
      adb_.database());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  auto result = Evaluate(*plan, adb_.database());
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->num_rows(), 7u);
  // Week 2 rows first (descending), days ascending within a week.
  EXPECT_EQ(result->row(0)[1], Value(2));
  EXPECT_EQ(result->row(0)[0], Value("Mon"));
  EXPECT_EQ(result->row(6)[1], Value(1));
}

TEST_F(PlannerTest, LimitTruncates) {
  auto plan = PlanSql("SELECT * FROM Warnings ORDER BY day LIMIT 3",
                      adb_.database());
  ASSERT_TRUE(plan.ok());
  auto result = Evaluate(*plan, adb_.database());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 3u);
  // Limit larger than the input keeps everything.
  auto all = Evaluate(*PlanSql("SELECT * FROM Warnings LIMIT 100",
                               adb_.database()),
                      adb_.database());
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->num_rows(), 7u);
}

TEST_F(PlannerTest, OrderByKeepsPatternsLimitNeedsFullCompleteness) {
  // ORDER BY is pattern-transparent.
  auto sorted = PlanSql("SELECT * FROM Warnings ORDER BY day",
                        adb_.database());
  ASSERT_TRUE(sorted.ok());
  auto sorted_result = EvaluateAnnotated(*sorted, adb_);
  ASSERT_TRUE(sorted_result.ok());
  EXPECT_EQ(sorted_result->patterns.size(), 3u);
  // LIMIT over a partially complete table kills all patterns...
  auto limited = PlanSql("SELECT * FROM Warnings ORDER BY day LIMIT 2",
                         adb_.database());
  ASSERT_TRUE(limited.ok());
  auto limited_result = EvaluateAnnotated(*limited, adb_);
  ASSERT_TRUE(limited_result.ok());
  EXPECT_TRUE(limited_result->patterns.empty());
  // ... but survives over a fully complete one.
  auto teams = PlanSql("SELECT * FROM Teams ORDER BY name LIMIT 2",
                       adb_.database());
  ASSERT_TRUE(teams.ok());
  auto teams_result = EvaluateAnnotated(*teams, adb_);
  ASSERT_TRUE(teams_result.ok());
  EXPECT_EQ(teams_result->data.num_rows(), 2u);
  EXPECT_FALSE(teams_result->patterns.empty());
}

TEST_F(PlannerTest, UnionAllConcatenatesBags) {
  auto plan = PlanSql(
      "SELECT day, ID FROM Warnings WHERE week=1 UNION ALL "
      "SELECT day, ID FROM Warnings WHERE week=2",
      adb_.database());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  auto result = Evaluate(*plan, adb_.database());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 7u);
}

TEST_F(PlannerTest, UnionPatternsNeedBothSides) {
  // Week 1 is complete, the team table is complete; unioning a complete
  // slice with a partially complete one keeps only the common part.
  auto complete_both = PlanSql(
      "SELECT name FROM Teams UNION ALL SELECT name FROM Teams",
      adb_.database());
  ASSERT_TRUE(complete_both.ok());
  auto both = EvaluateAnnotated(*complete_both, adb_);
  ASSERT_TRUE(both.ok());
  EXPECT_TRUE(both->patterns.AnySubsumes(Pattern::AllWildcards(1)));

  auto mixed = PlanSql(
      "SELECT name FROM Teams UNION ALL SELECT responsible FROM Maintenance",
      adb_.database());
  ASSERT_TRUE(mixed.ok()) << mixed.status().ToString();
  auto mixed_result = EvaluateAnnotated(*mixed, adb_);
  ASSERT_TRUE(mixed_result.ok());
  // Maintenance is only complete per-team, so the union is not fully
  // complete; team slices survive.
  EXPECT_FALSE(mixed_result->patterns.AnySubsumes(Pattern::AllWildcards(1)));
}

TEST_F(PlannerTest, UnionArityMismatchRejected) {
  auto plan = PlanSql(
      "SELECT name FROM Teams UNION ALL SELECT * FROM Teams",
      adb_.database());
  EXPECT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kTypeError);
}

TEST_F(PlannerTest, BareUnionRejected) {
  EXPECT_FALSE(PlanSql("SELECT * FROM Teams UNION SELECT * FROM Teams",
                       adb_.database())
                   .ok());
}

TEST_F(PlannerTest, UnknownColumnRejected) {
  EXPECT_FALSE(
      PlanSql("SELECT * FROM Teams WHERE color='red'", adb_.database()).ok());
}

TEST_F(PlannerTest, UnknownTableRejected) {
  EXPECT_FALSE(PlanSql("SELECT * FROM Nope", adb_.database()).ok());
}

}  // namespace
}  // namespace pcdb
