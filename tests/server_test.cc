#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/exec_context.h"
#include "common/failpoint.h"
#include "common/log.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "common/trace_context.h"
#include "pattern/annotated_eval.h"
#include "pattern/shard_route.h"
#include "server/client.h"
#include "server/net_socket.h"
#include "server/protocol.h"
#include "server/server.h"
#include "sql/planner.h"
#include "workloads/maintenance_example.h"

namespace pcdb {
namespace {

constexpr const char* kQhwSql =
    "SELECT * FROM Warnings W JOIN Maintenance M ON W.ID=M.ID "
    "JOIN Teams T ON M.responsible=T.name "
    "WHERE W.week=2 AND T.specialization='hardware'";

// Captures structured log lines emitted by server threads (the sink is
// a plain function pointer, so the buffer is a locked global).
Mutex g_server_log_mu;
std::string g_server_log_capture PCDB_GUARDED_BY(g_server_log_mu);

void CaptureServerLogLine(const std::string& line) {
  MutexLock lock(&g_server_log_mu);
  g_server_log_capture += line;
  g_server_log_capture += '\n';
}

/// End-to-end serve-path tests: a real Server on an ephemeral loopback
/// port, exercised through the real Client. Failpoints are global, so
/// every test starts and ends clean.
class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override { Failpoints::Global().Clear(); }
  void TearDown() override {
    if (server_ != nullptr) server_->Stop();
    Failpoints::Global().Clear();
  }

  void StartServer(ServerOptions options = {}) {
    server_ = std::make_unique<Server>(MakeMaintenanceDatabase(), options);
    ASSERT_TRUE(server_->Start().ok());
  }

  Client ConnectOrDie() {
    Result<Client> client = Client::Connect("127.0.0.1", server_->port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(*client);
  }

  /// The reference answer: governed in-process evaluation with exactly
  /// the server's evaluation options, serialized with the server's
  /// batching. The wire answer must reproduce these bytes exactly.
  static std::string InProcessCanonicalBytes(const std::string& sql,
                                             uint64_t max_patterns = 0,
                                             size_t rows_per_batch = 256) {
    AnnotatedDatabase adb = MakeMaintenanceDatabase();
    Result<ExprPtr> plan = PlanSql(sql, adb.database());
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    ExecContext ctx;
    if (max_patterns > 0) ctx.WithPatternBudget(max_patterns);
    AnnotatedEvalOptions options;  // matches ServerOptions defaults
    Result<AnnotatedTable> answer =
        EvaluateAnnotated(**plan, adb, options, ctx);
    EXPECT_TRUE(answer.ok()) << answer.status().ToString();
    return EncodeAnswer(*answer, rows_per_batch).CanonicalBytes();
  }

  std::unique_ptr<Server> server_;
};

TEST_F(ServerTest, PingAndStats) {
  StartServer();
  Client client = ConnectOrDie();
  EXPECT_TRUE(client.Ping().ok());
  Result<std::string> stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats->find("\"requests_total\""), std::string::npos) << *stats;
  EXPECT_NE(stats->find("\"cache\""), std::string::npos) << *stats;
}

TEST_F(ServerTest, WireAnswerIsByteIdenticalToInProcessEvaluation) {
  StartServer();
  Client client = ConnectOrDie();
  Result<ClientAnswer> answer = client.Query(kQhwSql);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_EQ(answer->canonical_bytes, InProcessCanonicalBytes(kQhwSql));
  EXPECT_GT(answer->table.data.num_rows(), 0u);
  EXPECT_GT(answer->table.patterns.size(), 0u);
  EXPECT_FALSE(answer->done.degraded);
}

TEST_F(ServerTest, EvaluationErrorsArriveWithInProcessCodeAndMessage) {
  StartServer();
  Client client = ConnectOrDie();

  // The same parse/plan failures the in-process API returns, code and
  // message byte-for-byte (satellite 3's contract).
  AnnotatedDatabase adb = MakeMaintenanceDatabase();
  for (const char* bad :
       {"SELECT * FROM NoSuchTable", "SELECT * FROM", "garbage"}) {
    Status in_process = PlanSql(bad, adb.database()).status();
    ASSERT_FALSE(in_process.ok()) << bad;
    Result<ClientAnswer> remote = client.Query(bad);
    ASSERT_FALSE(remote.ok()) << bad;
    EXPECT_EQ(remote.status().code(), in_process.code()) << bad;
    EXPECT_EQ(remote.status().ToString(), in_process.ToString()) << bad;
  }
  // The connection survives evaluation errors.
  EXPECT_TRUE(client.Ping().ok());
}

TEST_F(ServerTest, SixtyFourConcurrentConnectionsNoCorruptedFrames) {
  StartServer();
  const std::string expected = InProcessCanonicalBytes(kQhwSql);
  constexpr int kConnections = 64;
  constexpr int kQueriesEach = 3;
  std::atomic<int> failures{0};
  std::atomic<int> answers{0};
  {
    ThreadPool pool(static_cast<size_t>(kConnections));
    for (int c = 0; c < kConnections; ++c) {
      pool.Submit([this, &expected, &failures, &answers] {
        Result<Client> client =
            Client::Connect("127.0.0.1", server_->port());
        if (!client.ok()) {
          failures.fetch_add(kQueriesEach);
          return;
        }
        for (int q = 0; q < kQueriesEach; ++q) {
          Result<ClientAnswer> answer = client->Query(kQhwSql);
          if (!answer.ok() || answer->canonical_bytes != expected) {
            failures.fetch_add(1);
          } else {
            answers.fetch_add(1);
          }
        }
      });
    }
    pool.Wait();
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(answers.load(), kConnections * kQueriesEach);
  EXPECT_EQ(server_->metrics().CounterValue("requests_total"),
            static_cast<uint64_t>(kConnections * kQueriesEach));
  EXPECT_EQ(server_->metrics().CounterValue("shed_total"), 0u);
  EXPECT_EQ(server_->metrics().CounterValue("protocol_errors"), 0u);
}

TEST_F(ServerTest, MidQueryCancelReturnsCancelled) {
  StartServer();
  Client client = ConnectOrDie();
  // ~100ms per plan node makes Q_hw slow enough that the CANCEL frame
  // overtakes it on the event loop with huge margin.
  Failpoints::Global().Activate("annotated.operator",
                                FailpointSpec::Sleep(100));
  Result<uint64_t> id = client.SendQuery(kQhwSql);
  ASSERT_TRUE(id.ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  ASSERT_TRUE(client.Cancel(*id).ok());
  Result<ClientAnswer> answer = client.ReadAnswer(*id);
  ASSERT_FALSE(answer.ok());
  EXPECT_EQ(answer.status().code(), StatusCode::kCancelled)
      << answer.status().ToString();
  EXPECT_EQ(server_->metrics().CounterValue("cancelled_total"), 1u);
  // The connection is still serviceable.
  Failpoints::Global().Clear();
  EXPECT_TRUE(client.Query(kQhwSql).ok());
}

TEST_F(ServerTest, DeadlineExpiryReturnsTimeout) {
  StartServer();
  Client client = ConnectOrDie();
  Failpoints::Global().Activate("annotated.operator",
                                FailpointSpec::Sleep(100));
  ClientQueryOptions options;
  options.deadline_millis = 20;
  Result<ClientAnswer> answer = client.Query(kQhwSql, options);
  ASSERT_FALSE(answer.ok());
  EXPECT_EQ(answer.status().code(), StatusCode::kTimeout)
      << answer.status().ToString();
  EXPECT_EQ(server_->metrics().CounterValue("timeouts_total"), 1u);
}

TEST_F(ServerTest, DegradedFlagPropagatesOverTheWire) {
  StartServer();
  Client client = ConnectOrDie();
  ClientQueryOptions options;
  options.max_patterns = 2;  // Q_hw yields 12 exact patterns
  Result<ClientAnswer> answer = client.Query(kQhwSql, options);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_TRUE(answer->done.degraded);
  EXPECT_TRUE(answer->table.degraded);
  EXPECT_LE(answer->table.patterns.size(), 2u);
  // Degraded answers obey the same byte-identity contract.
  EXPECT_EQ(answer->canonical_bytes,
            InProcessCanonicalBytes(kQhwSql, /*max_patterns=*/2));
  // The degraded byte closes the canonical stream.
  ASSERT_FALSE(answer->canonical_bytes.empty());
  EXPECT_EQ(answer->canonical_bytes.back(), 1);
}

TEST_F(ServerTest, RepeatedQueryHitsTheCacheAndMutationInvalidates) {
  StartServer();
  Client client = ConnectOrDie();

  Result<ClientAnswer> first = client.Query(kQhwSql);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->done.cache_hit);

  Result<ClientAnswer> second = client.Query(kQhwSql);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->done.cache_hit);
  EXPECT_EQ(second->canonical_bytes, first->canonical_bytes);
  EXPECT_EQ(server_->metrics().CounterValue("cache_hits"), 1u);
  EXPECT_EQ(server_->metrics().CounterValue("cache_misses"), 1u);

  // Incidental reformatting still hits (normalized-SQL keying).
  Result<ClientAnswer> reformatted = client.Query(
      std::string("  ") + kQhwSql + " ;");
  ASSERT_TRUE(reformatted.ok());
  EXPECT_TRUE(reformatted->done.cache_hit);

  // A mutation bumps the table epoch: the entry is invalidated eagerly
  // and the next query re-evaluates against the new snapshot.
  ASSERT_TRUE(server_
                  ->UpdateDatabase([](AnnotatedDatabase* adb) {
                    return adb->AddRow("Warnings",
                                       {"Thu", 2, "tw140", "new warning"});
                  })
                  .ok());
  EXPECT_GE(server_->cache().GetStats().invalidations, 1u);
  Result<ClientAnswer> third = client.Query(kQhwSql);
  ASSERT_TRUE(third.ok());
  EXPECT_FALSE(third->done.cache_hit);
}

TEST_F(ServerTest, ProfileFlagDeliversAProfileWithoutPerturbingTheAnswer) {
  StartServer();
  Client client = ConnectOrDie();
  ClientQueryOptions options;
  options.profile = true;
  Result<ClientAnswer> profiled = client.Query(kQhwSql, options);
  ASSERT_TRUE(profiled.ok()) << profiled.status().ToString();
  ASSERT_FALSE(profiled->profile.empty());
  // The payload is the server-side QueryProfileToJson rendering,
  // delivered verbatim: per-operator rows/patterns plus request-level
  // timings, with a cache miss on the first evaluation.
  EXPECT_NE(profiled->profile.find("\"cache_hit\":false"),
            std::string::npos)
      << profiled->profile;
  EXPECT_NE(profiled->profile.find("\"operators\":[{"), std::string::npos);
  EXPECT_NE(profiled->profile.find("\"op\":\"scan\""), std::string::npos);
  EXPECT_NE(profiled->profile.find("\"op\":\"join\""), std::string::npos);
  EXPECT_NE(profiled->profile.find("\"eval_micros\":"), std::string::npos);
  EXPECT_NE(profiled->profile.find("\"queue_micros\":"), std::string::npos);
  // Profiling never perturbs the answer: the canonical bytes match the
  // in-process evaluation exactly, profile or not.
  EXPECT_EQ(profiled->canonical_bytes, InProcessCanonicalBytes(kQhwSql));
  // Without the flag, no ANSWER_PROFILE frame arrives.
  Result<ClientAnswer> plain = client.Query(kQhwSql);
  ASSERT_TRUE(plain.ok());
  EXPECT_TRUE(plain->profile.empty());
}

TEST_F(ServerTest, ProfiledAndPlainQueriesShareOneCacheEntry) {
  StartServer();
  Client client = ConnectOrDie();
  ASSERT_TRUE(client.Query(kQhwSql).ok());  // populate the cache
  ClientQueryOptions options;
  options.profile = true;
  Result<ClientAnswer> hit = client.Query(kQhwSql, options);
  ASSERT_TRUE(hit.ok()) << hit.status().ToString();
  // The profile flag is masked out of the cache key: the profiled
  // re-query hits the entry the plain query stored, and the profile
  // reports the hit (no operators ran).
  EXPECT_TRUE(hit->done.cache_hit);
  EXPECT_NE(hit->profile.find("\"cache_hit\":true"), std::string::npos)
      << hit->profile;
  EXPECT_NE(hit->profile.find("\"operators\":[]"), std::string::npos)
      << hit->profile;
  EXPECT_EQ(server_->metrics().CounterValue("cache_hits"), 1u);
}

TEST_F(ServerTest, StatsIncludesEngineMetricsAndHistogramBuckets) {
  StartServer();
  Client client = ConnectOrDie();
  ASSERT_TRUE(client.Query(kQhwSql).ok());
  Result<std::string> stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats->find("\"engine\":{"), std::string::npos) << *stats;
  EXPECT_NE(stats->find("\"engine_patterns_minimized\":"),
            std::string::npos)
      << *stats;
  EXPECT_NE(stats->find("\"buckets\":["), std::string::npos) << *stats;
}

TEST_F(ServerTest, SlowQueryThresholdEmitsAStructuredWarning) {
  ServerOptions options;
  options.slow_query_millis = 0.000001;  // everything is "slow"
  StartServer(options);
  {
    MutexLock lock(&g_server_log_mu);
    g_server_log_capture.clear();
  }
  SetLogSink(&CaptureServerLogLine);
  Client client = ConnectOrDie();
  Result<ClientAnswer> answer = client.Query(kQhwSql);
  SetLogSink(nullptr);
  ASSERT_TRUE(answer.ok());
  // The warning is emitted on the evaluation thread before the
  // completion is posted, so it is visible once the answer arrived.
  std::string captured;
  {
    MutexLock lock(&g_server_log_mu);
    captured = g_server_log_capture;
  }
  EXPECT_NE(captured.find("\"msg\":\"slow query\""), std::string::npos)
      << captured;
  EXPECT_NE(captured.find("\"sql\":"), std::string::npos) << captured;
  EXPECT_NE(captured.find("\"millis\":"), std::string::npos) << captured;
}

TEST_F(ServerTest, SlowQueryWarningCarriesTheCallersTraceContext) {
  ServerOptions options;
  options.slow_query_millis = 0.000001;  // everything is "slow"
  StartServer(options);
  {
    MutexLock lock(&g_server_log_mu);
    g_server_log_capture.clear();
  }
  SetLogSink(&CaptureServerLogLine);
  Client client = ConnectOrDie();
  // An ambient trace context on the calling thread rides the QUERY
  // frame (client injection), is adopted server-side, and must land in
  // the slow-query warning — that is how a fleet operator gets from a
  // slow-query log line to the matching trace.
  Result<ClientAnswer> answer = Status::Internal("not queried");
  {
    TraceContextScope scope(TraceContext{424242, 99});
    answer = client.Query(kQhwSql);
  }
  SetLogSink(nullptr);
  ASSERT_TRUE(answer.ok());
  std::string captured;
  {
    MutexLock lock(&g_server_log_mu);
    captured = g_server_log_capture;
  }
  const size_t warn = captured.find("\"msg\":\"slow query\"");
  ASSERT_NE(warn, std::string::npos) << captured;
  const std::string line =
      captured.substr(warn, captured.find('\n', warn) - warn);
  EXPECT_NE(line.find("\"trace_id\":424242"), std::string::npos) << line;
  EXPECT_NE(line.find("\"span_id\":"), std::string::npos) << line;
}

TEST_F(ServerTest, OverloadShedsWithUnavailable) {
  ServerOptions options;
  options.max_inflight = 1;
  options.max_queued_per_connection = 0;
  StartServer(options);
  Client busy = ConnectOrDie();
  Client rejected = ConnectOrDie();

  Failpoints::Global().Activate("annotated.operator",
                                FailpointSpec::Sleep(100));
  Result<uint64_t> slow = busy.SendQuery(kQhwSql);
  ASSERT_TRUE(slow.ok());
  // Let the loop dispatch the slow query before the second one arrives.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  Result<ClientAnswer> shed = rejected.Query(kQhwSql);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kUnavailable)
      << shed.status().ToString();
  EXPECT_EQ(server_->metrics().CounterValue("shed_total"), 1u);

  // The occupied slot still answers correctly.
  Result<ClientAnswer> slow_answer = busy.ReadAnswer(*slow);
  ASSERT_TRUE(slow_answer.ok()) << slow_answer.status().ToString();
}

TEST_F(ServerTest, QueuedQueryRunsWhenASlotFrees) {
  ServerOptions options;
  options.max_inflight = 1;
  options.max_queued_per_connection = 4;
  StartServer(options);
  Client client = ConnectOrDie();
  Failpoints::Global().Activate("annotated.operator",
                                FailpointSpec::Sleep(20));
  // Pipeline three queries on one connection: one runs, two queue, all
  // three answer in order.
  std::vector<uint64_t> ids;
  for (int i = 0; i < 3; ++i) {
    Result<uint64_t> id = client.SendQuery(kQhwSql);
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  for (uint64_t id : ids) {
    Result<ClientAnswer> answer = client.ReadAnswer(id);
    EXPECT_TRUE(answer.ok()) << answer.status().ToString();
  }
  EXPECT_EQ(server_->metrics().CounterValue("shed_total"), 0u);
}

TEST_F(ServerTest, HalfCloseDrainsPipelinedQueriesThenCloses) {
  ServerOptions options;
  options.max_inflight = 2;
  options.max_queued_per_connection = 16;
  StartServer(options);
  Client client = ConnectOrDie();
  // Per-operator latency keeps most of the pipeline queued or in flight
  // when the half-close reaches the server.
  Failpoints::Global().Activate("annotated.operator",
                                FailpointSpec::Sleep(10));
  std::vector<uint64_t> ids;
  for (int i = 0; i < 8; ++i) {
    Result<uint64_t> id = client.SendQuery(kQhwSql);
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  // shutdown(SHUT_WR): the server sees EOF but still owes 8 answers —
  // it must drain every buffered frame and keep the in-flight and
  // queued queries alive until their answers are flushed.
  ASSERT_TRUE(client.FinishSending().ok());
  const std::string expected = InProcessCanonicalBytes(kQhwSql);
  for (uint64_t id : ids) {
    Result<ClientAnswer> answer = client.ReadAnswer(id);
    ASSERT_TRUE(answer.ok()) << answer.status().ToString();
    EXPECT_EQ(answer->canonical_bytes, expected);
  }
  EXPECT_EQ(server_->metrics().CounterValue("cancelled_total"), 0u);
}

TEST_F(ServerTest, RejectsConnectionsBeyondTheCap) {
  ServerOptions options;
  options.max_connections = 1;
  StartServer(options);
  Client first = ConnectOrDie();
  ASSERT_TRUE(first.Ping().ok());
  // A surplus connection is accepted and immediately closed: the
  // client observes EOF on its next read instead of hanging in the
  // kernel backlog.
  Result<Client> surplus = Client::Connect("127.0.0.1", server_->port());
  ASSERT_TRUE(surplus.ok()) << surplus.status().ToString();
  EXPECT_FALSE(surplus->Ping().ok());
  EXPECT_GE(server_->metrics().CounterValue("connections_rejected"), 1u);
  // The admitted connection is untouched.
  EXPECT_TRUE(first.Ping().ok());
}

TEST_F(ServerTest, RestartAfterStopServesAgain) {
  StartServer();
  {
    Client client = ConnectOrDie();
    ASSERT_TRUE(client.Query(kQhwSql).ok());
  }
  server_->Stop();
  ASSERT_TRUE(server_->Start().ok()) << "restart after Stop must succeed";
  Client client = ConnectOrDie();
  Result<ClientAnswer> answer = client.Query(kQhwSql);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_EQ(answer->canonical_bytes, InProcessCanonicalBytes(kQhwSql));
  // Cache and metrics carry over: the pre-restart entry still hits.
  EXPECT_TRUE(answer->done.cache_hit);
  // But a double Start on a running server is still an error.
  EXPECT_FALSE(server_->Start().ok());
}

TEST_F(ServerTest, MalformedFrameClosesOnlyThatConnection) {
  StartServer();
  Client healthy = ConnectOrDie();
  ASSERT_TRUE(healthy.Ping().ok());

  Result<Socket> raw = TcpConnect("127.0.0.1", server_->port());
  ASSERT_TRUE(raw.ok());
  ASSERT_TRUE(raw->SetRecvTimeoutMillis(5000).ok());
  // A syntactically valid header with an unknown frame type: stream
  // corruption the decoder must reject.
  std::string garbage;
  garbage.append(4, '\0');                      // payload_len = 0
  garbage.push_back(static_cast<char>(0x55));   // not a FrameType
  garbage.append(8, '\0');                      // request id
  ASSERT_TRUE(raw->SendAll(garbage.data(), garbage.size()).ok());

  // The server answers with one ERROR frame, then closes.
  char header[13];
  ASSERT_TRUE(raw->RecvExact(header, sizeof(header)).ok());
  EXPECT_EQ(static_cast<uint8_t>(header[4]),
            static_cast<uint8_t>(FrameType::kError));
  uint32_t payload_len = 0;
  std::memcpy(&payload_len, header, 4);
  std::string payload(payload_len, '\0');
  ASSERT_TRUE(raw->RecvExact(payload.data(), payload.size()).ok());
  Status remote;
  ASSERT_TRUE(DecodeErrorPayload(payload, &remote).ok());
  EXPECT_EQ(remote.code(), StatusCode::kInvalidArgument);
  char extra;
  Result<IoResult> eof = raw->Recv(&extra, 1);
  ASSERT_TRUE(eof.ok());
  EXPECT_TRUE(eof->eof);

  // The sibling connection and the listener never noticed.
  EXPECT_TRUE(healthy.Ping().ok());
  EXPECT_TRUE(ConnectOrDie().Ping().ok());
  EXPECT_EQ(server_->metrics().CounterValue("protocol_errors"), 1u);
}

TEST_F(ServerTest, ReadFaultOnOneConnectionDoesNotAffectSiblings) {
  StartServer();
  Client healthy = ConnectOrDie();
  ASSERT_TRUE(healthy.Ping().ok());

  // A raw victim connection (the Client's own Recv shares the global
  // failpoint registry and must not consume the injected fault).
  Result<Socket> victim = TcpConnect("127.0.0.1", server_->port());
  ASSERT_TRUE(victim.ok());
  ASSERT_TRUE(victim->SetRecvTimeoutMillis(5000).ok());
  std::string ping;
  AppendFrame(&ping, FrameType::kPing, 1, "");
  Failpoints::Global().Activate("server.read",
                                FailpointSpec::Error().Once());
  ASSERT_TRUE(victim->SendAll(ping.data(), ping.size()).ok());
  // Give the loop time to hit the fault on the victim's readable socket.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  Failpoints::Global().Clear();

  // The victim was torn down: either a clean EOF or ECONNRESET (the
  // server closed with the ping still unread in its kernel buffer).
  char buf;
  Result<IoResult> read_back = victim->Recv(&buf, 1);
  EXPECT_TRUE(!read_back.ok() || read_back->eof);
  // ...while the listener and the sibling keep serving.
  EXPECT_TRUE(healthy.Ping().ok());
  EXPECT_TRUE(ConnectOrDie().Ping().ok());
  EXPECT_GE(server_->metrics().CounterValue("connection_faults"), 1u);
}

TEST_F(ServerTest, ShortReadFaultStillDeliversIntactAnswers) {
  StartServer();
  const std::string expected = InProcessCanonicalBytes(kQhwSql);
  Client client = ConnectOrDie();
  // Byte-at-a-time reads on the server: framing must reassemble.
  Failpoints::Global().Activate("server.read.short",
                                FailpointSpec::Sleep(0));
  Result<ClientAnswer> answer = client.Query(kQhwSql);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_EQ(answer->canonical_bytes, expected);
}

// ---------------------------------------------------------------------------
// Streaming write path: INGEST / PUNCTUATE.

TEST_F(ServerTest, IngestAppliesRowsAndPoliciesOverTheWire) {
  StartServer();
  Client client = ConnectOrDie();

  // A clean row (week 3 violates no promise) lands and is queryable.
  Result<IngestResult> ack = client.Ingest(
      "Warnings", {Tuple{Value("Thu"), Value(int64_t{3}), Value("tw99"),
                         Value("scheduled check")}});
  ASSERT_TRUE(ack.ok()) << ack.status().ToString();
  EXPECT_EQ(ack->rows_ingested, 1u);
  EXPECT_EQ(ack->violations, 0u);
  Result<ClientAnswer> all =
      client.Query("SELECT * FROM Warnings WHERE week=3");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->table.data.num_rows(), 1u);

  // A week-1 row violates the (*,1,*,*) promise: the default policy
  // rejects the record and keeps the promise.
  ack = client.Ingest("Warnings",
                      {Tuple{Value("Sat"), Value(int64_t{1}), Value("twX"),
                             Value("late arrival")}});
  ASSERT_TRUE(ack.ok());
  EXPECT_EQ(ack->rows_ingested, 0u);
  EXPECT_EQ(ack->rows_rejected, 1u);
  EXPECT_EQ(ack->violations, 1u);

  // Under the retract policy the same row lands and the violated
  // promise is withdrawn instead.
  ClientWriteOptions retract;
  retract.policy = IngestRequest::kPolicyRetractPatterns;
  ack = client.Ingest("Warnings",
                      {Tuple{Value("Sat"), Value(int64_t{1}), Value("twX"),
                             Value("late arrival")}},
                      retract);
  ASSERT_TRUE(ack.ok());
  EXPECT_EQ(ack->rows_ingested, 1u);
  EXPECT_EQ(ack->violations, 1u);
  EXPECT_GE(ack->patterns_retracted, 1u);
  EXPECT_GE(server_->metrics().CounterValue("ingest_rows_total"), 2u);
  EXPECT_GE(server_->metrics().CounterValue("patterns_retracted_total"), 1u);

  // A malformed write (unknown table) surfaces as a wire error and the
  // connection keeps serving.
  ack = client.Ingest("NoSuchTable", {Tuple{Value(int64_t{1})}});
  EXPECT_FALSE(ack.ok());
  EXPECT_TRUE(client.Ping().ok());
}

TEST_F(ServerTest, SignatureKeyedInvalidationSparesIncomparableEntries) {
  StartServer();
  Client client = ConnectOrDie();

  ASSERT_TRUE(client.Query(kQhwSql).ok());  // warm the cache
  Result<ClientAnswer> warm = client.Query(kQhwSql);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->done.cache_hit);

  // A punctuation constraining only `day` has signature {day}; Q_hw's
  // constant mask over Warnings is {week}. Incomparable: the cached
  // answer stays valid (the addition cannot change its rows and only
  // under-reports completeness) and must still hit.
  Result<IngestResult> ack =
      client.Punctuate("Warnings", {{"p9", "*", "*", "*"}});
  ASSERT_TRUE(ack.ok()) << ack.status().ToString();
  EXPECT_EQ(ack->punctuations, 1u);
  Result<ClientAnswer> after_day = client.Query(kQhwSql);
  ASSERT_TRUE(after_day.ok());
  EXPECT_TRUE(after_day->done.cache_hit);
  EXPECT_EQ(server_->cache().GetStats().sig_invalidations, 0u);

  // A punctuation constraining `week` is comparable with {week}: the
  // entry is invalidated, the re-evaluation sees the new promise, and
  // the answer's completeness annotation actually improves.
  ack = client.Punctuate("Warnings", {{"*", "2", "*", "*"}});
  ASSERT_TRUE(ack.ok());
  Result<ClientAnswer> after_week = client.Query(kQhwSql);
  ASSERT_TRUE(after_week.ok());
  EXPECT_FALSE(after_week->done.cache_hit);
  EXPECT_NE(after_week->canonical_bytes, warm->canonical_bytes);
  EXPECT_GE(server_->cache().GetStats().sig_invalidations, 1u);
}

TEST_F(ServerTest, ReadersKeepAnsweringWhileAWriterIsBusy) {
  ServerOptions options;
  options.eval_threads = 4;
  StartServer(options);
  Client reader = ConnectOrDie();
  ASSERT_TRUE(reader.Query(kQhwSql).ok());  // warm plan + cache

  // Make the writer job dwell on one op for a second. Readers evaluate
  // against the current snapshot and take db_mu_ only for the pointer
  // read, so they must not feel the writer at all.
  Failpoints::Global().Activate("server.ingest", FailpointSpec::Sleep(1000));
  std::atomic<bool> ingest_done{false};
  {
    ThreadPool pool(2);  // a 1-thread pool runs tasks inline on Submit
    pool.Submit([this, &ingest_done] {
      Client w = ConnectOrDie();
      Result<IngestResult> ack = w.Ingest(
          "Warnings", {Tuple{Value("Thu"), Value(int64_t{4}), Value("tw7"),
                             Value("slow write")}});
      EXPECT_TRUE(ack.ok()) << ack.status().ToString();
      ingest_done.store(true);
    });

    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < 5; ++i) {
      Result<ClientAnswer> answer = reader.Query(kQhwSql);
      ASSERT_TRUE(answer.ok()) << answer.status().ToString();
    }
    const double query_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - start)
                                .count();
    // All five round trips fit comfortably inside the writer's 1s
    // dwell; if readers serialized behind the writer this would take
    // seconds.
    EXPECT_LT(query_ms, 800.0);
    EXPECT_FALSE(ingest_done.load());
    pool.Wait();
  }
  EXPECT_TRUE(ingest_done.load());
  Failpoints::Global().Clear();
}

TEST_F(ServerTest, TenantQuotaShedsAFloodWithoutStarvingOthers) {
  ServerOptions options;
  options.eval_threads = 2;
  options.tenant_write_quota = 2;
  StartServer(options);

  // Keep the writer busy so pending writes actually pile up: the first
  // (quota-exempt "warm" tenant) op is popped into a batch and dwells
  // in apply while everything else arrives.
  Failpoints::Global().Activate("server.ingest", FailpointSpec::Sleep(400));

  Result<Socket> conn = TcpConnect("127.0.0.1", server_->port());
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(conn->SetRecvTimeoutMillis(15000).ok());
  auto ingest_frame = [](uint64_t request_id, const std::string& tenant) {
    IngestRequest request;
    request.tenant = tenant;
    request.table = "Warnings";
    request.rows.push_back({Value("Thu"), Value(int64_t{5}),
                            Value("tw" + std::to_string(request_id)),
                            Value("flood")});
    std::string wire;
    AppendFrame(&wire, FrameType::kIngest, request_id,
                EncodeIngestPayload(request));
    return wire;
  };

  std::string first = ingest_frame(1, "warm");
  ASSERT_TRUE(conn->SendAll(first.data(), first.size()).ok());
  // Let the writer pop it and start dwelling.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));

  // Five more from "flood" (quota 2) and one from "calm": 2 flood ops
  // queue, 3 shed with kUnavailable, calm queues untouched.
  std::string burst;
  for (uint64_t id = 2; id <= 6; ++id) burst += ingest_frame(id, "flood");
  burst += ingest_frame(7, "calm");
  ASSERT_TRUE(conn->SendAll(burst.data(), burst.size()).ok());

  FrameReader reader;
  size_t acks = 0, sheds = 0;
  while (acks + sheds < 7) {
    Frame frame;
    Result<bool> complete = reader.Next(&frame);
    ASSERT_TRUE(complete.ok());
    if (!*complete) {
      char buf[4096];
      Result<IoResult> io = conn->Recv(buf, sizeof(buf));
      ASSERT_TRUE(io.ok()) << io.status().ToString();
      ASSERT_FALSE(io->eof);
      ASSERT_FALSE(io->would_block) << "timed out waiting for write acks";
      reader.Feed(buf, io->bytes);
      continue;
    }
    if (frame.type == FrameType::kIngestResult) {
      ++acks;
      continue;
    }
    ASSERT_EQ(frame.type, FrameType::kError);
    Status remote;
    ASSERT_TRUE(DecodeErrorPayload(frame.payload, &remote).ok());
    EXPECT_EQ(remote.code(), StatusCode::kUnavailable) << remote.ToString();
    EXPECT_NE(remote.ToString().find("quota"), std::string::npos)
        << remote.ToString();
    ++sheds;
  }
  EXPECT_EQ(acks, 4u);   // warm + 2 flood + calm
  EXPECT_EQ(sheds, 3u);  // flood beyond its quota
  EXPECT_EQ(server_->metrics().CounterValue("writes_shed_total"), 3u);

  // Shedding never starved queries: the read path still serves.
  Failpoints::Global().Clear();
  EXPECT_TRUE(ConnectOrDie().Query(kQhwSql).ok());
}

TEST_F(ServerTest, ReadQuotaShedsAFloodTenantWithoutStarvingOthers) {
  ServerOptions options;
  options.eval_threads = 1;
  options.tenant_read_quota = 2;
  // Per-tenant shed counters exist only for configured tenants; the
  // anonymous flood below lands in `queries_shed_total.other`.
  options.tenant_tiers["flood"] = 1;
  StartServer(options);

  // Park the single eval thread so admitted reads pile up: the first
  // flood query dwells in evaluation, the second sits queued, and
  // everything past the quota of 2 must shed on arrival.
  Failpoints::Global().Activate("annotated.operator",
                                FailpointSpec::Sleep(300));

  Client flood = ConnectOrDie();
  ClientQueryOptions flood_options;
  flood_options.tenant = "flood";
  std::vector<uint64_t> ids;
  for (int i = 0; i < 5; ++i) {
    Result<uint64_t> id = flood.SendQuery(kQhwSql, flood_options);
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    ids.push_back(*id);
  }
  size_t ok = 0, shed = 0;
  for (uint64_t id : ids) {
    Result<ClientAnswer> answer = flood.ReadAnswer(id);
    if (answer.ok()) {
      ++ok;
      continue;
    }
    EXPECT_EQ(answer.status().code(), StatusCode::kUnavailable)
        << answer.status().ToString();
    EXPECT_NE(answer.status().message().find("read quota"),
              std::string::npos)
        << answer.status().ToString();
    ++shed;
  }
  EXPECT_EQ(ok, 2u);
  EXPECT_EQ(shed, 3u);
  EXPECT_EQ(server_->metrics().CounterValue("queries_shed_total"), 3u);
  // The per-tenant breakdown names the offender (configured in
  // tenant_tiers, so it gets its own counter).
  EXPECT_EQ(server_->metrics().CounterValue("queries_shed_total.flood"), 3u);

  // A tenant the server was never configured with sheds into the shared
  // ".other" counter: counter names come off the wire, and a client
  // cycling random tenant strings must not grow the registry.
  Client anon = ConnectOrDie();
  ClientQueryOptions anon_options;
  anon_options.tenant = "anon-e7c1";
  ids.clear();
  for (int i = 0; i < 5; ++i) {
    Result<uint64_t> id = anon.SendQuery(kQhwSql, anon_options);
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    ids.push_back(*id);
  }
  size_t anon_shed = 0;
  for (uint64_t id : ids) {
    if (!anon.ReadAnswer(id).ok()) ++anon_shed;
  }
  // Exact shed counts are timing-sensitive (a slow send lets a quota
  // unit free up); what matters here is the *naming*: every anonymous
  // shed lands in ".other" and the wire-supplied tenant string never
  // becomes a metric.
  EXPECT_GE(anon_shed, 1u);
  EXPECT_EQ(server_->metrics().CounterValue("queries_shed_total"),
            3u + anon_shed);
  EXPECT_EQ(server_->metrics().CounterValue("queries_shed_total.other"),
            anon_shed);
  EXPECT_EQ(server_->metrics().ToJson().find("anon-e7c1"),
            std::string::npos);

  // Quota units released on completion: the same tenant serves again,
  // and an unrelated tenant was never affected.
  Failpoints::Global().Clear();
  Client calm = ConnectOrDie();
  ClientQueryOptions calm_options;
  calm_options.tenant = "calm";
  EXPECT_TRUE(calm.Query(kQhwSql, calm_options).ok());
  EXPECT_TRUE(flood.Query(kQhwSql, flood_options).ok());
  EXPECT_EQ(server_->metrics().CounterValue("queries_shed_total"),
            3u + anon_shed);
}

TEST_F(ServerTest, ShardInfoReportsPlacementAndEpochs) {
  // A non-sharded server is shard 0 of 1 with no hashed tables; the
  // epochs are live (a write bumps its table's).
  StartServer();
  Client client = ConnectOrDie();
  Result<ShardInfo> info = client.GetShardInfo();
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->shard_id, 0u);
  EXPECT_EQ(info->num_shards, 1u);
  uint64_t warnings_epoch = 0;
  bool saw_warnings = false;
  for (const ShardTableInfo& table : info->tables) {
    EXPECT_FALSE(table.hashed) << table.table;
    if (table.table == "Warnings") {
      saw_warnings = true;
      warnings_epoch = table.epoch;
    }
  }
  EXPECT_TRUE(saw_warnings);
  ASSERT_TRUE(client
                  .Ingest("Warnings",
                          {Tuple{Value("Fri"), Value(int64_t{30}),
                                 Value("tw90"), Value("epoch bump")}})
                  .ok());
  info = client.GetShardInfo();
  ASSERT_TRUE(info.ok());
  for (const ShardTableInfo& table : info->tables) {
    if (table.table == "Warnings") {
      EXPECT_GT(table.epoch, warnings_epoch);
    }
  }
}

TEST_F(ServerTest, ShardModeAppliesOnlyOwnedRowsAndPatterns) {
  // A shard receiving the coordinator's write broadcast applies only
  // what it owns: rows by hash, statements by constant signature.
  ServerOptions options;
  options.shard_id = 0;
  options.num_shards = 3;
  options.hashed_tables = {"Warnings"};
  StartServer(options);
  Client client = ConnectOrDie();

  std::vector<Tuple> rows;
  size_t owned_rows = 0;
  for (int i = 0; i < 12; ++i) {
    Tuple row{Value("d" + std::to_string(i)), Value(int64_t{50 + i}),
              Value("sid" + std::to_string(i)), Value("filter probe")};
    if (ShardForRow(row, 3) == 0) ++owned_rows;
    rows.push_back(std::move(row));
  }
  ASSERT_GT(owned_rows, 0u);
  ASSERT_LT(owned_rows, 12u);
  Result<IngestResult> ack = client.Ingest("Warnings", rows);
  ASSERT_TRUE(ack.ok()) << ack.status().ToString();
  EXPECT_EQ(ack->rows_ingested, owned_rows);

  // Patterns: parse against the live schema to predict ownership.
  AnnotatedDatabase reference = MakeMaintenanceDatabase();
  Result<const Table*> warnings =
      reference.database().GetTable("Warnings");
  ASSERT_TRUE(warnings.ok());
  // Statements partition by constant-POSITION signature, so spread the
  // masks (which columns are constant), not just the constants.
  const std::vector<std::vector<std::string>> masks = {
      {"*", "50", "*", "*"},      {"d1", "*", "*", "*"},
      {"d2", "51", "*", "*"},     {"*", "*", "sid3", "*"},
      {"*", "*", "*", "m4"},      {"d5", "*", "sid5", "*"},
      {"*", "52", "sid6", "*"},   {"d7", "53", "sid7", "m7"},
  };
  std::vector<std::vector<std::string>> statements;
  size_t owned_patterns = 0;
  for (std::vector<std::string> fields : masks) {
    Result<Pattern> p = Pattern::Parse(fields, (*warnings)->schema());
    ASSERT_TRUE(p.ok()) << p.status().ToString();
    if (ShardForPattern(*p, 3) == 0) ++owned_patterns;
    statements.push_back(std::move(fields));
  }
  ASSERT_GT(owned_patterns, 0u);
  ASSERT_LT(owned_patterns, masks.size());
  Result<IngestResult> punct = client.Punctuate("Warnings", statements);
  ASSERT_TRUE(punct.ok()) << punct.status().ToString();
  EXPECT_EQ(punct->punctuations, owned_patterns);
}

TEST_F(ServerTest, StopCancelsInFlightQueries) {
  StartServer();
  Client client = ConnectOrDie();
  Failpoints::Global().Activate("annotated.operator",
                                FailpointSpec::Sleep(100));
  ASSERT_TRUE(client.SendQuery(kQhwSql).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  // Stop must not hang on the sleeping evaluation: the loop cancels its
  // token and the governed evaluator returns at the next checkpoint.
  server_->Stop();
  SUCCEED();
}

}  // namespace
}  // namespace pcdb
