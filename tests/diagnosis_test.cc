#include <gtest/gtest.h>

#include "pattern/diagnosis.h"
#include "relational/evaluator.h"
#include "relational/lineage.h"
#include "workloads/maintenance_example.h"

namespace pcdb {
namespace {

class LineageTest : public ::testing::Test {
 protected:
  void SetUp() override { adb_ = MakeMaintenanceDatabase(); }
  AnnotatedDatabase adb_;
};

TEST_F(LineageTest, ScanLineageIsIdentity) {
  auto result = EvaluateWithLineage(Expr::Scan("Teams"), adb_.database());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->scans, std::vector<std::string>{"Teams"});
  ASSERT_EQ(result->lineage.size(), 5u);
  for (size_t r = 0; r < 5; ++r) {
    EXPECT_EQ(result->lineage[r], std::vector<uint32_t>{
                                      static_cast<uint32_t>(r)});
  }
}

TEST_F(LineageTest, MatchesPlainEvaluation) {
  ExprPtr q = MakeHardwareWarningsQuery();
  auto with_lineage = EvaluateWithLineage(q, adb_.database());
  auto plain = Evaluate(q, adb_.database());
  ASSERT_TRUE(with_lineage.ok()) << with_lineage.status().ToString();
  ASSERT_TRUE(plain.ok());
  EXPECT_TRUE(with_lineage->data.BagEquals(*plain));
}

TEST_F(LineageTest, JoinLineagePointsAtContributingRows) {
  ExprPtr q = MakeHardwareWarningsQuery();
  auto result = EvaluateWithLineage(q, adb_.database());
  ASSERT_TRUE(result.ok());
  // Scans in depth-first order: Warnings, Maintenance, Teams.
  ASSERT_EQ(result->scans,
            (std::vector<std::string>{"Warnings", "Maintenance", "Teams"}));
  const Table* warnings = *adb_.database().GetTable("Warnings");
  const Table* maintenance = *adb_.database().GetTable("Maintenance");
  const Table* teams = *adb_.database().GetTable("Teams");
  for (size_t r = 0; r < result->data.num_rows(); ++r) {
    const Tuple& out = result->data.row(r);
    const Tuple& w = warnings->row(result->lineage[r][0]);
    const Tuple& m = maintenance->row(result->lineage[r][1]);
    const Tuple& t = teams->row(result->lineage[r][2]);
    // The output row is the concatenation of its sources.
    EXPECT_EQ(out[0], w[0]);  // W.day
    EXPECT_EQ(out[4], m[0]);  // M.ID
    EXPECT_EQ(out[7], t[0]);  // T.name
  }
}

TEST_F(LineageTest, SurvivesProjectSortLimit) {
  ExprPtr q = Expr::Limit(
      Expr::Sort(Expr::ProjectOut(Expr::Scan("Warnings"), "message"),
                 {"day"}),
      3);
  auto result = EvaluateWithLineage(q, adb_.database());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->data.num_rows(), 3u);
  const Table* warnings = *adb_.database().GetTable("Warnings");
  for (size_t r = 0; r < 3; ++r) {
    EXPECT_EQ(result->data.row(r)[0],
              warnings->row(result->lineage[r][0])[0]);
  }
}

TEST_F(LineageTest, AggregateAndUnionUnsupported) {
  ExprPtr agg = Expr::Aggregate(Expr::Scan("Teams"), {"name"},
                                {{AggFunc::kCount, "", "n"}});
  EXPECT_EQ(EvaluateWithLineage(agg, adb_.database()).status().code(),
            StatusCode::kUnimplemented);
  ExprPtr u = Expr::Union(Expr::Scan("Teams"), Expr::Scan("Teams"));
  EXPECT_EQ(EvaluateWithLineage(u, adb_.database()).status().code(),
            StatusCode::kUnimplemented);
}

class DiagnosisTest : public ::testing::Test {
 protected:
  void SetUp() override { adb_ = MakeMaintenanceDatabase(); }
  AnnotatedDatabase adb_;
};

TEST_F(DiagnosisTest, QhwBlamesTheWarningsFeed) {
  // Table 3/5 narrative: Monday's and Wednesday's rows are final;
  // Tuesday's row is not, and the missing guarantee traces to the
  // Warnings table (the Tuesday feed), not to Maintenance or Teams.
  auto report = DiagnoseIncompleteness(MakeHardwareWarningsQuery(), adb_);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->answer.num_rows(), 3u);
  EXPECT_EQ(report->guaranteed_rows, 2u);
  size_t unguaranteed = 0;
  for (const RowDiagnosis& d : report->rows) {
    if (d.guaranteed) continue;
    ++unguaranteed;
    EXPECT_EQ(report->answer.row(d.row)[0], Value("Tue"));
    ASSERT_EQ(d.suspect_tables.size(), 1u);
    EXPECT_EQ(d.suspect_tables[0], "Warnings");
  }
  EXPECT_EQ(unguaranteed, 1u);
  EXPECT_EQ(report->suspect_counts.at("Warnings"), 1u);
  EXPECT_EQ(report->suspect_counts.count("Teams"), 0u);
}

TEST_F(DiagnosisTest, FullyGuaranteedAnswerHasNoSuspects) {
  ExprPtr q = Expr::SelectConst(Expr::Scan("Teams"), "specialization",
                                "network");
  auto report = DiagnoseIncompleteness(q, adb_);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->guaranteed_rows, report->answer.num_rows());
  EXPECT_TRUE(report->suspect_counts.empty());
}

TEST_F(DiagnosisTest, UncoveredSourceRowBlamed) {
  // tw59 is maintained by team D, which does not export its data; a
  // query touching that row should blame Maintenance.
  ExprPtr q = Expr::SelectConst(Expr::Scan("Maintenance"), "ID", "tw59");
  auto report = DiagnoseIncompleteness(q, adb_);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->answer.num_rows(), 1u);
  EXPECT_EQ(report->guaranteed_rows, 0u);
  ASSERT_EQ(report->rows[0].suspect_tables.size(), 1u);
  EXPECT_EQ(report->rows[0].suspect_tables[0], "Maintenance");
}

TEST_F(DiagnosisTest, ReportRendering) {
  auto report = DiagnoseIncompleteness(MakeHardwareWarningsQuery(), adb_);
  ASSERT_TRUE(report.ok());
  std::string text = report->ToString();
  EXPECT_NE(text.find("2/3 answer rows guaranteed final"),
            std::string::npos);
  EXPECT_NE(text.find("consult: Warnings"), std::string::npos);
}

}  // namespace
}  // namespace pcdb
