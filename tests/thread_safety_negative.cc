// Negative-compile fixture for the thread-safety annotation layer: this
// file MUST NOT compile under clang with -Wthread-safety -Werror (the
// `tsa` preset / tools/ci.sh lint stage verify that it is rejected). It
// is never part of any normal build target.
//
// Each function below commits a distinct lock-discipline crime against
// the annotated primitives in src/common/thread_annotations.h.

#include "common/thread_annotations.h"

namespace pcdb {
namespace {

class Account {
 public:
  // Crime 1: touches a PCDB_GUARDED_BY member without holding the mutex.
  void DepositUnlocked(int amount) { balance_ += amount; }

  // Crime 2: acquires the lock but claims (via PCDB_EXCLUDES) that it
  // must not be held — then calls a PCDB_REQUIRES function without it.
  int ReadMismatched() PCDB_EXCLUDES(mu_) { return BalanceLocked(); }

  // Crime 3: manual Lock without Unlock on one path.
  void LeakLock(bool take) {
    if (take) mu_.Lock();
    balance_ = 0;
  }

 private:
  int BalanceLocked() const PCDB_REQUIRES(mu_) { return balance_; }

  mutable Mutex mu_;
  int balance_ PCDB_GUARDED_BY(mu_) = 0;
};

}  // namespace
}  // namespace pcdb

int main() {
  pcdb::Account account;
  account.DepositUnlocked(1);
  account.ReadMismatched();
  account.LeakLock(true);
  return 0;
}
