#include <gtest/gtest.h>

#include "common/random.h"
#include "pattern/annotated_eval.h"
#include "pattern/entailment.h"

namespace pcdb {
namespace {

Pattern P(const std::vector<std::string>& fields) {
  std::vector<Pattern::Cell> cells;
  for (const auto& f : fields) {
    if (f == "*") {
      cells.push_back(Pattern::Wildcard());
    } else {
      cells.push_back(Value(f));
    }
  }
  return Pattern(std::move(cells));
}

/// R(a, b) with one row (x, y) and base pattern (x, ∗).
AnnotatedDatabase TinyDatabase() {
  AnnotatedDatabase adb;
  PCDB_CHECK(adb.CreateTable("R", Schema({{"a", ValueType::kString},
                                          {"b", ValueType::kString}}))
                 .ok());
  PCDB_CHECK(adb.AddRow("R", {"x", "y"}).ok());
  PCDB_CHECK(adb.AddPattern("R", {"x", "*"}).ok());
  return adb;
}

TEST(AnswerSliceTest, FiltersByPattern) {
  AnnotatedDatabase adb = TinyDatabase();
  PCDB_CHECK(adb.AddRow("R", {"z", "w"}).ok());
  auto slice = AnswerSlice(*Expr::Scan("R"), adb.database(), P({"x", "*"}));
  ASSERT_TRUE(slice.ok());
  EXPECT_EQ(slice->num_rows(), 1u);
  EXPECT_EQ(slice->row(0)[0], Value("x"));
}

TEST(AnswerSliceTest, ArityMismatchFails) {
  AnnotatedDatabase adb = TinyDatabase();
  EXPECT_FALSE(
      AnswerSlice(*Expr::Scan("R"), adb.database(), P({"x"})).ok());
}

TEST(EntailmentTest, BasePatternEntailsItselfOnScan) {
  AnnotatedDatabase adb = TinyDatabase();
  auto entailed = EntailsWrtInstance(adb, Expr::Scan("R"), P({"x", "*"}));
  ASSERT_TRUE(entailed.ok());
  EXPECT_TRUE(*entailed);
}

TEST(EntailmentTest, UncoveredSliceNotEntailed) {
  AnnotatedDatabase adb = TinyDatabase();
  // Nothing asserts completeness for a = z rows: a completion may add
  // (z, anything).
  auto entailed = EntailsWrtInstance(adb, Expr::Scan("R"), P({"z", "*"}));
  ASSERT_TRUE(entailed.ok());
  EXPECT_FALSE(*entailed);
  // Nor for the whole table.
  auto whole = EntailsWrtInstance(adb, Expr::Scan("R"), P({"*", "*"}));
  ASSERT_TRUE(whole.ok());
  EXPECT_FALSE(*whole);
}

TEST(EntailmentTest, SpecializationOfBasePatternEntailed) {
  AnnotatedDatabase adb = TinyDatabase();
  auto entailed = EntailsWrtInstance(adb, Expr::Scan("R"), P({"x", "y"}));
  ASSERT_TRUE(entailed.ok());
  EXPECT_TRUE(*entailed);
}

TEST(EntailmentTest, SelectionSliceEntailed) {
  AnnotatedDatabase adb = TinyDatabase();
  ExprPtr q = Expr::SelectConst(Expr::Scan("R"), "a", "x");
  // The selection restricts to a = x, which the base pattern covers
  // entirely, so even (∗, ∗) is entailed for the query.
  auto entailed = EntailsWrtInstance(adb, q, P({"*", "*"}));
  ASSERT_TRUE(entailed.ok());
  EXPECT_TRUE(*entailed);
}

TEST(EntailmentTest, JoinRequiresBothSidesComplete) {
  AnnotatedDatabase adb;
  ASSERT_TRUE(adb.CreateTable("R", Schema({{"a", ValueType::kString}})).ok());
  ASSERT_TRUE(adb.CreateTable("S", Schema({{"b", ValueType::kString}})).ok());
  ASSERT_TRUE(adb.AddRow("R", {"x"}).ok());
  ASSERT_TRUE(adb.AddRow("S", {"x"}).ok());
  ASSERT_TRUE(adb.AddPattern("R", {"*"}).ok());
  ExprPtr join = Expr::Join(Expr::Scan("R"), Expr::Scan("S"), "a", "b");
  // S is open-world: a completion may add S(x) again (a duplicate-value
  // row is barred, but a fresh joining value x is already there — adding
  // another tuple with value x is not, since S has no pattern).
  auto entailed = EntailsWrtInstance(adb, join, P({"*", "*"}));
  ASSERT_TRUE(entailed.ok());
  EXPECT_FALSE(*entailed);
  // With S complete as well, the join is complete.
  ASSERT_TRUE(adb.AddPattern("S", {"*"}).ok());
  entailed = EntailsWrtInstance(adb, join, P({"*", "*"}));
  ASSERT_TRUE(entailed.ok());
  EXPECT_TRUE(*entailed);
}

TEST(EntailmentTest, MultiTupleWitnessFound) {
  // Violation that needs simultaneous additions to two tables — the
  // searcher must try multi-tuple completions.
  AnnotatedDatabase adb;
  ASSERT_TRUE(adb.CreateTable("R", Schema({{"a", ValueType::kString}})).ok());
  ASSERT_TRUE(adb.CreateTable("S", Schema({{"b", ValueType::kString}})).ok());
  // Both empty, both open-world: R ⋈ S can gain rows only if BOTH get a
  // matching tuple.
  ExprPtr join = Expr::Join(Expr::Scan("R"), Expr::Scan("S"), "a", "b");
  auto entailed = EntailsWrtInstance(adb, join, P({"*", "*"}));
  ASSERT_TRUE(entailed.ok());
  EXPECT_FALSE(*entailed);
  // But with max_added_tuples = 1 the witness is out of reach — the
  // check (unsoundly) reports entailment, demonstrating why the bound
  // must cover one tuple per scan.
  EntailmentOptions shallow;
  shallow.max_added_tuples = 1;
  entailed = EntailsWrtInstance(adb, join, P({"*", "*"}), shallow);
  ASSERT_TRUE(entailed.ok());
  EXPECT_TRUE(*entailed);
}

/// Soundness (Proposition 5) as a property test: every pattern the
/// algebra computes is entailed wrt the instance, over randomized tiny
/// databases and a pool of query shapes.
TEST(SoundnessPropertyTest, AlgebraOutputsAreEntailed) {
  Rng rng(20250607);
  const std::vector<std::string> values = {"u", "v", "w"};
  int checked = 0;
  for (int round = 0; round < 25; ++round) {
    AnnotatedDatabase adb;
    ASSERT_TRUE(adb.CreateTable("R", Schema({{"a", ValueType::kString},
                                             {"b", ValueType::kString}}))
                    .ok());
    ASSERT_TRUE(adb.CreateTable("S", Schema({{"c", ValueType::kString},
                                             {"d", ValueType::kString}}))
                    .ok());
    auto random_rows = [&](const char* table) {
      int n = static_cast<int>(rng.UniformInt(0, 3));
      for (int i = 0; i < n; ++i) {
        ASSERT_TRUE(
            adb.AddRow(table, {rng.Pick(values), rng.Pick(values)}).ok());
      }
    };
    random_rows("R");
    random_rows("S");
    auto random_patterns = [&](const char* table) {
      int n = static_cast<int>(rng.UniformInt(0, 2));
      for (int i = 0; i < n; ++i) {
        std::vector<std::string> fields;
        for (int j = 0; j < 2; ++j) {
          fields.push_back(rng.Bernoulli(0.5) ? "*" : rng.Pick(values));
        }
        ASSERT_TRUE(adb.AddPattern(table, fields).ok());
      }
    };
    random_patterns("R");
    random_patterns("S");

    std::vector<ExprPtr> queries = {
        Expr::Scan("R"),
        Expr::SelectConst(Expr::Scan("R"), "a", Value(rng.Pick(values))),
        Expr::ProjectOut(Expr::Scan("R"), "a"),
        Expr::SelectAttrEq(Expr::Scan("R"), "a", "b"),
        Expr::Join(Expr::Scan("R"), Expr::Scan("S"), "b", "c"),
        Expr::ProjectOut(
            Expr::Join(Expr::Scan("R"), Expr::Scan("S"), "b", "c"), "d"),
    };
    for (const ExprPtr& q : queries) {
      // Both the schema-level and the instance-aware algebra must be
      // sound.
      for (bool instance_aware : {false, true}) {
        AnnotatedEvalOptions options;
        options.instance_aware = instance_aware;
        auto result = EvaluateAnnotated(q, adb, options);
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        for (const Pattern& p : result->patterns) {
          auto entailed = EntailsWrtInstance(adb, q, p);
          ASSERT_TRUE(entailed.ok()) << entailed.status().ToString();
          EXPECT_TRUE(*entailed)
              << "round " << round << " instance_aware=" << instance_aware
              << " query " << q->ToString() << " pattern " << p.ToString()
              << "\ndatabase R:\n"
              << (*adb.database().GetTable("R"))->ToString()
              << adb.patterns("R").ToString() << "S:\n"
              << (*adb.database().GetTable("S"))->ToString()
              << adb.patterns("S").ToString();
          ++checked;
        }
      }
    }
  }
  // Make sure the property test actually exercised patterns.
  EXPECT_GT(checked, 50);
}

}  // namespace
}  // namespace pcdb
