#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "pattern/algebra.h"
#include "pattern/annotated_eval.h"
#include "pattern/minimize.h"
#include "relational/evaluator.h"
#include "workloads/maintenance_example.h"

namespace pcdb {
namespace {

// ---------------------------------------------------------------------------
// ThreadPool

TEST(ThreadPoolTest, InlineModeRunsTasksImmediately) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  int x = 0;
  pool.Submit([&x] { x = 42; });
  EXPECT_EQ(x, 42);  // ran inline, no Wait needed
  pool.Wait();
}

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitGroupIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 10; ++i) pool.Submit([&count] { count.fetch_add(1); });
    pool.Wait();
    EXPECT_EQ(count.load(), (round + 1) * 10);
  }
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<int> hits(1000, 0);
  ParallelFor(&pool, hits.size(), [&hits](size_t i) { hits[i] += 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 1000);
  ParallelFor(nullptr, 10, [&hits](size_t i) { hits[i] += 1; });  // serial
  EXPECT_EQ(hits[5], 2);
}

// ---------------------------------------------------------------------------
// Size-aware chunking

/// All ranges together must cover [0, n) exactly once, in ascending
/// order, with no empty range.
void ExpectExactCover(const std::vector<IndexRange>& ranges, size_t n) {
  size_t expect_begin = 0;
  for (const IndexRange& r : ranges) {
    EXPECT_EQ(r.begin, expect_begin);
    EXPECT_LT(r.begin, r.end);
    expect_begin = r.end;
  }
  EXPECT_EQ(expect_begin, n);
}

TEST(ChunkRangesTest, CoversRangeWithBalancedChunks) {
  for (size_t n : {1u, 2u, 7u, 64u, 1000u}) {
    for (size_t chunks : {1u, 2u, 3u, 8u, 64u}) {
      auto ranges = ChunkRanges(n, chunks);
      ExpectExactCover(ranges, n);
      EXPECT_EQ(ranges.size(), std::min(n, chunks));
      // Balanced: chunk sizes differ by at most one.
      size_t lo = n, hi = 0;
      for (const IndexRange& r : ranges) {
        lo = std::min(lo, r.end - r.begin);
        hi = std::max(hi, r.end - r.begin);
      }
      EXPECT_LE(hi - lo, 1u) << "n=" << n << " chunks=" << chunks;
    }
  }
  EXPECT_TRUE(ChunkRanges(0, 4).empty());
  EXPECT_TRUE(ChunkRanges(5, 0).empty());
}

TEST(ParallelChunkCountTest, OversubscribesButNeverExceedsItems) {
  EXPECT_EQ(ParallelChunkCount(4, 1000), 32u);  // 8 chunks per worker
  EXPECT_EQ(ParallelChunkCount(4, 5), 5u);      // capped by item count
  EXPECT_EQ(ParallelChunkCount(1, 1000), 1u);   // inline pool: one chunk
  EXPECT_EQ(ParallelChunkCount(4, 0), 0u);
  EXPECT_EQ(ParallelChunkCount(4, 1), 1u);
}

TEST(WeightedChunkRangesTest, SkewedWeightsDoNotCollapseIntoOneChunk) {
  // One giant item among many light ones: the old contiguous equal
  // chunking assigned ~n/chunks *items* per chunk, so one chunk got
  // nearly all the *work*. Weighted chunking must isolate the heavy
  // item and keep every chunk near the target weight.
  std::vector<size_t> weights(64, 1);
  weights[40] = 1000;
  auto ranges = WeightedChunkRanges(weights, 8);
  ExpectExactCover(ranges, weights.size());
  ASSERT_GT(ranges.size(), 1u);
  // The heavy item sits alone in its chunk.
  bool heavy_isolated = false;
  for (const IndexRange& r : ranges) {
    if (r.begin <= 40 && 40 < r.end) {
      heavy_isolated = (r.end - r.begin == 1);
    }
  }
  EXPECT_TRUE(heavy_isolated);
  // No chunk besides the heavy one exceeds ~target light weight.
  const size_t total = 64 - 1 + 1000;
  const size_t target = (total + 7) / 8;
  for (const IndexRange& r : ranges) {
    size_t w = 0;
    for (size_t i = r.begin; i < r.end; ++i) w += weights[i];
    if (!(r.begin <= 40 && 40 < r.end)) {
      EXPECT_LE(w, target) << "[" << r.begin << "," << r.end << ")";
    }
  }
}

TEST(WeightedChunkRangesTest, HeavyTailDoesNotAbsorbLightPrefix) {
  // Regression shape: all mass at the end. A pure greedy accumulator
  // would emit a single chunk [0, 3).
  auto ranges = WeightedChunkRanges({1, 1, 10}, 3);
  ExpectExactCover(ranges, 3);
  EXPECT_GE(ranges.size(), 2u);
  EXPECT_EQ(ranges.back().end - ranges.back().begin, 1u);  // heavy alone
}

TEST(WeightedChunkRangesTest, UniformWeightsMatchPlainChunking) {
  std::vector<size_t> weights(100, 3);
  EXPECT_EQ(WeightedChunkRanges(weights, 8).size(), ChunkRanges(100, 8).size());
  ExpectExactCover(WeightedChunkRanges(weights, 8), 100);
}

TEST(WeightedChunkRangesTest, ZeroWeightsFallBackToEvenChunks) {
  std::vector<size_t> weights(10, 0);
  auto ranges = WeightedChunkRanges(weights, 4);
  ExpectExactCover(ranges, 10);
  EXPECT_EQ(ranges.size(), 4u);
}

TEST(WeightedParallelForTest, VisitsEveryChunkOnceUnderSkew) {
  ThreadPool pool(4);
  std::vector<size_t> weights(200, 1);
  weights[0] = 5000;
  weights[199] = 5000;
  std::vector<std::atomic<int>> hits(weights.size());
  WeightedParallelFor(&pool, weights,
                      [&hits](size_t i) { hits[i].fetch_add(1); });
  int sum = 0;
  for (const auto& h : hits) sum += h.load();
  EXPECT_EQ(sum, 200);
  // Serial path (no pool) covers the same ground.
  WeightedParallelFor(nullptr, weights,
                      [&hits](size_t i) { hits[i].fetch_add(1); });
  sum = 0;
  for (const auto& h : hits) sum += h.load();
  EXPECT_EQ(sum, 400);
}

// ---------------------------------------------------------------------------
// Differential minimization matrix

Pattern RandomPattern(Rng* rng, size_t arity, int values, double wild_prob) {
  std::vector<Pattern::Cell> cells;
  cells.reserve(arity);
  for (size_t i = 0; i < arity; ++i) {
    Pattern::Cell cell;  // wildcard unless a constant is emplaced below
    if (!rng->Bernoulli(wild_prob)) {
      cell.emplace("v" + std::to_string(rng->UniformInt(0, values)));
    }
    cells.push_back(std::move(cell));
  }
  return Pattern(std::move(cells));
}

/// Seeded random set with duplicates: patterns are drawn from a small
/// domain and a fraction are re-added verbatim.
PatternSet RandomSet(uint64_t seed, size_t n, size_t arity, int values,
                     double wild_prob) {
  Rng rng(seed);
  PatternSet out;
  out.Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (!out.empty() && rng.Bernoulli(0.2)) {
      out.Add(out[rng.UniformUint64(out.size())]);  // duplicate
    } else {
      out.Add(RandomPattern(&rng, arity, values, wild_prob));
    }
  }
  return out;
}

struct MatrixCase {
  MinimizeApproach approach;
  PatternIndexKind kind;
};

class ParallelMinimizeMatrixTest
    : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(ParallelMinimizeMatrixTest, MatchesSerialAcrossThreadCounts) {
  const auto [approach, kind] = GetParam();
  uint64_t seed = 77;
  for (size_t arity : {2u, 5u, 8u}) {
    for (double wild_prob : {0.2, 0.5, 0.8}) {
      PatternSet input = RandomSet(++seed, 400, arity, 3, wild_prob);
      PatternSet serial = Minimize(input, approach, kind);
      ASSERT_TRUE(IsMinimal(serial));
      for (size_t threads : {1u, 2u, 8u}) {
        MinimizeStats stats;
        PatternSet parallel =
            ParallelMinimize(input, approach, kind, threads, &stats);
        EXPECT_TRUE(parallel.SetEquals(serial))
            << MinimizeMethodName(kind, approach) << " diverged at arity "
            << arity << ", wildcard density " << wild_prob << ", " << threads
            << " threads";
        EXPECT_TRUE(IsMinimal(parallel));
        EXPECT_EQ(stats.output_size, serial.size());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, ParallelMinimizeMatrixTest,
    ::testing::Values(
        MatrixCase{MinimizeApproach::kAllAtOnce,
                   PatternIndexKind::kLinearList},
        MatrixCase{MinimizeApproach::kAllAtOnce, PatternIndexKind::kHashTable},
        MatrixCase{MinimizeApproach::kAllAtOnce, PatternIndexKind::kPathIndex},
        MatrixCase{MinimizeApproach::kAllAtOnce,
                   PatternIndexKind::kDiscriminationTree},
        MatrixCase{MinimizeApproach::kIncremental,
                   PatternIndexKind::kLinearList},
        MatrixCase{MinimizeApproach::kIncremental,
                   PatternIndexKind::kHashTable},
        MatrixCase{MinimizeApproach::kIncremental,
                   PatternIndexKind::kPathIndex},
        MatrixCase{MinimizeApproach::kIncremental,
                   PatternIndexKind::kDiscriminationTree},
        MatrixCase{MinimizeApproach::kSortedIncremental,
                   PatternIndexKind::kLinearList},
        MatrixCase{MinimizeApproach::kSortedIncremental,
                   PatternIndexKind::kHashTable},
        MatrixCase{MinimizeApproach::kSortedIncremental,
                   PatternIndexKind::kPathIndex},
        MatrixCase{MinimizeApproach::kSortedIncremental,
                   PatternIndexKind::kDiscriminationTree}),
    [](const ::testing::TestParamInfo<MatrixCase>& info) {
      return MinimizeMethodName(info.param.kind, info.param.approach);
    });

TEST(ParallelMinimizeTest, EmptyAndTinyInputs) {
  EXPECT_TRUE(ParallelMinimize(PatternSet(), 8).empty());
  Rng rng(1);
  PatternSet one;
  one.Add(RandomPattern(&rng, 4, 3, 0.5));
  EXPECT_EQ(ParallelMinimize(one, 8).size(), 1u);
}

TEST(ParallelMinimizeTest, SharedPoolOverloadMatchesSerial) {
  PatternSet input = RandomSet(123, 600, 4, 2, 0.5);
  PatternSet serial = Minimize(input);
  ThreadPool pool(4);
  PatternSet parallel =
      ParallelMinimize(input, MinimizeApproach::kAllAtOnce,
                       PatternIndexKind::kDiscriminationTree, &pool);
  EXPECT_TRUE(parallel.SetEquals(serial));
}

TEST(ParallelMinimizeTest, PoolAwareIncrementalScanMatchesSerial) {
  // The scan-pool overload parallelizes CollectSubsumed inside the
  // incremental approach. Use wildcard-heavy inputs so the maximal set
  // (and thus the scanned index) stays large enough to engage the
  // chunked scan, and exercise every index kind: the parallel scan runs
  // over a snapshot of the index contents, independent of the index.
  uint64_t seed = 4242;
  ThreadPool pool(4);
  for (PatternIndexKind kind :
       {PatternIndexKind::kLinearList, PatternIndexKind::kHashTable,
        PatternIndexKind::kPathIndex, PatternIndexKind::kDiscriminationTree}) {
    for (double wild_prob : {0.5, 0.8}) {
      PatternSet input = RandomSet(++seed, 800, 6, 3, wild_prob);
      Result<PatternSet> serial =
          Minimize(input, MinimizeApproach::kIncremental, kind, ExecContext());
      ASSERT_TRUE(serial.ok()) << serial.status().ToString();
      MinimizeStats stats;
      Result<PatternSet> pooled =
          Minimize(input, MinimizeApproach::kIncremental, kind, &pool,
                   ExecContext(), &stats);
      ASSERT_TRUE(pooled.ok()) << pooled.status().ToString();
      EXPECT_TRUE(pooled->SetEquals(*serial))
          << "pool-aware incremental scan diverged, wildcard density "
          << wild_prob;
      EXPECT_TRUE(IsMinimal(*pooled));
      EXPECT_EQ(stats.output_size, serial->size());
      // A null pool is documented to be exactly the serial path.
      Result<PatternSet> null_pool = Minimize(
          input, MinimizeApproach::kIncremental, kind, nullptr, ExecContext());
      ASSERT_TRUE(null_pool.ok());
      EXPECT_TRUE(null_pool->SetEquals(*serial));
    }
  }
}

// ---------------------------------------------------------------------------
// Parallel pattern join

TEST(ParallelPatternJoinTest, MatchesSerialJoin) {
  uint64_t seed = 9;
  for (size_t n : {1u, 17u, 200u}) {
    PatternSet left = RandomSet(++seed, n, 4, 3, 0.4);
    PatternSet right = RandomSet(++seed, n, 3, 3, 0.4);
    PatternSet serial = PatternJoin(left, 1, right, 0);
    ThreadPool pool(8);
    PatternSet parallel =
        PatternJoin(left, 1, right, 0,
                    PatternJoinStrategy::kPartitionedHashJoin, &pool);
    EXPECT_TRUE(parallel.SetEquals(serial)) << "n=" << n;
    // And both agree with the literal cross-product definition.
    PatternSet cross = PatternJoin(left, 1, right, 0,
                                   PatternJoinStrategy::kCrossProductSelect);
    EXPECT_TRUE(Minimize(parallel).SetEquals(Minimize(cross)));
  }
}

// ---------------------------------------------------------------------------
// Parallel relational hash-join probe

TEST(ParallelEvalJoinTest, BitIdenticalToSerialEvaluation) {
  Database db;
  Table orders(Schema({{"oid", ValueType::kInt64},
                       {"customer", ValueType::kString}}));
  Table items(Schema({{"order_id", ValueType::kInt64},
                      {"sku", ValueType::kString}}));
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    orders.AppendUnchecked(
        Tuple{Value(int64_t{i}), Value("c" + std::to_string(i % 7))});
  }
  for (int i = 0; i < 2000; ++i) {
    items.AppendUnchecked(
        Tuple{Value(static_cast<int64_t>(rng.UniformUint64(600))),
              Value("sku" + std::to_string(i % 13))});
  }
  db.PutTable("Orders", std::move(orders));
  db.PutTable("Items", std::move(items));

  ExprPtr plan = Expr::Join(Expr::Scan("Orders"), Expr::Scan("Items"), "oid",
                            "order_id");
  auto serial = Evaluate(*plan, db);
  ASSERT_TRUE(serial.ok());
  for (size_t threads : {2u, 8u}) {
    EvalOptions options;
    options.num_threads = threads;
    auto parallel = Evaluate(*plan, db, options);
    ASSERT_TRUE(parallel.ok());
    ASSERT_EQ(parallel->num_rows(), serial->num_rows());
    // Bit-identical: same rows in the same order, not just bag-equal.
    for (size_t r = 0; r < serial->num_rows(); ++r) {
      ASSERT_EQ(parallel->row(r), serial->row(r)) << "row " << r;
    }
  }
}

// ---------------------------------------------------------------------------
// Annotated evaluation with the shared pool

TEST(ParallelAnnotatedEvalTest, MatchesSerialEndToEnd) {
  AnnotatedDatabase adb = MakeMaintenanceDatabase();
  ExprPtr query = MakeHardwareWarningsQuery();
  auto serial = EvaluateAnnotated(query, adb);
  ASSERT_TRUE(serial.ok());
  AnnotatedEvalOptions options;
  options.num_threads = 4;
  auto parallel = EvaluateAnnotated(query, adb, options);
  ASSERT_TRUE(parallel.ok());
  EXPECT_TRUE(parallel->data.BagEquals(serial->data));
  EXPECT_TRUE(parallel->patterns.SetEquals(serial->patterns));
}

}  // namespace
}  // namespace pcdb
