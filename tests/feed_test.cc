#include <gtest/gtest.h>

#include "pattern/annotated_eval.h"
#include "pattern/feed.h"

namespace pcdb {
namespace {

Pattern P(const std::vector<std::string>& fields) {
  std::vector<Pattern::Cell> cells;
  for (const auto& f : fields) {
    if (f == "*") {
      cells.push_back(Pattern::Wildcard());
    } else {
      cells.push_back(Value(f));
    }
  }
  return Pattern(std::move(cells));
}

AnnotatedDatabase WarningsDatabase() {
  AnnotatedDatabase adb;
  PCDB_CHECK(adb.CreateTable("w", Schema({{"day", ValueType::kString},
                                          {"element", ValueType::kString}}))
                 .ok());
  return adb;
}

TEST(FeedTest, IngestThenPunctuate) {
  AnnotatedDatabase adb = WarningsDatabase();
  FeedManager feed(&adb);
  EXPECT_TRUE(feed.Ingest("w", {"Mon", "ne1"}).ok());
  EXPECT_TRUE(feed.Ingest("w", {"Mon", "ne2"}).ok());
  EXPECT_TRUE(feed.Punctuate("w", {"Mon", "*"}).ok());
  EXPECT_EQ(feed.stats().records_ingested, 2u);
  EXPECT_EQ(feed.stats().punctuations, 1u);
  EXPECT_EQ(adb.patterns("w").size(), 1u);
}

TEST(FeedTest, RejectPolicyBlocksLateRecords) {
  AnnotatedDatabase adb = WarningsDatabase();
  FeedManager feed(&adb, FeedViolationPolicy::kRejectRecord);
  ASSERT_TRUE(feed.Punctuate("w", {"Mon", "*"}).ok());
  Status late = feed.Ingest("w", {"Mon", "ne9"});
  EXPECT_FALSE(late.ok());
  EXPECT_EQ(feed.stats().violations, 1u);
  EXPECT_EQ(feed.stats().records_rejected, 1u);
  // The record was not stored; the pattern stands.
  EXPECT_EQ((*adb.database().GetTable("w"))->num_rows(), 0u);
  EXPECT_EQ(adb.patterns("w").size(), 1u);
  // Records outside the punctuated slice still flow.
  EXPECT_TRUE(feed.Ingest("w", {"Tue", "ne9"}).ok());
}

TEST(FeedTest, RetractPolicyWithdrawsViolatedPatterns) {
  AnnotatedDatabase adb = WarningsDatabase();
  FeedManager feed(&adb, FeedViolationPolicy::kRetractPatterns);
  ASSERT_TRUE(feed.Punctuate("w", {"Mon", "*"}).ok());
  ASSERT_TRUE(feed.Punctuate("w", {"Tue", "*"}).ok());
  EXPECT_TRUE(feed.Ingest("w", {"Mon", "ne9"}).ok());
  EXPECT_EQ(feed.stats().violations, 1u);
  EXPECT_EQ(feed.stats().patterns_retracted, 1u);
  // The Monday punctuation is gone, Tuesday's survives; the record is in.
  EXPECT_EQ((*adb.database().GetTable("w"))->num_rows(), 1u);
  const PatternSet& patterns = adb.patterns("w");
  ASSERT_EQ(patterns.size(), 1u);
  EXPECT_EQ(patterns[0], P({"Tue", "*"}));
}

TEST(FeedTest, PunctuationsAreMinimizedTogether) {
  AnnotatedDatabase adb = WarningsDatabase();
  FeedManager feed(&adb);
  ASSERT_TRUE(feed.Punctuate("w", {"Mon", "ne1"}).ok());
  ASSERT_TRUE(feed.Punctuate("w", {"Mon", "*"}).ok());  // subsumes the first
  EXPECT_EQ(adb.patterns("w").size(), 1u);
  EXPECT_EQ(adb.patterns("w")[0], P({"Mon", "*"}));
}

TEST(FeedTest, MalformedRecordsFailCleanly) {
  AnnotatedDatabase adb = WarningsDatabase();
  FeedManager feed(&adb);
  EXPECT_FALSE(feed.Ingest("w", {"Mon"}).ok());
  EXPECT_FALSE(feed.Ingest("ghost", {"Mon", "ne1"}).ok());
  EXPECT_FALSE(feed.Punctuate("w", {"Mon"}).ok());
  EXPECT_EQ(feed.stats().records_ingested, 0u);
}

TEST(FeedTest, QueriesSeePunctuationProgress) {
  AnnotatedDatabase adb = WarningsDatabase();
  FeedManager feed(&adb);
  ASSERT_TRUE(feed.Ingest("w", {"Mon", "ne1"}).ok());
  ExprPtr q = Expr::SelectConst(Expr::Scan("w"), "day", "Mon");
  auto before = EvaluateAnnotated(q, adb);
  ASSERT_TRUE(before.ok());
  EXPECT_TRUE(before->patterns.empty());
  ASSERT_TRUE(feed.Punctuate("w", {"Mon", "*"}).ok());
  auto after = EvaluateAnnotated(q, adb);
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after->patterns.AnySubsumes(Pattern::AllWildcards(2)));
}

}  // namespace
}  // namespace pcdb
