#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "pattern/annotated_eval.h"
#include "pattern/feed.h"

namespace pcdb {
namespace {

Pattern P(const std::vector<std::string>& fields) {
  std::vector<Pattern::Cell> cells;
  for (const auto& f : fields) {
    if (f == "*") {
      cells.push_back(Pattern::Wildcard());
    } else {
      cells.push_back(Value(f));
    }
  }
  return Pattern(std::move(cells));
}

AnnotatedDatabase WarningsDatabase() {
  AnnotatedDatabase adb;
  PCDB_CHECK(adb.CreateTable("w", Schema({{"day", ValueType::kString},
                                          {"element", ValueType::kString}}))
                 .ok());
  return adb;
}

TEST(FeedTest, IngestThenPunctuate) {
  AnnotatedDatabase adb = WarningsDatabase();
  FeedManager feed(&adb);
  EXPECT_TRUE(feed.Ingest("w", {"Mon", "ne1"}).ok());
  EXPECT_TRUE(feed.Ingest("w", {"Mon", "ne2"}).ok());
  EXPECT_TRUE(feed.Punctuate("w", {"Mon", "*"}).ok());
  EXPECT_EQ(feed.stats().records_ingested, 2u);
  EXPECT_EQ(feed.stats().punctuations, 1u);
  EXPECT_EQ(adb.patterns("w").size(), 1u);
}

TEST(FeedTest, RejectPolicyBlocksLateRecords) {
  AnnotatedDatabase adb = WarningsDatabase();
  FeedManager feed(&adb, FeedViolationPolicy::kRejectRecord);
  ASSERT_TRUE(feed.Punctuate("w", {"Mon", "*"}).ok());
  Status late = feed.Ingest("w", {"Mon", "ne9"});
  EXPECT_FALSE(late.ok());
  EXPECT_EQ(feed.stats().violations, 1u);
  EXPECT_EQ(feed.stats().records_rejected, 1u);
  // The record was not stored; the pattern stands.
  EXPECT_EQ((*adb.database().GetTable("w"))->num_rows(), 0u);
  EXPECT_EQ(adb.patterns("w").size(), 1u);
  // Records outside the punctuated slice still flow.
  EXPECT_TRUE(feed.Ingest("w", {"Tue", "ne9"}).ok());
}

TEST(FeedTest, RetractPolicyWithdrawsViolatedPatterns) {
  AnnotatedDatabase adb = WarningsDatabase();
  FeedManager feed(&adb, FeedViolationPolicy::kRetractPatterns);
  ASSERT_TRUE(feed.Punctuate("w", {"Mon", "*"}).ok());
  ASSERT_TRUE(feed.Punctuate("w", {"Tue", "*"}).ok());
  EXPECT_TRUE(feed.Ingest("w", {"Mon", "ne9"}).ok());
  EXPECT_EQ(feed.stats().violations, 1u);
  EXPECT_EQ(feed.stats().patterns_retracted, 1u);
  // The Monday punctuation is gone, Tuesday's survives; the record is in.
  EXPECT_EQ((*adb.database().GetTable("w"))->num_rows(), 1u);
  const PatternSet& patterns = adb.patterns("w");
  ASSERT_EQ(patterns.size(), 1u);
  EXPECT_EQ(patterns[0], P({"Tue", "*"}));
}

TEST(FeedTest, PunctuationsAreMinimizedTogether) {
  AnnotatedDatabase adb = WarningsDatabase();
  FeedManager feed(&adb);
  ASSERT_TRUE(feed.Punctuate("w", {"Mon", "ne1"}).ok());
  ASSERT_TRUE(feed.Punctuate("w", {"Mon", "*"}).ok());  // subsumes the first
  EXPECT_EQ(adb.patterns("w").size(), 1u);
  EXPECT_EQ(adb.patterns("w")[0], P({"Mon", "*"}));
}

TEST(FeedTest, MalformedRecordsFailCleanly) {
  AnnotatedDatabase adb = WarningsDatabase();
  FeedManager feed(&adb);
  EXPECT_FALSE(feed.Ingest("w", {"Mon"}).ok());
  EXPECT_FALSE(feed.Ingest("ghost", {"Mon", "ne1"}).ok());
  EXPECT_FALSE(feed.Punctuate("w", {"Mon"}).ok());
  EXPECT_EQ(feed.stats().records_ingested, 0u);
}

// The violation check and the row append are one critical section: an
// ingest that passed the check must not interleave with a punctuation
// that would have rejected it. Run writers and punctuators head-on and
// check the books balance exactly (this is also the TSan target for
// FeedManager's annotated mutex).
TEST(FeedTest, ConcurrentIngestAndPunctuateKeepTheBooksConsistent) {
  AnnotatedDatabase adb = WarningsDatabase();
  FeedManager feed(&adb, FeedViolationPolicy::kRejectRecord);
  constexpr size_t kThreads = 4;
  constexpr size_t kOpsPerThread = 200;
  std::atomic<size_t> accepted{0};
  std::atomic<size_t> rejected{0};

  ThreadPool pool(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    pool.Submit([&, t] {
      const std::string day = t % 2 == 0 ? "Mon" : "Tue";
      for (size_t i = 0; i < kOpsPerThread; ++i) {
        if (i == kOpsPerThread / 2 && t == 0) {
          // Close the Monday slice mid-stream; Monday ingests racing
          // past this point must be rejected, never half-applied.
          ASSERT_TRUE(feed.Punctuate("w", {"Mon", "*"}).ok());
          continue;
        }
        const std::string id = "ne" + std::to_string(t) + "_" +
                               std::to_string(i);
        if (feed.Ingest("w", {day, id}).ok()) {
          accepted.fetch_add(1);
        } else {
          rejected.fetch_add(1);
        }
      }
    });
  }
  pool.Wait();

  // Every attempt is accounted for exactly once, and every accepted
  // record is actually in the table (no lost or duplicated appends).
  const size_t attempts = kThreads * kOpsPerThread - 1;  // one op punctuated
  EXPECT_EQ(feed.stats().records_ingested + feed.stats().records_rejected,
            attempts);
  EXPECT_EQ(feed.stats().records_ingested, accepted.load());
  EXPECT_EQ(feed.stats().records_rejected, rejected.load());
  EXPECT_EQ(feed.stats().violations, rejected.load());
  EXPECT_EQ((*adb.database().GetTable("w"))->num_rows(), accepted.load());
  EXPECT_EQ(feed.stats().punctuations, 1u);
  ASSERT_EQ(adb.patterns("w").size(), 1u);
  EXPECT_EQ(adb.patterns("w")[0], P({"Mon", "*"}));
  // Tuesday writers never saw a violation.
  EXPECT_GE(accepted.load(), 2 * kOpsPerThread);
}

TEST(FeedTest, QueriesSeePunctuationProgress) {
  AnnotatedDatabase adb = WarningsDatabase();
  FeedManager feed(&adb);
  ASSERT_TRUE(feed.Ingest("w", {"Mon", "ne1"}).ok());
  ExprPtr q = Expr::SelectConst(Expr::Scan("w"), "day", "Mon");
  auto before = EvaluateAnnotated(q, adb);
  ASSERT_TRUE(before.ok());
  EXPECT_TRUE(before->patterns.empty());
  ASSERT_TRUE(feed.Punctuate("w", {"Mon", "*"}).ok());
  auto after = EvaluateAnnotated(q, adb);
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after->patterns.AnySubsumes(Pattern::AllWildcards(2)));
}

}  // namespace
}  // namespace pcdb
