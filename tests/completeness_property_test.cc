// Tests of the *completeness* direction of the algebras: Proposition 6
// (the schema-level algebra derives every satisfiable entailed pattern up
// to subsumption, when the instance is ignored) and the §5 conjecture
// (the instance-aware algebra is complete wrt the instance for queries
// that do not reuse attributes in joins).
//
// Method: over tiny domains, enumerate EVERY candidate query pattern,
// decide entailment with the model checker, decide satisfiability by
// evaluating the query over the saturated database (all domain rows
// everywhere), and require every entailed satisfiable pattern to be
// subsumed by the algebra's output.

#include <gtest/gtest.h>

#include "common/random.h"
#include "pattern/annotated_eval.h"
#include "pattern/entailment.h"
#include "relational/evaluator.h"

namespace pcdb {
namespace {

const std::vector<std::string> kDomain = {"u", "v"};

/// Every pattern over `arity` positions with cells from kDomain ∪ {*}.
std::vector<Pattern> AllCandidatePatterns(size_t arity) {
  std::vector<Pattern> out = {Pattern::AllWildcards(0)};
  for (size_t i = 0; i < arity; ++i) {
    std::vector<Pattern> next;
    for (const Pattern& prefix : out) {
      next.push_back(prefix.Concat(Pattern::AllWildcards(1)));
      for (const std::string& v : kDomain) {
        next.push_back(
            prefix.Concat(Pattern::AllWildcards(1).WithValue(0, Value(v))));
      }
    }
    out = std::move(next);
  }
  return out;
}

/// The maximal candidate completion over the domain: the stored rows
/// plus every domain combination NOT frozen by a base completeness
/// pattern. A candidate query pattern is satisfiable *wrt the instance*
/// iff the query over this database yields a matching row — patterns
/// whose slice no candidate completion can populate are "zombies"
/// (Appendix E) and are exempt from the completeness claim: they are
/// entailed vacuously and derivable only by zombie generation.
AnnotatedDatabase MaximalCompletion(const AnnotatedDatabase& adb) {
  AnnotatedDatabase full;
  for (const std::string& name : adb.database().TableNames()) {
    const Table* table = *adb.database().GetTable(name);
    PCDB_CHECK(full.CreateTable(name, table->schema()).ok());
    PCDB_CHECK(table->schema().arity() == 2);
    for (const Tuple& row : table->rows()) {
      PCDB_CHECK(full.AddRow(name, row).ok());
    }
    const PatternSet& frozen = adb.patterns(name);
    for (const std::string& a : kDomain) {
      for (const std::string& b : kDomain) {
        Tuple t = {Value(a), Value(b)};
        if (!frozen.AnySubsumesTuple(t)) {
          PCDB_CHECK(full.AddRow(name, std::move(t)).ok());
        }
      }
    }
  }
  return full;
}

void CheckCompleteness(const AnnotatedDatabase& adb, const ExprPtr& query,
                       const std::string& context) {
  AnnotatedEvalOptions aware;
  aware.instance_aware = true;
  auto result = EvaluateAnnotated(query, adb, aware);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  AnnotatedDatabase maximal = MaximalCompletion(adb);
  auto possible = Evaluate(query, maximal.database());
  ASSERT_TRUE(possible.ok()) << possible.status().ToString();

  for (const Pattern& p :
       AllCandidatePatterns(result->data.schema().arity())) {
    // Satisfiable?
    bool satisfiable = false;
    for (const Tuple& row : possible->rows()) {
      if (p.SubsumesTuple(row)) {
        satisfiable = true;
        break;
      }
    }
    if (!satisfiable) continue;
    auto entailed = EntailsWrtInstance(adb, query, p);
    ASSERT_TRUE(entailed.ok()) << entailed.status().ToString();
    if (!*entailed) continue;
    EXPECT_TRUE(result->patterns.AnySubsumes(p))
        << context << ": entailed satisfiable pattern " << p.ToString()
        << " not derived by the instance-aware algebra; derived:\n"
        << result->patterns.ToString() << "query: " << query->ToString();
  }
}

TEST(CompletenessPropertyTest, ScanIsComplete) {
  Rng rng(31415);
  for (int round = 0; round < 8; ++round) {
    AnnotatedDatabase adb;
    ASSERT_TRUE(adb.CreateTable("R", Schema({{"a", ValueType::kString},
                                             {"b", ValueType::kString}}))
                    .ok());
    int rows = static_cast<int>(rng.UniformInt(0, 3));
    for (int i = 0; i < rows; ++i) {
      ASSERT_TRUE(adb.AddRow("R", {rng.Pick(kDomain), rng.Pick(kDomain)})
                      .ok());
    }
    int patterns = static_cast<int>(rng.UniformInt(0, 2));
    for (int i = 0; i < patterns; ++i) {
      ASSERT_TRUE(adb.AddPattern(
                         "R", {rng.Bernoulli(0.5) ? "*" : rng.Pick(kDomain),
                               rng.Bernoulli(0.5) ? "*" : rng.Pick(kDomain)})
                      .ok());
    }
    CheckCompleteness(adb, Expr::Scan("R"),
                      "scan round " + std::to_string(round));
  }
}

TEST(CompletenessPropertyTest, SelectionIsComplete) {
  Rng rng(92653);
  for (int round = 0; round < 8; ++round) {
    AnnotatedDatabase adb;
    ASSERT_TRUE(adb.CreateTable("R", Schema({{"a", ValueType::kString},
                                             {"b", ValueType::kString}}))
                    .ok());
    int rows = static_cast<int>(rng.UniformInt(0, 3));
    for (int i = 0; i < rows; ++i) {
      ASSERT_TRUE(adb.AddRow("R", {rng.Pick(kDomain), rng.Pick(kDomain)})
                      .ok());
    }
    int patterns = static_cast<int>(rng.UniformInt(0, 2));
    for (int i = 0; i < patterns; ++i) {
      ASSERT_TRUE(adb.AddPattern(
                         "R", {rng.Bernoulli(0.5) ? "*" : rng.Pick(kDomain),
                               rng.Bernoulli(0.5) ? "*" : rng.Pick(kDomain)})
                      .ok());
    }
    ExprPtr q =
        Expr::SelectConst(Expr::Scan("R"), "a", Value(rng.Pick(kDomain)));
    CheckCompleteness(adb, q, "selection round " + std::to_string(round));
  }
}

TEST(CompletenessPropertyTest, JoinWithoutAttributeReuse) {
  // The §5 conjecture's query class: each attribute used in at most one
  // join. R(a,b) ⋈_{b=c} S(c,d).
  Rng rng(58979);
  for (int round = 0; round < 6; ++round) {
    AnnotatedDatabase adb;
    ASSERT_TRUE(adb.CreateTable("R", Schema({{"a", ValueType::kString},
                                             {"b", ValueType::kString}}))
                    .ok());
    ASSERT_TRUE(adb.CreateTable("S", Schema({{"c", ValueType::kString},
                                             {"d", ValueType::kString}}))
                    .ok());
    for (const char* table : {"R", "S"}) {
      int rows = static_cast<int>(rng.UniformInt(0, 2));
      for (int i = 0; i < rows; ++i) {
        ASSERT_TRUE(
            adb.AddRow(table, {rng.Pick(kDomain), rng.Pick(kDomain)}).ok());
      }
      int patterns = static_cast<int>(rng.UniformInt(0, 2));
      for (int i = 0; i < patterns; ++i) {
        ASSERT_TRUE(
            adb.AddPattern(table,
                           {rng.Bernoulli(0.5) ? "*" : rng.Pick(kDomain),
                            rng.Bernoulli(0.5) ? "*" : rng.Pick(kDomain)})
                .ok());
      }
    }
    ExprPtr q = Expr::Join(Expr::Scan("R"), Expr::Scan("S"), "b", "c");
    CheckCompleteness(adb, q, "join round " + std::to_string(round));
  }
}

}  // namespace
}  // namespace pcdb
