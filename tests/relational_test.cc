#include <gtest/gtest.h>

#include "relational/csv.h"
#include "relational/database.h"
#include "relational/evaluator.h"
#include "relational/expr.h"
#include "workloads/maintenance_example.h"

namespace pcdb {
namespace {

Schema TwoColumnSchema() {
  return Schema({{"a", ValueType::kInt64}, {"b", ValueType::kString}});
}

TEST(SchemaTest, ResolveExactAndSuffix) {
  Schema s({{"W.day", ValueType::kString}, {"W.week", ValueType::kInt64}});
  ASSERT_TRUE(s.Resolve("W.day").ok());
  EXPECT_EQ(*s.Resolve("W.day"), 0u);
  EXPECT_EQ(*s.Resolve("week"), 1u);
  EXPECT_FALSE(s.Resolve("month").ok());
}

TEST(SchemaTest, ResolveAmbiguous) {
  Schema s({{"W.ID", ValueType::kString}, {"M.ID", ValueType::kString}});
  auto r = s.Resolve("ID");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(s.Resolve("W.ID").ok());
}

TEST(SchemaTest, ExactMatchBeatsSuffixMatch) {
  // "a" names the first column exactly; "J.a" only suffix-matches — the
  // exact match must win rather than raising ambiguity.
  Schema s({{"a", ValueType::kString}, {"J.a", ValueType::kString}});
  auto idx = s.Resolve("a");
  ASSERT_TRUE(idx.ok()) << idx.status().ToString();
  EXPECT_EQ(*idx, 0u);
  EXPECT_EQ(*s.Resolve("J.a"), 1u);
}

TEST(SchemaTest, SuffixRequiresDotBoundary) {
  Schema s({{"leader", ValueType::kString}});
  // "der" is a suffix of "leader" but not after a '.'; must not match.
  EXPECT_FALSE(s.Resolve("der").ok());
  EXPECT_TRUE(s.Resolve("leader").ok());
}

TEST(SchemaTest, WithoutColumnAndConcat) {
  Schema s = TwoColumnSchema();
  Schema without = s.WithoutColumn(0);
  EXPECT_EQ(without.arity(), 1u);
  EXPECT_EQ(without.column(0).name, "b");
  Schema cat = s.Concat(without);
  EXPECT_EQ(cat.arity(), 3u);
  EXPECT_EQ(cat.column(2).name, "b");
}

TEST(SchemaTest, QualifyReplacesExistingQualifier) {
  Schema s({{"X.a", ValueType::kInt64}});
  Schema q = s.Qualify("Y");
  EXPECT_EQ(q.column(0).name, "Y.a");
}

TEST(TableTest, AppendChecksArityAndTypes) {
  Table t(TwoColumnSchema());
  EXPECT_TRUE(t.Append({1, "x"}).ok());
  EXPECT_EQ(t.Append({1}).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(t.Append({"x", "y"}).code(), StatusCode::kTypeError);
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(TableTest, BagEqualsRespectsMultiplicity) {
  Table a(TwoColumnSchema());
  Table b(TwoColumnSchema());
  ASSERT_TRUE(a.Append({1, "x"}).ok());
  ASSERT_TRUE(a.Append({1, "x"}).ok());
  ASSERT_TRUE(b.Append({1, "x"}).ok());
  EXPECT_FALSE(a.BagEquals(b));
  ASSERT_TRUE(b.Append({1, "x"}).ok());
  EXPECT_TRUE(a.BagEquals(b));
}

TEST(TableTest, BagContainment) {
  Table a(TwoColumnSchema());
  Table b(TwoColumnSchema());
  ASSERT_TRUE(a.Append({1, "x"}).ok());
  ASSERT_TRUE(b.Append({1, "x"}).ok());
  ASSERT_TRUE(b.Append({2, "y"}).ok());
  EXPECT_TRUE(a.BagContainedIn(b));
  EXPECT_FALSE(b.BagContainedIn(a));
}

TEST(TableTest, DistinctValues) {
  Table t(TwoColumnSchema());
  ASSERT_TRUE(t.Append({1, "x"}).ok());
  ASSERT_TRUE(t.Append({1, "y"}).ok());
  ASSERT_TRUE(t.Append({2, "x"}).ok());
  EXPECT_EQ(t.DistinctValues(0).size(), 2u);
  EXPECT_EQ(t.DistinctValues(1).size(), 2u);
}

TEST(DatabaseTest, CreateAndLookup) {
  Database db;
  EXPECT_TRUE(db.CreateTable("R", TwoColumnSchema()).ok());
  EXPECT_EQ(db.CreateTable("R", TwoColumnSchema()).code(),
            StatusCode::kAlreadyExists);
  EXPECT_TRUE(db.HasTable("R"));
  EXPECT_FALSE(db.HasTable("S"));
  EXPECT_TRUE(db.GetTable("R").ok());
  EXPECT_EQ(db.GetTable("S").status().code(), StatusCode::kNotFound);
}

class EvaluatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    adb_ = MakeMaintenanceDatabase();
    db_ = &adb_.database();
  }

  AnnotatedDatabase adb_;
  const Database* db_ = nullptr;
};

TEST_F(EvaluatorTest, ScanReturnsAllRows) {
  auto result = Evaluate(Expr::Scan("Warnings"), *db_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 7u);
  EXPECT_EQ(result->schema().column(0).name, "day");
}

TEST_F(EvaluatorTest, ScanWithAliasQualifiesColumns) {
  auto result = Evaluate(Expr::Scan("Warnings", "W"), *db_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->schema().column(0).name, "W.day");
}

TEST_F(EvaluatorTest, SelectConst) {
  auto result =
      Evaluate(Expr::SelectConst(Expr::Scan("Warnings"), "week", 2), *db_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 3u);
  for (const Tuple& t : result->rows()) EXPECT_EQ(t[1], Value(2));
}

TEST_F(EvaluatorTest, SelectConstTypeMismatchFails) {
  auto result =
      Evaluate(Expr::SelectConst(Expr::Scan("Warnings"), "week", "2"), *db_);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kTypeError);
}

TEST_F(EvaluatorTest, SelectUnknownAttributeFails) {
  auto result =
      Evaluate(Expr::SelectConst(Expr::Scan("Warnings"), "month", 2), *db_);
  EXPECT_FALSE(result.ok());
}

TEST_F(EvaluatorTest, ProjectOut) {
  auto result =
      Evaluate(Expr::ProjectOut(Expr::Scan("Warnings"), "day"), *db_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->schema().arity(), 3u);
  EXPECT_EQ(result->num_rows(), 7u);  // bag semantics keeps duplicates
  EXPECT_EQ(result->schema().column(0).name, "week");
}

TEST_F(EvaluatorTest, RearrangeReordersAndDuplicates) {
  auto result = Evaluate(
      Expr::Rearrange(Expr::Scan("Teams"), {"specialization", "name", "name"}),
      *db_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->schema().arity(), 3u);
  EXPECT_EQ(result->row(0)[1], result->row(0)[2]);
}

TEST_F(EvaluatorTest, SelectAttrEq) {
  // Self-join Maintenance on ID, then require equal responsibilities
  // (trivially true) — use a table where the check matters instead:
  // construct rows with equal/unequal columns.
  Database db;
  ASSERT_TRUE(db.CreateTable("R", Schema({{"a", ValueType::kString},
                                          {"b", ValueType::kString}}))
                  .ok());
  Table* r = *db.GetMutableTable("R");
  ASSERT_TRUE(r->Append({"x", "x"}).ok());
  ASSERT_TRUE(r->Append({"x", "y"}).ok());
  auto result = Evaluate(Expr::SelectAttrEq(Expr::Scan("R"), "a", "b"), db);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 1u);
}

TEST_F(EvaluatorTest, EquiJoin) {
  ExprPtr join = Expr::Join(Expr::Scan("Maintenance", "M"),
                            Expr::Scan("Teams", "T"), "responsible", "name");
  auto result = Evaluate(join, *db_);
  ASSERT_TRUE(result.ok());
  // tw37-A(1 team row), tw59-D(1), tw83-B(1), tw140-C twice × C twice = 4.
  EXPECT_EQ(result->num_rows(), 7u);
  EXPECT_EQ(result->schema().arity(), 5u);
}

TEST_F(EvaluatorTest, CrossJoin) {
  auto result = Evaluate(
      Expr::CrossJoin(Expr::Scan("Teams", "T1"), Expr::Scan("Teams", "T2")),
      *db_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 25u);
}

TEST_F(EvaluatorTest, HardwareWarningsQueryMatchesPaper) {
  auto result = Evaluate(MakeHardwareWarningsQuery(), *db_);
  ASSERT_TRUE(result.ok());
  // Table 3: exactly three data rows.
  ASSERT_EQ(result->num_rows(), 3u);
  Table sorted = *result;
  sorted.Sort();
  EXPECT_EQ(sorted.row(0)[0], Value("Mon"));
  EXPECT_EQ(sorted.row(0)[2], Value("tw83"));
  EXPECT_EQ(sorted.row(1)[0], Value("Tue"));
  EXPECT_EQ(sorted.row(1)[2], Value("tw83"));
  EXPECT_EQ(sorted.row(2)[0], Value("Wed"));
  EXPECT_EQ(sorted.row(2)[2], Value("tw37"));
}

TEST_F(EvaluatorTest, EquivalentPlansAgree) {
  auto a = Evaluate(MakeHardwareWarningsQuery(), *db_);
  auto b = Evaluate(MakeHardwareWarningsQueryAlternate(), *db_);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->num_rows(), b->num_rows());
  // Same bag of rows modulo column order; compare projected columns.
  Table ta = *a;
  Table tb = *b;
  ta.Sort();
  tb.Sort();
  for (size_t i = 0; i < ta.num_rows(); ++i) {
    EXPECT_EQ(ta.row(i)[0], tb.row(i)[0]);  // W.day in both plans
  }
}

TEST_F(EvaluatorTest, AggregateCountPerGroup) {
  ExprPtr agg = Expr::Aggregate(Expr::Scan("Maintenance"), {"responsible"},
                                {{AggFunc::kCount, "", "n"}});
  auto result = Evaluate(agg, *db_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 4u);  // A, B, C, D
  for (const Tuple& t : result->rows()) {
    if (t[0] == Value("C")) {
      EXPECT_EQ(t[1], Value(2));
    }
    if (t[0] == Value("A")) {
      EXPECT_EQ(t[1], Value(1));
    }
  }
}

TEST_F(EvaluatorTest, AggregateSumMinMaxAvg) {
  Database db;
  ASSERT_TRUE(db.CreateTable("R", Schema({{"g", ValueType::kString},
                                          {"v", ValueType::kInt64}}))
                  .ok());
  Table* r = *db.GetMutableTable("R");
  ASSERT_TRUE(r->Append({"a", 1}).ok());
  ASSERT_TRUE(r->Append({"a", 3}).ok());
  ASSERT_TRUE(r->Append({"b", 10}).ok());
  ExprPtr agg = Expr::Aggregate(Expr::Scan("R"), {"g"},
                                {{AggFunc::kSum, "v", "s"},
                                 {AggFunc::kMin, "v", "lo"},
                                 {AggFunc::kMax, "v", "hi"},
                                 {AggFunc::kAvg, "v", "avg"}});
  auto result = Evaluate(agg, db);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->num_rows(), 2u);
  for (const Tuple& t : result->rows()) {
    if (t[0] == Value("a")) {
      EXPECT_EQ(t[1], Value(int64_t{4}));
      EXPECT_EQ(t[2], Value(1));
      EXPECT_EQ(t[3], Value(3));
      EXPECT_EQ(t[4], Value(2.0));
    } else {
      EXPECT_EQ(t[1], Value(int64_t{10}));
    }
  }
}

TEST_F(EvaluatorTest, AggregateSumOverStringsFails) {
  ExprPtr agg = Expr::Aggregate(Expr::Scan("Teams"), {"name"},
                                {{AggFunc::kSum, "specialization", "s"}});
  EXPECT_FALSE(Evaluate(agg, *db_).ok());
}

TEST(ExprTest, OutputSchemaOfJoin) {
  AnnotatedDatabase adb = MakeMaintenanceDatabase();
  ExprPtr q = MakeHardwareWarningsQuery();
  auto schema = q->OutputSchema(adb.database());
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->arity(), 9u);
  EXPECT_EQ(schema->column(0).name, "W.day");
  EXPECT_EQ(schema->column(8).name, "T.specialization");
}

TEST(ExprTest, ToStringRendersAlgebra) {
  ExprPtr e = Expr::SelectConst(Expr::Scan("W"), "week", 2);
  EXPECT_EQ(e->ToString(), "σ[week=2](Scan(W))");
}

TEST(ExprTest, ScannedTables) {
  ExprPtr q = MakeHardwareWarningsQuery();
  auto tables = q->ScannedTables();
  ASSERT_EQ(tables.size(), 3u);
}

TEST(CsvTest, RoundTrip) {
  Schema schema({{"a", ValueType::kInt64},
                 {"b", ValueType::kString},
                 {"c", ValueType::kDouble}});
  auto table = ReadCsvString("a,b,c\n1,x,1.5\n2,y,2.5\n", schema);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 2u);
  EXPECT_EQ(table->row(1)[1], Value("y"));
  std::string csv = WriteCsvString(*table);
  auto reparsed = ReadCsvString(csv, schema);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_TRUE(reparsed->BagEquals(*table));
}

TEST(CsvTest, ErrorsOnBadArityAndType) {
  Schema schema({{"a", ValueType::kInt64}});
  EXPECT_FALSE(ReadCsvString("a\n1,2\n", schema).ok());
  EXPECT_FALSE(ReadCsvString("a\nx\n", schema).ok());
}

TEST(CsvTest, SkipsBlankLinesAndTrimsFields) {
  Schema schema({{"a", ValueType::kInt64}, {"b", ValueType::kString}});
  auto table = ReadCsvString("a,b\n\n 1 , x \n", schema);
  ASSERT_TRUE(table.ok());
  ASSERT_EQ(table->num_rows(), 1u);
  EXPECT_EQ(table->row(0)[0], Value(1));
  EXPECT_EQ(table->row(0)[1], Value("x"));
}

TEST(CsvTest, ParsesQuotedFields) {
  Schema schema({{"a", ValueType::kString}, {"b", ValueType::kInt64}});
  auto table = ReadCsvString(
      "a,b\n\"plain\",1\n\"with, comma\",2\n\"say \"\"hi\"\"\",3\n"
      "\"multi\nline\",4\n", schema);
  ASSERT_TRUE(table.ok());
  ASSERT_EQ(table->num_rows(), 4u);
  EXPECT_EQ(table->row(0)[0], Value("plain"));
  EXPECT_EQ(table->row(1)[0], Value("with, comma"));
  EXPECT_EQ(table->row(2)[0], Value("say \"hi\""));
  EXPECT_EQ(table->row(3)[0], Value("multi\nline"));
}

TEST(CsvTest, QuotedFieldsPreserveSurroundingSpace) {
  // Unquoted fields are trimmed (back-compat); quoted fields keep their
  // content verbatim.
  Schema schema({{"a", ValueType::kString}});
  auto table = ReadCsvString("a\n\"  padded  \"\n", schema);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->row(0)[0], Value("  padded  "));
}

TEST(CsvTest, RoundTripsSpecialCharacters) {
  // The pre-PR writer emitted these cells raw, so re-reading split the
  // comma cell in two and lost the padding; this test pins the fix.
  Schema schema({{"name", ValueType::kString},
                 {"note", ValueType::kString},
                 {"n", ValueType::kInt64}});
  Table table(schema);
  table.AppendUnchecked(Tuple{Value("Doe, Jane"), Value("said \"ok\""),
                              Value(1)});
  table.AppendUnchecked(Tuple{Value("  spaced  "), Value("line1\nline2"),
                              Value(2)});
  table.AppendUnchecked(Tuple{Value(""), Value("plain"), Value(3)});
  std::string csv = WriteCsvString(table);
  auto reparsed = ReadCsvString(csv, schema);
  ASSERT_TRUE(reparsed.ok());
  ASSERT_EQ(reparsed->num_rows(), 3u);
  for (size_t r = 0; r < table.num_rows(); ++r) {
    EXPECT_EQ(reparsed->row(r), table.row(r)) << "row " << r;
  }
}

TEST(CsvTest, ErrorsOnMalformedQuotes) {
  Schema schema({{"a", ValueType::kString}});
  EXPECT_FALSE(ReadCsvString("a\n\"unterminated\n", schema).ok());
  EXPECT_FALSE(ReadCsvString("a\n\"x\"junk\n", schema).ok());
}

TEST(EvalJoinTest, CartesianReserveClampsAndHandlesOverflow) {
  EXPECT_EQ(internal::CartesianReserve(0, 100), 0u);
  EXPECT_EQ(internal::CartesianReserve(100, 0), 0u);
  EXPECT_EQ(internal::CartesianReserve(10, 20), 200u);
  const size_t cap = size_t{1} << 22;
  // Products above the cap are clamped, never multiplied past it.
  EXPECT_EQ(internal::CartesianReserve(size_t{1} << 21, size_t{1} << 21), cap);
  // Overflowing products (this one wraps to 0 in size_t arithmetic) must
  // not be trusted; pre-PR this poisoned the std::vector::reserve call.
  EXPECT_EQ(internal::CartesianReserve(size_t{1} << 32, size_t{1} << 32), cap);
  EXPECT_EQ(internal::CartesianReserve(SIZE_MAX, 2), cap);
  EXPECT_EQ(internal::CartesianReserve(SIZE_MAX, SIZE_MAX), cap);
}

TEST(EvalJoinTest, CrossJoinStillCorrectUnderClampedReserve) {
  Database db;
  Table lhs(Schema({{"x", ValueType::kInt64}}));
  Table rhs(Schema({{"y", ValueType::kInt64}}));
  for (int i = 0; i < 3; ++i) lhs.AppendUnchecked(Tuple{Value(i)});
  for (int i = 0; i < 4; ++i) rhs.AppendUnchecked(Tuple{Value(10 + i)});
  db.PutTable("L", std::move(lhs));
  db.PutTable("R", std::move(rhs));
  auto out = Evaluate(Expr::CrossJoin(Expr::Scan("L"), Expr::Scan("R")), db);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_rows(), 12u);
}

}  // namespace
}  // namespace pcdb
