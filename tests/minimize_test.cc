#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "pattern/minimize.h"

namespace pcdb {
namespace {

Pattern P(const std::vector<std::string>& fields) {
  std::vector<Pattern::Cell> cells;
  for (const auto& f : fields) {
    if (f == "*") {
      cells.push_back(Pattern::Wildcard());
    } else {
      cells.push_back(Value(f));
    }
  }
  return Pattern(std::move(cells));
}

using Method = std::pair<MinimizeApproach, PatternIndexKind>;

class MinimizeMethodTest : public ::testing::TestWithParam<Method> {};

TEST_P(MinimizeMethodTest, DropsSubsumedPatterns) {
  auto [approach, kind] = GetParam();
  PatternSet input;
  input.Add(P({"a", "b"}));
  input.Add(P({"a", "*"}));  // subsumes (a, b)
  input.Add(P({"c", "d"}));
  PatternSet out = Minimize(input, approach, kind);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_TRUE(out.Contains(P({"a", "*"})));
  EXPECT_TRUE(out.Contains(P({"c", "d"})));
  EXPECT_TRUE(IsMinimal(out));
}

TEST_P(MinimizeMethodTest, RemovesDuplicates) {
  auto [approach, kind] = GetParam();
  PatternSet input;
  input.Add(P({"a", "*"}));
  input.Add(P({"a", "*"}));
  PatternSet out = Minimize(input, approach, kind);
  EXPECT_EQ(out.size(), 1u);
}

TEST_P(MinimizeMethodTest, AllWildcardsDominatesEverything) {
  auto [approach, kind] = GetParam();
  PatternSet input;
  input.Add(P({"a", "b"}));
  input.Add(P({"*", "*"}));
  input.Add(P({"*", "c"}));
  PatternSet out = Minimize(input, approach, kind);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], P({"*", "*"}));
}

TEST_P(MinimizeMethodTest, EmptyInput) {
  auto [approach, kind] = GetParam();
  EXPECT_TRUE(Minimize(PatternSet(), approach, kind).empty());
}

TEST_P(MinimizeMethodTest, AlreadyMinimalIsPreserved) {
  auto [approach, kind] = GetParam();
  PatternSet input;
  input.Add(P({"a", "*"}));
  input.Add(P({"*", "b"}));
  input.Add(P({"c", "d"}));  // incomparable with both
  PatternSet out = Minimize(input, approach, kind);
  EXPECT_TRUE(out.SetEquals(input));
}

TEST_P(MinimizeMethodTest, RandomizedAgreesWithBruteForce) {
  auto [approach, kind] = GetParam();
  Rng rng(99 + static_cast<uint64_t>(kind) * 10 +
          static_cast<uint64_t>(approach));
  for (int round = 0; round < 30; ++round) {
    PatternSet input;
    const int n = static_cast<int>(rng.UniformInt(0, 60));
    for (int i = 0; i < n; ++i) {
      std::vector<Pattern::Cell> cells;
      for (int j = 0; j < 3; ++j) {
        if (rng.Bernoulli(0.45)) {
          cells.push_back(Pattern::Wildcard());
        } else {
          cells.push_back(
              Value("v" + std::to_string(rng.UniformInt(0, 2))));
        }
      }
      input.Add(Pattern(std::move(cells)));
    }
    // Brute force: keep patterns not strictly subsumed, dedup.
    PatternSet expected;
    for (const Pattern& p : input) {
      bool maximal = true;
      for (const Pattern& q : input) {
        if (q.StrictlySubsumes(p)) {
          maximal = false;
          break;
        }
      }
      if (maximal) expected.AddUnique(p);
    }
    PatternSet out = Minimize(input, approach, kind);
    EXPECT_TRUE(out.SetEquals(expected))
        << "round " << round << " method "
        << MinimizeMethodName(kind, approach) << "\ninput:\n"
        << input.ToString() << "got:\n"
        << out.ToString() << "expected:\n"
        << expected.ToString();
  }
}

std::vector<Method> AllMethods() {
  std::vector<Method> methods;
  for (auto approach :
       {MinimizeApproach::kAllAtOnce, MinimizeApproach::kIncremental,
        MinimizeApproach::kSortedIncremental}) {
    for (auto kind :
         {PatternIndexKind::kLinearList, PatternIndexKind::kHashTable,
          PatternIndexKind::kPathIndex,
          PatternIndexKind::kDiscriminationTree}) {
      methods.emplace_back(approach, kind);
    }
  }
  return methods;
}

INSTANTIATE_TEST_SUITE_P(AllMethods, MinimizeMethodTest,
                         ::testing::ValuesIn(AllMethods()),
                         [](const ::testing::TestParamInfo<Method>& info) {
                           return MinimizeMethodName(info.param.second,
                                                     info.param.first);
                         });

TEST(MinimizeTest, MethodNames) {
  EXPECT_EQ(MinimizeMethodName(PatternIndexKind::kDiscriminationTree,
                               MinimizeApproach::kAllAtOnce),
            "D1");
  EXPECT_EQ(MinimizeMethodName(PatternIndexKind::kHashTable,
                               MinimizeApproach::kSortedIncremental),
            "B3");
}

TEST(MinimizeTest, StatsArePopulated) {
  PatternSet input;
  input.Add(P({"a", "b"}));
  input.Add(P({"a", "*"}));
  input.Add(P({"*", "*"}));
  MinimizeStats stats;
  PatternSet out = Minimize(input, MinimizeApproach::kAllAtOnce,
                            PatternIndexKind::kDiscriminationTree, &stats);
  EXPECT_EQ(stats.output_size, 1u);
  EXPECT_EQ(stats.peak_index_size, 3u);
  EXPECT_GT(stats.peak_memory_bytes, 0u);
  EXPECT_GE(stats.millis, 0.0);
}

TEST(MinimizeTest, SortedApproachesUseLessPeakSpaceOnRedundantInput) {
  // The paper's Fig. 5 observation: incremental/sorted methods only hold
  // the maximal patterns; all-at-once holds everything.
  PatternSet input;
  input.Add(P({"*", "*", "*"}));
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    input.Add(P({"v" + std::to_string(rng.UniformInt(0, 4)),
                 "v" + std::to_string(rng.UniformInt(0, 4)),
                 "v" + std::to_string(rng.UniformInt(0, 4))}));
  }
  MinimizeStats all_stats;
  MinimizeStats sorted_stats;
  Minimize(input, MinimizeApproach::kAllAtOnce,
           PatternIndexKind::kDiscriminationTree, &all_stats);
  Minimize(input, MinimizeApproach::kSortedIncremental,
           PatternIndexKind::kDiscriminationTree, &sorted_stats);
  EXPECT_EQ(sorted_stats.peak_index_size, 1u);  // only (*,*,*) survives
  // All-at-once holds every distinct input pattern at once.
  EXPECT_GT(all_stats.peak_index_size, 50u);
}

TEST(MinimizeTest, IsMinimalDetectsViolations) {
  PatternSet with_dup;
  with_dup.Add(P({"a"}));
  with_dup.Add(P({"a"}));
  EXPECT_FALSE(IsMinimal(with_dup));
  PatternSet with_subsumed;
  with_subsumed.Add(P({"a"}));
  with_subsumed.Add(P({"*"}));
  EXPECT_FALSE(IsMinimal(with_subsumed));
  PatternSet ok;
  ok.Add(P({"a"}));
  ok.Add(P({"b"}));
  EXPECT_TRUE(IsMinimal(ok));
}

}  // namespace
}  // namespace pcdb
