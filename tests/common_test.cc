#include <gtest/gtest.h>

#include <set>

#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/value.h"

namespace pcdb {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "Invalid argument: bad input");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kOutOfRange,
        StatusCode::kTypeError, StatusCode::kParseError, StatusCode::kTimeout,
        StatusCode::kUnimplemented, StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeToString(code), "Unknown");
  }
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = []() -> Status {
    PCDB_RETURN_NOT_OK(Status::NotFound("x"));
    return Status::OK();
  };
  EXPECT_EQ(fails().code(), StatusCode::kNotFound);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto inner = [](bool fail) -> Result<int> {
    if (fail) return Status::OutOfRange("nope");
    return 7;
  };
  auto outer = [&](bool fail) -> Result<int> {
    PCDB_ASSIGN_OR_RETURN(int v, inner(fail));
    return v + 1;
  };
  EXPECT_EQ(*outer(false), 8);
  EXPECT_EQ(outer(true).status().code(), StatusCode::kOutOfRange);
}

TEST(ValueTest, TypesAndAccessors) {
  Value i(7);
  Value d(2.5);
  Value s("abc");
  EXPECT_TRUE(i.is_int64());
  EXPECT_TRUE(d.is_double());
  EXPECT_TRUE(s.is_string());
  EXPECT_EQ(i.int64(), 7);
  EXPECT_EQ(d.dbl(), 2.5);
  EXPECT_EQ(s.str(), "abc");
  ASSERT_TRUE(i.AsDouble().ok());
  EXPECT_EQ(i.AsDouble().ValueOrDie(), 7.0);
  EXPECT_EQ(s.AsDouble().status().code(), StatusCode::kTypeError);
}

TEST(ValueTest, EqualityIsTypeStrict) {
  EXPECT_NE(Value(1), Value(1.0));
  EXPECT_NE(Value("1"), Value(1));
  EXPECT_EQ(Value(3), Value(3));
  EXPECT_EQ(Value("x"), Value("x"));
}

TEST(ValueTest, TotalOrder) {
  std::set<Value> values = {Value(2), Value(1), Value("b"), Value("a"),
                            Value(0.5)};
  EXPECT_EQ(values.size(), 5u);
  // Ordered by type first (int < double < string), then value.
  auto it = values.begin();
  EXPECT_EQ(*it++, Value(1));
  EXPECT_EQ(*it++, Value(2));
  EXPECT_EQ(*it++, Value(0.5));
  EXPECT_EQ(*it++, Value("a"));
  EXPECT_EQ(*it++, Value("b"));
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value(5).Hash(), Value(5).Hash());
  EXPECT_EQ(Value("team").Hash(), Value("team").Hash());
  EXPECT_NE(Value(5).Hash(), Value("5").Hash());
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value(12).ToString(), "12");
  EXPECT_EQ(Value("hello").ToString(), "hello");
  EXPECT_EQ(Value(1.5).ToString(), "1.5");
}

TEST(ValueTest, ParseInt) {
  auto v = Value::Parse("123", ValueType::kInt64);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->int64(), 123);
  EXPECT_FALSE(Value::Parse("12x", ValueType::kInt64).ok());
  EXPECT_FALSE(Value::Parse("", ValueType::kInt64).ok());
  auto neg = Value::Parse("-4", ValueType::kInt64);
  ASSERT_TRUE(neg.ok());
  EXPECT_EQ(neg->int64(), -4);
}

TEST(ValueTest, ParseDouble) {
  auto v = Value::Parse("2.75", ValueType::kDouble);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->dbl(), 2.75);
  EXPECT_FALSE(Value::Parse("abc", ValueType::kDouble).ok());
}

TEST(ValueTest, ParseString) {
  auto v = Value::Parse("anything", ValueType::kString);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->str(), "anything");
}

TEST(ValueTest, TypeNameRoundTrip) {
  for (ValueType t :
       {ValueType::kInt64, ValueType::kDouble, ValueType::kString}) {
    auto parsed = ValueTypeFromString(ValueTypeToString(t));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, t);
  }
  EXPECT_TRUE(ValueTypeFromString("int").ok());
  EXPECT_TRUE(ValueTypeFromString("VARCHAR").ok());
  EXPECT_FALSE(ValueTypeFromString("blob").ok());
}

TEST(RngTest, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, ExponentialIsPositiveWithPlausibleMean) {
  Rng rng(13);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Exponential(2.0);
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.05);
}

TEST(RngTest, WeightedRespectsWeights) {
  Rng rng(17);
  int counts[2] = {0, 0};
  for (int i = 0; i < 10000; ++i) ++counts[rng.Weighted({1.0, 9.0})];
  EXPECT_GT(counts[1], counts[0] * 5);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(19);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> original = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(StringUtilTest, Split) {
  EXPECT_EQ(SplitString("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(SplitString("a,,c", ','),
            (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(SplitString("", ','), (std::vector<std::string>{""}));
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(JoinStrings({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(JoinStrings({}, ","), "");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(TrimString("  x y  "), "x y");
  EXPECT_EQ(TrimString("\t\n"), "");
}

TEST(StringUtilTest, Case) {
  EXPECT_EQ(ToLower("SeLeCt"), "select");
  EXPECT_EQ(ToUpper("abc"), "ABC");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("CnuFoo", "Cnu"));
  EXPECT_FALSE(StartsWith("Cn", "Cnu"));
}

}  // namespace
}  // namespace pcdb
