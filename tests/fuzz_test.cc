// Randomized expression-tree fuzzing: build random valid plans over a
// random partially complete database, evaluate them in every mode, and
// check the cross-cutting invariants (determinism, minimality,
// soundness sampling, instance-aware dominance, bag sizes).

#include <gtest/gtest.h>

#include "common/random.h"
#include "pattern/annotated_eval.h"
#include "pattern/entailment.h"
#include "pattern/minimize.h"
#include "relational/evaluator.h"
#include "sql/planner.h"
#include "workloads/maintenance_example.h"

namespace pcdb {
namespace {

constexpr const char* kValues[] = {"u", "v", "w", "x"};

class ExprFuzzer {
 public:
  explicit ExprFuzzer(uint64_t seed) : rng_(seed) {}

  AnnotatedDatabase RandomDatabase() {
    AnnotatedDatabase adb;
    for (const char* table : {"R", "S"}) {
      PCDB_CHECK(adb.CreateTable(table,
                                 Schema({{std::string(table) + "_a",
                                          ValueType::kString},
                                         {std::string(table) + "_b",
                                          ValueType::kString}}))
                     .ok());
      int rows = static_cast<int>(rng_.UniformInt(0, 5));
      for (int i = 0; i < rows; ++i) {
        PCDB_CHECK(
            adb.AddRow(table, {RandomValue(), RandomValue()}).ok());
      }
      int patterns = static_cast<int>(rng_.UniformInt(0, 3));
      for (int i = 0; i < patterns; ++i) {
        std::vector<std::string> fields;
        for (int j = 0; j < 2; ++j) {
          fields.push_back(rng_.Bernoulli(0.5) ? "*" : RandomString());
        }
        PCDB_CHECK(adb.AddPattern(table, fields).ok());
      }
      std::vector<Value> domain;
      for (const char* v : kValues) domain.push_back(Value(v));
      adb.domains().SetDomain(std::string(table) + "_a", domain);
      adb.domains().SetDomain(std::string(table) + "_b", domain);
    }
    return adb;
  }

  /// A random expression whose output schema is tracked so that every
  /// generated operator is valid by construction.
  ExprPtr RandomExpr(const Database& db, int depth) {
    ExprPtr e = rng_.Bernoulli(0.5) ? Expr::Scan("R") : Expr::Scan("S");
    Schema schema = *e->OutputSchema(db);
    for (int level = 0; level < depth; ++level) {
      switch (rng_.UniformInt(0, 7)) {
        case 0:
          e = Expr::SelectConst(e, RandomColumn(schema), RandomValue());
          break;
        case 1:
          e = Expr::SelectAttrEq(e, RandomColumn(schema),
                                 RandomColumn(schema));
          break;
        case 2:
          if (schema.arity() > 1) {
            e = Expr::ProjectOut(e, RandomColumn(schema));
          }
          break;
        case 3: {
          // Sample a subset without replacement: duplicated output
          // columns would (correctly) make later references ambiguous.
          std::vector<std::string> all;
          for (size_t i = 0; i < schema.arity(); ++i) {
            all.push_back(schema.column(i).name);
          }
          rng_.Shuffle(&all);
          all.resize(1 + rng_.UniformUint64(all.size()));
          e = Expr::Rearrange(e, std::move(all));
          break;
        }
        case 4:
          if (schema.arity() <= 3) {
            // Join with a fresh scan (alias avoids ambiguity).
            std::string alias = "J" + std::to_string(join_counter_++);
            ExprPtr other =
                Expr::Scan(rng_.Bernoulli(0.5) ? "R" : "S", alias);
            Schema other_schema = *other->OutputSchema(db);
            e = Expr::Join(e, other, RandomColumn(schema),
                           RandomColumn(other_schema));
          }
          break;
        case 5:
          e = Expr::Sort(e, {RandomColumn(schema)},
                         {rng_.Bernoulli(0.5)});
          break;
        case 6:
          e = Expr::Limit(e, rng_.UniformUint64(6));
          break;
        case 7:
          // UNION ALL with itself: schemas are trivially compatible and
          // bag semantics doubles multiplicities.
          e = Expr::Union(e, e);
          break;
      }
      schema = *e->OutputSchema(db);
    }
    return e;
  }

 private:
  std::string RandomString() { return kValues[rng_.UniformUint64(4)]; }
  Value RandomValue() { return Value(RandomString()); }
  std::string RandomColumn(const Schema& schema) {
    return schema.column(rng_.UniformUint64(schema.arity())).name;
  }

  Rng rng_;
  size_t join_counter_ = 0;
};

TEST(ExprFuzzTest, InvariantsHoldOnRandomPlans) {
  ExprFuzzer fuzzer(20260707);
  int soundness_checked = 0;
  for (int round = 0; round < 120; ++round) {
    AnnotatedDatabase adb = fuzzer.RandomDatabase();
    ExprPtr e = fuzzer.RandomExpr(adb.database(), 3);
    SCOPED_TRACE("round " + std::to_string(round) + ": " + e->ToString());

    // 1. Schema validity: evaluation succeeds and matches OutputSchema.
    auto schema = e->OutputSchema(adb.database());
    ASSERT_TRUE(schema.ok()) << schema.status().ToString();
    auto data = Evaluate(e, adb.database());
    ASSERT_TRUE(data.ok()) << data.status().ToString();
    ASSERT_TRUE(data->schema() == *schema);

    // 2. Determinism of the annotated evaluation.
    auto first = EvaluateAnnotated(e, adb);
    auto second = EvaluateAnnotated(e, adb);
    ASSERT_TRUE(first.ok()) << first.status().ToString();
    ASSERT_TRUE(second.ok());
    EXPECT_TRUE(first->data.BagEquals(second->data));
    EXPECT_TRUE(first->patterns.SetEquals(second->patterns));
    EXPECT_TRUE(first->data.BagEquals(*data));

    // 3. Per-step minimization on: the final pattern set is minimal.
    EXPECT_TRUE(IsMinimal(first->patterns)) << first->patterns.ToString();

    // 4. The instance-aware algebra dominates the schema-level one.
    AnnotatedEvalOptions aware;
    aware.instance_aware = true;
    auto aware_result = EvaluateAnnotated(e, adb, aware);
    ASSERT_TRUE(aware_result.ok()) << aware_result.status().ToString();
    for (const Pattern& p : first->patterns) {
      EXPECT_TRUE(aware_result->patterns.AnySubsumes(p)) << p.ToString();
    }

    // 5. Sampled soundness against the model checker (expensive; only
    //    small plans, only a few patterns per round).
    if (e->ScannedTables().size() <= 2 && round % 4 == 0) {
      size_t checked_here = 0;
      for (const Pattern& p : first->patterns) {
        if (checked_here == 3) break;
        auto entailed = EntailsWrtInstance(adb, e, p);
        if (!entailed.ok()) continue;  // domain too large; skip sample
        EXPECT_TRUE(*entailed) << p.ToString();
        ++checked_here;
        ++soundness_checked;
      }
    }
  }
  EXPECT_GT(soundness_checked, 10);
}

TEST(SqlFuzzTest, GarbageNeverCrashesTheParser) {
  // Random token soup: the parser must reject (or accept) without
  // crashing, and anything it accepts must plan-and-run or fail with a
  // clean Status.
  Rng rng(86420);
  const std::vector<std::string> tokens = {
      "SELECT", "FROM",  "WHERE", "JOIN",   "ON",    "AND",   "GROUP",
      "BY",     "ORDER", "LIMIT", "UNION",  "ALL",   "AS",    "COUNT",
      "Teams",  "name",  "week",  "*",      ",",     ".",     "=",
      "(",      ")",     "'x'",   "42",     "1.5",   "DESC",  "Warnings",
      "day",    "W",     ";",     "responsible"};
  AnnotatedDatabase adb = MakeMaintenanceDatabase();
  size_t accepted = 0;
  for (int round = 0; round < 3000; ++round) {
    // Half the rounds extend a valid stem (mutation fuzzing); pure token
    // soup almost never reaches the planner.
    std::string sql = (round % 2 == 0) ? "" : "SELECT * FROM Teams ";
    size_t n = 1 + rng.UniformUint64(15);
    for (size_t i = 0; i < n; ++i) {
      sql += tokens[rng.UniformUint64(tokens.size())];
      sql += " ";
    }
    auto plan = PlanSql(sql, adb.database());
    if (!plan.ok()) continue;
    ++accepted;
    auto result = EvaluateAnnotated(*plan, adb);
    EXPECT_TRUE(result.ok()) << sql << " -> " << result.status().ToString();
  }
  // The grammar is permissive enough that some random strings parse.
  EXPECT_GT(accepted, 0u);
}

TEST(ExprFuzzTest, ZombieModeNeverBreaksEvaluation) {
  ExprFuzzer fuzzer(777777);
  for (int round = 0; round < 60; ++round) {
    AnnotatedDatabase adb = fuzzer.RandomDatabase();
    ExprPtr e = fuzzer.RandomExpr(adb.database(), 3);
    AnnotatedEvalOptions options;
    options.zombies = true;
    options.instance_aware = (round % 2 == 0);
    auto result = EvaluateAnnotated(e, adb, options);
    ASSERT_TRUE(result.ok())
        << "round " << round << ": " << e->ToString() << " -> "
        << result.status().ToString();
    // Zombie patterns never cover actual answer rows beyond what the
    // plain patterns cover... they can, via minimized generalizations;
    // the invariant that must hold is weaker: evaluation agrees on data.
    auto plain = Evaluate(e, adb.database());
    ASSERT_TRUE(plain.ok());
    EXPECT_TRUE(result->data.BagEquals(*plain));
  }
}

}  // namespace
}  // namespace pcdb
