#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "server/metrics.h"

namespace pcdb {
namespace {

TEST(CounterTest, IncrementsMonotonically) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  c.Increment(9);
  EXPECT_EQ(c.Value(), 10u);
}

TEST(GaugeTest, SetAndAddAreSigned) {
  Gauge g;
  g.Set(5);
  g.Add(-8);
  EXPECT_EQ(g.Value(), -3);
}

TEST(HistogramTest, QuantilesLandWithinBucketResolution) {
  Histogram h;
  // 100 samples of 1ms, 10 of 100ms: p50 ~ 1ms, p99 ~ 100ms. The
  // power-of-two buckets guarantee at most 2x resolution error.
  for (int i = 0; i < 100; ++i) h.RecordMillis(1.0);
  for (int i = 0; i < 10; ++i) h.RecordMillis(100.0);
  EXPECT_EQ(h.Count(), 110u);
  const double p50 = h.QuantileMillis(0.5);
  EXPECT_GE(p50, 0.5);
  EXPECT_LE(p50, 2.1);
  const double p99 = h.QuantileMillis(0.99);
  EXPECT_GE(p99, 50.0);
  EXPECT_LE(p99, 200.0);
  const double mean = h.MeanMillis();
  EXPECT_GE(mean, 5.0);
  EXPECT_LE(mean, 20.0);
}

TEST(HistogramTest, EmptyHistogramReportsZero) {
  Histogram h;
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.MeanMillis(), 0.0);
  EXPECT_EQ(h.QuantileMillis(0.5), 0.0);
}

TEST(MetricsRegistryTest, PointersAreStableAcrossLookups) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("requests");
  Counter* b = registry.GetCounter("requests");
  EXPECT_EQ(a, b);
  a->Increment(3);
  EXPECT_EQ(registry.CounterValue("requests"), 3u);
  EXPECT_EQ(registry.CounterValue("never_created"), 0u);
  EXPECT_EQ(registry.GetGauge("inflight"), registry.GetGauge("inflight"));
  EXPECT_EQ(registry.GetHistogram("lat"), registry.GetHistogram("lat"));
}

TEST(MetricsRegistryTest, JsonSnapshotIsSortedAndComplete) {
  MetricsRegistry registry;
  registry.GetCounter("zeta")->Increment(2);
  registry.GetCounter("alpha")->Increment(1);
  registry.GetGauge("depth")->Set(-4);
  registry.GetHistogram("latency")->RecordMillis(3.0);
  const std::string json = registry.ToJson();
  const size_t alpha = json.find("\"alpha\":1");
  const size_t zeta = json.find("\"zeta\":2");
  ASSERT_NE(alpha, std::string::npos) << json;
  ASSERT_NE(zeta, std::string::npos) << json;
  EXPECT_LT(alpha, zeta) << json;
  EXPECT_NE(json.find("\"depth\":-4"), std::string::npos) << json;
  EXPECT_NE(json.find("\"latency\":{\"count\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p99_ms\":"), std::string::npos) << json;
}

TEST(MetricsRegistryTest, ConcurrentIncrementsAreLossless) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("hits");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  {
    ThreadPool pool(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      pool.Submit([counter] {
        for (int i = 0; i < kPerThread; ++i) counter->Increment();
      });
    }
    pool.Wait();
  }
  EXPECT_EQ(counter->Value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace pcdb
