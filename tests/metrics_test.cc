#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "pattern/annotated_eval.h"
#include "workloads/maintenance_example.h"

namespace pcdb {
namespace {

TEST(CounterTest, IncrementsMonotonically) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  c.Increment(9);
  EXPECT_EQ(c.Value(), 10u);
}

TEST(GaugeTest, SetAndAddAreSigned) {
  Gauge g;
  g.Set(5);
  g.Add(-8);
  EXPECT_EQ(g.Value(), -3);
}

TEST(HistogramTest, QuantilesLandWithinBucketResolution) {
  Histogram h;
  // 100 samples of 1ms, 10 of 100ms: p50 ~ 1ms, p99 ~ 100ms. The
  // power-of-two buckets guarantee at most 2x resolution error.
  for (int i = 0; i < 100; ++i) h.RecordMillis(1.0);
  for (int i = 0; i < 10; ++i) h.RecordMillis(100.0);
  EXPECT_EQ(h.Count(), 110u);
  const double p50 = h.QuantileMillis(0.5);
  EXPECT_GE(p50, 0.5);
  EXPECT_LE(p50, 2.1);
  const double p99 = h.QuantileMillis(0.99);
  EXPECT_GE(p99, 50.0);
  EXPECT_LE(p99, 200.0);
  const double mean = h.MeanMillis();
  EXPECT_GE(mean, 5.0);
  EXPECT_LE(mean, 20.0);
}

TEST(HistogramTest, EmptyHistogramReportsZero) {
  Histogram h;
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.MeanMillis(), 0.0);
  EXPECT_EQ(h.QuantileMillis(0.5), 0.0);
}

TEST(MetricsRegistryTest, PointersAreStableAcrossLookups) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("requests");
  Counter* b = registry.GetCounter("requests");
  EXPECT_EQ(a, b);
  a->Increment(3);
  EXPECT_EQ(registry.CounterValue("requests"), 3u);
  EXPECT_EQ(registry.CounterValue("never_created"), 0u);
  EXPECT_EQ(registry.GetGauge("inflight"), registry.GetGauge("inflight"));
  EXPECT_EQ(registry.GetHistogram("lat"), registry.GetHistogram("lat"));
}

TEST(MetricsRegistryTest, JsonSnapshotIsSortedAndComplete) {
  MetricsRegistry registry;
  registry.GetCounter("zeta")->Increment(2);
  registry.GetCounter("alpha")->Increment(1);
  registry.GetGauge("depth")->Set(-4);
  registry.GetHistogram("latency")->RecordMillis(3.0);
  const std::string json = registry.ToJson();
  const size_t alpha = json.find("\"alpha\":1");
  const size_t zeta = json.find("\"zeta\":2");
  ASSERT_NE(alpha, std::string::npos) << json;
  ASSERT_NE(zeta, std::string::npos) << json;
  EXPECT_LT(alpha, zeta) << json;
  EXPECT_NE(json.find("\"depth\":-4"), std::string::npos) << json;
  EXPECT_NE(json.find("\"latency\":{\"count\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p99_ms\":"), std::string::npos) << json;
}

TEST(HistogramTest, SnapshotBucketsExposesRawCounts) {
  Histogram h;
  h.RecordMicros(1);     // [1, 2)      -> bucket 0
  h.RecordMicros(0);     // sub-micro   -> bucket 0
  h.RecordMicros(2);     // [2, 4)      -> bucket 1
  h.RecordMicros(3);     // [2, 4)      -> bucket 1
  h.RecordMicros(1000);  // [512, 1024) -> bucket 9
  uint64_t buckets[Histogram::kNumBuckets];
  h.SnapshotBuckets(buckets);
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 2u);
  EXPECT_EQ(buckets[9], 1u);
  uint64_t total = 0;
  for (uint64_t b : buckets) total += b;
  EXPECT_EQ(total, h.Count());
}

TEST(HistogramTest, MergePreservesBucketSumsAndCount) {
  Histogram a, b, merged;
  for (int i = 0; i < 100; ++i) a.RecordMillis(1.0);
  for (int i = 0; i < 10; ++i) a.RecordMillis(100.0);
  for (int i = 0; i < 50; ++i) b.RecordMillis(4.0);
  MergeHistogram(a, &merged);
  MergeHistogram(b, &merged);
  EXPECT_EQ(merged.Count(), a.Count() + b.Count());
  EXPECT_EQ(merged.SumMicros(), a.SumMicros() + b.SumMicros());
  // Bucket-by-bucket the merge is an exact sum — the fleet aggregation
  // in the coordinator depends on this, not on re-recorded samples.
  uint64_t ba[Histogram::kNumBuckets], bb[Histogram::kNumBuckets],
      bm[Histogram::kNumBuckets];
  a.SnapshotBuckets(ba);
  b.SnapshotBuckets(bb);
  merged.SnapshotBuckets(bm);
  for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
    EXPECT_EQ(bm[i], ba[i] + bb[i]) << "bucket " << i;
  }
}

TEST(HistogramTest, MergedQuantilesAreMonotoneInTheSlowerSource) {
  // Folding a strictly slower histogram into a fast one can only move
  // p95 up: the merged distribution stochastically dominates the fast
  // source. (p95 monotonicity under merge — the property that makes a
  // fleet p95 trustworthy.)
  Histogram fast, slow, merged;
  for (int i = 0; i < 1000; ++i) fast.RecordMillis(1.0);
  for (int i = 0; i < 500; ++i) slow.RecordMillis(64.0);
  MergeHistogram(fast, &merged);
  const double p95_before = merged.QuantileMillis(0.95);
  MergeHistogram(slow, &merged);
  const double p95_after = merged.QuantileMillis(0.95);
  EXPECT_GE(p95_after, p95_before);
  // And the merged p95 lands between the two sources' p95s.
  EXPECT_GE(p95_after, fast.QuantileMillis(0.95));
  EXPECT_LE(p95_after, slow.QuantileMillis(0.95));
}

TEST(HistogramTest, MergeFromRawBucketsDerivesCountFromTheBuckets) {
  // The wire form (STATS JSON) carries buckets + sum_micros but no
  // separate count; MergeFrom must reconstruct it exactly.
  Histogram src, dst;
  src.RecordMicros(3);
  src.RecordMicros(700);
  src.RecordMicros(700);
  uint64_t buckets[Histogram::kNumBuckets];
  src.SnapshotBuckets(buckets);
  dst.MergeFrom(buckets, src.SumMicros());
  EXPECT_EQ(dst.Count(), 3u);
  EXPECT_EQ(dst.SumMicros(), src.SumMicros());
  EXPECT_EQ(dst.MeanMillis(), src.MeanMillis());
}

TEST(MetricsRegistryTest, JsonIncludesHistogramSumMicros) {
  MetricsRegistry registry;
  registry.GetHistogram("latency")->RecordMicros(250);
  EXPECT_NE(registry.ToJson().find("\"sum_micros\":250"), std::string::npos)
      << registry.ToJson();
}

TEST(MetricsRegistryTest, JsonIncludesRawHistogramBuckets) {
  MetricsRegistry registry;
  registry.GetHistogram("latency")->RecordMicros(3);
  const std::string json = registry.ToJson();
  const size_t open = json.find("\"buckets\":[");
  ASSERT_NE(open, std::string::npos) << json;
  const size_t close = json.find(']', open);
  ASSERT_NE(close, std::string::npos) << json;
  // 40 comma-separated raw counts.
  const std::string list = json.substr(open, close - open);
  EXPECT_EQ(std::count(list.begin(), list.end(), ','),
            static_cast<long>(Histogram::kNumBuckets) - 1)
      << list;
}

TEST(GlobalMetricsTest, RegistryIsProcessWide) {
  EXPECT_EQ(&GlobalMetrics(), &GlobalMetrics());
  const EngineCounters& counters = EngineMetrics();
  EXPECT_NE(counters.patterns_minimized, nullptr);
  EXPECT_NE(counters.subsumption_probes, nullptr);
  EXPECT_NE(counters.degraded_to_summary, nullptr);
  EXPECT_NE(counters.failpoint_trips, nullptr);
  // Resolved pointers are stable across calls.
  EXPECT_EQ(counters.patterns_minimized,
            EngineMetrics().patterns_minimized);
}

TEST(GlobalMetricsTest, MinimizationAdvancesTheEngineCounters) {
  const uint64_t minimized_before =
      EngineMetrics().patterns_minimized->Value();
  const uint64_t probes_before =
      EngineMetrics().subsumption_probes->Value();
  AnnotatedDatabase adb = MakeMaintenanceDatabase();
  ASSERT_TRUE(EvaluateAnnotated(MakeHardwareWarningsQuery(), adb).ok());
  EXPECT_GT(EngineMetrics().patterns_minimized->Value(), minimized_before);
  EXPECT_GT(EngineMetrics().subsumption_probes->Value(), probes_before);
  // The same counters appear in the global JSON snapshot (the server
  // splices this into STATS under "engine").
  const std::string json = GlobalMetrics().ToJson();
  EXPECT_NE(json.find("\"engine_patterns_minimized\":"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"engine_subsumption_probes\":"), std::string::npos)
      << json;
}

TEST(MetricsRegistryTest, ConcurrentIncrementsAreLossless) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("hits");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  {
    ThreadPool pool(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      pool.Submit([counter] {
        for (int i = 0; i < kPerThread; ++i) counter->Increment();
      });
    }
    pool.Wait();
  }
  EXPECT_EQ(counter->Value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace pcdb
