#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/exec_context.h"
#include "common/thread_pool.h"
#include "pattern/annotated_eval.h"
#include "pattern/entailment.h"
#include "pattern/minimize.h"
#include "pattern/summary.h"
#include "relational/csv.h"
#include "relational/evaluator.h"
#include "workloads/maintenance_example.h"

namespace pcdb {
namespace {

Pattern MakePattern(const std::vector<std::string>& fields) {
  std::vector<Pattern::Cell> cells;
  cells.reserve(fields.size());
  for (const std::string& f : fields) {
    Pattern::Cell cell;
    if (f != "*") cell.emplace(f);
    cells.push_back(std::move(cell));
  }
  return Pattern(std::move(cells));
}

/// n pairwise-incomparable patterns of arity n: pattern i holds one
/// constant at position i. The minimal set is the whole input.
PatternSet IncomparableSet(size_t n) {
  PatternSet out;
  for (size_t i = 0; i < n; ++i) {
    std::vector<std::string> fields(n, "*");
    fields[i] = "c";
    out.Add(MakePattern(fields));
  }
  return out;
}

/// R(a, b) with three incomparable base patterns — small enough for the
/// exponential ground-truth entailment checker.
AnnotatedDatabase MakeTinyDatabase() {
  AnnotatedDatabase adb;
  EXPECT_TRUE(adb.CreateTable("R", Schema({{"a", ValueType::kString},
                                           {"b", ValueType::kString}}))
                  .ok());
  EXPECT_TRUE(adb.AddRow("R", {"x", "p"}).ok());
  EXPECT_TRUE(adb.AddRow("R", {"y", "q"}).ok());
  EXPECT_TRUE(adb.AddPattern("R", {"x", "*"}).ok());
  EXPECT_TRUE(adb.AddPattern("R", {"y", "*"}).ok());
  EXPECT_TRUE(adb.AddPattern("R", {"*", "q"}).ok());
  return adb;
}

// ---------------------------------------------------------------------------
// ExecContext unit semantics.

TEST(ExecContextTest, DefaultContextIsUnboundedAndFree) {
  ExecContext ctx;
  EXPECT_TRUE(ctx.unbounded());
  EXPECT_TRUE(ctx.Check().ok());
  EXPECT_TRUE(ctx.CheckRows(size_t{1} << 60).ok());
  EXPECT_TRUE(ctx.CheckPatterns(size_t{1} << 60).ok());
  EXPECT_TRUE(ctx.CheckMemory(size_t{1} << 60).ok());
  EXPECT_TRUE(ExecContext::Unbounded().unbounded());
}

TEST(ExecContextTest, BudgetsTripWithResourceExhausted) {
  ExecContext ctx;
  ctx.WithRowBudget(10).WithPatternBudget(5).WithMemoryBudget(100);
  EXPECT_FALSE(ctx.unbounded());
  EXPECT_TRUE(ctx.CheckRows(10).ok());
  EXPECT_EQ(ctx.CheckRows(11).code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(ctx.CheckPatterns(5).ok());
  EXPECT_EQ(ctx.CheckPatterns(6).code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(ctx.CheckMemory(100).ok());
  EXPECT_EQ(ctx.CheckMemory(101).code(), StatusCode::kResourceExhausted);
}

TEST(ExecContextTest, ZeroDeadlineTripsEveryCheck) {
  ExecContext ctx;
  ctx.WithDeadlineAfterMillis(0);
  EXPECT_TRUE(ctx.deadline_exceeded());
  EXPECT_EQ(ctx.Check().code(), StatusCode::kTimeout);
  EXPECT_EQ(ctx.CheckRows(0).code(), StatusCode::kTimeout);
}

TEST(ExecContextTest, CancellationWinsOverDeadline) {
  auto token = std::make_shared<CancellationToken>();
  ExecContext ctx;
  ctx.WithCancellationToken(token).WithDeadlineAfterMillis(0);
  EXPECT_EQ(ctx.Check().code(), StatusCode::kTimeout);  // not yet cancelled
  token->Cancel();
  EXPECT_EQ(ctx.Check().code(), StatusCode::kCancelled);
}

// ---------------------------------------------------------------------------
// A zero deadline returns kTimeout cleanly from every governed entry
// point — no crash, no partial result.

TEST(DeadlineTest, CsvLoadTimesOut) {
  ExecContext ctx;
  ctx.WithDeadlineAfterMillis(0);
  Schema schema({{"a", ValueType::kInt64}});
  auto result = ReadCsvString("a\n1\n2\n", schema, true, ctx);
  EXPECT_EQ(result.status().code(), StatusCode::kTimeout);
}

TEST(DeadlineTest, EvaluateTimesOut) {
  AnnotatedDatabase adb = MakeMaintenanceDatabase();
  ExprPtr plan = Expr::Join(Expr::Scan("Warnings"),
                            Expr::Scan("Maintenance"), "ID", "ID");
  for (size_t threads : {size_t{1}, size_t{4}}) {
    ExecContext ctx;
    ctx.WithDeadlineAfterMillis(0);
    EvalOptions options;
    options.num_threads = threads;
    auto result = Evaluate(*plan, adb.database(), options, ctx);
    EXPECT_EQ(result.status().code(), StatusCode::kTimeout)
        << threads << " threads";
  }
}

TEST(DeadlineTest, AnnotatedEvaluationTimesOut) {
  AnnotatedDatabase adb = MakeMaintenanceDatabase();
  for (size_t threads : {size_t{1}, size_t{4}}) {
    ExecContext ctx;
    ctx.WithDeadlineAfterMillis(0);
    AnnotatedEvalOptions options;
    options.num_threads = threads;
    auto result =
        EvaluateAnnotated(*MakeHardwareWarningsQuery(), adb, options, ctx);
    EXPECT_EQ(result.status().code(), StatusCode::kTimeout)
        << threads << " threads";
  }
}

TEST(DeadlineTest, ComputeQueryPatternsTimesOut) {
  AnnotatedDatabase adb = MakeMaintenanceDatabase();
  ExecContext ctx;
  ctx.WithDeadlineAfterMillis(0);
  bool degraded = true;
  auto result = ComputeQueryPatterns(*MakeHardwareWarningsQuery(), adb, {},
                                     ctx, &degraded);
  EXPECT_EQ(result.status().code(), StatusCode::kTimeout);
  EXPECT_FALSE(degraded);  // a timeout is a failure, not a degradation
}

TEST(DeadlineTest, MinimizeTimesOut) {
  PatternSet input = IncomparableSet(6);
  ExecContext ctx;
  ctx.WithDeadlineAfterMillis(0);
  for (MinimizeApproach approach :
       {MinimizeApproach::kAllAtOnce, MinimizeApproach::kIncremental,
        MinimizeApproach::kSortedIncremental}) {
    auto result = Minimize(input, approach,
                           PatternIndexKind::kDiscriminationTree, ctx);
    EXPECT_EQ(result.status().code(), StatusCode::kTimeout);
  }
  ThreadPool pool(4);
  auto parallel =
      Minimize(input, MinimizeApproach::kAllAtOnce,
               PatternIndexKind::kDiscriminationTree, ctx);
  EXPECT_EQ(parallel.status().code(), StatusCode::kTimeout);
  auto sharded = ParallelMinimize(input, MinimizeApproach::kAllAtOnce,
                                  PatternIndexKind::kDiscriminationTree,
                                  &pool, ctx);
  EXPECT_EQ(sharded.status().code(), StatusCode::kTimeout);
}

TEST(CancellationTest, PreCancelledTokenCancelsEveryEntryPoint) {
  auto token = std::make_shared<CancellationToken>();
  token->Cancel();
  ExecContext ctx;
  ctx.WithCancellationToken(token);

  Schema schema({{"a", ValueType::kInt64}});
  EXPECT_EQ(ReadCsvString("a\n1\n", schema, true, ctx).status().code(),
            StatusCode::kCancelled);

  AnnotatedDatabase adb = MakeMaintenanceDatabase();
  EXPECT_EQ(Evaluate(*Expr::Scan("Warnings"), adb.database(), {}, ctx)
                .status()
                .code(),
            StatusCode::kCancelled);
  EXPECT_EQ(EvaluateAnnotated(*MakeHardwareWarningsQuery(), adb, {}, ctx)
                .status()
                .code(),
            StatusCode::kCancelled);
  bool degraded = false;
  EXPECT_EQ(ComputeQueryPatterns(*MakeHardwareWarningsQuery(), adb, {}, ctx,
                                 &degraded)
                .status()
                .code(),
            StatusCode::kCancelled);
  EXPECT_EQ(Minimize(IncomparableSet(4), MinimizeApproach::kAllAtOnce,
                     PatternIndexKind::kDiscriminationTree, ctx)
                .status()
                .code(),
            StatusCode::kCancelled);
}

// ---------------------------------------------------------------------------
// Row and memory budgets.

TEST(BudgetTest, CsvRowBudget) {
  Schema schema({{"a", ValueType::kInt64}});
  ExecContext ctx;
  ctx.WithRowBudget(3);
  EXPECT_TRUE(
      ReadCsvString("a\n1\n2\n3\n", schema, true, ctx).ok());
  EXPECT_EQ(ReadCsvString("a\n1\n2\n3\n4\n5\n", schema, true, ctx)
                .status()
                .code(),
            StatusCode::kResourceExhausted);
}

TEST(BudgetTest, EvaluateRowBudget) {
  AnnotatedDatabase adb = MakeMaintenanceDatabase();
  ExprPtr plan = Expr::Scan("Warnings");  // 7 rows
  ExecContext tight;
  tight.WithRowBudget(2);
  EXPECT_EQ(Evaluate(*plan, adb.database(), {}, tight).status().code(),
            StatusCode::kResourceExhausted);
  ExecContext roomy;
  roomy.WithRowBudget(1000);
  EXPECT_TRUE(Evaluate(*plan, adb.database(), {}, roomy).ok());
}

TEST(BudgetTest, MinimizeMemoryBudget) {
  ExecContext ctx;
  ctx.WithMemoryBudget(1);  // any index allocation exceeds one byte
  auto result = Minimize(IncomparableSet(5), MinimizeApproach::kAllAtOnce,
                         PatternIndexKind::kDiscriminationTree, ctx);
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(BudgetTest, MinimizePatternBudget) {
  PatternSet input = IncomparableSet(5);  // minimal set = all 5
  ExecContext tight;
  tight.WithPatternBudget(3);
  EXPECT_EQ(Minimize(input, MinimizeApproach::kSortedIncremental,
                     PatternIndexKind::kDiscriminationTree, tight)
                .status()
                .code(),
            StatusCode::kResourceExhausted);
  ExecContext exact;
  exact.WithPatternBudget(5);
  auto ok = Minimize(input, MinimizeApproach::kSortedIncremental,
                     PatternIndexKind::kDiscriminationTree, exact);
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(ok.ValueOrDie().SetEquals(input));
}

// ---------------------------------------------------------------------------
// SummarizePatterns: the sound degradation target.

TEST(SummarizeTest, EmptyBudgetOrInputGivesEmptySummary) {
  EXPECT_TRUE(SummarizePatterns(PatternSet(), 3).empty());
  EXPECT_TRUE(SummarizePatterns(IncomparableSet(3), 0).empty());
}

TEST(SummarizeTest, KeepsTheMostGeneralPatterns) {
  PatternSet input;
  input.Add(MakePattern({"a", "*"}));
  input.Add(MakePattern({"*", "*"}));
  input.Add(MakePattern({"*", "b"}));
  PatternSet one = SummarizePatterns(input, 1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_TRUE(one[0].IsAllWildcards());
  // The all-wildcard pattern subsumes everything else, so a larger
  // budget adds no dominated entries.
  EXPECT_EQ(SummarizePatterns(input, 3).size(), 1u);
}

TEST(SummarizeTest, ReturnsABudgetSizedSubsetOfTheInput) {
  PatternSet input = IncomparableSet(5);
  PatternSet out = SummarizePatterns(input, 2);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_TRUE(IsMinimal(out));
  for (const Pattern& p : out) {
    EXPECT_TRUE(input.AnySubsumes(p));
  }
}

// ---------------------------------------------------------------------------
// Graceful degradation end to end: a pattern budget of 1 must yield a
// degraded-but-sound summary, not an error.

TEST(DegradationTest, ComputeQueryPatternsDegradesToASoundSummary) {
  AnnotatedDatabase adb = MakeMaintenanceDatabase();
  ExprPtr query = MakeHardwareWarningsQuery();
  auto exact = ComputeQueryPatterns(*query, adb);
  ASSERT_TRUE(exact.ok());

  ExecContext ctx;
  ctx.WithPatternBudget(1);
  bool degraded = false;
  auto budgeted = ComputeQueryPatterns(*query, adb, {}, ctx, &degraded);
  ASSERT_TRUE(budgeted.ok()) << budgeted.status();
  EXPECT_TRUE(degraded);  // Warnings alone carries 3 incomparable patterns
  EXPECT_LE(budgeted.ValueOrDie().size(), 1u);
  // Sound: every degraded pattern is entailed by the exact result.
  for (const Pattern& p : budgeted.ValueOrDie()) {
    EXPECT_TRUE(exact.ValueOrDie().AnySubsumes(p)) << p.ToString();
  }
}

TEST(DegradationTest, DegradedPatternsPassTheGroundTruthChecker) {
  AnnotatedDatabase adb = MakeTinyDatabase();
  ExprPtr query = Expr::Scan("R");
  ExecContext ctx;
  ctx.WithPatternBudget(1);
  bool degraded = false;
  auto budgeted = ComputeQueryPatterns(*query, adb, {}, ctx, &degraded);
  ASSERT_TRUE(budgeted.ok()) << budgeted.status();
  EXPECT_TRUE(degraded);
  ASSERT_EQ(budgeted.ValueOrDie().size(), 1u);
  // Definition 4 on the instance: the surviving summary pattern is a
  // query completeness pattern the base patterns really entail.
  for (const Pattern& p : budgeted.ValueOrDie()) {
    auto entailed = EntailsWrtInstance(adb, *query, p);
    ASSERT_TRUE(entailed.ok()) << entailed.status();
    EXPECT_TRUE(entailed.ValueOrDie()) << p.ToString();
  }
}

TEST(DegradationTest, EvaluateAnnotatedMarksDegradedResults) {
  AnnotatedDatabase adb = MakeMaintenanceDatabase();
  ExprPtr query = MakeHardwareWarningsQuery();
  auto exact = EvaluateAnnotated(*query, adb);
  ASSERT_TRUE(exact.ok());
  EXPECT_FALSE(exact.ValueOrDie().degraded);

  ExecContext ctx;
  ctx.WithPatternBudget(1);
  AnnotatedEvalInfo info;
  auto budgeted = EvaluateAnnotated(*query, adb, {}, ctx, &info);
  ASSERT_TRUE(budgeted.ok()) << budgeted.status();
  const AnnotatedTable& result = budgeted.ValueOrDie();
  EXPECT_TRUE(result.degraded);
  EXPECT_GT(info.degradations, 0u);
  EXPECT_LE(result.patterns.size(), 1u);
  // Degradation only coarsens the metadata; the answer itself is exact.
  EXPECT_TRUE(result.data.BagEquals(exact.ValueOrDie().data));
  for (const Pattern& p : result.patterns) {
    EXPECT_TRUE(exact.ValueOrDie().patterns.AnySubsumes(p)) << p.ToString();
  }
  // The rendering warns the reader that the pattern list is a summary.
  EXPECT_NE(result.ToString().find("degraded"), std::string::npos);
}

TEST(DegradationTest, GenerousBudgetDoesNotDegrade) {
  AnnotatedDatabase adb = MakeMaintenanceDatabase();
  ExprPtr query = MakeHardwareWarningsQuery();
  auto exact = EvaluateAnnotated(*query, adb);
  ASSERT_TRUE(exact.ok());
  ExecContext ctx;
  ctx.WithPatternBudget(10000);
  auto governed = EvaluateAnnotated(*query, adb, {}, ctx);
  ASSERT_TRUE(governed.ok()) << governed.status();
  EXPECT_FALSE(governed.ValueOrDie().degraded);
  EXPECT_TRUE(governed.ValueOrDie().patterns.SetEquals(
      exact.ValueOrDie().patterns));
}

}  // namespace
}  // namespace pcdb
