#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/exec_context.h"
#include "pattern/annotated_eval.h"
#include "server/protocol.h"
#include "sql/planner.h"
#include "workloads/maintenance_example.h"

namespace pcdb {
namespace {

// ---------------------------------------------------------------------------
// Framing.

// Unwraps Next() through ok() so an injected server.decode fault (the
// ci faults sweep arms it process-wide) fails the test instead of
// tripping the Result dereference check and aborting the binary.
bool NextFrame(FrameReader* reader, Frame* frame) {
  Result<bool> next = reader->Next(frame);
  EXPECT_TRUE(next.ok()) << next.status().ToString();
  return next.ok() && *next;
}

TEST(FrameTest, RoundTripsThroughReader) {
  std::string wire;
  AppendFrame(&wire, FrameType::kQuery, 42, "payload");
  AppendFrame(&wire, FrameType::kPing, 7, "");
  AppendFrame(&wire, FrameType::kAnswerRows, 99, std::string(1000, 'x'));

  FrameReader reader;
  reader.Feed(wire.data(), wire.size());
  Frame frame;
  ASSERT_TRUE(NextFrame(&reader, &frame));
  EXPECT_EQ(frame.type, FrameType::kQuery);
  EXPECT_EQ(frame.request_id, 42u);
  EXPECT_EQ(frame.payload, "payload");
  ASSERT_TRUE(NextFrame(&reader, &frame));
  EXPECT_EQ(frame.type, FrameType::kPing);
  EXPECT_EQ(frame.request_id, 7u);
  EXPECT_EQ(frame.payload, "");
  ASSERT_TRUE(NextFrame(&reader, &frame));
  EXPECT_EQ(frame.type, FrameType::kAnswerRows);
  EXPECT_EQ(frame.payload.size(), 1000u);
  EXPECT_FALSE(NextFrame(&reader, &frame));
  EXPECT_EQ(reader.buffered_bytes(), 0u);
}

TEST(FrameTest, ReassemblesAcrossArbitrarySplits) {
  // The wire contract: framing must be agnostic to how the transport
  // chunks bytes (the server.read.short failpoint delivers 1 at a time).
  std::string wire;
  for (uint64_t id = 1; id <= 5; ++id) {
    AppendFrame(&wire, FrameType::kCancel, id,
                EncodeCancelPayload(id * 1000));
  }
  FrameReader reader;
  std::vector<Frame> frames;
  for (size_t i = 0; i < wire.size(); ++i) {
    reader.Feed(wire.data() + i, 1);
    Frame frame;
    Result<bool> next = reader.Next(&frame);
    ASSERT_TRUE(next.ok());
    if (*next) frames.push_back(std::move(frame));
  }
  ASSERT_EQ(frames.size(), 5u);
  for (uint64_t id = 1; id <= 5; ++id) {
    EXPECT_EQ(frames[id - 1].request_id, id);
    Result<uint64_t> deadline = DecodeCancelPayload(frames[id - 1].payload);
    ASSERT_TRUE(deadline.ok());
    EXPECT_EQ(*deadline, id * 1000);
  }
}

TEST(FrameTest, RejectsUnknownFrameType) {
  std::string wire;
  AppendFrame(&wire, FrameType::kPing, 1, "");
  wire[4] = 0x55;  // not a FrameType
  FrameReader reader;
  reader.Feed(wire.data(), wire.size());
  Frame frame;
  Result<bool> next = reader.Next(&frame);
  ASSERT_FALSE(next.ok());
  EXPECT_EQ(next.status().code(), StatusCode::kInvalidArgument);
}

TEST(FrameTest, RejectsOversizedLengthPrefix) {
  // A length prefix beyond kMaxFramePayloadBytes must fail immediately,
  // not make the reader wait for 4 GiB that will never arrive.
  std::string wire;
  AppendFrame(&wire, FrameType::kQuery, 1, "x");
  wire[0] = static_cast<char>(0xff);
  wire[1] = static_cast<char>(0xff);
  wire[2] = static_cast<char>(0xff);
  wire[3] = static_cast<char>(0x7f);
  FrameReader reader;
  reader.Feed(wire.data(), wire.size());
  Frame frame;
  Result<bool> next = reader.Next(&frame);
  ASSERT_FALSE(next.ok());
  EXPECT_EQ(next.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Error codes: the single StatusCode <-> wire mapping.

std::vector<StatusCode> AllStatusCodes() {
  return {StatusCode::kOk,           StatusCode::kInvalidArgument,
          StatusCode::kNotFound,     StatusCode::kAlreadyExists,
          StatusCode::kOutOfRange,   StatusCode::kTypeError,
          StatusCode::kParseError,   StatusCode::kTimeout,
          StatusCode::kCancelled,    StatusCode::kResourceExhausted,
          StatusCode::kUnimplemented, StatusCode::kInternal,
          StatusCode::kUnavailable};
}

TEST(WireErrorTest, EveryStatusCodeRoundTripsUnchanged) {
  for (StatusCode code : AllStatusCodes()) {
    const WireErrorCode wire = WireErrorCodeFor(code);
    Result<StatusCode> back =
        StatusCodeFromWire(static_cast<uint16_t>(wire));
    ASSERT_TRUE(back.ok()) << StatusCodeToString(code);
    EXPECT_EQ(*back, code) << StatusCodeToString(code);
  }
}

TEST(WireErrorTest, WireNumberingIsStable) {
  // These values are on-the-wire protocol; changing them breaks every
  // deployed client. Spot-pin the full table.
  EXPECT_EQ(WireErrorCodeFor(StatusCode::kOk), WireErrorCode::kOk);
  EXPECT_EQ(static_cast<uint16_t>(WireErrorCode::kInvalidArgument), 1);
  EXPECT_EQ(static_cast<uint16_t>(WireErrorCode::kNotFound), 2);
  EXPECT_EQ(static_cast<uint16_t>(WireErrorCode::kAlreadyExists), 3);
  EXPECT_EQ(static_cast<uint16_t>(WireErrorCode::kOutOfRange), 4);
  EXPECT_EQ(static_cast<uint16_t>(WireErrorCode::kTypeError), 5);
  EXPECT_EQ(static_cast<uint16_t>(WireErrorCode::kParseError), 6);
  EXPECT_EQ(static_cast<uint16_t>(WireErrorCode::kTimeout), 7);
  EXPECT_EQ(static_cast<uint16_t>(WireErrorCode::kCancelled), 8);
  EXPECT_EQ(static_cast<uint16_t>(WireErrorCode::kResourceExhausted), 9);
  EXPECT_EQ(static_cast<uint16_t>(WireErrorCode::kUnimplemented), 10);
  EXPECT_EQ(static_cast<uint16_t>(WireErrorCode::kInternal), 11);
  EXPECT_EQ(static_cast<uint16_t>(WireErrorCode::kUnavailable), 12);
}

TEST(WireErrorTest, ErrorPayloadPreservesCodeAndMessageExactly) {
  // The client-observed error must be indistinguishable from the
  // in-process Status — same code, same message text.
  for (StatusCode code : AllStatusCodes()) {
    if (code == StatusCode::kOk) continue;
    Status original(code, std::string("message for ") +
                              StatusCodeToString(code) + " / §köln");
    Status decoded;
    ASSERT_TRUE(
        DecodeErrorPayload(EncodeErrorPayload(original), &decoded).ok());
    EXPECT_EQ(decoded.code(), original.code());
    EXPECT_EQ(decoded.message(), original.message());
    EXPECT_EQ(decoded.ToString(), original.ToString());
  }
}

TEST(WireErrorTest, UnknownWireCodeIsRejected) {
  EXPECT_FALSE(StatusCodeFromWire(999).ok());
}

TEST(WireErrorTest, TruncatedErrorPayloadIsAParseError) {
  std::string payload = EncodeErrorPayload(Status::Timeout("deadline"));
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    Status decoded;
    Status result =
        DecodeErrorPayload(std::string_view(payload.data(), cut), &decoded);
    EXPECT_EQ(result.code(), StatusCode::kParseError) << "cut=" << cut;
  }
}

// ---------------------------------------------------------------------------
// Request payloads.

TEST(FrameTest, AnswerProfileFrameCarriesItsPayloadVerbatim) {
  // The ANSWER_PROFILE payload is the server-rendered profile JSON; the
  // frame must deliver the identical bytes (byte-identity of the wire
  // profile is a protocol guarantee, not a re-rendering).
  const std::string profile_json =
      "{\"operators\":[{\"op\":\"scan\",\"depth\":1}],"
      "\"cache_hit\":false,\"eval_micros\":12.5}";
  std::string wire;
  AppendFrame(&wire, FrameType::kAnswerProfile, 11, profile_json);
  FrameReader reader;
  reader.Feed(wire.data(), wire.size());
  Frame frame;
  ASSERT_TRUE(NextFrame(&reader, &frame));
  EXPECT_EQ(frame.type, FrameType::kAnswerProfile);
  EXPECT_EQ(frame.request_id, 11u);
  EXPECT_EQ(frame.payload, profile_json);
}

TEST(QueryPayloadTest, ProfileFlagRoundTrips) {
  QueryRequest request;
  request.flags = QueryRequest::kFlagProfile;
  request.sql = "SELECT * FROM Warnings";
  Result<QueryRequest> back = DecodeQueryPayload(EncodeQueryPayload(request));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->flags, QueryRequest::kFlagProfile);
  EXPECT_EQ(back->sql, request.sql);
}

TEST(QueryPayloadTest, RoundTrips) {
  QueryRequest request;
  request.flags =
      QueryRequest::kFlagInstanceAware | QueryRequest::kFlagZombies;
  request.deadline_millis = 1500;
  request.max_rows = 1u << 20;
  request.max_patterns = 77;
  request.max_memory_bytes = 5ull << 30;
  request.sql = "SELECT * FROM Warnings WHERE week=2";
  Result<QueryRequest> back = DecodeQueryPayload(EncodeQueryPayload(request));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->flags, request.flags);
  EXPECT_EQ(back->deadline_millis, request.deadline_millis);
  EXPECT_EQ(back->max_rows, request.max_rows);
  EXPECT_EQ(back->max_patterns, request.max_patterns);
  EXPECT_EQ(back->max_memory_bytes, request.max_memory_bytes);
  EXPECT_EQ(back->sql, request.sql);
}

TEST(QueryPayloadTest, TenantRoundTrips) {
  QueryRequest request;
  request.sql = "SELECT * FROM Warnings";
  request.tenant = "acme";
  Result<QueryRequest> back = DecodeQueryPayload(EncodeQueryPayload(request));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->tenant, "acme");
  EXPECT_EQ(back->sql, request.sql);
  // The empty tenant (the default) round-trips too: it is a valid
  // tier-0 tenant, not an absence marker.
  request.tenant.clear();
  back = DecodeQueryPayload(EncodeQueryPayload(request));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->tenant, "");
}

TEST(QueryPayloadTest, EveryTruncationIsAParseError) {
  QueryRequest request;
  request.sql = "SELECT * FROM t";
  std::string payload = EncodeQueryPayload(request);
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    Result<QueryRequest> back =
        DecodeQueryPayload(std::string_view(payload.data(), cut));
    ASSERT_FALSE(back.ok()) << "cut=" << cut;
    EXPECT_EQ(back.status().code(), StatusCode::kParseError) << "cut=" << cut;
  }
}

TEST(QueryPayloadTest, TrailingGarbageIsAParseError) {
  QueryRequest request;
  request.sql = "SELECT * FROM t";
  std::string payload = EncodeQueryPayload(request) + "junk";
  EXPECT_EQ(DecodeQueryPayload(payload).status().code(),
            StatusCode::kParseError);
}

// ---------------------------------------------------------------------------
// Trace-context block: the optional trailing (trace_id, parent_span_id,
// flags) triplet every request payload may carry.

namespace {

// Little-endian u64, matching the codec's AppendU64.
void AppendLeU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

std::string TraceBlock(uint64_t trace_id, uint64_t parent_span_id,
                       uint8_t flags) {
  std::string block;
  AppendLeU64(&block, trace_id);
  AppendLeU64(&block, parent_span_id);
  block.push_back(static_cast<char>(flags));
  return block;
}

}  // namespace

TEST(TraceBlockTest, RidesAlongOnAllThreeRequestPayloads) {
  QueryRequest query;
  query.sql = "SELECT * FROM Warnings";
  query.trace_id = 0xAABB01;
  query.parent_span_id = 0xAABB02;
  query.trace_sampled = true;
  Result<QueryRequest> q = DecodeQueryPayload(EncodeQueryPayload(query));
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->trace_id, query.trace_id);
  EXPECT_EQ(q->parent_span_id, query.parent_span_id);
  EXPECT_TRUE(q->trace_sampled);

  IngestRequest ingest;
  ingest.table = "Warnings";
  ingest.rows.push_back({Value("Mon")});
  ingest.trace_id = 0xCCDD01;
  ingest.parent_span_id = 0xCCDD02;
  Result<IngestRequest> in = DecodeIngestPayload(EncodeIngestPayload(ingest));
  ASSERT_TRUE(in.ok()) << in.status().ToString();
  EXPECT_EQ(in->trace_id, ingest.trace_id);
  EXPECT_EQ(in->parent_span_id, ingest.parent_span_id);
  EXPECT_FALSE(in->trace_sampled);

  PunctuateRequest punct;
  punct.table = "Warnings";
  punct.patterns.push_back({"*", "*"});
  punct.trace_id = 0xEEFF01;
  punct.parent_span_id = 0xEEFF02;
  punct.trace_sampled = true;
  Result<PunctuateRequest> pu =
      DecodePunctuatePayload(EncodePunctuatePayload(punct));
  ASSERT_TRUE(pu.ok()) << pu.status().ToString();
  EXPECT_EQ(pu->trace_id, punct.trace_id);
  EXPECT_EQ(pu->parent_span_id, punct.parent_span_id);
  EXPECT_TRUE(pu->trace_sampled);
}

TEST(TraceBlockTest, UntracedPayloadsAreByteIdenticalToPreTraceWire) {
  // trace_id == 0 must encode to exactly the pre-trace bytes — old
  // servers keep decoding new untraced clients, and WriteWithRetry's
  // resend stays byte-identical.
  QueryRequest untraced;
  untraced.sql = "SELECT * FROM Warnings";
  QueryRequest traced = untraced;
  traced.trace_id = 7;
  traced.parent_span_id = 9;
  const std::string base = EncodeQueryPayload(untraced);
  const std::string with = EncodeQueryPayload(traced);
  ASSERT_EQ(with.size(), base.size() + 17u);
  EXPECT_EQ(with.compare(0, base.size(), base), 0);
  EXPECT_EQ(with.substr(base.size()), TraceBlock(7, 9, 0));
}

TEST(TraceBlockTest, TruncationSemantics) {
  // Cutting a traced payload exactly at the base-payload boundary is a
  // VALID untraced request (that is what an old client sends); cutting
  // anywhere inside the block is a parse error like any short read.
  QueryRequest traced;
  traced.sql = "SELECT * FROM t";
  traced.trace_id = 11;
  traced.parent_span_id = 22;
  traced.trace_sampled = true;
  const std::string payload = EncodeQueryPayload(traced);
  const size_t base = payload.size() - 17;
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    Result<QueryRequest> back =
        DecodeQueryPayload(std::string_view(payload.data(), cut));
    if (cut == base) {
      ASSERT_TRUE(back.ok()) << back.status().ToString();
      EXPECT_EQ(back->trace_id, 0u);
      EXPECT_FALSE(back->trace_sampled);
    } else {
      ASSERT_FALSE(back.ok()) << "cut=" << cut;
      EXPECT_EQ(back.status().code(), StatusCode::kParseError)
          << "cut=" << cut;
    }
  }
  EXPECT_EQ(DecodeQueryPayload(payload + "x").status().code(),
            StatusCode::kParseError);
}

TEST(TraceBlockTest, ZeroIdAndUnknownFlagBitsAreParseErrors) {
  QueryRequest request;
  request.sql = "SELECT * FROM t";
  const std::string base = EncodeQueryPayload(request);
  // A present block must carry a real trace id: 0 would decode
  // indistinguishably from "no context" downstream.
  EXPECT_EQ(DecodeQueryPayload(base + TraceBlock(0, 5, 1)).status().code(),
            StatusCode::kParseError);
  // Flag bits beyond "sampled" are reserved; rejecting them now keeps
  // them assignable later.
  EXPECT_EQ(DecodeQueryPayload(base + TraceBlock(3, 5, 2)).status().code(),
            StatusCode::kParseError);
  EXPECT_TRUE(DecodeQueryPayload(base + TraceBlock(3, 5, 1)).ok());
}

// ---------------------------------------------------------------------------
// Write-path payloads (INGEST / PUNCTUATE / INGEST_RESULT).

TEST(IngestPayloadTest, RoundTrips) {
  IngestRequest request;
  request.tenant = "acme";
  request.table = "Warnings";
  request.policy = IngestRequest::kPolicyRetractPatterns;
  request.rows.push_back({Value("Thu"), Value(int64_t{3}), Value("tw99"),
                          Value("scheduled check")});
  request.rows.push_back({Value(2.5)});  // arity/type checks are the
                                         // server's job, not the codec's
  request.writer_id = 0x1234567890ABCDEFull;
  request.seq = 42;
  Result<IngestRequest> back =
      DecodeIngestPayload(EncodeIngestPayload(request));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->tenant, "acme");
  EXPECT_EQ(back->table, "Warnings");
  EXPECT_EQ(back->policy, IngestRequest::kPolicyRetractPatterns);
  ASSERT_EQ(back->rows.size(), 2u);
  EXPECT_EQ(back->rows[0], request.rows[0]);
  EXPECT_EQ(back->rows[1], request.rows[1]);
  // The idempotence identity must survive byte-exactly: a retried frame
  // re-encodes to the same (writer_id, seq) pair the server dedups on.
  EXPECT_EQ(back->writer_id, 0x1234567890ABCDEFull);
  EXPECT_EQ(back->seq, 42u);
}

TEST(IngestPayloadTest, EveryTruncationIsAParseError) {
  IngestRequest request;
  request.table = "t";
  request.rows.push_back({Value(int64_t{1}), Value("x")});
  std::string payload = EncodeIngestPayload(request);
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    Result<IngestRequest> back =
        DecodeIngestPayload(std::string_view(payload.data(), cut));
    ASSERT_FALSE(back.ok()) << "cut=" << cut;
    EXPECT_EQ(back.status().code(), StatusCode::kParseError) << "cut=" << cut;
  }
}

TEST(IngestPayloadTest, TrailingGarbageAndBadPolicyAreParseErrors) {
  IngestRequest request;
  request.table = "t";
  std::string payload = EncodeIngestPayload(request);
  EXPECT_EQ(DecodeIngestPayload(payload + "junk").status().code(),
            StatusCode::kParseError);
  // The policy byte sits right after the two length-prefixed strings;
  // any value beyond kPolicyRetractPatterns must be rejected, not
  // clamped (a future policy must not silently alias an old one).
  const size_t policy_at = 4 + request.tenant.size() + 4 +
                           request.table.size();
  std::string bad = payload;
  bad[policy_at] = 7;
  EXPECT_EQ(DecodeIngestPayload(bad).status().code(),
            StatusCode::kParseError);
}

TEST(PunctuatePayloadTest, RoundTrips) {
  PunctuateRequest request;
  request.tenant = "acme";
  request.table = "Warnings";
  request.patterns.push_back({"Mon", "2", "*", "*"});
  request.patterns.push_back({"*", "*", "*", "*"});
  request.writer_id = 99;
  request.seq = 7;
  Result<PunctuateRequest> back =
      DecodePunctuatePayload(EncodePunctuatePayload(request));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->tenant, "acme");
  EXPECT_EQ(back->table, "Warnings");
  EXPECT_EQ(back->patterns, request.patterns);
  EXPECT_EQ(back->writer_id, 99u);
  EXPECT_EQ(back->seq, 7u);
}

TEST(PunctuatePayloadTest, EveryTruncationIsAParseError) {
  PunctuateRequest request;
  request.table = "t";
  request.patterns.push_back({"a", "*"});
  std::string payload = EncodePunctuatePayload(request);
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    Result<PunctuateRequest> back =
        DecodePunctuatePayload(std::string_view(payload.data(), cut));
    ASSERT_FALSE(back.ok()) << "cut=" << cut;
    EXPECT_EQ(back.status().code(), StatusCode::kParseError) << "cut=" << cut;
  }
}

TEST(IngestResultPayloadTest, RoundTripsAndRejectsTruncation) {
  IngestResult result;
  result.rows_ingested = 5;
  result.rows_rejected = 1;
  result.punctuations = 2;
  result.patterns_retracted = 3;
  result.violations = 4;
  result.seq = 6;
  result.duplicate = true;
  const std::string payload = EncodeIngestResultPayload(result);
  Result<IngestResult> back = DecodeIngestResultPayload(payload);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->rows_ingested, 5u);
  EXPECT_EQ(back->rows_rejected, 1u);
  EXPECT_EQ(back->punctuations, 2u);
  EXPECT_EQ(back->patterns_retracted, 3u);
  EXPECT_EQ(back->violations, 4u);
  EXPECT_EQ(back->seq, 6u);
  EXPECT_TRUE(back->duplicate);
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    EXPECT_EQ(DecodeIngestResultPayload(
                  std::string_view(payload.data(), cut))
                  .status()
                  .code(),
              StatusCode::kParseError)
        << "cut=" << cut;
  }
  EXPECT_EQ(DecodeIngestResultPayload(payload + "x").status().code(),
            StatusCode::kParseError);
}

TEST(IngestResultPayloadTest, BadDuplicateFlagIsAParseError) {
  std::string payload = EncodeIngestResultPayload(IngestResult{});
  // The duplicate flag is the final byte; it must be exactly 0 or 1 —
  // any other value is rejected, not truthy-coerced.
  payload.back() = 2;
  EXPECT_EQ(DecodeIngestResultPayload(payload).status().code(),
            StatusCode::kParseError);
}

TEST(CheckpointResultPayloadTest, RoundTripsAndRejectsTruncation) {
  CheckpointResult result;
  result.lsn = 0xFEDCBA9876543210ull;
  result.wal_segments_removed = 11;
  const std::string payload = EncodeCheckpointResultPayload(result);
  Result<CheckpointResult> back = DecodeCheckpointResultPayload(payload);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->lsn, 0xFEDCBA9876543210ull);
  EXPECT_EQ(back->wal_segments_removed, 11u);
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    EXPECT_EQ(DecodeCheckpointResultPayload(
                  std::string_view(payload.data(), cut))
                  .status()
                  .code(),
              StatusCode::kParseError)
        << "cut=" << cut;
  }
  EXPECT_EQ(DecodeCheckpointResultPayload(payload + "x").status().code(),
            StatusCode::kParseError);
}

// ---------------------------------------------------------------------------
// Shard placement (SHARD_INFO / SHARD_INFO_RESULT).

TEST(ShardInfoPayloadTest, RoundTripsAndRejectsTruncation) {
  ShardInfo info;
  info.shard_id = 2;
  info.num_shards = 3;
  info.tables = {{"Maintenance", false, 7},
                 {"Teams", false, 0},
                 {"Warnings", true, 41}};
  std::string payload = EncodeShardInfoPayload(info);
  Result<ShardInfo> back = DecodeShardInfoPayload(payload);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->shard_id, 2u);
  EXPECT_EQ(back->num_shards, 3u);
  ASSERT_EQ(back->tables.size(), 3u);
  EXPECT_EQ(back->tables[0].table, "Maintenance");
  EXPECT_FALSE(back->tables[0].hashed);
  EXPECT_EQ(back->tables[0].epoch, 7u);
  EXPECT_EQ(back->tables[2].table, "Warnings");
  EXPECT_TRUE(back->tables[2].hashed);
  EXPECT_EQ(back->tables[2].epoch, 41u);

  for (size_t cut = 0; cut < payload.size(); ++cut) {
    Result<ShardInfo> truncated =
        DecodeShardInfoPayload(std::string_view(payload.data(), cut));
    ASSERT_FALSE(truncated.ok()) << "cut=" << cut;
    EXPECT_EQ(truncated.status().code(), StatusCode::kParseError)
        << "cut=" << cut;
  }
  EXPECT_EQ(DecodeShardInfoPayload(payload + "x").status().code(),
            StatusCode::kParseError);
}

TEST(ShardInfoPayloadTest, CoordinatorSentinelRoundTrips) {
  ShardInfo info;
  info.shard_id = ShardInfo::kCoordinatorShardId;
  info.num_shards = 3;
  Result<ShardInfo> back = DecodeShardInfoPayload(EncodeShardInfoPayload(info));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->shard_id, ShardInfo::kCoordinatorShardId);
}

TEST(ShardInfoPayloadTest, ZeroShardsAndBadHashedFlagAreParseErrors) {
  ShardInfo info;
  info.num_shards = 0;
  EXPECT_EQ(DecodeShardInfoPayload(EncodeShardInfoPayload(info))
                .status()
                .code(),
            StatusCode::kParseError);
  // A hashed byte other than 0/1 is off-protocol, not a truthy bool.
  info.num_shards = 1;
  info.tables = {{"T", true, 1}};
  std::string payload = EncodeShardInfoPayload(info);
  payload[payload.size() - 9] = 2;  // the hashed byte precedes the epoch
  EXPECT_EQ(DecodeShardInfoPayload(payload).status().code(),
            StatusCode::kParseError);
}

TEST(FrameTest, ShardInfoFrameTypesAreKnownToTheReader) {
  // kShardInfo has an empty payload; kShardInfoResult carries the
  // encoded placement. Both must survive the reader unchanged.
  ShardInfo info;
  info.shard_id = 1;
  info.num_shards = 2;
  std::string wire;
  AppendFrame(&wire, FrameType::kShardInfo, 21, "");
  AppendFrame(&wire, FrameType::kShardInfoResult, 21,
              EncodeShardInfoPayload(info));
  FrameReader reader;
  reader.Feed(wire.data(), wire.size());
  Frame frame;
  ASSERT_TRUE(NextFrame(&reader, &frame));
  EXPECT_EQ(frame.type, FrameType::kShardInfo);
  EXPECT_TRUE(frame.payload.empty());
  ASSERT_TRUE(NextFrame(&reader, &frame));
  EXPECT_EQ(frame.type, FrameType::kShardInfoResult);
  Result<ShardInfo> back = DecodeShardInfoPayload(frame.payload);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->shard_id, 1u);
}

TEST(FrameTest, WritePathFrameTypesAreKnownToTheReader) {
  std::string wire;
  AppendFrame(&wire, FrameType::kIngest, 1, "");
  AppendFrame(&wire, FrameType::kPunctuate, 2, "");
  AppendFrame(&wire, FrameType::kIngestResult, 3, "");
  AppendFrame(&wire, FrameType::kCheckpoint, 4, "");
  AppendFrame(&wire, FrameType::kCheckpointResult, 5, "");
  FrameReader reader;
  reader.Feed(wire.data(), wire.size());
  Frame frame;
  ASSERT_TRUE(NextFrame(&reader, &frame));
  EXPECT_EQ(frame.type, FrameType::kIngest);
  ASSERT_TRUE(NextFrame(&reader, &frame));
  EXPECT_EQ(frame.type, FrameType::kPunctuate);
  ASSERT_TRUE(NextFrame(&reader, &frame));
  EXPECT_EQ(frame.type, FrameType::kIngestResult);
  ASSERT_TRUE(NextFrame(&reader, &frame));
  EXPECT_EQ(frame.type, FrameType::kCheckpoint);
  ASSERT_TRUE(NextFrame(&reader, &frame));
  EXPECT_EQ(frame.type, FrameType::kCheckpointResult);
}

TEST(DonePayloadTest, RoundTrips) {
  AnswerDone done;
  done.degraded = true;
  done.cache_hit = true;
  done.data_millis = 12.5;
  done.pattern_millis = 0.125;
  Result<AnswerDone> back = DecodeDonePayload(EncodeDonePayload(done));
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->degraded);
  EXPECT_TRUE(back->cache_hit);
  EXPECT_EQ(back->data_millis, 12.5);
  EXPECT_EQ(back->pattern_millis, 0.125);
}

// ---------------------------------------------------------------------------
// Answer encoding.

Result<AnnotatedTable> EvalHardwareWarnings() {
  AnnotatedDatabase adb = MakeMaintenanceDatabase();
  return EvaluateAnnotated(*MakeHardwareWarningsQuery(), adb,
                           AnnotatedEvalOptions(), ExecContext());
}

TEST(AnswerCodecTest, RoundTripsARealAnnotatedAnswer) {
  Result<AnnotatedTable> answer = EvalHardwareWarnings();
  ASSERT_TRUE(answer.ok());
  ASSERT_GT(answer->data.num_rows(), 0u);
  ASSERT_GT(answer->patterns.size(), 0u);

  EncodedAnswer encoded = EncodeAnswer(*answer, /*rows_per_batch=*/2);
  // 3 rows at 2 per batch -> 2 batches.
  EXPECT_EQ(encoded.row_batches.size(),
            (answer->data.num_rows() + 1) / 2);

  Result<AnnotatedTable> decoded = DecodeAnswer(encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->data.num_rows(), answer->data.num_rows());
  EXPECT_EQ(decoded->data.ToString(), answer->data.ToString());
  EXPECT_TRUE(decoded->patterns.SetEquals(answer->patterns));
  EXPECT_EQ(decoded->degraded, answer->degraded);

  // Re-encoding the decoded answer reproduces the canonical bytes: the
  // codec loses nothing.
  EncodedAnswer reencoded = EncodeAnswer(*decoded, /*rows_per_batch=*/2);
  EXPECT_EQ(reencoded.CanonicalBytes(), encoded.CanonicalBytes());
}

TEST(AnswerCodecTest, EmptyAnswerHasNoRowBatches) {
  AnnotatedDatabase adb = MakeMaintenanceDatabase();
  Result<ExprPtr> plan =
      PlanSql("SELECT * FROM Teams WHERE name='nope'", adb.database());
  ASSERT_TRUE(plan.ok());
  Result<AnnotatedTable> answer =
      EvaluateAnnotated(**plan, adb, AnnotatedEvalOptions(), ExecContext());
  ASSERT_TRUE(answer.ok());
  ASSERT_EQ(answer->data.num_rows(), 0u);
  EncodedAnswer encoded = EncodeAnswer(*answer);
  EXPECT_TRUE(encoded.row_batches.empty());
  Result<AnnotatedTable> decoded = DecodeAnswer(encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->data.num_rows(), 0u);
  EXPECT_EQ(decoded->data.schema().ToString(),
            answer->data.schema().ToString());
}

TEST(AnswerCodecTest, BatchesAreSplitByBytesAsWellAsRows) {
  Result<AnnotatedTable> answer = EvalHardwareWarnings();
  ASSERT_TRUE(answer.ok());
  const size_t num_rows = answer->data.num_rows();
  ASSERT_GT(num_rows, 1u);

  // A 1-byte budget can never fit a second row, so every batch holds
  // exactly one row even though rows_per_batch allows them all.
  EncodedAnswer tiny = EncodeAnswer(*answer, /*rows_per_batch=*/256,
                                    /*max_batch_bytes=*/1);
  EXPECT_EQ(tiny.row_batches.size(), num_rows);
  Result<AnnotatedTable> decoded = DecodeAnswer(tiny);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->data.ToString(), answer->data.ToString());
  EXPECT_TRUE(decoded->patterns.SetEquals(answer->patterns));

  // A budget sized to the largest single-row batch: every batch fits it,
  // and the row-count cap still applies on top.
  size_t max_single = 0;
  for (const std::string& b : tiny.row_batches) {
    max_single = std::max(max_single, b.size());
  }
  EncodedAnswer capped = EncodeAnswer(*answer, /*rows_per_batch=*/256,
                                      /*max_batch_bytes=*/max_single);
  for (const std::string& b : capped.row_batches) {
    EXPECT_LE(b.size(), max_single);
  }
  Result<AnnotatedTable> capped_decoded = DecodeAnswer(capped);
  ASSERT_TRUE(capped_decoded.ok());
  EXPECT_EQ(capped_decoded->data.ToString(), answer->data.ToString());
}

TEST(AnswerCodecTest, CheckEncodedFrameSizesFlagsOversizePayloads) {
  Result<AnnotatedTable> answer = EvalHardwareWarnings();
  ASSERT_TRUE(answer.ok());
  EncodedAnswer encoded = EncodeAnswer(*answer);
  EXPECT_TRUE(CheckEncodedFrameSizes(encoded).ok());

  EncodedAnswer oversize;
  oversize.patterns.resize(kMaxFramePayloadBytes + 1);
  Status status = CheckEncodedFrameSizes(oversize);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
}

TEST(AnswerCodecTest, CorruptRowBatchSurfacesAsStatus) {
  Result<AnnotatedTable> answer = EvalHardwareWarnings();
  ASSERT_TRUE(answer.ok());
  EncodedAnswer encoded = EncodeAnswer(*answer);
  ASSERT_FALSE(encoded.row_batches.empty());
  encoded.row_batches[0].resize(encoded.row_batches[0].size() / 2);
  EXPECT_FALSE(DecodeAnswer(encoded).ok());
}

// ---------------------------------------------------------------------------
// Per-frame payload codecs. EncodeAnswer/DecodeAnswer compose these, but
// each pair is also the wire contract of its own frame type, so each gets
// its own round-trip and truncation coverage.

TEST(SchemaPayloadTest, RoundTripsAndRejectsTruncation) {
  Result<AnnotatedTable> answer = EvalHardwareWarnings();
  ASSERT_TRUE(answer.ok());
  const Schema& schema = answer->data.schema();
  ASSERT_GT(schema.arity(), 0u);

  std::string payload = EncodeSchemaPayload(schema);
  Result<Schema> decoded = DecodeSchemaPayload(payload);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->arity(), schema.arity());
  for (size_t i = 0; i < schema.arity(); ++i) {
    EXPECT_EQ(decoded->column(i).name, schema.column(i).name);
    EXPECT_EQ(decoded->column(i).type, schema.column(i).type);
  }

  for (size_t cut = 0; cut < payload.size(); ++cut) {
    EXPECT_FALSE(DecodeSchemaPayload(payload.substr(0, cut)).ok())
        << "truncation at " << cut << " decoded";
  }
}

TEST(RowBatchPayloadTest, RoundTripsAndRejectsTruncation) {
  Result<AnnotatedTable> answer = EvalHardwareWarnings();
  ASSERT_TRUE(answer.ok());
  const Table& table = answer->data;
  ASSERT_GT(table.num_rows(), 0u);

  std::string payload =
      EncodeRowBatchPayload(table, /*begin=*/0, /*end=*/table.num_rows());
  Table decoded(table.schema());
  ASSERT_TRUE(DecodeRowBatchPayload(payload, &decoded).ok());
  EXPECT_EQ(decoded.ToString(), table.ToString());

  // A second decode into the same table appends: batches accumulate.
  ASSERT_TRUE(DecodeRowBatchPayload(payload, &decoded).ok());
  EXPECT_EQ(decoded.num_rows(), 2 * table.num_rows());

  for (size_t cut = 0; cut < payload.size(); ++cut) {
    Table scratch(table.schema());
    EXPECT_FALSE(DecodeRowBatchPayload(payload.substr(0, cut), &scratch).ok())
        << "truncation at " << cut << " decoded";
  }
}

TEST(PatternsPayloadTest, RoundTripsAndRejectsTruncation) {
  Result<AnnotatedTable> answer = EvalHardwareWarnings();
  ASSERT_TRUE(answer.ok());
  ASSERT_GT(answer->patterns.size(), 0u);

  std::string payload = EncodePatternsPayload(answer->patterns);
  Result<PatternSet> decoded = DecodePatternsPayload(payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->SetEquals(answer->patterns));

  for (size_t cut = 0; cut < payload.size(); ++cut) {
    EXPECT_FALSE(DecodePatternsPayload(payload.substr(0, cut)).ok())
        << "truncation at " << cut << " decoded";
  }
}

}  // namespace
}  // namespace pcdb
