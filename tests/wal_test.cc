#include <gtest/gtest.h>

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "durability/checkpoint.h"
#include "durability/wal.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "workloads/maintenance_example.h"

namespace pcdb {
namespace {

/// A throwaway directory for WAL segments / checkpoints; removed (one
/// level deep — the WAL never nests) on destruction.
class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/pcdb_wal_XXXXXX";
    const char* made = mkdtemp(tmpl);
    EXPECT_NE(made, nullptr);
    path_ = made == nullptr ? "" : made;
  }
  ~TempDir() {
    if (path_.empty()) return;
    DIR* d = opendir(path_.c_str());
    if (d != nullptr) {
      while (dirent* entry = readdir(d)) {
        const std::string name = entry->d_name;
        if (name == "." || name == "..") continue;
        unlink((path_ + "/" + name).c_str());
      }
      closedir(d);
    }
    rmdir(path_.c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

WalRecord MakeRecord(WalRecordType type, const std::string& tenant,
                     uint64_t writer_id, uint64_t seq,
                     const std::string& payload) {
  WalRecord record;
  record.type = type;
  record.tenant = tenant;
  record.writer_id = writer_id;
  record.seq = seq;
  record.payload = payload;
  return record;
}

void WriteFileOrDie(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  ASSERT_EQ(std::fclose(f), 0);
}

std::string ReadFileOrDie(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::string out;
  if (f != nullptr) {
    char buf[1 << 16];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
    std::fclose(f);
  }
  return out;
}

/// The name WalWriter gives the segment whose first record is `lsn`.
std::string SegmentName(uint64_t lsn) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "wal-%020llu.log",
                static_cast<unsigned long long>(lsn));
  return buf;
}

// ---------------------------------------------------------------------------
// Record codec

TEST(WalCodecTest, RoundTripsEveryField) {
  WalRecord record =
      MakeRecord(WalRecordType::kPunctuate, "acme", 77, 12, "payload bytes");
  record.lsn = 42;
  std::string buf;
  AppendWalRecord(&buf, record);

  WalDecodeResult decoded = DecodeWalRecord(
      reinterpret_cast<const uint8_t*>(buf.data()), buf.size());
  ASSERT_EQ(decoded.outcome, WalDecodeOutcome::kRecord) << decoded.detail;
  EXPECT_EQ(decoded.consumed, buf.size());
  EXPECT_EQ(decoded.record.lsn, 42u);
  EXPECT_EQ(decoded.record.type, WalRecordType::kPunctuate);
  EXPECT_EQ(decoded.record.tenant, "acme");
  EXPECT_EQ(decoded.record.writer_id, 77u);
  EXPECT_EQ(decoded.record.seq, 12u);
  EXPECT_EQ(decoded.record.payload, "payload bytes");
}

TEST(WalCodecTest, EveryTruncationPointIsTorn) {
  WalRecord record =
      MakeRecord(WalRecordType::kIngest, "tenant", 1, 2, "some payload");
  record.lsn = 1;
  std::string buf;
  AppendWalRecord(&buf, record);

  // Covers mid-length-prefix (len < 4), mid-body, and mid-CRC cuts.
  for (size_t len = 0; len < buf.size(); ++len) {
    WalDecodeResult decoded =
        DecodeWalRecord(reinterpret_cast<const uint8_t*>(buf.data()), len);
    EXPECT_EQ(decoded.outcome, WalDecodeOutcome::kTorn)
        << "prefix of " << len << " bytes: " << decoded.detail;
  }
}

TEST(WalCodecTest, AnySingleCorruptByteIsNeverAValidRecord) {
  WalRecord record =
      MakeRecord(WalRecordType::kIngest, "tenant", 3, 4, "some payload");
  record.lsn = 9;
  std::string buf;
  AppendWalRecord(&buf, record);

  for (size_t i = 0; i < buf.size(); ++i) {
    std::string bent = buf;
    bent[i] = static_cast<char>(bent[i] ^ 0x5A);
    WalDecodeResult decoded = DecodeWalRecord(
        reinterpret_cast<const uint8_t*>(bent.data()), bent.size());
    // A bent length prefix may read as torn (body now "extends past"
    // the buffer); anything structurally complete must fail the CRC.
    EXPECT_NE(decoded.outcome, WalDecodeOutcome::kRecord)
        << "flip at byte " << i;
  }
}

// ---------------------------------------------------------------------------
// Replay and torn-tail goldens

std::string EncodeThreeRecords(std::vector<size_t>* boundaries) {
  std::string bytes;
  boundaries->push_back(0);
  for (uint64_t lsn = 1; lsn <= 3; ++lsn) {
    WalRecord record = MakeRecord(
        lsn == 2 ? WalRecordType::kPunctuate : WalRecordType::kIngest,
        "t" + std::to_string(lsn), lsn * 10, lsn,
        "payload-" + std::to_string(lsn));
    record.lsn = lsn;
    AppendWalRecord(&bytes, record);
    boundaries->push_back(bytes.size());
  }
  return bytes;
}

TEST(WalReplayTest, ReplaysExactlyThePrefixAtEveryTruncationPoint) {
  std::vector<size_t> boundaries;
  const std::string bytes = EncodeThreeRecords(&boundaries);
  TempDir dir;
  const std::string segment = dir.path() + "/" + SegmentName(1);

  for (size_t len = 0; len <= bytes.size(); ++len) {
    WriteFileOrDie(segment, bytes.substr(0, len));
    size_t whole_records = 0;
    while (whole_records + 1 < boundaries.size() &&
           boundaries[whole_records + 1] <= len) {
      ++whole_records;
    }
    const bool at_boundary = boundaries[whole_records] == len;

    std::vector<uint64_t> lsns;
    Result<WalReplayStats> stats =
        ReplayWal(dir.path(), 0, [&lsns](const WalRecord& record) {
          lsns.push_back(record.lsn);
          return Status::OK();
        });
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(stats->records_replayed, whole_records) << "len=" << len;
    EXPECT_EQ(stats->torn_tail, !at_boundary) << "len=" << len;
    ASSERT_EQ(lsns.size(), whole_records);
    for (size_t i = 0; i < lsns.size(); ++i) EXPECT_EQ(lsns[i], i + 1);
  }
}

TEST(WalReplayTest, StopsAtACorruptMiddleRecord) {
  std::vector<size_t> boundaries;
  std::string bytes = EncodeThreeRecords(&boundaries);
  // Flip a byte inside record 2's body: replay must keep record 1,
  // refuse record 2, and never guess its way to record 3.
  bytes[boundaries[1] + 10] = static_cast<char>(bytes[boundaries[1] + 10] ^ 1);
  TempDir dir;
  WriteFileOrDie(dir.path() + "/" + SegmentName(1), bytes);

  std::vector<uint64_t> lsns;
  Result<WalReplayStats> stats =
      ReplayWal(dir.path(), 0, [&lsns](const WalRecord& record) {
        lsns.push_back(record.lsn);
        return Status::OK();
      });
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->records_replayed, 1u);
  EXPECT_TRUE(stats->torn_tail);
  EXPECT_FALSE(stats->tail_detail.empty());
  ASSERT_EQ(lsns.size(), 1u);
  EXPECT_EQ(lsns[0], 1u);
}

TEST(WalReplayTest, SkipsRecordsTheCheckpointAlreadyCovers) {
  std::vector<size_t> boundaries;
  const std::string bytes = EncodeThreeRecords(&boundaries);
  TempDir dir;
  WriteFileOrDie(dir.path() + "/" + SegmentName(1), bytes);

  std::vector<uint64_t> lsns;
  Result<WalReplayStats> stats =
      ReplayWal(dir.path(), /*after_lsn=*/2, [&lsns](const WalRecord& record) {
        lsns.push_back(record.lsn);
        return Status::OK();
      });
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->records_replayed, 1u);
  EXPECT_EQ(stats->records_skipped, 2u);
  EXPECT_FALSE(stats->torn_tail);
  ASSERT_EQ(lsns.size(), 1u);
  EXPECT_EQ(lsns[0], 3u);
}

TEST(WalReplayTest, MissingDirectoryIsAnEmptyLog) {
  Result<WalReplayStats> stats = ReplayWal(
      "/tmp/pcdb_wal_never_created_by_anything", 0,
      [](const WalRecord&) { return Status::OK(); });
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->records_replayed, 0u);
  EXPECT_FALSE(stats->torn_tail);
}

TEST(WalReplayTest, ApplyErrorAbortsReplay) {
  std::vector<size_t> boundaries;
  const std::string bytes = EncodeThreeRecords(&boundaries);
  TempDir dir;
  WriteFileOrDie(dir.path() + "/" + SegmentName(1), bytes);

  Result<WalReplayStats> stats =
      ReplayWal(dir.path(), 0, [](const WalRecord& record) {
        return record.lsn == 2 ? Status::Internal("apply exploded")
                               : Status::OK();
      });
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kInternal);
}

// ---------------------------------------------------------------------------
// WalWriter: LSN assignment, torn-tail repair, truncation

TEST(WalWriterTest, AssignsConsecutiveLsnsAndSurvivesReopen) {
  TempDir dir;
  {
    Result<std::unique_ptr<WalWriter>> writer = WalWriter::Open(dir.path());
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    std::vector<WalRecord> batch = {
        MakeRecord(WalRecordType::kIngest, "t", 1, 1, "a"),
        MakeRecord(WalRecordType::kIngest, "t", 1, 2, "b")};
    ASSERT_TRUE((*writer)->AppendBatch(&batch).ok());
    EXPECT_EQ(batch[0].lsn, 1u);
    EXPECT_EQ(batch[1].lsn, 2u);
    EXPECT_EQ((*writer)->next_lsn(), 3u);
  }

  // Crash simulation: a partial record (a plausible length prefix and a
  // few body bytes) lands after the durable tail.
  const std::string segment = dir.path() + "/" + SegmentName(1);
  const std::string before = ReadFileOrDie(segment);
  {
    std::string torn = before;
    torn.append("\x40\x00\x00\x00junk", 8);
    WriteFileOrDie(segment, torn);
  }

  {
    Result<std::unique_ptr<WalWriter>> writer = WalWriter::Open(dir.path());
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    // The torn tail was truncated away and LSNs continue where they
    // left off.
    EXPECT_EQ((*writer)->next_lsn(), 3u);
    EXPECT_EQ(ReadFileOrDie(segment).size(), before.size());
    std::vector<WalRecord> batch = {
        MakeRecord(WalRecordType::kIngest, "t", 1, 3, "c")};
    ASSERT_TRUE((*writer)->AppendBatch(&batch).ok());
    EXPECT_EQ(batch[0].lsn, 3u);
  }

  std::vector<uint64_t> lsns;
  Result<WalReplayStats> stats =
      ReplayWal(dir.path(), 0, [&lsns](const WalRecord& record) {
        lsns.push_back(record.lsn);
        return Status::OK();
      });
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->records_replayed, 3u);
  EXPECT_FALSE(stats->torn_tail);
}

TEST(WalWriterTest, MinNextLsnFloorsAssignment) {
  TempDir dir;
  WalWriterOptions options;
  options.min_next_lsn = 41;
  Result<std::unique_ptr<WalWriter>> writer =
      WalWriter::Open(dir.path(), options);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  EXPECT_EQ((*writer)->next_lsn(), 41u);
  std::vector<WalRecord> batch = {
      MakeRecord(WalRecordType::kIngest, "t", 1, 1, "x")};
  ASSERT_TRUE((*writer)->AppendBatch(&batch).ok());
  EXPECT_EQ(batch[0].lsn, 41u);
}

TEST(WalWriterTest, TruncateThroughRotatesAndRemovesCoveredSegments) {
  TempDir dir;
  Result<std::unique_ptr<WalWriter>> writer = WalWriter::Open(dir.path());
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  std::vector<WalRecord> batch = {
      MakeRecord(WalRecordType::kIngest, "t", 1, 1, "a"),
      MakeRecord(WalRecordType::kIngest, "t", 1, 2, "b")};
  ASSERT_TRUE((*writer)->AppendBatch(&batch).ok());

  Result<uint64_t> removed = (*writer)->TruncateThrough(2);
  ASSERT_TRUE(removed.ok()) << removed.status().ToString();
  EXPECT_EQ(*removed, 1u);

  Result<std::vector<std::string>> segments = ListWalSegments(dir.path());
  ASSERT_TRUE(segments.ok());
  ASSERT_EQ(segments->size(), 1u);
  EXPECT_NE(segments->front().find(SegmentName(3)), std::string::npos);

  // LSNs keep counting across the rotation.
  std::vector<WalRecord> more = {
      MakeRecord(WalRecordType::kIngest, "t", 1, 3, "c")};
  ASSERT_TRUE((*writer)->AppendBatch(&more).ok());
  EXPECT_EQ(more[0].lsn, 3u);

  std::vector<uint64_t> lsns;
  Result<WalReplayStats> stats =
      ReplayWal(dir.path(), 2, [&lsns](const WalRecord& record) {
        lsns.push_back(record.lsn);
        return Status::OK();
      });
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(lsns.size(), 1u);
  EXPECT_EQ(lsns[0], 3u);
}

// ---------------------------------------------------------------------------
// Checkpoint round trip

TEST(CheckpointTest, RoundTripsDatabasePatternsEpochsAndWriters) {
  AnnotatedDatabase adb = MakeMaintenanceDatabase();
  ASSERT_TRUE(
      adb.AddRow("Warnings", Tuple{Value(std::string("Fri")),
                                   Value(static_cast<int64_t>(3)),
                                   Value(std::string("w77")),
                                   Value(std::string("extra row"))})
          .ok());
  ASSERT_TRUE(adb.AddPattern("Warnings", {"*", "3", "*", "*"}).ok());

  CheckpointWriters writers;
  writers[""][7] = CheckpointWriterState{3, "opaque ack bytes"};
  writers["acme"][9] = CheckpointWriterState{12, ""};

  TempDir dir;
  const std::string path = dir.path() + "/CHECKPOINT";
  ASSERT_TRUE(SaveCheckpoint(path, adb, /*last_lsn=*/17, writers).ok());

  Result<std::optional<CheckpointState>> loaded = LoadCheckpoint(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_TRUE(loaded->has_value());
  const CheckpointState& state = **loaded;
  EXPECT_EQ(state.last_lsn, 17u);

  // Dedup state survives byte-for-byte.
  ASSERT_EQ(state.writers.size(), 2u);
  EXPECT_EQ(state.writers.at("").at(7).last_seq, 3u);
  EXPECT_EQ(state.writers.at("").at(7).ack, "opaque ack bytes");
  EXPECT_EQ(state.writers.at("acme").at(9).last_seq, 12u);

  // Tables, rows, patterns, and both epoch families survive.
  EXPECT_EQ(state.db.database().TableNames(), adb.database().TableNames());
  for (const std::string& name : adb.database().TableNames()) {
    Result<const Table*> original = adb.database().GetTable(name);
    Result<const Table*> recovered = state.db.database().GetTable(name);
    ASSERT_TRUE(original.ok() && recovered.ok());
    EXPECT_TRUE((*recovered)->BagEquals(**original)) << name;
    EXPECT_EQ(state.db.database().TableEpoch(name),
              adb.database().TableEpoch(name))
        << name;
    EXPECT_EQ(state.db.PatternSigEpochs(name), adb.PatternSigEpochs(name))
        << name;
    EXPECT_EQ(state.db.patterns(name).size(), adb.patterns(name).size())
        << name;
  }
}

TEST(CheckpointTest, AbsentFileIsNullopt) {
  TempDir dir;
  Result<std::optional<CheckpointState>> loaded =
      LoadCheckpoint(dir.path() + "/CHECKPOINT");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_FALSE(loaded->has_value());
}

TEST(CheckpointTest, CorruptOrTruncatedFileFailsLoudly) {
  AnnotatedDatabase adb = MakeMaintenanceDatabase();
  TempDir dir;
  const std::string path = dir.path() + "/CHECKPOINT";
  ASSERT_TRUE(SaveCheckpoint(path, adb, 5, {}).ok());
  const std::string good = ReadFileOrDie(path);

  std::string bent = good;
  bent[bent.size() / 2] = static_cast<char>(bent[bent.size() / 2] ^ 0x5A);
  WriteFileOrDie(path, bent);
  EXPECT_FALSE(LoadCheckpoint(path).ok());

  WriteFileOrDie(path, good.substr(0, good.size() / 2));
  EXPECT_FALSE(LoadCheckpoint(path).ok());

  // The intact bytes still load — the failures above were the file, not
  // the codec.
  WriteFileOrDie(path, good);
  Result<std::optional<CheckpointState>> loaded = LoadCheckpoint(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->has_value());
}

// ---------------------------------------------------------------------------
// End-to-end: server recovery, drain, idempotence, differential replay

class DurableServerTest : public ::testing::Test {
 protected:
  Client ConnectOrDie(const Server& server, ClientOptions options = {}) {
    Result<Client> client =
        Client::Connect("127.0.0.1", server.port(), options);
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(*client);
  }

  static Tuple WarningsRow(const std::string& day, int64_t week,
                           const std::string& id, const std::string& msg) {
    return Tuple{Value(day), Value(week), Value(id), Value(msg)};
  }
};

TEST_F(DurableServerTest, ReplaysAckedWritesAfterUncleanStop) {
  TempDir dir;
  ServerOptions options;
  options.wal_dir = dir.path();

  const std::string sql = "SELECT * FROM Warnings WHERE week=9";
  std::string pre_crash;
  {
    Server server(MakeMaintenanceDatabase(), options);
    ASSERT_TRUE(server.Start().ok());
    Client client = ConnectOrDie(server);
    Result<IngestResult> ack = client.Ingest(
        "Warnings", {WarningsRow("Fri", 9, "w9", "recover me")});
    ASSERT_TRUE(ack.ok()) << ack.status().ToString();
    EXPECT_EQ(ack->rows_ingested, 1u);
    EXPECT_FALSE(ack->duplicate);
    Result<IngestResult> punct =
        client.Punctuate("Warnings", {{"*", "9", "*", "*"}});
    ASSERT_TRUE(punct.ok()) << punct.status().ToString();
    Result<ClientAnswer> answer = client.Query(sql);
    ASSERT_TRUE(answer.ok()) << answer.status().ToString();
    pre_crash = answer->canonical_bytes;
    // Stop() deliberately takes no checkpoint: recovery must come from
    // the log alone, like a kill -9 would force.
    server.Stop();
  }

  Server server(MakeMaintenanceDatabase(), options);
  ASSERT_TRUE(server.Start().ok());
  Client client = ConnectOrDie(server);
  Result<std::string> stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats->find("wal_recovered_records"), std::string::npos);
  Result<ClientAnswer> answer = client.Query(sql);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_EQ(answer->canonical_bytes, pre_crash);
  server.Stop();
}

TEST_F(DurableServerTest, DrainCheckpointsAndRecoveryPrefersIt) {
  TempDir dir;
  ServerOptions options;
  options.wal_dir = dir.path();

  {
    Server server(MakeMaintenanceDatabase(), options);
    ASSERT_TRUE(server.Start().ok());
    Client client = ConnectOrDie(server);
    Result<IngestResult> ack = client.Ingest(
        "Warnings", {WarningsRow("Sat", 8, "w8", "drained row")});
    ASSERT_TRUE(ack.ok()) << ack.status().ToString();
    server.Drain();
  }

  // Drain left a checkpoint covering everything and truncated the log
  // down to one fresh, empty segment.
  Result<std::optional<CheckpointState>> ckpt =
      LoadCheckpoint(dir.path() + "/CHECKPOINT");
  ASSERT_TRUE(ckpt.ok()) << ckpt.status().ToString();
  ASSERT_TRUE(ckpt->has_value());
  EXPECT_GE((*ckpt)->last_lsn, 1u);
  Result<WalReplayStats> tail = ReplayWal(
      dir.path(), (*ckpt)->last_lsn, [](const WalRecord&) {
        return Status::Internal("nothing should remain to replay");
      });
  ASSERT_TRUE(tail.ok()) << tail.status().ToString();
  EXPECT_EQ(tail->records_replayed, 0u);

  Server server(MakeMaintenanceDatabase(), options);
  ASSERT_TRUE(server.Start().ok());
  Client client = ConnectOrDie(server);
  Result<ClientAnswer> answer =
      client.Query("SELECT * FROM Warnings WHERE week=8");
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_EQ(answer->table.data.num_rows(), 1u);
  server.Stop();
}

TEST_F(DurableServerTest, DuplicateSeqAppliesExactlyOnceAcrossRestart) {
  TempDir dir;
  ServerOptions options;
  options.wal_dir = dir.path();
  ClientOptions pinned;
  pinned.writer_id = 424242;
  const std::string sql = "SELECT * FROM Warnings WHERE week=7";

  {
    Server server(MakeMaintenanceDatabase(), options);
    ASSERT_TRUE(server.Start().ok());
    {
      Client first = ConnectOrDie(server, pinned);
      Result<IngestResult> ack = first.Ingest(
          "Warnings", {WarningsRow("Mon", 7, "w7", "only once")});
      ASSERT_TRUE(ack.ok()) << ack.status().ToString();
      EXPECT_EQ(ack->seq, 1u);
      EXPECT_FALSE(ack->duplicate);
      EXPECT_EQ(ack->rows_ingested, 1u);
    }
    {
      // A "retry after reconnect": same writer id, same seq (a fresh
      // Client restarts its sequence at 1). The server must re-serve
      // the original ack without applying.
      Client second = ConnectOrDie(server, pinned);
      Result<IngestResult> ack = second.Ingest(
          "Warnings", {WarningsRow("Mon", 7, "w7", "only once")});
      ASSERT_TRUE(ack.ok()) << ack.status().ToString();
      EXPECT_EQ(ack->seq, 1u);
      EXPECT_TRUE(ack->duplicate);
      EXPECT_EQ(ack->rows_ingested, 1u);  // the original counters
      Result<ClientAnswer> answer = second.Query(sql);
      ASSERT_TRUE(answer.ok());
      EXPECT_EQ(answer->table.data.num_rows(), 1u);
    }
    server.Stop();
  }

  // The dedup map rides the WAL: after an unclean restart the same
  // (writer, seq) pair is still recognized.
  Server server(MakeMaintenanceDatabase(), options);
  ASSERT_TRUE(server.Start().ok());
  Client third = ConnectOrDie(server, pinned);
  Result<IngestResult> ack =
      third.Ingest("Warnings", {WarningsRow("Mon", 7, "w7", "only once")});
  ASSERT_TRUE(ack.ok()) << ack.status().ToString();
  EXPECT_TRUE(ack->duplicate);
  Result<ClientAnswer> answer = third.Query(sql);
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer->table.data.num_rows(), 1u);
  server.Stop();
}

TEST_F(DurableServerTest, RandomizedScriptRecoversToReferenceAnswers) {
  TempDir dir;
  ServerOptions durable_options;
  durable_options.wal_dir = dir.path();

  // The reference runs the same script without a WAL and never stops;
  // the durable server is stopped uncleanly and must recover to
  // byte-identical answers.
  Server reference(MakeMaintenanceDatabase(), {});
  ASSERT_TRUE(reference.Start().ok());
  Client ref_client = ConnectOrDie(reference);

  std::mt19937 rng(20260808);
  static const char* kDays[] = {"Mon", "Tue", "Wed", "Thu", "Fri"};
  {
    Server durable(MakeMaintenanceDatabase(), durable_options);
    ASSERT_TRUE(durable.Start().ok());
    Client client = ConnectOrDie(durable);
    for (int i = 0; i < 40; ++i) {
      const int64_t week = static_cast<int64_t>(rng() % 5) + 1;
      if (rng() % 4 == 0) {
        std::vector<std::string> fields = {"*", std::to_string(week), "*",
                                           "*"};
        Result<IngestResult> a =
            client.Punctuate("Warnings", {fields});
        ASSERT_TRUE(a.ok()) << a.status().ToString();
        Result<IngestResult> b = ref_client.Punctuate("Warnings", {fields});
        ASSERT_TRUE(b.ok()) << b.status().ToString();
      } else {
        Tuple row = WarningsRow(kDays[rng() % 5], week,
                                "r" + std::to_string(i),
                                "msg " + std::to_string(rng() % 1000));
        Result<IngestResult> a = client.Ingest("Warnings", {row});
        ASSERT_TRUE(a.ok()) << a.status().ToString();
        Result<IngestResult> b = ref_client.Ingest("Warnings", {row});
        ASSERT_TRUE(b.ok()) << b.status().ToString();
        EXPECT_EQ(a->rows_ingested, b->rows_ingested) << "op " << i;
        EXPECT_EQ(a->violations, b->violations) << "op " << i;
      }
    }
    durable.Stop();
  }

  Server recovered(MakeMaintenanceDatabase(), durable_options);
  ASSERT_TRUE(recovered.Start().ok());
  Client rec_client = ConnectOrDie(recovered);
  const char* kProbes[] = {
      "SELECT * FROM Warnings",
      "SELECT * FROM Warnings WHERE week=3",
      "SELECT day, message FROM Warnings WHERE week=1",
  };
  for (const char* sql : kProbes) {
    Result<ClientAnswer> want = ref_client.Query(sql);
    ASSERT_TRUE(want.ok()) << sql << ": " << want.status().ToString();
    Result<ClientAnswer> got = rec_client.Query(sql);
    ASSERT_TRUE(got.ok()) << sql << ": " << got.status().ToString();
    EXPECT_EQ(got->canonical_bytes, want->canonical_bytes) << sql;
  }
  recovered.Stop();
  reference.Stop();
}

// ---------------------------------------------------------------------------
// Client resilience: transparent reconnect for queries and idempotent
// resend for writes, across a server restart on the same port.

TEST_F(DurableServerTest, ClientSurvivesServerRestartOnSamePort) {
  TempDir dir;
  ServerOptions options;
  options.wal_dir = dir.path();

  auto first = std::make_unique<Server>(MakeMaintenanceDatabase(), options);
  ASSERT_TRUE(first->Start().ok());
  const uint16_t port = first->port();
  Client client = ConnectOrDie(*first);
  Result<IngestResult> seeded =
      client.Ingest("Warnings", {WarningsRow("Tue", 6, "w6", "before")});
  ASSERT_TRUE(seeded.ok()) << seeded.status().ToString();
  first->Stop();
  first.reset();

  ServerOptions same_port = options;
  same_port.port = port;
  Server second(MakeMaintenanceDatabase(), same_port);
  ASSERT_TRUE(second.Start().ok());

  // The client's connection is dead; Query must reconnect once and
  // resend transparently, and the recovered row must be there.
  Result<ClientAnswer> answer =
      client.Query("SELECT * FROM Warnings WHERE week=6");
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_EQ(answer->table.data.num_rows(), 1u);

  // Make the connection stale again for the write path: restart once
  // more and let Ingest retry through its backoff loop.
  second.Stop();
  Server third(MakeMaintenanceDatabase(), same_port);
  Status third_started = third.Start();
  ASSERT_TRUE(third_started.ok()) << third_started.ToString();
  Result<IngestResult> ack =
      client.Ingest("Warnings", {WarningsRow("Tue", 6, "w6b", "after")});
  ASSERT_TRUE(ack.ok()) << ack.status().ToString();
  EXPECT_EQ(ack->rows_ingested, 1u);
  EXPECT_FALSE(ack->duplicate);
  third.Stop();
}

}  // namespace
}  // namespace pcdb
