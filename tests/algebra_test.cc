#include <gtest/gtest.h>

#include "common/random.h"
#include "pattern/algebra.h"
#include "pattern/minimize.h"

namespace pcdb {
namespace {

Pattern P(const std::vector<std::string>& fields) {
  std::vector<Pattern::Cell> cells;
  for (const auto& f : fields) {
    if (f == "*") {
      cells.push_back(Pattern::Wildcard());
    } else {
      cells.push_back(Value(f));
    }
  }
  return Pattern(std::move(cells));
}

Pattern PW(std::vector<Pattern::Cell> cells) {
  return Pattern(std::move(cells));
}

TEST(SelectConstTest, PaperExample3) {
  // Warnings patterns (∗,1,∗,∗), (Mon,2,∗,∗), (Wed,2,∗,∗) under
  // σ_{week=2}: the first is irrelevant, the others survive generalized
  // (Table 2).
  PatternSet input;
  input.Add(PW({Pattern::Wildcard(), Value(1), Pattern::Wildcard(),
                Pattern::Wildcard()}));
  input.Add(PW({Value("Mon"), Value(2), Pattern::Wildcard(),
                Pattern::Wildcard()}));
  input.Add(PW({Value("Wed"), Value(2), Pattern::Wildcard(),
                Pattern::Wildcard()}));
  PatternSet out = PatternSelectConst(input, 1, Value(2));
  PatternSet expected;
  expected.Add(PW({Value("Mon"), Pattern::Wildcard(), Pattern::Wildcard(),
                   Pattern::Wildcard()}));
  expected.Add(PW({Value("Wed"), Pattern::Wildcard(), Pattern::Wildcard(),
                   Pattern::Wildcard()}));
  EXPECT_TRUE(out.SetEquals(expected)) << out.ToString();
}

TEST(SelectConstTest, WildcardSurvivesUnchanged) {
  PatternSet input;
  input.Add(P({"*", "*"}));
  PatternSet out = PatternSelectConst(input, 0, Value("hardware"));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], P({"*", "*"}));
}

TEST(SelectConstTest, IrrelevantConstantDropped) {
  PatternSet input;
  input.Add(P({"software", "*"}));
  EXPECT_TRUE(PatternSelectConst(input, 0, Value("hardware")).empty());
}

TEST(ProjectOutTest, PaperExample4) {
  // Projecting out `day`: only (∗,1,∗,∗) survives, as (1,∗,∗); the
  // Monday/Wednesday patterns die (Tuesday records could be missing).
  PatternSet input;
  input.Add(PW({Pattern::Wildcard(), Value(1), Pattern::Wildcard(),
                Pattern::Wildcard()}));
  input.Add(PW({Value("Mon"), Value(2), Pattern::Wildcard(),
                Pattern::Wildcard()}));
  input.Add(PW({Value("Wed"), Value(2), Pattern::Wildcard(),
                Pattern::Wildcard()}));
  PatternSet out = PatternProjectOut(input, 0);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0],
            PW({Value(1), Pattern::Wildcard(), Pattern::Wildcard()}));
}

TEST(SelectAttrEqTest, PaperExamples5And6) {
  // Patterns (d1,d1,e1), (d2,∗,e2), (∗,∗,e3) under σ_{A=B} yield exactly
  // (d1,∗,e1), (∗,d1,e1), (d2,∗,e2), (∗,d2,e2), (∗,∗,e3).
  PatternSet input;
  input.Add(P({"d1", "d1", "e1"}));
  input.Add(P({"d2", "*", "e2"}));
  input.Add(P({"*", "*", "e3"}));
  PatternSet out = PatternSelectAttrEq(input, 0, 1);
  PatternSet expected;
  expected.Add(P({"d1", "*", "e1"}));
  expected.Add(P({"*", "d1", "e1"}));
  expected.Add(P({"d2", "*", "e2"}));
  expected.Add(P({"*", "d2", "e2"}));
  expected.Add(P({"*", "*", "e3"}));
  EXPECT_TRUE(out.SetEquals(expected)) << out.ToString();
}

TEST(SelectAttrEqTest, SelfComparisonIsIdentity) {
  // σ_{A=A} keeps every row, so the metadata passes through unchanged;
  // the A≠B generalization rules would wrongly wildcard constants
  // (found by the expression fuzzer).
  PatternSet input;
  input.Add(P({"d", "*"}));
  PatternSet out = PatternSelectAttrEq(input, 0, 0);
  EXPECT_TRUE(out.SetEquals(input)) << out.ToString();
}

TEST(SelectAttrEqTest, ConflictingConstantsDropped) {
  PatternSet input;
  input.Add(P({"x", "y", "*"}));
  EXPECT_TRUE(PatternSelectAttrEq(input, 0, 1).empty());
}

TEST(SelectAttrEqTest, SymmetricTwinsSurviveProjections) {
  // The reason both (d,∗) and (∗,d) are materialized: projecting out A
  // keeps the latter's information, projecting out B keeps the former's.
  PatternSet input;
  input.Add(P({"d", "*", "e"}));
  PatternSet selected = PatternSelectAttrEq(input, 0, 1);
  PatternSet no_a = PatternProjectOut(selected, 0);
  PatternSet no_b = PatternProjectOut(selected, 1);
  EXPECT_TRUE(no_a.Contains(P({"d", "e"})));
  EXPECT_TRUE(no_b.Contains(P({"d", "e"})));
}

TEST(RearrangeTest, PermutesAndDuplicatesCells) {
  PatternSet input;
  input.Add(P({"a", "*"}));
  PatternSet out = PatternRearrange(input, {1, 0, 0});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], P({"*", "a", "a"}));
}

TEST(RearrangeTest, DroppedConstantPositionsKillPatterns) {
  // Omitting a position is a projection: patterns with a constant there
  // assert completeness of a slice the output cannot distinguish, so
  // they must not survive (fuzzer-found soundness bug).
  PatternSet input;
  input.Add(P({"a", "b"}));
  input.Add(P({"c", "*"}));
  input.Add(P({"*", "d"}));
  PatternSet out = PatternRearrange(input, {1});
  PatternSet expected;
  expected.Add(P({"d"}));  // only (∗,d) has '*' at the dropped position
  EXPECT_TRUE(out.SetEquals(expected)) << out.ToString();
}

TEST(CrossTest, AllConcatenations) {
  PatternSet left;
  left.Add(P({"a"}));
  left.Add(P({"*"}));
  PatternSet right;
  right.Add(P({"b", "*"}));
  PatternSet out = PatternCross(left, right);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_TRUE(out.Contains(P({"a", "b", "*"})));
  EXPECT_TRUE(out.Contains(P({"*", "b", "*"})));
}

TEST(JoinTest, PaperExample7Table6) {
  // Maintenance patterns (∗,A,∗),(∗,B,∗),(∗,C,∗) joined on
  // responsible=name with σ_spec=hw(Teams) patterns (∗,∗) — Table 6
  // shows the join plus symmetric versions.
  PatternSet maint;
  maint.Add(P({"*", "A", "*"}));
  maint.Add(P({"*", "B", "*"}));
  maint.Add(P({"*", "C", "*"}));
  PatternSet teams;
  teams.Add(P({"*", "*"}));
  PatternSet out = PatternJoin(maint, 1, teams, 0);
  PatternSet expected;
  for (const char* team : {"A", "B", "C"}) {
    expected.Add(P({"*", team, "*", "*", "*"}));
    expected.Add(P({"*", "*", "*", team, "*"}));
  }
  EXPECT_TRUE(out.SetEquals(expected)) << out.ToString();
}

TEST(JoinTest, ConstantsMustMatch) {
  PatternSet left;
  left.Add(P({"x", "a"}));
  PatternSet right;
  right.Add(P({"b", "*"}));
  // Join on left[1] = right[0]: constants a vs b never join.
  EXPECT_TRUE(PatternJoin(left, 1, right, 0).empty());
  PatternSet right2;
  right2.Add(P({"a", "*"}));
  PatternSet out = PatternJoin(left, 1, right2, 0);
  PatternSet expected;
  expected.Add(P({"x", "*", "a", "*"}));
  expected.Add(P({"x", "a", "*", "*"}));
  EXPECT_TRUE(out.SetEquals(expected)) << out.ToString();
}

TEST(JoinTest, StrategiesAgree) {
  Rng rng(321);
  for (int round = 0; round < 50; ++round) {
    PatternSet left;
    PatternSet right;
    auto random_pattern = [&](size_t arity) {
      std::vector<Pattern::Cell> cells;
      for (size_t i = 0; i < arity; ++i) {
        if (rng.Bernoulli(0.5)) {
          cells.push_back(Pattern::Wildcard());
        } else {
          cells.push_back(
              Value("v" + std::to_string(rng.UniformInt(0, 3))));
        }
      }
      return Pattern(std::move(cells));
    };
    for (int i = 0; i < 8; ++i) left.Add(random_pattern(3));
    for (int i = 0; i < 8; ++i) right.Add(random_pattern(2));
    PatternSet naive = PatternJoin(left, 1, right, 0,
                                   PatternJoinStrategy::kCrossProductSelect);
    PatternSet pushed = PatternJoin(
        left, 1, right, 0, PatternJoinStrategy::kPartitionedHashJoin);
    EXPECT_TRUE(naive.SetEquals(pushed))
        << "round " << round << "\nnaive:\n"
        << naive.ToString() << "pushed:\n"
        << pushed.ToString();
  }
}

TEST(JoinTest, EmptyInputsYieldEmptyOutput) {
  PatternSet nonempty;
  nonempty.Add(P({"*"}));
  EXPECT_TRUE(PatternJoin(PatternSet(), 0, nonempty, 0).empty());
  EXPECT_TRUE(PatternJoin(nonempty, 0, PatternSet(), 0).empty());
}

TEST(UnionTest, PairwiseUnification) {
  // A pattern holds over R1 ⊎ R2 iff it holds over both sides: the
  // maximal such patterns are the unifiers of unifiable pairs.
  PatternSet left;
  left.Add(P({"a", "*"}));
  left.Add(P({"*", "b"}));
  PatternSet right;
  right.Add(P({"a", "c"}));
  right.Add(P({"*", "*"}));
  PatternSet out = PatternUnion(left, right);
  PatternSet expected;
  expected.Add(P({"a", "c"}));  // (a,∗) ⊓ (a,c) and (∗,b)⊓(a,c) fails
  expected.Add(P({"a", "*"}));  // (a,∗) ⊓ (∗,∗)
  expected.Add(P({"*", "b"}));  // (∗,b) ⊓ (∗,∗)
  EXPECT_TRUE(out.SetEquals(expected)) << out.ToString();
}

TEST(UnionTest, IncompatibleSidesYieldNothing) {
  PatternSet left;
  left.Add(P({"a"}));
  PatternSet right;
  right.Add(P({"b"}));
  EXPECT_TRUE(PatternUnion(left, right).empty());
  EXPECT_TRUE(PatternUnion(left, PatternSet()).empty());
}

TEST(UnionTest, FullCompletenessOnBothSidesSurvives) {
  PatternSet both;
  both.Add(P({"*", "*"}));
  PatternSet out = PatternUnion(both, both);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].IsAllWildcards());
}

TEST(LimitTest, PassThroughOnlyUnderFullCompleteness) {
  PatternSet partial;
  partial.Add(P({"a", "*"}));
  EXPECT_TRUE(PatternLimit(partial).empty());
  partial.Add(P({"*", "*"}));
  EXPECT_EQ(PatternLimit(partial).size(), 2u);
}

TEST(AggregateTest, AppendixBCityCount) {
  // City(name, country, state, county) patterns from Table 4 under
  // SELECT country, COUNT(*) GROUP BY country: patterns constraining
  // only `country` survive; state/county-constrained ones do not.
  PatternSet input;
  input.Add(P({"*", "Germany", "*", "*"}));
  input.Add(P({"*", "Ukraine", "*", "*"}));
  input.Add(P({"*", "Bulgaria", "*", "*"}));
  input.Add(P({"*", "USA", "Virginia", "*"}));  // state-restricted
  PatternSet out = PatternAggregate(input, {1}, 1);
  PatternSet expected;
  expected.Add(P({"Germany", "*"}));
  expected.Add(P({"Ukraine", "*"}));
  expected.Add(P({"Bulgaria", "*"}));
  EXPECT_TRUE(out.SetEquals(expected)) << out.ToString();
}

TEST(AggregateTest, GroupByMultipleAttributesAndAggs) {
  PatternSet input;
  input.Add(P({"a", "*", "b", "*"}));
  input.Add(P({"a", "c", "b", "*"}));  // constrains non-grouped attr 1
  PatternSet out = PatternAggregate(input, {2, 0}, 2);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], P({"b", "a", "*", "*"}));
}

TEST(AggregateTest, NoGroupByNeedsFullyGeneralPattern) {
  PatternSet input;
  input.Add(P({"a", "*"}));
  EXPECT_TRUE(PatternAggregate(input, {}, 1).empty());
  input.Add(P({"*", "*"}));
  PatternSet out = PatternAggregate(input, {}, 1);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], P({"*"}));
}

TEST(MinimalityTest, MinimizationPreservesOperatorOutputCoverage) {
  // Operators can generalize constant-bearing patterns into ones that
  // subsume formerly incomparable patterns (e.g. σ_{A=v0} maps (v0,x,∗)
  // to (∗,x,∗), which subsumes an input-sibling (∗,x,y)), so outputs may
  // need re-minimization. Minimizing must not lose coverage.
  Rng rng(777);
  for (int round = 0; round < 40; ++round) {
    PatternSet raw;
    for (int i = 0; i < 12; ++i) {
      std::vector<Pattern::Cell> cells;
      for (int j = 0; j < 3; ++j) {
        if (rng.Bernoulli(0.4)) {
          cells.push_back(Pattern::Wildcard());
        } else {
          cells.push_back(
              Value("v" + std::to_string(rng.UniformInt(0, 2))));
        }
      }
      raw.Add(Pattern(std::move(cells)));
    }
    PatternSet input = Minimize(raw);
    for (const PatternSet& out :
         {PatternSelectConst(input, 0, Value("v0")),
          PatternProjectOut(input, 1), PatternSelectAttrEq(input, 0, 1)}) {
      PatternSet minimized = Minimize(out);
      EXPECT_TRUE(IsMinimal(minimized)) << "round " << round;
      for (const Pattern& p : out) {
        EXPECT_TRUE(minimized.AnySubsumes(p)) << "round " << round;
      }
      for (const Pattern& p : minimized) {
        EXPECT_TRUE(out.Contains(p)) << "round " << round;
      }
    }
  }
}

}  // namespace
}  // namespace pcdb
