#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "pattern/hash_index.h"
#include "pattern/linear_index.h"
#include "pattern/pattern_index.h"

namespace pcdb {
namespace {

Pattern P(const std::vector<std::string>& fields) {
  std::vector<Pattern::Cell> cells;
  for (const auto& f : fields) {
    if (f == "*") {
      cells.push_back(Pattern::Wildcard());
    } else {
      cells.push_back(Value(f));
    }
  }
  return Pattern(std::move(cells));
}

/// Random pattern over `arity` positions with `values` distinct constants
/// per position; each cell is a wildcard with probability `wild_prob`.
Pattern RandomPattern(Rng* rng, size_t arity, int values, double wild_prob) {
  std::vector<Pattern::Cell> cells;
  cells.reserve(arity);
  for (size_t i = 0; i < arity; ++i) {
    if (rng->Bernoulli(wild_prob)) {
      cells.push_back(Pattern::Wildcard());
    } else {
      cells.push_back(Value("v" + std::to_string(rng->UniformInt(0, values))));
    }
  }
  return Pattern(std::move(cells));
}

class PatternIndexTest : public ::testing::TestWithParam<PatternIndexKind> {
 protected:
  std::unique_ptr<PatternIndex> Make(size_t arity) {
    return MakePatternIndex(GetParam(), arity);
  }
};

TEST_P(PatternIndexTest, InsertAndSize) {
  auto index = Make(2);
  EXPECT_EQ(index->size(), 0u);
  index->Insert(P({"a", "*"}));
  index->Insert(P({"*", "b"}));
  EXPECT_EQ(index->size(), 2u);
}

TEST_P(PatternIndexTest, InsertIsSetSemantics) {
  auto index = Make(2);
  index->Insert(P({"a", "*"}));
  index->Insert(P({"a", "*"}));
  EXPECT_EQ(index->size(), 1u);
}

TEST_P(PatternIndexTest, RemoveExistingAndMissing) {
  auto index = Make(2);
  index->Insert(P({"a", "*"}));
  EXPECT_TRUE(index->Remove(P({"a", "*"})));
  EXPECT_EQ(index->size(), 0u);
  EXPECT_FALSE(index->Remove(P({"a", "*"})));
  EXPECT_FALSE(index->HasSubsumer(P({"a", "b"}), false));
}

TEST_P(PatternIndexTest, HasSubsumerNonStrict) {
  auto index = Make(3);
  index->Insert(P({"a", "*", "*"}));
  EXPECT_TRUE(index->HasSubsumer(P({"a", "b", "*"}), false));
  EXPECT_TRUE(index->HasSubsumer(P({"a", "*", "*"}), false));  // itself
  EXPECT_FALSE(index->HasSubsumer(P({"b", "*", "*"}), false));
  EXPECT_FALSE(index->HasSubsumer(P({"*", "*", "*"}), false));
}

TEST_P(PatternIndexTest, HasSubsumerStrictExcludesSelf) {
  auto index = Make(2);
  index->Insert(P({"a", "*"}));
  EXPECT_FALSE(index->HasSubsumer(P({"a", "*"}), true));
  index->Insert(P({"*", "*"}));
  EXPECT_TRUE(index->HasSubsumer(P({"a", "*"}), true));
}

TEST_P(PatternIndexTest, CollectSubsumed) {
  auto index = Make(2);
  index->Insert(P({"a", "b"}));
  index->Insert(P({"a", "*"}));
  index->Insert(P({"c", "*"}));
  std::vector<Pattern> out;
  index->CollectSubsumed(P({"a", "*"}), /*strict=*/true, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], P({"a", "b"}));
  out.clear();
  index->CollectSubsumed(P({"a", "*"}), /*strict=*/false, &out);
  EXPECT_EQ(out.size(), 2u);
  out.clear();
  index->CollectSubsumed(P({"*", "*"}), /*strict=*/true, &out);
  EXPECT_EQ(out.size(), 3u);
}

TEST_P(PatternIndexTest, WildcardConstantDistinction) {
  // A stored (d) must not subsume a probe (*): the wildcard is more
  // general than any constant.
  auto index = Make(1);
  index->Insert(P({"d"}));
  EXPECT_FALSE(index->HasSubsumer(P({"*"}), false));
  EXPECT_TRUE(index->HasSubsumer(P({"d"}), false));
  std::vector<Pattern> out;
  index->CollectSubsumed(P({"*"}), false, &out);
  EXPECT_EQ(out.size(), 1u);  // (*) subsumes (d)
}

TEST_P(PatternIndexTest, CollectSubsumers) {
  auto index = Make(2);
  index->Insert(P({"*", "*"}));
  index->Insert(P({"a", "*"}));
  index->Insert(P({"a", "b"}));
  index->Insert(P({"c", "*"}));
  std::vector<Pattern> out;
  index->CollectSubsumers(P({"a", "b"}), /*strict=*/false, &out);
  EXPECT_EQ(out.size(), 3u);
  out.clear();
  index->CollectSubsumers(P({"a", "b"}), /*strict=*/true, &out);
  EXPECT_EQ(out.size(), 2u);
  out.clear();
  index->CollectSubsumers(P({"*", "*"}), /*strict=*/true, &out);
  EXPECT_TRUE(out.empty());
}

TEST_P(PatternIndexTest, ContentsReturnsAllPatterns) {
  auto index = Make(2);
  std::vector<Pattern> inserted = {P({"a", "b"}), P({"*", "b"}),
                                   P({"c", "*"})};
  for (const auto& p : inserted) index->Insert(p);
  std::vector<Pattern> contents = index->Contents();
  ASSERT_EQ(contents.size(), 3u);
  for (const auto& p : inserted) {
    EXPECT_NE(std::find(contents.begin(), contents.end(), p),
              contents.end());
  }
}

TEST_P(PatternIndexTest, MemoryAccountingGrowsAndShrinks) {
  auto index = Make(3);
  size_t empty = index->ApproxMemoryBytes();
  index->Insert(P({"a", "b", "c"}));
  index->Insert(P({"a", "*", "*"}));
  size_t loaded = index->ApproxMemoryBytes();
  EXPECT_GT(loaded, empty);
}

TEST_P(PatternIndexTest, WideConstantHeavyPatterns) {
  // Patterns with more than 20 constants trigger the hash index's
  // linear-scan fallback (2^c generalization probes would exceed it);
  // every structure must still answer correctly.
  const size_t arity = 24;
  auto index = Make(arity);
  auto constant_pattern = [&](const char* base) {
    std::vector<Pattern::Cell> cells;
    for (size_t i = 0; i < arity; ++i) {
      cells.push_back(Value(std::string(base) + std::to_string(i)));
    }
    return Pattern(std::move(cells));
  };
  Pattern a = constant_pattern("x");
  Pattern general = a.WithWildcard(3).WithWildcard(17);
  index->Insert(general);
  EXPECT_TRUE(index->HasSubsumer(a, /*strict=*/true));
  EXPECT_FALSE(index->HasSubsumer(constant_pattern("y"), false));
  std::vector<Pattern> out;
  index->CollectSubsumers(a, /*strict=*/false, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], general);
}

TEST_P(PatternIndexTest, RandomizedDifferentialAgainstLinear) {
  // The linear index is the trivially correct baseline; every structure
  // must agree with it on random workloads of inserts, removes, checks
  // and retrievals.
  Rng rng(12345 + static_cast<uint64_t>(GetParam()));
  auto index = Make(4);
  LinearIndex reference(4);
  for (int step = 0; step < 2000; ++step) {
    Pattern p = RandomPattern(&rng, 4, 3, 0.4);
    switch (rng.UniformInt(0, 3)) {
      case 0:
        index->Insert(p);
        reference.Insert(p);
        break;
      case 1: {
        bool removed_a = index->Remove(p);
        bool removed_b = reference.Remove(p);
        ASSERT_EQ(removed_a, removed_b) << "step " << step;
        break;
      }
      case 2: {
        bool strict = rng.Bernoulli(0.5);
        ASSERT_EQ(index->HasSubsumer(p, strict),
                  reference.HasSubsumer(p, strict))
            << "step " << step << " probe " << p.ToString();
        break;
      }
      case 3: {
        bool strict = rng.Bernoulli(0.5);
        std::vector<Pattern> a;
        std::vector<Pattern> b;
        if (rng.Bernoulli(0.5)) {
          index->CollectSubsumed(p, strict, &a);
          reference.CollectSubsumed(p, strict, &b);
        } else {
          index->CollectSubsumers(p, strict, &a);
          reference.CollectSubsumers(p, strict, &b);
        }
        std::sort(a.begin(), a.end());
        std::sort(b.begin(), b.end());
        ASSERT_EQ(a, b) << "step " << step << " probe " << p.ToString();
        break;
      }
    }
    ASSERT_EQ(index->size(), reference.size()) << "step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllStructures, PatternIndexTest,
    ::testing::Values(PatternIndexKind::kLinearList,
                      PatternIndexKind::kHashTable,
                      PatternIndexKind::kPathIndex,
                      PatternIndexKind::kDiscriminationTree),
    [](const ::testing::TestParamInfo<PatternIndexKind>& info) {
      return PatternIndexKindName(info.param) == std::string("linear list")
                 ? "LinearList"
             : info.param == PatternIndexKind::kHashTable    ? "HashTable"
             : info.param == PatternIndexKind::kPathIndex    ? "PathIndex"
                                                             : "DiscTree";
    });

// ---------------------------------------------------------------------------
// HashIndex probe strategies: the Gray-code generalization enumeration
// and the linear scan must agree on every probe, and kAuto (which picks
// between them per probe based on 2^c vs table size) must match both.

TEST(HashIndexProbeTest, ScanAndEnumerationAgreeOnRandomSets) {
  Rng rng(2024);
  for (size_t arity : {3u, 6u, 10u}) {
    for (double wild_prob : {0.2, 0.6}) {
      // Small tables force the adaptive cutoff to trip (2^c > size for
      // constant-heavy probes); larger ones keep enumeration active.
      for (size_t table_size : {3u, 40u, 400u}) {
        HashIndex scan(arity);
        HashIndex enumerate(arity);
        HashIndex adaptive(arity);
        scan.set_probe_strategy_for_test(HashIndex::ProbeStrategy::kScan);
        enumerate.set_probe_strategy_for_test(
            HashIndex::ProbeStrategy::kEnumerate);
        for (size_t i = 0; i < table_size; ++i) {
          Pattern p = RandomPattern(&rng, arity, 3, wild_prob);
          scan.Insert(p);
          enumerate.Insert(p);
          adaptive.Insert(p);
        }
        for (int probe = 0; probe < 200; ++probe) {
          Pattern p = RandomPattern(&rng, arity, 3, wild_prob);
          for (bool strict : {false, true}) {
            const bool want = scan.HasSubsumer(p, strict);
            ASSERT_EQ(enumerate.HasSubsumer(p, strict), want)
                << "probe " << p.ToString() << " strict=" << strict
                << " arity=" << arity << " size=" << table_size;
            ASSERT_EQ(adaptive.HasSubsumer(p, strict), want);
            std::vector<Pattern> a;
            std::vector<Pattern> b;
            scan.CollectSubsumers(p, strict, &a);
            enumerate.CollectSubsumers(p, strict, &b);
            std::sort(a.begin(), a.end());
            std::sort(b.begin(), b.end());
            ASSERT_EQ(a, b) << "probe " << p.ToString();
          }
        }
      }
    }
  }
}

TEST(HashIndexProbeTest, AllConstantAndAllWildcardProbes) {
  HashIndex index(4);
  index.Insert(P({"*", "*", "*", "*"}));
  index.Insert(P({"a", "b", "c", "d"}));
  for (auto strategy : {HashIndex::ProbeStrategy::kScan,
                        HashIndex::ProbeStrategy::kEnumerate,
                        HashIndex::ProbeStrategy::kAuto}) {
    index.set_probe_strategy_for_test(strategy);
    EXPECT_TRUE(index.HasSubsumer(P({"a", "b", "c", "d"}), /*strict=*/false));
    EXPECT_TRUE(index.HasSubsumer(P({"a", "b", "c", "d"}), /*strict=*/true));
    EXPECT_TRUE(index.HasSubsumer(P({"*", "*", "*", "*"}), /*strict=*/false));
    EXPECT_FALSE(index.HasSubsumer(P({"*", "*", "*", "*"}), /*strict=*/true));
    std::vector<Pattern> out;
    index.CollectSubsumers(P({"a", "b", "c", "d"}), /*strict=*/true, &out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], P({"*", "*", "*", "*"}));
  }
}

}  // namespace
}  // namespace pcdb
