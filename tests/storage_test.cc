#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "pattern/storage.h"
#include "pattern/summary.h"
#include "pattern/annotated_eval.h"
#include "workloads/maintenance_example.h"

namespace pcdb {
namespace {

Pattern P(const std::vector<std::string>& fields) {
  std::vector<Pattern::Cell> cells;
  for (const auto& f : fields) {
    if (f == "*") {
      cells.push_back(Pattern::Wildcard());
    } else {
      cells.push_back(Value(f));
    }
  }
  return Pattern(std::move(cells));
}

class StorageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("pcdb_storage_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir() const { return dir_.string(); }

 private:
  std::filesystem::path dir_;
};

TEST(EscapingTest, RoundTripsSpecialCharacters) {
  for (const std::string& raw :
       {std::string("plain"), std::string("*"), std::string("a*b"),
        std::string("pipe|pipe"), std::string("back\\slash"),
        std::string("new\nline"), std::string(""),
        std::string("\\*|\n\\")}) {
    auto back = UnescapeField(EscapeField(raw));
    ASSERT_TRUE(back.ok()) << raw;
    EXPECT_EQ(*back, raw);
  }
}

TEST(EscapingTest, EscapedStarIsNotAWildcard) {
  EXPECT_EQ(EscapeField("*"), "\\*");
  EXPECT_NE(EscapeField("*"), "*");
}

TEST(EscapingTest, DanglingEscapeFails) {
  EXPECT_FALSE(UnescapeField("abc\\").ok());
}

TEST_F(StorageTest, RoundTripsMaintenanceDatabase) {
  AnnotatedDatabase original = MakeMaintenanceDatabase();
  original.domains().SetDomain(
      "specialization",
      {Value("hardware"), Value("software"), Value("network")});
  ASSERT_TRUE(SaveAnnotatedDatabase(original, dir()).ok());

  auto loaded = LoadAnnotatedDatabase(dir());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  for (const std::string& name : original.database().TableNames()) {
    const Table* orig = *original.database().GetTable(name);
    auto table = loaded->database().GetTable(name);
    ASSERT_TRUE(table.ok()) << name;
    EXPECT_TRUE((*table)->BagEquals(*orig)) << name;
    EXPECT_TRUE(loaded->patterns(name).SetEquals(original.patterns(name)))
        << name;
  }
  ASSERT_NE(loaded->domains().Lookup("specialization"), nullptr);
  EXPECT_EQ(loaded->domains().Lookup("specialization")->size(), 3u);
}

TEST_F(StorageTest, LoadedDatabaseAnswersQueriesIdentically) {
  AnnotatedDatabase original = MakeMaintenanceDatabase();
  ASSERT_TRUE(SaveAnnotatedDatabase(original, dir()).ok());
  auto loaded = LoadAnnotatedDatabase(dir());
  ASSERT_TRUE(loaded.ok());
  auto a = EvaluateAnnotated(MakeHardwareWarningsQuery(), original);
  auto b = EvaluateAnnotated(MakeHardwareWarningsQuery(), *loaded);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a->data.BagEquals(b->data));
  EXPECT_TRUE(a->patterns.SetEquals(b->patterns));
}

TEST_F(StorageTest, WildcardVsLiteralStarSurvives) {
  AnnotatedDatabase adb;
  ASSERT_TRUE(adb.CreateTable("t", Schema({{"a", ValueType::kString},
                                           {"b", ValueType::kString}}))
                  .ok());
  // Data containing a literal "*" and tricky characters.
  ASSERT_TRUE(adb.AddRow("t", {"*", "x|y"}).ok());
  ASSERT_TRUE(adb.AddRow("t", {"plain", "a\\b"}).ok());
  // Pattern with a wildcard in one position and a literal "*" constant
  // in the other — the storage layer must keep them apart.
  ASSERT_TRUE(adb.AddPattern(
                  "t", Pattern(std::vector<Pattern::Cell>{
                           Value("*"), Pattern::Wildcard()}))
                  .ok());
  ASSERT_TRUE(SaveAnnotatedDatabase(adb, dir()).ok());
  auto loaded = LoadAnnotatedDatabase(dir());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const PatternSet& patterns = loaded->patterns("t");
  ASSERT_EQ(patterns.size(), 1u);
  EXPECT_FALSE(patterns[0].IsWildcard(0));
  EXPECT_EQ(patterns[0].value(0), Value("*"));
  EXPECT_TRUE(patterns[0].IsWildcard(1));
  EXPECT_TRUE(
      (*loaded->database().GetTable("t"))->BagEquals(**adb.database().GetTable("t")));
}

TEST_F(StorageTest, NumericColumnsRoundTrip) {
  AnnotatedDatabase adb;
  ASSERT_TRUE(adb.CreateTable("m", Schema({{"k", ValueType::kInt64},
                                           {"v", ValueType::kDouble}}))
                  .ok());
  ASSERT_TRUE(adb.AddRow("m", {Value(int64_t{-42}), Value(2.5)}).ok());
  ASSERT_TRUE(adb.AddPattern("m", {"-42", "*"}).ok());
  ASSERT_TRUE(SaveAnnotatedDatabase(adb, dir()).ok());
  auto loaded = LoadAnnotatedDatabase(dir());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const Table* table = *loaded->database().GetTable("m");
  ASSERT_EQ(table->num_rows(), 1u);
  EXPECT_EQ(table->row(0)[0], Value(int64_t{-42}));
  EXPECT_EQ(table->row(0)[1], Value(2.5));
  EXPECT_EQ(loaded->patterns("m").size(), 1u);
}

TEST_F(StorageTest, MissingDirectoryFails) {
  auto loaded = LoadAnnotatedDatabase(dir() + "_nonexistent");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(SummaryTest, FullyCompleteAnswer) {
  AnnotatedTable annotated;
  annotated.data = Table(Schema({{"a", ValueType::kString}}));
  PCDB_CHECK(annotated.data.Append({"x"}).ok());
  annotated.patterns.Add(Pattern::AllWildcards(1));
  CompletenessSummary summary = Summarize(annotated);
  EXPECT_TRUE(summary.fully_complete);
  EXPECT_TRUE(IsAnswerComplete(annotated));
  EXPECT_EQ(summary.guaranteed_rows, 1u);
  EXPECT_EQ(summary.guaranteed_fraction, 1.0);
}

TEST(SummaryTest, PartialAnswer) {
  AnnotatedTable annotated;
  annotated.data = Table(Schema({{"a", ValueType::kString}}));
  PCDB_CHECK(annotated.data.Append({"x"}).ok());
  PCDB_CHECK(annotated.data.Append({"y"}).ok());
  annotated.patterns.Add(P({"x"}));
  CompletenessSummary summary = Summarize(annotated);
  EXPECT_FALSE(summary.fully_complete);
  EXPECT_FALSE(IsAnswerComplete(annotated));
  EXPECT_EQ(summary.guaranteed_rows, 1u);
  EXPECT_DOUBLE_EQ(summary.guaranteed_fraction, 0.5);
  EXPECT_NE(summary.ToString().find("possibly partial"), std::string::npos);
}

TEST(SummaryTest, EmptyAnswer) {
  AnnotatedTable annotated;
  annotated.data = Table(Schema({{"a", ValueType::kString}}));
  CompletenessSummary summary = Summarize(annotated);
  EXPECT_EQ(summary.total_rows, 0u);
  EXPECT_EQ(summary.guaranteed_fraction, 0.0);
}

TEST(SummaryTest, MaintenanceQueryIsPartial) {
  AnnotatedDatabase adb = MakeMaintenanceDatabase();
  auto result = EvaluateAnnotated(MakeHardwareWarningsQuery(), adb);
  ASSERT_TRUE(result.ok());
  CompletenessSummary summary = Summarize(*result);
  EXPECT_FALSE(summary.fully_complete);
  // The Monday and Wednesday rows are covered; Tuesday's is not.
  EXPECT_EQ(summary.total_rows, 3u);
  EXPECT_EQ(summary.guaranteed_rows, 2u);
}

}  // namespace
}  // namespace pcdb
