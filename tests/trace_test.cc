#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "common/failpoint.h"
#include "common/log.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "common/trace_context.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pattern/annotated_eval.h"
#include "workloads/maintenance_example.h"

namespace pcdb {
namespace {

/// The tracer and the failpoint registry are process-global: every test
/// flips tracing on against a clean slate and restores the previous
/// state (the obs CI stage runs this binary with PCDB_TRACE=1, so the
/// prior state is not always "off").
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = Tracer::enabled();
    Failpoints::Global().Clear();
    Tracer::Global().SetEnabled(true);
    Tracer::Global().Reset();
    baseline_open_ = Tracer::Global().OpenSpanCount();
  }
  void TearDown() override {
    Tracer::Global().Reset();
    Tracer::Global().SetEnabled(was_enabled_);
    Failpoints::Global().Clear();
  }

  static const TraceEvent* FindEvent(const std::vector<TraceEvent>& events,
                                     const std::string& name) {
    for (const TraceEvent& event : events) {
      if (event.name != nullptr && name == event.name) return &event;
    }
    return nullptr;
  }

  bool was_enabled_ = false;
  int64_t baseline_open_ = 0;
};

TEST_F(TraceTest, DisabledSpanRecordsNothing) {
  Tracer::Global().SetEnabled(false);
  {
    PCDB_TRACE_SPAN(span, "inert");
    span.Arg("rows", 42);
    EXPECT_FALSE(span.active());
    EXPECT_EQ(Tracer::Global().OpenSpanCount(), baseline_open_);
  }
  EXPECT_TRUE(Tracer::Global().SnapshotEvents().empty());
}

TEST_F(TraceTest, SpansNestAndShareOneTraceId) {
  {
    PCDB_TRACE_SPAN(outer, "outer");
    PCDB_TRACE_SPAN(inner, "inner");
    inner.Arg("rows", 7);
    EXPECT_EQ(Tracer::Global().OpenSpanCount(), baseline_open_ + 2);
  }
  EXPECT_EQ(Tracer::Global().OpenSpanCount(), baseline_open_);

  const std::vector<TraceEvent> events = Tracer::Global().SnapshotEvents();
  ASSERT_EQ(events.size(), 2u);
  const TraceEvent* outer = FindEvent(events, "outer");
  const TraceEvent* inner = FindEvent(events, "inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_NE(outer->trace_id, 0u);
  EXPECT_EQ(inner->trace_id, outer->trace_id);
  EXPECT_EQ(inner->parent_span_id, outer->span_id);
  EXPECT_NE(inner->span_id, outer->span_id);
  // The inner span lies inside the outer one on the timeline.
  EXPECT_GE(inner->start_micros, outer->start_micros);
  EXPECT_LE(inner->start_micros + inner->duration_micros,
            outer->start_micros + outer->duration_micros);
  ASSERT_EQ(inner->num_args, 1u);
  EXPECT_STREQ(inner->arg_keys[0], "rows");
  EXPECT_EQ(inner->arg_values[0], 7u);
}

TEST_F(TraceTest, ArgsBeyondTheCapAreIgnored) {
  {
    PCDB_TRACE_SPAN(span, "many_args");
    for (uint64_t i = 0; i < TraceEvent::kMaxArgs + 3; ++i) {
      span.Arg("k", i);
    }
  }
  const std::vector<TraceEvent> events = Tracer::Global().SnapshotEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].num_args, TraceEvent::kMaxArgs);
}

TEST_F(TraceTest, ThreadPoolPropagatesTheTraceContext) {
  uint64_t outer_trace = 0;
  uint64_t outer_span = 0;
  {
    PCDB_TRACE_SPAN(outer, "submit_site");
    outer_trace = CurrentTraceContext().trace_id;
    outer_span = CurrentTraceContext().span_id;
    ThreadPool pool(2);
    for (int i = 0; i < 4; ++i) {
      pool.Submit([] { PCDB_TRACE_SPAN(task, "pool_task"); });
    }
    pool.Wait();
  }
  ASSERT_NE(outer_trace, 0u);
  const std::vector<TraceEvent> events = Tracer::Global().SnapshotEvents();
  size_t tasks = 0;
  for (const TraceEvent& event : events) {
    if (std::string("pool_task") != event.name) continue;
    ++tasks;
    // The worker thread adopted the submitter's context: same trace,
    // parented to the span that was open at Submit time.
    EXPECT_EQ(event.trace_id, outer_trace);
    EXPECT_EQ(event.parent_span_id, outer_span);
  }
  EXPECT_EQ(tasks, 4u);
}

TEST_F(TraceTest, RecordIntervalParentsUnderTheCurrentSpan) {
  {
    PCDB_TRACE_SPAN(outer, "request");
    const uint64_t now = Tracer::Global().NowMicros();
    Tracer::Global().RecordInterval("queue_wait", now > 50 ? now - 50 : 0,
                                    50);
  }
  const std::vector<TraceEvent> events = Tracer::Global().SnapshotEvents();
  const TraceEvent* outer = FindEvent(events, "request");
  const TraceEvent* wait = FindEvent(events, "queue_wait");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(wait, nullptr);
  EXPECT_EQ(wait->trace_id, outer->trace_id);
  EXPECT_EQ(wait->parent_span_id, outer->span_id);
  EXPECT_EQ(wait->duration_micros, 50u);
}

TEST_F(TraceTest, SpanBalanceSurvivesTheFaultMatrix) {
  // Every compiled-in failpoint site, armed with error and with throw,
  // against the traced annotated evaluation, serial and parallel. No
  // early return or exception unwinding may leak an open span — RAII
  // spans must close on every path. (Sites outside the evaluator simply
  // never fire here; their runs double as clean-path balance checks.)
  const uint64_t trips_before = EngineMetrics().failpoint_trips->Value();
  AnnotatedDatabase adb = MakeMaintenanceDatabase();
  for (const std::string& site : Failpoints::AllSites()) {
    for (int action = 0; action < 2; ++action) {
      for (size_t threads : {size_t{1}, size_t{4}}) {
        Failpoints::Global().Activate(
            site, action == 0
                      ? FailpointSpec::Error(StatusCode::kOutOfRange)
                      : FailpointSpec::Throw());
        AnnotatedEvalOptions options;
        options.num_threads = threads;
        // The status is the fault matrix's concern
        // (fault_injection_test); here only the balance matters.
        static_cast<void>(
            EvaluateAnnotated(MakeHardwareWarningsQuery(), adb, options));
        Failpoints::Global().Clear();
        EXPECT_EQ(Tracer::Global().OpenSpanCount(), baseline_open_)
            << site << (action == 0 ? " error" : " throw") << " threads="
            << threads;
      }
    }
  }
  // The matrix tripped evaluator failpoints, and EngineMetrics()'s
  // observer counted them into the process-wide registry.
  EXPECT_GT(EngineMetrics().failpoint_trips->Value(), trips_before);
  EXPECT_EQ(GlobalMetrics().CounterValue("engine_failpoint_trips"),
            EngineMetrics().failpoint_trips->Value());
}

TEST_F(TraceTest, TracedEvaluationEmitsEngineSpans) {
  AnnotatedDatabase adb = MakeMaintenanceDatabase();
  ASSERT_TRUE(
      EvaluateAnnotated(MakeHardwareWarningsQuery(), adb).ok());
  const std::vector<TraceEvent> events = Tracer::Global().SnapshotEvents();
  EXPECT_NE(FindEvent(events, "evaluate_annotated"), nullptr);
  EXPECT_NE(FindEvent(events, "pattern.scan"), nullptr);
  EXPECT_NE(FindEvent(events, "pattern.join"), nullptr);
  bool minimized = false;
  for (const TraceEvent& event : events) {
    if (std::string(event.name).rfind("minimize.", 0) == 0) {
      minimized = true;
    }
  }
  EXPECT_TRUE(minimized);
  // Every engine span belongs to the root's trace.
  const TraceEvent* root = FindEvent(events, "evaluate_annotated");
  ASSERT_NE(root, nullptr);
  for (const TraceEvent& event : events) {
    EXPECT_EQ(event.trace_id, root->trace_id) << event.name;
  }
}

TEST_F(TraceTest, ChromeTraceJsonIsWellFormed) {
  {
    PCDB_TRACE_SPAN(outer, "outer");
    PCDB_TRACE_SPAN(inner, "inner \"quoted\"");
    inner.Arg("rows", 3);
  }
  const std::string json = Tracer::Global().ToChromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos) << json;
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"pcdb\""), std::string::npos);
  EXPECT_NE(json.find("inner \\\"quoted\\\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"rows\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"dropped_events\":0"), std::string::npos) << json;
  // Structural sanity: braces and brackets balance, nothing nests
  // negatively. (tools/check_trace.py does the full validation on real
  // dump files in the obs CI stage.)
  int braces = 0;
  int brackets = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_FALSE(in_string);
}

TEST_F(TraceTest, WriteChromeTraceFileRoundTrips) {
  {
    PCDB_TRACE_SPAN(span, "to_disk");
  }
  const std::string path = ::testing::TempDir() + "pcdb_trace_test.json";
  ASSERT_TRUE(Tracer::Global().WriteChromeTraceFile(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string contents;
  char buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    contents.append(buf, n);
  }
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(contents, Tracer::Global().ToChromeTraceJson());
}

TEST_F(TraceTest, BufferCapDropsAreCountedNotSilent) {
  TraceEvent event;
  event.name = "flood";
  for (size_t i = 0; i < Tracer::kMaxEventsPerThread + 5; ++i) {
    Tracer::Global().Record(event);
  }
  EXPECT_EQ(Tracer::Global().DroppedEvents(), 5u);
  EXPECT_NE(Tracer::Global().ToChromeTraceJson().find(
                "\"dropped_events\":5"),
            std::string::npos);
  Tracer::Global().Reset();
  EXPECT_EQ(Tracer::Global().DroppedEvents(), 0u);
  EXPECT_TRUE(Tracer::Global().SnapshotEvents().empty());
}

// ---------------------------------------------------------------------------
// Structured logging (common/log.h).

Mutex g_log_mu;
std::string g_log_capture PCDB_GUARDED_BY(g_log_mu);

void CaptureLogLine(const std::string& line) {
  MutexLock lock(&g_log_mu);
  g_log_capture += line;
  g_log_capture += '\n';
}

class LogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_level_ = MinLogLevel();
    SetMinLogLevel(LogLevel::kDebug);
    {
      MutexLock lock(&g_log_mu);
      g_log_capture.clear();
    }
    SetLogSink(&CaptureLogLine);
  }
  void TearDown() override {
    SetLogSink(nullptr);
    SetMinLogLevel(saved_level_);
  }

  static std::string Captured() {
    MutexLock lock(&g_log_mu);
    return g_log_capture;
  }

  LogLevel saved_level_ = LogLevel::kInfo;
};

TEST_F(LogTest, FieldsRenderAsOneJsonLine) {
  LogWarn("slow query")
      .Str("sql", "SELECT \"x\"\n")
      .Num("delta", -3)
      .Unum("conn", 7)
      .Float("ms", 1.5)
      .Bool("degraded", true);
  const std::string out = Captured();
  EXPECT_NE(out.find("\"level\":\"warn\""), std::string::npos) << out;
  EXPECT_NE(out.find("\"msg\":\"slow query\""), std::string::npos) << out;
  EXPECT_NE(out.find("\"sql\":\"SELECT \\\"x\\\"\\n\""), std::string::npos)
      << out;
  EXPECT_NE(out.find("\"delta\":-3"), std::string::npos) << out;
  EXPECT_NE(out.find("\"conn\":7"), std::string::npos) << out;
  EXPECT_NE(out.find("\"ms\":1.5"), std::string::npos) << out;
  EXPECT_NE(out.find("\"degraded\":true"), std::string::npos) << out;
  EXPECT_NE(out.find("\"ts_us\":"), std::string::npos) << out;
  // One event, one line.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 1);
}

TEST_F(LogTest, EventsBelowTheMinimumLevelEmitNothing) {
  SetMinLogLevel(LogLevel::kError);
  LogDebug("d").Num("n", 1);
  LogInfo("i");
  LogWarn("w");
  EXPECT_EQ(Captured(), "");
  LogError("e");
  EXPECT_NE(Captured().find("\"level\":\"error\""), std::string::npos);
}

TEST_F(LogTest, JsonEscapeCoversControlCharacters) {
  EXPECT_EQ(JsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(JsonEscape("x\n\r\ty"), "x\\n\\r\\ty");
  EXPECT_EQ(JsonEscape(std::string_view("\x01", 1)), "\\u0001");
  EXPECT_EQ(JsonEscape("plain"), "plain");
}

}  // namespace
}  // namespace pcdb
