#!/usr/bin/env python3
"""Golden-fixture tests for pcdb-analyze.

Each directory under fixtures/ is named after a checker and holds two
miniature repo trees plus a golden findings file:

    fixtures/<checker>/violation/    tree with deliberate violations
    fixtures/<checker>/conforming/   tree exercising the same constructs
                                     correctly
    fixtures/<checker>/expected.txt  exact findings for the violation
                                     tree (text format, summary line
                                     stripped)

For every checker the harness asserts: the violation tree reproduces
expected.txt byte-for-byte and exits 1; the conforming tree reports
nothing and exits 0. The "suppression" fixture runs under naked-mutex,
since suppression auditing is framework behaviour layered on whichever
checkers run. One fixture is additionally rendered as JSON and SARIF to
pin the machine-readable output contracts.

Exit status: 0 when all fixtures pass, 1 otherwise.
"""

import json
import pathlib
import subprocess
import sys

HERE = pathlib.Path(__file__).resolve().parent
REPO = HERE.parent.parent
ANALYZER = REPO / "tools" / "analyze" / "pcdb_analyze.py"
FIXTURES = HERE / "fixtures"

# Fixtures whose subject is framework behaviour run under a stand-in
# checker.
CHECKER_FOR = {"suppression": "naked-mutex"}


def run_analyzer(root, checker, fmt="text"):
    cmd = [sys.executable, str(ANALYZER), "--root", str(root),
           "--checker", checker, "--format", fmt]
    return subprocess.run(cmd, capture_output=True, text=True)


def findings_only(stdout):
    return [line for line in stdout.splitlines()
            if line and not line.startswith("pcdb-analyze:")]


def check(name, ok, detail=""):
    print(f"{'ok' if ok else 'FAIL':4} {name}" + (f": {detail}" if detail
                                                  else ""))
    return ok


def main():
    failures = 0
    fixture_dirs = sorted(p for p in FIXTURES.iterdir() if p.is_dir())
    if not fixture_dirs:
        print("no fixtures found", file=sys.stderr)
        return 1

    for fixture in fixture_dirs:
        name = fixture.name
        checker = CHECKER_FOR.get(name, name)
        expected = (fixture / "expected.txt").read_text().splitlines()

        proc = run_analyzer(fixture / "violation", checker)
        got = findings_only(proc.stdout)
        if not check(f"{name}/violation findings", got == expected):
            failures += 1
            for line in got:
                print(f"    got: {line}")
            for line in expected:
                print(f"    want: {line}")
        if not check(f"{name}/violation exit", proc.returncode == 1,
                     f"exit={proc.returncode}"):
            failures += 1

        proc = run_analyzer(fixture / "conforming", checker)
        got = findings_only(proc.stdout)
        if not check(f"{name}/conforming clean",
                     proc.returncode == 0 and got == []):
            failures += 1
            for line in got:
                print(f"    got: {line}")

    # Machine-readable output contracts, pinned on one violation tree.
    probe = FIXTURES / "unchecked-status" / "violation"
    expected_count = len((FIXTURES / "unchecked-status" /
                          "expected.txt").read_text().splitlines())

    proc = run_analyzer(probe, "unchecked-status", fmt="json")
    try:
        doc = json.loads(proc.stdout)
        ok = (len(doc["findings"]) == expected_count
              and all({"checker", "path", "line", "message"}
                      <= set(f) for f in doc["findings"]))
    except (json.JSONDecodeError, KeyError):
        ok = False
    if not check("json output contract", ok):
        failures += 1

    proc = run_analyzer(probe, "unchecked-status", fmt="sarif")
    try:
        doc = json.loads(proc.stdout)
        run = doc["runs"][0]
        rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        results = run["results"]
        ok = (doc["version"] == "2.1.0"
              and run["tool"]["driver"]["name"] == "pcdb-analyze"
              and len(results) == expected_count
              and all(r["ruleId"] in rule_ids for r in results)
              and all(r["locations"][0]["physicalLocation"]["region"]
                      ["startLine"] >= 1 for r in results))
    except (json.JSONDecodeError, KeyError, IndexError):
        ok = False
    if not check("sarif output contract", ok):
        failures += 1

    if failures:
        print(f"{failures} golden check(s) failed", file=sys.stderr)
        return 1
    print(f"all {len(fixture_dirs)} fixtures + 2 format contracts pass")
    return 0


if __name__ == "__main__":
    sys.exit(main())
