#include "pattern/pattern.h"
namespace pcdb {
void Rewrite(Pattern* p) { p->SetCell(0, Value(1)); }
}  // namespace pcdb
