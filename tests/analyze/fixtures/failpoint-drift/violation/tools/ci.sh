#!/usr/bin/env bash
run_faults() {
  local sites="a.site ghost.site"
  echo "$sites"
}
