namespace pcdb {
void Read() {
  PCDB_FAILPOINT("a.site");
  PCDB_FAILPOINT("undeclared.site");
}
}  // namespace pcdb
