#include <string>
#include <vector>
namespace pcdb {
const std::vector<std::string>& AllSites() {
  static const std::vector<std::string>* sites = new std::vector<std::string>{
      "a.site",
  };
  return *sites;
}
}  // namespace pcdb
