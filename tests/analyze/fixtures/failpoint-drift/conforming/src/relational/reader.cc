namespace pcdb {
void Read() {
  PCDB_FAILPOINT("a.site");
}
}  // namespace pcdb
