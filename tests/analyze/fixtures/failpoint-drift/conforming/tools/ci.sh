#!/usr/bin/env bash
run_faults() {
  local sites="a.site"
  echo "$sites"
}
