#include <cstdint>
namespace pcdb {
enum class FrameType : uint8_t {
  kPing = 0x01,
  kPong = 0x80,
  kData = 0x80,
};
std::string EncodePingPayload();
}  // namespace pcdb
