#include "server/protocol.h"
namespace pcdb {
bool Known(FrameType t) { return t == FrameType::kPing; }
void EncodeTraceBlock(const PingRequest& req, std::string* out) {
  if (req.trace_id == 0) return;
  out->push_back(static_cast<char>(req.parent_span_id & 0xFF));
  out->push_back(req.trace_sampled ? 1 : 0);
}
}  // namespace pcdb
