#include <cstdint>
namespace pcdb {
bool IsError(uint8_t op) { return op == 0x84; }
}  // namespace pcdb
