namespace pcdb {
void TraceBlockRoundTrip(uint64_t trace_id, uint64_t parent_span_id,
                         bool trace_sampled) {}
}  // namespace pcdb
