namespace pcdb {}
