#include "server/protocol.h"
namespace pcdb {
bool Handle(FrameType t) {
  return t == FrameType::kPing || t == FrameType::kPong;
}
}  // namespace pcdb
