#include "server/protocol.h"
namespace pcdb {
bool Handle(FrameType t) {
  return t == FrameType::kPing || t == FrameType::kPong;
}
PingRequest Inject(uint64_t trace_id, uint64_t parent_span_id) {
  PingRequest req;
  req.trace_id = trace_id;
  req.parent_span_id = parent_span_id;
  req.trace_sampled = trace_id != 0;
  return req;
}
}  // namespace pcdb
