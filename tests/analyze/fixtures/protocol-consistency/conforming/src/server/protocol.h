#include <cstdint>
#include <string>
namespace pcdb {
enum class FrameType : uint8_t {
  kPing = 0x01,
  kPong = 0x80,
};
struct PingRequest {
  uint64_t trace_id = 0;
  uint64_t parent_span_id = 0;
  bool trace_sampled = false;
};
std::string EncodePingPayload();
bool DecodePingPayload(const std::string& payload);
}  // namespace pcdb
