#include <cstdint>
#include <string>
namespace pcdb {
enum class FrameType : uint8_t {
  kPing = 0x01,
  kPong = 0x80,
};
std::string EncodePingPayload();
bool DecodePingPayload(const std::string& payload);
}  // namespace pcdb
