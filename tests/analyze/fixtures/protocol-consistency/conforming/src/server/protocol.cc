#include "server/protocol.h"
namespace pcdb {
bool Known(FrameType t) {
  return t == FrameType::kPing || t == FrameType::kPong;
}
}  // namespace pcdb
