#include "server/protocol.h"
namespace pcdb {
void RoundTrip() { DecodePingPayload(EncodePingPayload()); }
}  // namespace pcdb
