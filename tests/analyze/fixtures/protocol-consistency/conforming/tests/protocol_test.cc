#include "server/protocol.h"
namespace pcdb {
void RoundTrip() { DecodePingPayload(EncodePingPayload()); }
void TraceBlockRoundTrip() {
  PingRequest req;
  req.trace_id = 7;
  req.parent_span_id = 9;
  req.trace_sampled = true;
}
}  // namespace pcdb
