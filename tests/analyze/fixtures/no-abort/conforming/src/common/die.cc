#include "common/status.h"
namespace pcdb {
Status OnBadInput() { return Status::InvalidArgument("bad input"); }
}  // namespace pcdb
