#include <cstdlib>
namespace pcdb {
void OnBadInput() { std::abort(); }
}  // namespace pcdb
