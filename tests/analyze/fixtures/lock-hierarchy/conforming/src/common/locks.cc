#include "common/locks.h"
namespace pcdb {
void Store::Move() {
  MutexLock outer(&a_mu_);
  MutexLock inner(&b_mu_);
}
void Store::Separate() {
  { MutexLock first(&b_mu_); }
  { MutexLock second(&a_mu_); }
}
}  // namespace pcdb
