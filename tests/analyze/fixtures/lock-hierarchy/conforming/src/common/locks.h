#include "common/thread_annotations.h"
namespace pcdb {
class Store {
  Mutex a_mu_ PCDB_ACQUIRED_BEFORE(b_mu_);
  Mutex b_mu_;
};
}  // namespace pcdb
