#include "common/thread_annotations.h"
namespace pcdb {
class Store {
  Mutex a_mu_;
  Mutex b_mu_;
  Mutex x_mu_ PCDB_ACQUIRED_BEFORE(y_mu_);
  Mutex y_mu_ PCDB_ACQUIRED_BEFORE(x_mu_);
};
}  // namespace pcdb
