#include "common/status.h"
#include "relational/table.h"
namespace pcdb {}
