#include "sql/parser.h"
#include "common/status.h"
namespace pcdb {}
