#include "obs/names.h"
namespace pcdb {
void Handle() {
  GetCounter(kMetricRequests);
  Trace(kSpanQuery);
}
}  // namespace pcdb
