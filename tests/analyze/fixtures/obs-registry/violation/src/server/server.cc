#include "obs/names.h"
namespace pcdb {
void Handle() {
  GetCounter("requests_total");
  Trace(kSpanQuery);
  Count(kMetricRequests);
  Trace(kSpanDupe);
}
}  // namespace pcdb
