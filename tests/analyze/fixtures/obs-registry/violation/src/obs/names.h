namespace pcdb {
inline constexpr char kSpanQuery[] = "server.query";
inline constexpr char kSpanOrphan[] = "server.orphan";
inline constexpr char kSpanDupe[] = "server.query";
inline constexpr char kMetricRequests[] = "requests_total";
inline constexpr const char* kAllSpanNames[] = {
    kSpanQuery,
    kSpanGhost,
    kSpanQuery,
};
inline constexpr const char* kAllMetricNames[] = {
    kMetricRequests,
};
}  // namespace pcdb
