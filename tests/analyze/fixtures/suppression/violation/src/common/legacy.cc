#include <mutex>
namespace pcdb {
std::mutex gate;  // pcdb-analyze: allow(naked-mutex)
// pcdb-analyze: allow(not-a-checker): checker name has a typo
// pcdb-analyze: allow(naked-mutex): nothing on the next line violates it
int idle = 0;
}  // namespace pcdb
