#include <mutex>
namespace pcdb {
// pcdb-analyze: allow(naked-mutex): bridging to a vendored API that hands us a std::mutex
std::mutex gate;
}  // namespace pcdb
