#include "common/status.h"
namespace pcdb {
[[nodiscard]] Status DoThing();
}  // namespace pcdb
