#include "common/api.h"
namespace pcdb {
void Caller() {
  Status st = DoThing();
  if (!st.ok()) return;
  static_cast<void>(DoThing());
}
}  // namespace pcdb
