namespace pcdb {
class [[nodiscard]] Status {
 public:
  bool ok() const { return true; }
};
}  // namespace pcdb
