#include "common/api.h"
namespace pcdb {
void Caller() {
  DoThing();
}
}  // namespace pcdb
