namespace pcdb {
class Status {
 public:
  bool ok() const { return true; }
};
}  // namespace pcdb
