#include "common/status.h"
namespace pcdb {
Status DoThing();
}  // namespace pcdb
