#include "common/thread_annotations.h"
namespace pcdb {
Mutex gate;
void Touch() { MutexLock hold(&gate); }
}  // namespace pcdb
