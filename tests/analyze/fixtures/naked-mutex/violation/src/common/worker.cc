#include <mutex>
namespace pcdb {
std::mutex gate;
void Touch() { std::lock_guard<std::mutex> hold(gate); }
}  // namespace pcdb
