#include <sys/socket.h>
namespace pcdb {
int Dial() { return socket(AF_INET, SOCK_STREAM, 0); }
}  // namespace pcdb
