#include <chrono>
#include <thread>
namespace pcdb {
void Server::RunLoop() {
  while (true) {
    Poll();
    pool_->Submit([this] {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      TcpConnect("upstream", 9000);
    });
  }
}
void Server::Poll() {}
void Server::OffLoop() {
  std::this_thread::sleep_for(std::chrono::seconds(1));
}
}  // namespace pcdb
