#include <chrono>
#include <thread>
namespace pcdb {
void Server::RunLoop() {
  while (true) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    Refresh();
  }
}
void Server::Refresh() {
  TcpConnect("upstream", 9000);
}
void Server::OffLoop() {
  std::this_thread::sleep_for(std::chrono::seconds(1));
}
}  // namespace pcdb
