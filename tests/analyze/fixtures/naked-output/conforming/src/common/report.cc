#include "common/log.h"
namespace pcdb {
void Report() { LogInfo("done"); }
}  // namespace pcdb
