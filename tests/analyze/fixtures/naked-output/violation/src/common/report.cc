#include <iostream>
namespace pcdb {
void Report() { std::cout << "done\n"; }
}  // namespace pcdb
