#include "server/client.h"
#include "common/status.h"
namespace pcdb {}
