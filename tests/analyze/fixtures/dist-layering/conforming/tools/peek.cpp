#include "dist/partition.h"
int main() { return 0; }
