#include "dist/coordinator.h"
#include "common/status.h"
namespace pcdb {}
