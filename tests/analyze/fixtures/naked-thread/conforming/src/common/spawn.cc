#include "common/thread_pool.h"
namespace pcdb {
void Spawn(ThreadPool* pool) { pool->Submit([] {}); }
}  // namespace pcdb
