#include <thread>
namespace pcdb {
void Spawn() { std::thread worker([] {}); worker.join(); }
}  // namespace pcdb
