// Edge cases and failure injection across modules: empty inputs, arity
// zero, corrupted storage files, malformed SQL, degenerate queries.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "pattern/annotated_eval.h"
#include "pattern/minimize.h"
#include "pattern/pattern_index.h"
#include "pattern/storage.h"
#include "relational/evaluator.h"
#include "sql/planner.h"
#include "workloads/maintenance_example.h"

namespace pcdb {
namespace {

TEST(EmptyInputsTest, EvaluateOverEmptyTables) {
  AnnotatedDatabase adb;
  ASSERT_TRUE(adb.CreateTable("R", Schema({{"a", ValueType::kString},
                                           {"b", ValueType::kString}}))
                  .ok());
  ASSERT_TRUE(adb.AddPattern("R", {"*", "*"}).ok());
  ExprPtr q = Expr::SelectConst(Expr::Scan("R"), "a", "x");
  auto result = EvaluateAnnotated(q, adb);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->data.num_rows(), 0u);
  // An empty but complete table keeps its guarantee through selections.
  EXPECT_EQ(result->patterns.size(), 1u);
}

TEST(EmptyInputsTest, JoinWithEmptySide) {
  AnnotatedDatabase adb;
  ASSERT_TRUE(adb.CreateTable("R", Schema({{"a", ValueType::kString}})).ok());
  ASSERT_TRUE(adb.CreateTable("S", Schema({{"b", ValueType::kString}})).ok());
  ASSERT_TRUE(adb.AddRow("R", {"x"}).ok());
  auto result = Evaluate(
      Expr::Join(Expr::Scan("R"), Expr::Scan("S"), "a", "b"),
      adb.database());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 0u);
}

TEST(EmptyInputsTest, AggregateOverEmptyInputHasNoGroups) {
  AnnotatedDatabase adb;
  ASSERT_TRUE(adb.CreateTable("R", Schema({{"g", ValueType::kString},
                                           {"v", ValueType::kInt64}}))
                  .ok());
  ExprPtr agg = Expr::Aggregate(Expr::Scan("R"), {"g"},
                                {{AggFunc::kCount, "", "n"}});
  auto result = Evaluate(agg, adb.database());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 0u);
}

TEST(ArityZeroTest, IndexesHandleNullaryPatterns) {
  // There is exactly one arity-0 pattern: the empty tuple.
  for (PatternIndexKind kind :
       {PatternIndexKind::kLinearList, PatternIndexKind::kHashTable,
        PatternIndexKind::kPathIndex,
        PatternIndexKind::kDiscriminationTree}) {
    auto index = MakePatternIndex(kind, 0);
    Pattern empty = Pattern::AllWildcards(0);
    EXPECT_FALSE(index->HasSubsumer(empty, false));
    index->Insert(empty);
    index->Insert(empty);
    EXPECT_EQ(index->size(), 1u) << PatternIndexKindName(kind);
    EXPECT_TRUE(index->HasSubsumer(empty, false));
    EXPECT_FALSE(index->HasSubsumer(empty, true));
    EXPECT_TRUE(index->Remove(empty));
    EXPECT_EQ(index->size(), 0u);
  }
}

TEST(ArityZeroTest, MinimizeNullaryPatterns) {
  PatternSet input;
  input.Add(Pattern::AllWildcards(0));
  input.Add(Pattern::AllWildcards(0));
  PatternSet out = Minimize(input);
  EXPECT_EQ(out.size(), 1u);
}

TEST(DuplicateRowsTest, BagSemanticsFlowThroughAnnotatedEval) {
  AnnotatedDatabase adb;
  ASSERT_TRUE(adb.CreateTable("R", Schema({{"a", ValueType::kString}})).ok());
  ASSERT_TRUE(adb.AddRow("R", {"x"}).ok());
  ASSERT_TRUE(adb.AddRow("R", {"x"}).ok());
  ASSERT_TRUE(adb.AddPattern("R", {"x"}).ok());
  auto result = EvaluateAnnotated(Expr::Scan("R"), adb);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->data.num_rows(), 2u);
  EXPECT_EQ(result->patterns.size(), 1u);
}

TEST(PatternValueMismatchTest, PatternsForAbsentValuesAreKept) {
  // A base pattern can reference values no stored row has — it asserts
  // the corresponding slice is (vacuously) complete.
  AnnotatedDatabase adb;
  ASSERT_TRUE(adb.CreateTable("R", Schema({{"a", ValueType::kString}})).ok());
  ASSERT_TRUE(adb.AddPattern("R", {"ghost"}).ok());
  auto result = EvaluateAnnotated(
      Expr::SelectConst(Expr::Scan("R"), "a", "ghost"), adb);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->data.num_rows(), 0u);
  EXPECT_EQ(result->patterns.size(), 1u);
}

class CorruptedStorageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("pcdb_corrupt_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    std::filesystem::remove_all(dir_);
    AnnotatedDatabase adb = MakeMaintenanceDatabase();
    PCDB_CHECK(SaveAnnotatedDatabase(adb, dir_.string()).ok());
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  void Overwrite(const std::string& file, const std::string& content) {
    std::ofstream out(dir_ / file);
    out << content;
  }

  std::filesystem::path dir_;
};

TEST_F(CorruptedStorageTest, BadCatalogTypeFails) {
  Overwrite("catalog", "T|a:BLOB\n");
  auto loaded = LoadAnnotatedDatabase(dir_.string());
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
}

TEST_F(CorruptedStorageTest, CatalogWithoutColumnsFails) {
  Overwrite("catalog", "JustAName\n");
  EXPECT_FALSE(LoadAnnotatedDatabase(dir_.string()).ok());
}

TEST_F(CorruptedStorageTest, DataArityMismatchFails) {
  Overwrite("Teams.data", "onlyonefield\n");
  auto loaded = LoadAnnotatedDatabase(dir_.string());
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
}

TEST_F(CorruptedStorageTest, MetaArityMismatchFails) {
  Overwrite("Teams.meta", "a|b|c\n");
  EXPECT_FALSE(LoadAnnotatedDatabase(dir_.string()).ok());
}

TEST_F(CorruptedStorageTest, NonNumericDataInIntColumnFails) {
  Overwrite("Warnings.data", "Mon|notanumber|tw1|msg\n");
  EXPECT_FALSE(LoadAnnotatedDatabase(dir_.string()).ok());
}

TEST_F(CorruptedStorageTest, MissingMetaFileFails) {
  std::filesystem::remove(dir_ / "Teams.meta");
  auto loaded = LoadAnnotatedDatabase(dir_.string());
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(MalformedSqlTest, ParserRejectsGracefully) {
  AnnotatedDatabase adb = MakeMaintenanceDatabase();
  for (const char* sql : {
           "",
           "SELECT",
           "SELECT FROM Teams",
           "SELECT * FROM",
           "SELECT * FROM Teams WHERE",
           "SELECT * FROM Teams WHERE name=",
           "SELECT * FROM Teams WHERE name==x",
           "SELECT * FROM Teams GROUP BY",
           "SELECT COUNT( FROM Teams",
           "SELECT * FROM Teams JOIN",
           "SELECT * FROM Teams JOIN Maintenance",
           "INSERT INTO Teams VALUES ('x','y')",
       }) {
    auto plan = PlanSql(sql, adb.database());
    EXPECT_FALSE(plan.ok()) << "accepted: " << sql;
    EXPECT_TRUE(plan.status().code() == StatusCode::kParseError ||
                plan.status().code() == StatusCode::kInvalidArgument ||
                plan.status().code() == StatusCode::kNotFound)
        << sql << " -> " << plan.status().ToString();
  }
}

TEST(SelfJoinPatternTest, SelfJoinDuplicatesBasePatterns) {
  // A self-join sees the same base pattern set on both sides; the
  // annotated result must reflect both.
  AnnotatedDatabase adb = MakeMaintenanceDatabase();
  auto plan = PlanSql(
      "SELECT * FROM Maintenance m1, Maintenance m2 WHERE m1.ID=m2.ID",
      adb.database());
  ASSERT_TRUE(plan.ok());
  auto result = EvaluateAnnotated(*plan, adb);
  ASSERT_TRUE(result.ok());
  // Patterns like (∗,A,∗, ∗,B,∗): team-A elements joined with team-B
  // maintenance rows for the same element.
  bool found_cross_team = false;
  for (const Pattern& p : result->patterns) {
    if (!p.IsWildcard(1) && !p.IsWildcard(4) &&
        p.value(1) != p.value(4)) {
      found_cross_team = true;
    }
  }
  EXPECT_TRUE(found_cross_team) << result->patterns.ToString();
}

TEST(LongChainTest, DeepOperatorChainsStaySound) {
  // Stack many selections/projections; patterns must follow through.
  AnnotatedDatabase adb = MakeMaintenanceDatabase();
  ExprPtr e = Expr::Scan("Warnings");
  e = Expr::SelectConst(e, "week", 1);
  e = Expr::SelectAttrEq(e, "day", "day");  // trivially true
  e = Expr::ProjectOut(e, "message");
  e = Expr::ProjectOut(e, "day");
  e = Expr::Rearrange(e, {"ID", "week", "ID"});
  auto result = EvaluateAnnotated(*e, adb);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->data.num_rows(), 4u);
  // Week-1 completeness survives the whole chain: (∗, 1, ∗) rearranged.
  Pattern expected = Pattern::AllWildcards(3).WithValue(1, Value(1));
  EXPECT_TRUE(result->patterns.AnySubsumes(expected))
      << result->patterns.ToString();
}

}  // namespace
}  // namespace pcdb
