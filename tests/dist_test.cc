#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/exec_context.h"
#include "common/failpoint.h"
#include "common/json.h"
#include "dist/coordinator.h"
#include "dist/partition.h"
#include "obs/trace.h"
#include "pattern/annotated_eval.h"
#include "pattern/shard_route.h"
#include "server/client.h"
#include "server/server.h"
#include "sql/planner.h"
#include "workloads/maintenance_example.h"

/// \file
/// Distributed-mode tests: partition-map codec and routing units, then
/// end-to-end differentials running a real Coordinator over real shard
/// Servers on loopback. The load-bearing property is the acceptance
/// criterion from docs/DISTRIBUTED.md: for N in {1,2,3} shards, the
/// distributed answer — rows AND minimized patterns, order-normalized —
/// is byte-identical to the single-process evaluation, and a lost shard
/// degrades to kUnavailable instead of a silently wrong completeness
/// verdict.

namespace pcdb {
namespace {

constexpr const char* kQhwSql =
    "SELECT * FROM Warnings W JOIN Maintenance M ON W.ID=M.ID "
    "JOIN Teams T ON M.responsible=T.name "
    "WHERE W.week=2 AND T.specialization='hardware'";

// ---------------------------------------------------------------------------
// Partition-map codec

TEST(PartitionMapCodec, RoundTripsCanonically) {
  PartitionMap map;
  map.num_shards = 3;
  map.hashed = {"Warnings", "Alerts"};
  const std::string bytes = EncodePartitionMap(map);
  Result<PartitionMap> decoded = DecodePartitionMap(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->num_shards, 3u);
  EXPECT_EQ(decoded->hashed, map.hashed);
  // Canonical: accepted payloads re-encode to the identical bytes (the
  // fuzzer asserts the same).
  EXPECT_EQ(EncodePartitionMap(*decoded), bytes);
}

TEST(PartitionMapCodec, RejectsMalformedPayloads) {
  // Zero shards.
  PartitionMap zero;
  zero.num_shards = 0;
  EXPECT_EQ(DecodePartitionMap(EncodePartitionMap(zero)).status().code(),
            StatusCode::kParseError);
  // Truncation: every proper prefix of a valid payload must be rejected
  // (never crash, never accept).
  PartitionMap map;
  map.num_shards = 2;
  map.hashed = {"T"};
  const std::string bytes = EncodePartitionMap(map);
  for (size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(DecodePartitionMap(bytes.substr(0, len)).ok()) << len;
  }
  // Trailing garbage.
  EXPECT_EQ(DecodePartitionMap(bytes + "x").status().code(),
            StatusCode::kParseError);
  // Non-canonical order (B after C) and duplicates are both "<= prev".
  std::string out;
  auto append_u32 = [&out](uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
    }
  };
  append_u32(2);  // num_shards
  append_u32(2);  // table count
  append_u32(1);
  out += "C";
  append_u32(1);
  out += "B";
  EXPECT_EQ(DecodePartitionMap(out).status().code(),
            StatusCode::kParseError);
}

TEST(PartitionMapCodec, ParsesHashedSpecs) {
  Result<std::set<std::string>> ok = ParseHashedSpec("Warnings,Alerts");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, (std::set<std::string>{"Alerts", "Warnings"}));
  ASSERT_TRUE(ParseHashedSpec("").ok());
  EXPECT_TRUE(ParseHashedSpec("")->empty());
  EXPECT_FALSE(ParseHashedSpec("A,,B").ok());
  EXPECT_FALSE(ParseHashedSpec("A,A").ok());
  EXPECT_FALSE(ParseHashedSpec(",").ok());
}

TEST(ParseEndpointsTest, ParsesAndRejects) {
  Result<std::vector<ShardEndpoint>> ok =
      ParseEndpoints("127.0.0.1:7001,localhost:7002");
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  ASSERT_EQ(ok->size(), 2u);
  EXPECT_EQ((*ok)[0].host, "127.0.0.1");
  EXPECT_EQ((*ok)[0].port, 7001);
  EXPECT_EQ((*ok)[1].host, "localhost");
  EXPECT_EQ((*ok)[1].port, 7002);
  EXPECT_FALSE(ParseEndpoints("").ok());
  EXPECT_FALSE(ParseEndpoints("noport").ok());
  EXPECT_FALSE(ParseEndpoints("h:0").ok());
  EXPECT_FALSE(ParseEndpoints("h:99999").ok());
  EXPECT_FALSE(ParseEndpoints("h:12x").ok());
  EXPECT_FALSE(ParseEndpoints(":7001").ok());
}

// ---------------------------------------------------------------------------
// Row / pattern routing

TEST(ShardRouting, EveryRowRoutesToExactlyOneShard) {
  AnnotatedDatabase full = MakeMaintenanceDatabase();
  PartitionMap map;
  map.num_shards = 3;
  map.hashed = {"Warnings"};
  Result<const Table*> warnings = full.database().GetTable("Warnings");
  ASSERT_TRUE(warnings.ok());
  // The per-shard slices partition the full table: every row lands on
  // exactly one shard (RouteRow is a function), and the union of the
  // slices is the full table (bag semantics).
  std::vector<AnnotatedDatabase> shards;
  for (uint32_t s = 0; s < 3; ++s) {
    shards.push_back(MakeMaintenanceDatabase());
    ASSERT_TRUE(PartitionDatabase(&shards.back(), map, s).ok());
  }
  Table merged((*warnings)->schema());
  size_t total = 0;
  for (uint32_t s = 0; s < 3; ++s) {
    Result<const Table*> slice = shards[s].database().GetTable("Warnings");
    ASSERT_TRUE(slice.ok());
    for (const Tuple& row : (*slice)->rows()) {
      EXPECT_EQ(RouteRow(map, row), s);
      merged.AppendUnchecked(row);
      ++total;
    }
  }
  EXPECT_EQ(total, (*warnings)->num_rows());
  EXPECT_TRUE(merged.BagEquals(**warnings));
}

TEST(ShardRouting, PatternStatementsPartitionBySignature) {
  AnnotatedDatabase full = MakeMaintenanceDatabase();
  PartitionMap map;
  map.num_shards = 3;
  map.hashed = {"Warnings"};
  size_t total = 0;
  std::vector<AnnotatedDatabase> shards;
  for (uint32_t s = 0; s < 3; ++s) {
    shards.push_back(MakeMaintenanceDatabase());
    ASSERT_TRUE(PartitionDatabase(&shards.back(), map, s).ok());
    for (const Pattern& p : shards[s].patterns("Warnings")) {
      EXPECT_EQ(RoutePattern(map, p), s);
      ++total;
    }
  }
  EXPECT_EQ(total, full.patterns("Warnings").size());
}

TEST(ShardRouting, PartitionDatabaseRejectsBadArguments) {
  AnnotatedDatabase adb = MakeMaintenanceDatabase();
  PartitionMap map;
  map.num_shards = 2;
  map.hashed = {"NoSuchTable"};
  EXPECT_EQ(PartitionDatabase(&adb, map, 0).code(),
            StatusCode::kInvalidArgument);
  map.hashed = {"Warnings"};
  EXPECT_EQ(PartitionDatabase(&adb, map, 2).code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Query routing analysis

TEST(AnalyzeQueryTest, RoutesByHashedOccurrences) {
  PartitionMap map;
  map.num_shards = 3;
  map.hashed = {"Warnings"};

  // Replicated-only: a single shard answers exactly.
  QueryRouting r = AnalyzeQuery(map, "SELECT * FROM Teams", false, false);
  EXPECT_EQ(r.route, QueryRoute::kSingleShard);
  EXPECT_LT(r.shard, 3u);

  // One hashed occurrence: scatter-gather.
  r = AnalyzeQuery(map, kQhwSql, false, false);
  EXPECT_EQ(r.route, QueryRoute::kBroadcast);

  // Self-join of a hashed table: result rows may pair tuples on
  // different shards — refused, not silently wrong.
  r = AnalyzeQuery(map,
                   "SELECT * FROM Warnings A JOIN Warnings B ON A.ID=B.ID",
                   false, false);
  EXPECT_EQ(r.route, QueryRoute::kUnsupported);

  // Instance-aware / zombie evaluation consults data tuples.
  r = AnalyzeQuery(map, "SELECT * FROM Warnings", true, false);
  EXPECT_EQ(r.route, QueryRoute::kUnsupported);
  r = AnalyzeQuery(map, "SELECT * FROM Warnings", false, true);
  EXPECT_EQ(r.route, QueryRoute::kUnsupported);

  // Parse errors forward to one shard for the identical error message.
  r = AnalyzeQuery(map, "garbage", false, false);
  EXPECT_EQ(r.route, QueryRoute::kSingleShard);

  // Everything replicated: always single-shard.
  PartitionMap replicated;
  replicated.num_shards = 3;
  r = AnalyzeQuery(replicated, kQhwSql, true, true);
  EXPECT_EQ(r.route, QueryRoute::kSingleShard);

  // Affinity is deterministic per SQL text.
  EXPECT_EQ(AnalyzeQuery(map, "SELECT * FROM Teams", false, false).shard,
            AnalyzeQuery(map, "SELECT * FROM Teams", false, false).shard);
}

TEST(AnalyzeQueryTest, RefusesShapesThatDoNotDistributeOverTheUnion) {
  PartitionMap map;
  map.num_shards = 3;
  map.hashed = {"Warnings"};

  // Aggregates over a hashed table: the coordinator's merge would
  // serve N partial results as final (COUNT(*) -> 3 partial counts).
  QueryRouting r =
      AnalyzeQuery(map, "SELECT COUNT(*) FROM Warnings", false, false);
  EXPECT_EQ(r.route, QueryRoute::kUnsupported);
  r = AnalyzeQuery(map,
                   "SELECT day, COUNT(*) AS n FROM Warnings GROUP BY day",
                   false, false);
  EXPECT_EQ(r.route, QueryRoute::kUnsupported);

  // LIMIT k would return up to N*k rows; ORDER BY is destroyed by the
  // canonical merge sort.
  r = AnalyzeQuery(map, "SELECT * FROM Warnings LIMIT 2", false, false);
  EXPECT_EQ(r.route, QueryRoute::kUnsupported);
  r = AnalyzeQuery(map, "SELECT * FROM Warnings ORDER BY week", false,
                   false);
  EXPECT_EQ(r.route, QueryRoute::kUnsupported);

  // The same shapes over replicated tables stay single-shard: one shard
  // holds those tables whole and answers exactly.
  r = AnalyzeQuery(map, "SELECT COUNT(*) FROM Teams", false, false);
  EXPECT_EQ(r.route, QueryRoute::kSingleShard);
  r = AnalyzeQuery(map,
                   "SELECT specialization, COUNT(*) AS n FROM Teams "
                   "GROUP BY specialization",
                   false, false);
  EXPECT_EQ(r.route, QueryRoute::kSingleShard);
  r = AnalyzeQuery(map, "SELECT * FROM Teams ORDER BY name LIMIT 2", false,
                   false);
  EXPECT_EQ(r.route, QueryRoute::kSingleShard);

  // A UNION mixing a hashed block with a replicated-only block would
  // duplicate the replicated block once per shard.
  r = AnalyzeQuery(map,
                   "SELECT day FROM Warnings UNION ALL SELECT name FROM Teams",
                   false, false);
  EXPECT_EQ(r.route, QueryRoute::kUnsupported);

  // Even with every block hashed exactly once the row slices stay
  // disjoint, but the union's completeness annotation is the pairwise
  // meet of the two blocks' statement sets — and with statements
  // partitioned by signature no shard holds both sides, so the merge
  // would silently drop annotations the single process derives.
  r = AnalyzeQuery(map,
                   "SELECT day FROM Warnings WHERE week=1 UNION ALL "
                   "SELECT day FROM Warnings WHERE week=2",
                   false, false);
  EXPECT_EQ(r.route, QueryRoute::kUnsupported);
}

// ---------------------------------------------------------------------------
// End-to-end: Coordinator over real shard Servers

/// Starts N shard Servers (each holding its PartitionDatabase slice of
/// the maintenance example) plus a Coordinator fronting them.
class DistTest : public ::testing::Test {
 protected:
  void TearDown() override {
    // Belt and braces: a test that throws mid-iteration (the fault
    // matrix) must not leak an armed failpoint into the next test.
    Failpoints::Global().Clear();
    if (coordinator_ != nullptr) coordinator_->Stop();
    for (auto& shard : shards_) shard->Stop();
  }

  void StartFleet(uint32_t num_shards,
                  std::set<std::string> hashed = {"Warnings"}) {
    CoordinatorOptions coptions;
    coptions.hashed_tables = hashed;
    // Loopback shards answer in milliseconds; a short RPC timeout keeps
    // the fault-matrix iterations (where an armed failpoint can wedge a
    // shard connection) from serializing 30-second hangs.
    coptions.shard_recv_timeout_millis = 2000;
    if (max_writer_states_ > 0) {
      coptions.max_writer_states = max_writer_states_;
    }
    for (uint32_t s = 0; s < num_shards; ++s) {
      AnnotatedDatabase adb = MakeMaintenanceDatabase();
      if (num_shards > 1) {
        PartitionMap map;
        map.num_shards = num_shards;
        map.hashed = hashed;
        ASSERT_TRUE(PartitionDatabase(&adb, map, s).ok());
      }
      ServerOptions soptions;
      soptions.shard_id = s;
      soptions.num_shards = num_shards;
      soptions.hashed_tables = num_shards > 1 ? hashed : decltype(hashed){};
      shards_.push_back(
          std::make_unique<Server>(std::move(adb), soptions));
      ASSERT_TRUE(shards_.back()->Start().ok());
      coptions.shards.push_back({"127.0.0.1", shards_.back()->port()});
    }
    if (num_shards <= 1) coptions.hashed_tables.clear();
    coordinator_ = std::make_unique<Coordinator>(std::move(coptions));
    ASSERT_TRUE(coordinator_->Start().ok());
  }

  Client ConnectOrDie() {
    Result<Client> client =
        Client::Connect("127.0.0.1", coordinator_->port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(*client);
  }

  /// The single-process reference, order-normalized: evaluate against
  /// the full database, sort rows and patterns, serialize canonically.
  static std::string ReferenceBytes(const std::string& sql) {
    AnnotatedDatabase adb = MakeMaintenanceDatabase();
    Result<ExprPtr> plan = PlanSql(sql, adb.database());
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    ExecContext ctx;
    Result<AnnotatedTable> answer =
        EvaluateAnnotated(**plan, adb, AnnotatedEvalOptions{}, ctx);
    EXPECT_TRUE(answer.ok()) << answer.status().ToString();
    answer->data.Sort();
    answer->patterns.Sort();
    return EncodeAnswer(*answer, 256).CanonicalBytes();
  }

  /// The distributed answer, order-normalized the same way.
  static std::string NormalizedBytes(ClientAnswer answer) {
    answer.table.data.Sort();
    answer.table.patterns.Sort();
    return EncodeAnswer(answer.table, 256).CanonicalBytes();
  }

  /// Hashed-table ingests must use the retract policy in distributed
  /// mode (the coordinator refuses reject-policy ones, §5).
  static ClientWriteOptions RetractPolicy() {
    ClientWriteOptions wopts;
    wopts.policy = IngestRequest::kPolicyRetractPatterns;
    return wopts;
  }

  std::vector<std::unique_ptr<Server>> shards_;
  std::unique_ptr<Coordinator> coordinator_;
  /// When nonzero, StartFleet caps the coordinator's writer-dedup map.
  size_t max_writer_states_ = 0;
};

/// The tentpole differential: distributed answers for N in {1, 2, 3}
/// shards are byte-identical (order-normalized) to the single-process
/// evaluation — rows and minimized pattern statements both.
TEST_F(DistTest, DifferentialAgainstSingleProcessForOneTwoThreeShards) {
  const std::vector<std::string> queries = {
      kQhwSql,
      "SELECT * FROM Warnings",
      "SELECT * FROM Warnings WHERE week=2",
      "SELECT * FROM Teams",
      "SELECT * FROM Maintenance M JOIN Teams T ON M.responsible=T.name",
      // UNION over replicated tables only: one shard holds both blocks
      // whole (statements included), so the meet is computed locally.
      "SELECT name FROM Teams UNION ALL "
      "SELECT responsible FROM Maintenance",
      // Aggregates/ORDER BY/LIMIT route single-shard when only
      // replicated tables are touched — the shard answers exactly.
      "SELECT specialization, COUNT(*) AS n FROM Teams "
      "GROUP BY specialization",
      "SELECT * FROM Teams ORDER BY name DESC LIMIT 3",
  };
  for (uint32_t n : {1u, 2u, 3u}) {
    shards_.clear();
    coordinator_.reset();
    StartFleet(n);
    Client client = ConnectOrDie();
    for (const std::string& sql : queries) {
      Result<ClientAnswer> answer = client.Query(sql);
      ASSERT_TRUE(answer.ok())
          << "n=" << n << " sql=" << sql << ": "
          << answer.status().ToString();
      EXPECT_FALSE(answer->done.degraded);
      EXPECT_EQ(NormalizedBytes(*std::move(answer)), ReferenceBytes(sql))
          << "n=" << n << " sql=" << sql;
    }
  }
}

TEST_F(DistTest, ParseErrorsMatchSingleProcessVerbatim) {
  StartFleet(3);
  Client client = ConnectOrDie();
  AnnotatedDatabase adb = MakeMaintenanceDatabase();
  for (const char* bad :
       {"SELECT * FROM NoSuchTable", "SELECT * FROM", "garbage"}) {
    Status in_process = PlanSql(bad, adb.database()).status();
    ASSERT_FALSE(in_process.ok()) << bad;
    Result<ClientAnswer> remote = client.Query(bad);
    ASSERT_FALSE(remote.ok()) << bad;
    EXPECT_EQ(remote.status().code(), in_process.code()) << bad;
    EXPECT_EQ(remote.status().message(), in_process.message()) << bad;
  }
}

TEST_F(DistTest, UnsupportedRoutesAreRefusedNotWrong) {
  StartFleet(2);
  Client client = ConnectOrDie();
  // Self-join of the hashed table.
  Result<ClientAnswer> answer = client.Query(
      "SELECT * FROM Warnings A JOIN Warnings B ON A.ID=B.ID");
  ASSERT_FALSE(answer.ok());
  EXPECT_EQ(answer.status().code(), StatusCode::kUnimplemented);
  // Instance-aware over the hashed table.
  ClientQueryOptions aware;
  aware.instance_aware = true;
  answer = client.Query("SELECT * FROM Warnings", aware);
  ASSERT_FALSE(answer.ok());
  EXPECT_EQ(answer.status().code(), StatusCode::kUnimplemented);
  // ... but instance-aware over replicated tables is served (routed to
  // one shard, which holds those tables whole).
  answer = client.Query("SELECT * FROM Teams", aware);
  EXPECT_TRUE(answer.ok()) << answer.status().ToString();
}

TEST_F(DistTest, NonDistributiveShapesOverHashedTablesAreRefused) {
  StartFleet(3);
  Client client = ConnectOrDie();
  // Each of these, merged naively, would be silently wrong: partial
  // per-shard counts, N*k rows under LIMIT, destroyed ORDER BY,
  // duplicated or annotation-stripped UNION blocks. The coordinator
  // must refuse
  // with kUnimplemented, never answer.
  for (const char* sql :
       {"SELECT COUNT(*) FROM Warnings",
        "SELECT day, COUNT(*) AS n FROM Warnings GROUP BY day",
        "SELECT * FROM Warnings LIMIT 2",
        "SELECT * FROM Warnings ORDER BY week",
        "SELECT day FROM Warnings UNION ALL SELECT name FROM Teams",
        "SELECT day FROM Warnings WHERE week=1 UNION ALL "
        "SELECT day FROM Warnings WHERE week=2"}) {
    Result<ClientAnswer> answer = client.Query(sql);
    ASSERT_FALSE(answer.ok()) << sql;
    EXPECT_EQ(answer.status().code(), StatusCode::kUnimplemented) << sql;
  }
}

TEST_F(DistTest, RejectPolicyIngestIntoHashedTableIsRefused) {
  StartFleet(2);
  Client client = ConnectOrDie();
  const std::vector<Tuple> row = {
      Tuple{Value("Mon"), Value(static_cast<int64_t>(90)), Value("rp"),
            Value("reject probe")}};
  // Default (reject) policy into a hashed table: the row's owner would
  // decide accept/reject from its local patterns while the violated
  // promise may live on another shard — refused, not silently unsound.
  Result<IngestResult> ack = client.Ingest("Warnings", row);
  ASSERT_FALSE(ack.ok());
  EXPECT_EQ(ack.status().code(), StatusCode::kUnimplemented);
  EXPECT_NE(ack.status().message().find("retract"), std::string::npos)
      << ack.status().ToString();
  // Retract policy is exact (every shard withdraws what it owns) and
  // reject policy against a replicated table applies identically on
  // every shard — both still served.
  EXPECT_TRUE(client.Ingest("Warnings", row, RetractPolicy()).ok());
  EXPECT_TRUE(client
                  .Ingest("Teams", {Tuple{Value("E"), Value("storage")}})
                  .ok());
}

TEST_F(DistTest, WritesFanOutAndReadBackDistributed) {
  StartFleet(3);
  Client client = ConnectOrDie();
  // Rows spread across shards: several distinct tuples, then a query
  // that must see all of them regardless of placement.
  std::vector<Tuple> rows;
  for (int i = 0; i < 8; ++i) {
    rows.push_back(Tuple{Value("d" + std::to_string(i)),
                         Value(static_cast<int64_t>(40 + i)),
                         Value("id" + std::to_string(i)), Value("fanout")});
  }
  Result<IngestResult> ack = client.Ingest("Warnings", rows, RetractPolicy());
  ASSERT_TRUE(ack.ok()) << ack.status().ToString();
  // Hashed-table acks sum the per-shard counters; every row was applied
  // on exactly its owner, so the totals match a single server's.
  EXPECT_EQ(ack->rows_ingested, 8u);
  EXPECT_EQ(ack->rows_rejected, 0u);
  Result<ClientAnswer> answer =
      client.Query("SELECT * FROM Warnings WHERE week=44");
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_EQ(answer->table.data.num_rows(), 1u);

  // Punctuation statements land on their signature's owner and show up
  // in distributed answers.
  Result<IngestResult> punct =
      client.Punctuate("Warnings", {{"*", "47", "*", "*"}});
  ASSERT_TRUE(punct.ok()) << punct.status().ToString();
  EXPECT_EQ(punct->punctuations, 1u);
  answer = client.Query("SELECT * FROM Warnings WHERE week=47");
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_GE(answer->table.patterns.size(), 1u);
}

TEST_F(DistTest, CoordinatorDedupsRetriedWrites) {
  StartFleet(2);
  Client client = ConnectOrDie();
  ClientWriteOptions pinned = RetractPolicy();
  pinned.writer_id = 1234;
  pinned.seq = 1;
  std::vector<Tuple> row = {
      Tuple{Value("Sat"), Value(static_cast<int64_t>(60)), Value("dup"),
            Value("dedup probe")}};
  Result<IngestResult> first = client.Ingest("Warnings", row, pinned);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_FALSE(first->duplicate);
  EXPECT_EQ(first->rows_ingested, 1u);
  // Identical (writer_id, seq): served from the coordinator's dedup
  // table with the original counters, applied nowhere.
  Result<IngestResult> second = client.Ingest("Warnings", row, pinned);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_TRUE(second->duplicate);
  EXPECT_EQ(second->rows_ingested, 1u);
  Result<ClientAnswer> answer =
      client.Query("SELECT * FROM Warnings WHERE week=60");
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer->table.data.num_rows(), 1u);
}

TEST_F(DistTest, WriterDedupStateIsBoundedAndEvictionKeepsExactlyOnce) {
  // Cap the coordinator's dedup map at 2 writer identities, then write
  // with 4 distinct writers: the oldest entries are evicted, and a
  // retry of an evicted (writer_id, seq) re-broadcasts — where every
  // shard's own dedup still applies it exactly once.
  max_writer_states_ = 2;
  StartFleet(2);
  Client client = ConnectOrDie();
  for (uint64_t w = 1; w <= 4; ++w) {
    ClientWriteOptions pinned = RetractPolicy();
    pinned.writer_id = w;
    pinned.seq = 1;
    Result<IngestResult> ack = client.Ingest(
        "Warnings",
        {Tuple{Value("Sat"), Value(static_cast<int64_t>(90 + w)),
               Value("w" + std::to_string(w)), Value("evict probe")}},
        pinned);
    ASSERT_TRUE(ack.ok()) << ack.status().ToString();
    EXPECT_FALSE(ack->duplicate);
  }
  // Writer 1 was evicted from the coordinator's front-side map, so this
  // retry is re-broadcast — but no row is applied twice.
  ClientWriteOptions pinned = RetractPolicy();
  pinned.writer_id = 1;
  pinned.seq = 1;
  Result<IngestResult> retry = client.Ingest(
      "Warnings",
      {Tuple{Value("Sat"), Value(static_cast<int64_t>(91)), Value("w1"),
             Value("evict probe")}},
      pinned);
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  Result<ClientAnswer> answer =
      client.Query("SELECT * FROM Warnings WHERE week=91");
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_EQ(answer->table.data.num_rows(), 1u);
  // The cap is observable: the writer_states gauge never exceeds it.
  EXPECT_LE(coordinator_->metrics().GaugeValue("writer_states"), 2);
}

TEST_F(DistTest, LostShardDegradesToUnavailableNeverWrongCompleteness) {
  StartFleet(3);
  Client client = ConnectOrDie();
  Result<ClientAnswer> before = client.Query(kQhwSql);
  ASSERT_TRUE(before.ok()) << before.status().ToString();

  // Kill shard 1. A broadcast over the hashed table must now refuse
  // loudly: a partial union could omit rows AND claim completeness
  // promises the dead shard can no longer veto.
  shards_[1]->Stop();
  Client fresh = ConnectOrDie();
  Result<ClientAnswer> after = fresh.Query(kQhwSql);
  ASSERT_FALSE(after.ok());
  EXPECT_EQ(after.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(after.status().message().find("shard 1"), std::string::npos)
      << after.status().ToString();

  // Writes to the hashed table equally refuse (the dead shard may own
  // some of the rows).
  Result<IngestResult> ack = fresh.Ingest(
      "Warnings", {Tuple{Value("Mon"), Value(static_cast<int64_t>(70)),
                         Value("x"), Value("y")}},
      RetractPolicy());
  EXPECT_FALSE(ack.ok());
  EXPECT_EQ(ack.status().code(), StatusCode::kUnavailable);
}

TEST_F(DistTest, ShardInfoAggregatesTheFleet) {
  StartFleet(3);
  Client client = ConnectOrDie();
  Result<ShardInfo> info = client.GetShardInfo();
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->shard_id, ShardInfo::kCoordinatorShardId);
  EXPECT_EQ(info->num_shards, 3u);
  bool saw_hashed = false;
  for (const ShardTableInfo& table : info->tables) {
    if (table.table == "Warnings") {
      EXPECT_TRUE(table.hashed);
      saw_hashed = true;
    } else {
      EXPECT_FALSE(table.hashed) << table.table;
    }
  }
  EXPECT_TRUE(saw_hashed);

  // Epochs are fleet-wide sums: a write through the coordinator bumps
  // the owner shard's epoch, so the sum strictly increases — the
  // convergence signal tools/ci.sh dist polls after a shard restart.
  uint64_t warnings_epoch = 0;
  for (const ShardTableInfo& table : info->tables) {
    if (table.table == "Warnings") warnings_epoch = table.epoch;
  }
  ASSERT_TRUE(client
                  .Ingest("Warnings",
                          {Tuple{Value("Tue"), Value(static_cast<int64_t>(80)),
                                 Value("e"), Value("epoch probe")}},
                          RetractPolicy())
                  .ok());
  info = client.GetShardInfo();
  ASSERT_TRUE(info.ok());
  for (const ShardTableInfo& table : info->tables) {
    if (table.table == "Warnings") {
      EXPECT_GT(table.epoch, warnings_epoch);
    }
  }
}

TEST_F(DistTest, CoordinatorRefusesMisconfiguredFleet) {
  // A shard started with the wrong --num-shards is caught by the
  // SHARD_INFO handshake, not by silently wrong routing.
  AnnotatedDatabase adb = MakeMaintenanceDatabase();
  ServerOptions soptions;
  soptions.shard_id = 0;
  soptions.num_shards = 5;  // coordinator expects 2
  shards_.push_back(std::make_unique<Server>(std::move(adb), soptions));
  ASSERT_TRUE(shards_.back()->Start().ok());
  AnnotatedDatabase adb1 = MakeMaintenanceDatabase();
  ServerOptions soptions1;
  soptions1.shard_id = 1;
  soptions1.num_shards = 2;
  shards_.push_back(std::make_unique<Server>(std::move(adb1), soptions1));
  ASSERT_TRUE(shards_.back()->Start().ok());

  CoordinatorOptions coptions;
  coptions.shards = {{"127.0.0.1", shards_[0]->port()},
                     {"127.0.0.1", shards_[1]->port()}};
  coptions.hashed_tables = {"Warnings"};
  coordinator_ = std::make_unique<Coordinator>(std::move(coptions));
  ASSERT_TRUE(coordinator_->Start().ok());
  Client client = ConnectOrDie();
  Result<ClientAnswer> answer = client.Query(kQhwSql);
  ASSERT_FALSE(answer.ok());
  EXPECT_EQ(answer.status().code(), StatusCode::kInternal);
  EXPECT_NE(answer.status().message().find("reports shard"),
            std::string::npos)
      << answer.status().ToString();
}

TEST_F(DistTest, PingStatsAndCheckpointWork) {
  StartFleet(2);
  Client client = ConnectOrDie();
  EXPECT_TRUE(client.Ping().ok());
  Result<std::string> stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats->find("requests_total"), std::string::npos);
  // No WAL on the in-process shards: checkpoint fails cleanly through
  // the coordinator with the shard's own verdict.
  Result<CheckpointResult> ckpt = client.Checkpoint();
  EXPECT_FALSE(ckpt.ok());
  EXPECT_EQ(ckpt.status().code(), StatusCode::kUnavailable);
}

// ---------------------------------------------------------------------------
// Fleet observability: STATS aggregation, profile merge, tracing

TEST_F(DistTest, FleetStatsAreTheSumOfTheShards) {
  StartFleet(3);
  Client client = ConnectOrDie();
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(client.Query(kQhwSql).ok());
  }
  Result<std::string> stats = client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  Result<JsonValue> doc = ParseJson(*stats);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString() << "\n" << *stats;
  const JsonValue* fleet = doc->Find("fleet");
  const JsonValue* shards = doc->Find("shards");
  const JsonValue* coordinator = doc->Find("coordinator");
  ASSERT_NE(fleet, nullptr) << *stats;
  ASSERT_NE(shards, nullptr) << *stats;
  ASSERT_NE(coordinator, nullptr) << *stats;
  ASSERT_TRUE(shards->is_array());
  ASSERT_EQ(shards->items().size(), 3u);

  // Every fleet counter is exactly the sum of the per-shard values of
  // the same name. The "shards" array is the verbatim input the merge
  // consumed, so the payload is self-checking end to end.
  const JsonValue* fleet_counters = fleet->Find("counters");
  ASSERT_NE(fleet_counters, nullptr);
  ASSERT_FALSE(fleet_counters->members().empty());
  for (const auto& [name, value] : fleet_counters->members()) {
    uint64_t sum = 0;
    for (const JsonValue& shard : shards->items()) {
      const JsonValue* counters = shard.Find("counters");
      ASSERT_NE(counters, nullptr);
      const JsonValue* entry = counters->Find(name);
      if (entry == nullptr) continue;
      Result<uint64_t> v = entry->AsUint64();
      ASSERT_TRUE(v.ok()) << name;
      sum += *v;
    }
    Result<uint64_t> merged = value.AsUint64();
    ASSERT_TRUE(merged.ok()) << name;
    EXPECT_EQ(*merged, sum) << name;
  }
  const JsonValue* requests = fleet_counters->Find("requests_total");
  ASSERT_NE(requests, nullptr);
  Result<uint64_t> requests_total = requests->AsUint64();
  ASSERT_TRUE(requests_total.ok());
  // Each of the 3 broadcast queries fanned out to all 3 shards.
  EXPECT_GE(*requests_total, 9u);

  // Histograms merge bucket-by-bucket: each fleet bucket is the sum of
  // the shards' corresponding buckets, and sum_micros adds exactly.
  const JsonValue* fleet_hists = fleet->Find("histograms");
  ASSERT_NE(fleet_hists, nullptr);
  ASSERT_FALSE(fleet_hists->members().empty());
  for (const auto& [name, hist] : fleet_hists->members()) {
    const JsonValue* fleet_buckets = hist.Find("buckets");
    ASSERT_NE(fleet_buckets, nullptr) << name;
    const size_t num_buckets = fleet_buckets->items().size();
    std::vector<uint64_t> sums(num_buckets, 0);
    uint64_t micros_sum = 0;
    for (const JsonValue& shard : shards->items()) {
      const JsonValue* hists = shard.Find("histograms");
      ASSERT_NE(hists, nullptr);
      const JsonValue* shard_hist = hists->Find(name);
      if (shard_hist == nullptr) continue;
      const JsonValue* buckets = shard_hist->Find("buckets");
      ASSERT_NE(buckets, nullptr) << name;
      ASSERT_EQ(buckets->items().size(), num_buckets) << name;
      for (size_t b = 0; b < num_buckets; ++b) {
        Result<uint64_t> v = buckets->items()[b].AsUint64();
        ASSERT_TRUE(v.ok()) << name;
        sums[b] += *v;
      }
      const JsonValue* micros = shard_hist->Find("sum_micros");
      ASSERT_NE(micros, nullptr) << name;
      Result<uint64_t> m = micros->AsUint64();
      ASSERT_TRUE(m.ok()) << name;
      micros_sum += *m;
    }
    for (size_t b = 0; b < num_buckets; ++b) {
      Result<uint64_t> v = fleet_buckets->items()[b].AsUint64();
      ASSERT_TRUE(v.ok()) << name;
      EXPECT_EQ(*v, sums[b]) << name << " bucket " << b;
    }
    const JsonValue* fleet_micros = hist.Find("sum_micros");
    ASSERT_NE(fleet_micros, nullptr) << name;
    Result<uint64_t> fm = fleet_micros->AsUint64();
    ASSERT_TRUE(fm.ok()) << name;
    EXPECT_EQ(*fm, micros_sum) << name;
  }

  // Coordinator-local metrics stay under their own key, not mixed into
  // the fleet sums.
  const JsonValue* coord_counters = coordinator->Find("counters");
  ASSERT_NE(coord_counters, nullptr);
  const JsonValue* fleet_stats = coord_counters->Find("fleet_stats_total");
  ASSERT_NE(fleet_stats, nullptr) << *stats;
  Result<uint64_t> fleet_stats_total = fleet_stats->AsUint64();
  ASSERT_TRUE(fleet_stats_total.ok());
  EXPECT_GE(*fleet_stats_total, 1u);
  EXPECT_EQ(fleet_counters->Find("fleet_stats_total"), nullptr)
      << "coordinator-local counter leaked into the fleet aggregate";
}

TEST_F(DistTest, FleetProfileMergesEveryShardsProfile) {
  StartFleet(3);
  Client client = ConnectOrDie();
  ClientQueryOptions options;
  options.profile = true;
  Result<ClientAnswer> answer = client.Query(kQhwSql, options);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  ASSERT_FALSE(answer->profile.empty());
  Result<JsonValue> doc = ParseJson(answer->profile);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString() << "\n"
                        << answer->profile;
  const JsonValue* distributed = doc->Find("distributed");
  ASSERT_NE(distributed, nullptr) << answer->profile;
  EXPECT_TRUE(distributed->is_bool() && distributed->bool_value());
  const JsonValue* route = doc->Find("route");
  ASSERT_NE(route, nullptr);
  EXPECT_EQ(route->string_value(), "broadcast");
  const JsonValue* shards = doc->Find("shards");
  ASSERT_NE(shards, nullptr);
  Result<uint64_t> num_shards = shards->AsUint64();
  ASSERT_TRUE(num_shards.ok());
  EXPECT_EQ(*num_shards, 3u);
  const JsonValue* shard_millis = doc->Find("shard_millis");
  ASSERT_NE(shard_millis, nullptr);
  ASSERT_TRUE(shard_millis->is_array());
  EXPECT_EQ(shard_millis->items().size(), 3u);

  // Every shard contributed its full EXPLAIN ANALYZE tree, and the
  // operator work done across the fleet is bounded by the end-to-end
  // fleet time (scatter round trips + coordinator merge).
  const JsonValue* per_shard = doc->Find("per_shard");
  ASSERT_NE(per_shard, nullptr) << answer->profile;
  ASSERT_TRUE(per_shard->is_array());
  ASSERT_EQ(per_shard->items().size(), 3u);
  const JsonValue* fleet_total = doc->Find("fleet_micros_total");
  ASSERT_NE(fleet_total, nullptr);
  Result<double> total_micros = fleet_total->AsDouble();
  ASSERT_TRUE(total_micros.ok());
  double operator_sum = 0;
  for (const JsonValue& shard : per_shard->items()) {
    ASSERT_TRUE(shard.is_object())
        << "a shard profile is missing from the fleet merge: "
        << answer->profile;
    EXPECT_NE(shard.Find("operators"), nullptr);
    const JsonValue* op_micros = shard.Find("operator_micros");
    ASSERT_NE(op_micros, nullptr);
    Result<double> micros = op_micros->AsDouble();
    ASSERT_TRUE(micros.ok());
    operator_sum += *micros;
  }
  EXPECT_LE(operator_sum, *total_micros) << answer->profile;

  // The same query without the flag stays profile-free (the fleet
  // merge must not force profiling onto the shards).
  Result<ClientAnswer> plain = client.Query(kQhwSql);
  ASSERT_TRUE(plain.ok());
  EXPECT_TRUE(plain->profile.empty());
}

/// Distributed counterpart of trace_test's SpanBalanceSurvivesTheFaultMatrix:
/// the coordinator's dist.* spans (and the shard servers' spans — the whole
/// fleet shares this process's tracer) must close exactly once no matter
/// where a failpoint errors or throws mid-scatter.
TEST_F(DistTest, DistributedSpanBalanceSurvivesTheFaultMatrix) {
  const bool was_enabled = Tracer::enabled();
  Failpoints::Global().Clear();
  Tracer::Global().SetEnabled(true);
  Tracer::Global().Reset();
  StartFleet(3);

  // Server-side spans can outlive the client's reply by a moment (the
  // flush span closes after the bytes are out), so balance is
  // "eventually zero": poll briefly before asserting.
  const auto settles_to_zero = [] {
    for (int i = 0; i < 400; ++i) {
      if (Tracer::Global().OpenSpanCount() == 0) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return Tracer::Global().OpenSpanCount() == 0;
  };
  {
    Client warm = ConnectOrDie();
    ASSERT_TRUE(warm.Query(kQhwSql).ok());
  }
  ASSERT_TRUE(settles_to_zero());

  for (const std::string& site : Failpoints::AllSites()) {
    for (int action = 0; action < 2; ++action) {
      Failpoints::Global().Activate(
          site, action == 0 ? FailpointSpec::Error(StatusCode::kUnavailable)
                            : FailpointSpec::Throw());
      try {
        // Reconnect per iteration: an armed server.accept/read/write
        // site may kill the previous connection. The failpoints are
        // process-global, so client-side socket sites fire on this
        // thread and throw out of Query — swallow them; the status is
        // the fault matrix's concern, only the span balance matters.
        // The recv timeout outlives the coordinator's 2s shard RPC
        // timeout, so a wedged fan-out resolves before the client does.
        ClientOptions copts;
        copts.recv_timeout_millis = 4000;
        Result<Client> client =
            Client::Connect("127.0.0.1", coordinator_->port(), copts);
        if (client.ok()) static_cast<void>(client->Query(kQhwSql));
      } catch (const FailpointError&) {
      }
      Failpoints::Global().Clear();
      EXPECT_TRUE(settles_to_zero())
          << site << (action == 0 ? " error" : " throw") << ": "
          << Tracer::Global().OpenSpanCount() << " span(s) still open";
    }
  }

  Tracer::Global().Reset();
  Tracer::Global().SetEnabled(was_enabled);
}

/// The distributed evaluation is the serial evaluation plus a dist.*
/// coordination layer — the shard-side work emits the same span
/// vocabulary the single process does, nothing renamed, nothing lost.
TEST_F(DistTest, DistributedSpanNamesMatchSerialModuloDistSpans) {
  const bool was_enabled = Tracer::enabled();
  Tracer::Global().SetEnabled(true);

  // Minimization picks its strategy (all_at_once / incremental / ...)
  // from local input size, which legitimately differs between a full
  // table and a shard slice — fold the variants into one name.
  const auto normalized = [](const TraceEvent& event) {
    std::string name = event.name;
    if (name.rfind("minimize", 0) == 0) return std::string("minimize");
    return name;
  };

  // Distributed: 3 shards + coordinator, one broadcast query, then a
  // full stop so every server thread has flushed its spans.
  Tracer::Global().Reset();
  StartFleet(3);
  {
    Client client = ConnectOrDie();
    ASSERT_TRUE(client.Query(kQhwSql).ok());
  }
  coordinator_->Stop();
  for (auto& shard : shards_) shard->Stop();
  std::set<std::string> dist_names;
  bool saw_scatter = false;
  for (const TraceEvent& event : Tracer::Global().SnapshotEvents()) {
    const std::string name = normalized(event);
    if (name == "dist.scatter") saw_scatter = true;
    if (name.rfind("dist.", 0) != 0) dist_names.insert(name);
  }
  EXPECT_TRUE(saw_scatter);

  // Serial: one plain Server, the same query, the same window.
  Tracer::Global().Reset();
  Server server(MakeMaintenanceDatabase(), ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  {
    Result<Client> client = Client::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    ASSERT_TRUE(client->Query(kQhwSql).ok());
  }
  server.Stop();
  std::set<std::string> serial_names;
  for (const TraceEvent& event : Tracer::Global().SnapshotEvents()) {
    serial_names.insert(normalized(event));
  }

  Tracer::Global().Reset();
  Tracer::Global().SetEnabled(was_enabled);
  EXPECT_EQ(dist_names, serial_names);
}

}  // namespace
}  // namespace pcdb
