#include <gtest/gtest.h>

#include "pattern/minimize.h"
#include "pattern/promotion.h"
#include "pattern/zombie.h"

namespace pcdb {
namespace {

Pattern P(const std::vector<std::string>& fields) {
  std::vector<Pattern::Cell> cells;
  for (const auto& f : fields) {
    if (f == "*") {
      cells.push_back(Pattern::Wildcard());
    } else {
      cells.push_back(Value(f));
    }
  }
  return Pattern(std::move(cells));
}

TEST(ZombieSelectTest, OnePatternPerOtherDomainValue) {
  // Example 8: after σ_{spec=hardware}(Teams), the result is trivially
  // complete for software and network teams.
  std::vector<Value> domain = {Value("hardware"), Value("software"),
                               Value("network")};
  PatternSet zombies =
      ZombiesForSelectConst(2, 1, Value("hardware"), domain);
  PatternSet expected;
  expected.Add(P({"*", "software"}));
  expected.Add(P({"*", "network"}));
  EXPECT_TRUE(zombies.SetEquals(expected)) << zombies.ToString();
}

TEST(ZombieSelectTest, SelectedValueExcluded) {
  std::vector<Value> domain = {Value("x")};
  EXPECT_TRUE(ZombiesForSelectConst(1, 0, Value("x"), domain).empty());
}

TEST(ZombieJoinTest, AbsentDomainValuesBecomeZombies) {
  // Side patterns (∗,∗) over data where the join column only holds A, B;
  // domain {A,B,C,D} → zombies for C and D.
  PatternSet side;
  side.Add(P({"*", "*"}));
  Table data(Schema({{"name", ValueType::kString},
                     {"spec", ValueType::kString}}));
  ASSERT_TRUE(data.Append({"A", "hw"}).ok());
  ASSERT_TRUE(data.Append({"B", "hw"}).ok());
  std::vector<Value> domain = {Value("A"), Value("B"), Value("C"),
                               Value("D")};
  PatternSet zombies = ZombiesForJoin(side, 0, data, domain, 3,
                                      /*side_is_left=*/true);
  PatternSet expected;
  expected.Add(P({"C", "*", "*", "*", "*"}));
  expected.Add(P({"D", "*", "*", "*", "*"}));
  EXPECT_TRUE(zombies.SetEquals(expected)) << zombies.ToString();
}

TEST(ZombieJoinTest, RightSidePrependsPadding) {
  PatternSet side;
  side.Add(P({"*"}));
  Table data(Schema({{"k", ValueType::kString}}));
  std::vector<Value> domain = {Value("x")};
  PatternSet zombies = ZombiesForJoin(side, 0, data, domain, 2,
                                      /*side_is_left=*/false);
  ASSERT_EQ(zombies.size(), 1u);
  EXPECT_EQ(zombies[0], P({"*", "*", "x"}));
}

TEST(ZombieJoinTest, PatternsWithConstantAtJoinAreSkipped) {
  PatternSet side;
  side.Add(P({"A", "*"}));  // constant at the join attribute
  Table data(Schema({{"name", ValueType::kString},
                     {"spec", ValueType::kString}}));
  std::vector<Value> domain = {Value("A"), Value("B")};
  EXPECT_TRUE(
      ZombiesForJoin(side, 0, data, domain, 1, true).empty());
}

TEST(ZombieJoinTest, PresentValuesAreNotZombies) {
  PatternSet side;
  side.Add(P({"*"}));
  Table data(Schema({{"k", ValueType::kString}}));
  ASSERT_TRUE(data.Append({"x"}).ok());
  std::vector<Value> domain = {Value("x"), Value("y")};
  PatternSet zombies = ZombiesForJoin(side, 0, data, domain, 0, true);
  ASSERT_EQ(zombies.size(), 1u);
  EXPECT_EQ(zombies[0], P({"y"}));
}

TEST(ZombieJoinTest, Example10ThreeWayJoinInference) {
  // Appendix E's motivating case: M ⋈ σ_spec=hw(T) can never contain
  // rows for teams C or D (zombies). A later join with a complete
  // Best_teams = {A, C, D} table can then promote A, C, D together to
  // the fully general pattern — impossible without the zombies.
  //
  // Middle result patterns: the regular (∗,A,…) / (∗,B,…) outputs plus
  // zombies for C and D at the M.responsible position.
  PatternSet middle;
  middle.Add(P({"*", "A", "*", "*", "*"}));
  middle.Add(P({"*", "B", "*", "*", "*"}));
  // Zombies added for responsible ∉ {A, B}:
  middle.Add(P({"*", "C", "*", "*", "*"}));
  middle.Add(P({"*", "D", "*", "*", "*"}));

  Table middle_data(Schema({{"M.ID", ValueType::kString},
                            {"M.responsible", ValueType::kString},
                            {"M.reason", ValueType::kString},
                            {"T.name", ValueType::kString},
                            {"T.spec", ValueType::kString}}));
  ASSERT_TRUE(
      middle_data.Append({"tw37", "A", "disk", "A", "hw"}).ok());

  PatternSet best;
  best.Add(P({"*"}));
  Table best_data(Schema({{"team", ValueType::kString}}));
  ASSERT_TRUE(best_data.Append({"A"}).ok());
  ASSERT_TRUE(best_data.Append({"C"}).ok());
  ASSERT_TRUE(best_data.Append({"D"}).ok());

  // Join middle.responsible = best.team with promotion.
  PatternSet with_zombies = Minimize(InstanceAwarePatternJoin(
      middle, 1, middle_data, best, 0, best_data));
  EXPECT_TRUE(with_zombies.Contains(Pattern::AllWildcards(6)))
      << with_zombies.ToString();

  // Without the zombie patterns, no fully general pattern is derivable.
  PatternSet middle_no_zombies;
  middle_no_zombies.Add(P({"*", "A", "*", "*", "*"}));
  middle_no_zombies.Add(P({"*", "B", "*", "*", "*"}));
  PatternSet without = Minimize(InstanceAwarePatternJoin(
      middle_no_zombies, 1, middle_data, best, 0, best_data));
  EXPECT_FALSE(without.Contains(Pattern::AllWildcards(6)))
      << without.ToString();
}

}  // namespace
}  // namespace pcdb
