#include <gtest/gtest.h>

#include <unordered_set>

#include "common/random.h"
#include "common/string_util.h"
#include "pattern/minimize.h"
#include "relational/evaluator.h"
#include "sql/planner.h"
#include "workloads/drop_simulation.h"
#include "workloads/network_elements.h"
#include "workloads/tpch.h"
#include "workloads/wikipedia.h"

namespace pcdb {
namespace {

TEST(NetworkElementsTest, MatchesPublishedShape) {
  NetworkElementsConfig config;
  config.num_rows = 20000;
  NetworkElementsData data = GenerateNetworkElements(config);
  EXPECT_EQ(data.table.num_rows(), 20000u);
  ASSERT_EQ(data.dimension_columns.size(), 6u);
  ASSERT_EQ(data.dimension_domains.size(), 6u);
  // The published domain cardinalities: 6, 3, 7, 6, 13, 53.
  const size_t expected[] = {6, 3, 7, 6, 13, 53};
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(data.dimension_domains[i].size(), expected[i]);
    // All realized values come from the declared domain.
    std::unordered_set<Value, ValueHash> domain(
        data.dimension_domains[i].begin(), data.dimension_domains[i].end());
    for (const Tuple& t : data.table.rows()) {
      ASSERT_TRUE(domain.count(t[data.dimension_columns[i]]) > 0);
    }
  }
}

TEST(NetworkElementsTest, CombinationCountNearTarget) {
  NetworkElementsConfig config;
  config.num_rows = 60000;
  NetworkElementsData data = GenerateNetworkElements(config);
  std::unordered_set<Tuple, TupleHash> combos;
  for (size_t r = 0; r < data.table.num_rows(); ++r) {
    combos.insert(DimensionCombo(data, r));
  }
  // Not every generated combination need be sampled, but the realized
  // count must be far below the 1.19M product and near the target.
  EXPECT_GT(combos.size(), config.target_combos / 3);
  EXPECT_LE(combos.size(), config.target_combos);
}

TEST(NetworkElementsTest, FrequenciesAreSkewed) {
  NetworkElementsData data = GenerateNetworkElements({});
  std::unordered_map<Tuple, size_t, TupleHash> counts;
  for (size_t r = 0; r < data.table.num_rows(); ++r) {
    counts[DimensionCombo(data, r)] += 1;
  }
  size_t max_count = 0;
  for (const auto& [combo, count] : counts) {
    max_count = std::max(max_count, count);
  }
  // Exponential skew: the hottest combination holds far more than the
  // uniform share of rows.
  EXPECT_GT(max_count, 5 * data.table.num_rows() / counts.size());
}

TEST(NetworkElementsTest, StateDeterminesRegion) {
  NetworkElementsData data = GenerateNetworkElements({});
  std::unordered_map<Value, Value, ValueHash> region_of;
  for (const Tuple& t : data.table.rows()) {
    auto [it, inserted] = region_of.emplace(t[6], t[1]);
    ASSERT_EQ(it->second, t[1]) << "state " << t[6].ToString()
                                << " maps to two regions";
  }
}

TEST(NetworkElementsTest, NamesCarryPrefixes) {
  NetworkElementsData data = GenerateNetworkElements({});
  EXPECT_GE(data.name_prefixes.size(), 5u);
  size_t matched = 0;
  for (const Tuple& t : data.table.rows()) {
    for (const std::string& prefix : data.name_prefixes) {
      if (StartsWith(t[0].str(), prefix)) {
        ++matched;
        break;
      }
    }
  }
  EXPECT_EQ(matched, data.table.num_rows());
}

TEST(NetworkElementsTest, DeterministicBySeed) {
  NetworkElementsConfig config;
  config.num_rows = 500;
  NetworkElementsData a = GenerateNetworkElements(config);
  NetworkElementsData b = GenerateNetworkElements(config);
  EXPECT_TRUE(a.table.BagEquals(b.table));
}

TEST(TpchTest, UniformUncorrelatedDimensions) {
  TpchConfig config;
  config.num_rows = 50000;
  TpchData data = GenerateLineitem(config);
  EXPECT_EQ(data.table.num_rows(), 50000u);
  ASSERT_EQ(data.dimension_columns.size(), 7u);
  // Cardinalities 3, 2, 50, 11, 9, 7, 4.
  const size_t expected[] = {3, 2, 50, 11, 9, 7, 4};
  for (size_t i = 0; i < 7; ++i) {
    EXPECT_EQ(data.dimension_domains[i].size(), expected[i]);
    EXPECT_EQ(data.table.DistinctValues(data.dimension_columns[i]).size(),
              expected[i]);
  }
  // Roughly uniform: returnflag values within 10% of each other.
  std::unordered_map<Value, size_t, ValueHash> counts;
  for (const Tuple& t : data.table.rows()) counts[t[1]] += 1;
  for (const auto& [v, count] : counts) {
    EXPECT_NEAR(static_cast<double>(count), 50000.0 / 3, 50000.0 / 30);
  }
}

TEST(DropSimulatorTest, StartsFullyComplete) {
  Table t(Schema({{"a", ValueType::kString}, {"b", ValueType::kString}}));
  ASSERT_TRUE(t.Append({"x", "y"}).ok());
  DropSimulator sim(t, {0, 1}, {{Value("x"), Value("z")},
                                {Value("y"), Value("w")}});
  EXPECT_EQ(sim.num_patterns(), 1u);
  EXPECT_EQ(sim.patterns()[0], Pattern::AllWildcards(2));
}

TEST(DropSimulatorTest, DropSpecializesPatterns) {
  Table t(Schema({{"a", ValueType::kString}, {"b", ValueType::kString}}));
  ASSERT_TRUE(t.Append({"x", "y"}).ok());
  ASSERT_TRUE(t.Append({"z", "w"}).ok());
  DropSimulator sim(t, {0, 1}, {{Value("x"), Value("z")},
                                {Value("y"), Value("w")}});
  sim.DropRow(0);  // drops combo (x, y)
  // (∗,∗) violated; most general survivors: (z,∗) and (∗,w).
  PatternSet expected;
  expected.Add(
      Pattern(std::vector<Pattern::Cell>{Value("z"), Pattern::Wildcard()}));
  expected.Add(
      Pattern(std::vector<Pattern::Cell>{Pattern::Wildcard(), Value("w")}));
  EXPECT_TRUE(sim.patterns().SetEquals(expected))
      << sim.patterns().ToString();
  // The surviving patterns hold over the remaining data: they do not
  // subsume the dropped combination.
  for (const Pattern& p : sim.patterns()) {
    EXPECT_FALSE(p.SubsumesTuple({Value("x"), Value("y")}));
  }
}

TEST(DropSimulatorTest, RepeatedComboDropIsNoOp) {
  Table t(Schema({{"a", ValueType::kString}}));
  ASSERT_TRUE(t.Append({"x"}).ok());
  ASSERT_TRUE(t.Append({"x"}).ok());
  DropSimulator sim(t, {0}, {{Value("x"), Value("y"), Value("z")}});
  size_t after_first = sim.DropRow(0);
  size_t after_second = sim.DropRow(1);  // same combo
  EXPECT_EQ(after_first, after_second);
  EXPECT_EQ(sim.num_dropped_rows(), 2u);
  EXPECT_EQ(sim.num_dropped_combos(), 1u);
}

TEST(DropSimulatorTest, DroppingSameRowTwiceIsNoOp) {
  Table t(Schema({{"a", ValueType::kString}}));
  ASSERT_TRUE(t.Append({"x"}).ok());
  DropSimulator sim(t, {0}, {{Value("x"), Value("y")}});
  sim.DropRow(0);
  size_t patterns = sim.num_patterns();
  sim.DropRow(0);
  EXPECT_EQ(sim.num_patterns(), patterns);
  EXPECT_EQ(sim.num_dropped_rows(), 1u);
}

TEST(DropSimulatorTest, PatternsStayMinimalAndSound) {
  // Property: after any drop sequence, the maintained set is minimal,
  // none of its patterns subsumes a dropped combination, and every
  // never-dropped combination is still covered... the last point is not
  // guaranteed in general (coverage shrinks), but soundness is.
  NetworkElementsConfig config;
  config.num_rows = 3000;
  config.target_combos = 300;
  NetworkElementsData data = GenerateNetworkElements(config);
  DropSimulator sim(data.table, data.dimension_columns,
                    data.dimension_domains);
  Rng rng(5);
  std::vector<Tuple> dropped;
  for (int i = 0; i < 60; ++i) {
    size_t row = rng.UniformUint64(data.table.num_rows());
    dropped.push_back(DimensionCombo(data, row));
    sim.DropRow(row);
  }
  EXPECT_TRUE(IsMinimal(sim.patterns()));
  for (const Pattern& p : sim.patterns()) {
    for (const Tuple& combo : dropped) {
      EXPECT_FALSE(p.SubsumesTuple(combo))
          << p.ToString() << " subsumes dropped " << TupleToString(combo);
    }
  }
}

TEST(DropSimulatorTest, CorrelatedDropsYieldFewerPatterns) {
  // Fig. 2's effect in miniature: dropping rows that share a name prefix
  // (correlated attribute values) produces fewer patterns than dropping
  // random rows.
  NetworkElementsConfig config;
  config.num_rows = 20000;
  NetworkElementsData data = GenerateNetworkElements(config);

  DropSimulator random_sim(data.table, data.dimension_columns,
                           data.dimension_domains);
  Rng rng(11);
  size_t dropped_random = 0;
  while (dropped_random < 150) {
    size_t row = rng.UniformUint64(data.table.num_rows());
    if (random_sim.IsDropped(row)) continue;
    random_sim.DropRow(row);
    ++dropped_random;
  }

  DropSimulator prefix_sim(data.table, data.dimension_columns,
                           data.dimension_domains);
  const std::string& prefix = data.name_prefixes[0];
  size_t dropped_prefix = 0;
  for (size_t row = 0;
       row < data.table.num_rows() && dropped_prefix < 150; ++row) {
    if (StartsWith(data.table.row(row)[0].str(), prefix)) {
      prefix_sim.DropRow(row);
      ++dropped_prefix;
    }
  }
  ASSERT_EQ(dropped_prefix, 150u);
  EXPECT_LT(prefix_sim.num_patterns(), random_sim.num_patterns());
}

TEST(WikipediaTest, TableSizesAndStatements) {
  WikipediaConfig config;
  config.num_cities = 5000;
  config.num_schools = 1000;
  AnnotatedDatabase adb = MakeWikipediaDatabase(config);
  EXPECT_EQ((*adb.database().GetTable("city"))->num_rows(), 5000u);
  EXPECT_EQ((*adb.database().GetTable("country"))->num_rows(), 200u);
  EXPECT_EQ((*adb.database().GetTable("school"))->num_rows(), 1000u);
  // Exactly 21 completeness statements, as found on Wikipedia.
  size_t statements = adb.patterns("city").size() +
                      adb.patterns("country").size() +
                      adb.patterns("school").size();
  EXPECT_EQ(statements, 21u);
}

TEST(WikipediaTest, SevenQueriesAllPlanAndRun) {
  WikipediaConfig config;
  config.num_cities = 2000;
  config.num_schools = 500;
  config.num_states = 50;
  config.city_name_pool = 800;
  config.school_name_pool = 120;
  AnnotatedDatabase adb = MakeWikipediaDatabase(config);
  auto queries = WikipediaQueries();
  ASSERT_EQ(queries.size(), 7u);
  for (const WikipediaQuery& q : queries) {
    auto plan = PlanSql(q.sql, adb.database());
    ASSERT_TRUE(plan.ok()) << q.id << ": " << plan.status().ToString();
    auto result = Evaluate(*plan, adb.database());
    ASSERT_TRUE(result.ok()) << q.id << ": " << result.status().ToString();
    EXPECT_GT(result->num_rows(), 0u) << q.id;
  }
}

TEST(WikipediaTest, ResultSizeOrderingMatchesTable7) {
  // Q3 (state join) must dwarf everything; Q1/Q4 must be small — the
  // spread that drives the paper's Table 7 comparison.
  AnnotatedDatabase adb = MakeWikipediaDatabase({});
  auto queries = WikipediaQueries();
  std::map<std::string, size_t> sizes;
  for (const WikipediaQuery& q : queries) {
    if (q.id == "Q3" || q.id == "Q5") continue;  // keep this test fast
    auto plan = PlanSql(q.sql, adb.database());
    ASSERT_TRUE(plan.ok());
    auto result = Evaluate(*plan, adb.database());
    ASSERT_TRUE(result.ok());
    sizes[q.id] = result->num_rows();
  }
  EXPECT_LT(sizes["Q1"], 1000u);
  EXPECT_LT(sizes["Q4"], 1000u);
  EXPECT_GT(sizes["Q2"], 3000u);
  EXPECT_GT(sizes["Q6"], 50000u);
  EXPECT_GT(sizes["Q7"], 10000u);
}

}  // namespace
}  // namespace pcdb
