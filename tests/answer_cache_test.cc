#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "server/answer_cache.h"
#include "workloads/maintenance_example.h"

namespace pcdb {
namespace {

std::shared_ptr<const EncodedAnswer> MakeAnswer(size_t payload_bytes) {
  auto answer = std::make_shared<EncodedAnswer>();
  answer->schema = "s";
  answer->row_batches.push_back(std::string(payload_bytes, 'x'));
  return answer;
}

TEST(AnswerCacheTest, HitAfterMiss) {
  AnswerCache cache;
  EXPECT_EQ(cache.Get("k"), nullptr);
  auto answer = MakeAnswer(100);
  cache.Put("k", {{"Warnings"}}, answer);
  EXPECT_EQ(cache.Get("k"), answer);
  AnswerCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.bytes, 100u);
}

TEST(AnswerCacheTest, EvictsLeastRecentlyUsedUnderEntryPressure) {
  AnswerCache::Options options;
  options.num_shards = 1;  // one LRU list so the order is observable
  options.max_entries = 3;
  AnswerCache cache(options);
  cache.Put("a", {}, MakeAnswer(10));
  cache.Put("b", {}, MakeAnswer(10));
  cache.Put("c", {}, MakeAnswer(10));
  ASSERT_NE(cache.Get("a"), nullptr);  // promote a; b is now the LRU
  cache.Put("d", {}, MakeAnswer(10));
  EXPECT_EQ(cache.Get("b"), nullptr);
  EXPECT_NE(cache.Get("a"), nullptr);
  EXPECT_NE(cache.Get("c"), nullptr);
  EXPECT_NE(cache.Get("d"), nullptr);
  EXPECT_EQ(cache.GetStats().evictions, 1u);
}

TEST(AnswerCacheTest, EvictsUnderBytePressureAndSkipsOversizedAnswers) {
  AnswerCache::Options options;
  options.num_shards = 1;
  options.max_bytes = 1000;
  AnswerCache cache(options);
  // Larger than the whole budget: never cached (caching it would evict
  // everything for an answer that can't stay anyway).
  cache.Put("huge", {}, MakeAnswer(5000));
  EXPECT_EQ(cache.Get("huge"), nullptr);
  EXPECT_EQ(cache.GetStats().insertions, 0u);

  cache.Put("a", {}, MakeAnswer(400));
  cache.Put("b", {}, MakeAnswer(400));
  cache.Put("c", {}, MakeAnswer(400));  // pushes "a" out
  EXPECT_EQ(cache.Get("a"), nullptr);
  EXPECT_NE(cache.Get("c"), nullptr);
  EXPECT_LE(cache.GetStats().bytes, 1000u);
}

TEST(AnswerCacheTest, ReplacingAKeyKeepsAccountingConsistent) {
  AnswerCache::Options options;
  options.num_shards = 1;
  AnswerCache cache(options);
  cache.Put("k", {}, MakeAnswer(100));
  const size_t bytes_small = cache.GetStats().bytes;
  cache.Put("k", {}, MakeAnswer(300));
  AnswerCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.bytes, bytes_small);
}

TEST(AnswerCacheTest, InvalidateTableDropsOnlyDependents) {
  AnswerCache cache;
  cache.Put("q1", {{"Warnings"}, {"Teams"}}, MakeAnswer(10));
  cache.Put("q2", {{"Teams"}}, MakeAnswer(10));
  cache.Put("q3", {{"Maintenance"}}, MakeAnswer(10));
  EXPECT_EQ(cache.InvalidateTable("Teams"), 2u);
  EXPECT_EQ(cache.Get("q1"), nullptr);
  EXPECT_EQ(cache.Get("q2"), nullptr);
  EXPECT_NE(cache.Get("q3"), nullptr);
  EXPECT_EQ(cache.GetStats().invalidations, 2u);
}

TEST(AnswerCacheTest, InvalidateSignatureDropsOnlyComparableMasks) {
  AnswerCache cache;
  AnswerCache::TableDep week_dep;  // query constrains column 1 (week)
  week_dep.table = "Warnings";
  week_dep.query_mask = uint64_t{1} << 1;
  AnswerCache::TableDep day_dep;  // query constrains column 0 (day)
  day_dep.table = "Warnings";
  day_dep.query_mask = uint64_t{1} << 0;
  AnswerCache::TableDep teams_dep;  // other table, catch-all mask
  teams_dep.table = "Teams";
  cache.Put("q_week", {week_dep}, MakeAnswer(10));
  cache.Put("q_day", {day_dep}, MakeAnswer(10));
  cache.Put("q_teams", {teams_dep}, MakeAnswer(10));
  // A pattern addition with signature {day}: the {week}-masked entry is
  // incomparable and must survive; the other table is untouched.
  EXPECT_EQ(cache.InvalidateSignature("Warnings", uint64_t{1} << 0), 1u);
  EXPECT_NE(cache.Get("q_week"), nullptr);
  EXPECT_EQ(cache.Get("q_day"), nullptr);
  EXPECT_NE(cache.Get("q_teams"), nullptr);
  EXPECT_EQ(cache.GetStats().sig_invalidations, 1u);
  EXPECT_EQ(cache.GetStats().invalidations, 0u);
}

TEST(AnswerCacheTest, WildcardSignatureAndDefaultMaskAlwaysInvalidate) {
  AnswerCache cache;
  AnswerCache::TableDep masked;  // {week}
  masked.table = "Warnings";
  masked.query_mask = uint64_t{1} << 1;
  AnswerCache::TableDep catch_all;  // default ~0 mask
  catch_all.table = "Warnings";
  cache.Put("masked", {masked}, MakeAnswer(10));
  cache.Put("catch_all", {catch_all}, MakeAnswer(10));
  // Signature 0 (the all-wildcard pattern) is comparable with every
  // mask, and the default ~0 mask is comparable with every signature:
  // both entries go.
  EXPECT_EQ(cache.InvalidateSignature("Warnings", 0), 2u);
  EXPECT_EQ(cache.GetStats().entries, 0u);
}

TEST(AnswerCacheTest, ClearDropsEverything) {
  AnswerCache cache;
  cache.Put("a", {}, MakeAnswer(10));
  cache.Put("b", {}, MakeAnswer(10));
  cache.Clear();
  AnswerCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);
  EXPECT_EQ(cache.Get("a"), nullptr);
}

TEST(AnswerCacheKeyTest, TableOrderAndDuplicatesDoNotMatter) {
  const std::string a = AnswerCache::MakeKey(
      "SELECT 1", 0, 0, 0, 0, {{"t1", 3}, {"t2", 5}});
  const std::string b = AnswerCache::MakeKey(
      "SELECT 1", 0, 0, 0, 0, {{"t2", 5}, {"t1", 3}, {"t1", 3}});
  EXPECT_EQ(a, b);
}

TEST(AnswerCacheKeyTest, EveryInputChangesTheKey) {
  const std::string base =
      AnswerCache::MakeKey("SELECT 1", 0, 0, 0, 0, {{"t", 1}});
  EXPECT_NE(base, AnswerCache::MakeKey("SELECT 2", 0, 0, 0, 0, {{"t", 1}}));
  EXPECT_NE(base, AnswerCache::MakeKey("SELECT 1", 1, 0, 0, 0, {{"t", 1}}));
  EXPECT_NE(base, AnswerCache::MakeKey("SELECT 1", 0, 9, 0, 0, {{"t", 1}}));
  EXPECT_NE(base, AnswerCache::MakeKey("SELECT 1", 0, 0, 9, 0, {{"t", 1}}));
  EXPECT_NE(base, AnswerCache::MakeKey("SELECT 1", 0, 0, 0, 9, {{"t", 1}}));
  // The epoch is the mutation fence: bumping it must miss.
  EXPECT_NE(base, AnswerCache::MakeKey("SELECT 1", 0, 0, 0, 0, {{"t", 2}}));
}

TEST(AnswerCacheKeyTest, SigFoldTracksOnlyComparableSignatures) {
  // Signature epochs over Warnings: {day} (bit 0) at epoch 1, {week}
  // (bit 1) at epoch 5. A query masked {week} must key on the {week}
  // epoch and ignore the {day} one.
  std::map<uint64_t, uint64_t> epochs{{uint64_t{1} << 0, 1},
                                      {uint64_t{1} << 1, 5}};
  const uint64_t mask = uint64_t{1} << 1;
  const uint64_t base = AnswerCache::FoldSignatureEpochs(mask, epochs);
  epochs[uint64_t{1} << 0] = 2;  // incomparable bump: fold unchanged
  EXPECT_EQ(base, AnswerCache::FoldSignatureEpochs(mask, epochs));
  epochs[uint64_t{1} << 1] = 6;  // comparable bump: fold moves
  EXPECT_NE(base, AnswerCache::FoldSignatureEpochs(mask, epochs));
  // A superset signature {day, week} is comparable with {week} too.
  const uint64_t with_superset = AnswerCache::FoldSignatureEpochs(
      mask, {{uint64_t{1} << 1, 5}, {3, 1}});
  EXPECT_NE(with_superset,
            AnswerCache::FoldSignatureEpochs(mask, {{uint64_t{1} << 1, 5}}));
}

TEST(AnswerCacheKeyTest, SigFoldChangesTheKey) {
  AnswerCache::TableDep dep;
  dep.table = "t";
  dep.epoch = 1;
  dep.query_mask = 2;
  dep.sig_fold = 7;
  const std::string base = AnswerCache::MakeKey("SELECT 1", 0, 0, 0, 0,
                                                {dep});
  dep.sig_fold = 8;
  EXPECT_NE(base,
            AnswerCache::MakeKey("SELECT 1", 0, 0, 0, 0, {dep}));
}

TEST(AnswerCacheKeyTest, QueryConstantMasksResolveAliasedColumns) {
  // Q_hw: sigma_week=2 over Warnings (alias W, column 1) and
  // sigma_specialization='hardware' over Teams (alias T, column 1);
  // Maintenance is scanned with no constant selection.
  AnnotatedDatabase adb = MakeMaintenanceDatabase();
  const auto masks = AnswerCache::QueryConstantMasks(
      *MakeHardwareWarningsQuery(), adb.database());
  ASSERT_EQ(masks.size(), 3u);
  EXPECT_EQ(masks.at("Warnings"), uint64_t{1} << 1);
  EXPECT_EQ(masks.at("Teams"), uint64_t{1} << 1);
  EXPECT_EQ(masks.at("Maintenance"), 0u);
}

TEST(AnswerCacheKeyTest, NormalizeSqlCollapsesIncidentalFormatting) {
  EXPECT_EQ(AnswerCache::NormalizeSql("  SELECT *\n\tFROM   t ;"),
            "SELECT * FROM t");
  // Trivially reformatted statements share one cache entry...
  EXPECT_EQ(AnswerCache::NormalizeSql("SELECT * FROM t;"),
            AnswerCache::NormalizeSql("SELECT  *  FROM  t"));
  // ...but case is untouched (identifiers are case-sensitive).
  EXPECT_NE(AnswerCache::NormalizeSql("SELECT * FROM t"),
            AnswerCache::NormalizeSql("select * from t"));
}

TEST(AnswerCacheKeyTest, NormalizeSqlPreservesStringLiteralsVerbatim) {
  // Whitespace inside a '...' literal is data, not formatting: these
  // are different queries and must never share a cache entry.
  EXPECT_NE(AnswerCache::NormalizeSql("SELECT * FROM t WHERE x='a b'"),
            AnswerCache::NormalizeSql("SELECT * FROM t WHERE x='a  b'"));
  EXPECT_EQ(AnswerCache::NormalizeSql("SELECT * FROM t WHERE x='a\n\tb'"),
            "SELECT * FROM t WHERE x='a\n\tb'");
  // Formatting around the literal still collapses.
  EXPECT_EQ(AnswerCache::NormalizeSql("SELECT  *  FROM t WHERE x='a  b' ;"),
            "SELECT * FROM t WHERE x='a  b'");
  // The '' escape does not end the literal: the space and semicolon
  // after it are still inside, and the literal really ends at the
  // fourth quote.
  EXPECT_EQ(AnswerCache::NormalizeSql("SELECT 'it''s  ; ok'  FROM  t"),
            "SELECT 'it''s  ; ok' FROM t");
  EXPECT_NE(AnswerCache::NormalizeSql("SELECT 'a''  b' FROM t"),
            AnswerCache::NormalizeSql("SELECT 'a'' b' FROM t"));
  // A trailing semicolon that is part of a literal survives; one that
  // is punctuation does not.
  EXPECT_EQ(AnswerCache::NormalizeSql("SELECT * FROM t WHERE x=';' ;"),
            "SELECT * FROM t WHERE x=';'");
}

}  // namespace
}  // namespace pcdb
