#include <gtest/gtest.h>

#include "pattern/pattern.h"

namespace pcdb {
namespace {

Pattern P(const std::vector<std::string>& fields) {
  std::vector<Pattern::Cell> cells;
  for (const auto& f : fields) {
    if (f == "*") {
      cells.push_back(Pattern::Wildcard());
    } else {
      cells.push_back(Value(f));
    }
  }
  return Pattern(std::move(cells));
}

TEST(PatternTest, ParseAgainstSchema) {
  Schema schema({{"day", ValueType::kString}, {"week", ValueType::kInt64}});
  auto p = Pattern::Parse({"Mon", "2"}, schema);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->value(0), Value("Mon"));
  EXPECT_EQ(p->value(1), Value(2));
  auto wild = Pattern::Parse({"*", "*"}, schema);
  ASSERT_TRUE(wild.ok());
  EXPECT_TRUE(wild->IsAllWildcards());
  EXPECT_FALSE(Pattern::Parse({"Mon"}, schema).ok());       // arity
  EXPECT_FALSE(Pattern::Parse({"Mon", "x"}, schema).ok());  // type
}

TEST(PatternTest, WildcardCounting) {
  Pattern p = P({"a", "*", "b", "*"});
  EXPECT_EQ(p.arity(), 4u);
  EXPECT_EQ(p.NumWildcards(), 2u);
  EXPECT_EQ(p.NumConstants(), 2u);
  EXPECT_TRUE(p.IsWildcard(1));
  EXPECT_FALSE(p.IsWildcard(0));
  EXPECT_FALSE(p.IsAllWildcards());
  EXPECT_TRUE(Pattern::AllWildcards(3).IsAllWildcards());
}

TEST(PatternTest, SubsumptionBasics) {
  // From §3.2: (∗, A, ∗) subsumes (∗, A, unknown).
  EXPECT_TRUE(P({"*", "A", "*"}).Subsumes(P({"*", "A", "unknown"})));
  EXPECT_FALSE(P({"*", "A", "unknown"}).Subsumes(P({"*", "A", "*"})));
  EXPECT_TRUE(P({"*", "*"}).Subsumes(P({"a", "b"})));
  EXPECT_FALSE(P({"a", "*"}).Subsumes(P({"b", "*"})));
  // Reflexive.
  EXPECT_TRUE(P({"a", "*"}).Subsumes(P({"a", "*"})));
  EXPECT_FALSE(P({"a", "*"}).StrictlySubsumes(P({"a", "*"})));
}

TEST(PatternTest, SubsumptionIsPartialOrder) {
  std::vector<Pattern> ps = {P({"*", "*"}), P({"a", "*"}), P({"a", "b"}),
                             P({"*", "b"}), P({"c", "*"})};
  for (const auto& x : ps) {
    EXPECT_TRUE(x.Subsumes(x));
    for (const auto& y : ps) {
      if (x.Subsumes(y) && y.Subsumes(x)) {
        EXPECT_EQ(x, y);
      }
      for (const auto& z : ps) {
        if (x.Subsumes(y) && y.Subsumes(z)) {
          EXPECT_TRUE(x.Subsumes(z));
        }
      }
    }
  }
}

TEST(PatternTest, SubsumesTuple) {
  Tuple t = {Value("Mon"), Value(2)};
  std::vector<Pattern::Cell> cells = {Value("Mon"), Pattern::Wildcard()};
  EXPECT_TRUE(Pattern(cells).SubsumesTuple(t));
  cells[0] = Value("Tue");
  EXPECT_FALSE(Pattern(cells).SubsumesTuple(t));
  EXPECT_TRUE(Pattern::AllWildcards(2).SubsumesTuple(t));
}

TEST(PatternTest, FromTupleSubsumedByItsOwnGeneralizations) {
  Tuple t = {Value("x"), Value("y")};
  Pattern p = Pattern::FromTuple(t);
  EXPECT_TRUE(p.SubsumesTuple(t));
  EXPECT_TRUE(p.WithWildcard(0).SubsumesTuple(t));
  EXPECT_TRUE(p.WithWildcard(0).StrictlySubsumes(p));
}

TEST(PatternTest, CellEditing) {
  Pattern p = P({"a", "b"});
  EXPECT_EQ(p.WithWildcard(0), P({"*", "b"}));
  EXPECT_EQ(p.WithValue(0, Value("c")), P({"c", "b"}));
  EXPECT_EQ(p.WithSwapped(0, 1), P({"b", "a"}));
  EXPECT_EQ(p.WithoutPosition(0), P({"b"}));
  EXPECT_EQ(p.Concat(P({"*"})), P({"a", "b", "*"}));
  // Originals unchanged (copy semantics).
  EXPECT_EQ(p, P({"a", "b"}));
}

TEST(PatternTest, Unification) {
  // The §5.1 example: {(∗,c,∗), (∗,∗,d)} unifies to (∗,c,d).
  Pattern a = P({"*", "c", "*"});
  Pattern b = P({"*", "*", "d"});
  ASSERT_TRUE(a.UnifiableWith(b));
  EXPECT_EQ(a.UnifyWith(b), P({"*", "c", "d"}));
  EXPECT_EQ(b.UnifyWith(a), P({"*", "c", "d"}));
  // Conflicting constants are not unifiable.
  EXPECT_FALSE(P({"c", "*"}).UnifiableWith(P({"d", "*"})));
  // The unifier is subsumed by both inputs.
  EXPECT_TRUE(a.Subsumes(a.UnifyWith(b)));
  EXPECT_TRUE(b.Subsumes(a.UnifyWith(b)));
}

TEST(PatternTest, ToStringRendersWildcards) {
  EXPECT_EQ(P({"Mon", "*"}).ToString(), "(Mon, *)");
}

TEST(PatternTest, HashEqualityContract) {
  EXPECT_EQ(P({"a", "*"}).Hash(), P({"a", "*"}).Hash());
  EXPECT_NE(P({"a", "*"}), P({"*", "a"}));
}

TEST(PatternTest, OrderingWildcardFirst) {
  EXPECT_LT(P({"*", "b"}), P({"a", "b"}));
  EXPECT_LT(P({"a", "a"}), P({"a", "b"}));
}

TEST(PatternSetTest, AddUniqueAndContains) {
  PatternSet s;
  s.AddUnique(P({"a", "*"}));
  s.AddUnique(P({"a", "*"}));
  EXPECT_EQ(s.size(), 1u);
  EXPECT_TRUE(s.Contains(P({"a", "*"})));
  EXPECT_FALSE(s.Contains(P({"b", "*"})));
}

TEST(PatternSetTest, AnySubsumes) {
  PatternSet s;
  s.Add(P({"a", "*"}));
  s.Add(P({"*", "b"}));
  EXPECT_TRUE(s.AnySubsumes(P({"a", "c"})));
  EXPECT_TRUE(s.AnySubsumes(P({"c", "b"})));
  EXPECT_FALSE(s.AnySubsumes(P({"c", "c"})));
}

TEST(PatternSetTest, AnySubsumesTuple) {
  PatternSet s;
  s.Add(P({"a", "*"}));
  EXPECT_TRUE(s.AnySubsumesTuple({Value("a"), Value("z")}));
  EXPECT_FALSE(s.AnySubsumesTuple({Value("b"), Value("z")}));
}

TEST(PatternSetTest, SetEqualsIgnoresOrder) {
  PatternSet a;
  a.Add(P({"a", "*"}));
  a.Add(P({"*", "b"}));
  PatternSet b;
  b.Add(P({"*", "b"}));
  b.Add(P({"a", "*"}));
  EXPECT_TRUE(a.SetEquals(b));
  b.Add(P({"c", "*"}));
  EXPECT_FALSE(a.SetEquals(b));
}

}  // namespace
}  // namespace pcdb
