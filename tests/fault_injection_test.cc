#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "durability/checkpoint.h"
#include "durability/wal.h"
#include "pattern/annotated_eval.h"
#include "pattern/minimize.h"
#include "relational/csv.h"
#include "relational/evaluator.h"
#include "server/client.h"
#include "server/net_socket.h"
#include "server/protocol.h"
#include "server/server.h"
#include "workloads/maintenance_example.h"

namespace pcdb {
namespace {

/// Every test starts and ends with a clean registry: failpoints are
/// process-global, so leaking an armed one would poison later tests.
class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override { Failpoints::Global().Clear(); }
  void TearDown() override { Failpoints::Global().Clear(); }
};

// ---------------------------------------------------------------------------
// Covering workloads: one governed entry point per group of sites. Each
// returns the final Status so the matrix below can compare serial and
// parallel runs of the same work.

Status RunCsvLoad() {
  Schema schema(
      {{"id", ValueType::kInt64}, {"name", ValueType::kString}});
  std::string text = "id,name\n";
  for (int i = 0; i < 40; ++i) text += std::to_string(i) + ",row\n";
  return ReadCsvString(text, schema, /*has_header=*/true, ExecContext())
      .status();
}

Status RunEvaluate(size_t threads) {
  AnnotatedDatabase adb = MakeMaintenanceDatabase();
  ExprPtr plan = Expr::Join(Expr::Scan("Warnings"),
                            Expr::Scan("Maintenance"), "ID", "ID");
  EvalOptions options;
  options.num_threads = threads;
  return Evaluate(*plan, adb.database(), options, ExecContext()).status();
}

Status RunAnnotated(size_t threads) {
  AnnotatedDatabase adb = MakeMaintenanceDatabase();
  AnnotatedEvalOptions options;
  options.num_threads = threads;
  return EvaluateAnnotated(*MakeHardwareWarningsQuery(), adb, options,
                           ExecContext())
      .status();
}

/// A random set large enough that the sharded path actually shards
/// (small inputs fall back to the serial minimizer).
PatternSet BigRandomSet(uint64_t seed) {
  Rng rng(seed);
  PatternSet out;
  for (size_t i = 0; i < 500; ++i) {
    std::vector<Pattern::Cell> cells;
    for (size_t a = 0; a < 5; ++a) {
      Pattern::Cell cell;
      if (!rng.Bernoulli(0.5)) {
        cell.emplace("v" + std::to_string(rng.UniformInt(0, 3)));
      }
      cells.push_back(std::move(cell));
    }
    out.Add(Pattern(std::move(cells)));
  }
  return out;
}

Status RunMinimize(size_t threads) {
  PatternSet input = BigRandomSet(11);
  if (threads <= 1) {
    return Minimize(input, MinimizeApproach::kAllAtOnce,
                    PatternIndexKind::kDiscriminationTree, ExecContext())
        .status();
  }
  ThreadPool pool(threads);
  return ParallelMinimize(input, MinimizeApproach::kAllAtOnce,
                          PatternIndexKind::kDiscriminationTree, &pool,
                          ExecContext())
      .status();
}

/// Covering workload for the socket/framing sites: a loopback
/// listen/connect/send/recv/decode round trip over the real network
/// primitives. Unlike the library workloads above, throw-action faults
/// here are not absorbed by an entry-point guard inside src/server (the
/// serving loop guards per *connection*, which this primitive-level
/// round trip bypasses), so the workload supplies the guard itself —
/// mirroring what the loop does.
Status NetRoundTripImpl() {
  PCDB_ASSIGN_OR_RETURN(Listener listener,
                        Listener::BindAndListen("127.0.0.1", 0));
  PCDB_ASSIGN_OR_RETURN(Socket client, TcpConnect("127.0.0.1", listener.port()));
  PCDB_RETURN_NOT_OK(client.SetRecvTimeoutMillis(5000));

  // The listener is non-blocking; a freshly connected peer may need a
  // beat to become acceptable.
  Socket server;
  for (int i = 0; i < 500 && !server.valid(); ++i) {
    PCDB_ASSIGN_OR_RETURN(Listener::AcceptResult accepted, listener.Accept());
    if (!accepted.would_block) {
      server = std::move(accepted.socket);
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  if (!server.valid()) return Status::Internal("accept never completed");
  PCDB_RETURN_NOT_OK(server.SetRecvTimeoutMillis(5000));

  auto pump = [](Socket* sock, FrameReader* reader, Frame* out) -> Status {
    for (;;) {
      PCDB_ASSIGN_OR_RETURN(bool complete, reader->Next(out));
      if (complete) return Status::OK();
      char buf[256];
      PCDB_ASSIGN_OR_RETURN(IoResult io, sock->Recv(buf, sizeof(buf)));
      if (io.eof) return Status::Unavailable("peer closed mid-frame");
      if (io.would_block) return Status::Timeout("read timed out");
      reader->Feed(buf, io.bytes);
    }
  };

  // Client -> server: one frame, decoded (possibly from 1-byte reads
  // under server.read.short).
  std::string wire;
  AppendFrame(&wire, FrameType::kPing, 7, "round trip payload");
  PCDB_RETURN_NOT_OK(client.SendAll(wire.data(), wire.size()));
  FrameReader server_reader;
  Frame request;
  PCDB_RETURN_NOT_OK(pump(&server, &server_reader, &request));
  if (request.request_id != 7 || request.payload != "round trip payload") {
    return Status::Internal("frame corrupted in transit");
  }

  // Server -> client echo.
  std::string reply;
  AppendFrame(&reply, FrameType::kPong, request.request_id, request.payload);
  PCDB_RETURN_NOT_OK(server.SendAll(reply.data(), reply.size()));
  FrameReader client_reader;
  Frame response;
  PCDB_RETURN_NOT_OK(pump(&client, &client_reader, &response));
  if (response.type != FrameType::kPong ||
      response.payload != request.payload) {
    return Status::Internal("echo corrupted in transit");
  }
  return Status::OK();
}

/// Covering workload for server.ingest: a real Server + Client INGEST
/// round trip. The failpoint fires inside the writer job (ApplyWriteOp);
/// error actions come back on the INGEST's ERROR frame with the injected
/// code, throw actions are caught by the per-op guard and surface as
/// kInternal — either way the server stays up.
Status IngestRoundTripImpl() {
  ServerOptions options;
  options.eval_threads = 2;
  Server server(MakeMaintenanceDatabase(), options);
  PCDB_RETURN_NOT_OK(server.Start());
  PCDB_ASSIGN_OR_RETURN(Client client,
                        Client::Connect("127.0.0.1", server.port()));
  // Week 3 is not covered by any Warnings pattern, so the row violates
  // no promise and the happy path ingests it cleanly.
  PCDB_ASSIGN_OR_RETURN(
      IngestResult ack,
      client.Ingest("Warnings",
                    {Tuple{Value("Thu"), Value(int64_t{3}), Value("tw99"),
                           Value("scheduled check")}}));
  if (ack.rows_ingested != 1) {
    return Status::Internal("ingest ack reported " +
                            std::to_string(ack.rows_ingested) + " rows");
  }
  return Status::OK();
}

Status RunIngestRoundTrip(size_t) {
  try {
    return IngestRoundTripImpl();
  } catch (const std::exception& e) {
    return Status::Internal(std::string("ingest round trip threw: ") +
                            e.what());
  } catch (...) {
    return Status::Internal("ingest round trip threw");
  }
}

/// Covering workload for the durability sites: one pass over the whole
/// durable write path in a throwaway directory — open a WAL, group-
/// commit one record, checkpoint, load the checkpoint back, replay the
/// log. Hits wal.open, wal.append, wal.append.short, wal.corrupt,
/// wal.fsync, checkpoint.write, checkpoint.rename, and recovery.record.
/// The silent-corruption sites (wal.corrupt, wal.append.short) leave the
/// workload OK under Sleep(0): replay stops cleanly at the mangled tail,
/// exactly the contract recovery relies on.
Status DurabilityRoundTripImpl() {
  char tmpl[] = "/tmp/pcdb_faults_XXXXXX";
  if (mkdtemp(tmpl) == nullptr) {
    return Status::Internal("mkdtemp failed");
  }
  const std::string dir = tmpl;
  auto cleanup = [&dir] {
    Result<std::vector<std::string>> segments = ListWalSegments(dir);
    if (segments.ok()) {
      for (const std::string& path : *segments) unlink(path.c_str());
    }
    unlink((dir + "/CHECKPOINT").c_str());
    unlink((dir + "/CHECKPOINT.tmp").c_str());
    rmdir(dir.c_str());
  };
  Status status = [&dir]() -> Status {
    PCDB_ASSIGN_OR_RETURN(std::unique_ptr<WalWriter> writer,
                          WalWriter::Open(dir));
    WalRecord record;
    record.tenant = "t";
    record.writer_id = 1;
    record.seq = 1;
    record.payload = "payload";
    std::vector<WalRecord> batch = {record};
    PCDB_RETURN_NOT_OK(writer->AppendBatch(&batch));
    const AnnotatedDatabase adb = MakeMaintenanceDatabase();
    PCDB_RETURN_NOT_OK(
        SaveCheckpoint(dir + "/CHECKPOINT", adb, /*last_lsn=*/0, {}));
    PCDB_RETURN_NOT_OK(LoadCheckpoint(dir + "/CHECKPOINT").status());
    PCDB_RETURN_NOT_OK(
        ReplayWal(dir, 0, [](const WalRecord&) { return Status::OK(); })
            .status());
    return Status::OK();
  }();
  cleanup();
  return status;
}

Status RunDurabilityRoundTrip(size_t) {
  try {
    return DurabilityRoundTripImpl();
  } catch (const std::exception& e) {
    return Status::Internal(std::string("durability round trip threw: ") +
                            e.what());
  } catch (...) {
    return Status::Internal("durability round trip threw");
  }
}

Status RunNetRoundTrip(size_t) {
  try {
    return NetRoundTripImpl();
  } catch (const std::exception& e) {
    return Status::Internal(std::string("net round trip threw: ") + e.what());
  } catch (...) {
    return Status::Internal("net round trip threw");
  }
}

struct SiteWorkload {
  const char* site;
  Status (*run)(size_t threads);
  /// False for sites that only exist on the pooled path (shard tasks,
  /// pool dispatch): the serial run must then succeed untouched.
  bool fires_serially;
};

Status RunCsvIgnoringThreads(size_t) { return RunCsvLoad(); }

const std::vector<SiteWorkload>& CoveringWorkloads() {
  static const std::vector<SiteWorkload>* workloads =
      new std::vector<SiteWorkload>{
          {"csv.read", RunCsvIgnoringThreads, true},
          {"csv.record", RunCsvIgnoringThreads, true},
          {"eval.operator", RunEvaluate, true},
          {"eval.join.probe", RunEvaluate, true},
          {"annotated.operator", RunAnnotated, true},
          {"minimize.pattern", RunMinimize, true},
          {"minimize.shard", RunMinimize, false},
          {"pool.dispatch", RunMinimize, false},
          {"server.accept", RunNetRoundTrip, true},
          {"server.read", RunNetRoundTrip, true},
          {"server.read.short", RunNetRoundTrip, true},
          {"server.decode", RunNetRoundTrip, true},
          {"server.write", RunNetRoundTrip, true},
          {"server.ingest", RunIngestRoundTrip, true},
          {"wal.open", RunDurabilityRoundTrip, true},
          {"wal.append", RunDurabilityRoundTrip, true},
          {"wal.append.short", RunDurabilityRoundTrip, true},
          {"wal.corrupt", RunDurabilityRoundTrip, true},
          {"wal.fsync", RunDurabilityRoundTrip, true},
          {"checkpoint.write", RunDurabilityRoundTrip, true},
          {"checkpoint.rename", RunDurabilityRoundTrip, true},
          {"recovery.record", RunDurabilityRoundTrip, true},
      };
  return *workloads;
}

// ---------------------------------------------------------------------------
// The matrix: every compiled-in site x {error, throw}, serial and
// parallel. Nothing may terminate the process; where both paths reach
// the site they must return the same error code.

TEST_F(FaultInjectionTest, CoveringWorkloadsMatchAllSites) {
  // The workload table above and AllSites() must stay in sync, or the
  // matrix silently loses coverage when a new site is instrumented.
  std::vector<std::string> covered;
  for (const SiteWorkload& w : CoveringWorkloads()) covered.push_back(w.site);
  std::sort(covered.begin(), covered.end());
  std::vector<std::string> sites = Failpoints::AllSites();
  std::sort(sites.begin(), sites.end());
  EXPECT_EQ(covered, sites);
}

TEST_F(FaultInjectionTest, EverySiteFiresOnItsCoveringWorkload) {
  // Sleep(0) is an observable no-op: the workload result is unchanged
  // but FireCount proves the site was actually reached.
  for (const SiteWorkload& w : CoveringWorkloads()) {
    Failpoints::Global().Activate(w.site, FailpointSpec::Sleep(0));
  }
  for (const SiteWorkload& w : CoveringWorkloads()) {
    EXPECT_TRUE(w.run(4).ok()) << w.site;
  }
  for (const SiteWorkload& w : CoveringWorkloads()) {
    EXPECT_GT(Failpoints::Global().FireCount(w.site), 0u) << w.site;
  }
}

TEST_F(FaultInjectionTest, ErrorActionSurfacesTheInjectedCode) {
  for (const SiteWorkload& w : CoveringWorkloads()) {
    for (size_t threads : {size_t{1}, size_t{4}}) {
      Failpoints::Global().Activate(
          w.site, FailpointSpec::Error(StatusCode::kOutOfRange));
      Status status = w.run(threads);
      Failpoints::Global().Clear();
      if (threads > 1 || w.fires_serially) {
        EXPECT_EQ(status.code(), StatusCode::kOutOfRange)
            << w.site << " with " << threads << " threads: " << status;
      } else {
        EXPECT_TRUE(status.ok()) << w.site << " serial: " << status;
      }
    }
  }
}

TEST_F(FaultInjectionTest, ThrowActionBecomesInternalStatusEverywhere) {
  // A throw-action failpoint exercises the exception guards: pooled
  // tasks capture it in the worker, serial paths in the entry-point
  // guard — both must surface kInternal, never terminate.
  for (const SiteWorkload& w : CoveringWorkloads()) {
    for (size_t threads : {size_t{1}, size_t{4}}) {
      Failpoints::Global().Activate(w.site, FailpointSpec::Throw());
      Status status = w.run(threads);
      Failpoints::Global().Clear();
      if (threads > 1 || w.fires_serially) {
        EXPECT_EQ(status.code(), StatusCode::kInternal)
            << w.site << " with " << threads << " threads: " << status;
      } else {
        EXPECT_TRUE(status.ok()) << w.site << " serial: " << status;
      }
    }
  }
}

TEST_F(FaultInjectionTest, SerialAndParallelReturnTheSameCode) {
  for (const SiteWorkload& w : CoveringWorkloads()) {
    if (!w.fires_serially) continue;
    Failpoints::Global().Activate(
        w.site, FailpointSpec::Error(StatusCode::kResourceExhausted));
    Status serial = w.run(1);
    Failpoints::Global().Activate(
        w.site, FailpointSpec::Error(StatusCode::kResourceExhausted));
    Status parallel = w.run(4);
    Failpoints::Global().Clear();
    EXPECT_EQ(serial.code(), parallel.code()) << w.site;
  }
}

// ---------------------------------------------------------------------------
// Triggers are deterministic.

TEST_F(FaultInjectionTest, OnceFiresOnTheFirstHitOnly) {
  // FireCount is a process-lifetime ledger (it survives Clear() by
  // design), so all counting assertions compare against a baseline.
  const uint64_t base = Failpoints::Global().FireCount("test.site");
  Failpoints::Global().Activate("test.site", FailpointSpec::Error().Once());
  EXPECT_FALSE(Failpoints::Global().Hit("test.site").ok());
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(Failpoints::Global().Hit("test.site").ok());
  }
  EXPECT_EQ(Failpoints::Global().FireCount("test.site") - base, 1u);
}

TEST_F(FaultInjectionTest, EveryNthFiresOnMultiplesOfN) {
  Failpoints::Global().Activate("test.site",
                                FailpointSpec::Error().EveryNth(3));
  std::vector<bool> fired;
  for (int i = 0; i < 9; ++i) {
    fired.push_back(!Failpoints::Global().Hit("test.site").ok());
  }
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false, true,
                                      false, false, true}));
}

TEST_F(FaultInjectionTest, ProbabilityTriggerIsSeedDeterministic) {
  auto draw_sequence = [](uint64_t seed) {
    Failpoints::Global().Activate(
        "test.site", FailpointSpec::Error().WithProbability(0.5, seed));
    std::vector<bool> fired;
    for (int i = 0; i < 100; ++i) {
      fired.push_back(!Failpoints::Global().Hit("test.site").ok());
    }
    Failpoints::Global().Deactivate("test.site");
    return fired;
  };
  std::vector<bool> first = draw_sequence(42);
  std::vector<bool> second = draw_sequence(42);
  EXPECT_EQ(first, second);
  // Some fire, some don't: p=0.5 over 100 hits.
  EXPECT_NE(first, std::vector<bool>(100, false));
  EXPECT_NE(first, std::vector<bool>(100, true));
  // A different seed draws a different sequence.
  EXPECT_NE(draw_sequence(43), first);
}

TEST_F(FaultInjectionTest, FireCountSurvivesDeactivateAndClear) {
  const uint64_t base = Failpoints::Global().FireCount("test.site");
  Failpoints::Global().Activate("test.site", FailpointSpec::Error());
  (void)Failpoints::Global().Hit("test.site");
  (void)Failpoints::Global().Hit("test.site");
  Failpoints::Global().Deactivate("test.site");
  EXPECT_EQ(Failpoints::Global().FireCount("test.site") - base, 2u);
  EXPECT_FALSE(Failpoints::Global().IsActive("test.site"));
  Failpoints::Global().Activate("test.site", FailpointSpec::Error());
  (void)Failpoints::Global().Hit("test.site");
  EXPECT_EQ(Failpoints::Global().FireCount("test.site") - base, 3u);
  Failpoints::Global().Clear();
  EXPECT_EQ(Failpoints::Global().FireCount("test.site") - base, 3u);
}

// ---------------------------------------------------------------------------
// The PCDB_FAILPOINTS grammar.

TEST_F(FaultInjectionTest, ParsesFullSpecStrings) {
  ASSERT_TRUE(Failpoints::Global()
                  .ActivateFromString(
                      "minimize.pattern=error;pool.dispatch=sleep(2);"
                      "csv.record=once:throw;"
                      "eval.operator=every(3):error(timeout);"
                      "minimize.shard=prob(0.25,42):error(resource_exhausted)")
                  .ok());
  for (const char* name :
       {"minimize.pattern", "pool.dispatch", "csv.record", "eval.operator",
        "minimize.shard"}) {
    EXPECT_TRUE(Failpoints::Global().IsActive(name)) << name;
  }
  // every(3):error(timeout) behaves as parsed.
  EXPECT_TRUE(Failpoints::Global().Hit("eval.operator").ok());
  EXPECT_TRUE(Failpoints::Global().Hit("eval.operator").ok());
  Status third = Failpoints::Global().Hit("eval.operator");
  EXPECT_EQ(third.code(), StatusCode::kTimeout);
}

TEST_F(FaultInjectionTest, RejectsMalformedSpecs) {
  for (const char* bad :
       {"noequals", "=error", "x=bogus", "x=once:error(wat)",
        "x=every(0):error", "x=prob(0.5):error", "x=every(two):error",
        "x=once:sleep(fast)", "x=unknowntrigger(1):error"}) {
    Status status = Failpoints::Global().ActivateFromSpec(bad);
    EXPECT_EQ(status.code(), StatusCode::kParseError) << bad;
    EXPECT_FALSE(Failpoints::Global().IsActive("x")) << bad;
  }
}

TEST_F(FaultInjectionTest, EntriesBeforeAMalformedOneStayArmed) {
  Status status =
      Failpoints::Global().ActivateFromString("test.site=error;oops");
  EXPECT_EQ(status.code(), StatusCode::kParseError);
  EXPECT_TRUE(Failpoints::Global().IsActive("test.site"));
}

// ---------------------------------------------------------------------------
// Pool failure semantics the matrix relies on.

TEST_F(FaultInjectionTest, PoolCapturesTaskExceptionsAsInternal) {
  ThreadPool pool(4);
  pool.Submit([] { throw std::runtime_error("boom"); });
  pool.Wait();
  Status status = pool.ConsumeStatus();
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  // ConsumeStatus re-arms the pool: the next round is clean.
  EXPECT_TRUE(pool.ConsumeStatus().ok());
  std::atomic<int> ran{0};
  pool.Submit([&ran] { ran.fetch_add(1); });
  pool.Wait();
  EXPECT_TRUE(pool.ConsumeStatus().ok());
  EXPECT_EQ(ran.load(), 1);
}

TEST_F(FaultInjectionTest, FirstErrorCancelsQueuedTasksDeterministically) {
  // Inline pool: submissions run in order, so everything after the
  // failure must be skipped — observable without racing a real queue.
  ThreadPool pool(1);
  int ran = 0;
  pool.Submit([] { throw std::runtime_error("boom"); });
  pool.Submit([&ran] { ++ran; });
  pool.Submit([&ran] { ++ran; });
  pool.Wait();
  EXPECT_EQ(ran, 0);
  EXPECT_EQ(pool.ConsumeStatus().code(), StatusCode::kInternal);
  pool.Submit([&ran] { ++ran; });  // re-armed
  EXPECT_EQ(ran, 1);
}

TEST_F(FaultInjectionTest, SleepActionDelaysButDoesNotFail) {
  Failpoints::Global().Activate("pool.dispatch", FailpointSpec::Sleep(1));
  Failpoints::Global().Activate("minimize.pattern",
                                FailpointSpec::Sleep(0.1).EveryNth(100));
  EXPECT_TRUE(RunMinimize(4).ok());
  EXPECT_GT(Failpoints::Global().FireCount("pool.dispatch"), 0u);
}

}  // namespace
}  // namespace pcdb
