#include <gtest/gtest.h>

#include "common/timer.h"
#include "pattern/annotated_eval.h"
#include "pattern/minimize.h"
#include "workloads/maintenance_example.h"

namespace pcdb {
namespace {

Pattern P(const std::vector<std::string>& fields) {
  std::vector<Pattern::Cell> cells;
  for (const auto& f : fields) {
    if (f == "*") {
      cells.push_back(Pattern::Wildcard());
    } else {
      cells.push_back(Value(f));
    }
  }
  return Pattern(std::move(cells));
}

class AnnotatedEvalTest : public ::testing::Test {
 protected:
  void SetUp() override { adb_ = MakeMaintenanceDatabase(); }
  AnnotatedDatabase adb_;
};

TEST_F(AnnotatedEvalTest, ScanReturnsBasePatterns) {
  auto result = EvaluateAnnotated(Expr::Scan("Warnings", "W"), adb_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->data.num_rows(), 7u);
  EXPECT_EQ(result->patterns.size(), 3u);
}

TEST_F(AnnotatedEvalTest, SelectionMatchesTable2) {
  // σ_{week=2}(Warnings) → data of week 2 plus patterns
  // (Mon,∗,∗,∗), (Wed,∗,∗,∗) — Table 2.
  auto result = EvaluateAnnotated(
      Expr::SelectConst(Expr::Scan("Warnings"), "week", 2), adb_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->data.num_rows(), 3u);
  PatternSet expected;
  expected.Add(P({"Mon", "*", "*", "*"}));
  expected.Add(P({"Wed", "*", "*", "*"}));
  EXPECT_TRUE(result->patterns.SetEquals(expected))
      << result->patterns.ToString();
}

TEST_F(AnnotatedEvalTest, QhwSchemaLevelMatchesTable3) {
  // The schema-level algebra derives completeness for teams A, B, C on
  // Monday and Wednesday (Table 3; the paper omits the symmetric
  // M.responsible/T.name variants for presentation).
  auto result = EvaluateAnnotated(MakeHardwareWarningsQuery(), adb_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->data.num_rows(), 3u);
  PatternSet expected;
  for (const char* day : {"Mon", "Wed"}) {
    for (const char* team : {"A", "B", "C"}) {
      expected.Add(
          P({day, "*", "*", "*", "*", team, "*", "*", "*"}));
      expected.Add(
          P({day, "*", "*", "*", "*", "*", "*", team, "*"}));
    }
  }
  EXPECT_TRUE(result->patterns.SetEquals(expected))
      << result->patterns.ToString();
}

TEST_F(AnnotatedEvalTest, QhwInstanceAwareMatchesTable5) {
  // With promotion, teams A/B/C summarize to '*': the result is complete
  // for all of Monday and Wednesday (Table 5).
  AnnotatedEvalOptions options;
  options.instance_aware = true;
  auto result =
      EvaluateAnnotated(MakeHardwareWarningsQuery(), adb_, options);
  ASSERT_TRUE(result.ok());
  PatternSet expected;
  expected.Add(P({"Mon", "*", "*", "*", "*", "*", "*", "*", "*"}));
  expected.Add(P({"Wed", "*", "*", "*", "*", "*", "*", "*", "*"}));
  EXPECT_TRUE(result->patterns.SetEquals(expected))
      << result->patterns.ToString();
}

TEST_F(AnnotatedEvalTest, EquivalentPlansProduceSamePatterns) {
  // Corollary of soundness + completeness: pattern sets computed for
  // equivalent algebra expressions coincide (for minimal inputs).
  auto a = EvaluateAnnotated(MakeHardwareWarningsQuery(), adb_);
  auto b = EvaluateAnnotated(MakeHardwareWarningsQueryAlternate(), adb_);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // The alternate plan's output column order differs (W,M,T vs W,M,T —
  // here both end W.*, M.*, T.*), so compare directly.
  EXPECT_TRUE(a->patterns.SetEquals(b->patterns))
      << "plan A:\n"
      << a->patterns.ToString() << "plan B:\n"
      << b->patterns.ToString();
}

TEST_F(AnnotatedEvalTest, ProjectionKeepsOnlyWildcardPatterns) {
  // π_{¬day}(Warnings): only the week-1 pattern survives.
  auto result = EvaluateAnnotated(
      Expr::ProjectOut(Expr::Scan("Warnings"), "day"), adb_);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->patterns.size(), 1u);
  EXPECT_EQ(result->patterns[0], P({"1", "*", "*"}).WithValue(0, Value(1)));
}

TEST_F(AnnotatedEvalTest, AggregateCountsWithCompletenessGuarantee) {
  // Count warnings per (day, week): groups fully covered by a pattern are
  // complete (and hence their counts correct).
  ExprPtr agg = Expr::Aggregate(Expr::Scan("Warnings"), {"day", "week"},
                                {{AggFunc::kCount, "", "n"}});
  auto result = EvaluateAnnotated(agg, adb_);
  ASSERT_TRUE(result.ok());
  PatternSet expected;
  expected.Add(P({"*", "1", "*"}).WithValue(1, Value(1)));
  expected.Add(P({"Mon", "2", "*"}).WithValue(1, Value(2)));
  expected.Add(P({"Wed", "2", "*"}).WithValue(1, Value(2)));
  EXPECT_TRUE(result->patterns.SetEquals(expected))
      << result->patterns.ToString();
}

TEST_F(AnnotatedEvalTest, InfoTimingsPopulated) {
  AnnotatedEvalInfo info;
  auto result = EvaluateAnnotated(MakeHardwareWarningsQuery(), adb_,
                                  AnnotatedEvalOptions{}, &info);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(info.data_millis, 0.0);
  EXPECT_GE(info.pattern_millis, 0.0);
  EXPECT_GT(info.max_intermediate_patterns, 0u);
}

size_t CountPlanNodes(const Expr& expr) {
  size_t n = 1;
  if (expr.left() != nullptr) n += CountPlanNodes(*expr.left());
  if (expr.right() != nullptr) n += CountPlanNodes(*expr.right());
  return n;
}

TEST_F(AnnotatedEvalTest, CollectProfileRecordsOneOperatorPerPlanNode) {
  ExprPtr plan = MakeHardwareWarningsQuery();
  AnnotatedEvalOptions options;
  options.collect_profile = true;
  AnnotatedEvalInfo info;
  WallTimer timer;
  auto result = EvaluateAnnotated(plan, adb_, options, &info);
  const double total_micros = timer.ElapsedMillis() * 1000.0;
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(info.profile.operators.size(), CountPlanNodes(*plan));
  // Post-order: the root (depth 0) comes last; every operator knows its
  // depth and the leaves are scans.
  EXPECT_EQ(info.profile.operators.back().depth, 0);
  EXPECT_EQ(info.profile.operators.front().op, "scan");
  EXPECT_EQ(info.profile.operators.front().patterns_in, 0u);
  for (const OperatorProfile& op : info.profile.operators) {
    EXPECT_GE(op.pattern_micros, 0.0) << op.op;
    EXPECT_GE(op.data_micros, 0.0) << op.op;
  }
  // Per-operator micros are disjoint (each node times only its own
  // pattern and data steps), so their sum cannot exceed the measured
  // wall-clock total — the --explain-analyze invariant.
  EXPECT_LE(info.profile.OperatorMicrosTotal(), total_micros);
  EXPECT_GT(info.profile.OperatorMicrosTotal(), 0.0);
}

TEST_F(AnnotatedEvalTest, ProfileIsEmptyUnlessRequested) {
  AnnotatedEvalInfo info;
  ASSERT_TRUE(EvaluateAnnotated(MakeHardwareWarningsQuery(), adb_,
                                AnnotatedEvalOptions{}, &info)
                  .ok());
  EXPECT_TRUE(info.profile.operators.empty());
}

TEST_F(AnnotatedEvalTest, ZombiesRequireDomains) {
  AnnotatedEvalOptions options;
  options.zombies = true;
  // Keep zombies visible: Teams' base pattern (∗,∗) subsumes them, so
  // per-step minimization would fold them away immediately.
  options.minimize_each_step = false;
  AnnotatedEvalInfo info;
  // No domains registered: no zombies, plain results.
  auto result = EvaluateAnnotated(
      Expr::SelectConst(Expr::Scan("Teams"), "specialization", "hardware"),
      adb_, options, &info);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(info.zombies_added, 0u);

  adb_.domains().SetDomain(
      "specialization",
      {Value("hardware"), Value("software"), Value("network")});
  info = AnnotatedEvalInfo{};
  result = EvaluateAnnotated(
      Expr::SelectConst(Expr::Scan("Teams"), "specialization", "hardware"),
      adb_, options, &info);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(info.zombies_added, 2u);  // software, network
  EXPECT_TRUE(result->patterns.Contains(P({"*", "software"})))
      << result->patterns.ToString();
}

TEST_F(AnnotatedEvalTest, MinimizationCanBeDisabled) {
  AnnotatedEvalOptions options;
  options.minimize_each_step = false;
  auto raw = EvaluateAnnotated(MakeHardwareWarningsQuery(), adb_, options);
  options.minimize_each_step = true;
  auto minimized = EvaluateAnnotated(MakeHardwareWarningsQuery(), adb_,
                                     options);
  ASSERT_TRUE(raw.ok());
  ASSERT_TRUE(minimized.ok());
  EXPECT_GE(raw->patterns.size(), minimized->patterns.size());
  // Same information content: every raw pattern subsumed by a minimal one
  // and vice versa.
  for (const Pattern& p : raw->patterns) {
    EXPECT_TRUE(minimized->patterns.AnySubsumes(p));
  }
  for (const Pattern& p : minimized->patterns) {
    EXPECT_TRUE(raw->patterns.Contains(p));
  }
}

TEST_F(AnnotatedEvalTest, PatternTypeMismatchRejected) {
  // A pattern constant of the wrong type could never subsume a row;
  // rejecting it up front surfaces the authoring mistake.
  std::vector<Pattern::Cell> cells = {Value("Mon"), Value("two"),
                                      Pattern::Wildcard(),
                                      Pattern::Wildcard()};
  Status status = adb_.AddPattern("Warnings", Pattern(std::move(cells)));
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kTypeError);
}

TEST_F(AnnotatedEvalTest, UnknownTableFails) {
  auto result = EvaluateAnnotated(Expr::Scan("Nope"), adb_);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace pcdb
