#include <gtest/gtest.h>

#include "pattern/annotated_eval.h"
#include "relational/evaluator.h"
#include "sql/parser.h"
#include "sql/plan_optimizer.h"
#include "sql/planner.h"
#include "workloads/maintenance_example.h"
#include "workloads/wikipedia.h"

namespace pcdb {
namespace {

constexpr const char* kQhwSql =
    "SELECT * FROM Warnings W JOIN Maintenance M ON W.ID=M.ID "
    "JOIN Teams T ON M.responsible=T.name "
    "WHERE W.week=2 AND T.specialization='hardware'";

TEST(PlanWithOrderTest, AllOrdersProduceSameAnswerBag) {
  AnnotatedDatabase adb = MakeMaintenanceDatabase();
  auto stmt = ParseSelect(kQhwSql);
  ASSERT_TRUE(stmt.ok());
  auto reference = Evaluate(*PlanSelect(*stmt, adb.database()),
                            adb.database());
  ASSERT_TRUE(reference.ok());
  std::vector<size_t> order = {0, 1, 2};
  do {
    auto plan = PlanSelectWithOrder(*stmt, adb.database(), order);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    auto result = Evaluate(*plan, adb.database());
    ASSERT_TRUE(result.ok());
    // Column order differs with the join order; compare row counts and
    // a projected column that exists in all plans.
    EXPECT_EQ(result->num_rows(), reference->num_rows());
  } while (std::next_permutation(order.begin(), order.end()));
}

TEST(PlanWithOrderTest, AllOrdersProduceEquivalentPatterns) {
  // Soundness + completeness corollary: the computed pattern sets of
  // equivalent plans describe the same complete parts (modulo the
  // plans' column permutations, so compare coverage of the answer rows).
  AnnotatedDatabase adb = MakeMaintenanceDatabase();
  auto stmt = ParseSelect(kQhwSql);
  ASSERT_TRUE(stmt.ok());
  std::vector<size_t> order = {0, 1, 2};
  std::vector<size_t> guaranteed_counts;
  do {
    auto plan = PlanSelectWithOrder(*stmt, adb.database(), order);
    ASSERT_TRUE(plan.ok());
    auto result = EvaluateAnnotated(*plan, adb);
    ASSERT_TRUE(result.ok());
    size_t guaranteed = 0;
    for (const Tuple& row : result->data.rows()) {
      if (result->patterns.AnySubsumesTuple(row)) ++guaranteed;
    }
    guaranteed_counts.push_back(guaranteed);
  } while (std::next_permutation(order.begin(), order.end()));
  for (size_t g : guaranteed_counts) EXPECT_EQ(g, guaranteed_counts[0]);
}

TEST(PlanWithOrderTest, RejectsBadOrders) {
  AnnotatedDatabase adb = MakeMaintenanceDatabase();
  auto stmt = ParseSelect(kQhwSql);
  ASSERT_TRUE(stmt.ok());
  EXPECT_FALSE(PlanSelectWithOrder(*stmt, adb.database(), {0, 1}).ok());
  EXPECT_FALSE(PlanSelectWithOrder(*stmt, adb.database(), {0, 0, 1}).ok());
  EXPECT_FALSE(PlanSelectWithOrder(*stmt, adb.database(), {0, 1, 5}).ok());
}

TEST(PlanOptimizerTest, EnumeratesAllOrders) {
  AnnotatedDatabase adb = MakeMaintenanceDatabase();
  auto optimized = OptimizeSql(kQhwSql, adb, PlanObjective::kData);
  ASSERT_TRUE(optimized.ok()) << optimized.status().ToString();
  EXPECT_EQ(optimized->candidates.size(), 6u);  // 3! orders
  // Candidates are sorted by cost.
  for (size_t i = 1; i < optimized->candidates.size(); ++i) {
    EXPECT_LE(optimized->candidates[i - 1].cost,
              optimized->candidates[i].cost);
  }
  EXPECT_EQ(optimized->best.cost, optimized->candidates[0].cost);
}

TEST(PlanOptimizerTest, BestPlanEvaluatesCorrectly) {
  AnnotatedDatabase adb = MakeMaintenanceDatabase();
  for (PlanObjective objective :
       {PlanObjective::kData, PlanObjective::kMetadata}) {
    auto optimized = OptimizeSql(kQhwSql, adb, objective);
    ASSERT_TRUE(optimized.ok());
    auto result = Evaluate(optimized->best.plan, adb.database());
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->num_rows(), 3u);
  }
}

TEST(PlanOptimizerTest, DataObjectivePrefersSelectiveJoinsFirst) {
  // country ⋈ city (278 rows) vs city ⋈ school (huge): a data-optimal
  // plan for the 3-way Q5 must not start with the state join.
  WikipediaConfig config;
  config.num_cities = 3000;
  config.num_schools = 800;
  config.num_states = 40;
  AnnotatedDatabase adb = MakeWikipediaDatabase(config);
  auto optimized = OptimizeSql(
      "SELECT * FROM country, city, school WHERE "
      "country.capital=city.name AND city.state=school.state",
      adb, PlanObjective::kData);
  ASSERT_TRUE(optimized.ok()) << optimized.status().ToString();
  // The most expensive candidate should cost far more than the best:
  // the optimizer has a real decision to make here.
  EXPECT_GT(optimized->candidates.back().cost,
            optimized->best.cost * 2);
}

TEST(PlanOptimizerTest, MetadataCostIsPatternDriven) {
  AnnotatedDatabase adb = MakeMaintenanceDatabase();
  auto optimized = OptimizeSql(kQhwSql, adb, PlanObjective::kMetadata);
  ASSERT_TRUE(optimized.ok());
  EXPECT_GT(optimized->best.cost, 0);
  // Metadata costs are tiny numbers of patterns, not row estimates.
  EXPECT_LT(optimized->best.cost, 1000);
}

TEST(PlanOptimizerTest, ObjectivesCanDisagree) {
  // Construct a database where the pattern-heavy table is tiny and the
  // pattern-light table is huge: a data-driven optimizer and a
  // metadata-driven optimizer should rank orders differently.
  AnnotatedDatabase adb;
  ASSERT_TRUE(adb.CreateTable("big", Schema({{"k", ValueType::kInt64},
                                             {"p", ValueType::kInt64}}))
                  .ok());
  ASSERT_TRUE(adb.CreateTable("small", Schema({{"k", ValueType::kInt64},
                                               {"q", ValueType::kInt64}}))
                  .ok());
  ASSERT_TRUE(adb.CreateTable("mid", Schema({{"k", ValueType::kInt64},
                                             {"r", ValueType::kInt64}}))
                  .ok());
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(adb.AddRow("big", {Value(i % 50), Value(i)}).ok());
  }
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(adb.AddRow("small", {Value(i), Value(i)}).ok());
    // Many patterns on the small table.
    ASSERT_TRUE(
        adb.AddPattern("small", {std::to_string(i), std::to_string(i)}).ok());
  }
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(adb.AddRow("mid", {Value(i % 20), Value(i)}).ok());
  }
  ASSERT_TRUE(adb.AddPattern("big", {"*", "*"}).ok());
  ASSERT_TRUE(adb.AddPattern("mid", {"*", "*"}).ok());
  const std::string sql =
      "SELECT * FROM big, small, mid WHERE big.k=small.k AND small.k=mid.k";
  auto data_opt = OptimizeSql(sql, adb, PlanObjective::kData);
  auto meta_opt = OptimizeSql(sql, adb, PlanObjective::kMetadata);
  ASSERT_TRUE(data_opt.ok());
  ASSERT_TRUE(meta_opt.ok());
  // Both must at least produce valid plans with finite costs; whether
  // the orders differ depends on statistics, but the metadata cost of
  // the metadata-best plan can never exceed that of the data-best plan.
  size_t meta_cost_of_meta_best = 0;
  size_t meta_cost_of_data_best = 0;
  ASSERT_TRUE(ComputeQueryPatterns(meta_opt->best.plan, adb,
                                   AnnotatedEvalOptions{},
                                   &meta_cost_of_meta_best)
                  .ok());
  ASSERT_TRUE(ComputeQueryPatterns(data_opt->best.plan, adb,
                                   AnnotatedEvalOptions{},
                                   &meta_cost_of_data_best)
                  .ok());
  EXPECT_LE(meta_cost_of_meta_best, meta_cost_of_data_best);
}

TEST(ComputeQueryPatternsTest, MatchesAnnotatedEvaluation) {
  AnnotatedDatabase adb = MakeMaintenanceDatabase();
  ExprPtr q = MakeHardwareWarningsQuery();
  auto schema_only = ComputeQueryPatterns(q, adb);
  ASSERT_TRUE(schema_only.ok()) << schema_only.status().ToString();
  auto full = EvaluateAnnotated(q, adb);
  ASSERT_TRUE(full.ok());
  EXPECT_TRUE(schema_only->SetEquals(full->patterns))
      << schema_only->ToString();
}

TEST(ComputeQueryPatternsTest, RejectsInstanceAwareOptions) {
  AnnotatedDatabase adb = MakeMaintenanceDatabase();
  AnnotatedEvalOptions options;
  options.instance_aware = true;
  auto result =
      ComputeQueryPatterns(MakeHardwareWarningsQuery(), adb, options);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ComputeQueryPatternsTest, ReportsIntermediateCost) {
  AnnotatedDatabase adb = MakeMaintenanceDatabase();
  size_t cost = 0;
  auto result = ComputeQueryPatterns(MakeHardwareWarningsQuery(), adb,
                                     AnnotatedEvalOptions{}, &cost);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(cost, result->size());
}

}  // namespace
}  // namespace pcdb
