// Property tests that check whole-algorithm invariants against brute
// force on small instances.

#include <gtest/gtest.h>

#include "common/random.h"
#include "pattern/annotated_eval.h"
#include "pattern/entailment.h"
#include "pattern/minimize.h"
#include "workloads/drop_simulation.h"

namespace pcdb {
namespace {

/// All patterns over the given per-position domains (each cell is the
/// wildcard or a domain value) — the full pattern space for brute force.
std::vector<Pattern> AllPatterns(
    const std::vector<std::vector<Value>>& domains) {
  std::vector<Pattern> out = {Pattern::AllWildcards(0)};
  for (const std::vector<Value>& domain : domains) {
    std::vector<Pattern> next;
    for (const Pattern& prefix : out) {
      next.push_back(prefix.Concat(Pattern::AllWildcards(1)));
      for (const Value& v : domain) {
        next.push_back(
            prefix.Concat(Pattern::AllWildcards(1).WithValue(0, v)));
      }
    }
    out = std::move(next);
  }
  return out;
}

TEST(DropSimulatorBruteForceTest, MaintainsExactlyTheMaximalValidPatterns) {
  // The §4.3 generator claims to maintain "all possible most general
  // specializations that continue to hold" — i.e. exactly the maximal
  // patterns subsuming no dropped combination. Brute-force that claim
  // over a small domain and random drop sequences.
  std::vector<std::vector<Value>> domains = {
      {Value("a"), Value("b")},
      {Value("x"), Value("y"), Value("z")},
      {Value("0"), Value("1")},
  };
  std::vector<Pattern> space = AllPatterns(domains);
  ASSERT_EQ(space.size(), 3u * 4u * 3u);

  Rng rng(2468);
  for (int round = 0; round < 15; ++round) {
    // A random table over the domain (rows may repeat combos).
    Table table(Schema({{"c0", ValueType::kString},
                        {"c1", ValueType::kString},
                        {"c2", ValueType::kString}}));
    const int rows = 8;
    for (int r = 0; r < rows; ++r) {
      ASSERT_TRUE(table
                      .Append({rng.Pick(domains[0]), rng.Pick(domains[1]),
                               rng.Pick(domains[2])})
                      .ok());
    }
    DropSimulator sim(table, {0, 1, 2}, domains);
    std::vector<Tuple> dropped;
    for (int step = 0; step < 5; ++step) {
      size_t row = rng.UniformUint64(table.num_rows());
      if (!sim.IsDropped(row)) dropped.push_back(table.row(row));
      sim.DropRow(row);

      // Brute force: valid = subsumes no dropped combo; expected =
      // maximal valid patterns.
      PatternSet valid;
      for (const Pattern& p : space) {
        bool ok = true;
        for (const Tuple& combo : dropped) {
          if (p.SubsumesTuple(combo)) {
            ok = false;
            break;
          }
        }
        if (ok) valid.Add(p);
      }
      PatternSet expected = Minimize(valid);
      EXPECT_TRUE(sim.patterns().SetEquals(expected))
          << "round " << round << " step " << step << "\nsimulator:\n"
          << sim.patterns().ToString() << "expected:\n"
          << expected.ToString();
    }
  }
}

TEST(ZombieSoundnessPropertyTest, ZombiePatternsAreEntailed) {
  // Zombie patterns (Appendix E) assert completeness of slices that can
  // never be populated; verify against the candidate-completion model
  // checker on random instances with known attribute domains.
  Rng rng(1357);
  const std::vector<std::string> values = {"u", "v", "w"};
  int checked = 0;
  for (int round = 0; round < 15; ++round) {
    AnnotatedDatabase adb;
    ASSERT_TRUE(adb.CreateTable("R", Schema({{"a", ValueType::kString},
                                             {"b", ValueType::kString}}))
                    .ok());
    ASSERT_TRUE(adb.CreateTable("S", Schema({{"c", ValueType::kString},
                                             {"d", ValueType::kString}}))
                    .ok());
    std::vector<Value> domain;
    for (const std::string& v : values) domain.push_back(Value(v));
    adb.domains().SetDomain("a", domain);
    adb.domains().SetDomain("b", domain);
    adb.domains().SetDomain("c", domain);
    adb.domains().SetDomain("d", domain);
    for (const char* table : {"R", "S"}) {
      int n = static_cast<int>(rng.UniformInt(0, 3));
      for (int i = 0; i < n; ++i) {
        ASSERT_TRUE(
            adb.AddRow(table, {rng.Pick(values), rng.Pick(values)}).ok());
      }
      int p = static_cast<int>(rng.UniformInt(0, 2));
      for (int i = 0; i < p; ++i) {
        std::vector<std::string> fields;
        for (int j = 0; j < 2; ++j) {
          fields.push_back(rng.Bernoulli(0.5) ? "*" : rng.Pick(values));
        }
        ASSERT_TRUE(adb.AddPattern(table, fields).ok());
      }
    }
    std::vector<ExprPtr> queries = {
        Expr::SelectConst(Expr::Scan("R"), "a", Value(rng.Pick(values))),
        Expr::Join(Expr::Scan("R"), Expr::Scan("S"), "b", "c"),
        Expr::SelectConst(
            Expr::Join(Expr::Scan("R"), Expr::Scan("S"), "b", "c"), "a",
            Value(rng.Pick(values))),
    };
    AnnotatedEvalOptions options;
    options.zombies = true;
    options.minimize_each_step = false;  // keep zombies visible
    for (const ExprPtr& q : queries) {
      auto result = EvaluateAnnotated(q, adb, options);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      for (const Pattern& p : result->patterns) {
        auto entailed = EntailsWrtInstance(adb, q, p);
        ASSERT_TRUE(entailed.ok()) << entailed.status().ToString();
        EXPECT_TRUE(*entailed)
            << "round " << round << " query " << q->ToString()
            << " pattern " << p.ToString();
        ++checked;
      }
    }
  }
  EXPECT_GT(checked, 60);
}

TEST(AggregateSoundnessPropertyTest, AggregatePatternsAreEntailed) {
  // Appendix B: completeness patterns over aggregate answers guarantee
  // both completeness and correctness of the covered groups. Verify
  // against the model checker — a completion adding any tuple to a
  // covered group would change its COUNT, so the checker exercises the
  // correctness half too.
  Rng rng(424242);
  const std::vector<std::string> values = {"u", "v"};
  int checked = 0;
  for (int round = 0; round < 20; ++round) {
    AnnotatedDatabase adb;
    ASSERT_TRUE(adb.CreateTable("R", Schema({{"g", ValueType::kString},
                                             {"h", ValueType::kString}}))
                    .ok());
    int rows = static_cast<int>(rng.UniformInt(0, 4));
    for (int i = 0; i < rows; ++i) {
      ASSERT_TRUE(adb.AddRow("R", {rng.Pick(values), rng.Pick(values)}).ok());
    }
    int patterns = static_cast<int>(rng.UniformInt(0, 2));
    for (int i = 0; i < patterns; ++i) {
      ASSERT_TRUE(adb.AddPattern(
                         "R", {rng.Bernoulli(0.5) ? "*" : rng.Pick(values),
                               rng.Bernoulli(0.5) ? "*" : rng.Pick(values)})
                      .ok());
    }
    for (auto func : {AggFunc::kCount, AggFunc::kMin, AggFunc::kMax}) {
      ExprPtr q = Expr::Aggregate(
          Expr::Scan("R"), {"g"},
          {{func, func == AggFunc::kCount ? "" : "h", "agg"}});
      auto result = EvaluateAnnotated(q, adb);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      for (const Pattern& p : result->patterns) {
        auto entailed = EntailsWrtInstance(adb, q, p);
        ASSERT_TRUE(entailed.ok()) << entailed.status().ToString();
        EXPECT_TRUE(*entailed)
            << "round " << round << " func "
            << AggFuncToString(func) << " pattern " << p.ToString();
        ++checked;
      }
    }
  }
  EXPECT_GT(checked, 10);
}

TEST(LimitSoundnessPropertyTest, LimitPatternsAreEntailed) {
  // The LIMIT pattern rule (patterns survive only under full input
  // completeness) must be sound wrt the model checker.
  Rng rng(535353);
  const std::vector<std::string> values = {"u", "v"};
  int checked = 0;
  for (int round = 0; round < 20; ++round) {
    AnnotatedDatabase adb;
    ASSERT_TRUE(adb.CreateTable("R", Schema({{"g", ValueType::kString},
                                             {"h", ValueType::kString}}))
                    .ok());
    int rows = static_cast<int>(rng.UniformInt(0, 4));
    for (int i = 0; i < rows; ++i) {
      ASSERT_TRUE(adb.AddRow("R", {rng.Pick(values), rng.Pick(values)}).ok());
    }
    if (rng.Bernoulli(0.5)) {
      ASSERT_TRUE(adb.AddPattern("R", {"*", "*"}).ok());
    } else if (rng.Bernoulli(0.5)) {
      ASSERT_TRUE(adb.AddPattern("R", {rng.Pick(values), "*"}).ok());
    }
    ExprPtr q = Expr::Limit(
        Expr::Sort(Expr::Scan("R"), {"g", "h"}),
        rng.UniformUint64(5));
    auto result = EvaluateAnnotated(q, adb);
    ASSERT_TRUE(result.ok());
    for (const Pattern& p : result->patterns) {
      auto entailed = EntailsWrtInstance(adb, q, p);
      ASSERT_TRUE(entailed.ok()) << entailed.status().ToString();
      EXPECT_TRUE(*entailed) << "round " << round << " query "
                             << q->ToString() << " pattern " << p.ToString();
      ++checked;
    }
  }
  EXPECT_GT(checked, 3);
}

TEST(MinimizeEquivalencePropertyTest, MinimizationPreservesCoverage) {
  // Coverage of a pattern set = the set of tuples it subsumes; Minimize
  // must preserve it exactly. Check by sampling tuples over a small
  // domain.
  Rng rng(8642);
  const std::vector<std::string> values = {"p", "q", "r"};
  for (int round = 0; round < 30; ++round) {
    PatternSet input;
    int n = static_cast<int>(rng.UniformInt(0, 25));
    for (int i = 0; i < n; ++i) {
      std::vector<Pattern::Cell> cells;
      for (int j = 0; j < 3; ++j) {
        cells.push_back(rng.Bernoulli(0.4)
                            ? Pattern::Wildcard()
                            : Pattern::Cell(Value(rng.Pick(values))));
      }
      input.Add(Pattern(std::move(cells)));
    }
    PatternSet minimized = Minimize(input);
    for (const std::string& a : values) {
      for (const std::string& b : values) {
        for (const std::string& c : values) {
          Tuple t = {Value(a), Value(b), Value(c)};
          EXPECT_EQ(input.AnySubsumesTuple(t),
                    minimized.AnySubsumesTuple(t))
              << "round " << round << " tuple " << TupleToString(t);
        }
      }
    }
  }
}

TEST(InstanceAwareStrictlyStrongerPropertyTest, PromotionOnlyGeneralizes) {
  // The instance-aware algebra must dominate the schema-level algebra:
  // every schema-level pattern is subsumed by some instance-aware one.
  Rng rng(9753);
  const std::vector<std::string> values = {"u", "v", "w"};
  for (int round = 0; round < 20; ++round) {
    AnnotatedDatabase adb;
    ASSERT_TRUE(adb.CreateTable("R", Schema({{"a", ValueType::kString},
                                             {"b", ValueType::kString}}))
                    .ok());
    ASSERT_TRUE(adb.CreateTable("S", Schema({{"c", ValueType::kString},
                                             {"d", ValueType::kString}}))
                    .ok());
    for (const char* table : {"R", "S"}) {
      int n = static_cast<int>(rng.UniformInt(1, 4));
      for (int i = 0; i < n; ++i) {
        ASSERT_TRUE(
            adb.AddRow(table, {rng.Pick(values), rng.Pick(values)}).ok());
      }
      int p = static_cast<int>(rng.UniformInt(1, 3));
      for (int i = 0; i < p; ++i) {
        std::vector<std::string> fields;
        for (int j = 0; j < 2; ++j) {
          fields.push_back(rng.Bernoulli(0.5) ? "*" : rng.Pick(values));
        }
        ASSERT_TRUE(adb.AddPattern(table, fields).ok());
      }
    }
    ExprPtr q = Expr::Join(Expr::Scan("R"), Expr::Scan("S"), "b", "c");
    auto schema_level = EvaluateAnnotated(q, adb);
    AnnotatedEvalOptions aware;
    aware.instance_aware = true;
    auto instance_level = EvaluateAnnotated(q, adb, aware);
    ASSERT_TRUE(schema_level.ok());
    ASSERT_TRUE(instance_level.ok());
    for (const Pattern& p : schema_level->patterns) {
      EXPECT_TRUE(instance_level->patterns.AnySubsumes(p))
          << "round " << round << " pattern " << p.ToString()
          << " lost by the instance-aware algebra";
    }
  }
}

}  // namespace
}  // namespace pcdb
