#include <gtest/gtest.h>

#include "common/random.h"
#include "pattern/gaps.h"
#include "pattern/minimize.h"
#include "workloads/maintenance_example.h"

namespace pcdb {
namespace {

Pattern P(const std::vector<std::string>& fields) {
  std::vector<Pattern::Cell> cells;
  for (const auto& f : fields) {
    if (f == "*") {
      cells.push_back(Pattern::Wildcard());
    } else {
      cells.push_back(Value(f));
    }
  }
  return Pattern(std::move(cells));
}

std::vector<std::vector<Value>> Domains(
    const std::vector<std::vector<std::string>>& raw) {
  std::vector<std::vector<Value>> out;
  for (const auto& domain : raw) {
    std::vector<Value> values;
    for (const auto& v : domain) values.push_back(Value(v));
    out.push_back(std::move(values));
  }
  return out;
}

TEST(CoverageGapsTest, NoPatternsMeansEverythingIsAGap) {
  auto gaps = CoverageGaps(PatternSet(), Domains({{"a", "b"}, {"x"}}));
  ASSERT_TRUE(gaps.ok()) << gaps.status().ToString();
  ASSERT_EQ(gaps->size(), 1u);
  EXPECT_TRUE((*gaps)[0].IsAllWildcards());
}

TEST(CoverageGapsTest, FullCompletenessLeavesNoGap) {
  PatternSet asserted;
  asserted.Add(P({"*", "*"}));
  auto gaps = CoverageGaps(asserted, Domains({{"a", "b"}, {"x", "y"}}));
  ASSERT_TRUE(gaps.ok());
  EXPECT_TRUE(gaps->empty());
}

TEST(CoverageGapsTest, SingleSliceAsserted) {
  // Coverage of (a, ∗) over domain {a,b,c} × {x,y}: the uncovered
  // maximal slices are (b, ∗) and (c, ∗).
  PatternSet asserted;
  asserted.Add(P({"a", "*"}));
  auto gaps =
      CoverageGaps(asserted, Domains({{"a", "b", "c"}, {"x", "y"}}));
  ASSERT_TRUE(gaps.ok());
  PatternSet expected;
  expected.Add(P({"b", "*"}));
  expected.Add(P({"c", "*"}));
  EXPECT_TRUE(gaps->SetEquals(expected)) << gaps->ToString();
}

TEST(CoverageGapsTest, CrossCutting) {
  // Asserted (a,∗) and (∗,x): the only fully uncovered maximal slice is
  // (b, y) — everything else intersects an assertion.
  PatternSet asserted;
  asserted.Add(P({"a", "*"}));
  asserted.Add(P({"*", "x"}));
  auto gaps = CoverageGaps(asserted, Domains({{"a", "b"}, {"x", "y"}}));
  ASSERT_TRUE(gaps.ok());
  ASSERT_EQ(gaps->size(), 1u);
  EXPECT_EQ((*gaps)[0], P({"b", "y"}));
}

TEST(CoverageGapsTest, GapsAreSoundAndMaximalByBruteForce) {
  // Differential against enumeration over a small domain: the gap set
  // must equal the minimized set of all patterns disjoint from every
  // asserted pattern.
  std::vector<std::vector<std::string>> raw_domains = {
      {"a", "b"}, {"x", "y", "z"}};
  auto domains = Domains(raw_domains);
  // All patterns over the domain.
  std::vector<Pattern> space;
  for (int i = -1; i < 2; ++i) {
    for (int j = -1; j < 3; ++j) {
      std::vector<Pattern::Cell> cells;
      cells.push_back(i < 0 ? Pattern::Wildcard()
                            : Pattern::Cell(Value(raw_domains[0][i])));
      cells.push_back(j < 0 ? Pattern::Wildcard()
                            : Pattern::Cell(Value(raw_domains[1][j])));
      space.push_back(Pattern(std::move(cells)));
    }
  }
  Rng rng(777);
  for (int round = 0; round < 40; ++round) {
    PatternSet asserted;
    int n = static_cast<int>(rng.UniformInt(0, 4));
    for (int i = 0; i < n; ++i) {
      asserted.Add(space[rng.UniformUint64(space.size())]);
    }
    auto gaps = CoverageGaps(asserted, domains);
    ASSERT_TRUE(gaps.ok()) << gaps.status().ToString();
    PatternSet expected_raw;
    for (const Pattern& p : space) {
      bool disjoint = true;
      for (const Pattern& q : asserted) {
        if (p.UnifiableWith(q)) {
          disjoint = false;
          break;
        }
      }
      if (disjoint) expected_raw.Add(p);
    }
    PatternSet expected = Minimize(expected_raw);
    EXPECT_TRUE(gaps->SetEquals(expected))
        << "round " << round << "\nasserted:\n"
        << asserted.ToString() << "got:\n"
        << gaps->ToString() << "expected:\n"
        << expected.ToString();
  }
}

TEST(CoverageGapsTest, BudgetExceededReportsOutOfRange) {
  // Many narrow assertions over a large domain explode the gap count.
  PatternSet asserted;
  std::vector<std::vector<std::string>> raw;
  std::vector<std::string> big;
  for (int i = 0; i < 30; ++i) big.push_back("v" + std::to_string(i));
  for (int j = 0; j < 6; ++j) raw.push_back(big);
  std::vector<std::string> one_assert(6, "v0");
  asserted.Add(P(one_assert));
  auto gaps = CoverageGaps(asserted, Domains(raw), /*max_gaps=*/10);
  EXPECT_FALSE(gaps.ok());
  EXPECT_EQ(gaps.status().code(), StatusCode::kOutOfRange);
}

TEST(CoverageGapsTest, ArityMismatchRejected) {
  PatternSet asserted;
  asserted.Add(P({"a", "*"}));
  EXPECT_FALSE(CoverageGaps(asserted, Domains({{"a"}})).ok());
}

TEST(TableCoverageGapsTest, MaintenanceGapIsTeamD) {
  // Maintenance is complete for teams A, B and C; with the responsible
  // domain bounded to {A,B,C,D} the only maximal gap is team D.
  AnnotatedDatabase adb = MakeMaintenanceDatabase();
  adb.domains().SetDomain(
      "responsible", {Value("A"), Value("B"), Value("C"), Value("D")});
  auto gaps = TableCoverageGaps(adb, "Maintenance");
  ASSERT_TRUE(gaps.ok()) << gaps.status().ToString();
  ASSERT_EQ(gaps->size(), 1u);
  EXPECT_EQ((*gaps)[0], P({"*", "D", "*"}));
}

TEST(TableCoverageGapsTest, FullyCompleteTableHasNoGaps) {
  AnnotatedDatabase adb = MakeMaintenanceDatabase();
  auto gaps = TableCoverageGaps(adb, "Teams");
  ASSERT_TRUE(gaps.ok());
  EXPECT_TRUE(gaps->empty());
}

}  // namespace
}  // namespace pcdb
