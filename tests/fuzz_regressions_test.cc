#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "relational/csv.h"
#include "relational/schema.h"
#include "sql/lexer.h"
#include "sql/parser.h"

// Regression pins for the fuzz-found input classes (fuzz/README.md):
// adversarial SQL and CSV edge rows. These run under plain ctest with
// any toolchain, so the protection does not depend on libFuzzer being
// available — the harnesses explore, this file remembers.

namespace pcdb {
namespace {

// ---------------------------------------------------------------------------
// Adversarial SQL: the lexer/parser must fail with a Status (never
// crash, hang, or silently succeed) on malformed input.

TEST(SqlFuzzRegressionTest, UnterminatedStringsAreParseErrors) {
  for (const char* sql : {
           "SELECT * FROM t WHERE a = 'unterminated",
           "SELECT * FROM t WHERE a = '",
           "SELECT * FROM t WHERE a = 'escaped '' still open",
           "'",
           "'''",
       }) {
    auto tokens = Tokenize(sql);
    EXPECT_FALSE(tokens.ok()) << sql;
    EXPECT_FALSE(ParseQuery(sql).ok()) << sql;
  }
}

TEST(SqlFuzzRegressionTest, DeeplyNestedParensDoNotOverflowTheParser) {
  // The grammar only allows one paren level (around aggregate args);
  // a mountain of parens must be rejected cleanly — linear-time and
  // without recursing once per paren.
  const std::string deep(100000, '(');
  auto tokens = Tokenize("SELECT COUNT" + deep + "x");
  ASSERT_TRUE(tokens.ok());  // lexing parens is fine
  EXPECT_FALSE(ParseSelect("SELECT COUNT" + deep + "x").ok());
  EXPECT_FALSE(ParseQuery("SELECT " + deep).ok());
}

TEST(SqlFuzzRegressionTest, HugeIntegerLiteralsAreRejectedNotUndefined) {
  // Beyond-int64 literals must surface as ParseError from the checked
  // from_chars conversion, not as overflow UB or a throw.
  for (const char* sql : {
           "SELECT * FROM t WHERE a = 99999999999999999999999999",
           "SELECT * FROM t LIMIT 18446744073709551617",
           "SELECT * FROM t WHERE a = 170141183460469231731687303715884105728",
       }) {
    EXPECT_FALSE(ParseQuery(sql).ok()) << sql;
  }
  // Boundary values that DO fit must keep working.
  EXPECT_TRUE(
      ParseQuery("SELECT * FROM t WHERE a = 9223372036854775807").ok());
}

TEST(SqlFuzzRegressionTest, GarbageBytesNeverCrashTheFrontend) {
  for (const char* sql : {
           "", ";;;", "\x01\x02\xff\xfe", "SELECT", "SELECT FROM",
           "SELECT * FROM", "SELECT * FROM t WHERE", "UNION ALL",
           "SELECT * FROM t UNION ALL", "= = = =", ". . .",
           "SELECT *, FROM t", "SELECT a FROM t GROUP BY",
       }) {
    auto parsed = ParseQuery(sql);  // outcome irrelevant; must not crash
    (void)parsed;
  }
}

TEST(SqlFuzzRegressionTest, TokenPositionsStayOrderedAndInBounds) {
  const std::string sql = "SELECT a.b, COUNT(*) FROM t WHERE x = 'q''t'";
  auto tokens = Tokenize(sql);
  ASSERT_TRUE(tokens.ok());
  size_t prev = 0;
  for (const Token& t : *tokens) {
    EXPECT_GE(t.position, prev);
    EXPECT_LE(t.position, sql.size());
    prev = t.position;
  }
  ASSERT_FALSE(tokens->empty());
  EXPECT_EQ(tokens->back().kind, TokenKind::kEnd);
}

// ---------------------------------------------------------------------------
// CSV edge rows: RFC-4180 quoting corners must parse (or fail) cleanly
// and round-trip exactly through WriteCsvString.

Schema TwoStringCols() {
  return Schema({{"a", ValueType::kString}, {"b", ValueType::kString}});
}

TEST(CsvFuzzRegressionTest, QuotedEdgeRowsRoundTrip) {
  const Schema schema = TwoStringCols();
  const std::string text =
      "a,b\n"
      "\"comma,inside\",plain\n"
      "\"embedded\nnewline\",\"doubled\"\"quote\"\n"
      "\"  padded  \",\"\"\n";
  auto table = ReadCsvString(text, schema);
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  ASSERT_EQ(table->num_rows(), 3u);
  EXPECT_EQ(table->row(0)[0].str(), "comma,inside");
  EXPECT_EQ(table->row(1)[0].str(), "embedded\nnewline");
  EXPECT_EQ(table->row(1)[1].str(), "doubled\"quote");
  EXPECT_EQ(table->row(2)[0].str(), "  padded  ");  // quoted keeps spaces
  EXPECT_EQ(table->row(2)[1].str(), "");

  auto reread = ReadCsvString(WriteCsvString(*table), schema);
  ASSERT_TRUE(reread.ok());
  ASSERT_EQ(reread->num_rows(), table->num_rows());
  for (size_t r = 0; r < table->num_rows(); ++r) {
    EXPECT_EQ(table->row(r), reread->row(r)) << "row " << r;
  }
}

TEST(CsvFuzzRegressionTest, MalformedQuotingIsAParseError) {
  const Schema schema = TwoStringCols();
  for (const char* text : {
           "a,b\n\"unclosed,x\n",          // quote never closes
           "a,b\n\"mid\"dle,x\n",          // text after closing quote
           "a,b\nx,\"trailing\"junk\n",    // junk after quoted field
       }) {
    EXPECT_FALSE(ReadCsvString(text, schema).ok()) << text;
  }
}

TEST(CsvFuzzRegressionTest, ArityAndTypeMismatchesAreParseErrors) {
  const Schema schema =
      Schema({{"n", ValueType::kInt64}, {"s", ValueType::kString}});
  EXPECT_FALSE(ReadCsvString("n,s\n1\n", schema).ok());          // too few
  EXPECT_FALSE(ReadCsvString("n,s\n1,x,extra\n", schema).ok());  // too many
  EXPECT_FALSE(ReadCsvString("n,s\nnotanint,x\n", schema).ok());
  EXPECT_FALSE(
      ReadCsvString("n,s\n99999999999999999999,x\n", schema).ok());
  EXPECT_TRUE(ReadCsvString("n,s\n-9223372036854775808,x\n", schema).ok());
}

TEST(CsvFuzzRegressionTest, CrLfAndFinalLineWithoutNewline) {
  const Schema schema = TwoStringCols();
  auto table = ReadCsvString("a,b\r\nx,y\r\nlast,row", schema);
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  ASSERT_EQ(table->num_rows(), 2u);
  EXPECT_EQ(table->row(0)[0].str(), "x");
  EXPECT_EQ(table->row(1)[1].str(), "row");
}

TEST(CsvFuzzRegressionTest, EmptyAndHeaderOnlyInputs) {
  const Schema schema = TwoStringCols();
  auto empty = ReadCsvString("", schema);
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->num_rows(), 0u);
  auto header_only = ReadCsvString("a,b\n", schema);
  ASSERT_TRUE(header_only.ok());
  EXPECT_EQ(header_only->num_rows(), 0u);
}

}  // namespace
}  // namespace pcdb
