// Figure 2: pattern counts under *systematic* data loss — dropping
// network elements that share a name prefix (prefixes carry semantics:
// same-prefix elements have correlated attribute values).
//
// Paper's finding: for all three tested prefixes the pattern count
// converges faster and to smaller values than under random drops.

#include "bench_util.h"
#include "common/string_util.h"

namespace {

using namespace pcdb;
using namespace pcdb::bench;

void RunPrefixSeries(const NetworkElementsData& data,
                     const std::string& prefix, size_t max_drops) {
  DropSimulator sim(data.table, data.dimension_columns,
                    data.dimension_domains);
  std::printf("prefix '%s': dropped_records -> num_patterns\n",
              prefix.c_str());
  size_t dropped = 0;
  for (size_t row = 0; row < data.table.num_rows() && dropped < max_drops;
       ++row) {
    if (!StartsWith(data.table.row(row)[0].str(), prefix)) continue;
    sim.DropRow(row);
    ++dropped;
    if (dropped % (max_drops / 10) == 0) {
      std::printf("  %6zu -> %zu\n", dropped, sim.num_patterns());
    }
  }
  std::printf("  (total dropped: %zu, final patterns: %zu)\n\n", dropped,
              sim.num_patterns());
}

}  // namespace

int main() {
  Banner("Figure 2",
         "pattern counts under systematic data loss (same-prefix drops)");

  NetworkElementsConfig config;
  config.num_rows = 100000;
  NetworkElementsData data = GenerateNetworkElements(config);

  // Random baseline for comparison (the Fig. 1 curve).
  DropSimulator random_sim(data.table, data.dimension_columns,
                           data.dimension_domains);
  Rng rng(42);
  size_t dropped = 0;
  while (dropped < 500) {
    size_t row = rng.UniformUint64(data.table.num_rows());
    if (random_sim.IsDropped(row)) continue;
    random_sim.DropRow(row);
    ++dropped;
  }
  std::printf("random drops baseline: 500 drops -> %zu patterns\n\n",
              random_sim.num_patterns());

  // The paper drops three prefixes (Cnu, Dxu, Clu); we use the first
  // three realized prefixes of the generated table.
  size_t shown = 0;
  for (const std::string& prefix : data.name_prefixes) {
    if (shown == 3) break;
    RunPrefixSeries(data, prefix, 500);
    ++shown;
  }
  std::printf("Expected shape (paper): all prefix curves converge more\n"
              "quickly and to fewer patterns than the random baseline;\n"
              "curves rise when violated patterns can be specialized and\n"
              "fall when they cannot.\n");
  return 0;
}
