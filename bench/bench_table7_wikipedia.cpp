// Table 7 / §4.2: the Wikipedia experiment — query evaluation time vs
// completeness calculation time for the seven join queries over the
// cities / countries / schools tables with 21 completeness statements.
//
// Paper's findings to reproduce: query cost varies over four orders of
// magnitude with result size (278 … 3M rows), while completeness
// calculation cost is nearly constant and small (median 23% of the
// median query time; the paper's range was 397–991 ms vs queries of
// 30 ms … 175 s); metadata record counts stay between 9 and 100.

#include "bench_util.h"
#include "common/timer.h"
#include "pattern/annotated_eval.h"
#include "sql/planner.h"
#include "workloads/wikipedia.h"

int main() {
  using namespace pcdb;
  using namespace pcdb::bench;

  Banner("Table 7 / §4.2", "Wikipedia use case: query vs completeness cost");

  WikipediaConfig config;  // paper-scale: 55k cities, 200 countries, 10k
                           // schools, 21 statements
  AnnotatedDatabase adb = MakeWikipediaDatabase(config);
  std::printf("cities: %zu, countries: %zu, schools: %zu, completeness "
              "statements: %zu\n\n",
              (*adb.database().GetTable("city"))->num_rows(),
              (*adb.database().GetTable("country"))->num_rows(),
              (*adb.database().GetTable("school"))->num_rows(),
              adb.patterns("city").size() + adb.patterns("country").size() +
                  adb.patterns("school").size());

  std::printf("%-4s %12s %12s %12s %12s\n", "id", "query ms", "metadata ms",
              "result rows", "meta records");
  std::vector<double> query_times;
  std::vector<double> metadata_times;
  for (const WikipediaQuery& q : WikipediaQueries()) {
    auto plan = PlanSql(q.sql, adb.database());
    if (!plan.ok()) {
      std::printf("%-4s planning failed: %s\n", q.id.c_str(),
                  plan.status().ToString().c_str());
      return 1;
    }
    AnnotatedEvalInfo info;
    auto result = EvaluateAnnotated(*plan, adb, AnnotatedEvalOptions{}, &info);
    if (!result.ok()) {
      std::printf("%-4s evaluation failed: %s\n", q.id.c_str(),
                  result.status().ToString().c_str());
      return 1;
    }
    std::printf("%-4s %12.1f %12.1f %12zu %12zu\n", q.id.c_str(),
                info.data_millis, info.pattern_millis,
                result->data.num_rows(), result->patterns.size());
    query_times.push_back(info.data_millis);
    metadata_times.push_back(info.pattern_millis);
  }
  double median_query = Median(query_times);
  double median_metadata = Median(metadata_times);
  std::printf("\nmedian query time:        %10.1f ms\n", median_query);
  std::printf("median completeness time: %10.1f ms (%.0f%% of the median "
              "query time; paper: 23%%)\n",
              median_metadata,
              median_query > 0 ? 100.0 * median_metadata / median_query : 0);
  std::printf("\nExpected shape (paper): query times spread over orders of\n"
              "magnitude following result size; completeness times are\n"
              "small with low variance; metadata record counts 9–100.\n");
  return 0;
}
