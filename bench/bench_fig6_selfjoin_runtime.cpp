// Figure 6: runtime of the instance-aware self-join of two partially
// complete fact tables, as a function of the number of input patterns.
//
// Paper's finding to reproduce: runtime grows quadratically in the
// number of completeness patterns (50–150 per side, 1000 tuples in the
// database, 20 runs per point), just as a normal join's cost grows with
// its input sizes. Also serves as the ablation for the pattern-join
// strategy (cross-product-then-select vs the pushed partitioned form).

#include "bench_util.h"
#include "common/timer.h"
#include "pattern/minimize.h"
#include "pattern/promotion.h"

namespace {

using namespace pcdb;
using namespace pcdb::bench;

PatternSet RandomSubset(const PatternSet& pool, size_t n, Rng* rng) {
  PatternSet out;
  out.Reserve(n);
  std::vector<size_t> indices(pool.size());
  for (size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  rng->Shuffle(&indices);
  for (size_t i = 0; i < n && i < indices.size(); ++i) {
    out.Add(pool[indices[i]]);
  }
  return out;
}

}  // namespace

int main() {
  Banner("Figure 6",
         "instance-aware self-join runtime vs number of input patterns");

  NetworkElementsConfig config;
  config.num_rows = 1000;  // paper: 1000 tuples in the database
  NetworkElementsData data = GenerateNetworkElements(config);
  Table fact = DimensionProjection(data);
  PatternSet pool = NetworkPatterns(data, 1200, /*seed=*/31);
  std::printf("pattern pool: %zu; self-join on the 'vendor' attribute; "
              "20 runs per point\n\n",
              pool.size());
  const size_t join_attr = 2;  // vendor

  std::printf("%9s %12s %12s   %s\n", "patterns", "median ms", "p95 ms",
              "(promotion enabled)");
  Rng rng(13);
  double first_median = 0;
  size_t first_n = 0;
  for (size_t n : {50u, 75u, 100u, 125u, 150u}) {
    std::vector<double> millis;
    for (int run = 0; run < 20; ++run) {
      PatternSet left = RandomSubset(pool, n, &rng);
      PatternSet right = RandomSubset(pool, n, &rng);
      WallTimer timer;
      PatternSet joined = InstanceAwarePatternJoin(left, join_attr, fact,
                                                   right, join_attr, fact);
      Minimize(joined);
      millis.push_back(timer.ElapsedMillis());
    }
    double median = Median(millis);
    if (first_n == 0) {
      first_n = n;
      first_median = median;
    }
    std::printf("%9zu %12.2f %12.2f\n", n, median, Quantile(millis, 0.95));
  }
  std::printf("\nquadratic check: scaling patterns by 3x (50 -> 150) should "
              "scale runtime by ~9x\n(paper reports quadratic growth); "
              "baseline at %zu patterns: %.2f ms\n\n",
              first_n, first_median);

  // Strategy ablation (DESIGN.md §4.1): the pushed partitioned join vs
  // the literal cross-product-and-select definition, schema level only.
  std::printf("pattern-join strategy ablation (schema-level join, 20 runs, "
              "150 patterns):\n");
  for (auto strategy : {PatternJoinStrategy::kPartitionedHashJoin,
                        PatternJoinStrategy::kCrossProductSelect}) {
    std::vector<double> millis;
    for (int run = 0; run < 20; ++run) {
      PatternSet left = RandomSubset(pool, 150, &rng);
      PatternSet right = RandomSubset(pool, 150, &rng);
      WallTimer timer;
      PatternJoin(left, join_attr, right, join_attr, strategy);
      millis.push_back(timer.ElapsedMillis());
    }
    std::printf("  %-24s median %8.3f ms\n",
                strategy == PatternJoinStrategy::kPartitionedHashJoin
                    ? "partitioned hash join"
                    : "cross product + select",
                Median(millis));
  }
  return 0;
}
