// Figure 6: runtime of the instance-aware self-join of two partially
// complete fact tables, as a function of the number of input patterns.
//
// Paper's finding to reproduce: runtime grows quadratically in the
// number of completeness patterns (50–150 per side, 1000 tuples in the
// database, 20 runs per point), just as a normal join's cost grows with
// its input sizes. Also serves as the ablation for the pattern-join
// strategy (cross-product-then-select vs the pushed partitioned form).

#include "bench_util.h"
#include "common/timer.h"
#include "pattern/minimize.h"
#include "pattern/promotion.h"

namespace {

using namespace pcdb;
using namespace pcdb::bench;

PatternSet RandomSubset(const PatternSet& pool, size_t n, Rng* rng) {
  PatternSet out;
  out.Reserve(n);
  std::vector<size_t> indices(pool.size());
  for (size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  rng->Shuffle(&indices);
  for (size_t i = 0; i < n && i < indices.size(); ++i) {
    out.Add(pool[indices[i]]);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Banner("Figure 6",
         "instance-aware self-join runtime vs number of input patterns");
  const size_t threads = ParseThreadsFlag(argc, argv,
                                          ThreadPool::DefaultThreadCount());

  NetworkElementsConfig config;
  config.num_rows = 1000;  // paper: 1000 tuples in the database
  NetworkElementsData data = GenerateNetworkElements(config);
  Table fact = DimensionProjection(data);
  PatternSet pool = NetworkPatterns(data, 1200, /*seed=*/31);
  std::printf("pattern pool: %zu; self-join on the 'vendor' attribute; "
              "20 runs per point\n\n",
              pool.size());
  const size_t join_attr = 2;  // vendor

  std::printf("%9s %12s %12s   %s\n", "patterns", "median ms", "p95 ms",
              "(promotion enabled)");
  Rng rng(13);
  double first_median = 0;
  size_t first_n = 0;
  for (size_t n : {50u, 75u, 100u, 125u, 150u}) {
    std::vector<double> millis;
    for (int run = 0; run < 20; ++run) {
      PatternSet left = RandomSubset(pool, n, &rng);
      PatternSet right = RandomSubset(pool, n, &rng);
      WallTimer timer;
      PatternSet joined = InstanceAwarePatternJoin(left, join_attr, fact,
                                                   right, join_attr, fact);
      Minimize(joined);
      millis.push_back(timer.ElapsedMillis());
    }
    double median = Median(millis);
    if (first_n == 0) {
      first_n = n;
      first_median = median;
    }
    std::printf("%9zu %12.2f %12.2f\n", n, median, Quantile(millis, 0.95));
    JsonResultLine("fig6_selfjoin", "instance_aware", n, /*threads=*/1,
                   median);
  }
  std::printf("\nquadratic check: scaling patterns by 3x (50 -> 150) should "
              "scale runtime by ~9x\n(paper reports quadratic growth); "
              "baseline at %zu patterns: %.2f ms\n\n",
              first_n, first_median);

  // Strategy ablation (DESIGN.md §4.1): the pushed partitioned join vs
  // the literal cross-product-and-select definition, schema level only.
  std::printf("pattern-join strategy ablation (schema-level join, 20 runs, "
              "150 patterns):\n");
  for (auto strategy : {PatternJoinStrategy::kPartitionedHashJoin,
                        PatternJoinStrategy::kCrossProductSelect}) {
    std::vector<double> millis;
    for (int run = 0; run < 20; ++run) {
      PatternSet left = RandomSubset(pool, 150, &rng);
      PatternSet right = RandomSubset(pool, 150, &rng);
      WallTimer timer;
      PatternJoin(left, join_attr, right, join_attr, strategy);
      millis.push_back(timer.ElapsedMillis());
    }
    const char* label = strategy == PatternJoinStrategy::kPartitionedHashJoin
                            ? "partitioned hash join"
                            : "cross product + select";
    std::printf("  %-24s median %8.3f ms\n", label, Median(millis));
    JsonResultLine("fig6_join_ablation",
                   strategy == PatternJoinStrategy::kPartitionedHashJoin
                       ? "partitioned"
                       : "cross_select",
                   150, /*threads=*/1, Median(millis));
  }

  // Parallel partitioned join: per-partition fan-out over a worker pool
  // with per-thread dedup sinks (verified SetEquals to the serial join).
  {
    ThreadPool join_pool(threads);
    std::vector<double> millis;
    bool identical = true;
    for (int run = 0; run < 20; ++run) {
      PatternSet left = RandomSubset(pool, 150, &rng);
      PatternSet right = RandomSubset(pool, 150, &rng);
      WallTimer timer;
      PatternSet parallel =
          PatternJoin(left, join_attr, right, join_attr,
                      PatternJoinStrategy::kPartitionedHashJoin, &join_pool);
      millis.push_back(timer.ElapsedMillis());
      identical = identical &&
                  parallel.SetEquals(PatternJoin(
                      left, join_attr, right, join_attr,
                      PatternJoinStrategy::kPartitionedHashJoin));
    }
    std::printf("  %-24s median %8.3f ms  (%zu threads, SetEquals=%s)\n",
                "parallel partitioned", Median(millis), threads,
                identical ? "yes" : "NO");
    JsonResultLine("fig6_join_ablation", "partitioned_parallel", 150, threads,
                   Median(millis));
    if (!identical) return 1;
  }
  return 0;
}
