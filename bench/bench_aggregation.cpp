// Appendix B: completeness (and hence correctness) of aggregate query
// answers — counting cities per country over the Wikipedia data.
//
// An incomplete base table makes aggregate answers not just incomplete
// but *incorrect* (France's count would be a silent undercount); the
// pattern algebra's aggregation operator identifies exactly the groups
// whose counts are guaranteed exact.

#include "bench_util.h"
#include "common/timer.h"
#include "pattern/annotated_eval.h"
#include "sql/planner.h"
#include "workloads/wikipedia.h"

int main() {
  using namespace pcdb;
  using namespace pcdb::bench;

  Banner("Appendix B", "aggregate answers with correctness guarantees");

  AnnotatedDatabase adb = MakeWikipediaDatabase({});
  const char* queries[] = {
      "SELECT country, COUNT(*) AS cities FROM city GROUP BY country",
      "SELECT country, state, COUNT(*) AS cities FROM city "
      "GROUP BY country, state",
      "SELECT country, COUNT(*) AS schools FROM school GROUP BY country",
      "SELECT country, MIN(name) AS first_city, MAX(name) AS last_city "
      "FROM city GROUP BY country",
  };
  std::printf("%-70s %9s %9s %8s %10s\n", "query", "query ms", "meta ms",
              "groups", "guaranteed");
  for (const char* sql : queries) {
    auto plan = PlanSql(sql, adb.database());
    if (!plan.ok()) {
      std::printf("planning failed: %s\n", plan.status().ToString().c_str());
      return 1;
    }
    AnnotatedEvalInfo info;
    auto result = EvaluateAnnotated(*plan, adb, AnnotatedEvalOptions{}, &info);
    if (!result.ok()) {
      std::printf("evaluation failed: %s\n",
                  result.status().ToString().c_str());
      return 1;
    }
    size_t guaranteed = 0;
    for (const Tuple& row : result->data.rows()) {
      if (result->patterns.AnySubsumesTuple(row)) ++guaranteed;
    }
    std::printf("%-70.70s %9.1f %9.1f %8zu %10zu\n", sql, info.data_millis,
                info.pattern_millis, result->data.num_rows(), guaranteed);
  }
  std::printf("\nGroups covered by a completeness pattern have exact\n"
              "(complete AND correct) aggregate values; the rest are lower\n"
              "bounds / unreliable, exactly the France-vs-Bulgaria contrast\n"
              "of the paper's Appendix B.\n");
  return 0;
}
