// Figure 1 + §4.3 statistics: growth of the number of completeness
// patterns under random record drops — correlated/skewed real-world data
// (network elements) versus uniform/uncorrelated data (TPC-H lineitem).
//
// Paper's findings to reproduce:
//   * network: 1,558 realized combinations of 1,185,408 possible
//     (0.205% of the record count); pattern count converges around 1,000
//     after ~300 dropped records;
//   * TPC-H: ~1.2% of the record count realized; pattern count keeps
//     growing without convergence.

#include <cinttypes>
#include <unordered_set>

#include "bench_util.h"
#include "workloads/tpch.h"

namespace {

using namespace pcdb;
using namespace pcdb::bench;

size_t CountCombos(const Table& table, const std::vector<size_t>& dims) {
  std::unordered_set<Tuple, TupleHash> combos;
  for (const Tuple& row : table.rows()) {
    Tuple combo;
    combo.reserve(dims.size());
    for (size_t c : dims) combo.push_back(row[c]);
    combos.insert(combo);
  }
  return combos.size();
}

uint64_t DomainProduct(const std::vector<std::vector<Value>>& domains) {
  uint64_t product = 1;
  for (const auto& d : domains) product *= d.size();
  return product;
}

void RunSeries(const char* label, const Table& table,
               const std::vector<size_t>& dims,
               const std::vector<std::vector<Value>>& domains,
               size_t max_drops, uint64_t seed) {
  DropSimulator sim(table, dims, domains);
  Rng rng(seed);
  std::printf("%s: dropped_records -> num_patterns\n", label);
  std::printf("  %6zu -> %zu\n", size_t{0}, sim.num_patterns());
  size_t dropped = 0;
  while (dropped < max_drops) {
    size_t row = rng.UniformUint64(table.num_rows());
    if (sim.IsDropped(row)) continue;
    sim.DropRow(row);
    ++dropped;
    if (dropped % (max_drops / 20) == 0) {
      std::printf("  %6zu -> %zu\n", dropped, sim.num_patterns());
    }
  }
  std::printf("\n");
}

}  // namespace

int main() {
  Banner("Figure 1 / §4.3",
         "pattern growth under random drops: real (correlated) vs "
         "synthetic (uniform) data");

  NetworkElementsConfig net_config;
  net_config.num_rows = 100000;
  NetworkElementsData net = GenerateNetworkElements(net_config);
  uint64_t net_possible = DomainProduct(net.dimension_domains);
  size_t net_present = CountCombos(net.table, net.dimension_columns);
  std::printf("network element table: %zu records, %" PRIu64
              " possible combinations,\n"
              "  %zu present (%.3f%% of records; paper: 1,558 = 0.205%%)\n\n",
              net.table.num_rows(), net_possible, net_present,
              100.0 * static_cast<double>(net_present) /
                  static_cast<double>(net.table.num_rows()));

  TpchConfig tpch_config;
  tpch_config.num_rows = 200000;
  TpchData tpch = GenerateLineitem(tpch_config);
  uint64_t tpch_possible = DomainProduct(tpch.dimension_domains);
  size_t tpch_present = CountCombos(tpch.table, tpch.dimension_columns);
  std::printf("TPC-H lineitem: %zu records, %" PRIu64
              " possible combinations,\n"
              "  %zu present (%.2f%% of records; paper: 73,419 = 1.22%% at "
              "6M rows)\n\n",
              tpch.table.num_rows(), tpch_possible, tpch_present,
              100.0 * static_cast<double>(tpch_present) /
                  static_cast<double>(tpch.table.num_rows()));

  RunSeries("network (real-data shape: converges)", net.table,
            net.dimension_columns, net.dimension_domains,
            /*max_drops=*/1000, /*seed=*/42);
  RunSeries("tpch (synthetic shape: keeps growing)", tpch.table,
            tpch.dimension_columns, tpch.dimension_domains,
            /*max_drops=*/1000, /*seed=*/42);
  return 0;
}
