// Table 8 / Appendix D: promotion cost and effect when joining a
// partially complete fact table (1000 completeness patterns from the
// §4.3 drop simulation) with a complete dimension table, once per
// dimension attribute.
//
// Paper's findings to reproduce: the number of naively enumerable choice
// sets is astronomical but the optimized search tests only a tiny
// fraction (40–99% reduction); median runtimes are milliseconds versus
// ~37 s for a table scan; the two highest-cardinality attributes
// (sector, state) hit occasional timeouts; promoted patterns *shrink*
// the minimized output instead of growing it.

#include "bench_util.h"
#include "common/timer.h"
#include "pattern/minimize.h"
#include "pattern/promotion.h"

namespace {

using namespace pcdb;
using namespace pcdb::bench;

constexpr double kTimeoutMillis = 5000;
constexpr int kRunsPerAttribute = 10;

}  // namespace

int main() {
  Banner("Table 8 / Appendix D",
         "join of a 1000-pattern fact table with a complete dimension "
         "table");

  NetworkElementsConfig config;
  config.num_rows = 20000;
  NetworkElementsData data = GenerateNetworkElements(config);
  Table fact = DimensionProjection(data);
  PatternSet fact_patterns =
      NetworkPatterns(data, 1000, /*seed=*/77, /*drops=*/600);
  std::printf("fact table: %zu rows over the 6 dimension attributes, "
              "%zu patterns\n",
              fact.num_rows(), fact_patterns.size());
  std::printf("(each row: %d runs with random complete dimension tables, "
              "%.0f ms timeout)\n\n",
              kRunsPerAttribute, kTimeoutMillis);

  std::printf("%-28s %7s %12s %12s %9s %9s %8s %9s %9s\n", "join attribute",
              "card", "naive sets", "tested sets", "med ms", "p95 ms",
              "timeout", "out pats", "promoted");
  Rng rng(99);
  const char* names[] = {"region_name",  "technology", "vendor",
                         "tech_capability_type", "sector", "state"};
  for (size_t a = 0; a < 6; ++a) {
    std::vector<double> millis;
    size_t timeouts = 0;
    double naive_sets = 0;
    double tested_sets = 0;
    double out_patterns = 0;
    double promoted = 0;
    for (int run = 0; run < kRunsPerAttribute; ++run) {
      Table dim = RandomDimensionTable(fact, a, 0.7, &rng);
      PatternSet dim_patterns;
      dim_patterns.Add(Pattern::AllWildcards(1));  // dimension is complete
      PromotionOptions options;
      options.timeout_millis = kTimeoutMillis;
      PromotionStats stats;
      WallTimer timer;
      PatternSet joined =
          InstanceAwarePatternJoin(fact_patterns, a, fact, dim_patterns, 0,
                                   dim, options, &stats);
      PatternSet minimized = Minimize(joined);
      double elapsed = timer.ElapsedMillis();
      if (stats.timed_out) {
        ++timeouts;
      } else {
        millis.push_back(elapsed);
        naive_sets += static_cast<double>(stats.naive_choice_sets);
        tested_sets += static_cast<double>(stats.choice_sets_tested +
                                           stats.unification_steps);
        out_patterns += static_cast<double>(minimized.size());
        promoted += static_cast<double>(stats.promoted);
      }
    }
    double completed =
        static_cast<double>(kRunsPerAttribute) - static_cast<double>(timeouts);
    if (completed == 0) completed = 1;
    std::printf("%-28s %7zu %12.0f %12.0f %9.1f %9.1f %5zu/%-2d %9.0f %9.0f\n",
                names[a], data.dimension_domains[a].size(),
                naive_sets / completed, tested_sets / completed,
                Median(millis), Quantile(millis, 0.95), timeouts,
                kRunsPerAttribute, out_patterns / completed,
                promoted / completed);
  }
  std::printf("\nReference points (paper, 760k-row table): median runtimes "
              "91–661 ms vs a 37 s\ntable scan; 5–10%% timeouts for the two "
              "highest-cardinality attributes; output\nalways smaller than "
              "the 1000-pattern input because promoted patterns subsume\n"
              "others.\n");
  return 0;
}
