// §6 "Plan Generation and Execution" (future work, implemented here):
// the optimal plan for query computation need not be optimal for
// completeness calculation, because metadata differs from data in size
// and distribution. This ablation scores every join order of the 3-way
// Wikipedia query Q5 under both cost models and measures the actual
// data/metadata computation times per plan.

#include "bench_util.h"
#include "common/timer.h"
#include "pattern/annotated_eval.h"
#include "sql/plan_optimizer.h"
#include "workloads/wikipedia.h"

int main() {
  using namespace pcdb;
  using namespace pcdb::bench;

  Banner("§6 plan ablation",
         "data-optimal vs metadata-optimal join orders (Q5)");

  WikipediaConfig config;
  config.num_cities = 20000;
  config.num_schools = 5000;
  AnnotatedDatabase adb = MakeWikipediaDatabase(config);
  const std::string sql =
      "SELECT * FROM country, city, school WHERE "
      "country.capital=city.name AND city.state=school.state";
  std::printf("query: %s\n\n", sql.c_str());

  auto data_opt = OptimizeSql(sql, adb, PlanObjective::kData);
  auto meta_opt = OptimizeSql(sql, adb, PlanObjective::kMetadata);
  if (!data_opt.ok() || !meta_opt.ok()) {
    std::printf("optimization failed: %s %s\n",
                data_opt.status().ToString().c_str(),
                meta_opt.status().ToString().c_str());
    return 1;
  }

  std::printf("%-14s %14s %14s %12s %12s\n", "join order", "est data cost",
              "pattern cost", "data ms", "metadata ms");
  const char* table_names[] = {"country", "city", "school"};
  for (const PlanChoice& choice : data_opt->candidates) {
    // Measure actual times for this candidate.
    AnnotatedEvalInfo info;
    auto result = EvaluateAnnotated(choice.plan, adb,
                                    AnnotatedEvalOptions{}, &info);
    if (!result.ok()) {
      std::printf("evaluation failed: %s\n",
                  result.status().ToString().c_str());
      return 1;
    }
    size_t pattern_cost = 0;
    (void)ComputeQueryPatterns(choice.plan, adb, AnnotatedEvalOptions{},
                               &pattern_cost);
    std::string order_str;
    for (size_t i : choice.join_order) {
      if (!order_str.empty()) order_str += "-";
      order_str += table_names[i];
    }
    std::printf("%-14.14s %14.0f %14zu %12.1f %12.2f\n", order_str.c_str(),
                choice.cost, pattern_cost, info.data_millis,
                info.pattern_millis);
  }

  auto order_str = [&](const std::vector<size_t>& order) {
    std::string out;
    for (size_t i : order) {
      if (!out.empty()) out += "-";
      out += table_names[i];
    }
    return out;
  };
  std::printf("\ndata-optimal order:     %s\n",
              order_str(data_opt->best.join_order).c_str());
  std::printf("metadata-optimal order: %s\n",
              order_str(meta_opt->best.join_order).c_str());
  std::printf("\nThe paper's observation: because pattern sets are small and\n"
              "differently distributed than the data, the two objectives can\n"
              "pick different orders — motivating a dedicated cost model for\n"
              "the metadata plan (here: exact pattern-algebra replay).\n");
  return 0;
}
