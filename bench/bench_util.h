#ifndef PCDB_BENCH_BENCH_UTIL_H_
#define PCDB_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "pattern/pattern.h"
#include "workloads/drop_simulation.h"
#include "workloads/network_elements.h"

namespace pcdb {
namespace bench {

/// Parses `--threads=N` (or `--threads N`) from the command line;
/// `--threads=0` means "all hardware threads". Unrecognized arguments
/// are ignored so benches stay forgiving.
inline size_t ParseThreadsFlag(int argc, char** argv,
                               size_t default_threads = 1) {
  size_t threads = default_threads;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--threads=", 10) == 0) {
      threads = static_cast<size_t>(std::strtoull(arg + 10, nullptr, 10));
    } else if (std::strcmp(arg, "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<size_t>(std::strtoull(argv[i + 1], nullptr, 10));
      ++i;
    }
  }
  if (threads == 0) threads = ThreadPool::DefaultThreadCount();
  return threads;
}

/// Emits one machine-readable result line for the BENCH_*.json
/// trajectory tracking:
///   {"bench":"fig4_minimize","method":"D1","n":50000,"threads":4,
///    "median_ms":12.3}
/// `extra` may append further fields and must then start with a comma,
/// e.g. ",\"peak_bytes\":1024".
inline void JsonResultLine(const std::string& bench, const std::string& method,
                           size_t n, size_t threads, double median_ms,
                           const std::string& extra = "") {
  std::printf(
      "{\"bench\":\"%s\",\"method\":\"%s\",\"n\":%zu,\"threads\":%zu,"
      "\"median_ms\":%.3f%s}\n",
      bench.c_str(), method.c_str(), n, threads, median_ms, extra.c_str());
}

/// Prints the standard experiment banner.
inline void Banner(const std::string& id, const std::string& title) {
  std::printf("==============================================================="
              "=================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("==============================================================="
              "=================\n");
}

/// q-quantile (0 ≤ q ≤ 1) of an unsorted sample; empty → 0.
inline double Quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  double idx = q * static_cast<double>(values.size() - 1);
  size_t lo = static_cast<size_t>(idx);
  size_t hi = std::min(lo + 1, values.size() - 1);
  double frac = idx - static_cast<double>(lo);
  return values[lo] * (1 - frac) + values[hi] * frac;
}

inline double Median(std::vector<double> values) {
  return Quantile(std::move(values), 0.5);
}

/// Produces a realistic base pattern set for the network-element table
/// by running the §4.3 drop simulation for `drops` random record drops
/// (the paper's "augmented with completeness patterns using the method
/// presented in Section 4.3") and then sampling `target_patterns` of the
/// resulting patterns. Returns patterns over the six dimension
/// attributes.
inline PatternSet NetworkPatterns(const NetworkElementsData& data,
                                  size_t target_patterns, uint64_t seed,
                                  size_t drops = 300) {
  DropSimulator sim(data.table, data.dimension_columns,
                    data.dimension_domains);
  Rng rng(seed);
  size_t remaining = drops;
  size_t budget = data.table.num_rows();
  while (remaining > 0 && budget-- > 0) {
    size_t row = rng.UniformUint64(data.table.num_rows());
    if (sim.IsDropped(row)) continue;
    sim.DropRow(row);
    --remaining;
  }
  const PatternSet& all = sim.patterns();
  if (all.size() <= target_patterns) return all;
  std::vector<size_t> indices(all.size());
  for (size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  rng.Shuffle(&indices);
  PatternSet out;
  out.Reserve(target_patterns);
  for (size_t i = 0; i < target_patterns; ++i) out.Add(all[indices[i]]);
  return out;
}

/// The dimension-attribute projection of the network table (the "fact
/// table" of the §5.2 experiments: its schema matches the pattern
/// arity).
inline Table DimensionProjection(const NetworkElementsData& data,
                                 size_t max_rows = 0) {
  std::vector<Column> cols;
  for (size_t c : data.dimension_columns) {
    cols.push_back(data.table.schema().column(c));
  }
  Table out((Schema(std::move(cols))));
  size_t n = max_rows == 0 ? data.table.num_rows()
                           : std::min(max_rows, data.table.num_rows());
  out.Reserve(n);
  for (size_t r = 0; r < n; ++r) {
    out.AppendUnchecked(DimensionCombo(data, r));
  }
  return out;
}

/// A unary "dimension table" holding a random subset of the domain
/// values realized in `column` of `fact` (the complete lookup table the
/// fact table is joined with in Table 8).
inline Table RandomDimensionTable(const Table& fact, size_t column,
                                  double keep_probability, Rng* rng) {
  Table out(Schema({{"value", fact.schema().column(column).type}}));
  for (const Value& v : fact.DistinctValues(column)) {
    if (rng->Bernoulli(keep_probability)) {
      out.AppendUnchecked(Tuple{v});
    }
  }
  if (out.num_rows() == 0) {
    out.AppendUnchecked(Tuple{fact.DistinctValues(column)[0]});
  }
  return out;
}

}  // namespace bench
}  // namespace pcdb

#endif  // PCDB_BENCH_BENCH_UTIL_H_
