// Table 9 / Appendix D: growth of completeness patterns in a self-join
// of two partially complete fact tables, with promotion.
//
// Paper's findings to reproduce: the raw join output grows roughly
// quadratically in the input pattern count, but after removing patterns
// subsumed by promoted ones the minimized output is *smaller* — the
// reduction is 80–95% and promotion never increases the output. Per-
// attribute variation is large: low-cardinality attributes (e.g.
// technology capability) promote almost everything; the 53-value state
// attribute promotes rarely.

#include "bench_util.h"
#include "pattern/minimize.h"
#include "pattern/promotion.h"

namespace {

using namespace pcdb;
using namespace pcdb::bench;

PatternSet RandomSubset(const PatternSet& pool, size_t n, Rng* rng) {
  PatternSet out;
  std::vector<size_t> indices(pool.size());
  for (size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  rng->Shuffle(&indices);
  for (size_t i = 0; i < n && i < indices.size(); ++i) {
    out.Add(pool[indices[i]]);
  }
  return out;
}

}  // namespace

int main() {
  Banner("Table 9 / Appendix D",
         "pattern growth in a promoted self-join of fact tables");

  NetworkElementsConfig config;
  config.num_rows = 1000;
  NetworkElementsData data = GenerateNetworkElements(config);
  Table fact = DimensionProjection(data);
  PatternSet pool = NetworkPatterns(data, 1200, /*seed=*/31);
  Rng rng(23);

  const char* names[] = {"region_name", "technology", "vendor",
                         "tech_capability_type", "sector", "state"};
  std::printf("%-24s %9s %10s %10s %10s %10s\n", "join attribute",
              "patterns", "raw join", "minimized", "promoted",
              "reduction");
  for (size_t a = 0; a < 6; ++a) {
    for (size_t n : {50u, 100u, 150u}) {
      PatternSet left = RandomSubset(pool, n, &rng);
      PatternSet right = RandomSubset(pool, n, &rng);
      PromotionStats stats;
      PatternSet joined = InstanceAwarePatternJoin(
          left, a, fact, right, a, fact, PromotionOptions{}, &stats);
      PatternSet minimized = Minimize(joined);
      // Baseline: schema-level join without promotion, minimized.
      PatternSet plain = Minimize(PatternJoin(left, a, right, a));
      double reduction =
          plain.empty()
              ? 0
              : 100.0 * (1.0 - static_cast<double>(minimized.size()) /
                                   static_cast<double>(plain.size()));
      std::printf("%-24s %9zu %10zu %10zu %10zu %9.1f%%\n", names[a], n,
                  joined.size(), minimized.size(), stats.promoted,
                  reduction);
    }
    std::printf("\n");
  }
  std::printf("Reference (paper): output grows quadratically before\n"
              "minimization; promoted patterns subsume others, shrinking\n"
              "the final output by 80–95%%, most strongly for attributes\n"
              "with few distinct values.\n");
  return 0;
}
