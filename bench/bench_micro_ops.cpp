// Microbenchmarks (google-benchmark) for the primitive operations the
// experiments are built from: subsumption checks, index insert/search,
// the pattern join strategies, and the minimization methods at fixed
// input size.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "pattern/algebra.h"
#include "pattern/minimize.h"
#include "pattern/pattern_index.h"

namespace {

using namespace pcdb;

Pattern RandomPattern(Rng* rng, size_t arity, int values,
                      double wild_prob) {
  std::vector<Pattern::Cell> cells;
  cells.reserve(arity);
  for (size_t i = 0; i < arity; ++i) {
    if (rng->Bernoulli(wild_prob)) {
      cells.push_back(Pattern::Wildcard());
    } else {
      cells.push_back(
          Value("v" + std::to_string(rng->UniformInt(0, values - 1))));
    }
  }
  return Pattern(std::move(cells));
}

PatternSet RandomPatterns(size_t n, size_t arity, uint64_t seed) {
  Rng rng(seed);
  PatternSet out;
  out.Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.Add(RandomPattern(&rng, arity, 8, 0.5));
  }
  return out;
}

void BM_SubsumptionCheck(benchmark::State& state) {
  Rng rng(1);
  Pattern a = RandomPattern(&rng, 12, 8, 0.5);
  Pattern b = RandomPattern(&rng, 12, 8, 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Subsumes(b));
  }
}
BENCHMARK(BM_SubsumptionCheck);

void BM_Unification(benchmark::State& state) {
  Rng rng(2);
  Pattern a = RandomPattern(&rng, 12, 8, 0.7);
  Pattern b = RandomPattern(&rng, 12, 8, 0.7);
  for (auto _ : state) {
    if (a.UnifiableWith(b)) {
      benchmark::DoNotOptimize(a.UnifyWith(b));
    }
  }
}
BENCHMARK(BM_Unification);

void BM_IndexInsert(benchmark::State& state) {
  auto kind = static_cast<PatternIndexKind>(state.range(0));
  PatternSet patterns = RandomPatterns(4096, 6, 3);
  for (auto _ : state) {
    auto index = MakePatternIndex(kind, 6);
    for (const Pattern& p : patterns) index->Insert(p);
    benchmark::DoNotOptimize(index->size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(patterns.size()));
}
BENCHMARK(BM_IndexInsert)
    ->Arg(static_cast<int>(PatternIndexKind::kHashTable))
    ->Arg(static_cast<int>(PatternIndexKind::kPathIndex))
    ->Arg(static_cast<int>(PatternIndexKind::kDiscriminationTree));

void BM_IndexSubsumerCheck(benchmark::State& state) {
  auto kind = static_cast<PatternIndexKind>(state.range(0));
  PatternSet patterns = RandomPatterns(4096, 6, 3);
  auto index = MakePatternIndex(kind, 6);
  for (const Pattern& p : patterns) index->Insert(p);
  Rng rng(4);
  std::vector<Pattern> probes;
  for (int i = 0; i < 64; ++i) probes.push_back(RandomPattern(&rng, 6, 8, 0.4));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        index->HasSubsumer(probes[i++ % probes.size()], /*strict=*/true));
  }
}
BENCHMARK(BM_IndexSubsumerCheck)
    ->Arg(static_cast<int>(PatternIndexKind::kLinearList))
    ->Arg(static_cast<int>(PatternIndexKind::kHashTable))
    ->Arg(static_cast<int>(PatternIndexKind::kPathIndex))
    ->Arg(static_cast<int>(PatternIndexKind::kDiscriminationTree));

void BM_PatternJoin(benchmark::State& state) {
  auto strategy = static_cast<PatternJoinStrategy>(state.range(0));
  PatternSet left = RandomPatterns(256, 4, 5);
  PatternSet right = RandomPatterns(256, 3, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(PatternJoin(left, 1, right, 0, strategy));
  }
}
BENCHMARK(BM_PatternJoin)
    ->Arg(static_cast<int>(PatternJoinStrategy::kCrossProductSelect))
    ->Arg(static_cast<int>(PatternJoinStrategy::kPartitionedHashJoin));

void BM_Minimize(benchmark::State& state) {
  auto kind = static_cast<PatternIndexKind>(state.range(0));
  auto approach = static_cast<MinimizeApproach>(state.range(1));
  PatternSet input = RandomPatterns(8192, 6, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Minimize(input, approach, kind));
  }
}
BENCHMARK(BM_Minimize)
    ->ArgsProduct({{static_cast<int>(PatternIndexKind::kHashTable),
                    static_cast<int>(PatternIndexKind::kDiscriminationTree)},
                   {static_cast<int>(MinimizeApproach::kAllAtOnce),
                    static_cast<int>(MinimizeApproach::kSortedIncremental)}});

}  // namespace

BENCHMARK_MAIN();
