// Figure 7: promotion runtime as a function of the number of attributes
// used in completeness patterns (random attribute sets and join values,
// 100 runs per point in the paper).
//
// Paper's finding to reproduce: runtime grows polynomially with the
// number of attributes.

#include "bench_util.h"
#include "common/timer.h"
#include "pattern/minimize.h"
#include "pattern/promotion.h"

namespace {

using namespace pcdb;
using namespace pcdb::bench;

/// Restricts `p` to the attribute subset `attrs`: every other position
/// becomes a wildcard (patterns then "use" only `attrs`).
Pattern RestrictTo(const Pattern& p, const std::vector<size_t>& attrs) {
  Pattern out = Pattern::AllWildcards(p.arity());
  for (size_t a : attrs) {
    if (!p.IsWildcard(a)) out = out.WithValue(a, p.value(a));
  }
  return out;
}

}  // namespace

int main() {
  Banner("Figure 7",
         "promotion runtime vs number of attributes used in patterns");

  NetworkElementsConfig config;
  config.num_rows = 1000;
  NetworkElementsData data = GenerateNetworkElements(config);
  Table fact = DimensionProjection(data);
  PatternSet pool = NetworkPatterns(data, 600, /*seed=*/55);
  std::printf("pattern pool: %zu patterns, 1000 tuples, 60 runs per point\n\n",
              pool.size());

  std::printf("%11s %12s %12s\n", "#attributes", "median ms", "p95 ms");
  Rng rng(17);
  for (size_t k = 2; k <= 6; ++k) {
    std::vector<double> millis;
    for (int run = 0; run < 60; ++run) {
      // Random attribute subset of size k; the join attribute is always
      // among them.
      std::vector<size_t> attrs = {0, 1, 2, 3, 4, 5};
      rng.Shuffle(&attrs);
      attrs.resize(k);
      size_t join_attr = attrs[rng.UniformUint64(k)];
      PatternSet left;
      PatternSet right;
      for (size_t i = 0; i < 80; ++i) {
        left.Add(RestrictTo(pool[rng.UniformUint64(pool.size())], attrs));
        right.Add(RestrictTo(pool[rng.UniformUint64(pool.size())], attrs));
      }
      WallTimer timer;
      PatternSet joined = InstanceAwarePatternJoin(left, join_attr, fact,
                                                   right, join_attr, fact);
      Minimize(joined);
      millis.push_back(timer.ElapsedMillis());
    }
    std::printf("%11zu %12.2f %12.2f\n", k, Median(millis),
                Quantile(millis, 0.95));
  }
  std::printf("\nExpected shape (paper): polynomial growth in the number of "
              "attributes.\n");
  return 0;
}
