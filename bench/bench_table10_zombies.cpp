// Table 10 / Appendix E: cost and benefit of zombie patterns.
//
// Paper's findings to reproduce:
//   (a) in a join of a 1000-pattern fact table with a complete dimension
//       table, the zombie share before minimization tracks the attribute
//       cardinality and settles around ~66% after minimization;
//   (b) in a self-join with 100 patterns over 500 tuples, about a third
//       of the resulting patterns are zombies;
//   (c) zombie generation increases runtime by ~250% (minimization of
//       the larger sets dominates);
//   (d) zombie patterns in the intermediate result of a 3-way join only
//       rarely enable additional final inferences (paper: 2 of 200 runs,
//       ~0.08% extra patterns overall).

#include <unordered_map>
#include <unordered_set>

#include "bench_util.h"
#include "common/timer.h"
#include "pattern/minimize.h"
#include "pattern/promotion.h"
#include "pattern/zombie.h"

namespace {

using namespace pcdb;
using namespace pcdb::bench;

PatternSet RandomSubset(const PatternSet& pool, size_t n, Rng* rng) {
  PatternSet out;
  std::vector<size_t> indices(pool.size());
  for (size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  rng->Shuffle(&indices);
  for (size_t i = 0; i < n && i < indices.size(); ++i) {
    out.Add(pool[indices[i]]);
  }
  return out;
}

size_t CountMembers(const PatternSet& set, const PatternSet& among) {
  std::unordered_set<Pattern, PatternHash> lookup(among.begin(),
                                                  among.end());
  size_t count = 0;
  for (const Pattern& p : set) {
    if (lookup.count(p) > 0) ++count;
  }
  return count;
}

}  // namespace

int main() {
  Banner("Table 10 / Appendix E", "overhead and impact of zombie patterns");

  NetworkElementsConfig config;
  config.num_rows = 20000;
  NetworkElementsData data = GenerateNetworkElements(config);
  Table fact = DimensionProjection(data);
  PatternSet fact_patterns = NetworkPatterns(data, 1000, /*seed=*/77);
  Rng rng(7);

  // --- (a) zombies in the dimension join, per attribute ----------------
  std::printf("(a) fact (%zu patterns) ⋈ complete dimension table:\n",
              fact_patterns.size());
  std::printf("%-24s %7s %14s %14s %14s\n", "join attribute", "card",
              "zombies before", "zombies after", "after share");
  const char* names[] = {"region_name", "technology", "vendor",
                         "tech_capability_type", "sector", "state"};
  for (size_t a = 0; a < 6; ++a) {
    Table dim = RandomDimensionTable(fact, a, 0.6, &rng);
    PatternSet dim_patterns;
    dim_patterns.Add(Pattern::AllWildcards(1));
    PatternSet joined = InstanceAwarePatternJoin(fact_patterns, a, fact,
                                                 dim_patterns, 0, dim);
    PatternSet zombies = ZombiesForJoin(fact_patterns, a, fact,
                                        data.dimension_domains[a],
                                        /*other_arity=*/1,
                                        /*side_is_left=*/true);
    PatternSet dim_zombies =
        ZombiesForJoin(dim_patterns, 0, dim, data.dimension_domains[a],
                       /*other_arity=*/fact.schema().arity(),
                       /*side_is_left=*/false);
    // Right-side zombies are (padding · p); fold into one set.
    PatternSet all_zombies = zombies;
    for (const Pattern& p : dim_zombies) all_zombies.AddUnique(p);
    PatternSet combined = joined;
    for (const Pattern& p : all_zombies) combined.AddUnique(p);
    PatternSet minimized = Minimize(combined);
    size_t zombies_after = CountMembers(minimized, all_zombies);
    std::printf("%-24s %7zu %14zu %14zu %13.1f%%\n", names[a],
                data.dimension_domains[a].size(), all_zombies.size(),
                zombies_after,
                minimized.empty()
                    ? 0.0
                    : 100.0 * static_cast<double>(zombies_after) /
                          static_cast<double>(minimized.size()));
  }

  // --- (b) + (c): self-join share and runtime overhead ------------------
  NetworkElementsConfig small_config;
  small_config.num_rows = 500;  // paper: fewer tuples → more zombies
  // A 500-tuple warehouse realizes only a fraction of the combination
  // space (and hence of the per-attribute domains) — that scarcity is
  // what makes zombies plentiful.
  small_config.target_combos = 60;
  NetworkElementsData small = GenerateNetworkElements(small_config);
  Table small_fact = DimensionProjection(small);
  PatternSet small_pool = NetworkPatterns(small, 400, /*seed=*/12);
  const size_t join_attr = 5;  // state: highest cardinality

  std::vector<double> plain_ms;
  std::vector<double> zombie_ms;
  double zombie_share_sum = 0;
  const int kRuns = 10;
  for (int run = 0; run < kRuns; ++run) {
    PatternSet left = RandomSubset(small_pool, 100, &rng);
    PatternSet right = RandomSubset(small_pool, 100, &rng);

    WallTimer timer;
    PatternSet plain = Minimize(InstanceAwarePatternJoin(
        left, join_attr, small_fact, right, join_attr, small_fact));
    plain_ms.push_back(timer.ElapsedMillis());

    timer.Reset();
    PatternSet joined = InstanceAwarePatternJoin(
        left, join_attr, small_fact, right, join_attr, small_fact);
    PatternSet zombies = ZombiesForJoin(
        left, join_attr, small_fact, small.dimension_domains[join_attr],
        small_fact.schema().arity(), /*side_is_left=*/true);
    PatternSet right_zombies = ZombiesForJoin(
        right, join_attr, small_fact, small.dimension_domains[join_attr],
        small_fact.schema().arity(), /*side_is_left=*/false);
    for (const Pattern& p : right_zombies) zombies.AddUnique(p);
    PatternSet combined = joined;
    for (const Pattern& p : zombies) combined.AddUnique(p);
    PatternSet minimized = Minimize(combined);
    zombie_ms.push_back(timer.ElapsedMillis());
    size_t zombie_members = CountMembers(minimized, zombies);
    if (!minimized.empty()) {
      zombie_share_sum += static_cast<double>(zombie_members) /
                          static_cast<double>(minimized.size());
    }
  }
  std::printf("\n(b) self-join, 100 patterns, 500 tuples (%d runs):\n"
              "    zombie share of the minimized output: %.1f%% "
              "(paper: ~33%%)\n",
              kRuns, 100.0 * zombie_share_sum / kRuns);
  double plain_median = Median(plain_ms);
  double zombie_median = Median(zombie_ms);
  std::printf("(c) runtime: without zombies %.2f ms, with zombies %.2f ms "
              "-> +%.0f%% (paper: ~250%%)\n",
              plain_median, zombie_median,
              100.0 * (zombie_median - plain_median) /
                  (plain_median > 0 ? plain_median : 1));

  // --- (d): additional inferences in a 3-way join -----------------------
  size_t runs_with_extra = 0;
  size_t extra_patterns = 0;
  size_t total_patterns = 0;
  const int kThreeWayRuns = 10;
  const size_t attr1 = 1;  // technology
  const size_t attr2 = 3;  // capability type
  // The middle result's data: the actual self-join of the fact table on
  // attr1 (promotion reads allowable domains from it, so it must be the
  // real join output).
  Table mid_data(small_fact.schema().Concat(small_fact.schema()));
  {
    std::unordered_multimap<Value, const Tuple*, ValueHash> by_key;
    for (const Tuple& t : small_fact.rows()) by_key.emplace(t[attr1], &t);
    for (const Tuple& t : small_fact.rows()) {
      auto [begin, end] = by_key.equal_range(t[attr1]);
      for (auto it = begin; it != end; ++it) {
        Tuple joined = t;
        joined.insert(joined.end(), it->second->begin(), it->second->end());
        mid_data.AppendUnchecked(std::move(joined));
      }
    }
  }
  for (int run = 0; run < kThreeWayRuns; ++run) {
    PatternSet p1 = RandomSubset(small_pool, 70, &rng);
    PatternSet p2 = RandomSubset(small_pool, 70, &rng);
    PatternSet p3 = RandomSubset(small_pool, 70, &rng);

    auto three_way = [&](bool with_zombies) {
      PatternSet mid = InstanceAwarePatternJoin(p1, attr1, small_fact, p2,
                                                attr1, small_fact);
      if (with_zombies) {
        PatternSet z = ZombiesForJoin(p1, attr1, small_fact,
                                      small.dimension_domains[attr1],
                                      small_fact.schema().arity(), true);
        for (const Pattern& p : z) mid.AddUnique(p);
      }
      mid = Minimize(mid);
      PatternSet final_set = InstanceAwarePatternJoin(
          mid, attr2, mid_data, p3, attr2, small_fact);
      return Minimize(final_set);
    };
    PatternSet without = three_way(false);
    PatternSet with = three_way(true);
    size_t extra = 0;
    for (const Pattern& p : with) {
      if (!without.AnySubsumes(p)) ++extra;
    }
    if (extra > 0) ++runs_with_extra;
    extra_patterns += extra;
    total_patterns += with.size();
  }
  std::printf("(d) 3-way join, %d runs with 70 patterns per table:\n"
              "    runs with additional inferences thanks to intermediate "
              "zombies: %zu\n"
              "    additional patterns overall: %zu of %zu (%.2f%%; paper: "
              "0.08%%)\n",
              kThreeWayRuns, runs_with_extra, extra_patterns, total_patterns,
              total_patterns == 0
                  ? 0.0
                  : 100.0 * static_cast<double>(extra_patterns) /
                        static_cast<double>(total_patterns));
  return 0;
}
