// Figure 4: runtime comparison of pattern-set minimization techniques.
//
// Input as in the paper: random subsets of ~1M completeness patterns
// obtained as the cartesian product of two tables with 1000 patterns
// each (12 attributes total). Methods are <structure><approach> with
// structures A=list, B=hash table, C=path index, D=discrimination tree
// and approaches 1=all-at-once, 2=incremental, 3=sorted incremental.
//
// Paper's findings to reproduce: all-at-once is the fastest approach;
// discrimination trees (D1) beat hashing (B1) by ~25%; pairwise
// comparison (A1) and path indexing (C2) are inapplicable at scale
// (A1 needed >100 s for only 10k patterns on the paper's hardware).

#include "bench_util.h"
#include "common/timer.h"
#include "pattern/algebra.h"
#include "pattern/minimize.h"

namespace {

using namespace pcdb;
using namespace pcdb::bench;

/// One side of the cross product: `n` random patterns over six
/// network-like dimension attributes.
PatternSet RandomSide(size_t n, Rng* rng) {
  const size_t domain_sizes[] = {6, 3, 7, 6, 13, 53};
  PatternSet out;
  for (size_t i = 0; i < n; ++i) {
    std::vector<Pattern::Cell> cells;
    // Real completeness patterns pin at least one attribute; an
    // all-wildcard pattern would collapse the whole pool under
    // minimization.
    size_t forced = rng->UniformUint64(6);
    for (size_t a = 0; a < 6; ++a) {
      if (a != forced && rng->Bernoulli(0.5)) {
        cells.push_back(Pattern::Wildcard());
      } else {
        cells.push_back(Value(
            "v" + std::to_string(a) + "_" +
            std::to_string(rng->UniformUint64(domain_sizes[a]))));
      }
    }
    out.Add(Pattern(std::move(cells)));
  }
  return out;
}

PatternSet Subset(const std::vector<Pattern>& pool, size_t n, Rng* rng) {
  PatternSet out;
  out.Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.Add(pool[rng->UniformUint64(pool.size())]);
  }
  return out;
}

void Run(const PatternSet& input, MinimizeApproach approach,
         PatternIndexKind kind) {
  MinimizeStats stats;
  Minimize(input, approach, kind, &stats);
  std::printf("  %-3s %8zu patterns -> %7zu minimal   %9.1f ms\n",
              MinimizeMethodName(kind, approach).c_str(), input.size(),
              stats.output_size, stats.millis);
  JsonResultLine("fig4_minimize", MinimizeMethodName(kind, approach),
                 input.size(), /*threads=*/1, stats.millis);
}

/// Serial vs ParallelMinimize comparison for one method, medians over
/// `repeats` runs; verifies the outputs are SetEquals-identical.
/// Returns false on divergence.
bool RunParallel(const PatternSet& input, MinimizeApproach approach,
                 PatternIndexKind kind, size_t threads, int repeats) {
  std::vector<double> serial_ms;
  std::vector<double> parallel_ms;
  PatternSet serial_out;
  PatternSet parallel_out;
  for (int r = 0; r < repeats; ++r) {
    MinimizeStats stats;
    serial_out = Minimize(input, approach, kind, &stats);
    serial_ms.push_back(stats.millis);
    parallel_out = ParallelMinimize(input, approach, kind, threads, &stats);
    parallel_ms.push_back(stats.millis);
  }
  if (!serial_out.SetEquals(parallel_out)) {
    std::printf("  !! parallel output DIVERGES from serial for %s\n",
                MinimizeMethodName(kind, approach).c_str());
    return false;
  }
  const double serial_med = Median(serial_ms);
  const double parallel_med = Median(parallel_ms);
  const std::string method = MinimizeMethodName(kind, approach);
  std::printf("  %-3s %8zu patterns   serial %9.1f ms   %zu threads "
              "%9.1f ms   speedup %.2fx\n",
              method.c_str(), input.size(), serial_med, threads, parallel_med,
              parallel_med > 0 ? serial_med / parallel_med : 0.0);
  JsonResultLine("fig4_minimize_serial", method, input.size(), 1, serial_med);
  JsonResultLine("fig4_minimize_parallel", method, input.size(), threads,
                 parallel_med);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Banner("Figure 4", "runtime of pattern minimization techniques");
  const size_t threads = ParseThreadsFlag(argc, argv,
                                          ThreadPool::DefaultThreadCount());

  Rng rng(2015);
  PatternSet left = RandomSide(1000, &rng);
  PatternSet right = RandomSide(1000, &rng);
  std::printf("building the 1000 x 1000 cross product pool...\n");
  PatternSet pool_set = PatternCross(left, right);
  const std::vector<Pattern>& pool = pool_set.patterns();
  std::printf("pool: %zu patterns of arity 12\n\n", pool.size());

  std::printf("scalable methods (paper: D1 fastest, ~25%% ahead of B1; "
              "sorted variants slower):\n");
  for (size_t n : {25000u, 50000u, 100000u, 200000u}) {
    PatternSet input = Subset(pool, n, &rng);
    Run(input, MinimizeApproach::kAllAtOnce,
        PatternIndexKind::kDiscriminationTree);               // D1
    Run(input, MinimizeApproach::kAllAtOnce,
        PatternIndexKind::kHashTable);                        // B1
    Run(input, MinimizeApproach::kSortedIncremental,
        PatternIndexKind::kDiscriminationTree);               // D3
    Run(input, MinimizeApproach::kSortedIncremental,
        PatternIndexKind::kHashTable);                        // B3
    Run(input, MinimizeApproach::kIncremental,
        PatternIndexKind::kDiscriminationTree);               // D2
    std::printf("\n");
  }

  std::printf("inapplicable-at-scale baselines (small inputs only; paper: "
              "A1 >100 s at 10k):\n");
  for (size_t n : {2000u, 5000u, 10000u}) {
    PatternSet input = Subset(pool, n, &rng);
    Run(input, MinimizeApproach::kAllAtOnce,
        PatternIndexKind::kLinearList);                       // A1
    Run(input, MinimizeApproach::kIncremental,
        PatternIndexKind::kPathIndex);                        // C2
    std::printf("\n");
  }

  std::printf("parallel minimization (signature-sharded, %zu threads, "
              "median of 3; outputs verified SetEquals to serial):\n",
              threads);
  bool ok = true;
  for (size_t n : {50000u, 100000u, 200000u}) {
    PatternSet input = Subset(pool, n, &rng);
    ok &= RunParallel(input, MinimizeApproach::kAllAtOnce,
                      PatternIndexKind::kDiscriminationTree, threads, 3);  // D1
    ok &= RunParallel(input, MinimizeApproach::kAllAtOnce,
                      PatternIndexKind::kHashTable, threads, 3);           // B1
    std::printf("\n");
  }
  return ok ? 0 : 1;
}
