// Figure 5: space comparison of minimization methods (hashing vs
// discrimination trees, all-at-once vs sorted incremental).
//
// Paper's findings to reproduce: sorted approaches (B3, D3) use by far
// the least space — they only ever hold the maximal patterns — while
// all-at-once methods hold the entire (deduplicated) input; the sorted
// methods' space can even *shrink* as the input grows, because larger
// random subsets of the pool contain more general patterns that subsume
// the rest.

#include "bench_util.h"
#include "pattern/algebra.h"
#include "pattern/minimize.h"

namespace {

using namespace pcdb;
using namespace pcdb::bench;

PatternSet RandomSide(size_t n, Rng* rng) {
  const size_t domain_sizes[] = {6, 3, 7, 6, 13, 53};
  PatternSet out;
  for (size_t i = 0; i < n; ++i) {
    std::vector<Pattern::Cell> cells;
    // At least one constant per pattern, as in bench_fig4 (an
    // all-wildcard pattern would collapse the pool).
    size_t forced = rng->UniformUint64(6);
    for (size_t a = 0; a < 6; ++a) {
      if (a != forced && rng->Bernoulli(0.5)) {
        cells.push_back(Pattern::Wildcard());
      } else {
        cells.push_back(Value(
            "v" + std::to_string(a) + "_" +
            std::to_string(rng->UniformUint64(domain_sizes[a]))));
      }
    }
    out.Add(Pattern(std::move(cells)));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Banner("Figure 5", "peak index space of pattern minimization methods");
  const size_t threads = ParseThreadsFlag(argc, argv,
                                          ThreadPool::DefaultThreadCount());

  Rng rng(2015);
  PatternSet left = RandomSide(1000, &rng);
  PatternSet right = RandomSide(1000, &rng);
  PatternSet pool_set = PatternCross(left, right);
  const std::vector<Pattern>& pool = pool_set.patterns();
  std::printf("pool: %zu patterns of arity 12\n\n", pool.size());

  struct Method {
    const char* label;
    MinimizeApproach approach;
    PatternIndexKind kind;
  };
  const Method methods[] = {
      {"B1", MinimizeApproach::kAllAtOnce, PatternIndexKind::kHashTable},
      {"D1", MinimizeApproach::kAllAtOnce,
       PatternIndexKind::kDiscriminationTree},
      {"B3", MinimizeApproach::kSortedIncremental,
       PatternIndexKind::kHashTable},
      {"D3", MinimizeApproach::kSortedIncremental,
       PatternIndexKind::kDiscriminationTree},
  };

  std::printf("%-9s", "input");
  for (const Method& m : methods) std::printf("  %12s", m.label);
  std::printf("   (peak index KiB; peak held patterns in parens)\n");
  for (size_t n : {25000u, 50000u, 100000u, 200000u, 300000u}) {
    PatternSet input;
    input.Reserve(n);
    for (size_t i = 0; i < n; ++i) {
      input.Add(pool[rng.UniformUint64(pool.size())]);
    }
    std::printf("%-9zu", n);
    for (const Method& m : methods) {
      MinimizeStats stats;
      Minimize(input, m.approach, m.kind, &stats);
      std::printf("  %6zu(%4zu)",
                  stats.peak_memory_bytes / 1024,
                  stats.peak_index_size);
      JsonResultLine("fig5_space", m.label, n, /*threads=*/1, stats.millis,
                     ",\"peak_bytes\":" +
                         std::to_string(stats.peak_memory_bytes) +
                         ",\"peak_patterns\":" +
                         std::to_string(stats.peak_index_size));
    }
    std::printf("\n");
    // Sharded minimization holds one per-shard index per worker plus the
    // merge index; record its peak for the same input for comparison.
    MinimizeStats pstats;
    ParallelMinimize(input, MinimizeApproach::kAllAtOnce,
                     PatternIndexKind::kDiscriminationTree, threads, &pstats);
    JsonResultLine("fig5_space_parallel", "D1", n, threads, pstats.millis,
                   ",\"peak_bytes\":" +
                       std::to_string(pstats.peak_memory_bytes) +
                       ",\"peak_patterns\":" +
                       std::to_string(pstats.peak_index_size));
  }
  std::printf("\nExpected shape (paper): B3/D3 columns stay tiny and may\n"
              "shrink at the largest inputs; B1/D1 grow linearly with the\n"
              "deduplicated input size.\n");
  return 0;
}
