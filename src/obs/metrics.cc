#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/failpoint.h"
#include "obs/names.h"

namespace pcdb {

namespace {

/// Index of the power-of-two bucket holding `micros`.
size_t BucketFor(uint64_t micros) {
  size_t i = 0;
  while (micros > 1 && i + 1 < Histogram::kNumBuckets) {
    micros >>= 1;
    ++i;
  }
  return i;
}

/// Renders a double the way the bench JSON lines do: fixed notation,
/// trimmed trailing zeros.
std::string JsonDouble(double v) {
  std::ostringstream os;
  os.precision(6);
  os << std::fixed << v;
  std::string s = os.str();
  while (s.size() > 1 && s.back() == '0') s.pop_back();
  if (!s.empty() && s.back() == '.') s.pop_back();
  return s;
}

}  // namespace

void Histogram::RecordMicros(uint64_t micros) {
  buckets_[BucketFor(micros)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_micros_.fetch_add(micros, std::memory_order_relaxed);
}

double Histogram::MeanMillis() const {
  uint64_t n = Count();
  if (n == 0) return 0;
  return static_cast<double>(sum_micros_.load(std::memory_order_relaxed)) /
         static_cast<double>(n) / 1000.0;
}

void Histogram::SnapshotBuckets(uint64_t out[kNumBuckets]) const {
  for (size_t i = 0; i < kNumBuckets; ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
}

void Histogram::MergeFrom(const uint64_t buckets[kNumBuckets],
                          uint64_t sum_micros) {
  uint64_t total = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    if (buckets[i] == 0) continue;
    buckets_[i].fetch_add(buckets[i], std::memory_order_relaxed);
    total += buckets[i];
  }
  count_.fetch_add(total, std::memory_order_relaxed);
  sum_micros_.fetch_add(sum_micros, std::memory_order_relaxed);
}

void MergeHistogram(const Histogram& src, Histogram* dst) {
  uint64_t buckets[Histogram::kNumBuckets];
  src.SnapshotBuckets(buckets);
  dst->MergeFrom(buckets, src.SumMicros());
}

double Histogram::QuantileMillis(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  // Snapshot the buckets; concurrent Record calls skew the estimate by
  // at most the in-flight samples, which is fine for monitoring.
  uint64_t counts[kNumBuckets];
  uint64_t total = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0;
  // Rank of the quantile sample (1-based), then walk the buckets.
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(q * static_cast<double>(total))));
  uint64_t seen = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    if (counts[i] == 0) continue;
    if (seen + counts[i] >= rank) {
      // Linear interpolation inside bucket [2^i, 2^(i+1)).
      const double lo = i == 0 ? 0.0 : static_cast<double>(1ull << i);
      const double hi = static_cast<double>(1ull << (i + 1));
      const double frac = static_cast<double>(rank - seen) /
                          static_cast<double>(counts[i]);
      return (lo + (hi - lo) * frac) / 1000.0;
    }
    seen += counts[i];
  }
  return static_cast<double>(1ull << kNumBuckets) / 1000.0;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(&mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock lock(&mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  MutexLock lock(&mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

uint64_t MetricsRegistry::CounterValue(const std::string& name) const {
  MutexLock lock(&mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->Value();
}

int64_t MetricsRegistry::GaugeValue(const std::string& name) const {
  MutexLock lock(&mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second->Value();
}

std::string MetricsRegistry::ToJson() const {
  MutexLock lock(&mu_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":" + std::to_string(counter->Value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":" + std::to_string(gauge->Value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : histograms_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":{\"count\":" + std::to_string(hist->Count()) +
           ",\"mean_ms\":" + JsonDouble(hist->MeanMillis()) +
           ",\"p50_ms\":" + JsonDouble(hist->QuantileMillis(0.50)) +
           ",\"p95_ms\":" + JsonDouble(hist->QuantileMillis(0.95)) +
           ",\"p99_ms\":" + JsonDouble(hist->QuantileMillis(0.99)) +
           // Raw sample sum alongside the raw buckets: together they
           // are the histogram's full mergeable state, which is what
           // the coordinator's fleet STATS aggregation consumes.
           ",\"sum_micros\":" + std::to_string(hist->SumMicros()) +
           ",\"buckets\":[";
    uint64_t buckets[Histogram::kNumBuckets];
    hist->SnapshotBuckets(buckets);
    for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      if (i != 0) out += ",";
      out += std::to_string(buckets[i]);
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

MetricsRegistry& GlobalMetrics() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

namespace {
/// Written before the trip observer is installed (SetTripObserver's
/// release store publishes it to the acquire load in HitSlow).
Counter* g_failpoint_trips = nullptr;
}  // namespace

const EngineCounters& EngineMetrics() {
  static const EngineCounters* counters = [] {
    auto* c = new EngineCounters();
    MetricsRegistry& global = GlobalMetrics();
    c->patterns_minimized = global.GetCounter(kMetricEnginePatternsMinimized);
    c->subsumption_probes = global.GetCounter(kMetricEngineSubsumptionProbes);
    c->degraded_to_summary = global.GetCounter(kMetricEngineDegradedToSummary);
    c->failpoint_trips = global.GetCounter(kMetricEngineFailpointTrips);
    g_failpoint_trips = c->failpoint_trips;
    Failpoints::SetTripObserver(
        +[] { g_failpoint_trips->Increment(); });
    return c;
  }();
  return *counters;
}

}  // namespace pcdb
