#ifndef PCDB_OBS_METRICS_H_
#define PCDB_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/thread_annotations.h"

/// \file
/// A small metrics registry: monotonic counters, signed gauges, and
/// fixed-bucket latency histograms with percentile estimation. All
/// metric updates are lock-free atomics; the registry lock is only
/// taken to create a metric or render a snapshot.
///
/// Two kinds of registries exist:
///  - Per-Server instances (server/server.h), exported as JSON via the
///    STATS verb and pcdbd --metrics-dump.
///  - The process-wide GlobalMetrics() registry, where engine layers
///    (pattern minimization, the failpoint framework) record counters
///    that have no Server to hang off. The server splices its snapshot
///    into the STATS payload under "engine".

namespace pcdb {

/// \brief Monotonically increasing counter.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// \brief Instantaneous signed value (in-flight requests, open
/// connections, cache bytes).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// \brief Latency histogram over power-of-two microsecond buckets.
///
/// Bucket i counts samples in [2^i, 2^(i+1)) microseconds (bucket 0 also
/// absorbs sub-microsecond samples). 40 buckets cover up to ~12.7 days.
/// Quantile() interpolates linearly inside the winning bucket, so
/// percentiles carry at most one-bucket (2x) resolution error — plenty
/// for p50/p95/p99 load summaries.
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 40;

  void RecordMicros(uint64_t micros);
  void RecordMillis(double millis) {
    RecordMicros(millis <= 0 ? 0 : static_cast<uint64_t>(millis * 1000.0));
  }

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }

  /// Mean sample in milliseconds (0 when empty).
  double MeanMillis() const;

  /// Estimated q-quantile (q in [0,1]) in milliseconds; 0 when empty.
  double QuantileMillis(double q) const;

  /// Copies the raw bucket counts into `out` (relaxed snapshot). Bucket
  /// i counts samples in [2^i, 2^(i+1)) microseconds; bucket 0 also
  /// absorbs sub-microsecond samples. Exported in the JSON snapshot so
  /// external tooling can merge histograms across runs and re-derive
  /// percentiles.
  void SnapshotBuckets(uint64_t out[kNumBuckets]) const;

  /// Sum of all recorded samples in microseconds (relaxed snapshot).
  uint64_t SumMicros() const {
    return sum_micros_.load(std::memory_order_relaxed);
  }

  /// Adds another histogram's raw state — `buckets` counts (the shape
  /// SnapshotBuckets and the JSON "buckets" array export) plus its
  /// sample sum — into this one. Count is derived from the buckets, so
  /// a merged histogram's count always equals its bucket sum. The fleet
  /// STATS path uses this to merge per-shard latency histograms and
  /// re-derive percentiles coordinator-side.
  void MergeFrom(const uint64_t buckets[kNumBuckets], uint64_t sum_micros);

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_micros_{0};
};

/// \brief Named metric registry. Get* creates on first use and returns a
/// stable pointer — callers cache the pointer and update lock-free.
class MetricsRegistry {
 public:
  Counter* GetCounter(const std::string& name) PCDB_EXCLUDES(mu_);
  Gauge* GetGauge(const std::string& name) PCDB_EXCLUDES(mu_);
  Histogram* GetHistogram(const std::string& name) PCDB_EXCLUDES(mu_);

  /// Convenience for tests/tools: current value of a counter (0 when the
  /// counter was never created).
  uint64_t CounterValue(const std::string& name) const PCDB_EXCLUDES(mu_);

  /// Convenience for tests/tools: current value of a gauge (0 when the
  /// gauge was never created).
  int64_t GaugeValue(const std::string& name) const PCDB_EXCLUDES(mu_);

  /// Snapshot as JSON:
  ///   {"counters":{...},"gauges":{...},
  ///    "histograms":{"name":{"count":..,"mean_ms":..,"p50_ms":..,
  ///                          "p95_ms":..,"p99_ms":..,
  ///                          "buckets":[..40 raw counts..]},...}}
  /// Keys are sorted, so output is deterministic.
  std::string ToJson() const PCDB_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      PCDB_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ PCDB_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      PCDB_GUARDED_BY(mu_);
};

/// Merges `src` into `dst` (snapshot of src's buckets + sample sum).
/// Merge is associative and commutative over histogram state, so any
/// fold order over N shards yields the same fleet histogram.
void MergeHistogram(const Histogram& src, Histogram* dst);

/// The process-wide registry for engine-level metrics (never reset;
/// shared by every Server instance in the process).
MetricsRegistry& GlobalMetrics();

/// \brief Cached pointers to the engine counters in GlobalMetrics().
///
/// `engine_patterns_minimized`   — patterns fed into Minimize()
/// `engine_subsumption_probes`   — pattern-index subsumption probes
/// `engine_degraded_to_summary`  — budget-driven summary degradations
/// `engine_failpoint_trips`      — armed failpoint actions that ran
struct EngineCounters {
  Counter* patterns_minimized = nullptr;
  Counter* subsumption_probes = nullptr;
  Counter* degraded_to_summary = nullptr;
  Counter* failpoint_trips = nullptr;
};

/// The engine counters, resolved once. The first call also installs the
/// failpoint trip observer, so trips start counting from the first time
/// any engine code touches metrics (the Server constructor calls this
/// eagerly).
const EngineCounters& EngineMetrics();

}  // namespace pcdb

#endif  // PCDB_OBS_METRICS_H_
