#include "obs/profile.h"

#include <cstdio>

#include "common/log.h"

namespace pcdb {

namespace {

/// Fixed two-decimal rendering keeps the JSON deterministic for a given
/// set of measured values (no locale, no exponent form).
std::string Fixed2(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

}  // namespace

double QueryProfile::OperatorMicrosTotal() const {
  double total = 0;
  for (const OperatorProfile& op : operators) {
    total += op.pattern_micros + op.data_micros;
  }
  return total;
}

std::string QueryProfileToJson(const QueryProfile& profile) {
  std::string out = "{\"cache_hit\":";
  out += profile.cache_hit ? "true" : "false";
  out += ",\"degraded\":";
  out += profile.degraded ? "true" : "false";
  out += ",\"queue_micros\":";
  out += std::to_string(profile.queue_micros);
  out += ",\"eval_micros\":";
  out += Fixed2(profile.eval_micros);
  out += ",\"operator_micros\":";
  out += Fixed2(profile.OperatorMicrosTotal());
  out += ",\"operators\":[";
  bool first = true;
  for (const OperatorProfile& op : profile.operators) {
    if (!first) out += ",";
    first = false;
    out += "{\"op\":\"";
    out += JsonEscape(op.op);
    out += "\",\"depth\":";
    out += std::to_string(op.depth);
    out += ",\"input_rows\":";
    out += std::to_string(op.input_rows);
    out += ",\"output_rows\":";
    out += std::to_string(op.output_rows);
    out += ",\"patterns_in\":";
    out += std::to_string(op.patterns_in);
    out += ",\"patterns_pre_min\":";
    out += std::to_string(op.patterns_pre_min);
    out += ",\"patterns_out\":";
    out += std::to_string(op.patterns_out);
    out += ",\"zombies_added\":";
    out += std::to_string(op.zombies_added);
    out += ",\"probes\":";
    out += std::to_string(op.probes);
    out += ",\"pattern_micros\":";
    out += Fixed2(op.pattern_micros);
    out += ",\"data_micros\":";
    out += Fixed2(op.data_micros);
    out += "}";
  }
  out += "]}";
  return out;
}

std::string QueryProfileToText(const QueryProfile& profile) {
  std::string out;
  out += "Query profile: eval " + Fixed2(profile.eval_micros / 1000.0) +
         " ms (operators " +
         Fixed2(profile.OperatorMicrosTotal() / 1000.0) + " ms";
  if (profile.queue_micros != 0) {
    out += ", queued " +
           Fixed2(static_cast<double>(profile.queue_micros) / 1000.0) +
           " ms";
  }
  out += ")";
  if (profile.cache_hit) out += " [cache hit]";
  if (profile.degraded) out += " [degraded]";
  out += "\n";
  // Post-order puts the root last; print it first, walking backwards.
  // Within one parent the right subtree prints before the left — the
  // indentation (two spaces per depth) still reflects the tree shape.
  for (auto it = profile.operators.rbegin(); it != profile.operators.rend();
       ++it) {
    const OperatorProfile& op = *it;
    out += std::string(static_cast<size_t>(op.depth) * 2, ' ');
    out += "-> " + op.op;
    out += "  rows " + std::to_string(op.input_rows) + "->" +
           std::to_string(op.output_rows);
    out += "  patterns " + std::to_string(op.patterns_in) + "->" +
           std::to_string(op.patterns_pre_min) + "->" +
           std::to_string(op.patterns_out);
    if (op.zombies_added != 0) {
      out += "  zombies +" + std::to_string(op.zombies_added);
    }
    if (op.probes != 0) out += "  probes " + std::to_string(op.probes);
    out += "  pattern " + Fixed2(op.pattern_micros / 1000.0) + " ms";
    out += "  data " + Fixed2(op.data_micros / 1000.0) + " ms";
    out += "\n";
  }
  return out;
}

}  // namespace pcdb
