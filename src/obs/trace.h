#ifndef PCDB_OBS_TRACE_H_
#define PCDB_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/trace_context.h"

/// \file
/// Span-based tracer with Chrome trace-event JSON output.
///
/// Usage at a site:
///
///   Status ApplyRootOperator(...) {
///     PCDB_TRACE_SPAN(span, "eval.join");
///     ...
///     span.Arg("rows", out.num_rows());
///     return out;
///   }
///
/// Design constraints, in order:
///
///  1. Zero allocation (and near-zero work) when disabled. The span
///     constructor is a single relaxed atomic load when tracing is off
///     — the hot paths benchmarked in figs 4-6 are unaffected. Names
///     and argument keys must therefore be string literals (the tracer
///     stores the pointers, never copies).
///  2. Race-free cross-thread propagation. Each thread appends
///     completed spans to its own buffer (one mutex per buffer,
///     uncontended except against a concurrent dump); the parent/child
///     relation travels via common/trace_context.h, which ThreadPool
///     carries across task boundaries.
///  3. Bounded memory. Each thread buffer holds at most
///     kMaxEventsPerThread events; overflow increments a drop counter
///     that the dump reports (never silently truncates).
///
/// Enabling: set PCDB_TRACE=1 in the environment (the process dumps
/// one Chrome-trace JSON file per run at exit, to $PCDB_TRACE_DIR or
/// the working directory), or call Tracer::Global().SetEnabled(true)
/// and use SnapshotEvents()/WriteChromeTraceFile() directly (tests).

namespace pcdb {

namespace trace_internal {
/// Process-wide on/off switch, read inline by every span constructor.
extern std::atomic<bool> g_trace_on;
}  // namespace trace_internal

/// \brief One completed span, fixed-size (no owned strings: `name` and
/// the arg keys point at string literals).
struct TraceEvent {
  static constexpr size_t kMaxArgs = 3;

  const char* name = nullptr;
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;
  uint64_t start_micros = 0;  ///< Steady-clock micros since tracer epoch.
  uint64_t duration_micros = 0;
  uint32_t thread_index = 0;  ///< Registration order of the thread buffer.
  uint32_t num_args = 0;
  const char* arg_keys[kMaxArgs] = {};
  uint64_t arg_values[kMaxArgs] = {};
};

/// \brief The process-wide tracer: thread-buffer registry, id
/// allocation, and Chrome-trace rendering.
class Tracer {
 public:
  static constexpr size_t kMaxEventsPerThread = 1u << 16;

  static Tracer& Global();

  /// True when spans record. Inline: one relaxed load.
  static bool enabled() {
    return trace_internal::g_trace_on.load(std::memory_order_relaxed);
  }

  /// Flips recording on/off (tests; PCDB_TRACE=1 sets it at startup).
  void SetEnabled(bool on);

  /// Fresh ids. Never returns 0 (0 means "none"). Counters start from a
  /// per-process salt (bits 40+), so ids minted by pcdb_coord and N
  /// shard pcdbd processes never collide in a merged fleet trace.
  uint64_t NextTraceId();
  uint64_t NextSpanId();

  /// Steady-clock microseconds since the tracer epoch (first use).
  uint64_t NowMicros() const;

  /// Label for this process in merged multi-process traces (e.g.
  /// "pcdb_coord", "pcdbd.shard0"). Emitted in the dump's otherData;
  /// tools/trace_merge.py turns it into a process_name metadata row.
  void SetProcessLabel(std::string label);
  std::string ProcessLabel() const;

  /// Appends a completed event to the calling thread's buffer. The
  /// thread_index field is filled in here.
  void Record(TraceEvent event);

  /// Records a complete span with explicit timing under the calling
  /// thread's current trace context (a fresh span id, parented to the
  /// current span). Used for intervals that did not run under an RAII
  /// scope, e.g. queue wait measured after the fact. No-op when
  /// disabled.
  void RecordInterval(const char* name, uint64_t start_micros,
                      uint64_t duration_micros);

  /// Currently open TraceSpans (balance must return to its pre-test
  /// value on every error/cancel/deadline/failpoint path — span_test
  /// asserts this across the fault matrix).
  int64_t OpenSpanCount() const {
    return open_spans_.load(std::memory_order_relaxed);
  }

  /// All recorded events across threads (stable order: by thread
  /// registration, then append order).
  std::vector<TraceEvent> SnapshotEvents() const;

  /// Events dropped to the per-thread cap, across all threads.
  uint64_t DroppedEvents() const;

  /// Clears recorded events and drop counts. Thread buffers stay
  /// registered (live threads keep their slots). Call only while no
  /// spans are being recorded concurrently with the intent of a clean
  /// slate; concurrent recording is safe but may survive the reset.
  void Reset();

  /// The full Chrome trace-event JSON document
  /// ({"traceEvents":[...],"displayTimeUnit":"ms",...}) — loadable in
  /// chrome://tracing / Perfetto.
  std::string ToChromeTraceJson() const;

  /// Writes ToChromeTraceJson() to `path`.
  [[nodiscard]] Status WriteChromeTraceFile(const std::string& path) const;

  // Span open/close accounting (called by TraceSpan).
  void NoteSpanOpened() {
    open_spans_.fetch_add(1, std::memory_order_relaxed);
  }
  void NoteSpanClosed() {
    open_spans_.fetch_sub(1, std::memory_order_relaxed);
  }

 private:
  Tracer();

  struct ThreadBuffer;
  ThreadBuffer* BufferForThisThread();

  /// The calling thread's buffer, created lazily on first Record.
  static thread_local ThreadBuffer* tls_buffer_;

  std::atomic<uint64_t> next_trace_id_{1};
  std::atomic<uint64_t> next_span_id_{1};
  std::atomic<int64_t> open_spans_{0};

  mutable Mutex registry_mu_;
  /// Buffers are created once per thread and never destroyed (threads
  /// hold raw pointers in TLS), so the vector only grows.
  std::vector<ThreadBuffer*> buffers_ PCDB_GUARDED_BY(registry_mu_);
  std::string process_label_ PCDB_GUARDED_BY(registry_mu_);
};

/// \brief RAII span: opens on construction (when tracing is enabled),
/// records a complete event on destruction. Must be stack-scoped; the
/// name and arg keys must be string literals.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (Tracer::enabled()) Begin(name);
  }
  ~TraceSpan() {
    if (active_) End();
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches a numeric argument (shown in the trace viewer). Silently
  /// ignored beyond TraceEvent::kMaxArgs or when inactive.
  void Arg(const char* key, uint64_t value) {
    if (!active_ || event_.num_args >= TraceEvent::kMaxArgs) return;
    event_.arg_keys[event_.num_args] = key;
    event_.arg_values[event_.num_args] = value;
    ++event_.num_args;
  }

  bool active() const { return active_; }

 private:
  void Begin(const char* name);  // cold path, out of line
  void End();

  bool active_ = false;
  TraceContext saved_;
  TraceEvent event_;
};

/// Declares a named RAII span variable. The two-argument form gives the
/// span a handle for Arg(); sites that only need the timing can declare
/// an anonymous-ish local directly.
#define PCDB_TRACE_SPAN(var, name) ::pcdb::TraceSpan var(name)

}  // namespace pcdb

#endif  // PCDB_OBS_TRACE_H_
