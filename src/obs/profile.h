#ifndef PCDB_OBS_PROFILE_H_
#define PCDB_OBS_PROFILE_H_

#include <cstdint>
#include <string>
#include <vector>

/// \file
/// EXPLAIN ANALYZE-style per-query profile. The annotated evaluator
/// fills one OperatorProfile per plan node (post-order, matching its
/// recursion) when AnnotatedEvalOptions.collect_profile is set; the
/// server and pcdb_cli wrap the result in a QueryProfile with the
/// request-level timings (queue wait, measured eval total, cache
/// hit/miss) and render it as JSON or indented text.
///
/// The per-operator micros are disjoint: each node times only its own
/// pattern step (ComputeQueryPatterns + minimization) and its own data
/// step (ApplyRootOperator), excluding children. Their sum is therefore
/// bounded by the measured wall-clock total — the invariant
/// pcdb_cli --explain-analyze prints and tests assert.
///
/// The JSON rendering is the byte-exact payload of the wire protocol's
/// ANSWER_PROFILE frame: the server renders once and the frame carries
/// the text verbatim, so a client receives the identical bytes.

namespace pcdb {

/// \brief One plan node's contribution to a query.
struct OperatorProfile {
  std::string op;       ///< e.g. "join(Warnings.WID=Maint.WID)"
  int depth = 0;        ///< Root is 0; children are parent + 1.
  uint64_t input_rows = 0;   ///< Sum over children's output rows.
  uint64_t output_rows = 0;
  uint64_t patterns_in = 0;        ///< Sum over children's pattern sets.
  uint64_t patterns_pre_min = 0;   ///< Before this node's minimization.
  uint64_t patterns_out = 0;       ///< After minimization.
  uint64_t zombies_added = 0;      ///< Zombie patterns created here.
  uint64_t probes = 0;             ///< Subsumption probes in minimization.
  double pattern_micros = 0;  ///< This node's pattern step (children excl.).
  double data_micros = 0;     ///< This node's data step (children excl.).
};

/// \brief A full query profile: operators (post-order) + request-level
/// context.
struct QueryProfile {
  std::vector<OperatorProfile> operators;
  bool cache_hit = false;
  bool degraded = false;
  uint64_t queue_micros = 0;  ///< Admission-to-evaluation wait (server).
  double eval_micros = 0;     ///< Measured wall-clock of the evaluation.

  /// Sum of all operators' pattern + data micros (<= eval_micros).
  double OperatorMicrosTotal() const;
};

/// Deterministic JSON rendering (this exact string travels in the
/// ANSWER_PROFILE frame).
std::string QueryProfileToJson(const QueryProfile& profile);

/// Human-readable indented tree for pcdb_cli --explain-analyze. Renders
/// root-first (reverse post-order), children indented by depth.
std::string QueryProfileToText(const QueryProfile& profile);

}  // namespace pcdb

#endif  // PCDB_OBS_PROFILE_H_
