#include "obs/trace.h"

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/log.h"

namespace pcdb {

namespace trace_internal {
std::atomic<bool> g_trace_on{false};
}  // namespace trace_internal

/// One thread's event storage. The mutex is uncontended in steady state
/// (only its owning thread appends); a snapshot/dump from another
/// thread takes it briefly, which keeps TSan and the memory model happy
/// without a lock-free ring.
struct Tracer::ThreadBuffer {
  Mutex mu;
  std::vector<TraceEvent> events PCDB_GUARDED_BY(mu);
  uint64_t dropped PCDB_GUARDED_BY(mu) = 0;
  uint32_t thread_index = 0;
};

thread_local Tracer::ThreadBuffer* Tracer::tls_buffer_ = nullptr;

namespace {

/// Steady and wall clocks read back to back, once per process: steady
/// micros since `steady` are what every event carries, and `wall_us` is
/// the wall-clock time of that same instant, so trace_merge.py can
/// re-base dumps from different processes onto one timeline.
struct TraceEpoch {
  std::chrono::steady_clock::time_point steady;
  int64_t wall_us;
};

const TraceEpoch& Epoch() {
  static const TraceEpoch epoch = [] {
    TraceEpoch e;
    e.steady = std::chrono::steady_clock::now();
    e.wall_us = std::chrono::duration_cast<std::chrono::microseconds>(
                    std::chrono::system_clock::now().time_since_epoch())
                    .count();
    return e;
  }();
  return epoch;
}

void DumpAtExit() {
  if (!Tracer::enabled()) return;
  const char* dir = std::getenv("PCDB_TRACE_DIR");
  // pid + steady ticks: unique across the many short-lived gtest
  // processes of a traced suite run, even under pid reuse.
  const uint64_t ticks = static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  std::string path = dir != nullptr && dir[0] != '\0'
                         ? std::string(dir) + "/"
                         : std::string();
  path += "pcdb_trace." + std::to_string(getpid()) + "." +
          std::to_string(ticks) + ".json";
  Status status = Tracer::Global().WriteChromeTraceFile(path);
  if (!status.ok()) {
    LogWarn("trace dump failed")
        .Str("path", path)
        .Str("error", status.ToString());
  }
}

/// Reads PCDB_TRACE once at static-init time; "1"/non-empty (except
/// "0") turns tracing on for the whole process and registers the
/// at-exit dump.
struct TraceEnvInit {
  TraceEnvInit() {
    const char* env = std::getenv("PCDB_TRACE");
    if (env != nullptr && env[0] != '\0' && std::strcmp(env, "0") != 0) {
      trace_internal::g_trace_on.store(true, std::memory_order_relaxed);
      std::atexit(DumpAtExit);
    }
  }
};
TraceEnvInit g_trace_env_init;

}  // namespace

Tracer::Tracer() {
  // Salt the id counters per process: the low 40 bits stay a plain
  // counter, bits 40+ carry a hash of pid and startup time, and the
  // forced low bit keeps the first id nonzero. pcdb_coord and its N
  // shard pcdbd processes all mint ids, and a merged fleet trace
  // (tools/trace_merge.py) must never see two processes reuse one.
  uint64_t seed =
      static_cast<uint64_t>(getpid()) ^
      static_cast<uint64_t>(
          std::chrono::steady_clock::now().time_since_epoch().count());
  seed *= 0x9E3779B97F4A7C15ull;  // Fibonacci hashing to spread the bits.
  seed ^= seed >> 32;
  const uint64_t salt = ((seed & 0xFFFFFFu) << 40) | 1;
  next_trace_id_.store(salt, std::memory_order_relaxed);
  next_span_id_.store(salt, std::memory_order_relaxed);
}

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::SetEnabled(bool on) {
  trace_internal::g_trace_on.store(on, std::memory_order_relaxed);
}

uint64_t Tracer::NextTraceId() {
  return next_trace_id_.fetch_add(1, std::memory_order_relaxed);
}

uint64_t Tracer::NextSpanId() {
  return next_span_id_.fetch_add(1, std::memory_order_relaxed);
}

uint64_t Tracer::NowMicros() const {
  // The epoch is the first call (any thread); magic-static init is
  // thread-safe. All timestamps in one process share it.
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - Epoch().steady)
          .count());
}

void Tracer::SetProcessLabel(std::string label) {
  MutexLock lock(&registry_mu_);
  process_label_ = std::move(label);
}

std::string Tracer::ProcessLabel() const {
  MutexLock lock(&registry_mu_);
  return process_label_;
}

Tracer::ThreadBuffer* Tracer::BufferForThisThread() {
  if (tls_buffer_ != nullptr) return tls_buffer_;
  auto* buffer = new ThreadBuffer();
  {
    MutexLock lock(&registry_mu_);
    buffer->thread_index = static_cast<uint32_t>(buffers_.size());
    buffers_.push_back(buffer);
  }
  tls_buffer_ = buffer;
  return buffer;
}

void Tracer::Record(TraceEvent event) {
  ThreadBuffer* buffer = BufferForThisThread();
  event.thread_index = buffer->thread_index;
  MutexLock lock(&buffer->mu);
  if (buffer->events.size() >= kMaxEventsPerThread) {
    ++buffer->dropped;
    return;
  }
  buffer->events.push_back(event);
}

void Tracer::RecordInterval(const char* name, uint64_t start_micros,
                            uint64_t duration_micros) {
  if (!enabled()) return;
  const TraceContext current = CurrentTraceContext();
  TraceEvent event;
  event.name = name;
  event.trace_id = current.trace_id;
  event.span_id = NextSpanId();
  event.parent_span_id = current.span_id;
  event.start_micros = start_micros;
  event.duration_micros = duration_micros;
  Record(event);
}

std::vector<TraceEvent> Tracer::SnapshotEvents() const {
  std::vector<ThreadBuffer*> buffers;
  {
    MutexLock lock(&registry_mu_);
    buffers = buffers_;
  }
  std::vector<TraceEvent> out;
  for (ThreadBuffer* buffer : buffers) {
    MutexLock lock(&buffer->mu);
    out.insert(out.end(), buffer->events.begin(), buffer->events.end());
  }
  return out;
}

uint64_t Tracer::DroppedEvents() const {
  std::vector<ThreadBuffer*> buffers;
  {
    MutexLock lock(&registry_mu_);
    buffers = buffers_;
  }
  uint64_t dropped = 0;
  for (ThreadBuffer* buffer : buffers) {
    MutexLock lock(&buffer->mu);
    dropped += buffer->dropped;
  }
  return dropped;
}

void Tracer::Reset() {
  std::vector<ThreadBuffer*> buffers;
  {
    MutexLock lock(&registry_mu_);
    buffers = buffers_;
  }
  for (ThreadBuffer* buffer : buffers) {
    MutexLock lock(&buffer->mu);
    buffer->events.clear();
    buffer->dropped = 0;
  }
}

std::string Tracer::ToChromeTraceJson() const {
  const std::vector<TraceEvent> events = SnapshotEvents();
  const uint64_t dropped = DroppedEvents();
  const std::string pid = std::to_string(getpid());
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& event : events) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"";
    out += JsonEscape(event.name);
    out += "\",\"cat\":\"pcdb\",\"ph\":\"X\",\"ts\":";
    out += std::to_string(event.start_micros);
    out += ",\"dur\":";
    out += std::to_string(event.duration_micros);
    out += ",\"pid\":" + pid + ",\"tid\":";
    out += std::to_string(event.thread_index);
    out += ",\"args\":{\"trace_id\":";
    out += std::to_string(event.trace_id);
    out += ",\"span_id\":";
    out += std::to_string(event.span_id);
    out += ",\"parent_span_id\":";
    out += std::to_string(event.parent_span_id);
    for (uint32_t i = 0; i < event.num_args; ++i) {
      out += ",\"";
      out += JsonEscape(event.arg_keys[i]);
      out += "\":";
      out += std::to_string(event.arg_values[i]);
    }
    out += "}}";
  }
  out += "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped_events\":";
  out += std::to_string(dropped);
  // Everything trace_merge.py needs to stitch this dump into a fleet
  // timeline: the real pid (event "pid" fields match it), the wall
  // clock at tracer-epoch ts=0, and the process label.
  out += ",\"pid\":" + pid;
  out += ",\"epoch_wall_us\":" + std::to_string(Epoch().wall_us);
  out += ",\"process_label\":\"" + JsonEscape(ProcessLabel()) + "\"}}";
  return out;
}

Status Tracer::WriteChromeTraceFile(const std::string& path) const {
  const std::string json = ToChromeTraceJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Unavailable("cannot open trace file " + path);
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const int close_rc = std::fclose(f);
  if (written != json.size() || close_rc != 0) {
    return Status::Unavailable("short write to trace file " + path);
  }
  return Status::OK();
}

void TraceSpan::Begin(const char* name) {
  Tracer& tracer = Tracer::Global();
  saved_ = CurrentTraceContext();
  event_.name = name;
  event_.trace_id =
      saved_.trace_id != 0 ? saved_.trace_id : tracer.NextTraceId();
  event_.parent_span_id = saved_.span_id;
  event_.span_id = tracer.NextSpanId();
  event_.start_micros = tracer.NowMicros();
  SetCurrentTraceContext(TraceContext{event_.trace_id, event_.span_id});
  tracer.NoteSpanOpened();
  active_ = true;
}

void TraceSpan::End() {
  Tracer& tracer = Tracer::Global();
  const uint64_t end_micros = tracer.NowMicros();
  event_.duration_micros =
      end_micros >= event_.start_micros ? end_micros - event_.start_micros
                                        : 0;
  SetCurrentTraceContext(saved_);
  tracer.NoteSpanClosed();
  tracer.Record(event_);
  active_ = false;
}

}  // namespace pcdb
