#ifndef PCDB_OBS_NAMES_H_
#define PCDB_OBS_NAMES_H_

/// \file
/// The observability name registry: every metric and trace-span name in
/// the engine is declared exactly once here, as a constant that call
/// sites reference by identifier. A name that exists only as a string
/// literal at a call site can silently drift from the dashboards, the
/// trace validator, and the docs that consume it — so pcdb-analyze
/// (obs-registry checker) enforces that in src/ the name argument of
/// GetCounter / GetGauge / GetHistogram / PCDB_TRACE_SPAN / TraceSpan /
/// RecordInterval is one of these constants, that every constant below
/// appears in its kAll* table, that values are unique, and that no
/// constant is dead. tools/check_trace.py closes the loop at runtime:
/// a span name in a trace dump that is not in kAllSpanNames fails CI.
///
/// Adding a name: declare the constant, add it to the kAll* table
/// (the checker fails on a missing entry), and use it at the site.
///
/// Span naming convention: `<layer>.<operation>` (server.query,
/// minimize.parallel, pattern.join); the two legacy top-level names
/// (evaluate_annotated, compute_query_patterns) predate the convention
/// and are kept — renaming spans breaks saved traces and dashboards.
/// Metric convention: snake_case, `_total` suffix for counters that
/// count events (not states), `engine_` prefix for the process-wide
/// GlobalMetrics() registry shared across Server instances.

namespace pcdb {

// --- Trace-span names (obs/trace.h). The tracer stores the pointer,
// never copies, so these being process-lifetime constants is load-
// bearing, not just style.

// SQL front end.
inline constexpr char kSpanSqlPlan[] = "sql.plan";

// Server request path (server/server.cc).
inline constexpr char kSpanServerAccept[] = "server.accept";
inline constexpr char kSpanServerFrame[] = "server.frame";
inline constexpr char kSpanServerQuery[] = "server.query";
inline constexpr char kSpanServerEncode[] = "server.encode";
inline constexpr char kSpanServerFlush[] = "server.flush";
inline constexpr char kSpanServerIngest[] = "server.ingest";
inline constexpr char kSpanServerWriteBatch[] = "server.write_batch";
/// Explicitly-timed interval (Tracer::RecordInterval), not an RAII
/// span: measures queue wait on another thread's timeline, so
/// check_trace.py exempts it from the nesting check.
inline constexpr char kSpanServerQueueWait[] = "server.queue_wait";

// Answer cache (server/answer_cache.cc).
inline constexpr char kSpanCacheGet[] = "cache.get";
inline constexpr char kSpanCachePut[] = "cache.put";

// Annotated evaluation entry points (pattern/annotated_eval.cc).
inline constexpr char kSpanEvaluateAnnotated[] = "evaluate_annotated";
inline constexpr char kSpanComputeQueryPatterns[] = "compute_query_patterns";

// Data operators (relational/evaluator.cc, one per ExprKind).
inline constexpr char kSpanEvalScan[] = "eval.scan";
inline constexpr char kSpanEvalSelectConst[] = "eval.select_const";
inline constexpr char kSpanEvalSelectAttrEq[] = "eval.select_attr_eq";
inline constexpr char kSpanEvalProjectOut[] = "eval.project_out";
inline constexpr char kSpanEvalRearrange[] = "eval.rearrange";
inline constexpr char kSpanEvalJoin[] = "eval.join";
inline constexpr char kSpanEvalAggregate[] = "eval.aggregate";
inline constexpr char kSpanEvalSort[] = "eval.sort";
inline constexpr char kSpanEvalLimit[] = "eval.limit";
inline constexpr char kSpanEvalUnion[] = "eval.union";
inline constexpr char kSpanEvalOperator[] = "eval.operator";

// Pattern operators (pattern/annotated_eval.cc, the metadata half).
inline constexpr char kSpanPatternScan[] = "pattern.scan";
inline constexpr char kSpanPatternSelectConst[] = "pattern.select_const";
inline constexpr char kSpanPatternSelectAttrEq[] = "pattern.select_attr_eq";
inline constexpr char kSpanPatternProjectOut[] = "pattern.project_out";
inline constexpr char kSpanPatternRearrange[] = "pattern.rearrange";
inline constexpr char kSpanPatternJoin[] = "pattern.join";
inline constexpr char kSpanPatternAggregate[] = "pattern.aggregate";
inline constexpr char kSpanPatternSort[] = "pattern.sort";
inline constexpr char kSpanPatternLimit[] = "pattern.limit";
inline constexpr char kSpanPatternUnion[] = "pattern.union";
inline constexpr char kSpanPatternOperator[] = "pattern.operator";

// Durability (durability/wal.cc, durability/checkpoint.cc,
// server/server.cc recovery path).
inline constexpr char kSpanWalAppendBatch[] = "wal.append_batch";
inline constexpr char kSpanCheckpointSave[] = "checkpoint.save";
inline constexpr char kSpanRecoveryCheckpoint[] = "recovery.checkpoint";
inline constexpr char kSpanRecoveryReplay[] = "recovery.replay";

// Distributed coordinator (dist/coordinator.cc).
inline constexpr char kSpanDistQuery[] = "dist.query";
inline constexpr char kSpanDistScatter[] = "dist.scatter";
inline constexpr char kSpanDistMerge[] = "dist.merge";
inline constexpr char kSpanDistWrite[] = "dist.write";
/// First-contact SHARD_INFO verification of one shard connection; its
/// rtt_micros arg is the clock-skew bound tools/trace_merge.py uses
/// when stitching that shard's dump into the fleet timeline.
inline constexpr char kSpanDistHandshake[] = "dist.handshake";

// Minimization (pattern/minimize.cc, one per MinimizeApproach).
inline constexpr char kSpanMinimizeAllAtOnce[] = "minimize.all_at_once";
inline constexpr char kSpanMinimizeIncremental[] = "minimize.incremental";
inline constexpr char kSpanMinimizeSortedIncremental[] =
    "minimize.sorted_incremental";
inline constexpr char kSpanMinimizeParallel[] = "minimize.parallel";
inline constexpr char kSpanMinimize[] = "minimize";

/// Every span name the engine can emit. check_trace.py fails a trace
/// dump containing a name outside this table; the obs-registry checker
/// fails the build tree when a kSpan* constant is missing from it.
inline constexpr const char* kAllSpanNames[] = {
    kSpanSqlPlan,
    kSpanServerAccept,
    kSpanServerFrame,
    kSpanServerQuery,
    kSpanServerEncode,
    kSpanServerFlush,
    kSpanServerIngest,
    kSpanServerWriteBatch,
    kSpanServerQueueWait,
    kSpanCacheGet,
    kSpanCachePut,
    kSpanEvaluateAnnotated,
    kSpanComputeQueryPatterns,
    kSpanEvalScan,
    kSpanEvalSelectConst,
    kSpanEvalSelectAttrEq,
    kSpanEvalProjectOut,
    kSpanEvalRearrange,
    kSpanEvalJoin,
    kSpanEvalAggregate,
    kSpanEvalSort,
    kSpanEvalLimit,
    kSpanEvalUnion,
    kSpanEvalOperator,
    kSpanPatternScan,
    kSpanPatternSelectConst,
    kSpanPatternSelectAttrEq,
    kSpanPatternProjectOut,
    kSpanPatternRearrange,
    kSpanPatternJoin,
    kSpanPatternAggregate,
    kSpanPatternSort,
    kSpanPatternLimit,
    kSpanPatternUnion,
    kSpanPatternOperator,
    kSpanWalAppendBatch,
    kSpanCheckpointSave,
    kSpanRecoveryCheckpoint,
    kSpanRecoveryReplay,
    kSpanDistQuery,
    kSpanDistScatter,
    kSpanDistMerge,
    kSpanDistWrite,
    kSpanDistHandshake,
    kSpanMinimizeAllAtOnce,
    kSpanMinimizeIncremental,
    kSpanMinimizeSortedIncremental,
    kSpanMinimizeParallel,
    kSpanMinimize,
};

// --- Metric names (obs/metrics.h).

// Per-Server registry (server/server.cc): counters.
inline constexpr char kMetricRequestsTotal[] = "requests_total";
inline constexpr char kMetricShedTotal[] = "shed_total";
inline constexpr char kMetricCacheHits[] = "cache_hits";
inline constexpr char kMetricCacheMisses[] = "cache_misses";
inline constexpr char kMetricErrorsTotal[] = "errors_total";
inline constexpr char kMetricCancelledTotal[] = "cancelled_total";
inline constexpr char kMetricTimeoutsTotal[] = "timeouts_total";
inline constexpr char kMetricConnectionsTotal[] = "connections_total";
inline constexpr char kMetricConnectionsRejected[] = "connections_rejected";
inline constexpr char kMetricConnectionFaults[] = "connection_faults";
inline constexpr char kMetricProtocolErrors[] = "protocol_errors";
inline constexpr char kMetricEvalTaskFaults[] = "eval_task_faults";
inline constexpr char kMetricPollErrors[] = "poll_errors";
inline constexpr char kMetricIngestRowsTotal[] = "ingest_rows_total";
inline constexpr char kMetricIngestRejectedTotal[] = "ingest_rejected_total";
inline constexpr char kMetricPunctuationsTotal[] = "punctuations_total";
inline constexpr char kMetricPatternsRetractedTotal[] =
    "patterns_retracted_total";
inline constexpr char kMetricWritesShedTotal[] = "writes_shed_total";
inline constexpr char kMetricWriteBatches[] = "write_batches";
/// Read-side admission: queries shed because the tenant exceeded
/// ServerOptions::tenant_read_quota. Per-tenant breakdowns are dynamic
/// names composed as `queries_shed_total.<tenant>` from this prefix —
/// only for tenants configured in ServerOptions::tenant_tiers; unknown
/// (wire-supplied) tenants share `queries_shed_total.other`.
inline constexpr char kMetricQueriesShedTotal[] = "queries_shed_total";

// Per-Server registry: durability (WAL / checkpoint / recovery /
// idempotent-retry dedup).
inline constexpr char kMetricWalRecordsTotal[] = "wal_records_total";
inline constexpr char kMetricWalFsyncsTotal[] = "wal_fsyncs_total";
inline constexpr char kMetricWalRecoveredRecords[] = "wal_recovered_records";
inline constexpr char kMetricWalTornTailTotal[] = "wal_torn_tail_total";
inline constexpr char kMetricCheckpointsTotal[] = "checkpoints_total";
inline constexpr char kMetricWritesDedupedTotal[] = "writes_deduped_total";

// Per-Server registry: gauges and histograms.
inline constexpr char kMetricConnectionsOpen[] = "connections_open";
inline constexpr char kMetricInflight[] = "inflight";
inline constexpr char kMetricPendingWrites[] = "pending_writes";
inline constexpr char kMetricRequestLatency[] = "request_latency";

// Coordinator registry (dist/coordinator.cc). Per-shard latency
// histograms are dynamic names composed as `shard_latency.<i>` from
// this prefix.
inline constexpr char kMetricShardLatency[] = "shard_latency";
inline constexpr char kMetricShardErrorsTotal[] = "shard_errors_total";
/// Gauge: live (tenant, writer_id) idempotent-retry dedup entries held
/// by the coordinator, bounded by CoordinatorOptions::max_writer_states.
inline constexpr char kMetricWriterStates[] = "writer_states";
/// STATS requests the coordinator answered with fleet-aggregated
/// metrics (counter sums + histogram bucket merges across shards).
inline constexpr char kMetricFleetStatsTotal[] = "fleet_stats_total";
/// Broadcast queries whose per-shard EXPLAIN ANALYZE profiles were
/// merged into a fleet profile.
inline constexpr char kMetricProfileMergesTotal[] = "profile_merges_total";

// Process-wide GlobalMetrics() registry (obs/metrics.cc).
inline constexpr char kMetricEnginePatternsMinimized[] =
    "engine_patterns_minimized";
inline constexpr char kMetricEngineSubsumptionProbes[] =
    "engine_subsumption_probes";
inline constexpr char kMetricEngineDegradedToSummary[] =
    "engine_degraded_to_summary";
inline constexpr char kMetricEngineFailpointTrips[] =
    "engine_failpoint_trips";
/// Client-side (server/client.cc), hence no engine_ prefix: transparent
/// reconnects performed by Client retry logic, process-wide because a
/// Client has no per-Server registry to report into.
inline constexpr char kMetricClientReconnectsTotal[] =
    "client_reconnects_total";

/// Every metric name the engine registers, for the same completeness
/// checks as kAllSpanNames.
inline constexpr const char* kAllMetricNames[] = {
    kMetricRequestsTotal,
    kMetricShedTotal,
    kMetricCacheHits,
    kMetricCacheMisses,
    kMetricErrorsTotal,
    kMetricCancelledTotal,
    kMetricTimeoutsTotal,
    kMetricConnectionsTotal,
    kMetricConnectionsRejected,
    kMetricConnectionFaults,
    kMetricProtocolErrors,
    kMetricEvalTaskFaults,
    kMetricPollErrors,
    kMetricIngestRowsTotal,
    kMetricIngestRejectedTotal,
    kMetricPunctuationsTotal,
    kMetricPatternsRetractedTotal,
    kMetricWritesShedTotal,
    kMetricWriteBatches,
    kMetricQueriesShedTotal,
    kMetricWalRecordsTotal,
    kMetricWalFsyncsTotal,
    kMetricWalRecoveredRecords,
    kMetricWalTornTailTotal,
    kMetricCheckpointsTotal,
    kMetricWritesDedupedTotal,
    kMetricConnectionsOpen,
    kMetricInflight,
    kMetricPendingWrites,
    kMetricRequestLatency,
    kMetricShardLatency,
    kMetricShardErrorsTotal,
    kMetricWriterStates,
    kMetricFleetStatsTotal,
    kMetricProfileMergesTotal,
    kMetricEnginePatternsMinimized,
    kMetricEngineSubsumptionProbes,
    kMetricEngineDegradedToSummary,
    kMetricEngineFailpointTrips,
    kMetricClientReconnectsTotal,
};

}  // namespace pcdb

#endif  // PCDB_OBS_NAMES_H_
