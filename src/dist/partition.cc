#include "dist/partition.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "sql/parser.h"

namespace pcdb {
namespace {

// Little-endian codec helpers, mirroring server/protocol.cc's (which
// are deliberately file-local there).
void AppendU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void AppendLengthPrefixed(std::string* out, std::string_view s) {
  AppendU32(out, static_cast<uint32_t>(s.size()));
  out->append(s.data(), s.size());
}

/// Bounds-checked reader over a partition-map payload.
class MapReader {
 public:
  explicit MapReader(std::string_view data) : data_(data) {}

  Result<uint32_t> ReadU32() {
    if (data_.size() - pos_ < 4) {
      return Status::ParseError("partition map payload truncated");
    }
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  Result<std::string> ReadLengthPrefixed() {
    PCDB_ASSIGN_OR_RETURN(uint32_t len, ReadU32());
    if (data_.size() - pos_ < len) {
      return Status::ParseError("partition map payload truncated");
    }
    std::string s(data_.substr(pos_, len));
    pos_ += len;
    return s;
  }

  bool exhausted() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

/// Deterministic shard affinity for a SQL text: FNV-1a over the bytes,
/// folded like ShardForSignature so the low bits spread.
uint32_t ShardForSql(const std::string& sql, uint32_t num_shards) {
  if (num_shards <= 1) return 0;
  uint64_t h = kFnvOffsetBasis;
  for (char c : sql) h = FnvMix(h, static_cast<uint8_t>(c));
  return static_cast<uint32_t>((h ^ (h >> 32)) % num_shards);
}

}  // namespace

std::string EncodePartitionMap(const PartitionMap& map) {
  std::string out;
  AppendU32(&out, map.num_shards);
  AppendU32(&out, static_cast<uint32_t>(map.hashed.size()));
  // std::set iterates in sorted order, which is the canonical order the
  // decoder enforces.
  for (const std::string& table : map.hashed) {
    AppendLengthPrefixed(&out, table);
  }
  return out;
}

Result<PartitionMap> DecodePartitionMap(std::string_view payload) {
  MapReader reader(payload);
  PartitionMap map;
  PCDB_ASSIGN_OR_RETURN(map.num_shards, reader.ReadU32());
  if (map.num_shards == 0) {
    return Status::ParseError("partition map reports zero shards");
  }
  PCDB_ASSIGN_OR_RETURN(uint32_t count, reader.ReadU32());
  std::string prev;
  for (uint32_t i = 0; i < count; ++i) {
    PCDB_ASSIGN_OR_RETURN(std::string table, reader.ReadLengthPrefixed());
    if (table.empty()) {
      return Status::ParseError("partition map holds an empty table name");
    }
    // Strictly increasing order makes the encoding canonical: every
    // accepted payload re-encodes to the same bytes (a property
    // fuzz_shard_route asserts), and duplicates cannot hide.
    if (i > 0 && table <= prev) {
      return Status::ParseError(
          "partition map table names out of canonical order");
    }
    prev = table;
    map.hashed.insert(std::move(table));
  }
  if (!reader.exhausted()) {
    return Status::ParseError("partition map payload has trailing bytes");
  }
  return map;
}

Result<std::set<std::string>> ParseHashedSpec(const std::string& spec) {
  std::set<std::string> tables;
  if (spec.empty()) return tables;
  size_t start = 0;
  while (start <= spec.size()) {
    const size_t comma = spec.find(',', start);
    const size_t end = comma == std::string::npos ? spec.size() : comma;
    std::string name = spec.substr(start, end - start);
    if (name.empty()) {
      return Status::InvalidArgument("empty table name in hashed spec '" +
                                     spec + "'");
    }
    if (!tables.insert(std::move(name)).second) {
      return Status::InvalidArgument("duplicate table in hashed spec '" +
                                     spec + "'");
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return tables;
}

Status PartitionDatabase(AnnotatedDatabase* adb, const PartitionMap& map,
                         uint32_t shard_id) {
  if (shard_id >= map.num_shards) {
    return Status::InvalidArgument(
        "shard id " + std::to_string(shard_id) + " out of range for " +
        std::to_string(map.num_shards) + " shards");
  }
  for (const std::string& name : map.hashed) {
    if (!adb->database().HasTable(name)) {
      return Status::InvalidArgument("hashed table '" + name +
                                     "' does not exist");
    }
    PCDB_ASSIGN_OR_RETURN(Table * table,
                          adb->database().GetMutableTable(name));
    Table owned(table->schema());
    for (const Tuple& row : table->rows()) {
      if (RouteRow(map, row) == shard_id) owned.AppendUnchecked(row);
    }
    *table = std::move(owned);
    PatternSet kept;
    for (const Pattern& p : adb->patterns(name)) {
      if (RoutePattern(map, p) == shard_id) kept.Add(p);
    }
    adb->SetPatterns(name, std::move(kept));
  }
  return Status::OK();
}

QueryRouting AnalyzeQuery(const PartitionMap& map, const std::string& sql,
                          bool instance_aware, bool zombies) {
  QueryRouting routing;
  routing.shard = ShardForSql(sql, map.num_shards);
  if (map.num_shards <= 1 || map.hashed.empty()) {
    // One shard, or everything replicated: any shard has the full
    // database and answers exactly.
    routing.route = QueryRoute::kSingleShard;
    return routing;
  }
  Result<std::vector<SelectStatement>> parsed = ParseQuery(sql);
  if (!parsed.ok()) {
    // Unparseable SQL is still forwarded (to one shard): the client
    // gets the identical parse error a non-sharded server would send.
    routing.route = QueryRoute::kSingleShard;
    return routing;
  }
  size_t hashed_occurrences = 0;
  size_t max_in_one_block = 0;
  bool any_aggregate = false;
  bool any_limit = false;
  bool any_order_by = false;
  for (const SelectStatement& stmt : *parsed) {
    size_t in_block = 0;
    for (const TableRef& ref : stmt.from) {
      if (map.IsHashed(ref.table)) ++in_block;
    }
    hashed_occurrences += in_block;
    max_in_one_block = std::max(max_in_one_block, in_block);
    for (const SelectItem& item : stmt.items) {
      any_aggregate = any_aggregate || item.is_aggregate || item.count_star;
    }
    any_aggregate = any_aggregate || !stmt.group_by.empty();
    any_limit = any_limit || stmt.has_limit;
    any_order_by = any_order_by || !stmt.order_by.empty();
  }
  if (hashed_occurrences == 0) {
    routing.route = QueryRoute::kSingleShard;
    return routing;
  }
  if (instance_aware || zombies) {
    // Pattern promotion and zombie generation consult data tuples, so
    // per-shard results over a partitioned table are not exact slices
    // of the single-process answer; refusing beats answering wrongly.
    routing.route = QueryRoute::kUnsupported;
    routing.reason =
        "instance-aware/zombie evaluation over a hash-partitioned table "
        "is not supported in distributed mode";
    return routing;
  }
  if (max_in_one_block > 1) {
    // Joining two hashed occurrences (including self-joins) needs row
    // co-location the hash placement does not provide: a result row may
    // pair tuples living on different shards, so no shard computes it.
    routing.route = QueryRoute::kUnsupported;
    routing.reason =
        "query joins " + std::to_string(max_in_one_block) +
        " occurrences of hash-partitioned tables; distributed evaluation "
        "supports at most one";
    return routing;
  }
  if (parsed->size() > 1) {
    // UNION ALL over a hashed table does not broadcast, for two
    // reasons. A replicated-only block would contribute its full answer
    // once per shard to the merged bag union (duplicated rows). And
    // even with every block hashed, the completeness annotation of a
    // union is the pairwise meet (unifier) of the two blocks'
    // statement sets (ũ, algebra.cc): with pattern statements
    // partitioned by signature no shard holds both blocks' statements,
    // so every per-shard meet is empty and the coordinator's
    // union-of-statements merge cannot recover the lost annotations.
    routing.route = QueryRoute::kUnsupported;
    routing.reason =
        "UNION over a hash-partitioned table is not supported in "
        "distributed mode: the union's completeness annotation is a "
        "cross-block meet that needs both blocks' pattern statements "
        "on one shard";
    return routing;
  }
  // The remaining shapes do not distribute over a union of row slices:
  // merging per-shard results would serve partial aggregates as final
  // (COUNT over 3 shards = 3 partial counts), up to N*k rows under
  // LIMIT k, and the coordinator's canonical sort destroys ORDER BY.
  // Refuse loudly instead of answering wrongly (docs/DISTRIBUTED.md §3).
  if (any_aggregate) {
    routing.route = QueryRoute::kUnsupported;
    routing.reason =
        "aggregates/GROUP BY over a hash-partitioned table do not "
        "distribute over the shard union; distributed evaluation would "
        "return per-shard partial results";
    return routing;
  }
  if (any_limit) {
    routing.route = QueryRoute::kUnsupported;
    routing.reason =
        "LIMIT over a hash-partitioned table does not distribute over "
        "the shard union; distributed evaluation would return up to "
        "one limit's worth of rows per shard";
    return routing;
  }
  if (any_order_by) {
    routing.route = QueryRoute::kUnsupported;
    routing.reason =
        "ORDER BY over a hash-partitioned table is not preserved by the "
        "coordinator's canonical merge order";
    return routing;
  }
  routing.route = QueryRoute::kBroadcast;
  return routing;
}

}  // namespace pcdb
