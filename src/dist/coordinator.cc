#include "dist/coordinator.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/json.h"
#include "common/log.h"
#include "common/timer.h"
#include "obs/names.h"
#include "obs/trace.h"
#include "pattern/minimize.h"

namespace pcdb {

namespace {

/// Transport-class failures a retry against a healthy fleet could fix:
/// the shard is down, unreachable, hung, or its connection died
/// mid-request. Evaluation verdicts (parse errors, kCancelled, budget
/// trips) are NOT transport failures and pass through untouched.
bool IsShardTransportFailure(const Status& status) {
  switch (status.code()) {
    case StatusCode::kUnavailable:
    case StatusCode::kTimeout:
      return true;
    case StatusCode::kInternal:
      return status.message().rfind("recv failed:", 0) == 0 ||
             status.message().rfind("send failed:", 0) == 0 ||
             status.message().rfind("connect", 0) == 0;
    default:
      return false;
  }
}

}  // namespace

Result<std::vector<ShardEndpoint>> ParseEndpoints(const std::string& spec) {
  std::vector<ShardEndpoint> endpoints;
  if (spec.empty()) {
    return Status::InvalidArgument("empty shard endpoint list");
  }
  size_t start = 0;
  while (start <= spec.size()) {
    const size_t comma = spec.find(',', start);
    const size_t end = comma == std::string::npos ? spec.size() : comma;
    const std::string entry = spec.substr(start, end - start);
    const size_t colon = entry.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 == entry.size()) {
      return Status::InvalidArgument("endpoint '" + entry +
                                     "' is not host:port");
    }
    ShardEndpoint ep;
    ep.host = entry.substr(0, colon);
    uint64_t port = 0;
    for (size_t i = colon + 1; i < entry.size(); ++i) {
      const char c = entry[i];
      if (c < '0' || c > '9') {
        return Status::InvalidArgument("endpoint '" + entry +
                                       "' has a non-numeric port");
      }
      port = port * 10 + static_cast<uint64_t>(c - '0');
      if (port > 65535) {
        return Status::InvalidArgument("endpoint '" + entry +
                                       "' port out of range");
      }
    }
    if (port == 0) {
      return Status::InvalidArgument("endpoint '" + entry + "' port is 0");
    }
    ep.port = static_cast<uint16_t>(port);
    endpoints.push_back(std::move(ep));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return endpoints;
}

struct Coordinator::Handler {
  Socket sock;
  FrameReader reader;
  /// One blocking Client per shard, dialled on first use (index ==
  /// shard id). Client is not thread-safe, but during a broadcast each
  /// scatter task touches only its own shard's entry.
  std::vector<Client> clients;
  /// Whether shard i's SHARD_INFO was verified against the partition
  /// map (once per connection, on first dial). uint8_t, not bool:
  /// concurrent scatter tasks write distinct indices, and vector<bool>
  /// would pack them into one racy word.
  std::vector<uint8_t> verified;
  /// Runs the per-shard legs of one broadcast concurrently; created on
  /// the first broadcast, reused for the connection's lifetime.
  std::unique_ptr<ThreadPool> scatter;
};

Coordinator::Coordinator(CoordinatorOptions options)
    : options_(std::move(options)) {
  partition_.num_shards =
      static_cast<uint32_t>(std::max<size_t>(1, options_.shards.size()));
  partition_.hashed = options_.hashed_tables;
  c_requests_ = metrics_.GetCounter(kMetricRequestsTotal);
  c_errors_ = metrics_.GetCounter(kMetricErrorsTotal);
  c_shard_errors_ = metrics_.GetCounter(kMetricShardErrorsTotal);
  c_writes_deduped_ = metrics_.GetCounter(kMetricWritesDedupedTotal);
  c_protocol_errors_ = metrics_.GetCounter(kMetricProtocolErrors);
  c_connections_ = metrics_.GetCounter(kMetricConnectionsTotal);
  c_fleet_stats_ = metrics_.GetCounter(kMetricFleetStatsTotal);
  c_profile_merges_ = metrics_.GetCounter(kMetricProfileMergesTotal);
  h_latency_ = metrics_.GetHistogram(kMetricRequestLatency);
  g_writer_states_ = metrics_.GetGauge(kMetricWriterStates);
  // Per-shard latency histograms, named from the registry prefix so
  // dashboards can discover them without a schema change per fleet
  // size.
  for (size_t i = 0; i < options_.shards.size(); ++i) {
    h_shard_latency_.push_back(metrics_.GetHistogram(
        std::string(kMetricShardLatency) + "." + std::to_string(i)));
  }
}

Coordinator::~Coordinator() { Stop(); }

Status Coordinator::Start() {
  {
    MutexLock lock(&state_mu_);
    if (started_) return Status::InvalidArgument("coordinator already started");
  }
  if (options_.shards.empty()) {
    return Status::InvalidArgument("coordinator needs at least one shard");
  }
  PCDB_ASSIGN_OR_RETURN(listener_,
                        Listener::BindAndListen(options_.host, options_.port));
  stop_requested_.store(false, std::memory_order_release);
  accept_pool_ = std::make_unique<ThreadPool>(2);
  conn_pool_ = std::make_unique<ThreadPool>(
      std::max<size_t>(2, options_.worker_threads));
  {
    MutexLock lock(&state_mu_);
    started_ = true;
  }
  accept_pool_->Submit([this] { RunAcceptLoop(); });
  return Status::OK();
}

void Coordinator::Stop() {
  {
    MutexLock lock(&state_mu_);
    if (!started_) return;
  }
  stop_requested_.store(true, std::memory_order_release);
  if (accept_pool_ != nullptr) {
    accept_pool_->Wait();
    Status accept_status = accept_pool_->ConsumeStatus();
    if (!accept_status.ok()) c_errors_->Increment();
  }
  // Release the front-end port before draining the workers, so a
  // successor can bind while slow connections finish.
  listener_ = Listener();
  if (conn_pool_ != nullptr) {
    conn_pool_->Wait();
    Status conn_status = conn_pool_->ConsumeStatus();
    if (!conn_status.ok()) c_errors_->Increment();
  }
  MutexLock lock(&state_mu_);
  started_ = false;
}

void Coordinator::RunAcceptLoop() {
  size_t consecutive_poll_errors = 0;
  while (!stop_requested_.load(std::memory_order_acquire)) {
    std::vector<PollItem> items;
    items.push_back(PollItem{listener_.fd(), true, false});
    Result<int> polled = Poll(&items, options_.poll_millis);
    if (!polled.ok()) {
      // Poll returns immediately on failure; without a cap a persistent
      // EBADF would spin this worker. Give up loudly after a streak.
      if (++consecutive_poll_errors >= 64) {
        LogError("coordinator accept loop stopping: persistent poll failure")
            .Str("status", polled.status().ToString());
        return;
      }
      continue;
    }
    consecutive_poll_errors = 0;
    if (!items[0].readable) continue;
    for (;;) {
      Result<Listener::AcceptResult> accepted = listener_.Accept();
      if (!accepted.ok() || accepted->would_block) break;
      // std::function needs copyable captures; Socket is move-only.
      auto sock = std::make_shared<Socket>(std::move(accepted->socket));
      conn_pool_->Submit([this, sock]() mutable {
        // A connection fault must not trip the pool's first-error
        // latch: that would stop serving every other connection.
        try {
          RunConnection(std::move(*sock));
        } catch (...) {
          c_errors_->Increment();
        }
      });
    }
  }
}

void Coordinator::RunConnection(Socket sock) {
  c_connections_->Increment();
  Handler handler;
  handler.sock = std::move(sock);
  // Bounded blocking reads, so the worker notices Stop() between
  // frames.
  (void)handler.sock.SetRecvTimeoutMillis(options_.client_recv_timeout_millis);
  handler.clients.resize(options_.shards.size());
  handler.verified.assign(options_.shards.size(), 0);
  char buf[16384];
  bool closing = false;
  while (!stop_requested_.load(std::memory_order_acquire)) {
    Result<IoResult> received = handler.sock.Recv(buf, sizeof(buf));
    if (!received.ok()) {
      // A timed-out read is just the stop-flag heartbeat; anything else
      // is a dead connection.
      if (received.status().code() == StatusCode::kTimeout) continue;
      return;
    }
    if (received->eof) {
      closing = true;
    } else {
      handler.reader.Feed(buf, received->bytes);
    }
    for (;;) {
      Frame frame;
      Result<bool> decoded = handler.reader.Next(&frame);
      if (!decoded.ok()) {
        // Malformed framing: report once and close, like pcdbd.
        c_protocol_errors_->Increment();
        std::string out;
        AppendFrame(&out, FrameType::kError, 0,
                    EncodeErrorPayload(decoded.status()));
        (void)handler.sock.SendAll(out.data(), out.size());
        return;
      }
      if (!*decoded) break;
      if (!HandleFrame(&handler, frame)) return;
    }
    if (closing) return;
  }
}

bool Coordinator::HandleFrame(Handler* handler, const Frame& frame) {
  c_requests_->Increment();
  WallTimer timer;
  switch (frame.type) {
    case FrameType::kPing: {
      std::string out;
      AppendFrame(&out, FrameType::kPong, frame.request_id, "");
      return handler->sock.SendAll(out.data(), out.size()).ok();
    }
    case FrameType::kStats:
      HandleStats(handler, frame.request_id);
      return true;
    case FrameType::kCancel:
      // The coordinator answers queries synchronously per connection,
      // so by the time a CANCEL frame is read the target query has
      // already been answered (or is on a shard, where the shard's own
      // deadline governs it). Unknown ids are a silent no-op per
      // protocol, so this is too.
      return true;
    case FrameType::kQuery: {
      Result<QueryRequest> request = DecodeQueryPayload(frame.payload);
      if (!request.ok()) {
        c_protocol_errors_->Increment();
        SendError(handler, frame.request_id, request.status());
        return true;
      }
      HandleQuery(handler, frame.request_id, *request);
      h_latency_->RecordMillis(timer.ElapsedMillis());
      return true;
    }
    case FrameType::kIngest: {
      Result<IngestRequest> request = DecodeIngestPayload(frame.payload);
      if (!request.ok()) {
        c_protocol_errors_->Increment();
        SendError(handler, frame.request_id, request.status());
        return true;
      }
      HandleWrite(handler, frame.request_id, /*is_punctuate=*/false,
                  std::move(*request), PunctuateRequest{});
      return true;
    }
    case FrameType::kPunctuate: {
      Result<PunctuateRequest> request = DecodePunctuatePayload(frame.payload);
      if (!request.ok()) {
        c_protocol_errors_->Increment();
        SendError(handler, frame.request_id, request.status());
        return true;
      }
      HandleWrite(handler, frame.request_id, /*is_punctuate=*/true,
                  IngestRequest{}, std::move(*request));
      return true;
    }
    case FrameType::kCheckpoint:
      HandleCheckpoint(handler, frame.request_id);
      return true;
    case FrameType::kShardInfo:
      HandleShardInfo(handler, frame.request_id);
      return true;
    default:
      c_protocol_errors_->Increment();
      SendError(handler, frame.request_id,
                Status::InvalidArgument("unexpected frame type from client"));
      return false;
  }
}

Result<Client*> Coordinator::ShardClient(Handler* handler, size_t i) {
  Client& client = handler->clients[i];
  if (!client.connected()) {
    ClientOptions copts;
    copts.recv_timeout_millis = options_.shard_recv_timeout_millis;
    PCDB_ASSIGN_OR_RETURN(
        client, Client::Connect(options_.shards[i].host,
                                options_.shards[i].port, copts));
    handler->verified[i] = 0;
  }
  if (!handler->verified[i]) {
    // First contact on this connection: the shard must agree it is
    // shard i of num_shards. A mis-wired fleet (wrong --shard-id, a
    // pcdbd from another deployment) would otherwise produce answers
    // that are silently missing or double-counting rows. The span's
    // rtt_micros arg doubles as trace_merge.py's clock-skew bound for
    // this shard's dump.
    PCDB_TRACE_SPAN(handshake_span, kSpanDistHandshake);
    handshake_span.Arg("shard", static_cast<uint64_t>(i));
    WallTimer rtt;
    PCDB_ASSIGN_OR_RETURN(ShardInfo info, client.GetShardInfo());
    handshake_span.Arg("rtt_micros",
                       static_cast<uint64_t>(rtt.ElapsedMicros()));
    if (info.shard_id != static_cast<uint32_t>(i) ||
        info.num_shards != partition_.num_shards) {
      return Status::Internal(
          "shard endpoint " + std::to_string(i) + " reports shard " +
          std::to_string(info.shard_id) + " of " +
          std::to_string(info.num_shards) + "; expected shard " +
          std::to_string(i) + " of " +
          std::to_string(partition_.num_shards));
    }
    handler->verified[i] = 1;
  }
  return &client;
}

Status Coordinator::ShardStatus(size_t shard, const Status& status) {
  if (IsShardTransportFailure(status)) {
    return Status::Unavailable("shard " + std::to_string(shard) +
                               " unavailable: " + status.message());
  }
  return status;
}

void Coordinator::SendError(Handler* handler, uint64_t request_id,
                            const Status& status) {
  c_errors_->Increment();
  std::string out;
  AppendFrame(&out, FrameType::kError, request_id,
              EncodeErrorPayload(status));
  (void)handler->sock.SendAll(out.data(), out.size());
}

void Coordinator::SendAnswer(Handler* handler, uint64_t request_id,
                             const AnnotatedTable& answer,
                             const AnswerDone& done,
                             const std::string& profile_json) {
  EncodedAnswer encoded = EncodeAnswer(answer, options_.rows_per_batch);
  Status fits = CheckEncodedFrameSizes(encoded);
  if (!fits.ok()) {
    SendError(handler, request_id, fits);
    return;
  }
  std::string out;
  AppendFrame(&out, FrameType::kAnswerSchema, request_id, encoded.schema);
  for (const std::string& rows : encoded.row_batches) {
    AppendFrame(&out, FrameType::kAnswerRows, request_id, rows);
  }
  AppendFrame(&out, FrameType::kAnswerPatterns, request_id, encoded.patterns);
  if (!profile_json.empty()) {
    AppendFrame(&out, FrameType::kAnswerProfile, request_id, profile_json);
  }
  AppendFrame(&out, FrameType::kAnswerDone, request_id,
              EncodeDonePayload(done));
  (void)handler->sock.SendAll(out.data(), out.size());
}

void Coordinator::HandleQuery(Handler* handler, uint64_t request_id,
                              const QueryRequest& request) {
  PCDB_TRACE_SPAN(span, kSpanDistQuery);
  const QueryRouting routing = AnalyzeQuery(
      partition_, request.sql,
      (request.flags & QueryRequest::kFlagInstanceAware) != 0,
      (request.flags & QueryRequest::kFlagZombies) != 0);
  if (routing.route == QueryRoute::kUnsupported) {
    SendError(handler, request_id, Status::Unimplemented(routing.reason));
    return;
  }
  ClientQueryOptions qopts;
  qopts.deadline_millis = request.deadline_millis;
  qopts.max_rows = request.max_rows;
  qopts.max_patterns = request.max_patterns;
  qopts.max_memory_bytes = request.max_memory_bytes;
  qopts.instance_aware =
      (request.flags & QueryRequest::kFlagInstanceAware) != 0;
  qopts.zombies = (request.flags & QueryRequest::kFlagZombies) != 0;
  qopts.profile = (request.flags & QueryRequest::kFlagProfile) != 0;
  qopts.tenant = request.tenant;

  if (routing.route == QueryRoute::kSingleShard) {
    // Forward verbatim: one shard has everything the query touches, so
    // its answer (and its errors, including parse errors) pass through
    // exactly as a non-sharded pcdbd would produce them.
    Result<Client*> client = ShardClient(handler, routing.shard);
    if (!client.ok()) {
      c_shard_errors_->Increment();
      SendError(handler, request_id,
                ShardStatus(routing.shard, client.status()));
      return;
    }
    WallTimer shard_timer;
    Result<ClientAnswer> answer = (*client)->Query(request.sql, qopts);
    h_shard_latency_[routing.shard]->RecordMillis(shard_timer.ElapsedMillis());
    if (!answer.ok()) {
      c_shard_errors_->Increment();
      SendError(handler, request_id,
                ShardStatus(routing.shard, answer.status()));
      return;
    }
    SendAnswer(handler, request_id, answer->table, answer->done,
               answer->profile);
    return;
  }

  // Broadcast: every shard evaluates (and minimizes) its slice; the
  // merge below is exact because the pattern algebra is schema-level
  // and every operator distributes over a union on the single
  // partitioned side (docs/DISTRIBUTED.md §4).
  const size_t n = options_.shards.size();
  std::vector<Status> statuses(n, Status::OK());
  std::vector<ClientAnswer> answers(n);
  std::vector<double> shard_millis(n, 0.0);
  {
    PCDB_TRACE_SPAN(scatter_span, kSpanDistScatter);
    if (handler->scatter == nullptr) {
      handler->scatter = std::make_unique<ThreadPool>(n);
    }
    for (size_t i = 0; i < n; ++i) {
      handler->scatter->Submit([this, handler, i, &request, &qopts,
                                &statuses, &answers, &shard_millis] {
        WallTimer shard_timer;
        Result<Client*> client = ShardClient(handler, i);
        if (!client.ok()) {
          statuses[i] = ShardStatus(i, client.status());
          return;
        }
        Result<ClientAnswer> answer = (*client)->Query(request.sql, qopts);
        shard_millis[i] = shard_timer.ElapsedMillis();
        if (!answer.ok()) {
          statuses[i] = ShardStatus(i, answer.status());
        } else {
          answers[i] = std::move(*answer);
        }
      });
    }
    handler->scatter->Wait();
    Status pool_status = handler->scatter->ConsumeStatus();
    if (!pool_status.ok()) {
      SendError(handler, request_id,
                Status::Internal("scatter worker fault: " +
                                 pool_status.message()));
      return;
    }
  }
  for (size_t i = 0; i < n; ++i) {
    if (shard_millis[i] > 0) {
      h_shard_latency_[i]->RecordMillis(shard_millis[i]);
    }
  }
  // Any missing slice makes the union unsound to serve: a partial
  // answer could claim completeness for data the down shard holds.
  // Degrade loudly instead (docs/DISTRIBUTED.md §6).
  for (size_t i = 0; i < n; ++i) {
    if (!statuses[i].ok()) {
      c_shard_errors_->Increment();
      SendError(handler, request_id, statuses[i]);
      return;
    }
  }

  PCDB_TRACE_SPAN(merge_span, kSpanDistMerge);
  WallTimer merge_timer;
  AnnotatedTable merged;
  merged.data = Table(answers[0].table.data.schema());
  size_t total_rows = 0;
  for (const ClientAnswer& answer : answers) {
    total_rows += answer.table.data.num_rows();
  }
  merged.data.Reserve(total_rows);
  PatternSet unioned;
  AnswerDone done;
  done.cache_hit = true;
  for (ClientAnswer& answer : answers) {
    for (const Tuple& row : answer.table.data.rows()) {
      merged.data.AppendUnchecked(row);
    }
    for (const Pattern& p : answer.table.patterns) {
      unioned.Add(p);
    }
    merged.degraded = merged.degraded || answer.table.degraded;
    done.cache_hit = done.cache_hit && answer.done.cache_hit;
    done.data_millis += answer.done.data_millis;
    done.pattern_millis += answer.done.pattern_millis;
  }
  // Canonical order: the merged answer must not depend on shard count
  // or arrival order (the N-vs-1 differential contract).
  merged.data.Sort();
  // Per-shard sets are minimal within their slice but may subsume each
  // other across slices; minimizing the union restores the global
  // minimal set (subsumption removal is confluent, so minimizing
  // already-minimized parts loses nothing).
  merged.patterns = Minimize(unioned);
  merged.patterns.Sort();
  done.degraded = merged.degraded;

  std::string profile_json;
  if (qopts.profile) {
    // Fleet profile: the per-shard EXPLAIN ANALYZE payloads verbatim
    // (null for a shard that sent none) under "per_shard", plus the
    // coordinator's own merge cost. fleet_micros_total bounds the whole
    // fan-out: every shard's wall time plus the merge, so the sum of
    // any per-shard operator_micros can never exceed it.
    const double merge_millis = merge_timer.ElapsedMillis();
    double fleet_micros = merge_millis * 1000.0;
    std::string shard_list;
    std::string per_shard;
    for (size_t i = 0; i < n; ++i) {
      if (i > 0) {
        shard_list += ",";
        per_shard += ",";
      }
      shard_list += std::to_string(shard_millis[i]);
      per_shard +=
          answers[i].profile.empty() ? "null" : answers[i].profile;
      fleet_micros += shard_millis[i] * 1000.0;
    }
    profile_json = "{\"distributed\":true,\"route\":\"broadcast\",\"shards\":" +
                   std::to_string(n) +
                   ",\"merge_millis\":" + std::to_string(merge_millis) +
                   ",\"shard_millis\":[" + shard_list +
                   "],\"fleet_micros_total\":" +
                   std::to_string(static_cast<uint64_t>(fleet_micros)) +
                   ",\"per_shard\":[" + per_shard + "]}";
    c_profile_merges_->Increment();
  }
  SendAnswer(handler, request_id, merged, done, profile_json);
}

void Coordinator::HandleWrite(Handler* handler, uint64_t request_id,
                              bool is_punctuate, IngestRequest ingest,
                              PunctuateRequest punctuate) {
  PCDB_TRACE_SPAN(span, kSpanDistWrite);
  const std::string& tenant = is_punctuate ? punctuate.tenant : ingest.tenant;
  const std::string& table = is_punctuate ? punctuate.table : ingest.table;
  const uint64_t writer_id =
      is_punctuate ? punctuate.writer_id : ingest.writer_id;
  const uint64_t seq = is_punctuate ? punctuate.seq : ingest.seq;
  const bool sequenced = writer_id != 0 && seq != 0;
  if (sequenced) {
    // Front-side dedup, mirroring Server::IsDuplicateWrite: a client
    // retrying against the coordinator must not re-broadcast a write
    // the fleet fully applied.
    MutexLock lock(&writers_mu_);
    auto tenant_it = writers_.find(tenant);
    if (tenant_it != writers_.end()) {
      auto writer_it = tenant_it->second.find(writer_id);
      if (writer_it != tenant_it->second.end() &&
          seq <= writer_it->second.last_seq) {
        c_writes_deduped_->Increment();
        writer_it->second.last_touch = ++writer_tick_;
        IngestResult ack;
        if (seq == writer_it->second.last_seq) {
          ack = writer_it->second.ack;
        }
        ack.seq = seq;
        ack.duplicate = true;
        std::string out;
        AppendFrame(&out, FrameType::kIngestResult, request_id,
                    EncodeIngestResultPayload(ack));
        (void)handler->sock.SendAll(out.data(), out.size());
        return;
      }
    }
  }

  const bool hashed = partition_.IsHashed(table);
  if (hashed && !is_punctuate && partition_.num_shards > 1 &&
      ingest.policy == IngestRequest::kPolicyRejectRecord) {
    // Under reject policy the row's hash owner decides accept/reject
    // from its local patterns only, while the promise the row violates
    // may live on a different signature-owner shard — the fleet could
    // store the row AND keep the promise it violates, a completeness
    // verdict no single-process server would produce. Refuse loudly
    // (docs/DISTRIBUTED.md §5); retract policy stays exact because
    // every shard withdraws the promises it owns.
    SendError(handler, request_id,
              Status::Unimplemented(
                  "ingest into hash-partitioned table '" + table +
                  "' under the reject policy is not supported in "
                  "distributed mode (the violated promise may live on a "
                  "different shard than the row); use the retract "
                  "policy"));
    return;
  }
  ClientWriteOptions wopts;
  wopts.tenant = tenant;
  if (!is_punctuate) wopts.policy = ingest.policy;
  if (sequenced) {
    // Pin the front identity onto every shard leg: a re-broadcast
    // after a partial failure carries the same (writer_id, seq) and
    // already-applied shards dedup instead of double-applying.
    wopts.writer_id = writer_id;
    wopts.seq = seq;
  }

  // Every write broadcasts. Replicated tables apply identically
  // everywhere; hashed tables rely on shard-side filtering — the owner
  // stores each row while the shards owning the violated statement
  // signatures retract, which is what keeps cross-shard retraction
  // exact (docs/DISTRIBUTED.md §5).
  const size_t n = options_.shards.size();
  IngestResult total;
  for (size_t i = 0; i < n; ++i) {
    Result<Client*> client = ShardClient(handler, i);
    if (!client.ok()) {
      c_shard_errors_->Increment();
      SendError(handler, request_id, ShardStatus(i, client.status()));
      return;
    }
    WallTimer shard_timer;
    Result<IngestResult> ack =
        is_punctuate
            ? (*client)->Punctuate(table, punctuate.patterns, wopts)
            : (*client)->Ingest(table, ingest.rows, wopts);
    h_shard_latency_[i]->RecordMillis(shard_timer.ElapsedMillis());
    if (!ack.ok()) {
      // Partial fan-outs are reported, never hidden: the client sees an
      // error and retries with the same sequence; shard-side dedup
      // makes the re-broadcast converge.
      c_shard_errors_->Increment();
      SendError(handler, request_id, ShardStatus(i, ack.status()));
      return;
    }
    if (hashed) {
      // Each row is stored by one owner and each statement lives on one
      // shard, so summing the per-shard deltas gives exact fleet totals
      // — except `violations`, which counts per-shard events: one row
      // violating promises on both its hash owner and a signature-owner
      // shard counts once on each (docs/DISTRIBUTED.md §5).
      total.rows_ingested += ack->rows_ingested;
      total.rows_rejected += ack->rows_rejected;
      total.punctuations += ack->punctuations;
      total.patterns_retracted += ack->patterns_retracted;
      total.violations += ack->violations;
    } else if (i == 0) {
      // Replicated: every shard applied the identical op; shard 0's
      // counters are the answer.
      total = *ack;
    }
  }
  total.seq = seq;
  total.duplicate = false;
  if (sequenced) {
    MutexLock lock(&writers_mu_);
    auto [writer_it, inserted] = writers_[tenant].try_emplace(writer_id);
    if (inserted) ++writer_count_;
    WriterState& state = writer_it->second;
    state.last_touch = ++writer_tick_;
    if (seq > state.last_seq) {
      state.last_seq = seq;
      state.ack = total;
    }
    if (inserted) EvictStaleWritersLocked();
    g_writer_states_->Set(static_cast<int64_t>(writer_count_));
  }
  std::string out;
  AppendFrame(&out, FrameType::kIngestResult, request_id,
              EncodeIngestResultPayload(total));
  (void)handler->sock.SendAll(out.data(), out.size());
}

void Coordinator::EvictStaleWritersLocked() {
  // Linear scan per eviction. Evictions only happen when a NEW writer
  // identity arrives with the map at capacity; a steady fleet of
  // long-lived writers never pays this, and the cap bounds the scan.
  while (writer_count_ > options_.max_writer_states && writer_count_ > 0) {
    auto victim_tenant = writers_.end();
    std::map<uint64_t, WriterState>::iterator victim;
    uint64_t oldest = std::numeric_limits<uint64_t>::max();
    for (auto t = writers_.begin(); t != writers_.end(); ++t) {
      for (auto w = t->second.begin(); w != t->second.end(); ++w) {
        if (w->second.last_touch < oldest) {
          oldest = w->second.last_touch;
          victim_tenant = t;
          victim = w;
        }
      }
    }
    if (victim_tenant == writers_.end()) break;
    victim_tenant->second.erase(victim);
    if (victim_tenant->second.empty()) writers_.erase(victim_tenant);
    --writer_count_;
  }
}

namespace {

/// Folds one shard's MetricsRegistry::ToJson snapshot into `fleet`:
/// counters and gauges sum by name; histograms merge their raw
/// power-of-two buckets plus sample sums (Histogram::MergeFrom), so
/// the fleet registry re-derives exact merged percentiles instead of
/// averaging per-shard quantiles. Unknown keys and missing sections
/// are tolerated (older shards); malformed values are an error.
Status MergeShardStats(const JsonValue& snapshot, MetricsRegistry* fleet) {
  const JsonValue* counters = snapshot.Find("counters");
  if (counters != nullptr && counters->is_object()) {
    for (const auto& [name, value] : counters->members()) {
      PCDB_ASSIGN_OR_RETURN(uint64_t v, value.AsUint64());
      fleet->GetCounter(name)->Increment(v);
    }
  }
  const JsonValue* gauges = snapshot.Find("gauges");
  if (gauges != nullptr && gauges->is_object()) {
    for (const auto& [name, value] : gauges->members()) {
      PCDB_ASSIGN_OR_RETURN(int64_t v, value.AsInt64());
      fleet->GetGauge(name)->Add(v);
    }
  }
  const JsonValue* histograms = snapshot.Find("histograms");
  if (histograms != nullptr && histograms->is_object()) {
    for (const auto& [name, value] : histograms->members()) {
      const JsonValue* bucket_list = value.Find("buckets");
      if (bucket_list == nullptr || !bucket_list->is_array()) {
        return Status::ParseError("histogram '" + name +
                                  "' snapshot has no buckets array");
      }
      uint64_t buckets[Histogram::kNumBuckets] = {};
      const size_t n =
          std::min<size_t>(bucket_list->items().size(), Histogram::kNumBuckets);
      for (size_t i = 0; i < n; ++i) {
        PCDB_ASSIGN_OR_RETURN(buckets[i], bucket_list->items()[i].AsUint64());
      }
      uint64_t sum_micros = 0;
      if (const JsonValue* sum = value.Find("sum_micros"); sum != nullptr) {
        PCDB_ASSIGN_OR_RETURN(sum_micros, sum->AsUint64());
      }
      fleet->GetHistogram(name)->MergeFrom(buckets, sum_micros);
    }
  }
  return Status::OK();
}

}  // namespace

void Coordinator::HandleStats(Handler* handler, uint64_t request_id) {
  MetricsRegistry fleet;
  std::vector<std::string> shard_jsons(options_.shards.size());
  for (size_t i = 0; i < options_.shards.size(); ++i) {
    Result<Client*> client = ShardClient(handler, i);
    if (!client.ok()) {
      c_shard_errors_->Increment();
      SendError(handler, request_id, ShardStatus(i, client.status()));
      return;
    }
    Result<std::string> stats = (*client)->Stats();
    if (!stats.ok()) {
      c_shard_errors_->Increment();
      SendError(handler, request_id, ShardStatus(i, stats.status()));
      return;
    }
    Result<JsonValue> parsed = ParseJson(*stats);
    if (!parsed.ok()) {
      c_shard_errors_->Increment();
      SendError(handler, request_id, ShardStatus(i, parsed.status()));
      return;
    }
    Status merged = MergeShardStats(*parsed, &fleet);
    if (!merged.ok()) {
      c_shard_errors_->Increment();
      SendError(handler, request_id, ShardStatus(i, merged));
      return;
    }
    shard_jsons[i] = *std::move(stats);
  }
  c_fleet_stats_->Increment();
  // "fleet" leads so a client that only reads the first requests_total
  // sees the fleet-wide number; per-shard snapshots ride along verbatim
  // for drill-down, and the coordinator's own registry (front-end
  // latency, dedup state, this very counter) keeps its own key.
  std::string payload = "{\"fleet\":" + fleet.ToJson() + ",\"shards\":[";
  for (size_t i = 0; i < shard_jsons.size(); ++i) {
    if (i > 0) payload += ",";
    payload += shard_jsons[i];
  }
  payload += "],\"coordinator\":" + metrics_.ToJson() + "}";
  std::string out;
  AppendFrame(&out, FrameType::kStatsResult, request_id, payload);
  (void)handler->sock.SendAll(out.data(), out.size());
}

void Coordinator::HandleShardInfo(Handler* handler, uint64_t request_id) {
  ShardInfo merged;
  merged.shard_id = ShardInfo::kCoordinatorShardId;
  merged.num_shards = partition_.num_shards;
  std::map<std::string, ShardTableInfo> tables;
  for (size_t i = 0; i < options_.shards.size(); ++i) {
    Result<Client*> client = ShardClient(handler, i);
    if (!client.ok()) {
      c_shard_errors_->Increment();
      SendError(handler, request_id, ShardStatus(i, client.status()));
      return;
    }
    Result<ShardInfo> info = (*client)->GetShardInfo();
    if (!info.ok()) {
      c_shard_errors_->Increment();
      SendError(handler, request_id, ShardStatus(i, info.status()));
      return;
    }
    for (ShardTableInfo& table_info : info->tables) {
      ShardTableInfo& entry = tables[table_info.table];
      entry.table = table_info.table;
      entry.hashed = entry.hashed || table_info.hashed;
      // Epoch *sums*: convergence of the fleet is visible as a stable
      // sum (each shard's epoch only ever grows).
      entry.epoch += table_info.epoch;
    }
  }
  merged.tables.reserve(tables.size());
  for (auto& [name, entry] : tables) merged.tables.push_back(entry);
  std::string out;
  AppendFrame(&out, FrameType::kShardInfoResult, request_id,
              EncodeShardInfoPayload(merged));
  (void)handler->sock.SendAll(out.data(), out.size());
}

void Coordinator::HandleCheckpoint(Handler* handler, uint64_t request_id) {
  CheckpointResult merged;
  for (size_t i = 0; i < options_.shards.size(); ++i) {
    Result<Client*> client = ShardClient(handler, i);
    if (!client.ok()) {
      c_shard_errors_->Increment();
      SendError(handler, request_id, ShardStatus(i, client.status()));
      return;
    }
    Result<CheckpointResult> ckpt = (*client)->Checkpoint();
    if (!ckpt.ok()) {
      c_shard_errors_->Increment();
      SendError(handler, request_id, ShardStatus(i, ckpt.status()));
      return;
    }
    // Per-shard LSNs are independent sequences; the max is the most
    // informative single number, the removal count is a true sum.
    merged.lsn = std::max(merged.lsn, ckpt->lsn);
    merged.wal_segments_removed += ckpt->wal_segments_removed;
  }
  std::string out;
  AppendFrame(&out, FrameType::kCheckpointResult, request_id,
              EncodeCheckpointResultPayload(merged));
  (void)handler->sock.SendAll(out.data(), out.size());
}

}  // namespace pcdb
