#ifndef PCDB_DIST_PARTITION_H_
#define PCDB_DIST_PARTITION_H_

#include <cstdint>
#include <set>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"
#include "pattern/annotated.h"
#include "pattern/shard_route.h"

/// \file
/// The coordinator's partition map: which tables are hash-partitioned
/// across the shard fleet and how queries route against it. The actual
/// hash functions live one layer down, in pattern/shard_route.h, so a
/// shard-mode server can apply the identical placement without
/// depending on src/dist (pcdb-analyze's dist-layering rule keeps that
/// direction machine-checked).
///
/// Partitioning model (docs/DISTRIBUTED.md):
///  - A table is either *replicated* (the default: every shard holds
///    every row and every completeness statement, writes broadcast
///    identically) or *hashed*: rows live on ShardForRow(row) % N and
///    completeness statements on ShardForSignature of their constant
///    signature — a partition of the statement set, not of the rows, so
///    a late record's violated promises may live on a different shard
///    than the record itself.
///  - Queries touching no hashed table are answered by any single shard
///    (all shards agree). Single-block SPJ queries with exactly one
///    hashed-table occurrence broadcast: the pattern algebra is
///    schema-level and every such operator distributes over a union on
///    a single partitioned side, so union + merge-minimize of the
///    per-shard answers is the exact single-process answer.
///    Everything that does NOT distribute over the shard union is
///    rejected as kUnimplemented rather than answered wrongly: two or
///    more hashed occurrences in one block (row co-location),
///    aggregates/GROUP BY (partial per-shard results), LIMIT (up to
///    N*k rows), ORDER BY (destroyed by the canonical merge order),
///    and any UNION over a hashed table (the union's completeness
///    annotation is a cross-block meet needing both blocks' pattern
///    statements on one shard; a replicated-only block would also be
///    duplicated once per shard).

namespace pcdb {

/// \brief The fleet's data placement: shard count plus the set of
/// hash-partitioned tables (everything else is replicated).
struct PartitionMap {
  uint32_t num_shards = 1;
  std::set<std::string> hashed;

  bool IsHashed(const std::string& table) const {
    return hashed.count(table) > 0;
  }
};

/// Owning shard of a row of a hashed table.
inline uint32_t RouteRow(const PartitionMap& map, const Tuple& row) {
  return ShardForRow(row, map.num_shards);
}

/// Owning shard of a completeness statement over a hashed table.
inline uint32_t RoutePattern(const PartitionMap& map, const Pattern& p) {
  return ShardForPattern(p, map.num_shards);
}

/// Canonical wire form of a PartitionMap (the coordinator's half of the
/// shard handshake, and the corpus format of fuzz_shard_route):
/// u32 num_shards, u32 table count, then each hashed table name
/// length-prefixed in strictly increasing order. Decode rejects zero
/// shards, out-of-order or duplicate names, and trailing bytes, so
/// every accepted payload re-encodes byte-identically.
std::string EncodePartitionMap(const PartitionMap& map);
[[nodiscard]] Result<PartitionMap> DecodePartitionMap(
    std::string_view payload);

/// Parses a `--hashed T1,T2` style spec (comma-separated table names;
/// empty string = no hashed tables). Rejects empty names and
/// duplicates.
[[nodiscard]] Result<std::set<std::string>> ParseHashedSpec(
    const std::string& spec);

/// Drops everything shard `shard_id` does not own from `adb`: rows of
/// hashed tables whose RouteRow is another shard, and completeness
/// statements whose RoutePattern is another shard. Replicated tables
/// are untouched. This is how pcdbd seeds a shard-local slice of a
/// workload database at startup.
[[nodiscard]] Status PartitionDatabase(AnnotatedDatabase* adb,
                                       const PartitionMap& map,
                                       uint32_t shard_id);

/// How a query executes against the partition map.
enum class QueryRoute {
  /// Forward to one shard (`shard`) verbatim: the query touches no
  /// hashed table (all shards agree), or did not parse (any shard
  /// reports the identical error).
  kSingleShard,
  /// Scatter to every shard, union the rows, merge-minimize the
  /// patterns: the query is a single SPJ block with exactly one
  /// hashed-table occurrence (no UNION, aggregates, GROUP BY, LIMIT or
  /// ORDER BY — none of those distribute over the shard union).
  kBroadcast,
  /// Not answerable soundly under this partition map (`reason` says
  /// why); the coordinator reports kUnimplemented.
  kUnsupported,
};

struct QueryRouting {
  QueryRoute route = QueryRoute::kSingleShard;
  /// Target shard for kSingleShard: a deterministic hash of the SQL
  /// text, so repeated queries hit the same shard's answer cache.
  uint32_t shard = 0;
  /// For kUnsupported: what the coordinator tells the client.
  std::string reason;
};

/// Classifies `sql` against the map. `instance_aware` / `zombies`
/// mirror the QUERY flags: both consult data tuples (promotion and
/// zombie generation), so they only route when no hashed table is
/// involved.
QueryRouting AnalyzeQuery(const PartitionMap& map, const std::string& sql,
                          bool instance_aware, bool zombies);

}  // namespace pcdb

#endif  // PCDB_DIST_PARTITION_H_
