#ifndef PCDB_DIST_COORDINATOR_H_
#define PCDB_DIST_COORDINATOR_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "dist/partition.h"
#include "obs/metrics.h"
#include "server/client.h"
#include "server/net_socket.h"
#include "server/protocol.h"

/// \file
/// The distributed front end: a coordinator that speaks the unchanged
/// pcdbd client protocol on one port and scatter-gathers against a
/// fleet of shard servers behind it, reusing the same frame codec as
/// the inter-node RPC. Clients cannot tell a coordinator from a single
/// pcdbd — same frames, same answers (order-normalized), same error
/// codes — except that a down shard surfaces as kUnavailable instead
/// of an answer (docs/DISTRIBUTED.md §6: degrade loudly, never serve a
/// silently wrong completeness verdict).
///
/// Threading model: one accept task plus a fixed pool of connection
/// workers (thread-per-connection up to `worker_threads`; surplus
/// accepted connections wait for a free worker). Each connection
/// handler owns one blocking Client per shard — Client is not
/// thread-safe, so nothing is shared — plus a scatter pool that runs
/// per-shard sub-requests of one broadcast concurrently. The only
/// cross-connection state is the metrics registry and the write-dedup
/// table, both mutex-guarded.

namespace pcdb {

/// \brief One shard's address.
struct ShardEndpoint {
  std::string host;
  uint16_t port = 0;
};

/// Parses "host:port,host:port,..." into endpoints.
[[nodiscard]] Result<std::vector<ShardEndpoint>> ParseEndpoints(
    const std::string& spec);

/// \brief Coordinator tunables.
struct CoordinatorOptions {
  std::string host = "127.0.0.1";
  /// Front-end TCP port; 0 binds an ephemeral port (read back via
  /// Coordinator::port()).
  uint16_t port = 0;
  /// The shard fleet, in shard-id order (index == shard id). Must match
  /// every shard's --shard-id/--num-shards flags; the first use of a
  /// shard verifies its SHARD_INFO against this list.
  std::vector<ShardEndpoint> shards;
  /// Hash-partitioned tables; num_shards is implied by `shards`.
  std::set<std::string> hashed_tables;
  /// Concurrent client connections actually served; surplus accepted
  /// connections queue for a free worker.
  size_t worker_threads = 8;
  /// SO_RCVTIMEO on client connections: bounds how long a worker can
  /// sit in Recv before noticing Stop().
  int client_recv_timeout_millis = 250;
  /// SO_RCVTIMEO on shard connections: a hung shard surfaces as a
  /// kTimeout (reported kUnavailable) instead of wedging the worker.
  int shard_recv_timeout_millis = 30000;
  /// Rows per ANSWER_ROWS frame when re-framing merged answers.
  size_t rows_per_batch = 256;
  /// Cap on retained (tenant, writer_id) dedup entries across all
  /// tenants; least-recently-touched entries are evicted beyond it, so
  /// a long-lived coordinator serving many distinct writer ids stays
  /// bounded. Eviction only weakens the *front-side* fast path: a
  /// retried write whose entry was evicted re-broadcasts, and every
  /// shard's own dedup state still makes it exactly-once.
  size_t max_writer_states = 4096;
  /// Accept-loop poll timeout; bounds Stop() latency when idle.
  int poll_millis = 100;
};

/// \brief The scatter-gather coordinator. Start() binds the front-end
/// listener; Stop() (or the destructor) drains the workers.
class Coordinator {
 public:
  explicit Coordinator(CoordinatorOptions options);
  ~Coordinator();

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  [[nodiscard]] Status Start();
  void Stop();

  /// The bound front-end port (valid after a successful Start).
  uint16_t port() const { return listener_.port(); }

  MetricsRegistry& metrics() { return metrics_; }

  const PartitionMap& partition() const { return partition_; }

 private:
  /// Per-connection handler state: the client socket plus one lazily
  /// dialled Client per shard and the scatter pool for broadcasts.
  /// Owned by exactly one connection worker for the connection's life.
  struct Handler;

  /// Coordinator-side idempotent-retry state for one (tenant, writer):
  /// mirrors the server's CheckpointWriterState semantics so a client
  /// retrying a fanned-out write against the coordinator gets
  /// exactly-once behavior end to end.
  struct WriterState {
    uint64_t last_seq = 0;
    IngestResult ack;  ///< As first served (duplicate = false).
    /// LRU stamp (writer_tick_ at the last dedup hit or record), so
    /// the map can evict the stalest entry at max_writer_states.
    uint64_t last_touch = 0;
  };

  void RunAcceptLoop();
  void RunConnection(Socket sock);
  /// Dispatches one decoded frame; returns false when the connection
  /// must close (off-protocol input).
  [[nodiscard]] bool HandleFrame(Handler* handler, const Frame& frame);

  void HandleQuery(Handler* handler, uint64_t request_id,
                   const QueryRequest& request);
  void HandleWrite(Handler* handler, uint64_t request_id, bool is_punctuate,
                   IngestRequest ingest, PunctuateRequest punctuate);
  void HandleShardInfo(Handler* handler, uint64_t request_id);
  void HandleCheckpoint(Handler* handler, uint64_t request_id);
  /// Answers STATS with fleet-aggregated metrics: counter/gauge sums
  /// and histogram bucket merges across every shard's snapshot, with
  /// the per-shard snapshots verbatim under "shards" and the
  /// coordinator's own registry under "coordinator".
  void HandleStats(Handler* handler, uint64_t request_id);

  /// Connects (or reuses) the handler's Client for shard `i`.
  [[nodiscard]] Result<Client*> ShardClient(Handler* handler, size_t i);

  /// Sends one ERROR frame carrying `status`.
  void SendError(Handler* handler, uint64_t request_id,
                 const Status& status);
  /// Frames `answer` as the standard answer sequence and sends it.
  void SendAnswer(Handler* handler, uint64_t request_id,
                  const AnnotatedTable& answer, const AnswerDone& done,
                  const std::string& profile_json);

  /// Wraps a shard-level failure for the client: transport-class
  /// failures (dead connection, timeout, refused dial) become
  /// kUnavailable naming the shard; evaluation verdicts pass through
  /// with their original code and message.
  static Status ShardStatus(size_t shard, const Status& status);

  CoordinatorOptions options_;
  PartitionMap partition_;
  MetricsRegistry metrics_;

  Counter* c_requests_ = nullptr;
  Counter* c_errors_ = nullptr;
  Counter* c_shard_errors_ = nullptr;
  Counter* c_writes_deduped_ = nullptr;
  Counter* c_protocol_errors_ = nullptr;
  Counter* c_connections_ = nullptr;
  Counter* c_fleet_stats_ = nullptr;
  Counter* c_profile_merges_ = nullptr;
  Histogram* h_latency_ = nullptr;
  /// Live (tenant, writer_id) dedup entries; capped at
  /// CoordinatorOptions::max_writer_states.
  Gauge* g_writer_states_ = nullptr;
  /// Per-shard round-trip latency, index == shard id (dynamic names
  /// composed from kMetricShardLatency).
  std::vector<Histogram*> h_shard_latency_;

  /// Evicts least-recently-touched entries until the dedup map is back
  /// under CoordinatorOptions::max_writer_states.
  void EvictStaleWritersLocked() PCDB_REQUIRES(writers_mu_);

  Mutex writers_mu_;
  /// tenant -> writer_id -> dedup state, bounded by max_writer_states
  /// (LRU on WriterState::last_touch).
  std::map<std::string, std::map<uint64_t, WriterState>> writers_
      PCDB_GUARDED_BY(writers_mu_);
  /// Monotonic LRU clock for WriterState::last_touch.
  uint64_t writer_tick_ PCDB_GUARDED_BY(writers_mu_) = 0;
  /// Total entries across all tenants of writers_.
  size_t writer_count_ PCDB_GUARDED_BY(writers_mu_) = 0;

  Listener listener_;
  std::atomic<bool> stop_requested_{false};

  Mutex state_mu_;
  bool started_ PCDB_GUARDED_BY(state_mu_) = false;

  /// Declared last: destroyed (joined) before the members the tasks use.
  std::unique_ptr<ThreadPool> accept_pool_;
  std::unique_ptr<ThreadPool> conn_pool_;
};

}  // namespace pcdb

#endif  // PCDB_DIST_COORDINATOR_H_
