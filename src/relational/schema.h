#ifndef PCDB_RELATIONAL_SCHEMA_H_
#define PCDB_RELATIONAL_SCHEMA_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/value.h"

namespace pcdb {

/// \brief A named, typed attribute of a relation schema.
///
/// Column names may be qualified ("W.day") after a scan with an alias or
/// a join; unqualified references resolve by suffix match.
struct Column {
  std::string name;
  ValueType type = ValueType::kString;

  bool operator==(const Column& other) const {
    return name == other.name && type == other.type;
  }
};

/// \brief An ordered sequence of columns (a relation schema, Def. §3.1).
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns)
      : columns_(std::move(columns)) {}

  size_t arity() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Resolves an attribute reference to a column index. A reference
  /// matches a column if it equals the column name exactly, or if the
  /// column name ends in ".<reference>" (unqualified reference into a
  /// qualified schema). Fails if no column or more than one column
  /// matches.
  [[nodiscard]] Result<size_t> Resolve(const std::string& ref) const;

  /// True if `ref` resolves to exactly one column.
  bool CanResolve(const std::string& ref) const;

  /// Schema with column `i` removed (the π_{¬A} output schema).
  Schema WithoutColumn(size_t i) const;

  /// Concatenation of this schema and `other` (join output schema).
  Schema Concat(const Schema& other) const;

  /// Schema holding the columns at `indices`, in that order (columns may
  /// repeat).
  Schema Select(const std::vector<size_t>& indices) const;

  /// Returns a copy where every column name is prefixed with
  /// "<qualifier>." (any existing qualifier is replaced).
  Schema Qualify(const std::string& qualifier) const;

  /// "name:TYPE, name:TYPE, ..." for diagnostics.
  std::string ToString() const;

  bool operator==(const Schema& other) const {
    return columns_ == other.columns_;
  }

 private:
  std::vector<Column> columns_;
};

}  // namespace pcdb

#endif  // PCDB_RELATIONAL_SCHEMA_H_
