#ifndef PCDB_RELATIONAL_DATABASE_H_
#define PCDB_RELATIONAL_DATABASE_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "relational/table.h"

namespace pcdb {

/// \brief A database instance: a set of named tables (§3.1).
///
/// Completeness metadata is layered on top by pattern::AnnotatedDatabase;
/// this class stores only the data.
class Database {
 public:
  /// Registers a new empty table under `name`.
  Status CreateTable(const std::string& name, Schema schema);

  /// Registers (or replaces) a table with its content.
  void PutTable(const std::string& name, Table table);

  bool HasTable(const std::string& name) const;

  Result<const Table*> GetTable(const std::string& name) const;
  Result<Table*> GetMutableTable(const std::string& name);

  /// Table names in deterministic (sorted) order.
  std::vector<std::string> TableNames() const;

  size_t num_tables() const { return tables_.size(); }

 private:
  std::map<std::string, Table> tables_;
};

}  // namespace pcdb

#endif  // PCDB_RELATIONAL_DATABASE_H_
