#ifndef PCDB_RELATIONAL_DATABASE_H_
#define PCDB_RELATIONAL_DATABASE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "relational/table.h"

namespace pcdb {

/// \brief A database instance: a set of named tables (§3.1).
///
/// Completeness metadata is layered on top by pattern::AnnotatedDatabase;
/// this class stores only the data.
///
/// Every table carries a monotonically increasing *epoch* that advances
/// on any mutation (creation, replacement, or a GetMutableTable handout,
/// which is assumed to mutate). Derived caches — notably the server's
/// answer cache — fold the epochs of a query's scanned tables into their
/// keys, so a mutation implicitly invalidates every cached answer that
/// depended on the old contents.
class Database {
 public:
  /// Registers a new empty table under `name`.
  [[nodiscard]] Status CreateTable(const std::string& name, Schema schema);

  /// Registers (or replaces) a table with its content.
  void PutTable(const std::string& name, Table table);

  bool HasTable(const std::string& name) const;

  [[nodiscard]] Result<const Table*> GetTable(const std::string& name) const;
  [[nodiscard]] Result<Table*> GetMutableTable(const std::string& name);

  /// Table names in deterministic (sorted) order.
  std::vector<std::string> TableNames() const;

  size_t num_tables() const { return tables_.size(); }

  /// The mutation epoch of `name`; 0 for unknown tables. Advances on
  /// CreateTable / PutTable / GetMutableTable / BumpTableEpoch.
  uint64_t TableEpoch(const std::string& name) const;

  /// Explicitly advances `name`'s epoch. Pattern-side mutations
  /// (AnnotatedDatabase::AddPattern / SetPatterns) call this so cached
  /// annotated answers see pattern changes too, not just data changes.
  void BumpTableEpoch(const std::string& name) { ++epochs_[name]; }

  /// Restores `name`'s epoch verbatim — checkpoint recovery only. The
  /// recovered instance must resume the pre-crash epoch sequence, not
  /// restart at the bumps the rebuild itself performed, so that answer
  /// signatures stay comparable across the restart.
  void SetTableEpoch(const std::string& name, uint64_t epoch) {
    epochs_[name] = epoch;
  }

 private:
  std::map<std::string, Table> tables_;
  std::map<std::string, uint64_t> epochs_;
};

}  // namespace pcdb

#endif  // PCDB_RELATIONAL_DATABASE_H_
