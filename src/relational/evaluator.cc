#include "relational/evaluator.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "common/failpoint.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "obs/names.h"
#include "obs/trace.h"

namespace pcdb {
namespace {

/// Poll cadence inside governed row loops: frequent enough that a
/// deadline or cancellation trips promptly, cheap enough to ignore.
constexpr size_t kRowsPerContextCheck = 1024;

Result<Table> EvalScan(const Expr& expr, const Database& db) {
  PCDB_ASSIGN_OR_RETURN(const Table* table, db.GetTable(expr.table_name()));
  PCDB_ASSIGN_OR_RETURN(Schema schema, expr.OutputSchema(db));
  Table out(std::move(schema));
  out.Reserve(table->num_rows());
  for (const Tuple& t : table->rows()) out.AppendUnchecked(t);
  return out;
}

Result<Table> EvalSelectConst(const Expr& expr, Table in) {
  PCDB_ASSIGN_OR_RETURN(size_t idx, in.schema().Resolve(expr.attr()));
  if (in.schema().column(idx).type != expr.constant().type()) {
    return Status::TypeError("selection constant type mismatch on '" +
                             expr.attr() + "'");
  }
  Table out(in.schema());
  for (const Tuple& t : in.rows()) {
    if (t[idx] == expr.constant()) out.AppendUnchecked(t);
  }
  return out;
}

Result<Table> EvalSelectAttrEq(const Expr& expr, Table in) {
  PCDB_ASSIGN_OR_RETURN(size_t a, in.schema().Resolve(expr.attr()));
  PCDB_ASSIGN_OR_RETURN(size_t b, in.schema().Resolve(expr.attr2()));
  Table out(in.schema());
  for (const Tuple& t : in.rows()) {
    if (t[a] == t[b]) out.AppendUnchecked(t);
  }
  return out;
}

Result<Table> EvalProjectOut(const Expr& expr, Table in) {
  PCDB_ASSIGN_OR_RETURN(size_t idx, in.schema().Resolve(expr.attr()));
  Table out(in.schema().WithoutColumn(idx));
  out.Reserve(in.num_rows());
  for (const Tuple& t : in.rows()) {
    Tuple projected;
    projected.reserve(t.size() - 1);
    for (size_t i = 0; i < t.size(); ++i) {
      if (i != idx) projected.push_back(t[i]);
    }
    out.AppendUnchecked(std::move(projected));
  }
  return out;
}

Result<Table> EvalRearrange(const Expr& expr, Table in) {
  std::vector<size_t> indices;
  indices.reserve(expr.attrs().size());
  for (const std::string& a : expr.attrs()) {
    PCDB_ASSIGN_OR_RETURN(size_t idx, in.schema().Resolve(a));
    indices.push_back(idx);
  }
  Table out(in.schema().Select(indices));
  out.Reserve(in.num_rows());
  for (const Tuple& t : in.rows()) {
    Tuple selected;
    selected.reserve(indices.size());
    for (size_t i : indices) selected.push_back(t[i]);
    out.AppendUnchecked(std::move(selected));
  }
  return out;
}

Result<Table> EvalJoin(const Expr& expr, Table lhs, Table rhs,
                       ThreadPool* pool, const ExecContext& ctx) {
  Schema out_schema = lhs.schema().Concat(rhs.schema());
  Table out(std::move(out_schema));
  if (expr.attr().empty()) {
    // Cartesian product. The reservation is clamped: the row-count
    // product can overflow size_t or demand absurd capacity long before
    // the loop below would ever materialize it.
    out.Reserve(internal::CartesianReserve(lhs.num_rows(), rhs.num_rows()));
    for (const Tuple& l : lhs.rows()) {
      // Per outer row: the inner loop appends rhs.num_rows() tuples, so
      // a row budget trips within one pass and a deadline within two.
      if (!ctx.unbounded()) {
        PCDB_RETURN_NOT_OK(ctx.CheckRows(out.num_rows()));
      }
      for (const Tuple& r : rhs.rows()) {
        Tuple joined = l;
        joined.insert(joined.end(), r.begin(), r.end());
        out.AppendUnchecked(std::move(joined));
      }
    }
    return out;
  }
  PCDB_ASSIGN_OR_RETURN(size_t a, lhs.schema().Resolve(expr.attr()));
  PCDB_ASSIGN_OR_RETURN(size_t b, rhs.schema().Resolve(expr.attr2()));
  if (lhs.schema().column(a).type != rhs.schema().column(b).type) {
    return Status::TypeError("join attribute type mismatch between '" +
                             expr.attr() + "' and '" + expr.attr2() + "'");
  }
  // Hash join: build on the smaller side.
  const bool build_left = lhs.num_rows() <= rhs.num_rows();
  const Table& build = build_left ? lhs : rhs;
  const Table& probe = build_left ? rhs : lhs;
  const size_t build_key = build_left ? a : b;
  const size_t probe_key = build_left ? b : a;
  std::unordered_multimap<Value, const Tuple*, ValueHash> index;
  index.reserve(build.num_rows());
  for (const Tuple& t : build.rows()) index.emplace(t[build_key], &t);

  auto probe_range = [&](size_t begin, size_t end,
                         std::vector<Tuple>* sink) -> Status {
    for (size_t row = begin; row < end; ++row) {
      if (!ctx.unbounded() && (row - begin) % kRowsPerContextCheck == 0) {
        // Per-chunk sink size approximates this chunk's share of the
        // budget; the post-operator CheckRows catches the exact total.
        PCDB_RETURN_NOT_OK(ctx.CheckRows(sink->size()));
      }
      const Tuple& t = probe.row(row);
      auto [first, last] = index.equal_range(t[probe_key]);
      for (auto it = first; it != last; ++it) {
        const Tuple& l = build_left ? *it->second : t;
        const Tuple& r = build_left ? t : *it->second;
        Tuple joined = l;
        joined.insert(joined.end(), r.begin(), r.end());
        sink->push_back(std::move(joined));
      }
    }
    return Status::OK();
  };

  const size_t threads = pool == nullptr ? 1 : pool->num_threads();
  const std::vector<IndexRange> ranges = ChunkRanges(
      probe.num_rows(), ParallelChunkCount(threads, probe.num_rows()));
  // Probe chunks: contiguous probe-row ranges over the shared read-only
  // build index, one output buffer per chunk. Concatenating the buffers
  // in chunk order reproduces the serial row order exactly (equal_range
  // iteration order on a const multimap is fixed), for any chunk count —
  // ranges ascend and partition the probe rows. TryParallelForRanges
  // degenerates to an in-order serial loop without a pool, so serial and
  // parallel runs fail with identical codes under injected faults.
  std::vector<std::vector<Tuple>> chunk_rows(ranges.size());
  PCDB_RETURN_NOT_OK(TryParallelForRanges(
      pool, ranges, [&](size_t c, IndexRange r) -> Status {
        PCDB_FAILPOINT("eval.join.probe");
        return probe_range(r.begin, r.end, &chunk_rows[c]);
      }));
  size_t total = 0;
  for (const auto& rows : chunk_rows) total += rows.size();
  out.Reserve(total);
  for (auto& rows : chunk_rows) {
    for (Tuple& t : rows) out.AppendUnchecked(std::move(t));
  }
  return out;
}

Result<Table> EvalSort(const Expr& expr, Table in) {
  std::vector<size_t> keys;
  keys.reserve(expr.attrs().size());
  for (const std::string& a : expr.attrs()) {
    PCDB_ASSIGN_OR_RETURN(size_t idx, in.schema().Resolve(a));
    keys.push_back(idx);
  }
  const std::vector<bool>& desc = expr.sort_descending();
  std::vector<Tuple> rows = in.rows();
  std::stable_sort(rows.begin(), rows.end(),
                   [&](const Tuple& a, const Tuple& b) {
                     for (size_t k = 0; k < keys.size(); ++k) {
                       const Value& va = a[keys[k]];
                       const Value& vb = b[keys[k]];
                       if (va == vb) continue;
                       bool less = va < vb;
                       return (k < desc.size() && desc[k]) ? !less : less;
                     }
                     return false;
                   });
  Table out(in.schema());
  out.Reserve(rows.size());
  for (Tuple& t : rows) out.AppendUnchecked(std::move(t));
  return out;
}

Result<Table> EvalLimit(const Expr& expr, Table in) {
  if (in.num_rows() <= expr.limit()) return in;
  Table out(in.schema());
  out.Reserve(expr.limit());
  for (size_t r = 0; r < expr.limit(); ++r) out.AppendUnchecked(in.row(r));
  return out;
}

/// Running aggregate state for one group and one AggSpec.
struct AggState {
  int64_t count = 0;
  double sum_double = 0;
  int64_t sum_int = 0;
  bool has_value = false;
  Value min;
  Value max;
};

Result<Table> EvalAggregate(const Expr& expr, Table in, const Database& db,
                            const ExecContext& ctx) {
  std::vector<size_t> group_idx;
  group_idx.reserve(expr.attrs().size());
  for (const std::string& g : expr.attrs()) {
    PCDB_ASSIGN_OR_RETURN(size_t idx, in.schema().Resolve(g));
    group_idx.push_back(idx);
  }
  std::vector<int64_t> agg_idx;  // -1 for COUNT(*)
  for (const AggSpec& agg : expr.aggs()) {
    if (agg.attr.empty()) {
      agg_idx.push_back(-1);
    } else {
      PCDB_ASSIGN_OR_RETURN(size_t idx, in.schema().Resolve(agg.attr));
      // SUM/AVG need a numeric column; rejecting here (rather than
      // skipping string cells or aborting in Value::AsDouble) keeps the
      // error a clean Status for every input instance.
      if ((agg.func == AggFunc::kSum || agg.func == AggFunc::kAvg) &&
          in.schema().column(idx).type == ValueType::kString) {
        return Status::TypeError("cannot aggregate string column '" +
                                 agg.attr + "' with SUM/AVG");
      }
      agg_idx.push_back(static_cast<int64_t>(idx));
    }
  }

  struct Group {
    Tuple key;
    std::vector<AggState> states;
  };
  std::unordered_map<Tuple, size_t, TupleHash> group_of;
  std::vector<Group> groups;
  size_t row_no = 0;
  for (const Tuple& t : in.rows()) {
    if (!ctx.unbounded() && row_no++ % kRowsPerContextCheck == 0) {
      PCDB_RETURN_NOT_OK(ctx.Check());
    }
    Tuple key;
    key.reserve(group_idx.size());
    for (size_t i : group_idx) key.push_back(t[i]);
    auto [it, inserted] = group_of.emplace(key, groups.size());
    if (inserted) {
      groups.push_back(
          Group{std::move(key), std::vector<AggState>(expr.aggs().size())});
    }
    Group& g = groups[it->second];
    for (size_t k = 0; k < expr.aggs().size(); ++k) {
      AggState& s = g.states[k];
      s.count += 1;
      if (agg_idx[k] < 0) continue;
      const Value& v = t[static_cast<size_t>(agg_idx[k])];
      if (!v.is_string()) {
        if (v.is_int64()) {
          s.sum_int += v.int64();
        }
        PCDB_ASSIGN_OR_RETURN(double d, v.AsDouble());
        s.sum_double += d;
      }
      if (!s.has_value) {
        s.min = v;
        s.max = v;
        s.has_value = true;
      } else {
        if (v < s.min) s.min = v;
        if (s.max < v) s.max = v;
      }
    }
  }

  PCDB_ASSIGN_OR_RETURN(Schema out_schema, expr.OutputSchema(db));
  Table out(std::move(out_schema));
  out.Reserve(groups.size());
  for (const Group& g : groups) {
    Tuple row = g.key;
    for (size_t k = 0; k < expr.aggs().size(); ++k) {
      const AggState& s = g.states[k];
      const AggSpec& spec = expr.aggs()[k];
      switch (spec.func) {
        case AggFunc::kCount:
          row.push_back(Value(s.count));
          break;
        case AggFunc::kSum: {
          size_t col = g.key.size() + k;
          if (out.schema().column(col).type == ValueType::kDouble) {
            row.push_back(Value(s.sum_double));
          } else {
            row.push_back(Value(s.sum_int));
          }
          break;
        }
        case AggFunc::kMin:
          row.push_back(s.min);
          break;
        case AggFunc::kMax:
          row.push_back(s.max);
          break;
        case AggFunc::kAvg:
          row.push_back(Value(s.count == 0 ? 0.0 : s.sum_double / s.count));
          break;
      }
    }
    out.AppendUnchecked(std::move(row));
  }
  return out;
}

/// The undecorated operator dispatch; the governed ApplyRootOperator
/// wraps it with the failpoint and the context checks.
Result<Table> ApplyRootOperatorImpl(const Expr& expr, const Database& db,
                                    Table left, Table right, ThreadPool* pool,
                                    const ExecContext& ctx) {
  switch (expr.kind()) {
    case ExprKind::kScan:
      return EvalScan(expr, db);
    case ExprKind::kSelectConst:
      return EvalSelectConst(expr, std::move(left));
    case ExprKind::kSelectAttrEq:
      return EvalSelectAttrEq(expr, std::move(left));
    case ExprKind::kProjectOut:
      return EvalProjectOut(expr, std::move(left));
    case ExprKind::kRearrange:
      return EvalRearrange(expr, std::move(left));
    case ExprKind::kJoin:
      return EvalJoin(expr, std::move(left), std::move(right), pool, ctx);
    case ExprKind::kAggregate:
      return EvalAggregate(expr, std::move(left), db, ctx);
    case ExprKind::kSort:
      return EvalSort(expr, std::move(left));
    case ExprKind::kLimit:
      return EvalLimit(expr, std::move(left));
    case ExprKind::kUnion: {
      PCDB_ASSIGN_OR_RETURN(Schema schema, expr.OutputSchema(db));
      Table out(std::move(schema));
      out.Reserve(left.num_rows() + right.num_rows());
      for (const Tuple& t : left.rows()) out.AppendUnchecked(t);
      for (const Tuple& t : right.rows()) out.AppendUnchecked(t);
      return out;
    }
  }
  return Status::Internal("unhandled expression kind");
}

}  // namespace

namespace internal {

size_t CartesianReserve(size_t lhs_rows, size_t rhs_rows) {
  // Pre-reserving beyond a few million rows buys little over amortized
  // growth and risks an enormous up-front allocation.
  constexpr size_t kMaxReserve = size_t{1} << 22;  // ~4M rows
  if (lhs_rows == 0 || rhs_rows == 0) return 0;
  if (lhs_rows > std::numeric_limits<size_t>::max() / rhs_rows) {
    return kMaxReserve;  // product overflows size_t
  }
  return std::min(lhs_rows * rhs_rows, kMaxReserve);
}

}  // namespace internal

Result<Table> ApplyRootOperator(const Expr& expr, const Database& db,
                                Table left, Table right, ThreadPool* pool) {
  return ApplyRootOperator(expr, db, std::move(left), std::move(right), pool,
                           ExecContext::Unbounded());
}

namespace {

/// Static span names (the tracer stores the pointer, never copies).
const char* EvalSpanName(ExprKind kind) {
  switch (kind) {
    case ExprKind::kScan:
      return kSpanEvalScan;
    case ExprKind::kSelectConst:
      return kSpanEvalSelectConst;
    case ExprKind::kSelectAttrEq:
      return kSpanEvalSelectAttrEq;
    case ExprKind::kProjectOut:
      return kSpanEvalProjectOut;
    case ExprKind::kRearrange:
      return kSpanEvalRearrange;
    case ExprKind::kJoin:
      return kSpanEvalJoin;
    case ExprKind::kAggregate:
      return kSpanEvalAggregate;
    case ExprKind::kSort:
      return kSpanEvalSort;
    case ExprKind::kLimit:
      return kSpanEvalLimit;
    case ExprKind::kUnion:
      return kSpanEvalUnion;
  }
  return kSpanEvalOperator;
}

}  // namespace

Result<Table> ApplyRootOperator(const Expr& expr, const Database& db,
                                Table left, Table right, ThreadPool* pool,
                                const ExecContext& ctx) {
  PCDB_TRACE_SPAN(span, EvalSpanName(expr.kind()));
  PCDB_FAILPOINT("eval.operator");
  PCDB_RETURN_NOT_OK(ctx.Check());
  span.Arg("input_rows", left.num_rows() + right.num_rows());
  PCDB_ASSIGN_OR_RETURN(
      Table out, ApplyRootOperatorImpl(expr, db, std::move(left),
                                       std::move(right), pool, ctx));
  PCDB_RETURN_NOT_OK(ctx.CheckRows(out.num_rows()));
  span.Arg("rows", out.num_rows());
  return out;
}

namespace {

Result<Table> EvaluateWithPool(const Expr& expr, const Database& db,
                               ThreadPool* pool, const ExecContext& ctx) {
  Table left;
  Table right;
  if (expr.left() != nullptr) {
    PCDB_ASSIGN_OR_RETURN(left,
                          EvaluateWithPool(*expr.left(), db, pool, ctx));
  }
  if (expr.right() != nullptr) {
    PCDB_ASSIGN_OR_RETURN(right,
                          EvaluateWithPool(*expr.right(), db, pool, ctx));
  }
  return ApplyRootOperator(expr, db, std::move(left), std::move(right), pool,
                           ctx);
}

}  // namespace

Result<Table> Evaluate(const Expr& expr, const Database& db) {
  return Evaluate(expr, db, EvalOptions{}, ExecContext::Unbounded());
}

Result<Table> Evaluate(const Expr& expr, const Database& db,
                       const EvalOptions& options) {
  return Evaluate(expr, db, options, ExecContext::Unbounded());
}

Result<Table> Evaluate(const Expr& expr, const Database& db,
                       const EvalOptions& options, const ExecContext& ctx) {
  // The exception guard makes serial and parallel fault behaviour match:
  // a throw-action failpoint on the serial path becomes the same
  // Status::Internal the worker-side catch produces on the pool path.
  try {
    if (options.num_threads <= 1) {
      return EvaluateWithPool(expr, db, nullptr, ctx);
    }
    ThreadPool pool(options.num_threads);
    return EvaluateWithPool(expr, db, &pool, ctx);
  } catch (const std::exception& e) {
    return Status::Internal(std::string("evaluation failed: ") + e.what());
  }
}

}  // namespace pcdb
