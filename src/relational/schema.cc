#include "relational/schema.h"

#include "common/logging.h"

namespace pcdb {
namespace {

bool Matches(const std::string& column_name, const std::string& ref) {
  if (column_name == ref) return true;
  // Unqualified reference against qualified column: "day" matches "W.day".
  if (ref.find('.') == std::string::npos &&
      column_name.size() > ref.size() + 1) {
    size_t at = column_name.size() - ref.size() - 1;
    return column_name[at] == '.' &&
           column_name.compare(at + 1, ref.size(), ref) == 0;
  }
  return false;
}

}  // namespace

Result<size_t> Schema::Resolve(const std::string& ref) const {
  // A unique exact (full-name) match wins outright; only when there is
  // none do unqualified references fall back to suffix matching against
  // qualified columns.
  size_t exact = columns_.size();
  size_t exact_count = 0;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == ref) {
      exact = i;
      ++exact_count;
    }
  }
  if (exact_count == 1) return exact;
  if (exact_count > 1) {
    return Status::InvalidArgument("ambiguous attribute reference '" + ref +
                                   "' in schema " + ToString());
  }
  size_t found = columns_.size();
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (Matches(columns_[i].name, ref)) {
      if (found != columns_.size()) {
        return Status::InvalidArgument("ambiguous attribute reference '" +
                                       ref + "' in schema " + ToString());
      }
      found = i;
    }
  }
  if (found == columns_.size()) {
    return Status::NotFound("no attribute '" + ref + "' in schema " +
                            ToString());
  }
  return found;
}

bool Schema::CanResolve(const std::string& ref) const {
  return Resolve(ref).ok();
}

Schema Schema::WithoutColumn(size_t i) const {
  PCDB_CHECK(i < columns_.size());
  std::vector<Column> cols;
  cols.reserve(columns_.size() - 1);
  for (size_t j = 0; j < columns_.size(); ++j) {
    if (j != i) cols.push_back(columns_[j]);
  }
  return Schema(std::move(cols));
}

Schema Schema::Concat(const Schema& other) const {
  std::vector<Column> cols = columns_;
  cols.insert(cols.end(), other.columns_.begin(), other.columns_.end());
  return Schema(std::move(cols));
}

Schema Schema::Select(const std::vector<size_t>& indices) const {
  std::vector<Column> cols;
  cols.reserve(indices.size());
  for (size_t i : indices) {
    PCDB_CHECK(i < columns_.size());
    cols.push_back(columns_[i]);
  }
  return Schema(std::move(cols));
}

Schema Schema::Qualify(const std::string& qualifier) const {
  std::vector<Column> cols;
  cols.reserve(columns_.size());
  for (const Column& c : columns_) {
    size_t dot = c.name.rfind('.');
    std::string base =
        dot == std::string::npos ? c.name : c.name.substr(dot + 1);
    cols.push_back(Column{qualifier + "." + base, c.type});
  }
  return Schema(std::move(cols));
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += ":";
    out += ValueTypeToString(columns_[i].type);
  }
  out += ")";
  return out;
}

}  // namespace pcdb
