#include "relational/csv.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace pcdb {

Result<Table> ReadCsvString(const std::string& text, const Schema& schema,
                            bool has_header) {
  Table table(schema);
  std::istringstream stream(text);
  std::string line;
  size_t line_no = 0;
  bool skipped_header = !has_header;
  while (std::getline(stream, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (TrimString(line).empty()) continue;
    if (!skipped_header) {
      skipped_header = true;
      continue;
    }
    std::vector<std::string> fields = SplitString(line, ',');
    if (fields.size() != schema.arity()) {
      return Status::ParseError(
          "line " + std::to_string(line_no) + ": expected " +
          std::to_string(schema.arity()) + " fields, got " +
          std::to_string(fields.size()));
    }
    Tuple row;
    row.reserve(fields.size());
    for (size_t i = 0; i < fields.size(); ++i) {
      auto value = Value::Parse(TrimString(fields[i]), schema.column(i).type);
      if (!value.ok()) {
        return Status::ParseError("line " + std::to_string(line_no) +
                                  ", column '" + schema.column(i).name +
                                  "': " + value.status().message());
      }
      row.push_back(std::move(value).ValueOrDie());
    }
    table.AppendUnchecked(std::move(row));
  }
  return table;
}

Result<Table> ReadCsvFile(const std::string& path, const Schema& schema,
                          bool has_header) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open CSV file '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ReadCsvString(buffer.str(), schema, has_header);
}

std::string WriteCsvString(const Table& table) {
  std::string out;
  for (size_t i = 0; i < table.schema().arity(); ++i) {
    if (i > 0) out += ",";
    out += table.schema().column(i).name;
  }
  out += "\n";
  for (const Tuple& row : table.rows()) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += ",";
      out += row[i].ToString();
    }
    out += "\n";
  }
  return out;
}

Status WriteCsvFile(const Table& table, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::InvalidArgument("cannot open '" + path + "' for writing");
  }
  out << WriteCsvString(table);
  if (!out) {
    return Status::Internal("write to '" + path + "' failed");
  }
  return Status::OK();
}

}  // namespace pcdb
