#include "relational/csv.h"

#include <exception>
#include <fstream>
#include <sstream>

#include "common/failpoint.h"
#include "common/string_util.h"

namespace pcdb {

namespace {

/// One parsed CSV record plus bookkeeping for error messages. A record
/// may span multiple physical lines when a quoted field embeds newlines.
struct CsvRecord {
  std::vector<std::string> fields;
  /// Which fields were quoted (quoted fields keep surrounding
  /// whitespace verbatim; unquoted fields are trimmed like before).
  std::vector<bool> quoted;
  size_t line_no = 0;  // first physical line of the record
};

/// RFC-4180-style record reader over `text` starting at `*pos`. Returns
/// false at end of input. On a malformed quoted field, fills `error`.
/// `*line_no` tracks physical lines (1-based) across calls.
bool NextCsvRecord(const std::string& text, size_t* pos, size_t* line_no,
                   CsvRecord* record, std::string* error) {
  const size_t n = text.size();
  if (*pos >= n) return false;
  record->fields.clear();
  record->quoted.clear();
  ++*line_no;
  record->line_no = *line_no;

  std::string field;
  bool field_quoted = false;
  bool in_quotes = false;
  bool seen_quote_end = false;  // closing quote seen, expecting , or EOL
  auto finish_field = [&] {
    record->fields.push_back(field);
    record->quoted.push_back(field_quoted);
    field.clear();
    field_quoted = false;
    seen_quote_end = false;
  };

  size_t i = *pos;
  for (; i < n; ++i) {
    const char ch = text[i];
    if (in_quotes) {
      if (ch == '"') {
        if (i + 1 < n && text[i + 1] == '"') {
          field += '"';  // escaped quote
          ++i;
        } else {
          in_quotes = false;
          seen_quote_end = true;
        }
      } else {
        if (ch == '\n') ++*line_no;
        field += ch;  // commas and newlines are literal inside quotes
      }
      continue;
    }
    if (ch == ',') {
      finish_field();
    } else if (ch == '\n') {
      ++i;
      break;  // end of record
    } else if (ch == '\r' && (i + 1 >= n || text[i + 1] == '\n')) {
      i += (i + 1 < n) ? 2 : 1;
      break;  // CRLF (or trailing CR at EOF) end of record
    } else if (ch == '"' && TrimString(field).empty() && !seen_quote_end) {
      // Opening quote (possibly after leading spaces, which RFC 4180
      // forbids but we tolerate and drop).
      field.clear();
      in_quotes = true;
      field_quoted = true;
    } else if (seen_quote_end) {
      // Between a closing quote and the next separator only whitespace
      // is tolerated.
      if (ch != ' ' && ch != '\t') {
        *error = "line " + std::to_string(*line_no) +
                 ": unexpected character after closing quote";
        return false;
      }
    } else {
      field += ch;
    }
  }
  if (in_quotes) {
    *error = "line " + std::to_string(record->line_no) +
             ": unterminated quoted field";
    return false;
  }
  finish_field();
  *pos = i;
  return true;
}

/// True if the record is a blank line (single empty unquoted field).
bool IsBlankRecord(const CsvRecord& record) {
  return record.fields.size() == 1 && !record.quoted[0] &&
         TrimString(record.fields[0]).empty();
}

/// RFC-4180 quoting: wrap fields containing separators, quotes, CR/LF,
/// or leading/trailing whitespace (the reader trims unquoted fields, so
/// meaningful spaces must be protected) and double embedded quotes.
void AppendCsvField(const std::string& field, std::string* out) {
  bool needs_quotes = false;
  for (char ch : field) {
    if (ch == ',' || ch == '"' || ch == '\n' || ch == '\r') {
      needs_quotes = true;
      break;
    }
  }
  if (!field.empty() && (field.front() == ' ' || field.front() == '\t' ||
                         field.back() == ' ' || field.back() == '\t')) {
    needs_quotes = true;
  }
  if (!needs_quotes) {
    *out += field;
    return;
  }
  *out += '"';
  for (char ch : field) {
    if (ch == '"') *out += '"';
    *out += ch;
  }
  *out += '"';
}

}  // namespace

Result<Table> ReadCsvString(const std::string& text, const Schema& schema,
                            bool has_header) {
  return ReadCsvString(text, schema, has_header, ExecContext::Unbounded());
}

namespace {

Result<Table> ReadCsvStringGoverned(const std::string& text,
                                    const Schema& schema, bool has_header,
                                    const ExecContext& ctx) {
  PCDB_FAILPOINT("csv.read");
  PCDB_RETURN_NOT_OK(ctx.Check());
  Table table(schema);
  size_t pos = 0;
  size_t line_no = 0;
  bool skipped_header = !has_header;
  CsvRecord record;
  std::string error;
  while (NextCsvRecord(text, &pos, &line_no, &record, &error)) {
    PCDB_FAILPOINT("csv.record");
    if (!ctx.unbounded()) {
      PCDB_RETURN_NOT_OK(ctx.CheckRows(table.num_rows() + 1));
    }
    if (IsBlankRecord(record)) continue;
    if (!skipped_header) {
      skipped_header = true;
      continue;
    }
    if (record.fields.size() != schema.arity()) {
      return Status::ParseError(
          "line " + std::to_string(record.line_no) + ": expected " +
          std::to_string(schema.arity()) + " fields, got " +
          std::to_string(record.fields.size()));
    }
    Tuple row;
    row.reserve(record.fields.size());
    for (size_t i = 0; i < record.fields.size(); ++i) {
      // Quoted fields are verbatim; unquoted fields are trimmed (the
      // pre-quoting format allowed padded fields like " 1 , x ").
      const std::string& raw = record.fields[i];
      auto value = Value::Parse(record.quoted[i] ? raw : TrimString(raw),
                                schema.column(i).type);
      if (!value.ok()) {
        return Status::ParseError("line " + std::to_string(record.line_no) +
                                  ", column '" + schema.column(i).name +
                                  "': " + value.status().message());
      }
      row.push_back(std::move(value).ValueOrDie());
    }
    table.AppendUnchecked(std::move(row));
  }
  if (!error.empty()) return Status::ParseError(error);
  return table;
}

}  // namespace

Result<Table> ReadCsvString(const std::string& text, const Schema& schema,
                            bool has_header, const ExecContext& ctx) {
  // Same exception guard as the other governed entry points: a throwing
  // failpoint (or a real bad_alloc) surfaces as kInternal, never as a
  // process-terminating escape.
  try {
    return ReadCsvStringGoverned(text, schema, has_header, ctx);
  } catch (const std::exception& e) {
    return Status::Internal(std::string("CSV load failed: ") + e.what());
  }
}

Result<Table> ReadCsvFile(const std::string& path, const Schema& schema,
                          bool has_header) {
  return ReadCsvFile(path, schema, has_header, ExecContext::Unbounded());
}

Result<Table> ReadCsvFile(const std::string& path, const Schema& schema,
                          bool has_header, const ExecContext& ctx) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open CSV file '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ReadCsvString(buffer.str(), schema, has_header, ctx);
}

std::string WriteCsvString(const Table& table) {
  std::string out;
  for (size_t i = 0; i < table.schema().arity(); ++i) {
    if (i > 0) out += ",";
    AppendCsvField(table.schema().column(i).name, &out);
  }
  out += "\n";
  for (const Tuple& row : table.rows()) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += ",";
      AppendCsvField(row[i].ToString(), &out);
    }
    out += "\n";
  }
  return out;
}

Status WriteCsvFile(const Table& table, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::InvalidArgument("cannot open '" + path + "' for writing");
  }
  out << WriteCsvString(table);
  if (!out) {
    return Status::Internal("write to '" + path + "' failed");
  }
  return Status::OK();
}

}  // namespace pcdb
