#ifndef PCDB_RELATIONAL_TABLE_H_
#define PCDB_RELATIONAL_TABLE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "relational/schema.h"
#include "relational/tuple.h"

namespace pcdb {

/// \brief A finite bag (multiset) of tuples under a schema (§3.1).
///
/// Both databases and query results use bag semantics, matching SQL; the
/// same row may appear multiple times.
class Table {
 public:
  Table() = default;
  explicit Table(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }
  const Tuple& row(size_t i) const { return rows_[i]; }
  const std::vector<Tuple>& rows() const { return rows_; }

  /// Appends a row after verifying arity and column types.
  [[nodiscard]] Status Append(Tuple row);

  /// Appends without checks; callers guarantee the row conforms.
  void AppendUnchecked(Tuple row) { rows_.push_back(std::move(row)); }

  void Reserve(size_t n) { rows_.reserve(n); }
  void Clear() { rows_.clear(); }

  /// Lexicographic in-place sort; useful for deterministic output and
  /// bag comparison.
  void Sort();

  /// True if `other` holds the same bag of rows under an equal schema.
  bool BagEquals(const Table& other) const;

  /// True if every row of this table appears in `other` at least as many
  /// times (bag containment; the D ⊆ D_c relation of §3.2).
  bool BagContainedIn(const Table& other) const;

  /// Distinct values appearing in column `col` (the "allowable domain"
  /// building block used by pattern promotion).
  std::vector<Value> DistinctValues(size_t col) const;

  /// Renders an aligned ASCII table (header + rows) for examples.
  std::string ToString(size_t max_rows = 50) const;

 private:
  Schema schema_;
  std::vector<Tuple> rows_;
};

}  // namespace pcdb

#endif  // PCDB_RELATIONAL_TABLE_H_
