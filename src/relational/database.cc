#include "relational/database.h"

namespace pcdb {

Status Database::CreateTable(const std::string& name, Schema schema) {
  if (tables_.count(name) > 0) {
    return Status::AlreadyExists("table '" + name + "' already exists");
  }
  tables_.emplace(name, Table(std::move(schema)));
  BumpTableEpoch(name);
  return Status::OK();
}

void Database::PutTable(const std::string& name, Table table) {
  tables_.insert_or_assign(name, std::move(table));
  BumpTableEpoch(name);
}

bool Database::HasTable(const std::string& name) const {
  return tables_.count(name) > 0;
}

Result<const Table*> Database::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no table '" + name + "'");
  }
  return &it->second;
}

Result<Table*> Database::GetMutableTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no table '" + name + "'");
  }
  // A mutable handout is assumed to mutate; over-counting is harmless
  // (an extra cache miss), under-counting would serve stale answers.
  BumpTableEpoch(name);
  return &it->second;
}

uint64_t Database::TableEpoch(const std::string& name) const {
  auto it = epochs_.find(name);
  return it == epochs_.end() ? 0 : it->second;
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

}  // namespace pcdb
