#include "relational/expr.h"

#include "common/logging.h"

namespace pcdb {

const char* AggFuncToString(AggFunc func) {
  switch (func) {
    case AggFunc::kCount:
      return "COUNT";
    case AggFunc::kSum:
      return "SUM";
    case AggFunc::kMin:
      return "MIN";
    case AggFunc::kMax:
      return "MAX";
    case AggFunc::kAvg:
      return "AVG";
  }
  return "?";
}

namespace {

ValueType AggOutputType(AggFunc func, ValueType input) {
  switch (func) {
    case AggFunc::kCount:
      return ValueType::kInt64;
    case AggFunc::kSum:
      return input == ValueType::kDouble ? ValueType::kDouble
                                         : ValueType::kInt64;
    case AggFunc::kMin:
    case AggFunc::kMax:
      return input;
    case AggFunc::kAvg:
      return ValueType::kDouble;
  }
  return input;
}

}  // namespace

Result<Schema> Expr::OutputSchema(const Database& db) const {
  switch (kind_) {
    case ExprKind::kScan: {
      PCDB_ASSIGN_OR_RETURN(const Table* table, db.GetTable(table_name_));
      if (alias_.empty()) return table->schema();
      return table->schema().Qualify(alias_);
    }
    case ExprKind::kSelectConst: {
      PCDB_ASSIGN_OR_RETURN(Schema in, left_->OutputSchema(db));
      PCDB_ASSIGN_OR_RETURN(size_t idx, in.Resolve(attr_));
      if (in.column(idx).type != constant_.type()) {
        return Status::TypeError("selection constant '" +
                                 constant_.ToString() + "' does not match " +
                                 "type of attribute '" + attr_ + "'");
      }
      return in;
    }
    case ExprKind::kSelectAttrEq: {
      PCDB_ASSIGN_OR_RETURN(Schema in, left_->OutputSchema(db));
      PCDB_ASSIGN_OR_RETURN(size_t a, in.Resolve(attr_));
      PCDB_ASSIGN_OR_RETURN(size_t b, in.Resolve(attr2_));
      if (in.column(a).type != in.column(b).type) {
        return Status::TypeError("attribute equality between '" + attr_ +
                                 "' and '" + attr2_ +
                                 "' compares different types");
      }
      return in;
    }
    case ExprKind::kProjectOut: {
      PCDB_ASSIGN_OR_RETURN(Schema in, left_->OutputSchema(db));
      PCDB_ASSIGN_OR_RETURN(size_t idx, in.Resolve(attr_));
      return in.WithoutColumn(idx);
    }
    case ExprKind::kRearrange: {
      PCDB_ASSIGN_OR_RETURN(Schema in, left_->OutputSchema(db));
      std::vector<size_t> indices;
      indices.reserve(attrs_.size());
      for (const std::string& a : attrs_) {
        PCDB_ASSIGN_OR_RETURN(size_t idx, in.Resolve(a));
        indices.push_back(idx);
      }
      return in.Select(indices);
    }
    case ExprKind::kJoin: {
      PCDB_ASSIGN_OR_RETURN(Schema lhs, left_->OutputSchema(db));
      PCDB_ASSIGN_OR_RETURN(Schema rhs, right_->OutputSchema(db));
      if (!attr_.empty()) {
        PCDB_ASSIGN_OR_RETURN(size_t a, lhs.Resolve(attr_));
        PCDB_ASSIGN_OR_RETURN(size_t b, rhs.Resolve(attr2_));
        if (lhs.column(a).type != rhs.column(b).type) {
          return Status::TypeError("join between '" + attr_ + "' and '" +
                                   attr2_ + "' compares different types");
        }
      }
      return lhs.Concat(rhs);
    }
    case ExprKind::kSort: {
      PCDB_ASSIGN_OR_RETURN(Schema in, left_->OutputSchema(db));
      for (const std::string& a : attrs_) {
        PCDB_RETURN_NOT_OK(in.Resolve(a).status());
      }
      return in;
    }
    case ExprKind::kLimit:
      return left_->OutputSchema(db);
    case ExprKind::kUnion: {
      PCDB_ASSIGN_OR_RETURN(Schema lhs, left_->OutputSchema(db));
      PCDB_ASSIGN_OR_RETURN(Schema rhs, right_->OutputSchema(db));
      if (lhs.arity() != rhs.arity()) {
        return Status::TypeError("UNION ALL inputs have different arities");
      }
      for (size_t i = 0; i < lhs.arity(); ++i) {
        if (lhs.column(i).type != rhs.column(i).type) {
          return Status::TypeError(
              "UNION ALL inputs disagree on the type of column " +
              std::to_string(i));
        }
      }
      return lhs;
    }
    case ExprKind::kAggregate: {
      PCDB_ASSIGN_OR_RETURN(Schema in, left_->OutputSchema(db));
      std::vector<Column> cols;
      for (const std::string& g : attrs_) {
        PCDB_ASSIGN_OR_RETURN(size_t idx, in.Resolve(g));
        cols.push_back(in.column(idx));
      }
      for (const AggSpec& agg : aggs_) {
        ValueType input_type = ValueType::kInt64;
        if (!agg.attr.empty()) {
          PCDB_ASSIGN_OR_RETURN(size_t idx, in.Resolve(agg.attr));
          input_type = in.column(idx).type;
          if (agg.func != AggFunc::kMin && agg.func != AggFunc::kMax &&
              agg.func != AggFunc::kCount &&
              input_type == ValueType::kString) {
            return Status::TypeError(std::string(AggFuncToString(agg.func)) +
                                     " over string attribute '" + agg.attr +
                                     "'");
          }
        } else if (agg.func != AggFunc::kCount) {
          return Status::InvalidArgument(
              std::string(AggFuncToString(agg.func)) +
              " requires an attribute argument");
        }
        std::string name = agg.output_name;
        if (name.empty()) {
          name = std::string(AggFuncToString(agg.func)) + "(" +
                 (agg.attr.empty() ? "*" : agg.attr) + ")";
        }
        cols.push_back(Column{name, AggOutputType(agg.func, input_type)});
      }
      return Schema(std::move(cols));
    }
  }
  return Status::Internal("unhandled expression kind");
}

std::string Expr::ToString() const {
  switch (kind_) {
    case ExprKind::kScan:
      return alias_.empty() ? "Scan(" + table_name_ + ")"
                            : "Scan(" + table_name_ + " AS " + alias_ + ")";
    case ExprKind::kSelectConst:
      return "σ[" + attr_ + "=" + constant_.ToString() + "](" +
             left_->ToString() + ")";
    case ExprKind::kSelectAttrEq:
      return "σ[" + attr_ + "=" + attr2_ + "](" + left_->ToString() + ")";
    case ExprKind::kProjectOut:
      return "π[¬" + attr_ + "](" + left_->ToString() + ")";
    case ExprKind::kRearrange: {
      std::string list;
      for (size_t i = 0; i < attrs_.size(); ++i) {
        if (i > 0) list += ",";
        list += attrs_[i];
      }
      return "π[" + list + "](" + left_->ToString() + ")";
    }
    case ExprKind::kJoin: {
      std::string out = "(";
      out += left_->ToString();
      if (attr_.empty()) {
        out += " × ";
      } else {
        out += " ⋈[" + attr_ + "=" + attr2_ + "] ";
      }
      out += right_->ToString();
      out += ")";
      return out;
    }
    case ExprKind::kSort: {
      std::string list;
      for (size_t i = 0; i < attrs_.size(); ++i) {
        if (i > 0) list += ",";
        list += attrs_[i];
        if (i < sort_desc_.size() && sort_desc_[i]) list += " DESC";
      }
      return "τ[" + list + "](" + left_->ToString() + ")";
    }
    case ExprKind::kLimit:
      return "limit[" + std::to_string(limit_) + "](" + left_->ToString() +
             ")";
    case ExprKind::kUnion: {
      std::string out = "(";
      out += left_->ToString();
      out += " ∪ ";
      out += right_->ToString();
      out += ")";
      return out;
    }
    case ExprKind::kAggregate: {
      std::string spec = "γ[";
      for (size_t i = 0; i < attrs_.size(); ++i) {
        if (i > 0) spec += ",";
        spec += attrs_[i];
      }
      for (const AggSpec& agg : aggs_) {
        if (spec.back() != '[') spec += ",";
        spec += std::string(AggFuncToString(agg.func)) + "(" +
                (agg.attr.empty() ? "*" : agg.attr) + ")";
      }
      return spec + "](" + left_->ToString() + ")";
    }
  }
  return "?";
}

std::vector<std::string> Expr::ScannedTables() const {
  std::vector<std::string> out;
  if (kind_ == ExprKind::kScan) {
    out.push_back(table_name_);
    return out;
  }
  if (left_) {
    auto l = left_->ScannedTables();
    out.insert(out.end(), l.begin(), l.end());
  }
  if (right_) {
    auto r = right_->ScannedTables();
    out.insert(out.end(), r.begin(), r.end());
  }
  return out;
}

ExprPtr Expr::Scan(std::string table_name, std::string alias) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kScan;
  e->table_name_ = std::move(table_name);
  e->alias_ = std::move(alias);
  return e;
}

ExprPtr Expr::SelectConst(ExprPtr input, std::string attr, Value constant) {
  PCDB_CHECK(input != nullptr);
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kSelectConst;
  e->left_ = std::move(input);
  e->attr_ = std::move(attr);
  e->constant_ = std::move(constant);
  return e;
}

ExprPtr Expr::SelectAttrEq(ExprPtr input, std::string attr_a,
                           std::string attr_b) {
  PCDB_CHECK(input != nullptr);
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kSelectAttrEq;
  e->left_ = std::move(input);
  e->attr_ = std::move(attr_a);
  e->attr2_ = std::move(attr_b);
  return e;
}

ExprPtr Expr::ProjectOut(ExprPtr input, std::string attr) {
  PCDB_CHECK(input != nullptr);
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kProjectOut;
  e->left_ = std::move(input);
  e->attr_ = std::move(attr);
  return e;
}

ExprPtr Expr::Rearrange(ExprPtr input, std::vector<std::string> attrs) {
  PCDB_CHECK(input != nullptr);
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kRearrange;
  e->left_ = std::move(input);
  e->attrs_ = std::move(attrs);
  return e;
}

ExprPtr Expr::Join(ExprPtr left, ExprPtr right, std::string left_attr,
                   std::string right_attr) {
  PCDB_CHECK(left != nullptr && right != nullptr);
  PCDB_CHECK(!left_attr.empty() && !right_attr.empty());
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kJoin;
  e->left_ = std::move(left);
  e->right_ = std::move(right);
  e->attr_ = std::move(left_attr);
  e->attr2_ = std::move(right_attr);
  return e;
}

ExprPtr Expr::CrossJoin(ExprPtr left, ExprPtr right) {
  PCDB_CHECK(left != nullptr && right != nullptr);
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kJoin;
  e->left_ = std::move(left);
  e->right_ = std::move(right);
  return e;
}

ExprPtr Expr::Aggregate(ExprPtr input, std::vector<std::string> group_by,
                        std::vector<AggSpec> aggs) {
  PCDB_CHECK(input != nullptr);
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kAggregate;
  e->left_ = std::move(input);
  e->attrs_ = std::move(group_by);
  e->aggs_ = std::move(aggs);
  return e;
}

ExprPtr Expr::Sort(ExprPtr input, std::vector<std::string> attrs,
                   std::vector<bool> descending) {
  PCDB_CHECK(input != nullptr);
  PCDB_CHECK(descending.empty() || descending.size() == attrs.size());
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kSort;
  e->left_ = std::move(input);
  e->attrs_ = std::move(attrs);
  e->sort_desc_ = std::move(descending);
  return e;
}

ExprPtr Expr::Limit(ExprPtr input, size_t count) {
  PCDB_CHECK(input != nullptr);
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kLimit;
  e->left_ = std::move(input);
  e->limit_ = count;
  return e;
}

ExprPtr Expr::Union(ExprPtr left, ExprPtr right) {
  PCDB_CHECK(left != nullptr && right != nullptr);
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kUnion;
  e->left_ = std::move(left);
  e->right_ = std::move(right);
  return e;
}

}  // namespace pcdb
