#ifndef PCDB_RELATIONAL_LINEAGE_H_
#define PCDB_RELATIONAL_LINEAGE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "relational/database.h"
#include "relational/expr.h"
#include "relational/table.h"

namespace pcdb {

/// \brief A query answer with why-provenance: for every output row, the
/// base-table rows that produced it.
///
/// Supports the SPJ fragment plus sort and limit; aggregation and union
/// merge provenance across rows and are rejected with Unimplemented.
struct LineageTable {
  Table data;
  /// The base tables scanned by the plan, in depth-first (left-to-right)
  /// order; lineage entries are parallel to this list.
  std::vector<std::string> scans;
  /// lineage[r][s] is the row index into table scans[s] that contributed
  /// to output row r.
  std::vector<std::vector<uint32_t>> lineage;
};

/// Evaluates `expr` while tracking why-provenance. The output bag equals
/// Evaluate(expr, db)'s (possibly in a different row order).
[[nodiscard]] Result<LineageTable> EvaluateWithLineage(const Expr& expr,
                                         const Database& db);

[[nodiscard]] inline Result<LineageTable> EvaluateWithLineage(const ExprPtr& expr,
                                                const Database& db) {
  return EvaluateWithLineage(*expr, db);
}

}  // namespace pcdb

#endif  // PCDB_RELATIONAL_LINEAGE_H_
