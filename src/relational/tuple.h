#ifndef PCDB_RELATIONAL_TUPLE_H_
#define PCDB_RELATIONAL_TUPLE_H_

#include <string>
#include <vector>

#include "common/value.h"

namespace pcdb {

/// \brief A database record: a sequence of constants (§3.1).
using Tuple = std::vector<Value>;

/// Hash of a whole tuple, consistent with operator== on vectors.
size_t HashTuple(const Tuple& t);

/// "(v1, v2, ...)" for diagnostics and example output.
std::string TupleToString(const Tuple& t);

struct TupleHash {
  size_t operator()(const Tuple& t) const { return HashTuple(t); }
};

}  // namespace pcdb

#endif  // PCDB_RELATIONAL_TUPLE_H_
