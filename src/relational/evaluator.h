#ifndef PCDB_RELATIONAL_EVALUATOR_H_
#define PCDB_RELATIONAL_EVALUATOR_H_

#include "common/result.h"
#include "relational/database.h"
#include "relational/expr.h"
#include "relational/table.h"

namespace pcdb {

/// \brief Evaluates a relational algebra expression over a database
/// instance (Q(D) in §3.1), under bag semantics.
///
/// Joins use hash joins on the equality attribute; aggregation uses hash
/// grouping. Fails with a Status on unknown tables, unresolvable or
/// ambiguous attributes, and type mismatches.
Result<Table> Evaluate(const Expr& expr, const Database& db);

inline Result<Table> Evaluate(const ExprPtr& expr, const Database& db) {
  return Evaluate(*expr, db);
}

/// Applies only the root operator of `expr` to already-evaluated child
/// results (`left`/`right` are ignored where the operator takes fewer
/// inputs; kScan takes none). Used by the annotated evaluator
/// (pattern/annotated_eval.h) to run the data plan and the metadata plan
/// in lockstep over shared intermediates.
Result<Table> ApplyRootOperator(const Expr& expr, const Database& db,
                                Table left, Table right);

}  // namespace pcdb

#endif  // PCDB_RELATIONAL_EVALUATOR_H_
