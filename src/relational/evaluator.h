#ifndef PCDB_RELATIONAL_EVALUATOR_H_
#define PCDB_RELATIONAL_EVALUATOR_H_

#include <cstddef>

#include "common/exec_context.h"
#include "common/result.h"
#include "relational/database.h"
#include "relational/expr.h"
#include "relational/table.h"

namespace pcdb {

class ThreadPool;

/// \brief Knobs for relational evaluation.
struct EvalOptions {
  /// Worker threads for the hash-join probe phase. 1 = serial. The
  /// parallel probe chunks the probe side over a shared read-only build
  /// index and concatenates per-chunk outputs in chunk order, so the
  /// result rows are bit-identical to the serial evaluation.
  size_t num_threads = 1;
};

/// \brief Evaluates a relational algebra expression over a database
/// instance (Q(D) in §3.1), under bag semantics.
///
/// Joins use hash joins on the equality attribute; aggregation uses hash
/// grouping. Fails with a Status on unknown tables, unresolvable or
/// ambiguous attributes, and type mismatches.
[[nodiscard]] Result<Table> Evaluate(const Expr& expr, const Database& db);

[[nodiscard]] Result<Table> Evaluate(const Expr& expr, const Database& db,
                       const EvalOptions& options);

/// Governed evaluation: `ctx` is polled at every operator boundary and
/// inside join probe loops, so a cancelled token, an expired deadline,
/// or a tripped row budget stops the plan cooperatively (kCancelled /
/// kTimeout / kResourceExhausted) instead of running to completion.
/// Injected faults (common/failpoint.h) and task exceptions surface as
/// error Statuses — this entry point never terminates the process.
[[nodiscard]] Result<Table> Evaluate(const Expr& expr, const Database& db,
                       const EvalOptions& options, const ExecContext& ctx);

[[nodiscard]] inline Result<Table> Evaluate(const ExprPtr& expr, const Database& db) {
  return Evaluate(*expr, db);
}

[[nodiscard]] inline Result<Table> Evaluate(const ExprPtr& expr, const Database& db,
                              const EvalOptions& options) {
  return Evaluate(*expr, db, options);
}

[[nodiscard]] inline Result<Table> Evaluate(const ExprPtr& expr, const Database& db,
                              const EvalOptions& options,
                              const ExecContext& ctx) {
  return Evaluate(*expr, db, options, ctx);
}

/// Applies only the root operator of `expr` to already-evaluated child
/// results (`left`/`right` are ignored where the operator takes fewer
/// inputs; kScan takes none). Used by the annotated evaluator
/// (pattern/annotated_eval.h) to run the data plan and the metadata plan
/// in lockstep over shared intermediates. A non-null `pool` parallelizes
/// the hash-join probe phase.
[[nodiscard]] Result<Table> ApplyRootOperator(const Expr& expr, const Database& db,
                                Table left, Table right,
                                ThreadPool* pool = nullptr);

/// Governed single-operator application: fires the "eval.operator"
/// failpoint, polls `ctx` on entry, and checks the operator's output
/// row count against the row budget.
[[nodiscard]] Result<Table> ApplyRootOperator(const Expr& expr, const Database& db,
                                Table left, Table right, ThreadPool* pool,
                                const ExecContext& ctx);

namespace internal {

/// Capacity actually reserved for a cartesian product of `lhs_rows` ×
/// `rhs_rows` tuples: the true product, clamped so that a huge (or
/// size_t-overflowing) row-count product cannot request absurd capacity
/// up front. Rows beyond the clamp grow the vector normally.
size_t CartesianReserve(size_t lhs_rows, size_t rhs_rows);

}  // namespace internal

}  // namespace pcdb

#endif  // PCDB_RELATIONAL_EVALUATOR_H_
