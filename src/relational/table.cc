#include "relational/table.h"

#include <algorithm>
#include <unordered_map>

namespace pcdb {

Status Table::Append(Tuple row) {
  if (row.size() != schema_.arity()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) +
        " does not match schema arity " + std::to_string(schema_.arity()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (row[i].type() != schema_.column(i).type) {
      return Status::TypeError("column '" + schema_.column(i).name +
                               "' expects " +
                               ValueTypeToString(schema_.column(i).type) +
                               " but row has " +
                               ValueTypeToString(row[i].type()) + " value '" +
                               row[i].ToString() + "'");
    }
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

void Table::Sort() { std::sort(rows_.begin(), rows_.end()); }

bool Table::BagEquals(const Table& other) const {
  if (!(schema_ == other.schema_)) return false;
  if (rows_.size() != other.rows_.size()) return false;
  std::unordered_map<Tuple, int64_t, TupleHash> counts;
  for (const Tuple& t : rows_) counts[t] += 1;
  for (const Tuple& t : other.rows_) {
    auto it = counts.find(t);
    if (it == counts.end() || it->second == 0) return false;
    it->second -= 1;
  }
  return true;
}

bool Table::BagContainedIn(const Table& other) const {
  if (rows_.size() > other.rows_.size()) return false;
  std::unordered_map<Tuple, int64_t, TupleHash> counts;
  for (const Tuple& t : other.rows_) counts[t] += 1;
  for (const Tuple& t : rows_) {
    auto it = counts.find(t);
    if (it == counts.end() || it->second == 0) return false;
    it->second -= 1;
  }
  return true;
}

std::vector<Value> Table::DistinctValues(size_t col) const {
  std::unordered_map<Value, bool, ValueHash> seen;
  std::vector<Value> out;
  for (const Tuple& t : rows_) {
    auto [it, inserted] = seen.emplace(t[col], true);
    if (inserted) out.push_back(t[col]);
  }
  return out;
}

std::string Table::ToString(size_t max_rows) const {
  std::vector<size_t> widths(schema_.arity());
  std::vector<std::vector<std::string>> cells;
  for (size_t i = 0; i < schema_.arity(); ++i) {
    widths[i] = schema_.column(i).name.size();
  }
  size_t shown = std::min(max_rows, rows_.size());
  cells.reserve(shown);
  for (size_t r = 0; r < shown; ++r) {
    std::vector<std::string> row_cells;
    row_cells.reserve(schema_.arity());
    for (size_t i = 0; i < schema_.arity(); ++i) {
      row_cells.push_back(rows_[r][i].ToString());
      widths[i] = std::max(widths[i], row_cells.back().size());
    }
    cells.push_back(std::move(row_cells));
  }
  std::string out;
  auto emit_row = [&](const std::vector<std::string>& row_cells) {
    out += "|";
    for (size_t i = 0; i < row_cells.size(); ++i) {
      out += " ";
      out += row_cells[i];
      out.append(widths[i] - row_cells[i].size(), ' ');
      out += " |";
    }
    out += "\n";
  };
  std::vector<std::string> header;
  header.reserve(schema_.arity());
  for (size_t i = 0; i < schema_.arity(); ++i) {
    header.push_back(schema_.column(i).name);
  }
  emit_row(header);
  out += "|";
  for (size_t i = 0; i < schema_.arity(); ++i) {
    out.append(widths[i] + 2, '-');
    out += "|";
  }
  out += "\n";
  for (const auto& row_cells : cells) emit_row(row_cells);
  if (shown < rows_.size()) {
    out += "... (" + std::to_string(rows_.size() - shown) + " more rows)\n";
  }
  return out;
}

}  // namespace pcdb
