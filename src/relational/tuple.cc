#include "relational/tuple.h"

namespace pcdb {

size_t HashTuple(const Tuple& t) {
  size_t seed = 0x51ed270b83f1d5b1ULL;
  for (const Value& v : t) seed = HashCombine(seed, v.Hash());
  return seed;
}

std::string TupleToString(const Tuple& t) {
  std::string out = "(";
  for (size_t i = 0; i < t.size(); ++i) {
    if (i > 0) out += ", ";
    out += t[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace pcdb
