#include "relational/lineage.h"

#include <algorithm>
#include <unordered_map>

#include "common/logging.h"

namespace pcdb {
namespace {

/// One in-flight row with its provenance (indices parallel to the scans
/// discovered so far in this subtree).
struct LRow {
  Tuple tuple;
  std::vector<uint32_t> sources;
};

struct Intermediate {
  Schema schema;
  std::vector<LRow> rows;
  std::vector<std::string> scans;
};

class LineageEvaluator {
 public:
  explicit LineageEvaluator(const Database& db) : db_(db) {}

  Result<Intermediate> Eval(const Expr& expr) {
    switch (expr.kind()) {
      case ExprKind::kScan: {
        PCDB_ASSIGN_OR_RETURN(const Table* table,
                              db_.GetTable(expr.table_name()));
        PCDB_ASSIGN_OR_RETURN(Schema schema, expr.OutputSchema(db_));
        Intermediate out{std::move(schema), {}, {expr.table_name()}};
        out.rows.reserve(table->num_rows());
        for (size_t r = 0; r < table->num_rows(); ++r) {
          out.rows.push_back(
              LRow{table->row(r), {static_cast<uint32_t>(r)}});
        }
        return out;
      }
      case ExprKind::kSelectConst: {
        PCDB_ASSIGN_OR_RETURN(Intermediate in, Eval(*expr.left()));
        PCDB_ASSIGN_OR_RETURN(size_t idx, in.schema.Resolve(expr.attr()));
        Intermediate out{in.schema, {}, in.scans};
        for (LRow& row : in.rows) {
          if (row.tuple[idx] == expr.constant()) {
            out.rows.push_back(std::move(row));
          }
        }
        return out;
      }
      case ExprKind::kSelectAttrEq: {
        PCDB_ASSIGN_OR_RETURN(Intermediate in, Eval(*expr.left()));
        PCDB_ASSIGN_OR_RETURN(size_t a, in.schema.Resolve(expr.attr()));
        PCDB_ASSIGN_OR_RETURN(size_t b, in.schema.Resolve(expr.attr2()));
        Intermediate out{in.schema, {}, in.scans};
        for (LRow& row : in.rows) {
          if (row.tuple[a] == row.tuple[b]) out.rows.push_back(std::move(row));
        }
        return out;
      }
      case ExprKind::kProjectOut: {
        PCDB_ASSIGN_OR_RETURN(Intermediate in, Eval(*expr.left()));
        PCDB_ASSIGN_OR_RETURN(size_t idx, in.schema.Resolve(expr.attr()));
        Intermediate out{in.schema.WithoutColumn(idx), {}, in.scans};
        for (LRow& row : in.rows) {
          row.tuple.erase(row.tuple.begin() + static_cast<long>(idx));
          out.rows.push_back(std::move(row));
        }
        return out;
      }
      case ExprKind::kRearrange: {
        PCDB_ASSIGN_OR_RETURN(Intermediate in, Eval(*expr.left()));
        std::vector<size_t> indices;
        for (const std::string& a : expr.attrs()) {
          PCDB_ASSIGN_OR_RETURN(size_t idx, in.schema.Resolve(a));
          indices.push_back(idx);
        }
        Intermediate out{in.schema.Select(indices), {}, in.scans};
        for (LRow& row : in.rows) {
          Tuple selected;
          selected.reserve(indices.size());
          for (size_t i : indices) selected.push_back(row.tuple[i]);
          out.rows.push_back(LRow{std::move(selected),
                                  std::move(row.sources)});
        }
        return out;
      }
      case ExprKind::kJoin: {
        PCDB_ASSIGN_OR_RETURN(Intermediate lhs, Eval(*expr.left()));
        PCDB_ASSIGN_OR_RETURN(Intermediate rhs, Eval(*expr.right()));
        Intermediate out{lhs.schema.Concat(rhs.schema), {}, lhs.scans};
        out.scans.insert(out.scans.end(), rhs.scans.begin(),
                         rhs.scans.end());
        auto emit = [&](const LRow& l, const LRow& r) {
          LRow joined;
          joined.tuple = l.tuple;
          joined.tuple.insert(joined.tuple.end(), r.tuple.begin(),
                              r.tuple.end());
          joined.sources = l.sources;
          joined.sources.insert(joined.sources.end(), r.sources.begin(),
                                r.sources.end());
          out.rows.push_back(std::move(joined));
        };
        if (expr.attr().empty()) {
          for (const LRow& l : lhs.rows) {
            for (const LRow& r : rhs.rows) emit(l, r);
          }
          return out;
        }
        PCDB_ASSIGN_OR_RETURN(size_t a, lhs.schema.Resolve(expr.attr()));
        PCDB_ASSIGN_OR_RETURN(size_t b, rhs.schema.Resolve(expr.attr2()));
        std::unordered_multimap<Value, const LRow*, ValueHash> index;
        index.reserve(rhs.rows.size());
        for (const LRow& r : rhs.rows) index.emplace(r.tuple[b], &r);
        for (const LRow& l : lhs.rows) {
          auto [begin, end] = index.equal_range(l.tuple[a]);
          for (auto it = begin; it != end; ++it) emit(l, *it->second);
        }
        return out;
      }
      case ExprKind::kSort: {
        PCDB_ASSIGN_OR_RETURN(Intermediate in, Eval(*expr.left()));
        std::vector<size_t> keys;
        for (const std::string& a : expr.attrs()) {
          PCDB_ASSIGN_OR_RETURN(size_t idx, in.schema.Resolve(a));
          keys.push_back(idx);
        }
        const std::vector<bool>& desc = expr.sort_descending();
        std::stable_sort(in.rows.begin(), in.rows.end(),
                         [&](const LRow& x, const LRow& y) {
                           for (size_t k = 0; k < keys.size(); ++k) {
                             const Value& vx = x.tuple[keys[k]];
                             const Value& vy = y.tuple[keys[k]];
                             if (vx == vy) continue;
                             bool less = vx < vy;
                             return (k < desc.size() && desc[k]) ? !less
                                                                 : less;
                           }
                           return false;
                         });
        return in;
      }
      case ExprKind::kLimit: {
        PCDB_ASSIGN_OR_RETURN(Intermediate in, Eval(*expr.left()));
        if (in.rows.size() > expr.limit()) in.rows.resize(expr.limit());
        return in;
      }
      case ExprKind::kAggregate:
      case ExprKind::kUnion:
        return Status::Unimplemented(
            "lineage tracking supports the SPJ fragment (plus sort/limit); "
            "aggregation and union merge provenance across rows");
    }
    return Status::Internal("unhandled expression kind");
  }

 private:
  const Database& db_;
};

}  // namespace

Result<LineageTable> EvaluateWithLineage(const Expr& expr,
                                         const Database& db) {
  LineageEvaluator evaluator(db);
  PCDB_ASSIGN_OR_RETURN(Intermediate result, evaluator.Eval(expr));
  LineageTable out;
  out.data = Table(std::move(result.schema));
  out.scans = std::move(result.scans);
  out.data.Reserve(result.rows.size());
  out.lineage.reserve(result.rows.size());
  for (LRow& row : result.rows) {
    out.data.AppendUnchecked(std::move(row.tuple));
    out.lineage.push_back(std::move(row.sources));
  }
  return out;
}

}  // namespace pcdb
