#ifndef PCDB_RELATIONAL_EXPR_H_
#define PCDB_RELATIONAL_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "relational/database.h"
#include "relational/schema.h"

namespace pcdb {

/// \brief Kinds of relational algebra operators (the SPJ fragment of §4.1
/// plus the derived operators needed for single-block SQL).
enum class ExprKind {
  /// Leaf: reads a base table, optionally under an alias that qualifies
  /// its column names.
  kScan,
  /// σ_{A=d}: selection by constant.
  kSelectConst,
  /// σ_{A=B}: selection by attribute equality.
  kSelectAttrEq,
  /// π_{¬A}: atomic projection that removes exactly one attribute (the
  /// paper's primitive; classical projection is derived from it).
  kProjectOut,
  /// Permutes / duplicates columns (derived; needed for SQL SELECT lists
  /// that reorder attributes). Row-bijective, so patterns map through it
  /// cell-for-cell.
  kRearrange,
  /// Equijoin on one attribute pair, or cartesian product when no
  /// condition is given. Multi-condition joins are expressed as a join
  /// plus kSelectAttrEq operators on top.
  kJoin,
  /// Group-by with aggregate functions (Appendix B extension).
  kAggregate,
  /// ORDER BY: stable sort on a list of attributes. A bag bijection —
  /// patterns pass through unchanged.
  kSort,
  /// LIMIT k: the first k rows of the input. Completeness survives a
  /// limit only when the *entire* input is complete (otherwise unseen
  /// rows could enter or displace the prefix), so the pattern operator
  /// passes patterns through iff one of them is all-wildcards.
  kLimit,
  /// UNION ALL: bag union of two inputs with positionally compatible
  /// schemas. A pattern holds over the union iff it holds over both
  /// inputs, so the pattern operator unifies pattern pairs.
  kUnion,
};

/// \brief Aggregate functions supported by kAggregate (Appendix B).
enum class AggFunc { kCount, kSum, kMin, kMax, kAvg };

const char* AggFuncToString(AggFunc func);

/// \brief One aggregate output column: FUNC(attr) AS output_name.
/// For COUNT(*), `attr` is empty.
struct AggSpec {
  AggFunc func = AggFunc::kCount;
  std::string attr;
  std::string output_name;
};

class Expr;
/// Expression nodes are immutable and shared; plans are DAG-friendly.
using ExprPtr = std::shared_ptr<const Expr>;

/// \brief An immutable relational algebra expression node.
///
/// Construct via the factory functions below (Scan, SelectConst, ...).
/// The same tree drives both the data evaluator (evaluator.h) and the
/// pattern algebra (pattern/algebra.h), which is the paper's central
/// design: metadata is computed by an operator-for-operator analogue of
/// the query plan.
class Expr {
 public:
  ExprKind kind() const { return kind_; }
  const ExprPtr& left() const { return left_; }
  const ExprPtr& right() const { return right_; }

  const std::string& table_name() const { return table_name_; }
  const std::string& alias() const { return alias_; }
  const std::string& attr() const { return attr_; }
  const std::string& attr2() const { return attr2_; }
  const Value& constant() const { return constant_; }
  const std::vector<std::string>& attrs() const { return attrs_; }
  const std::vector<AggSpec>& aggs() const { return aggs_; }
  const std::vector<bool>& sort_descending() const { return sort_desc_; }
  size_t limit() const { return limit_; }

  /// Computes the output schema of this expression against `db`,
  /// resolving all attribute references; fails on unknown tables or
  /// unresolvable/ambiguous attributes.
  [[nodiscard]] Result<Schema> OutputSchema(const Database& db) const;

  /// Algebra notation, e.g. "σ[week=2](Scan(Warnings))".
  std::string ToString() const;

  /// Names of all base tables scanned by this expression (with
  /// duplicates for self-joins).
  std::vector<std::string> ScannedTables() const;

  // --- Factory functions ---------------------------------------------

  /// Scan of base table `table_name`. If `alias` is non-empty, output
  /// columns are qualified as "<alias>.<col>".
  static ExprPtr Scan(std::string table_name, std::string alias = "");

  /// σ_{attr = constant}(input).
  static ExprPtr SelectConst(ExprPtr input, std::string attr, Value constant);

  /// σ_{attr_a = attr_b}(input).
  static ExprPtr SelectAttrEq(ExprPtr input, std::string attr_a,
                              std::string attr_b);

  /// π_{¬attr}(input): drops one attribute.
  static ExprPtr ProjectOut(ExprPtr input, std::string attr);

  /// Keeps exactly the referenced attributes, in the given order
  /// (duplicates allowed).
  static ExprPtr Rearrange(ExprPtr input, std::vector<std::string> attrs);

  /// left ⋈_{left_attr = right_attr} right.
  static ExprPtr Join(ExprPtr left, ExprPtr right, std::string left_attr,
                      std::string right_attr);

  /// left × right (cartesian product).
  static ExprPtr CrossJoin(ExprPtr left, ExprPtr right);

  /// GROUP BY group_by with the given aggregates. Output schema is the
  /// group-by columns followed by one column per AggSpec.
  static ExprPtr Aggregate(ExprPtr input, std::vector<std::string> group_by,
                           std::vector<AggSpec> aggs);

  /// ORDER BY: stable sort by `attrs`; `descending` (empty = all
  /// ascending) must match attrs in length when given.
  static ExprPtr Sort(ExprPtr input, std::vector<std::string> attrs,
                      std::vector<bool> descending = {});

  /// LIMIT: the first `count` rows.
  static ExprPtr Limit(ExprPtr input, size_t count);

  /// UNION ALL: bag union. The inputs' schemas must have equal arity and
  /// positionally equal column types (names may differ; the left side's
  /// names win).
  static ExprPtr Union(ExprPtr left, ExprPtr right);

 private:
  Expr() = default;

  ExprKind kind_ = ExprKind::kScan;
  ExprPtr left_;
  ExprPtr right_;
  std::string table_name_;
  std::string alias_;
  std::string attr_;
  std::string attr2_;
  Value constant_;
  std::vector<std::string> attrs_;
  std::vector<AggSpec> aggs_;
  std::vector<bool> sort_desc_;
  size_t limit_ = 0;
};

}  // namespace pcdb

#endif  // PCDB_RELATIONAL_EXPR_H_
