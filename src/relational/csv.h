#ifndef PCDB_RELATIONAL_CSV_H_
#define PCDB_RELATIONAL_CSV_H_

#include <string>

#include "common/exec_context.h"
#include "common/result.h"
#include "relational/table.h"

namespace pcdb {

/// \brief Parses CSV text into a table under `schema`.
///
/// The format is RFC-4180 style: fields may be double-quoted, quoted
/// fields may embed commas, newlines, and doubled ("") quotes, and a
/// record may span several physical lines. Unquoted fields are trimmed
/// of surrounding whitespace (quoted fields are verbatim); an optional
/// header line is skipped when `has_header` is true. Fails with
/// ParseError on malformed quoting and on arity or type mismatches.
[[nodiscard]] Result<Table> ReadCsvString(const std::string& text, const Schema& schema,
                            bool has_header = true);

/// Governed load: polls `ctx` per record (kTimeout/kCancelled) and
/// enforces its row budget (kResourceExhausted) so an adversarial or
/// oversized file cannot run the loader unboundedly. Failpoints
/// "csv.read" (per call) and "csv.record" (per record) are compiled in.
[[nodiscard]] Result<Table> ReadCsvString(const std::string& text, const Schema& schema,
                            bool has_header, const ExecContext& ctx);

/// Reads a CSV file from disk; see ReadCsvString.
[[nodiscard]] Result<Table> ReadCsvFile(const std::string& path, const Schema& schema,
                          bool has_header = true);

/// Governed file load; see the governed ReadCsvString.
[[nodiscard]] Result<Table> ReadCsvFile(const std::string& path, const Schema& schema,
                          bool has_header, const ExecContext& ctx);

/// Serializes `table` as CSV with a header line.
std::string WriteCsvString(const Table& table);

/// Writes `table` to `path` as CSV with a header line.
[[nodiscard]] Status WriteCsvFile(const Table& table, const std::string& path);

}  // namespace pcdb

#endif  // PCDB_RELATIONAL_CSV_H_
