#ifndef PCDB_COMMON_EXEC_CONTEXT_H_
#define PCDB_COMMON_EXEC_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <limits>
#include <memory>
#include <optional>

#include "common/status.h"
#include "common/trace_context.h"

namespace pcdb {

/// \brief Shared cooperative-cancellation flag.
///
/// A token is handed to an ExecContext and retained by the caller; any
/// thread may Cancel() it, and every governed loop observes the flag at
/// its next checkpoint. Purely cooperative: nothing is interrupted
/// mid-operation, so partial state is always destroyed cleanly.
class CancellationToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// \brief Execution governor threaded through every long-running entry
/// point (Evaluate, EvaluateAnnotated, ComputeQueryPatterns, Minimize*):
/// a cancellation token, a deadline, and row/pattern/memory budgets.
///
/// A default-constructed context is unbounded and free to check; bounded
/// contexts are checked at operator boundaries and inside chunked loops.
/// Violations map to Status codes:
///   - cancellation        -> kCancelled
///   - deadline exceeded   -> kTimeout
///   - any budget exceeded -> kResourceExhausted
///
/// The pattern budget is special: callers that can degrade (the
/// annotated evaluator) catch kResourceExhausted from minimization and
/// fall back to a sound-but-coarser pattern summary
/// (SummarizePatterns, pattern/summary.h) instead of failing, marking
/// the result degraded.
///
/// Contexts are cheap value types; copy freely. The cancellation token
/// is shared across copies.
class ExecContext {
 public:
  using Clock = std::chrono::steady_clock;

  /// Unbounded: no deadline, no budgets, never cancelled.
  ExecContext() = default;

  /// A process-lifetime unbounded context for the legacy wrappers.
  static const ExecContext& Unbounded();

  /// Builder-style setters (each returns *this for chaining).
  ExecContext& WithDeadline(Clock::time_point deadline) {
    deadline_ = deadline;
    return *this;
  }
  /// Deadline `millis` from now; 0 trips every subsequent check.
  ExecContext& WithDeadlineAfterMillis(double millis) {
    return WithDeadline(Clock::now() +
                        std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double, std::milli>(
                                millis)));
  }
  /// Caps the rows of any single operator output (and of governed row
  /// sinks while they are being filled).
  ExecContext& WithRowBudget(size_t max_rows) {
    max_rows_ = max_rows;
    return *this;
  }
  /// Caps the size of any pattern set a minimization index must hold;
  /// the annotated evaluator degrades to a summary when this trips.
  ExecContext& WithPatternBudget(size_t max_patterns) {
    max_patterns_ = max_patterns;
    return *this;
  }
  /// Caps tracked scratch memory (pattern-index ApproxMemoryBytes);
  /// best-effort, not an allocator hook.
  ExecContext& WithMemoryBudget(size_t max_bytes) {
    max_memory_bytes_ = max_bytes;
    return *this;
  }
  ExecContext& WithCancellationToken(
      std::shared_ptr<const CancellationToken> token) {
    token_ = std::move(token);
    return *this;
  }
  /// Attaches the trace this execution belongs to. Entry points
  /// (EvaluateAnnotated, ...) install it as the calling thread's
  /// ambient context, so spans opened during evaluation join the
  /// request's trace even when the caller dispatched from another
  /// thread. Pure metadata: does not affect governance or unbounded().
  ExecContext& WithTraceContext(const TraceContext& trace) {
    trace_ = trace;
    return *this;
  }

  bool unbounded() const {
    return token_ == nullptr && !deadline_.has_value() &&
           max_rows_ == kUnlimited && max_patterns_ == kUnlimited &&
           max_memory_bytes_ == kUnlimited;
  }

  bool cancelled() const { return token_ != nullptr && token_->cancelled(); }
  bool deadline_exceeded() const {
    return deadline_.has_value() && Clock::now() >= *deadline_;
  }

  const TraceContext& trace() const { return trace_; }

  size_t row_budget() const { return max_rows_; }
  size_t pattern_budget() const { return max_patterns_; }
  size_t memory_budget() const { return max_memory_bytes_; }
  bool has_pattern_budget() const { return max_patterns_ != kUnlimited; }

  /// The checkpoint every governed loop polls: kCancelled if the token
  /// was cancelled, kTimeout if the deadline passed, OK otherwise.
  /// Cancellation wins over timeout (the caller asked first).
  [[nodiscard]] Status Check() const {
    if (cancelled()) {
      return Status::Cancelled("execution cancelled by caller");
    }
    if (deadline_exceeded()) {
      return Status::Timeout("deadline exceeded");
    }
    return Status::OK();
  }

  /// Check() plus the row budget.
  [[nodiscard]] Status CheckRows(size_t rows) const {
    PCDB_RETURN_NOT_OK(Check());
    if (rows > max_rows_) {
      return Status::ResourceExhausted(
          "row budget exceeded: " + std::to_string(rows) + " > " +
          std::to_string(max_rows_));
    }
    return Status::OK();
  }

  /// The pattern budget alone (no deadline poll — callers pair it with
  /// Check()). Callers that can degrade treat this kResourceExhausted
  /// as "summarize", not "fail".
  [[nodiscard]] Status CheckPatterns(size_t patterns) const {
    if (patterns > max_patterns_) {
      return Status::ResourceExhausted(
          "pattern budget exceeded: " + std::to_string(patterns) + " > " +
          std::to_string(max_patterns_));
    }
    return Status::OK();
  }

  /// The memory budget alone.
  [[nodiscard]] Status CheckMemory(size_t bytes) const {
    if (bytes > max_memory_bytes_) {
      return Status::ResourceExhausted(
          "memory budget exceeded: " + std::to_string(bytes) + " > " +
          std::to_string(max_memory_bytes_) + " bytes");
    }
    return Status::OK();
  }

 private:
  static constexpr size_t kUnlimited = std::numeric_limits<size_t>::max();

  std::shared_ptr<const CancellationToken> token_;
  TraceContext trace_;
  std::optional<Clock::time_point> deadline_;
  size_t max_rows_ = kUnlimited;
  size_t max_patterns_ = kUnlimited;
  size_t max_memory_bytes_ = kUnlimited;
};

}  // namespace pcdb

#endif  // PCDB_COMMON_EXEC_CONTEXT_H_
