#include "common/failpoint.h"

#include <chrono>
#include <cstdlib>
#include <thread>

#include "common/log.h"
#include "common/result.h"

namespace pcdb {
namespace {

/// splitmix64: tiny, deterministic, seedable — good enough for fire/no-
/// fire draws and dependency-free.
uint64_t SplitMix64Next(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Maps a draw to [0, 1).
double UnitDouble(uint64_t draw) {
  return static_cast<double>(draw >> 11) * 0x1.0p-53;
}

Result<StatusCode> ParseStatusCode(const std::string& name) {
  if (name == "internal") return StatusCode::kInternal;
  if (name == "timeout") return StatusCode::kTimeout;
  if (name == "cancelled") return StatusCode::kCancelled;
  if (name == "resource_exhausted") return StatusCode::kResourceExhausted;
  if (name == "invalid_argument") return StatusCode::kInvalidArgument;
  if (name == "not_found") return StatusCode::kNotFound;
  if (name == "out_of_range") return StatusCode::kOutOfRange;
  if (name == "unavailable") return StatusCode::kUnavailable;
  return Status::ParseError("unknown status code '" + name + "'");
}

/// Parses "head(args)" into head and args; args empty when there are no
/// parentheses. Returns false on unbalanced parentheses.
bool SplitCall(const std::string& text, std::string* head,
               std::string* args) {
  const size_t open = text.find('(');
  if (open == std::string::npos) {
    *head = text;
    args->clear();
    return true;
  }
  if (text.back() != ')') return false;
  *head = text.substr(0, open);
  *args = text.substr(open + 1, text.size() - open - 2);
  return true;
}

Result<double> ParseDouble(const std::string& text) {
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (text.empty() || end != text.c_str() + text.size()) {
    return Status::ParseError("not a number: '" + text + "'");
  }
  return v;
}

/// Release/acquire: the observer typically closes over state (a metric
/// pointer) initialised just before installation; the acquire load in
/// HitSlow makes that state visible to whichever thread trips first.
std::atomic<Failpoints::TripObserver> g_trip_observer{nullptr};

}  // namespace

void Failpoints::SetTripObserver(TripObserver observer) {
  g_trip_observer.store(observer, std::memory_order_release);
}

Failpoints::Failpoints() {
  const char* env = std::getenv("PCDB_FAILPOINTS");
  if (env == nullptr || env[0] == '\0') return;
  Status status = ActivateFromString(env);
  if (!status.ok()) {
    // Never take the process down over a malformed injection spec; the
    // entries parsed before the error stay armed.
    LogWarn("PCDB_FAILPOINTS ignored entry").Str("error", status.ToString());
  }
}

Failpoints& Failpoints::Global() {
  static Failpoints* instance = new Failpoints();
  return *instance;
}

void Failpoints::Activate(const std::string& name,
                          const FailpointSpec& spec) {
  MutexLock lock(&mu_);
  Armed& armed = armed_[name];
  armed.spec = spec;
  armed.hits = 0;
  armed.fires = 0;
  armed.rng = spec.seed;
  active_count_.store(armed_.size(), std::memory_order_relaxed);
}

void Failpoints::Deactivate(const std::string& name) {
  MutexLock lock(&mu_);
  auto it = armed_.find(name);
  if (it == armed_.end()) return;
  fired_[name] += it->second.fires;
  armed_.erase(it);
  active_count_.store(armed_.size(), std::memory_order_relaxed);
}

void Failpoints::Clear() {
  MutexLock lock(&mu_);
  for (const auto& [name, armed] : armed_) fired_[name] += armed.fires;
  armed_.clear();
  active_count_.store(0, std::memory_order_relaxed);
}

bool Failpoints::IsActive(const std::string& name) const {
  MutexLock lock(&mu_);
  return armed_.count(name) != 0;
}

uint64_t Failpoints::FireCount(const std::string& name) const {
  MutexLock lock(&mu_);
  uint64_t count = 0;
  auto it = fired_.find(name);
  if (it != fired_.end()) count = it->second;
  auto armed = armed_.find(name);
  if (armed != armed_.end()) count += armed->second.fires;
  return count;
}

bool Failpoints::ShouldFire(Armed* armed) {
  ++armed->hits;
  switch (armed->spec.trigger) {
    case FailpointTrigger::kAlways:
      return true;
    case FailpointTrigger::kOnce:
      return armed->hits == 1;
    case FailpointTrigger::kEveryNth:
      return armed->hits % armed->spec.every_nth == 0;
    case FailpointTrigger::kProbability:
      return UnitDouble(SplitMix64Next(&armed->rng)) <
             armed->spec.probability;
  }
  return false;
}

Status Failpoints::HitSlow(const char* name) {
  FailpointSpec spec;
  {
    MutexLock lock(&mu_);
    auto it = armed_.find(name);
    if (it == armed_.end()) return Status::OK();
    if (!ShouldFire(&it->second)) return Status::OK();
    ++it->second.fires;
    spec = it->second.spec;
  }
  if (TripObserver observer =
          g_trip_observer.load(std::memory_order_acquire)) {
    observer();
  }
  // Act outside the lock: sleeping or throwing while holding mu_ would
  // stall or skip other sites.
  switch (spec.action) {
    case FailpointAction::kError:
      return Status(spec.code,
                    "failpoint '" + std::string(name) + "' fired");
    case FailpointAction::kThrow:
      throw FailpointError(name);
    case FailpointAction::kSleep:
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(spec.sleep_millis));
      return Status::OK();
  }
  return Status::OK();
}

Status Failpoints::ActivateFromSpec(const std::string& entry) {
  const size_t eq = entry.find('=');
  if (eq == std::string::npos || eq == 0) {
    return Status::ParseError("failpoint entry '" + entry +
                              "' is not name=spec");
  }
  const std::string name = entry.substr(0, eq);
  std::string rest = entry.substr(eq + 1);

  FailpointSpec spec;
  // Optional trigger prefix "trigger:action". The ':' separator never
  // appears inside trigger/action arguments.
  const size_t colon = rest.find(':');
  if (colon != std::string::npos) {
    std::string head;
    std::string args;
    if (!SplitCall(rest.substr(0, colon), &head, &args)) {
      return Status::ParseError("malformed trigger in '" + entry + "'");
    }
    if (head == "once") {
      spec.trigger = FailpointTrigger::kOnce;
    } else if (head == "every") {
      spec.trigger = FailpointTrigger::kEveryNth;
      PCDB_ASSIGN_OR_RETURN(double n, ParseDouble(args));
      if (n < 1) {
        return Status::ParseError("every(N) needs N >= 1 in '" + entry +
                                  "'");
      }
      spec.every_nth = static_cast<uint64_t>(n);
    } else if (head == "prob") {
      spec.trigger = FailpointTrigger::kProbability;
      const size_t comma = args.find(',');
      if (comma == std::string::npos) {
        return Status::ParseError("prob(P,SEED) needs two arguments in '" +
                                  entry + "'");
      }
      PCDB_ASSIGN_OR_RETURN(double p, ParseDouble(args.substr(0, comma)));
      PCDB_ASSIGN_OR_RETURN(double seed,
                            ParseDouble(args.substr(comma + 1)));
      spec.probability = p;
      spec.seed = static_cast<uint64_t>(seed);
    } else {
      return Status::ParseError("unknown trigger '" + head + "' in '" +
                                entry + "'");
    }
    rest = rest.substr(colon + 1);
  }

  std::string head;
  std::string args;
  if (!SplitCall(rest, &head, &args)) {
    return Status::ParseError("malformed action in '" + entry + "'");
  }
  if (head == "error") {
    spec.action = FailpointAction::kError;
    if (!args.empty()) {
      PCDB_ASSIGN_OR_RETURN(spec.code, ParseStatusCode(args));
    }
  } else if (head == "throw") {
    spec.action = FailpointAction::kThrow;
  } else if (head == "sleep") {
    spec.action = FailpointAction::kSleep;
    if (!args.empty()) {
      PCDB_ASSIGN_OR_RETURN(spec.sleep_millis, ParseDouble(args));
    }
  } else {
    return Status::ParseError("unknown action '" + head + "' in '" +
                              entry + "'");
  }
  Activate(name, spec);
  return Status::OK();
}

Status Failpoints::ActivateFromString(const std::string& spec) {
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t end = spec.find(';', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(pos, end - pos);
    if (!entry.empty()) {
      PCDB_RETURN_NOT_OK(ActivateFromSpec(entry));
    }
    pos = end + 1;
  }
  return Status::OK();
}

const std::vector<std::string>& Failpoints::AllSites() {
  // Canonical list of every PCDB_FAILPOINT / Hit site compiled into the
  // library. Tests iterate this to cover the full injection matrix; keep
  // it in sync when instrumenting new code (fault_injection_test fails
  // if an armed listed site never fires on the covering workload).
  static const std::vector<std::string>* sites = new std::vector<std::string>{
      "csv.read",          // relational/csv.cc: ReadCsvString entry
      "csv.record",        // relational/csv.cc: per parsed record
      "eval.operator",     // relational/evaluator.cc: ApplyRootOperator
      "eval.join.probe",   // relational/evaluator.cc: hash-join probe chunk
      "minimize.pattern",  // pattern/minimize.cc: per-pattern inner loop
      "minimize.shard",    // pattern/minimize.cc: per-shard task
      "annotated.operator",  // pattern/annotated_eval.cc: per plan node
      "pool.dispatch",     // common/thread_pool.cc: before each task runs
      "server.accept",     // server/net_socket.cc: Listener::Accept
      "server.read",       // server/net_socket.cc: Socket::Recv
      "server.read.short",   // server/net_socket.cc: clamps reads to 1 byte
      "server.decode",     // server/protocol.cc: per decoded frame
      "server.write",      // server/net_socket.cc: Socket::Send
      "server.ingest",     // server/server.cc: per applied write op
      "wal.open",          // durability/wal.cc: WalWriter::Open entry
      "wal.append",        // durability/wal.cc: AppendBatch entry
      "wal.append.short",  // durability/wal.cc: persists half the batch
      "wal.corrupt",       // durability/wal.cc: flips a byte pre-write
      "wal.fsync",         // durability/wal.cc: before fsync(2)
      "checkpoint.write",  // durability/checkpoint.cc: before tmp write
      "checkpoint.rename",  // durability/checkpoint.cc: before rename(2)
      "recovery.record",   // durability/wal.cc: per replayed record
  };
  return *sites;
}

}  // namespace pcdb
