#ifndef PCDB_COMMON_STATUS_H_
#define PCDB_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace pcdb {

/// \brief Error category of a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kTypeError,
  kParseError,
  kTimeout,
  kCancelled,
  kResourceExhausted,
  kUnimplemented,
  kInternal,
  /// The service cannot take the request right now (admission control
  /// shed, draining, or overload); retrying later may succeed. Distinct
  /// from kResourceExhausted, which reports a per-request budget trip.
  kUnavailable,
};

/// \brief Returns a human-readable name for a status code ("OK",
/// "Invalid argument", ...).
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of an operation that may fail, in the Arrow/RocksDB
/// idiom: library code reports errors via Status return values instead of
/// exceptions.
///
/// A default-constructed Status is OK and carries no message. Failure
/// statuses carry a code and a message describing the error.
///
/// The class is [[nodiscard]]: ignoring a returned Status is a compile
/// error under -Werror. A dropped Status (a tripped budget, an injected
/// fault, a failed decode) silently turns an "incomplete" answer into
/// one reported complete — exactly the failure mode the TC-statement
/// machinery exists to prevent. Handle it, propagate it
/// (PCDB_RETURN_NOT_OK), or discard explicitly with a void cast and a
/// reason. pcdb-analyze (unchecked-status) enforces the same rule
/// statically.
class [[nodiscard]] Status {
 public:
  /// Creates an OK status.
  Status() = default;

  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  [[nodiscard]] static Status OK() { return Status(); }
  [[nodiscard]] static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  [[nodiscard]] static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  [[nodiscard]] static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  [[nodiscard]] static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  [[nodiscard]] static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  [[nodiscard]] static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  [[nodiscard]] static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  [[nodiscard]] static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  [[nodiscard]] static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  [[nodiscard]] static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  [[nodiscard]] static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  [[nodiscard]] static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// Formats the status as "<code name>: <message>", or "OK".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string msg_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Propagates a non-OK Status from the enclosing function.
#define PCDB_RETURN_NOT_OK(expr)                 \
  do {                                           \
    ::pcdb::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                   \
  } while (false)

}  // namespace pcdb

#endif  // PCDB_COMMON_STATUS_H_
