#ifndef PCDB_COMMON_STRING_UTIL_H_
#define PCDB_COMMON_STRING_UTIL_H_

#include <string>
#include <vector>

namespace pcdb {

/// Splits `text` on `sep`; adjacent separators yield empty fields.
std::vector<std::string> SplitString(const std::string& text, char sep);

/// Joins `parts` with `sep` between elements.
std::string JoinStrings(const std::vector<std::string>& parts,
                        const std::string& sep);

/// Strips leading and trailing ASCII whitespace.
std::string TrimString(const std::string& text);

/// ASCII lower-casing.
std::string ToLower(const std::string& text);

/// ASCII upper-casing.
std::string ToUpper(const std::string& text);

/// True if `text` begins with `prefix`.
bool StartsWith(const std::string& text, const std::string& prefix);

}  // namespace pcdb

#endif  // PCDB_COMMON_STRING_UTIL_H_
