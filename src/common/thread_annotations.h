#ifndef PCDB_COMMON_THREAD_ANNOTATIONS_H_
#define PCDB_COMMON_THREAD_ANNOTATIONS_H_

#include <condition_variable>
#include <mutex>

/// \file
/// Clang Thread Safety Analysis support (-Wthread-safety) for the whole
/// codebase, plus the annotated synchronization primitives every other
/// file must use instead of raw <mutex> types (enforced by
/// tools/pcdb_lint.py).
///
/// The macros expand to the clang `thread_safety` attributes when the
/// compiler supports them and to nothing otherwise, so GCC builds are
/// unaffected. The `tsa` CMake preset compiles with clang and
/// `-Wthread-safety -Werror`, turning lock-discipline violations
/// (touching a PCDB_GUARDED_BY member without its mutex, releasing a
/// lock twice, ...) into build failures. Conventions are documented in
/// docs/STATIC_ANALYSIS.md.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define PCDB_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#endif
#endif
#ifndef PCDB_THREAD_ANNOTATION_ATTRIBUTE
#define PCDB_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op outside clang
#endif

/// Declares a class to be a lockable capability ("mutex" in diagnostics).
#define PCDB_CAPABILITY(x) PCDB_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

/// Declares an RAII class that acquires a capability in its constructor
/// and releases it in its destructor.
#define PCDB_SCOPED_CAPABILITY \
  PCDB_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

/// The annotated member may only be accessed while holding `x`.
#define PCDB_GUARDED_BY(x) PCDB_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/// The pointed-to data (not the pointer itself) is guarded by `x`.
#define PCDB_PT_GUARDED_BY(x) \
  PCDB_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/// The function may only be called while holding the given capabilities.
#define PCDB_REQUIRES(...) \
  PCDB_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

/// As PCDB_REQUIRES, but a shared (reader) hold suffices.
#define PCDB_REQUIRES_SHARED(...) \
  PCDB_THREAD_ANNOTATION_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

/// The function acquires the capability and holds it on return.
#define PCDB_ACQUIRE(...) \
  PCDB_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

/// The function releases the capability.
#define PCDB_RELEASE(...) \
  PCDB_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

/// The function acquires the capability iff it returns `result`.
#define PCDB_TRY_ACQUIRE(result, ...) \
  PCDB_THREAD_ANNOTATION_ATTRIBUTE(   \
      try_acquire_capability(result, __VA_ARGS__))

/// The caller must NOT hold the given capabilities (deadlock guard for
/// functions that acquire them internally).
#define PCDB_EXCLUDES(...) \
  PCDB_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// Lock-ordering declarations between mutexes.
#define PCDB_ACQUIRED_BEFORE(...) \
  PCDB_THREAD_ANNOTATION_ATTRIBUTE(acquired_before(__VA_ARGS__))
#define PCDB_ACQUIRED_AFTER(...) \
  PCDB_THREAD_ANNOTATION_ATTRIBUTE(acquired_after(__VA_ARGS__))

/// The function returns a reference to the given capability.
#define PCDB_RETURN_CAPABILITY(x) \
  PCDB_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

/// Asserts (at analysis time) that the capability is held.
#define PCDB_ASSERT_CAPABILITY(x) \
  PCDB_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))

/// Escape hatch for functions the analysis cannot model; every use must
/// carry a comment explaining why.
#define PCDB_NO_THREAD_SAFETY_ANALYSIS \
  PCDB_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

namespace pcdb {

/// \brief Annotated exclusive mutex; the only mutex type allowed outside
/// this header.
///
/// A thin wrapper over std::mutex that carries the `capability`
/// attribute so members can be declared PCDB_GUARDED_BY(mu_) and
/// functions PCDB_REQUIRES(mu_) / PCDB_EXCLUDES(mu_). Prefer the scoped
/// MutexLock over manual Lock/Unlock pairs.
class PCDB_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() PCDB_ACQUIRE() { mu_.lock(); }
  void Unlock() PCDB_RELEASE() { mu_.unlock(); }
  bool TryLock() PCDB_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  friend class MutexLock;
  std::mutex mu_;
};

/// \brief RAII lock over a Mutex (scoped capability).
///
/// Holds the mutex from construction to destruction. CondVar::Wait
/// atomically releases and reacquires the underlying mutex through the
/// lock, which the analysis treats as continuously held — the standard
/// condition-variable reading.
class PCDB_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) PCDB_ACQUIRE(mu) : lock_(mu->mu_) {}
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;
  ~MutexLock() PCDB_RELEASE() {}

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// \brief Condition variable paired with Mutex/MutexLock.
///
/// Wait takes the active MutexLock so it can only be called with the
/// mutex held; callers re-check their predicate in a while loop (spurious
/// wakeups are allowed through).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(MutexLock& lock) { cv_.wait(lock.lock_); }
  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace pcdb

#endif  // PCDB_COMMON_THREAD_ANNOTATIONS_H_
