#ifndef PCDB_COMMON_LOGGING_H_
#define PCDB_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace pcdb {
namespace internal_logging {

/// Accumulates a fatal-error message and aborts the process when
/// destroyed. Used by the PCDB_CHECK macro below; never instantiate
/// directly.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line) {
    stream_ << file << ":" << line << ": check failed: ";
  }

  FatalLogMessage(const FatalLogMessage&) = delete;
  FatalLogMessage& operator=(const FatalLogMessage&) = delete;

  [[noreturn]] ~FatalLogMessage() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

/// Turns the streamed fatal message into a void expression so that
/// PCDB_CHECK can appear in a ternary operator (the glog idiom).
/// operator& binds less tightly than operator<<.
struct Voidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal_logging
}  // namespace pcdb

/// Aborts with a message if `condition` is false; additional context may
/// be streamed: PCDB_CHECK(x > 0) << "x was " << x. For internal
/// invariants only (programming errors); recoverable errors use Status.
#define PCDB_CHECK(condition)                                        \
  (condition) ? (void)0                                              \
              : ::pcdb::internal_logging::Voidify() &                \
                    ::pcdb::internal_logging::FatalLogMessage(       \
                        __FILE__, __LINE__)                          \
                            .stream()                                \
                        << #condition << " "

#endif  // PCDB_COMMON_LOGGING_H_
