#include "common/exec_context.h"

namespace pcdb {

const ExecContext& ExecContext::Unbounded() {
  static const ExecContext* unbounded = new ExecContext();
  return *unbounded;
}

}  // namespace pcdb
