#include "common/value.h"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace pcdb {

const char* ValueTypeToString(ValueType type) {
  switch (type) {
    case ValueType::kInt64:
      return "INT64";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "STRING";
  }
  return "UNKNOWN";
}

Result<ValueType> ValueTypeFromString(const std::string& name) {
  std::string upper;
  upper.reserve(name.size());
  for (char c : name) upper.push_back(static_cast<char>(std::toupper(c)));
  if (upper == "INT64" || upper == "INT" || upper == "BIGINT") {
    return ValueType::kInt64;
  }
  if (upper == "DOUBLE" || upper == "FLOAT" || upper == "REAL") {
    return ValueType::kDouble;
  }
  if (upper == "STRING" || upper == "TEXT" || upper == "VARCHAR") {
    return ValueType::kString;
  }
  return Status::ParseError("unknown value type: " + name);
}

Result<double> Value::AsDouble() const {
  switch (type()) {
    case ValueType::kInt64:
      return static_cast<double>(int64());
    case ValueType::kDouble:
      return dbl();
    case ValueType::kString:
      break;
  }
  return Status::TypeError("Value::AsDouble on string value '" + str() + "'");
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kInt64:
      return std::to_string(int64());
    case ValueType::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", dbl());
      return buf;
    }
    case ValueType::kString:
      return str();
  }
  return "";
}

// GCC 12 under -fsanitize=address falsely reports the string
// alternative of the Value variant "maybe uninitialized" when the
// int64/double temporaries below are moved into Result (the
// PR105593 family of variant false positives); clang and newer GCC
// are clean. Scoped to this one function.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
Result<Value> Value::Parse(const std::string& text, ValueType type) {
  switch (type) {
    case ValueType::kInt64: {
      int64_t v = 0;
      auto [ptr, ec] =
          std::from_chars(text.data(), text.data() + text.size(), v);
      if (ec != std::errc() || ptr != text.data() + text.size()) {
        return Status::ParseError("not an integer: '" + text + "'");
      }
      return Value(v);
    }
    case ValueType::kDouble: {
      // std::from_chars for double is not available on all libstdc++
      // versions used here; strtod with full-consumption check suffices.
      char* end = nullptr;
      errno = 0;
      double v = std::strtod(text.c_str(), &end);
      if (end != text.c_str() + text.size() || text.empty()) {
        return Status::ParseError("not a double: '" + text + "'");
      }
      return Value(v);
    }
    case ValueType::kString:
      return Value(text);
  }
  return Status::Internal("unhandled value type");
}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

size_t Value::Hash() const {
  size_t seed = static_cast<size_t>(type()) * 0x9e3779b97f4a7c15ULL;
  switch (type()) {
    case ValueType::kInt64:
      return HashCombine(seed, std::hash<int64_t>{}(int64()));
    case ValueType::kDouble:
      return HashCombine(seed, std::hash<double>{}(dbl()));
    case ValueType::kString:
      return HashCombine(seed, std::hash<std::string>{}(str()));
  }
  return seed;
}

std::ostream& operator<<(std::ostream& os, const Value& v) {
  return os << v.ToString();
}

}  // namespace pcdb
