#ifndef PCDB_COMMON_LOG_H_
#define PCDB_COMMON_LOG_H_

#include <cstdint>
#include <string>
#include <string_view>

/// \file
/// Leveled structured logging: one JSON object per line, written to
/// stderr (or a test-installed sink). Usage:
///
///   LogWarn("slow query")
///       .Str("sql", sql)
///       .Num("conn", conn_id)
///       .Float("elapsed_ms", millis);
///
/// emits (one line):
///
///   {"ts_us":1723...,"level":"warn","msg":"slow query","sql":"...",
///    "conn":7,"elapsed_ms":123.4}
///
/// The event is emitted when the temporary LogEvent is destroyed at the
/// end of the full expression. Events below the minimum level (env
/// PCDB_LOG_LEVEL: debug|info|warn|error|off, default info) build no
/// string and emit nothing.
///
/// This is the only sanctioned way to write diagnostics from src/
/// (pcdb_lint.py's naked-output rule enforces it); stdout stays
/// reserved for program output (query answers, the pcdbd listening
/// line, metrics dumps).

namespace pcdb {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

/// Current minimum level; events below it are dropped without
/// formatting. Initialised once from PCDB_LOG_LEVEL.
LogLevel MinLogLevel();
void SetMinLogLevel(LogLevel level);

/// Sink for completed lines (without trailing newline). nullptr
/// restores the default stderr sink. Tests install a capturing sink.
using LogSink = void (*)(const std::string& line);
void SetLogSink(LogSink sink);

/// \brief One structured log event, built field-by-field and emitted on
/// destruction. Keys must be plain identifiers (no escaping is applied
/// to keys); values are JSON-escaped.
class LogEvent {
 public:
  LogEvent(LogLevel level, std::string_view msg);
  ~LogEvent();

  LogEvent(const LogEvent&) = delete;
  LogEvent& operator=(const LogEvent&) = delete;

  LogEvent& Str(const char* key, std::string_view value);
  LogEvent& Num(const char* key, int64_t value);
  LogEvent& Unum(const char* key, uint64_t value);
  LogEvent& Float(const char* key, double value);
  LogEvent& Bool(const char* key, bool value);

 private:
  bool enabled_;
  std::string line_;
};

inline LogEvent LogDebug(std::string_view msg) {
  return LogEvent(LogLevel::kDebug, msg);
}
inline LogEvent LogInfo(std::string_view msg) {
  return LogEvent(LogLevel::kInfo, msg);
}
inline LogEvent LogWarn(std::string_view msg) {
  return LogEvent(LogLevel::kWarn, msg);
}
inline LogEvent LogError(std::string_view msg) {
  return LogEvent(LogLevel::kError, msg);
}

/// Escapes `s` for inclusion inside a JSON string literal (quotes not
/// included). Exposed for the tracer's metadata fields and for tests.
std::string JsonEscape(std::string_view s);

}  // namespace pcdb

#endif  // PCDB_COMMON_LOG_H_
