#ifndef PCDB_COMMON_JSON_H_
#define PCDB_COMMON_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"

/// \file
/// A minimal JSON reader, grown for the coordinator's fleet STATS and
/// EXPLAIN ANALYZE aggregation (docs/DISTRIBUTED.md): it parses what
/// MetricsRegistry::ToJson and QueryProfileToJson emit — objects,
/// arrays, strings, numbers, booleans, null — nothing more exotic.
///
/// Numbers keep their source lexeme instead of being eagerly converted
/// to double: counter values are u64 and may exceed 2^53, where a
/// double round trip would silently lose precision. AsUint64/AsDouble
/// convert on demand.

namespace pcdb {

/// \brief One parsed JSON value (an owning tree).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// The boolean (valid only for kBool).
  bool bool_value() const { return bool_; }

  /// The decoded string (valid only for kString).
  const std::string& string_value() const { return scalar_; }

  /// The number's source lexeme, e.g. "1.25" or "18446744073709551615"
  /// (valid only for kNumber).
  const std::string& number_lexeme() const { return scalar_; }

  /// The number as u64; kTypeError for non-numbers, negatives, or
  /// fractional lexemes, kOutOfRange past 2^64-1.
  [[nodiscard]] Result<uint64_t> AsUint64() const;

  /// The number as i64 (gauges are signed); kTypeError for non-numbers
  /// or fractional lexemes, kOutOfRange outside i64.
  [[nodiscard]] Result<int64_t> AsInt64() const;

  /// The number as double; kTypeError for non-numbers.
  [[nodiscard]] Result<double> AsDouble() const;

  /// Array elements (valid only for kArray).
  const std::vector<JsonValue>& items() const { return items_; }

  /// Object members in source order (valid only for kObject).
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  /// First member with `key`, nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;

 private:
  friend class JsonParser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  /// String value or number lexeme, depending on kind_.
  std::string scalar_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Parses one JSON document (trailing garbage is an error). kParseError
/// on malformed input; nesting deeper than ~100 levels is rejected
/// rather than risking the stack.
[[nodiscard]] Result<JsonValue> ParseJson(std::string_view text);

}  // namespace pcdb

#endif  // PCDB_COMMON_JSON_H_
