#ifndef PCDB_COMMON_TIMER_H_
#define PCDB_COMMON_TIMER_H_

#include <chrono>

namespace pcdb {

/// \brief Monotonic wall-clock stopwatch used by the benchmark harnesses.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Reset, in milliseconds.
  double ElapsedMillis() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  /// Elapsed time in microseconds.
  double ElapsedMicros() const {
    return std::chrono::duration<double, std::micro>(Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace pcdb

#endif  // PCDB_COMMON_TIMER_H_
