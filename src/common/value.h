#ifndef PCDB_COMMON_VALUE_H_
#define PCDB_COMMON_VALUE_H_

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <variant>

#include "common/result.h"

namespace pcdb {

/// \brief Runtime type of a Value / table column.
enum class ValueType {
  kInt64 = 0,
  kDouble = 1,
  kString = 2,
};

/// Returns "INT64", "DOUBLE" or "STRING".
const char* ValueTypeToString(ValueType type);

/// Parses a type name as produced by ValueTypeToString (case-insensitive).
[[nodiscard]] Result<ValueType> ValueTypeFromString(const std::string& name);

/// \brief A dynamically typed database constant: 64-bit integer, double,
/// or string.
///
/// Values of different types never compare equal; ordering is by type
/// first, then by value, which gives a total order usable for sorting and
/// map keys. Columns are schema-typed, so in practice comparisons are
/// always within one type.
class Value {
 public:
  /// Default-constructs the integer 0.
  Value() : data_(int64_t{0}) {}
  Value(int64_t v) : data_(v) {}          // NOLINT(runtime/explicit)
  Value(int v) : data_(int64_t{v}) {}     // NOLINT(runtime/explicit)
  Value(double v) : data_(v) {}           // NOLINT(runtime/explicit)
  Value(std::string v)                    // NOLINT(runtime/explicit)
      : data_(std::move(v)) {}
  Value(const char* v)                    // NOLINT(runtime/explicit)
      : data_(std::string(v)) {}

  ValueType type() const { return static_cast<ValueType>(data_.index()); }

  bool is_int64() const { return type() == ValueType::kInt64; }
  bool is_double() const { return type() == ValueType::kDouble; }
  bool is_string() const { return type() == ValueType::kString; }

  int64_t int64() const { return std::get<int64_t>(data_); }
  double dbl() const { return std::get<double>(data_); }
  const std::string& str() const { return std::get<std::string>(data_); }

  /// Numeric content as a double; kTypeError on strings so a malformed
  /// or fault-injected aggregation input surfaces as a Status instead of
  /// terminating the process. Used by SUM/AVG.
  [[nodiscard]] Result<double> AsDouble() const;

  /// Renders the value for display: integers in decimal, doubles with
  /// minimal digits, strings verbatim.
  std::string ToString() const;

  /// Parses `text` as a value of type `type`. Fails with ParseError on
  /// malformed numeric input.
  [[nodiscard]] static Result<Value> Parse(const std::string& text, ValueType type);

  bool operator==(const Value& other) const { return data_ == other.data_; }
  bool operator!=(const Value& other) const { return !(*this == other); }
  bool operator<(const Value& other) const { return data_ < other.data_; }
  bool operator<=(const Value& other) const { return !(other < *this); }
  bool operator>(const Value& other) const { return other < *this; }
  bool operator>=(const Value& other) const { return !(*this < other); }

  /// Hash consistent with operator==.
  size_t Hash() const;

 private:
  std::variant<int64_t, double, std::string> data_;
};

std::ostream& operator<<(std::ostream& os, const Value& v);

/// Combines a new hash into a running seed (boost::hash_combine recipe).
inline size_t HashCombine(size_t seed, size_t h) {
  return seed ^ (h + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace pcdb

#endif  // PCDB_COMMON_VALUE_H_
