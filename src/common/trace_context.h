#ifndef PCDB_COMMON_TRACE_CONTEXT_H_
#define PCDB_COMMON_TRACE_CONTEXT_H_

#include <cstdint>

/// \file
/// The trace-context *carrier*: a (trace id, span id) pair riding on a
/// thread-local slot and on ExecContext, so that work hopping across
/// ThreadPool task boundaries stays attributed to the query that
/// spawned it.
///
/// This header is deliberately tiny and lives in common/ — the lowest
/// layer — because ThreadPool (common) must capture and restore the
/// context around task execution, while the tracer proper (buffers,
/// span RAII, Chrome JSON dump) lives one layer up in obs/ and is the
/// only writer of these ids. common/ never records events; it only
/// ferries the pair of integers.

namespace pcdb {

/// \brief Identifies the trace (one per query / top-level operation)
/// and the currently open span within it. `trace_id == 0` means "no
/// active trace" — spans opened under it start a fresh trace.
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
};

namespace trace_internal {
inline thread_local TraceContext g_current_trace_context;
}  // namespace trace_internal

/// The calling thread's current trace context (zero-initialised until
/// someone sets it).
inline TraceContext CurrentTraceContext() {
  return trace_internal::g_current_trace_context;
}

inline void SetCurrentTraceContext(const TraceContext& ctx) {
  trace_internal::g_current_trace_context = ctx;
}

/// \brief RAII: installs `ctx` as the thread's current trace context
/// for the enclosing scope, restoring the previous value on exit.
/// A zero `ctx` (no trace) is a no-op — the ambient context, if any,
/// stays in place. Use TraceContextSaver when an unconditional
/// save/restore is needed (e.g. around pool task execution).
class TraceContextScope {
 public:
  explicit TraceContextScope(const TraceContext& ctx) {
    if (ctx.trace_id == 0) return;
    active_ = true;
    saved_ = CurrentTraceContext();
    SetCurrentTraceContext(ctx);
  }
  ~TraceContextScope() {
    if (active_) SetCurrentTraceContext(saved_);
  }

  TraceContextScope(const TraceContextScope&) = delete;
  TraceContextScope& operator=(const TraceContextScope&) = delete;

 private:
  bool active_ = false;
  TraceContext saved_;
};

/// \brief RAII: snapshots the current context and restores it on exit,
/// unconditionally (even if it was zero). ThreadPool wraps each task in
/// one of these before overwriting the slot with the submitter's
/// context, so worker threads never leak a context between tasks.
class TraceContextSaver {
 public:
  TraceContextSaver() : saved_(CurrentTraceContext()) {}
  ~TraceContextSaver() { SetCurrentTraceContext(saved_); }

  TraceContextSaver(const TraceContextSaver&) = delete;
  TraceContextSaver& operator=(const TraceContextSaver&) = delete;

 private:
  TraceContext saved_;
};

}  // namespace pcdb

#endif  // PCDB_COMMON_TRACE_CONTEXT_H_
