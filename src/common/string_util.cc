#include "common/string_util.h"

#include <cctype>

namespace pcdb {

std::vector<std::string> SplitString(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::string current;
  for (char c : text) {
    if (c == sep) {
      out.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  out.push_back(std::move(current));
  return out;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string TrimString(const std::string& text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string ToLower(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

std::string ToUpper(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    out.push_back(static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
  }
  return out;
}

bool StartsWith(const std::string& text, const std::string& prefix) {
  return text.size() >= prefix.size() &&
         text.compare(0, prefix.size(), prefix) == 0;
}

}  // namespace pcdb
