#ifndef PCDB_COMMON_RESULT_H_
#define PCDB_COMMON_RESULT_H_

#include <cstdlib>
#include <utility>
#include <variant>

#include "common/logging.h"
#include "common/status.h"

namespace pcdb {

/// \brief Holds either a value of type T or a non-OK Status explaining why
/// no value is available (the arrow::Result idiom).
///
/// Accessing the value of a failed Result is a programming error and
/// aborts the process with the status message.
///
/// [[nodiscard]] for the same reason as Status: a discarded Result is a
/// discarded error. See status.h.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : storage_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK status (failure). Constructing a
  /// Result from an OK status is a programming error.
  Result(Status status)  // NOLINT(runtime/explicit)
      : storage_(std::move(status)) {
    PCDB_CHECK(!std::get<Status>(storage_).ok())
        << "Result constructed from OK status without a value";
  }

  bool ok() const { return std::holds_alternative<T>(storage_); }

  /// Returns the error status, or OK if this result holds a value.
  [[nodiscard]] Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(storage_);
  }

  const T& ValueOrDie() const& {
    PCDB_CHECK(ok()) << "Result::ValueOrDie on error: "
                     << std::get<Status>(storage_).ToString();
    return std::get<T>(storage_);
  }

  T& ValueOrDie() & {
    PCDB_CHECK(ok()) << "Result::ValueOrDie on error: "
                     << std::get<Status>(storage_).ToString();
    return std::get<T>(storage_);
  }

  T&& ValueOrDie() && {
    PCDB_CHECK(ok()) << "Result::ValueOrDie on error: "
                     << std::get<Status>(storage_).ToString();
    return std::move(std::get<T>(storage_));
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::variant<Status, T> storage_;
};

/// Propagates the error of a failed Result expression; otherwise assigns
/// the contained value to `lhs`.
#define PCDB_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).ValueOrDie()

#define PCDB_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define PCDB_ASSIGN_OR_RETURN_NAME(a, b) PCDB_ASSIGN_OR_RETURN_CONCAT(a, b)
#define PCDB_ASSIGN_OR_RETURN(lhs, expr)                                    \
  PCDB_ASSIGN_OR_RETURN_IMPL(PCDB_ASSIGN_OR_RETURN_NAME(_res_, __COUNTER__), \
                             lhs, expr)

}  // namespace pcdb

#endif  // PCDB_COMMON_RESULT_H_
