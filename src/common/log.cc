#include "common/log.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/trace_context.h"

namespace pcdb {

namespace {

LogLevel LevelFromEnv() {
  const char* env = std::getenv("PCDB_LOG_LEVEL");
  if (env == nullptr || env[0] == '\0') return LogLevel::kInfo;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "off") == 0) return LogLevel::kOff;
  return LogLevel::kInfo;
}

std::atomic<int> g_min_level{static_cast<int>(LevelFromEnv())};
std::atomic<LogSink> g_sink{nullptr};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
    case LogLevel::kOff:
      return "off";
  }
  return "info";
}

void StderrSink(const std::string& line) {
  // One fwrite per event keeps concurrent lines from interleaving in
  // practice (stderr is unbuffered but fwrite is atomic per call on
  // POSIX stdio).
  std::string with_newline = line;
  with_newline.push_back('\n');
  std::fwrite(with_newline.data(), 1, with_newline.size(), stderr);
}

int64_t WallMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

void AppendDouble(std::string* out, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  out->append(buf);
}

}  // namespace

LogLevel MinLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

void SetMinLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void SetLogSink(LogSink sink) {
  g_sink.store(sink, std::memory_order_release);
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

LogEvent::LogEvent(LogLevel level, std::string_view msg)
    : enabled_(level >= MinLogLevel() && level != LogLevel::kOff) {
  if (!enabled_) return;
  line_.reserve(96 + msg.size());
  line_ += "{\"ts_us\":";
  line_ += std::to_string(WallMicros());
  line_ += ",\"level\":\"";
  line_ += LevelName(level);
  line_ += "\",\"msg\":\"";
  line_ += JsonEscape(msg);
  line_ += '"';
  // Log <-> trace correlation: any line emitted under an open span
  // carries the span's ids, so one grep for a trace_id collects the
  // slow-query warnings of a fleet query across all N+1 processes.
  const TraceContext trace = CurrentTraceContext();
  if (trace.trace_id != 0) {
    line_ += ",\"trace_id\":";
    line_ += std::to_string(trace.trace_id);
    line_ += ",\"span_id\":";
    line_ += std::to_string(trace.span_id);
  }
}

LogEvent::~LogEvent() {
  if (!enabled_) return;
  line_ += '}';
  LogSink sink = g_sink.load(std::memory_order_acquire);
  if (sink != nullptr) {
    sink(line_);
  } else {
    StderrSink(line_);
  }
}

LogEvent& LogEvent::Str(const char* key, std::string_view value) {
  if (!enabled_) return *this;
  line_ += ",\"";
  line_ += key;
  line_ += "\":\"";
  line_ += JsonEscape(value);
  line_ += '"';
  return *this;
}

LogEvent& LogEvent::Num(const char* key, int64_t value) {
  if (!enabled_) return *this;
  line_ += ",\"";
  line_ += key;
  line_ += "\":";
  line_ += std::to_string(value);
  return *this;
}

LogEvent& LogEvent::Unum(const char* key, uint64_t value) {
  if (!enabled_) return *this;
  line_ += ",\"";
  line_ += key;
  line_ += "\":";
  line_ += std::to_string(value);
  return *this;
}

LogEvent& LogEvent::Float(const char* key, double value) {
  if (!enabled_) return *this;
  line_ += ",\"";
  line_ += key;
  line_ += "\":";
  AppendDouble(&line_, value);
  return *this;
}

LogEvent& LogEvent::Bool(const char* key, bool value) {
  if (!enabled_) return *this;
  line_ += ",\"";
  line_ += key;
  line_ += "\":";
  line_ += value ? "true" : "false";
  return *this;
}

}  // namespace pcdb
