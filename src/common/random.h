#ifndef PCDB_COMMON_RANDOM_H_
#define PCDB_COMMON_RANDOM_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace pcdb {

/// \brief Deterministic pseudo-random generator (xoshiro256**).
///
/// All workload generators and experiments draw from this generator so
/// that runs are reproducible given a seed; we never touch global RNG
/// state.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x1234567890abcdefULL) {
    // SplitMix64 seeding, recommended by the xoshiro authors.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit output.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). `bound` must be positive.
  uint64_t UniformUint64(uint64_t bound) {
    PCDB_CHECK(bound > 0);
    // Rejection sampling to avoid modulo bias.
    uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      uint64_t r = Next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    PCDB_CHECK(lo <= hi);
    return lo + static_cast<int64_t>(
                    UniformUint64(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// True with probability p.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Exponentially distributed double with the given rate (mean 1/rate).
  double Exponential(double rate) {
    PCDB_CHECK(rate > 0);
    double u = UniformDouble();
    if (u >= 1.0) u = 0.9999999999;
    return -std::log(1.0 - u) / rate;
  }

  /// Samples an index in [0, weights.size()) proportionally to weights.
  size_t Weighted(const std::vector<double>& weights) {
    PCDB_CHECK(!weights.empty());
    double total = 0;
    for (double w : weights) total += w;
    double x = UniformDouble() * total;
    for (size_t i = 0; i < weights.size(); ++i) {
      x -= weights[i];
      if (x <= 0) return i;
    }
    return weights.size() - 1;
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    for (size_t i = items->size(); i > 1; --i) {
      size_t j = UniformUint64(i);
      std::swap((*items)[i - 1], (*items)[j]);
    }
  }

  /// Picks a uniformly random element; `items` must be non-empty.
  template <typename T>
  const T& Pick(const std::vector<T>& items) {
    PCDB_CHECK(!items.empty());
    return items[UniformUint64(items.size())];
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace pcdb

#endif  // PCDB_COMMON_RANDOM_H_
