#ifndef PCDB_COMMON_THREAD_POOL_H_
#define PCDB_COMMON_THREAD_POOL_H_

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pcdb {

/// \brief A fixed-size pool of worker threads with a submit/wait-group
/// API.
///
/// Tasks are plain std::function<void()> jobs executed FIFO by whichever
/// worker frees up first; Wait() blocks until every task submitted so far
/// has finished (a wait group, not a shutdown). The pool is deliberately
/// work-stealing-free: callers that need deterministic results partition
/// their work into indexed tasks that each write a private, pre-allocated
/// output slot, then combine the slots in index order after Wait() — see
/// ParallelFor below. Tasks must not throw (library code is
/// exception-free; report failures through captured state).
///
/// With num_threads <= 1 no worker threads are spawned and Submit runs
/// the task inline, so serial callers pay nothing and single-threaded
/// determinism is trivially preserved.
class ThreadPool {
 public:
  /// Creates `num_threads` workers (0 and 1 both mean "inline").
  explicit ThreadPool(size_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains the queue, then joins all workers.
  ~ThreadPool();

  /// Enqueues a task (runs it inline when the pool has no workers).
  void Submit(std::function<void()> task);

  /// Blocks until all tasks submitted before this call have completed.
  void Wait();

  /// Worker count; 1 for an inline pool.
  size_t num_threads() const {
    return workers_.empty() ? 1 : workers_.size();
  }

  /// A sane default: the hardware concurrency, or 1 when unknown.
  static size_t DefaultThreadCount() {
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<size_t>(hw);
  }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;  // queued + currently executing
  bool shutting_down_ = false;
};

/// Runs `fn(i)` for every i in [0, n) on `pool`, blocking until all
/// iterations finish. Iterations are grouped into one contiguous chunk
/// per worker so that per-chunk state stays cache-local; `fn` must be
/// safe to call concurrently for distinct i. Results are deterministic
/// whenever fn(i) writes only to an i-indexed slot.
template <typename Fn>
void ParallelFor(ThreadPool* pool, size_t n, const Fn& fn) {
  if (n == 0) return;
  const size_t num_chunks =
      pool == nullptr ? 1 : std::min(pool->num_threads(), n);
  if (num_chunks <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const size_t chunk = (n + num_chunks - 1) / num_chunks;
  for (size_t c = 0; c < num_chunks; ++c) {
    const size_t begin = c * chunk;
    const size_t end = std::min(begin + chunk, n);
    if (begin >= end) break;
    pool->Submit([begin, end, &fn] {
      for (size_t i = begin; i < end; ++i) fn(i);
    });
  }
  pool->Wait();
}

}  // namespace pcdb

#endif  // PCDB_COMMON_THREAD_POOL_H_
