#ifndef PCDB_COMMON_THREAD_POOL_H_
#define PCDB_COMMON_THREAD_POOL_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <deque>
#include <functional>
#include <numeric>
#include <thread>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace pcdb {

/// \brief A fixed-size pool of worker threads with a submit/wait-group
/// API.
///
/// Tasks are plain std::function<void()> jobs executed FIFO by whichever
/// worker frees up first; Wait() blocks until every task submitted so far
/// has finished (a wait group, not a shutdown). The pool is deliberately
/// work-stealing-free: callers that need deterministic results partition
/// their work into indexed tasks that each write a private, pre-allocated
/// output slot, then combine the slots in index order after Wait() — see
/// ParallelFor below.
///
/// Tasks may fail: a throwing task is caught in the worker, converted to
/// Status::Internal, and recorded as the pool's first failure; once a
/// failure is recorded, tasks still in the queue are skipped instead of
/// run (first-error cancel-the-rest). Submitters retrieve and clear the
/// failure with ConsumeStatus() after Wait() — the Status-returning
/// TryParallelFor wrappers below do this automatically. The void
/// ParallelFor wrappers treat any captured failure as a programming
/// error (they have no channel to report it).
///
/// With num_threads <= 1 no worker threads are spawned and Submit runs
/// the task inline, so serial callers pay nothing and single-threaded
/// determinism is trivially preserved.
class ThreadPool {
 public:
  /// Creates `num_threads` workers (0 and 1 both mean "inline").
  explicit ThreadPool(size_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains the queue, then joins all workers.
  ~ThreadPool();

  /// Enqueues a task (runs it inline when the pool has no workers).
  /// Must not be called from inside a task while holding pool state.
  void Submit(std::function<void()> task) PCDB_EXCLUDES(mu_);

  /// Blocks until all tasks submitted before this call have completed.
  void Wait() PCDB_EXCLUDES(mu_);

  /// Returns the first failure captured since the last call (a task
  /// threw, or the pool.dispatch failpoint fired) and re-arms the pool:
  /// the failure slot is cleared and queued-task skipping stops. OK when
  /// every task completed normally. Call after Wait().
  [[nodiscard]] Status ConsumeStatus() PCDB_EXCLUDES(mu_);

  /// Worker count; 1 for an inline pool.
  size_t num_threads() const {
    return workers_.empty() ? 1 : workers_.size();
  }

  /// A sane default: the hardware concurrency, or 1 when unknown.
  static size_t DefaultThreadCount() {
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<size_t>(hw);
  }

 private:
  void WorkerLoop() PCDB_EXCLUDES(mu_);

  /// Runs one task under the dispatch failpoint and an exception guard;
  /// any failure is recorded via RecordFailure.
  void RunTask(const std::function<void()>& task) PCDB_EXCLUDES(mu_);

  /// Records the pool's first failure and starts skipping queued tasks.
  void RecordFailure(Status status) PCDB_EXCLUDES(mu_);

  /// Immutable after the constructor returns; joined in the destructor.
  std::vector<std::thread> workers_;
  Mutex mu_;
  CondVar work_available_;
  CondVar all_done_;
  std::deque<std::function<void()>> queue_ PCDB_GUARDED_BY(mu_);
  size_t in_flight_ PCDB_GUARDED_BY(mu_) = 0;  // queued + executing
  bool shutting_down_ PCDB_GUARDED_BY(mu_) = false;
  /// First task failure since the last ConsumeStatus; while non-OK,
  /// queued tasks are skipped (cancel-the-rest).
  Status first_error_ PCDB_GUARDED_BY(mu_);
};

/// A half-open index range [begin, end); the unit of work scheduling for
/// the chunked parallel loops below.
struct IndexRange {
  size_t begin = 0;
  size_t end = 0;
  bool operator==(const IndexRange& other) const {
    return begin == other.begin && end == other.end;
  }
};

/// How many chunks a parallel loop over `n` items should use on a pool
/// with `num_threads` workers. Oversubscribing each worker (up to 8
/// chunks apiece) lets the FIFO queue rebalance skewed per-item costs:
/// a worker stuck on one expensive chunk no longer idles the rest, they
/// drain the remaining chunks. Chunks never outnumber items.
inline size_t ParallelChunkCount(size_t num_threads, size_t n) {
  if (num_threads <= 1 || n <= 1) return n == 0 ? 0 : 1;
  constexpr size_t kOversubscription = 8;
  return std::min(n, num_threads * kOversubscription);
}

/// Splits [0, n) into exactly min(n, num_chunks) contiguous, non-empty
/// ranges covering every index once, with chunk sizes differing by at
/// most one (the first n % chunks ranges take the extra element).
inline std::vector<IndexRange> ChunkRanges(size_t n, size_t num_chunks) {
  std::vector<IndexRange> ranges;
  if (n == 0 || num_chunks == 0) return ranges;
  num_chunks = std::min(num_chunks, n);
  ranges.reserve(num_chunks);
  const size_t base = n / num_chunks;
  const size_t extra = n % num_chunks;
  size_t begin = 0;
  for (size_t c = 0; c < num_chunks; ++c) {
    const size_t end = begin + base + (c < extra ? 1 : 0);
    ranges.push_back({begin, end});
    begin = end;
  }
  return ranges;
}

/// Splits [0, weights.size()) into roughly `num_chunks` contiguous,
/// non-empty ranges whose total weights are balanced: a chunk closes
/// once it reaches the ideal share total/num_chunks, and an item at
/// least that heavy is isolated in a chunk of its own instead of
/// dragging a run of light neighbours with it. Size-aware counterpart
/// of ChunkRanges for loops whose per-item cost is known up front
/// (e.g. patterns per minimization shard).
inline std::vector<IndexRange> WeightedChunkRanges(
    const std::vector<size_t>& weights, size_t num_chunks) {
  std::vector<IndexRange> ranges;
  const size_t n = weights.size();
  if (n == 0 || num_chunks == 0) return ranges;
  num_chunks = std::min(num_chunks, n);
  const size_t total =
      std::accumulate(weights.begin(), weights.end(), size_t{0});
  if (total == 0) return ChunkRanges(n, num_chunks);
  const size_t target =
      std::max<size_t>(1, (total + num_chunks - 1) / num_chunks);
  size_t begin = 0;
  size_t acc = 0;
  for (size_t i = 0; i < n; ++i) {
    if (i > begin && acc > 0 && weights[i] >= target) {
      // Close the light prefix so the heavy item starts its own chunk.
      ranges.push_back({begin, i});
      begin = i;
      acc = 0;
    }
    acc += weights[i];
    if (acc >= target || i + 1 == n) {
      ranges.push_back({begin, i + 1});
      begin = i + 1;
      acc = 0;
    }
  }
  return ranges;
}

/// Runs `fn(c, ranges[c])` (returning Status) for every chunk index c on
/// `pool`, blocking until all chunks finish or fail. First-error
/// cancel-the-rest: once a chunk returns non-OK (or a task throws, or
/// the pool.dispatch failpoint fires) the remaining chunks are skipped
/// cooperatively and the failure is returned. When several chunks fail
/// concurrently, the lowest-indexed chunk failure is reported. On the
/// serial path chunks run in order and stop at the first failure, so
/// serial and parallel runs return identical error codes.
template <typename Fn>
[[nodiscard]] Status TryParallelForRanges(ThreadPool* pool,
                            const std::vector<IndexRange>& ranges,
                            const Fn& fn) {
  if (ranges.empty()) return Status::OK();
  if (pool == nullptr || pool->num_threads() <= 1 || ranges.size() == 1) {
    for (size_t c = 0; c < ranges.size(); ++c) {
      PCDB_RETURN_NOT_OK(fn(c, ranges[c]));
    }
    return Status::OK();
  }
  std::vector<Status> chunk_status(ranges.size());
  std::atomic<bool> stop{false};
  for (size_t c = 0; c < ranges.size(); ++c) {
    pool->Submit([c, &ranges, &fn, &chunk_status, &stop] {
      if (stop.load(std::memory_order_relaxed)) return;  // cancelled
      Status st = fn(c, ranges[c]);
      if (!st.ok()) {
        chunk_status[c] = std::move(st);
        stop.store(true, std::memory_order_relaxed);
      }
    });
  }
  pool->Wait();
  Status pool_status = pool->ConsumeStatus();
  for (Status& st : chunk_status) {
    if (!st.ok()) return std::move(st);
  }
  return pool_status;
}

/// Runs fn(c, ranges[c]) for every chunk index c on `pool` (one task per
/// chunk so the queue balances skew), blocking until all chunks finish.
/// Chunk indices are stable, so callers get deterministic results by
/// writing to per-chunk slots and merging them in index order. The
/// chunks carry no error channel, so a captured task failure (throw or
/// injected dispatch fault) is a programming error here — use
/// TryParallelForRanges for fallible chunks.
template <typename Fn>
void ParallelForRanges(ThreadPool* pool, const std::vector<IndexRange>& ranges,
                       const Fn& fn) {
  if (ranges.empty()) return;
  if (pool == nullptr || pool->num_threads() <= 1 || ranges.size() == 1) {
    for (size_t c = 0; c < ranges.size(); ++c) fn(c, ranges[c]);
    return;
  }
  for (size_t c = 0; c < ranges.size(); ++c) {
    pool->Submit([c, &ranges, &fn] { fn(c, ranges[c]); });
  }
  pool->Wait();
  Status status = pool->ConsumeStatus();
  PCDB_CHECK(status.ok())
      << "task failed in a void ParallelFor (use TryParallelFor for "
         "fallible tasks): "
      << status.ToString();
}

/// Runs `fn(i)` for every i in [0, n) on `pool`, blocking until all
/// iterations finish. Iterations are grouped into contiguous chunks
/// (several per worker, see ParallelChunkCount) so per-chunk state stays
/// cache-local while skewed iteration costs still rebalance; `fn` must
/// be safe to call concurrently for distinct i. Results are
/// deterministic whenever fn(i) writes only to an i-indexed slot.
template <typename Fn>
void ParallelFor(ThreadPool* pool, size_t n, const Fn& fn) {
  const size_t threads = pool == nullptr ? 1 : pool->num_threads();
  const auto ranges = ChunkRanges(n, ParallelChunkCount(threads, n));
  ParallelForRanges(pool, ranges, [&fn](size_t, IndexRange r) {
    for (size_t i = r.begin; i < r.end; ++i) fn(i);
  });
}

/// Status-returning ParallelFor: runs `fn(i)` (returning Status) for
/// every i in [0, n), with the same chunking as ParallelFor and the
/// first-error cancel-the-rest semantics of TryParallelForRanges.
/// Iterations inside one chunk stop at the first failure.
template <typename Fn>
[[nodiscard]] Status TryParallelFor(ThreadPool* pool, size_t n, const Fn& fn) {
  const size_t threads = pool == nullptr ? 1 : pool->num_threads();
  const auto ranges = ChunkRanges(n, ParallelChunkCount(threads, n));
  return TryParallelForRanges(pool, ranges,
                              [&fn](size_t, IndexRange r) -> Status {
                                for (size_t i = r.begin; i < r.end; ++i) {
                                  PCDB_RETURN_NOT_OK(fn(i));
                                }
                                return Status::OK();
                              });
}

/// Size-aware ParallelFor: `weights[i]` estimates the cost of fn(i), and
/// chunk boundaries follow WeightedChunkRanges so heavy items no longer
/// share a chunk with (and serialize behind) a long run of light ones.
template <typename Fn>
void WeightedParallelFor(ThreadPool* pool, const std::vector<size_t>& weights,
                         const Fn& fn) {
  const size_t threads = pool == nullptr ? 1 : pool->num_threads();
  const auto ranges = WeightedChunkRanges(
      weights, ParallelChunkCount(threads, weights.size()));
  ParallelForRanges(pool, ranges, [&fn](size_t, IndexRange r) {
    for (size_t i = r.begin; i < r.end; ++i) fn(i);
  });
}

}  // namespace pcdb

#endif  // PCDB_COMMON_THREAD_POOL_H_
