#include "common/status.h"

namespace pcdb {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kTypeError:
      return "Type error";
    case StatusCode::kParseError:
      return "Parse error";
    case StatusCode::kTimeout:
      return "Timeout";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kResourceExhausted:
      return "Resource exhausted";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal error";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace pcdb
