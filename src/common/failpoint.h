#ifndef PCDB_COMMON_FAILPOINT_H_
#define PCDB_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"

namespace pcdb {

/// \brief Fault-injection framework: named failpoints compiled into
/// long-running paths (CSV load, evaluator operators, minimization inner
/// loops, thread-pool dispatch) that tests and CI can arm to return an
/// error Status, throw, or sleep at the marked site.
///
/// The inactive fast path is a single relaxed atomic load, so failpoints
/// are safe to leave in hot loops. Activation is programmatic
/// (`Failpoints::Global().Activate(...)`) or via the PCDB_FAILPOINTS
/// environment variable, parsed once on first use:
///
///   PCDB_FAILPOINTS="minimize.pattern=error;pool.dispatch=sleep(2)"
///   PCDB_FAILPOINTS="csv.record=once:throw;eval.operator=every(3):error(timeout)"
///   PCDB_FAILPOINTS="minimize.shard=prob(0.25,42):error(resource_exhausted)"
///
/// Grammar per entry (';'-separated):  name '=' [trigger ':'] action
///   trigger:  once | every(N) | prob(P,SEED)        (default: always)
///   action:   error | error(CODE) | throw | sleep(MILLIS)
///   CODE:     internal | timeout | cancelled | resource_exhausted |
///             invalid_argument | not_found | out_of_range | unavailable
///
/// Triggers are deterministic: `once` fires on the first hit only,
/// `every(N)` on hits N, 2N, 3N, ..., and `prob(P,SEED)` draws from a
/// per-failpoint PRNG seeded with SEED, so a given hit sequence always
/// fires the same way.

/// Exception thrown by `throw`-action failpoints. Deliberately a
/// std::runtime_error subclass: it exercises the same catch paths that
/// guard against real exceptions (bad_alloc, ...) in workers.
class FailpointError : public std::runtime_error {
 public:
  explicit FailpointError(const std::string& name)
      : std::runtime_error("failpoint '" + name + "' threw") {}
};

/// What an armed failpoint does when its trigger fires.
enum class FailpointAction {
  kError,  ///< Hit() returns a non-OK Status with `code`.
  kThrow,  ///< Hit() throws FailpointError.
  kSleep,  ///< Hit() sleeps `sleep_millis`, then returns OK.
};

/// When an armed failpoint fires.
enum class FailpointTrigger {
  kAlways,
  kOnce,
  kEveryNth,
  kProbability,
};

/// \brief Full configuration of one armed failpoint.
struct FailpointSpec {
  FailpointAction action = FailpointAction::kError;
  /// Status code for kError actions.
  StatusCode code = StatusCode::kInternal;
  /// Sleep duration for kSleep actions.
  double sleep_millis = 1;
  FailpointTrigger trigger = FailpointTrigger::kAlways;
  /// Period for kEveryNth (fires on hits N, 2N, ...).
  uint64_t every_nth = 1;
  /// Fire probability in [0, 1] for kProbability.
  double probability = 1.0;
  /// PRNG seed for kProbability (deterministic across runs).
  uint64_t seed = 0;

  static FailpointSpec Error(StatusCode code = StatusCode::kInternal) {
    FailpointSpec spec;
    spec.action = FailpointAction::kError;
    spec.code = code;
    return spec;
  }
  static FailpointSpec Throw() {
    FailpointSpec spec;
    spec.action = FailpointAction::kThrow;
    return spec;
  }
  static FailpointSpec Sleep(double millis) {
    FailpointSpec spec;
    spec.action = FailpointAction::kSleep;
    spec.sleep_millis = millis;
    return spec;
  }
  /// Returns a copy that fires on the first hit only.
  FailpointSpec Once() const {
    FailpointSpec spec = *this;
    spec.trigger = FailpointTrigger::kOnce;
    return spec;
  }
  /// Returns a copy that fires on every Nth hit.
  FailpointSpec EveryNth(uint64_t n) const {
    FailpointSpec spec = *this;
    spec.trigger = FailpointTrigger::kEveryNth;
    spec.every_nth = n == 0 ? 1 : n;
    return spec;
  }
  /// Returns a copy that fires with probability `p` from a PRNG seeded
  /// with `seed`.
  FailpointSpec WithProbability(double p, uint64_t seed) const {
    FailpointSpec spec = *this;
    spec.trigger = FailpointTrigger::kProbability;
    spec.probability = p;
    spec.seed = seed;
    return spec;
  }
};

/// \brief Thread-safe registry of armed failpoints.
///
/// Library code marks sites with PCDB_FAILPOINT(name) (Status-returning
/// contexts) or explicit Hit() calls; names of all compiled-in sites are
/// listed in AllSites() so tests can enumerate the full matrix.
class Failpoints {
 public:
  /// The process-wide registry. PCDB_FAILPOINTS is parsed on first call;
  /// a malformed value is reported to stderr and ignored (robustness
  /// tooling must not take the process down).
  static Failpoints& Global();

  /// Arms `name` with `spec` (rearming replaces the old spec and resets
  /// trigger state).
  void Activate(const std::string& name, const FailpointSpec& spec)
      PCDB_EXCLUDES(mu_);

  /// Disarms `name` (no-op if not armed).
  void Deactivate(const std::string& name) PCDB_EXCLUDES(mu_);

  /// Disarms everything.
  void Clear() PCDB_EXCLUDES(mu_);

  /// True if `name` is currently armed (regardless of trigger state).
  bool IsActive(const std::string& name) const PCDB_EXCLUDES(mu_);

  /// True if any failpoint is armed — a single relaxed atomic load, so
  /// hot paths can gate behavioural (non-Status) faults like
  /// "server.read.short" on it without taking the registry lock.
  bool AnyActive() const {
    return active_count_.load(std::memory_order_relaxed) != 0;
  }

  /// Total times an armed `name` fired (its action ran). 0 if never
  /// armed. For test assertions.
  uint64_t FireCount(const std::string& name) const PCDB_EXCLUDES(mu_);

  /// The failpoint site `name` was reached. Returns OK when the point is
  /// unarmed or its trigger does not fire; otherwise performs the armed
  /// action (non-OK Status, FailpointError throw, or sleep-then-OK).
  /// Inline fast path: one relaxed atomic load when nothing is armed.
  [[nodiscard]] Status Hit(const char* name) PCDB_EXCLUDES(mu_) {
    if (active_count_.load(std::memory_order_relaxed) == 0) {
      return Status::OK();
    }
    return HitSlow(name);
  }

  /// Parses one "name=spec" entry (see the grammar above) and arms it.
  [[nodiscard]] Status ActivateFromSpec(const std::string& entry) PCDB_EXCLUDES(mu_);

  /// Parses a full ';'-separated PCDB_FAILPOINTS value and arms every
  /// entry; stops at (and reports) the first malformed entry.
  [[nodiscard]] Status ActivateFromString(const std::string& spec) PCDB_EXCLUDES(mu_);

  /// Canonical list of every failpoint site compiled into the library.
  /// Tests iterate this to guarantee full matrix coverage.
  static const std::vector<std::string>& AllSites();

  /// Observer invoked (outside the registry lock) every time an armed
  /// failpoint's action runs, regardless of action kind. Installed by
  /// the observability layer to count trips in the global metrics
  /// registry without common/ depending on obs/. A plain function
  /// pointer so installation is lock-free; nullptr uninstalls.
  using TripObserver = void (*)();
  static void SetTripObserver(TripObserver observer);

 private:
  Failpoints();

  struct Armed {
    FailpointSpec spec;
    uint64_t hits = 0;   // times the site was reached while armed
    uint64_t fires = 0;  // times the action actually ran
    uint64_t rng = 0;    // splitmix64 state for kProbability
  };

  /// True if the trigger fires for this hit; advances trigger state.
  static bool ShouldFire(Armed* armed);

  /// Out-of-line tail of Hit() for the armed case.
  [[nodiscard]] Status HitSlow(const char* name) PCDB_EXCLUDES(mu_);

  mutable Mutex mu_;
  std::map<std::string, Armed> armed_ PCDB_GUARDED_BY(mu_);
  /// Retained fire counts of disarmed failpoints, so FireCount stays
  /// meaningful after Deactivate/Clear.
  std::map<std::string, uint64_t> fired_ PCDB_GUARDED_BY(mu_);
  /// Armed-failpoint count for the lock-free fast path.
  std::atomic<size_t> active_count_{0};
};

/// Marks a failpoint site inside a Status- or Result-returning function:
/// propagates the injected error when the armed trigger fires, and is a
/// single relaxed atomic load when nothing is armed.
#define PCDB_FAILPOINT(name) \
  PCDB_RETURN_NOT_OK(::pcdb::Failpoints::Global().Hit(name))

}  // namespace pcdb

#endif  // PCDB_COMMON_FAILPOINT_H_
