#include "common/json.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>

#include "common/status.h"

namespace pcdb {

Result<uint64_t> JsonValue::AsUint64() const {
  if (kind_ != Kind::kNumber) {
    return Status::TypeError("not a JSON number");
  }
  if (scalar_.find_first_of(".eE-") != std::string::npos) {
    return Status::TypeError("not an unsigned integer: " + scalar_);
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(scalar_.c_str(), &end, 10);
  if (errno == ERANGE) {
    return Status::OutOfRange("integer overflows u64: " + scalar_);
  }
  if (end == scalar_.c_str() || *end != '\0') {
    return Status::TypeError("not an unsigned integer: " + scalar_);
  }
  return static_cast<uint64_t>(v);
}

Result<int64_t> JsonValue::AsInt64() const {
  if (kind_ != Kind::kNumber) {
    return Status::TypeError("not a JSON number");
  }
  if (scalar_.find_first_of(".eE") != std::string::npos) {
    return Status::TypeError("not an integer: " + scalar_);
  }
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(scalar_.c_str(), &end, 10);
  if (errno == ERANGE) {
    return Status::OutOfRange("integer overflows i64: " + scalar_);
  }
  if (end == scalar_.c_str() || *end != '\0') {
    return Status::TypeError("not an integer: " + scalar_);
  }
  return static_cast<int64_t>(v);
}

Result<double> JsonValue::AsDouble() const {
  if (kind_ != Kind::kNumber) {
    return Status::TypeError("not a JSON number");
  }
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(scalar_.c_str(), &end);
  if (end == scalar_.c_str() || *end != '\0') {
    return Status::TypeError("bad number lexeme: " + scalar_);
  }
  return v;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

/// Recursive-descent parser over a string_view; position-based error
/// messages. Depth-limited so hostile nesting can't blow the stack.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    PCDB_ASSIGN_OR_RETURN(JsonValue value, ParseValue(0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing garbage after JSON document");
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 100;

  Status Error(const std::string& what) const {
    return Status::ParseError(what + " at offset " + std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue(int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"': {
        JsonValue v;
        v.kind_ = JsonValue::Kind::kString;
        PCDB_ASSIGN_OR_RETURN(v.scalar_, ParseString());
        return v;
      }
      case 't':
      case 'f':
        return ParseKeyword(c == 't' ? "true" : "false",
                            JsonValue::Kind::kBool, c == 't');
      case 'n':
        return ParseKeyword("null", JsonValue::Kind::kNull, false);
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber();
        return Error(std::string("unexpected character '") + c + "'");
    }
  }

  Result<JsonValue> ParseKeyword(std::string_view word, JsonValue::Kind kind,
                                 bool value) {
    if (text_.substr(pos_, word.size()) != word) {
      return Error("bad keyword");
    }
    pos_ += word.size();
    JsonValue v;
    v.kind_ = kind;
    v.bool_ = value;
    return v;
  }

  Result<JsonValue> ParseNumber() {
    const size_t start = pos_;
    Consume('-');
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(
                                      text_[pos_])) != 0) {
      ++pos_;
    }
    if (Consume('.')) {
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(
                                        text_[pos_])) != 0) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(
                                        text_[pos_])) != 0) {
        ++pos_;
      }
    }
    JsonValue v;
    v.kind_ = JsonValue::Kind::kNumber;
    v.scalar_ = std::string(text_.substr(start, pos_ - start));
    // Reject lexemes strtod would also reject ("-", "1.", "1e") so the
    // deferred conversions in AsUint64/AsDouble can't fail on input
    // this parser accepted.
    errno = 0;
    char* end = nullptr;
    std::strtod(v.scalar_.c_str(), &end);
    if (end != v.scalar_.c_str() + v.scalar_.size()) {
      return Error("bad number lexeme '" + v.scalar_ + "'");
    }
    return v;
  }

  Result<std::string> ParseString() {
    if (!Consume('"')) return Error("expected '\"'");
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"':
          case '\\':
          case '/':
            out.push_back(esc);
            break;
          case 'b':
            out.push_back('\b');
            break;
          case 'f':
            out.push_back('\f');
            break;
          case 'n':
            out.push_back('\n');
            break;
          case 'r':
            out.push_back('\r');
            break;
          case 't':
            out.push_back('\t');
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
            uint32_t cp = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              cp <<= 4;
              if (h >= '0' && h <= '9') {
                cp |= static_cast<uint32_t>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                cp |= static_cast<uint32_t>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                cp |= static_cast<uint32_t>(h - 'A' + 10);
              } else {
                return Error("bad \\u escape digit");
              }
            }
            // UTF-8 encode the BMP codepoint (surrogate pairs are not
            // something our own emitters produce; a lone surrogate
            // still round-trips as its 3-byte encoding).
            // pcdb-analyze: allow(protocol-consistency): 0x80 is the UTF-8 continuation-byte marker, not a frame opcode
            constexpr uint32_t kCont = 0x80;
            if (cp < kCont) {
              out.push_back(static_cast<char>(cp));
            } else if (cp < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
              out.push_back(static_cast<char>(kCont | (cp & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
              out.push_back(static_cast<char>(kCont | ((cp >> 6) & 0x3F)));
              out.push_back(static_cast<char>(kCont | (cp & 0x3F)));
            }
            break;
          }
          default:
            return Error("unknown escape");
        }
      } else {
        out.push_back(c);
      }
    }
    return Error("unterminated string");
  }

  Result<JsonValue> ParseArray(int depth) {
    Consume('[');
    JsonValue v;
    v.kind_ = JsonValue::Kind::kArray;
    SkipWhitespace();
    if (Consume(']')) return v;
    for (;;) {
      PCDB_ASSIGN_OR_RETURN(JsonValue item, ParseValue(depth + 1));
      v.items_.push_back(std::move(item));
      SkipWhitespace();
      if (Consume(']')) return v;
      if (!Consume(',')) return Error("expected ',' or ']'");
    }
  }

  Result<JsonValue> ParseObject(int depth) {
    Consume('{');
    JsonValue v;
    v.kind_ = JsonValue::Kind::kObject;
    SkipWhitespace();
    if (Consume('}')) return v;
    for (;;) {
      SkipWhitespace();
      PCDB_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':'");
      PCDB_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      v.members_.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume('}')) return v;
      if (!Consume(',')) return Error("expected ',' or '}'");
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

Result<JsonValue> ParseJson(std::string_view text) {
  return JsonParser(text).Parse();
}

}  // namespace pcdb
