#include "common/thread_pool.h"

#include <utility>

namespace pcdb {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads <= 1) return;  // inline mode
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  if (workers_.empty()) return;
  {
    MutexLock lock(&mu_);
    shutting_down_ = true;
  }
  work_available_.NotifyAll();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return;
  }
  {
    MutexLock lock(&mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.NotifyOne();
}

void ThreadPool::Wait() {
  if (workers_.empty()) return;
  MutexLock lock(&mu_);
  while (in_flight_ != 0) all_done_.Wait(lock);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(&mu_);
      while (!shutting_down_ && queue_.empty()) work_available_.Wait(lock);
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      MutexLock lock(&mu_);
      if (--in_flight_ == 0) all_done_.NotifyAll();
    }
  }
}

}  // namespace pcdb
