#include "common/thread_pool.h"

#include <exception>
#include <utility>

#include "common/failpoint.h"
#include "common/trace_context.h"

namespace pcdb {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads <= 1) return;  // inline mode
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  if (workers_.empty()) return;
  {
    MutexLock lock(&mu_);
    shutting_down_ = true;
  }
  work_available_.NotifyAll();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    // Inline mode keeps worker semantics: failures are captured and
    // cancel the tasks submitted after them, not thrown at the caller.
    bool skip;
    {
      MutexLock lock(&mu_);
      skip = !first_error_.ok();
    }
    if (!skip) RunTask(task);
    return;
  }
  // Propagate the submitter's trace context to the worker: the task runs
  // with the submitting thread's (trace id, span id) as its ambient
  // context, so spans opened inside it nest under the submitting span.
  // The saver restores whatever the worker had before — including the
  // all-zero "no trace" state — even if the task throws.
  TraceContext tc = CurrentTraceContext();
  std::function<void()> wrapped = [tc, inner = std::move(task)] {
    TraceContextSaver saver;
    SetCurrentTraceContext(tc);
    inner();
  };
  {
    MutexLock lock(&mu_);
    queue_.push_back(std::move(wrapped));
    ++in_flight_;
  }
  work_available_.NotifyOne();
}

void ThreadPool::Wait() {
  if (workers_.empty()) return;
  MutexLock lock(&mu_);
  while (in_flight_ != 0) all_done_.Wait(lock);
}

Status ThreadPool::ConsumeStatus() {
  MutexLock lock(&mu_);
  Status out = std::move(first_error_);
  first_error_ = Status::OK();
  return out;
}

void ThreadPool::RecordFailure(Status status) {
  MutexLock lock(&mu_);
  if (first_error_.ok()) first_error_ = std::move(status);
}

void ThreadPool::RunTask(const std::function<void()>& task) {
  // The dispatch failpoint models a scheduling fault (an error skips the
  // task, a throw exercises the catch path, a sleep delays dispatch).
  // Task exceptions — including injected FailpointError from sites
  // inside the task — are converted to Status::Internal rather than
  // terminating the process.
  try {
    Status injected = Failpoints::Global().Hit("pool.dispatch");
    if (injected.ok()) {
      task();
      return;
    }
    RecordFailure(std::move(injected));
  } catch (const std::exception& e) {
    RecordFailure(Status::Internal(std::string("task failed: ") + e.what()));
  } catch (...) {
    RecordFailure(Status::Internal("task failed with unknown exception"));
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    bool skip = false;
    {
      MutexLock lock(&mu_);
      while (!shutting_down_ && queue_.empty()) work_available_.Wait(lock);
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      // First-error cancel-the-rest: once a failure is recorded, tasks
      // still in the queue are popped and counted but not run.
      skip = !first_error_.ok();
    }
    if (!skip) RunTask(task);
    {
      MutexLock lock(&mu_);
      if (--in_flight_ == 0) all_done_.NotifyAll();
    }
  }
}

}  // namespace pcdb
