#ifndef PCDB_PATTERN_SUMMARY_H_
#define PCDB_PATTERN_SUMMARY_H_

#include <string>

#include "pattern/annotated.h"

namespace pcdb {

/// \brief End-user view of an annotated answer: how much of it is
/// guaranteed final.
///
/// Prior work (Motro '89, Levy '96 — see §2) only answers the binary
/// question "is this answer complete?"; the pattern framework
/// additionally identifies *which parts* are. This helper distills both
/// views from an AnnotatedTable.
struct CompletenessSummary {
  /// The whole answer is complete (the pattern set covers every possible
  /// answer tuple, i.e. contains the all-wildcard pattern). This is the
  /// only case earlier approaches could report positively.
  bool fully_complete = false;
  size_t total_rows = 0;
  /// Rows of the answer covered by some completeness pattern: these rows
  /// belong to slices guaranteed to be final.
  size_t guaranteed_rows = 0;
  /// guaranteed_rows / total_rows (0 for empty answers).
  double guaranteed_fraction = 0;
  /// Number of (minimal) patterns describing the complete parts.
  size_t num_patterns = 0;

  /// One-line human-readable rendering.
  std::string ToString() const;
};

/// Computes the summary of an annotated answer.
CompletenessSummary Summarize(const AnnotatedTable& annotated);

/// The classical decision: is the entire answer guaranteed complete?
bool IsAnswerComplete(const AnnotatedTable& annotated);

/// \brief Degrades a pattern set to at most `budget` of its own
/// patterns, preferring the most general ones.
///
/// This is the graceful-degradation fallback for a tripped pattern
/// budget (common/exec_context.h): the result is a *subset* of `input`
/// (after dropping patterns subsumed by an already-kept one), so it is
/// sound wherever `input` was — every kept pattern still describes a
/// guaranteed-complete slice — it merely promises less than the exact
/// minimized set would. Patterns are ranked by wildcard count
/// (descending, i.e. most general first) with the pattern order as a
/// deterministic tie-break. A budget of 0 yields the empty set, which
/// is the vacuously sound summary.
PatternSet SummarizePatterns(const PatternSet& input, size_t budget);

}  // namespace pcdb

#endif  // PCDB_PATTERN_SUMMARY_H_
