#include "pattern/summary.h"

#include <cstdio>

namespace pcdb {

std::string CompletenessSummary::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%s; %zu/%zu answer rows (%.1f%%) in guaranteed-complete "
                "slices, %zu patterns",
                fully_complete ? "answer COMPLETE" : "answer possibly partial",
                guaranteed_rows, total_rows, 100.0 * guaranteed_fraction,
                num_patterns);
  return buf;
}

CompletenessSummary Summarize(const AnnotatedTable& annotated) {
  CompletenessSummary summary;
  summary.num_patterns = annotated.patterns.size();
  summary.total_rows = annotated.data.num_rows();
  for (const Pattern& p : annotated.patterns) {
    if (p.IsAllWildcards()) {
      summary.fully_complete = true;
      break;
    }
  }
  for (const Tuple& row : annotated.data.rows()) {
    if (annotated.patterns.AnySubsumesTuple(row)) ++summary.guaranteed_rows;
  }
  summary.guaranteed_fraction =
      summary.total_rows == 0
          ? 0.0
          : static_cast<double>(summary.guaranteed_rows) /
                static_cast<double>(summary.total_rows);
  return summary;
}

bool IsAnswerComplete(const AnnotatedTable& annotated) {
  for (const Pattern& p : annotated.patterns) {
    if (p.IsAllWildcards()) return true;
  }
  return false;
}

}  // namespace pcdb
