#include "pattern/summary.h"

#include <algorithm>
#include <cstdio>

namespace pcdb {

std::string CompletenessSummary::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%s; %zu/%zu answer rows (%.1f%%) in guaranteed-complete "
                "slices, %zu patterns",
                fully_complete ? "answer COMPLETE" : "answer possibly partial",
                guaranteed_rows, total_rows, 100.0 * guaranteed_fraction,
                num_patterns);
  return buf;
}

CompletenessSummary Summarize(const AnnotatedTable& annotated) {
  CompletenessSummary summary;
  summary.num_patterns = annotated.patterns.size();
  summary.total_rows = annotated.data.num_rows();
  for (const Pattern& p : annotated.patterns) {
    if (p.IsAllWildcards()) {
      summary.fully_complete = true;
      break;
    }
  }
  for (const Tuple& row : annotated.data.rows()) {
    if (annotated.patterns.AnySubsumesTuple(row)) ++summary.guaranteed_rows;
  }
  summary.guaranteed_fraction =
      summary.total_rows == 0
          ? 0.0
          : static_cast<double>(summary.guaranteed_rows) /
                static_cast<double>(summary.total_rows);
  return summary;
}

bool IsAnswerComplete(const AnnotatedTable& annotated) {
  for (const Pattern& p : annotated.patterns) {
    if (p.IsAllWildcards()) return true;
  }
  return false;
}

PatternSet SummarizePatterns(const PatternSet& input, size_t budget) {
  PatternSet out;
  if (budget == 0 || input.empty()) return out;
  // Most general first: a pattern with more wildcards covers a larger
  // slice, so under a tight budget it is the best promise to keep.
  std::vector<Pattern> ranked = input.patterns();
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const Pattern& a, const Pattern& b) {
                     if (a.NumWildcards() != b.NumWildcards()) {
                       return a.NumWildcards() > b.NumWildcards();
                     }
                     return a < b;
                   });
  for (const Pattern& p : ranked) {
    // A pattern subsumed by a kept one adds no coverage (the ranking
    // guarantees any subsumer was seen first).
    if (out.AnySubsumes(p)) continue;
    out.Add(p);
    if (out.size() >= budget) break;
  }
  return out;
}

}  // namespace pcdb
