#include "pattern/discrimination_tree.h"

#include "common/logging.h"

namespace pcdb {

namespace {
constexpr size_t kBytesPerNode = 80;      // node + parent map entry
constexpr size_t kBytesPerCell = sizeof(Pattern::Cell);
}  // namespace

struct DiscriminationTree::Node {
  struct CellHash {
    size_t operator()(const Pattern::Cell& c) const {
      return c.has_value() ? c->Hash() : 0x5bd1e995u;
    }
  };
  std::unordered_map<Pattern::Cell, std::unique_ptr<Node>, CellHash> children;
  /// Number of patterns ending at this node (0 or 1 under set semantics;
  /// only ever non-zero at depth == arity).
  size_t terminal = 0;
};

DiscriminationTree::DiscriminationTree(size_t arity)
    : arity_(arity), root_(std::make_unique<Node>()) {
  node_count_ = 1;
}

DiscriminationTree::~DiscriminationTree() = default;

void DiscriminationTree::Insert(const Pattern& p) {
  PCDB_CHECK(p.arity() == arity_);
  Node* node = root_.get();
  for (size_t i = 0; i < arity_; ++i) {
    std::unique_ptr<Node>& child = node->children[p.cell(i)];
    if (child == nullptr) {
      child = std::make_unique<Node>();
      ++node_count_;
    }
    node = child.get();
  }
  if (node->terminal == 0) {
    node->terminal = 1;
    ++size_;
  }
}

bool DiscriminationTree::Remove(const Pattern& p) {
  // Walk down recording the path, then unlink empty nodes bottom-up.
  std::vector<Node*> path = {root_.get()};
  for (size_t i = 0; i < arity_; ++i) {
    auto it = path.back()->children.find(p.cell(i));
    if (it == path.back()->children.end()) return false;
    path.push_back(it->second.get());
  }
  if (path.back()->terminal == 0) return false;
  path.back()->terminal = 0;
  --size_;
  for (size_t i = arity_; i > 0; --i) {
    Node* child = path[i];
    if (child->terminal > 0 || !child->children.empty()) break;
    path[i - 1]->children.erase(p.cell(i - 1));
    --node_count_;
  }
  return true;
}

bool DiscriminationTree::SearchSubsumer(const Node& node, const Pattern& p,
                                        size_t depth, bool strict,
                                        bool equal_so_far) const {
  if (depth == arity_) {
    return node.terminal > 0 && !(strict && equal_so_far);
  }
  // A subsumer q has q[i] == '*', or q[i] == p[i] when p has a constant.
  auto wild_it = node.children.find(Pattern::Wildcard());
  if (wild_it != node.children.end()) {
    const bool still_equal = equal_so_far && p.IsWildcard(depth);
    if (SearchSubsumer(*wild_it->second, p, depth + 1, strict, still_equal)) {
      return true;
    }
  }
  if (!p.IsWildcard(depth)) {
    auto exact_it = node.children.find(p.cell(depth));
    if (exact_it != node.children.end() &&
        SearchSubsumer(*exact_it->second, p, depth + 1, strict,
                       equal_so_far)) {
      return true;
    }
  }
  return false;
}

bool DiscriminationTree::HasSubsumer(const Pattern& p, bool strict) const {
  PCDB_CHECK(p.arity() == arity_);
  return SearchSubsumer(*root_, p, 0, strict, /*equal_so_far=*/true);
}

namespace {

/// Shared DFS scratch: the cells of the branch currently being explored.
struct PrefixGuard {
  explicit PrefixGuard(std::vector<Pattern::Cell>* prefix,
                       const Pattern::Cell& cell)
      : prefix_(prefix) {
    prefix_->push_back(cell);
  }
  ~PrefixGuard() { prefix_->pop_back(); }
  std::vector<Pattern::Cell>* prefix_;
};

}  // namespace

void DiscriminationTree::SearchSubsumers(const Node& node, const Pattern& p,
                                         size_t depth, bool strict,
                                         bool equal_so_far,
                                         std::vector<Pattern::Cell>* prefix,
                                         std::vector<Pattern>* out) const {
  if (depth == arity_) {
    if (node.terminal > 0 && !(strict && equal_so_far)) {
      out->push_back(Pattern(*prefix));
    }
    return;
  }
  // A subsumer has '*' here, or the probe's constant when there is one.
  auto wild_it = node.children.find(Pattern::Wildcard());
  if (wild_it != node.children.end()) {
    PrefixGuard guard(prefix, Pattern::Wildcard());
    const bool still_equal = equal_so_far && p.IsWildcard(depth);
    SearchSubsumers(*wild_it->second, p, depth + 1, strict, still_equal,
                    prefix, out);
  }
  if (!p.IsWildcard(depth)) {
    auto exact_it = node.children.find(p.cell(depth));
    if (exact_it != node.children.end()) {
      PrefixGuard guard(prefix, p.cell(depth));
      SearchSubsumers(*exact_it->second, p, depth + 1, strict, equal_so_far,
                      prefix, out);
    }
  }
}

void DiscriminationTree::CollectSubsumers(const Pattern& p, bool strict,
                                          std::vector<Pattern>* out) const {
  PCDB_CHECK(p.arity() == arity_);
  std::vector<Pattern::Cell> prefix;
  prefix.reserve(arity_);
  SearchSubsumers(*root_, p, 0, strict, /*equal_so_far=*/true, &prefix, out);
}

void DiscriminationTree::SearchSubsumed(const Node& node, const Pattern& p,
                                        size_t depth, bool strict,
                                        bool equal_so_far,
                                        std::vector<Pattern::Cell>* prefix,
                                        std::vector<Pattern>* out) const {
  if (depth == arity_) {
    if (node.terminal > 0 && !(strict && equal_so_far)) {
      out->push_back(Pattern(*prefix));
    }
    return;
  }
  if (p.IsWildcard(depth)) {
    // All branches qualify: with '*' in the probe, the stored pattern may
    // have any symbol here.
    for (const auto& [cell, child] : node.children) {
      PrefixGuard guard(prefix, cell);
      const bool still_equal = equal_so_far && !cell.has_value();
      SearchSubsumed(*child, p, depth + 1, strict, still_equal, prefix, out);
    }
  } else {
    auto it = node.children.find(p.cell(depth));
    if (it != node.children.end()) {
      PrefixGuard guard(prefix, p.cell(depth));
      SearchSubsumed(*it->second, p, depth + 1, strict, equal_so_far, prefix,
                     out);
    }
  }
}

void DiscriminationTree::CollectSubsumed(const Pattern& p, bool strict,
                                         std::vector<Pattern>* out) const {
  PCDB_CHECK(p.arity() == arity_);
  std::vector<Pattern::Cell> prefix;
  prefix.reserve(arity_);
  SearchSubsumed(*root_, p, 0, strict, /*equal_so_far=*/true, &prefix, out);
}

void DiscriminationTree::Collect(const Node& node,
                                 std::vector<Pattern::Cell>* prefix,
                                 std::vector<Pattern>* out) const {
  if (node.terminal > 0 && prefix->size() == arity_) {
    out->push_back(Pattern(*prefix));
  }
  for (const auto& [cell, child] : node.children) {
    PrefixGuard guard(prefix, cell);
    Collect(*child, prefix, out);
  }
}

std::vector<Pattern> DiscriminationTree::Contents() const {
  std::vector<Pattern> out;
  out.reserve(size_);
  std::vector<Pattern::Cell> prefix;
  prefix.reserve(arity_);
  Collect(*root_, &prefix, &out);
  return out;
}

size_t DiscriminationTree::ApproxMemoryBytes() const {
  return node_count_ * (kBytesPerNode + kBytesPerCell);
}

}  // namespace pcdb
