#ifndef PCDB_PATTERN_HASH_INDEX_H_
#define PCDB_PATTERN_HASH_INDEX_H_

#include <unordered_set>
#include <vector>

#include "pattern/pattern_index.h"

namespace pcdb {

/// \brief Structure B of §4.4: a hash table over whole patterns.
///
/// Subsumption checking enumerates all generalizations of the probe
/// pattern (each subset of its constants replaced by wildcards — 2^c
/// probes for c constants) and looks each up in the table. The
/// enumeration walks the subsets in Gray-code order, mutating a single
/// scratch pattern one cell per step instead of rebuilding the probe
/// from scratch per mask. Whenever 2^c exceeds the table size the
/// enumeration would be slower than simply scanning, so the check
/// adaptively falls back to a linear scan. Supersumption retrieval has
/// no sub-linear implementation on a hash table and always scans, which
/// is why the paper pairs hashing with the all-at-once and
/// sorted-incremental approaches (B1, B3).
///
/// Thread-compatible per the PatternIndex contract: no internal locking,
/// mutation requires exclusive access (shards own private instances; the
/// Gray-code scratch pattern is method-local, so const queries stay
/// safely concurrent).
class HashIndex : public PatternIndex {
 public:
  /// Forces one probe implementation; tests use this to check that both
  /// strategies agree. kAuto picks per probe as described above.
  enum class ProbeStrategy { kAuto, kScan, kEnumerate };

  explicit HashIndex(size_t arity) : arity_(arity) {}

  void Insert(const Pattern& p) override;
  bool Remove(const Pattern& p) override;
  bool HasSubsumer(const Pattern& p, bool strict) const override;
  void CollectSubsumed(const Pattern& p, bool strict,
                       std::vector<Pattern>* out) const override;
  void CollectSubsumers(const Pattern& p, bool strict,
                        std::vector<Pattern>* out) const override;
  size_t size() const override { return patterns_.size(); }
  std::vector<Pattern> Contents() const override;
  size_t ApproxMemoryBytes() const override;
  const char* name() const override { return "B"; }

  void set_probe_strategy_for_test(ProbeStrategy strategy) {
    probe_strategy_ = strategy;
  }

 private:
  /// True if the generalization enumeration should run for a probe with
  /// `num_constants` constants (2^c lookups beat a scan of size()).
  bool UseEnumeration(size_t num_constants) const;

  /// Visits every generalization of `p` stored in the table, strict or
  /// not, in Gray-code order; stops early when `visit` returns false.
  template <typename Visitor>
  void ForEachStoredGeneralization(const Pattern& p, bool strict,
                                   Visitor&& visit) const;

  size_t arity_;
  ProbeStrategy probe_strategy_ = ProbeStrategy::kAuto;
  std::unordered_set<Pattern, PatternHash> patterns_;
};

}  // namespace pcdb

#endif  // PCDB_PATTERN_HASH_INDEX_H_
