#ifndef PCDB_PATTERN_HASH_INDEX_H_
#define PCDB_PATTERN_HASH_INDEX_H_

#include <unordered_set>
#include <vector>

#include "pattern/pattern_index.h"

namespace pcdb {

/// \brief Structure B of §4.4: a hash table over whole patterns.
///
/// Subsumption checking enumerates all generalizations of the probe
/// pattern (each subset of its constants replaced by wildcards — 2^c
/// probes for c constants) and looks each up in the table. Supersumption
/// retrieval has no sub-linear implementation on a hash table and falls
/// back to scanning, which is why the paper pairs hashing with the
/// all-at-once and sorted-incremental approaches (B1, B3).
class HashIndex : public PatternIndex {
 public:
  explicit HashIndex(size_t arity) : arity_(arity) {}

  void Insert(const Pattern& p) override;
  bool Remove(const Pattern& p) override;
  bool HasSubsumer(const Pattern& p, bool strict) const override;
  void CollectSubsumed(const Pattern& p, bool strict,
                       std::vector<Pattern>* out) const override;
  void CollectSubsumers(const Pattern& p, bool strict,
                        std::vector<Pattern>* out) const override;
  size_t size() const override { return patterns_.size(); }
  std::vector<Pattern> Contents() const override;
  size_t ApproxMemoryBytes() const override;
  const char* name() const override { return "B"; }

 private:
  /// Above this many constants, 2^c generalization probes would exceed a
  /// linear scan; fall back to scanning.
  static constexpr size_t kMaxEnumeratedConstants = 20;

  size_t arity_;
  std::unordered_set<Pattern, PatternHash> patterns_;
};

}  // namespace pcdb

#endif  // PCDB_PATTERN_HASH_INDEX_H_
