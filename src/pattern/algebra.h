#ifndef PCDB_PATTERN_ALGEBRA_H_
#define PCDB_PATTERN_ALGEBRA_H_

#include <cstddef>
#include <vector>

#include "common/value.h"
#include "pattern/pattern.h"

namespace pcdb {

class ThreadPool;

/// \brief The pattern algebra of §4.1: for every SPJ data operator, an
/// analogous operator on metadata relations (sets of completeness
/// patterns).
///
/// Given base patterns that are valid for the base tables, these
/// operators compute patterns valid for the operator outputs
/// (Proposition 5, soundness) and produce every satisfiable entailed
/// pattern up to subsumption (Proposition 6, completeness without
/// instance). The operators are purely schema-level: they look only at
/// patterns, never at data tuples (for the instance-aware extension see
/// promotion.h).
///
/// Attribute positions are 0-based column indices into the (implicit)
/// schema; the annotated evaluator (annotated_eval.h) resolves names to
/// indices. Outputs are deduplicated but not minimized; apply
/// Minimize() from minimize.h when a minimal set is needed.

/// σ̃_{A=d}(P) (§4.1.1): patterns with '*' at A survive unchanged;
/// patterns with constant d at A survive generalized to '*' at A (the
/// output of the data selection can only contain rows with A = d, so the
/// constant carries no information); all other patterns are irrelevant.
PatternSet PatternSelectConst(const PatternSet& input, size_t attr,
                              const Value& d);

/// π̃_{¬A}(P) (§4.1.2): only patterns with '*' at A survive (projected);
/// a constant at A means completeness holds only for a slice, which the
/// projection output cannot distinguish.
PatternSet PatternProjectOut(const PatternSet& input, size_t attr);

/// σ̃_{A=B}(P) (§4.1.3): keeps patterns with '*' at A or B together with
/// their A↔B swapped twins (both are needed to survive later
/// projections), and generalizes patterns with equal constants at A and
/// B by wildcarding either side.
PatternSet PatternSelectAttrEq(const PatternSet& input, size_t attr_a,
                               size_t attr_b);

/// Mirrors the kRearrange data operator: keeps exactly the cells at
/// `indices`, in that order (duplicates allowed). Positions omitted from
/// `indices` are projected away, so — as with π̃_{¬A} — only patterns
/// with '*' at every omitted position survive.
PatternSet PatternRearrange(const PatternSet& input,
                            const std::vector<size_t>& indices);

/// P × P' — the metadata cartesian product: all concatenations.
PatternSet PatternCross(const PatternSet& left, const PatternSet& right);

/// \brief Execution strategies for the pattern equijoin (§4.1.4).
enum class PatternJoinStrategy {
  /// Literal definition: σ̃_{A=B}(P × P'). Materializes |P|·|P'|
  /// intermediate patterns.
  kCrossProductSelect,
  /// The pushed form the paper notes: a union of four smaller joins
  /// ((*,*), (*,d), (d,*), (d,d)), computed with hash partitioning on
  /// the join attribute.
  kPartitionedHashJoin,
};

/// P ⋈̃_{A=B} P' (§4.1.4): the wildcard joins with any constant. `attr_a`
/// indexes into left patterns, `attr_b` into right patterns; the output
/// arity is left + right with right cells appended.
///
/// With a non-null `pool` the partitioned strategy fans the
/// (*,*)/(*,d)/(d,*)/(d,d) partitions out across the pool's workers,
/// each filling a private deduplicating sink; the sinks are merged in a
/// fixed order afterwards, so the result is deterministic and
/// SetEquals-identical to the serial join.
PatternSet PatternJoin(
    const PatternSet& left, size_t attr_a, const PatternSet& right,
    size_t attr_b,
    PatternJoinStrategy strategy = PatternJoinStrategy::kPartitionedHashJoin,
    ThreadPool* pool = nullptr);

/// The pattern analogue of UNION ALL (an extension beyond the paper's
/// operator set): a pattern holds over R1 ⊎ R2 iff it holds over both
/// inputs — bag union only ever *adds* rows, so stability of the union's
/// p-slice requires stability on each side. The maximal such patterns
/// are the unifiers of unifiable pairs (p1, p2) ∈ P1 × P2.
PatternSet PatternUnion(const PatternSet& left, const PatternSet& right);

/// The pattern analogue of LIMIT (an extension beyond the paper's
/// operator set): a prefix of the answer is stable across completions
/// only when the whole answer is — unseen rows could otherwise enter or
/// displace the prefix. Patterns pass through iff the input set contains
/// the all-wildcard pattern (full completeness); otherwise nothing
/// survives. ORDER BY needs no operator: sorting is a bag bijection and
/// patterns pass through unchanged.
PatternSet PatternLimit(const PatternSet& input);

/// γ̃ (Appendix B): pattern analogue of group-by aggregation. Like the
/// projection onto the group-by attributes, a pattern survives iff it
/// has '*' at every position that is neither grouped nor merely
/// aggregated over; the output pattern is the group-by cells (in group
/// order) followed by one '*' per aggregate column. A completeness
/// pattern on an aggregate answer guarantees both completeness and
/// *correctness* of the covered groups: if all cities of Bulgaria are
/// present, then their count is the true count.
PatternSet PatternAggregate(const PatternSet& input,
                            const std::vector<size_t>& group_by,
                            size_t num_aggs);

}  // namespace pcdb

#endif  // PCDB_PATTERN_ALGEBRA_H_
