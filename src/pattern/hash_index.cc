#include "pattern/hash_index.h"

#include "common/logging.h"

namespace pcdb {

namespace {
constexpr size_t kBytesPerCell = sizeof(Pattern::Cell);
// Hash-set nodes carry bucket/pointer overhead on top of the pattern.
constexpr size_t kBytesPerPattern = sizeof(Pattern) + 48;
}  // namespace

void HashIndex::Insert(const Pattern& p) {
  PCDB_CHECK(p.arity() == arity_);
  patterns_.insert(p);
}

bool HashIndex::Remove(const Pattern& p) { return patterns_.erase(p) > 0; }

bool HashIndex::HasSubsumer(const Pattern& p, bool strict) const {
  std::vector<size_t> constant_positions;
  for (size_t i = 0; i < p.arity(); ++i) {
    if (!p.IsWildcard(i)) constant_positions.push_back(i);
  }
  const size_t c = constant_positions.size();
  if (c > kMaxEnumeratedConstants) {
    for (const Pattern& q : patterns_) {
      if (strict ? q.StrictlySubsumes(p) : q.Subsumes(p)) return true;
    }
    return false;
  }
  // Enumerate the 2^c generalizations of p: for each subset of constant
  // positions, the pattern with those constants replaced by wildcards.
  // mask == 0 is p itself, which only counts for non-strict checks.
  const uint64_t limit = uint64_t{1} << c;
  for (uint64_t mask = strict ? 1 : 0; mask < limit; ++mask) {
    Pattern g = p;
    for (size_t bit = 0; bit < c; ++bit) {
      if (mask & (uint64_t{1} << bit)) {
        g = g.WithWildcard(constant_positions[bit]);
      }
    }
    if (patterns_.count(g) > 0) return true;
  }
  return false;
}

void HashIndex::CollectSubsumed(const Pattern& p, bool strict,
                                std::vector<Pattern>* out) const {
  // Specialization enumeration would require the attribute domains;
  // scan instead (the paper notes hash tables only speed up subsumption
  // *checks*).
  for (const Pattern& q : patterns_) {
    if (strict ? p.StrictlySubsumes(q) : p.Subsumes(q)) out->push_back(q);
  }
}

void HashIndex::CollectSubsumers(const Pattern& p, bool strict,
                                 std::vector<Pattern>* out) const {
  std::vector<size_t> constant_positions;
  for (size_t i = 0; i < p.arity(); ++i) {
    if (!p.IsWildcard(i)) constant_positions.push_back(i);
  }
  const size_t c = constant_positions.size();
  if (c > kMaxEnumeratedConstants) {
    for (const Pattern& q : patterns_) {
      if (strict ? q.StrictlySubsumes(p) : q.Subsumes(p)) out->push_back(q);
    }
    return;
  }
  const uint64_t limit = uint64_t{1} << c;
  for (uint64_t mask = strict ? 1 : 0; mask < limit; ++mask) {
    Pattern g = p;
    for (size_t bit = 0; bit < c; ++bit) {
      if (mask & (uint64_t{1} << bit)) {
        g = g.WithWildcard(constant_positions[bit]);
      }
    }
    if (patterns_.count(g) > 0) out->push_back(g);
  }
}

std::vector<Pattern> HashIndex::Contents() const {
  return std::vector<Pattern>(patterns_.begin(), patterns_.end());
}

size_t HashIndex::ApproxMemoryBytes() const {
  return patterns_.size() * (kBytesPerPattern + arity_ * kBytesPerCell);
}

}  // namespace pcdb
