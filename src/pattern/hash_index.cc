#include "pattern/hash_index.h"

#include <bit>

#include "common/logging.h"

namespace pcdb {

namespace {
constexpr size_t kBytesPerCell = sizeof(Pattern::Cell);
// Hash-set nodes carry bucket/pointer overhead on top of the pattern.
constexpr size_t kBytesPerPattern = sizeof(Pattern) + 48;
}  // namespace

void HashIndex::Insert(const Pattern& p) {
  PCDB_CHECK(p.arity() == arity_);
  patterns_.insert(p);
}

bool HashIndex::Remove(const Pattern& p) { return patterns_.erase(p) > 0; }

bool HashIndex::UseEnumeration(size_t num_constants) const {
  switch (probe_strategy_) {
    case ProbeStrategy::kScan:
      return false;
    case ProbeStrategy::kEnumerate:
      return num_constants < 64;
    case ProbeStrategy::kAuto:
      // 2^c generalization lookups versus one scan of the whole table:
      // take whichever is fewer probes.
      return num_constants < 64 &&
             (uint64_t{1} << num_constants) <= patterns_.size();
  }
  return false;
}

template <typename Visitor>
void HashIndex::ForEachStoredGeneralization(const Pattern& p, bool strict,
                                            Visitor&& visit) const {
  std::vector<size_t> constant_positions;
  for (size_t i = 0; i < p.arity(); ++i) {
    if (!p.IsWildcard(i)) constant_positions.push_back(i);
  }
  const size_t c = constant_positions.size();
  // Saved constants, so cleared cells can be restored in O(1).
  std::vector<Pattern::Cell> saved(c);
  for (size_t i = 0; i < c; ++i) saved[i] = p.cell(constant_positions[i]);

  // Gray-code walk over the 2^c constant subsets: consecutive masks
  // differ in exactly one bit, so each step writes a single cell of the
  // scratch pattern (wildcard on set, saved constant on clear) instead
  // of rebuilding the probe with c WithWildcard copies.
  Pattern scratch = p;
  const uint64_t limit = uint64_t{1} << c;
  uint64_t gray = 0;
  for (uint64_t k = 0;;) {
    // gray == 0 is p itself, which only counts for non-strict checks.
    if (!(gray == 0 && strict) && patterns_.count(scratch) > 0) {
      if (!visit(scratch)) return;
    }
    if (++k == limit) break;
    const size_t bit = static_cast<size_t>(std::countr_zero(k));
    gray ^= uint64_t{1} << bit;
    scratch.SetCell(constant_positions[bit],
                    (gray & (uint64_t{1} << bit)) ? Pattern::Wildcard()
                                                  : saved[bit]);
  }
}

bool HashIndex::HasSubsumer(const Pattern& p, bool strict) const {
  size_t num_constants = p.NumConstants();
  if (!UseEnumeration(num_constants)) {
    for (const Pattern& q : patterns_) {
      if (strict ? q.StrictlySubsumes(p) : q.Subsumes(p)) return true;
    }
    return false;
  }
  bool found = false;
  ForEachStoredGeneralization(p, strict, [&found](const Pattern&) {
    found = true;
    return false;  // stop at the first hit
  });
  return found;
}

void HashIndex::CollectSubsumed(const Pattern& p, bool strict,
                                std::vector<Pattern>* out) const {
  // Specialization enumeration would require the attribute domains;
  // scan instead (the paper notes hash tables only speed up subsumption
  // *checks*).
  for (const Pattern& q : patterns_) {
    if (strict ? p.StrictlySubsumes(q) : p.Subsumes(q)) out->push_back(q);
  }
}

void HashIndex::CollectSubsumers(const Pattern& p, bool strict,
                                 std::vector<Pattern>* out) const {
  if (!UseEnumeration(p.NumConstants())) {
    for (const Pattern& q : patterns_) {
      if (strict ? q.StrictlySubsumes(p) : q.Subsumes(p)) out->push_back(q);
    }
    return;
  }
  ForEachStoredGeneralization(p, strict, [out](const Pattern& q) {
    out->push_back(q);
    return true;
  });
}

std::vector<Pattern> HashIndex::Contents() const {
  return std::vector<Pattern>(patterns_.begin(), patterns_.end());
}

size_t HashIndex::ApproxMemoryBytes() const {
  return patterns_.size() * (kBytesPerPattern + arity_ * kBytesPerCell);
}

}  // namespace pcdb
