#include "pattern/constraints.h"

#include <unordered_set>

#include "pattern/minimize.h"

namespace pcdb {

Result<PatternSet> DeriveKeyPatterns(const AnnotatedDatabase& adb,
                                     const KeyConstraint& key) {
  PCDB_ASSIGN_OR_RETURN(const Table* table,
                        adb.database().GetTable(key.table));
  if (key.columns.empty()) {
    return Status::InvalidArgument("key constraint without columns");
  }
  std::vector<size_t> key_cols;
  key_cols.reserve(key.columns.size());
  for (const std::string& name : key.columns) {
    PCDB_ASSIGN_OR_RETURN(size_t idx, table->schema().Resolve(name));
    key_cols.push_back(idx);
  }
  PatternSet out;
  std::unordered_set<Pattern, PatternHash> seen;
  for (const Tuple& t : table->rows()) {
    Pattern p = Pattern::AllWildcards(table->schema().arity());
    for (size_t c : key_cols) p = p.WithValue(c, t[c]);
    if (seen.insert(p).second) out.Add(std::move(p));
  }
  return out;
}

Status ApplyKeyConstraint(AnnotatedDatabase* adb, const KeyConstraint& key) {
  PCDB_ASSIGN_OR_RETURN(PatternSet derived, DeriveKeyPatterns(*adb, key));
  PatternSet combined = adb->patterns(key.table);
  for (const Pattern& p : derived) combined.AddUnique(p);
  adb->SetPatterns(key.table, Minimize(combined));
  return Status::OK();
}

Result<std::vector<Value>> DeriveInclusionDomain(
    const AnnotatedDatabase& adb, const InclusionConstraint& inclusion) {
  PCDB_ASSIGN_OR_RETURN(const Table* ref_table,
                        adb.database().GetTable(inclusion.ref_table));
  PCDB_ASSIGN_OR_RETURN(size_t ref_col,
                        ref_table->schema().Resolve(inclusion.ref_column));
  // The stored values of ref_column bound the real-world values of
  // table.column only if the referenced table can gain no new rows at
  // all — conservatively, if its pattern set asserts full completeness.
  bool ref_closed = false;
  for (const Pattern& p : adb.patterns(inclusion.ref_table)) {
    if (p.IsAllWildcards()) {
      ref_closed = true;
      break;
    }
  }
  if (!ref_closed) {
    return Status::NotFound(
        "referenced table '" + inclusion.ref_table +
        "' is not asserted fully complete; no domain bound derivable");
  }
  return ref_table->DistinctValues(ref_col);
}

Status ApplyInclusionConstraint(AnnotatedDatabase* adb,
                                const InclusionConstraint& inclusion) {
  // Validate the constrained column exists.
  PCDB_ASSIGN_OR_RETURN(const Table* table,
                        adb->database().GetTable(inclusion.table));
  PCDB_RETURN_NOT_OK(table->schema().Resolve(inclusion.column).status());
  PCDB_ASSIGN_OR_RETURN(std::vector<Value> domain,
                        DeriveInclusionDomain(*adb, inclusion));
  adb->domains().SetDomain(inclusion.column, std::move(domain));
  return Status::OK();
}

}  // namespace pcdb
