#include "pattern/storage.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace pcdb {
namespace {

namespace fs = std::filesystem;

/// Splits a storage line on unescaped '|' without unescaping fields.
std::vector<std::string> SplitStored(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  bool escaped = false;
  for (char c : line) {
    if (escaped) {
      current.push_back(c);
      escaped = false;
      continue;
    }
    if (c == '\\') {
      current.push_back(c);
      escaped = true;
      continue;
    }
    if (c == '|') {
      fields.push_back(std::move(current));
      current.clear();
      continue;
    }
    current.push_back(c);
  }
  fields.push_back(std::move(current));
  return fields;
}

/// Serializes a Value for a storage field.
std::string StoreValue(const Value& v) {
  if (v.is_string()) return EscapeField(v.str());
  return v.ToString();
}

Result<Value> LoadValue(const std::string& stored, ValueType type) {
  if (type == ValueType::kString) {
    PCDB_ASSIGN_OR_RETURN(std::string raw, UnescapeField(stored));
    return Value(std::move(raw));
  }
  return Value::Parse(stored, type);
}

Status WriteFile(const fs::path& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) {
    return Status::InvalidArgument("cannot open '" + path.string() +
                                   "' for writing");
  }
  out << content;
  if (!out) return Status::Internal("write to '" + path.string() + "' failed");
  return Status::OK();
}

Result<std::string> ReadFile(const fs::path& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open '" + path.string() + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

std::string EscapeField(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '|':
        out += "\\|";
        break;
      case '*':
        out += "\\*";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

Result<std::string> UnescapeField(const std::string& stored) {
  std::string out;
  out.reserve(stored.size());
  for (size_t i = 0; i < stored.size(); ++i) {
    if (stored[i] != '\\') {
      out.push_back(stored[i]);
      continue;
    }
    if (i + 1 == stored.size()) {
      return Status::ParseError("dangling escape in stored field");
    }
    char next = stored[++i];
    out.push_back(next == 'n' ? '\n' : next);
  }
  return out;
}

Status SaveAnnotatedDatabase(const AnnotatedDatabase& adb,
                             const std::string& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::InvalidArgument("cannot create directory '" + dir +
                                   "': " + ec.message());
  }

  std::string catalog;
  for (const std::string& name : adb.database().TableNames()) {
    PCDB_ASSIGN_OR_RETURN(const Table* table, adb.database().GetTable(name));
    catalog += EscapeField(name);
    for (const Column& col : table->schema().columns()) {
      catalog += "|" + EscapeField(col.name) + ":" +
                 ValueTypeToString(col.type);
    }
    catalog += "\n";

    std::string data;
    for (const Tuple& row : table->rows()) {
      for (size_t i = 0; i < row.size(); ++i) {
        if (i > 0) data += "|";
        data += StoreValue(row[i]);
      }
      data += "\n";
    }
    PCDB_RETURN_NOT_OK(WriteFile(fs::path(dir) / (name + ".data"), data));

    std::string meta;
    for (const Pattern& p : adb.patterns(name)) {
      for (size_t i = 0; i < p.arity(); ++i) {
        if (i > 0) meta += "|";
        // The bare '*' is the wildcard; literal asterisks in string
        // values were escaped by StoreValue.
        meta += p.IsWildcard(i) ? "*" : StoreValue(p.value(i));
      }
      meta += "\n";
    }
    PCDB_RETURN_NOT_OK(WriteFile(fs::path(dir) / (name + ".meta"), meta));
  }
  PCDB_RETURN_NOT_OK(WriteFile(fs::path(dir) / "catalog", catalog));

  // Domains: column|type|v1|v2|... (type disambiguates value parsing).
  std::string domains;
  for (const std::string& name : adb.database().TableNames()) {
    PCDB_ASSIGN_OR_RETURN(const Table* table, adb.database().GetTable(name));
    for (const Column& col : table->schema().columns()) {
      const std::vector<Value>* domain = adb.domains().Lookup(col.name);
      if (domain == nullptr) continue;
      std::string line = EscapeField(col.name);
      line += "|";
      line += ValueTypeToString(col.type);
      for (const Value& v : *domain) line += "|" + StoreValue(v);
      line += "\n";
      // Deduplicate: a domain registered under a base name resolves for
      // several qualified columns; store it once per distinct line.
      if (domains.find(line) == std::string::npos) domains += line;
    }
  }
  return WriteFile(fs::path(dir) / "domains", domains);
}

Result<AnnotatedDatabase> LoadAnnotatedDatabase(const std::string& dir) {
  PCDB_ASSIGN_OR_RETURN(std::string catalog,
                        ReadFile(fs::path(dir) / "catalog"));
  AnnotatedDatabase adb;
  std::istringstream catalog_stream(catalog);
  std::string line;
  while (std::getline(catalog_stream, line)) {
    if (TrimString(line).empty()) continue;
    std::vector<std::string> fields = SplitStored(line);
    if (fields.size() < 2) {
      return Status::ParseError("catalog line with no columns: " + line);
    }
    PCDB_ASSIGN_OR_RETURN(std::string name, UnescapeField(fields[0]));
    std::vector<Column> columns;
    for (size_t i = 1; i < fields.size(); ++i) {
      size_t colon = fields[i].rfind(':');
      if (colon == std::string::npos) {
        return Status::ParseError("catalog column without type: " +
                                  fields[i]);
      }
      PCDB_ASSIGN_OR_RETURN(std::string col_name,
                            UnescapeField(fields[i].substr(0, colon)));
      PCDB_ASSIGN_OR_RETURN(ValueType type,
                            ValueTypeFromString(fields[i].substr(colon + 1)));
      columns.push_back(Column{std::move(col_name), type});
    }
    Schema schema(std::move(columns));
    PCDB_RETURN_NOT_OK(adb.CreateTable(name, schema));

    PCDB_ASSIGN_OR_RETURN(std::string data,
                          ReadFile(fs::path(dir) / (name + ".data")));
    std::istringstream data_stream(data);
    std::string record;
    while (std::getline(data_stream, record)) {
      if (record.empty()) continue;
      std::vector<std::string> raw = SplitStored(record);
      if (raw.size() != schema.arity()) {
        return Status::ParseError("data record arity mismatch in table '" +
                                  name + "'");
      }
      Tuple row;
      row.reserve(raw.size());
      for (size_t i = 0; i < raw.size(); ++i) {
        PCDB_ASSIGN_OR_RETURN(Value v,
                              LoadValue(raw[i], schema.column(i).type));
        row.push_back(std::move(v));
      }
      PCDB_RETURN_NOT_OK(adb.AddRow(name, std::move(row)));
    }

    PCDB_ASSIGN_OR_RETURN(std::string meta,
                          ReadFile(fs::path(dir) / (name + ".meta")));
    std::istringstream meta_stream(meta);
    while (std::getline(meta_stream, record)) {
      if (record.empty()) continue;
      std::vector<std::string> raw = SplitStored(record);
      if (raw.size() != schema.arity()) {
        return Status::ParseError("pattern arity mismatch in table '" +
                                  name + "'");
      }
      std::vector<Pattern::Cell> cells;
      cells.reserve(raw.size());
      for (size_t i = 0; i < raw.size(); ++i) {
        if (raw[i] == "*") {
          cells.push_back(Pattern::Wildcard());
        } else {
          PCDB_ASSIGN_OR_RETURN(Value v,
                                LoadValue(raw[i], schema.column(i).type));
          cells.push_back(std::move(v));
        }
      }
      PCDB_RETURN_NOT_OK(adb.AddPattern(name, Pattern(std::move(cells))));
    }
  }

  auto domains = ReadFile(fs::path(dir) / "domains");
  if (domains.ok()) {
    std::istringstream domain_stream(*domains);
    while (std::getline(domain_stream, line)) {
      if (TrimString(line).empty()) continue;
      std::vector<std::string> fields = SplitStored(line);
      if (fields.size() < 2) {
        return Status::ParseError("domain line without type: " + line);
      }
      PCDB_ASSIGN_OR_RETURN(std::string column, UnescapeField(fields[0]));
      PCDB_ASSIGN_OR_RETURN(ValueType type, ValueTypeFromString(fields[1]));
      std::vector<Value> values;
      for (size_t i = 2; i < fields.size(); ++i) {
        PCDB_ASSIGN_OR_RETURN(Value v, LoadValue(fields[i], type));
        values.push_back(std::move(v));
      }
      adb.domains().SetDomain(column, std::move(values));
    }
  }
  return adb;
}

}  // namespace pcdb
