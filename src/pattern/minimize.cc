#include "pattern/minimize.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/failpoint.h"
#include "common/thread_annotations.h"
#include "common/timer.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "obs/trace.h"
#include "pattern/signature.h"

namespace pcdb {

std::string MinimizeMethodName(PatternIndexKind kind,
                               MinimizeApproach approach) {
  return std::string(PatternIndexKindLetter(kind)) +
         std::to_string(static_cast<int>(approach));
}

namespace {

/// Deadline/memory poll cadence inside the per-pattern loops (the
/// pattern budget itself is checked on every insert — the index size IS
/// the governed quantity).
constexpr size_t kPatternsPerContextCheck = 64;

void TrackPeaks(const PatternIndex& index, MinimizeStats* stats) {
  if (stats == nullptr) return;
  stats->peak_index_size = std::max(stats->peak_index_size, index.size());
  stats->peak_memory_bytes =
      std::max(stats->peak_memory_bytes, index.ApproxMemoryBytes());
}

/// Checkpoint after an index insert; `iter` is the running loop counter.
Status CheckIndexBudgets(const PatternIndex& index, const ExecContext& ctx,
                         size_t iter) {
  PCDB_RETURN_NOT_OK(ctx.CheckPatterns(index.size()));
  if (iter % kPatternsPerContextCheck == 0) {
    PCDB_RETURN_NOT_OK(ctx.Check());
    PCDB_RETURN_NOT_OK(ctx.CheckMemory(index.ApproxMemoryBytes()));
  }
  return Status::OK();
}

Result<PatternSet> MinimizeAllAtOnce(const PatternSet& input,
                                     PatternIndexKind kind,
                                     const ExecContext& ctx,
                                     MinimizeStats* stats, size_t* probes) {
  if (input.empty()) return PatternSet();
  auto index = MakePatternIndex(kind, input[0].arity());
  // Indexes have set semantics, so loading also deduplicates.
  size_t iter = 0;
  for (const Pattern& p : input) {
    PCDB_FAILPOINT("minimize.pattern");
    index->Insert(p);
    TrackPeaks(*index, stats);
    if (!ctx.unbounded()) {
      PCDB_RETURN_NOT_OK(CheckIndexBudgets(*index, ctx, iter++));
    }
  }
  PatternSet out;
  iter = 0;
  for (const Pattern& p : index->Contents()) {
    PCDB_FAILPOINT("minimize.pattern");
    if (!ctx.unbounded() && iter++ % kPatternsPerContextCheck == 0) {
      PCDB_RETURN_NOT_OK(ctx.Check());
    }
    ++*probes;
    if (!index->HasSubsumer(p, /*strict=*/true)) out.Add(p);
  }
  return out;
}

/// Index size from which the incremental approach switches its
/// supersumption retrieval to a chunked parallel scan. Below this the
/// per-call snapshot + fan-out overhead beats any win.
constexpr size_t kParallelScanMinIndexSize = 256;

/// Parallel supersumption retrieval: the set of stored patterns strictly
/// subsumed by `p`, computed by a chunked scan over a contents snapshot
/// instead of the index's own CollectSubsumed walk. Yields the same
/// *set* (survivor state is therefore identical to the serial run);
/// only the collection order differs, which Remove-then-Insert erases.
Status ParallelCollectSubsumed(const PatternIndex& index, const Pattern& p,
                               ThreadPool* pool, const ExecContext& ctx,
                               std::vector<Pattern>* out) {
  const std::vector<Pattern> snapshot = index.Contents();
  const auto ranges = ChunkRanges(
      snapshot.size(),
      ParallelChunkCount(pool->num_threads(), snapshot.size()));
  std::vector<std::vector<Pattern>> hits(ranges.size());
  PCDB_RETURN_NOT_OK(TryParallelForRanges(
      pool, ranges, [&](size_t c, IndexRange r) -> Status {
        PCDB_RETURN_NOT_OK(ctx.Check());
        for (size_t i = r.begin; i < r.end; ++i) {
          if (p.StrictlySubsumes(snapshot[i])) hits[c].push_back(snapshot[i]);
        }
        return Status::OK();
      }));
  for (std::vector<Pattern>& h : hits) {
    for (Pattern& q : h) out->push_back(std::move(q));
  }
  return Status::OK();
}

Result<PatternSet> MinimizeIncremental(const PatternSet& input,
                                       PatternIndexKind kind,
                                       const ExecContext& ctx,
                                       MinimizeStats* stats,
                                       ThreadPool* scan_pool,
                                       size_t* probes) {
  if (input.empty()) return PatternSet();
  auto index = MakePatternIndex(kind, input[0].arity());
  std::vector<Pattern> subsumed;
  size_t iter = 0;
  for (const Pattern& p : input) {
    PCDB_FAILPOINT("minimize.pattern");
    // Subsumption check: p contributes nothing if some maximal pattern
    // already subsumes it (or duplicates it).
    ++*probes;
    if (index->HasSubsumer(p, /*strict=*/false)) continue;
    // Supersumption retrieval: p displaces every stored pattern it
    // strictly subsumes. With a pool and a big enough index the scan
    // fans out over contents chunks; the collected set is identical.
    subsumed.clear();
    ++*probes;
    if (scan_pool != nullptr && scan_pool->num_threads() > 1 &&
        index->size() >= kParallelScanMinIndexSize) {
      PCDB_RETURN_NOT_OK(
          ParallelCollectSubsumed(*index, p, scan_pool, ctx, &subsumed));
    } else {
      index->CollectSubsumed(p, /*strict=*/true, &subsumed);
    }
    for (const Pattern& q : subsumed) index->Remove(q);
    index->Insert(p);
    TrackPeaks(*index, stats);
    if (!ctx.unbounded()) {
      PCDB_RETURN_NOT_OK(CheckIndexBudgets(*index, ctx, iter++));
    }
  }
  return PatternSet(index->Contents());
}

Result<PatternSet> MinimizeSortedIncremental(const PatternSet& input,
                                             PatternIndexKind kind,
                                             const ExecContext& ctx,
                                             MinimizeStats* stats,
                                             size_t* probes) {
  if (input.empty()) return PatternSet();
  std::vector<Pattern> sorted = input.patterns();
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Pattern& a, const Pattern& b) {
                     return a.NumWildcards() > b.NumWildcards();
                   });
  auto index = MakePatternIndex(kind, input[0].arity());
  size_t iter = 0;
  for (const Pattern& p : sorted) {
    PCDB_FAILPOINT("minimize.pattern");
    // A strict subsumer has strictly more wildcards, so it was processed
    // earlier; equal patterns are caught by the non-strict check. No
    // supersumption retrieval is needed.
    ++*probes;
    if (index->HasSubsumer(p, /*strict=*/false)) continue;
    index->Insert(p);
    TrackPeaks(*index, stats);
    if (!ctx.unbounded()) {
      PCDB_RETURN_NOT_OK(CheckIndexBudgets(*index, ctx, iter++));
    }
  }
  return PatternSet(index->Contents());
}

}  // namespace

PatternSet Minimize(const PatternSet& input, MinimizeApproach approach,
                    PatternIndexKind kind, MinimizeStats* stats) {
  Result<PatternSet> out =
      Minimize(input, approach, kind, ExecContext::Unbounded(), stats);
  if (out.ok()) return std::move(out).ValueOrDie();
  // Only an injected fault can fail an unbounded minimization, and this
  // legacy signature has no error channel. Returning the input
  // unminimized is sound — the sets are semantically equivalent, just
  // redundant — and keeps fault injection from terminating callers.
  if (stats != nullptr) stats->output_size = input.size();
  return input;
}

Result<PatternSet> Minimize(const PatternSet& input, MinimizeApproach approach,
                            PatternIndexKind kind, const ExecContext& ctx,
                            MinimizeStats* stats) {
  return Minimize(input, approach, kind, /*scan_pool=*/nullptr, ctx, stats);
}

namespace {

/// Static span names keep the tracer allocation-free.
const char* MinimizeSpanName(MinimizeApproach approach) {
  switch (approach) {
    case MinimizeApproach::kAllAtOnce:
      return kSpanMinimizeAllAtOnce;
    case MinimizeApproach::kIncremental:
      return kSpanMinimizeIncremental;
    case MinimizeApproach::kSortedIncremental:
      return kSpanMinimizeSortedIncremental;
  }
  return kSpanMinimize;
}

}  // namespace

Result<PatternSet> Minimize(const PatternSet& input, MinimizeApproach approach,
                            PatternIndexKind kind, ThreadPool* scan_pool,
                            const ExecContext& ctx, MinimizeStats* stats) {
  WallTimer timer;
  PCDB_TRACE_SPAN(span, MinimizeSpanName(approach));
  Result<PatternSet> out = Status::Internal("unhandled minimize approach");
  // Probes are counted locally so the engine counter and the trace arg
  // see them even when the caller passed no stats. The exception guard
  // gives serial runs the same kInternal a pool worker's catch produces
  // for throw-action failpoints; the span closes (RAII) on every path.
  size_t probes = 0;
  try {
    switch (approach) {
      case MinimizeApproach::kAllAtOnce:
        out = MinimizeAllAtOnce(input, kind, ctx, stats, &probes);
        break;
      case MinimizeApproach::kIncremental:
        out = MinimizeIncremental(input, kind, ctx, stats, scan_pool, &probes);
        break;
      case MinimizeApproach::kSortedIncremental:
        out = MinimizeSortedIncremental(input, kind, ctx, stats, &probes);
        break;
    }
  } catch (const std::exception& e) {
    return Status::Internal(std::string("minimization failed: ") + e.what());
  }
  const EngineCounters& engine = EngineMetrics();
  engine.patterns_minimized->Increment(input.size());
  engine.subsumption_probes->Increment(probes);
  span.Arg("kind", static_cast<uint64_t>(kind));
  span.Arg("input", input.size());
  span.Arg("probes", probes);
  if (stats != nullptr) stats->probes += probes;
  if (out.ok() && stats != nullptr) {
    stats->output_size = out.ValueOrDie().size();
    stats->millis = timer.ElapsedMillis();
  }
  return out;
}

PatternSet Minimize(const PatternSet& input) {
  return Minimize(input, MinimizeApproach::kAllAtOnce,
                  PatternIndexKind::kDiscriminationTree);
}

namespace {

/// Folds per-shard peak counters into one result under a lock. Shards
/// finish in a nondeterministic order, but max-merging is commutative,
/// so the folded peaks are deterministic anyway.
class PeakAccumulator {
 public:
  void Merge(const MinimizeStats& s) PCDB_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    peak_index_size_ = std::max(peak_index_size_, s.peak_index_size);
    peak_memory_bytes_ = std::max(peak_memory_bytes_, s.peak_memory_bytes);
    probes_ += s.probes;  // probes sum across shards (peaks max-merge)
  }

  void FlushInto(MinimizeStats* stats) PCDB_EXCLUDES(mu_) {
    if (stats == nullptr) return;
    MutexLock lock(&mu_);
    stats->peak_index_size =
        std::max(stats->peak_index_size, peak_index_size_);
    stats->peak_memory_bytes =
        std::max(stats->peak_memory_bytes, peak_memory_bytes_);
    stats->probes += probes_;
  }

 private:
  Mutex mu_;
  size_t peak_index_size_ PCDB_GUARDED_BY(mu_) = 0;
  size_t peak_memory_bytes_ PCDB_GUARDED_BY(mu_) = 0;
  size_t probes_ PCDB_GUARDED_BY(mu_) = 0;
};

/// The governed sharded pipeline; ParallelMinimize wraps it with the
/// exception guard so serial and pooled fault paths report alike.
Result<PatternSet> ParallelMinimizeGoverned(const PatternSet& input,
                                            MinimizeApproach approach,
                                            PatternIndexKind kind,
                                            ThreadPool* pool,
                                            const ExecContext& ctx,
                                            MinimizeStats* stats) {
  const size_t threads = pool == nullptr ? 1 : pool->num_threads();
  // Oversubscribed sharding: up to 8 shards per worker (capped so every
  // shard keeps >= 2 patterns) lets the FIFO queue rebalance when the
  // signature distribution is skewed — one slow shard no longer idles
  // the other workers. Below 2 patterns per prospective shard the
  // shard/merge machinery is pure overhead; the serial path is
  // definitionally equivalent.
  // The fallback paths run on the caller's thread, so they may hand the
  // pool down for the incremental approach's inner CollectSubsumed scans
  // (the shard tasks below must not — they already occupy pool workers).
  size_t num_shards = ParallelChunkCount(threads, input.size() / 2);
  if (num_shards <= 1) {
    return Minimize(input, approach, kind, pool, ctx, stats);
  }
  WallTimer timer;
  PCDB_TRACE_SPAN(span, kSpanMinimizeParallel);
  span.Arg("kind", static_cast<uint64_t>(kind));
  span.Arg("input", input.size());
  PCDB_RETURN_NOT_OK(ctx.Check());

  // Group pattern indices by signature; a whole group always lands in
  // one shard, so duplicates (and any equal-signature subsumption, which
  // is exactly equality) resolve locally.
  std::unordered_map<uint64_t, std::vector<uint32_t>> groups;
  for (size_t i = 0; i < input.size(); ++i) {
    groups[PatternConstantSignature(input[i])].push_back(
        static_cast<uint32_t>(i));
  }
  num_shards = std::min(num_shards, groups.size());
  if (num_shards <= 1) {
    // Single signature group: sharding cannot split the work, but the
    // incremental inner scans still can (the ROADMAP case).
    return Minimize(input, approach, kind, pool, ctx, stats);
  }

  // Greedy balance: largest group to the least-loaded shard. Sorting by
  // (size desc, signature asc) keeps the assignment deterministic.
  std::vector<const std::pair<const uint64_t, std::vector<uint32_t>>*> order;
  order.reserve(groups.size());
  for (const auto& g : groups) order.push_back(&g);
  std::sort(order.begin(), order.end(), [](const auto* a, const auto* b) {
    if (a->second.size() != b->second.size()) {
      return a->second.size() > b->second.size();
    }
    return a->first < b->first;
  });
  std::vector<PatternSet> shard_in(num_shards);
  std::vector<size_t> load(num_shards, 0);
  for (const auto* g : order) {
    size_t target = 0;
    for (size_t s = 1; s < num_shards; ++s) {
      if (load[s] < load[target]) target = s;
    }
    for (uint32_t idx : g->second) shard_in[target].Add(input[idx]);
    load[target] += g->second.size();
  }

  // Phase 1: minimize every shard concurrently with the requested
  // method. Each task owns its index and output slot; peak counters are
  // folded into a shared, mutex-guarded accumulator. The per-shard
  // Minimize inherits `ctx`, so deadlines and budgets are enforced
  // inside every shard, and first-error cancel-the-rest skips the
  // remaining shards once one fails.
  std::vector<PatternSet> shard_out(num_shards);
  PeakAccumulator peaks;
  PCDB_RETURN_NOT_OK(TryParallelFor(pool, num_shards, [&](size_t s) -> Status {
    PCDB_FAILPOINT("minimize.shard");
    MinimizeStats local;
    PCDB_ASSIGN_OR_RETURN(shard_out[s],
                          Minimize(shard_in[s], approach, kind, ctx,
                                   stats == nullptr ? nullptr : &local));
    if (stats != nullptr) peaks.Merge(local);
    return Status::OK();
  }));

  // Phase 2 (merge): all-at-once over the union of shard survivors. The
  // union is duplicate-free (duplicates share a signature and were
  // collapsed in-shard), so a strict subsumer check is exact. The index
  // is built once and only read afterwards; probes write disjoint
  // keep-slots, which makes the output deterministic. The budget check
  // here is the authoritative one — per-shard indexes each stay under
  // the budget, but only the merged index sees the union's size.
  std::vector<Pattern> merged;
  for (const PatternSet& s : shard_out) {
    merged.insert(merged.end(), s.begin(), s.end());
  }
  PatternSet out;
  if (!merged.empty()) {
    auto index = MakePatternIndex(kind, merged[0].arity());
    size_t iter = 0;
    for (const Pattern& p : merged) {
      index->Insert(p);
      if (!ctx.unbounded()) {
        PCDB_RETURN_NOT_OK(CheckIndexBudgets(*index, ctx, iter++));
      }
    }
    std::vector<char> keep(merged.size(), 0);
    PCDB_RETURN_NOT_OK(
        TryParallelFor(pool, merged.size(), [&](size_t i) -> Status {
          if (!ctx.unbounded() && i % kPatternsPerContextCheck == 0) {
            PCDB_RETURN_NOT_OK(ctx.Check());
          }
          keep[i] = index->HasSubsumer(merged[i], /*strict=*/true) ? 0 : 1;
          return Status::OK();
        }));
    for (size_t i = 0; i < merged.size(); ++i) {
      if (keep[i]) out.Add(merged[i]);
    }
    // One HasSubsumer probe ran per merged element (counted after the
    // fan-out: the keep-slot writers must stay free of shared state).
    EngineMetrics().subsumption_probes->Increment(merged.size());
    span.Arg("merge_probes", merged.size());
    if (stats != nullptr) {
      stats->probes += merged.size();
      stats->peak_index_size = std::max(stats->peak_index_size, index->size());
      stats->peak_memory_bytes =
          std::max(stats->peak_memory_bytes, index->ApproxMemoryBytes());
    }
  }
  peaks.FlushInto(stats);
  if (stats != nullptr) {
    stats->output_size = out.size();
    stats->millis = timer.ElapsedMillis();
  }
  return out;
}

}  // namespace

PatternSet ParallelMinimize(const PatternSet& input, MinimizeApproach approach,
                            PatternIndexKind kind, ThreadPool* pool,
                            MinimizeStats* stats) {
  Result<PatternSet> out = ParallelMinimize(input, approach, kind, pool,
                                            ExecContext::Unbounded(), stats);
  if (out.ok()) return std::move(out).ValueOrDie();
  // Same identity fallback as the legacy serial Minimize: sound, and
  // only reachable under fault injection.
  if (stats != nullptr) stats->output_size = input.size();
  return input;
}

Result<PatternSet> ParallelMinimize(const PatternSet& input,
                                    MinimizeApproach approach,
                                    PatternIndexKind kind, ThreadPool* pool,
                                    const ExecContext& ctx,
                                    MinimizeStats* stats) {
  try {
    return ParallelMinimizeGoverned(input, approach, kind, pool, ctx, stats);
  } catch (const std::exception& e) {
    return Status::Internal(std::string("minimization failed: ") + e.what());
  }
}

PatternSet ParallelMinimize(const PatternSet& input, MinimizeApproach approach,
                            PatternIndexKind kind, size_t num_threads,
                            MinimizeStats* stats) {
  if (num_threads <= 1) return Minimize(input, approach, kind, stats);
  ThreadPool pool(num_threads);
  return ParallelMinimize(input, approach, kind, &pool, stats);
}

PatternSet ParallelMinimize(const PatternSet& input, size_t num_threads) {
  return ParallelMinimize(input, MinimizeApproach::kAllAtOnce,
                          PatternIndexKind::kDiscriminationTree, num_threads);
}

bool IsMinimal(const PatternSet& set) {
  std::unordered_set<Pattern, PatternHash> seen;
  for (const Pattern& p : set) {
    if (!seen.insert(p).second) return false;  // duplicate
  }
  for (const Pattern& p : set) {
    for (const Pattern& q : set) {
      if (q.StrictlySubsumes(p)) return false;
    }
  }
  return true;
}

}  // namespace pcdb
