#include "pattern/minimize.h"

#include <algorithm>
#include <unordered_set>

#include "common/timer.h"

namespace pcdb {

std::string MinimizeMethodName(PatternIndexKind kind,
                               MinimizeApproach approach) {
  return std::string(PatternIndexKindLetter(kind)) +
         std::to_string(static_cast<int>(approach));
}

namespace {

void TrackPeaks(const PatternIndex& index, MinimizeStats* stats) {
  if (stats == nullptr) return;
  stats->peak_index_size = std::max(stats->peak_index_size, index.size());
  stats->peak_memory_bytes =
      std::max(stats->peak_memory_bytes, index.ApproxMemoryBytes());
}

PatternSet MinimizeAllAtOnce(const PatternSet& input, PatternIndexKind kind,
                             MinimizeStats* stats) {
  if (input.empty()) return PatternSet();
  auto index = MakePatternIndex(kind, input[0].arity());
  // Indexes have set semantics, so loading also deduplicates.
  for (const Pattern& p : input) {
    index->Insert(p);
    TrackPeaks(*index, stats);
  }
  PatternSet out;
  for (const Pattern& p : index->Contents()) {
    if (!index->HasSubsumer(p, /*strict=*/true)) out.Add(p);
  }
  return out;
}

PatternSet MinimizeIncremental(const PatternSet& input, PatternIndexKind kind,
                               MinimizeStats* stats) {
  if (input.empty()) return PatternSet();
  auto index = MakePatternIndex(kind, input[0].arity());
  std::vector<Pattern> subsumed;
  for (const Pattern& p : input) {
    // Subsumption check: p contributes nothing if some maximal pattern
    // already subsumes it (or duplicates it).
    if (index->HasSubsumer(p, /*strict=*/false)) continue;
    // Supersumption retrieval: p displaces every stored pattern it
    // strictly subsumes.
    subsumed.clear();
    index->CollectSubsumed(p, /*strict=*/true, &subsumed);
    for (const Pattern& q : subsumed) index->Remove(q);
    index->Insert(p);
    TrackPeaks(*index, stats);
  }
  return PatternSet(index->Contents());
}

PatternSet MinimizeSortedIncremental(const PatternSet& input,
                                     PatternIndexKind kind,
                                     MinimizeStats* stats) {
  if (input.empty()) return PatternSet();
  std::vector<Pattern> sorted = input.patterns();
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Pattern& a, const Pattern& b) {
                     return a.NumWildcards() > b.NumWildcards();
                   });
  auto index = MakePatternIndex(kind, input[0].arity());
  for (const Pattern& p : sorted) {
    // A strict subsumer has strictly more wildcards, so it was processed
    // earlier; equal patterns are caught by the non-strict check. No
    // supersumption retrieval is needed.
    if (index->HasSubsumer(p, /*strict=*/false)) continue;
    index->Insert(p);
    TrackPeaks(*index, stats);
  }
  return PatternSet(index->Contents());
}

}  // namespace

PatternSet Minimize(const PatternSet& input, MinimizeApproach approach,
                    PatternIndexKind kind, MinimizeStats* stats) {
  WallTimer timer;
  PatternSet out;
  switch (approach) {
    case MinimizeApproach::kAllAtOnce:
      out = MinimizeAllAtOnce(input, kind, stats);
      break;
    case MinimizeApproach::kIncremental:
      out = MinimizeIncremental(input, kind, stats);
      break;
    case MinimizeApproach::kSortedIncremental:
      out = MinimizeSortedIncremental(input, kind, stats);
      break;
  }
  if (stats != nullptr) {
    stats->output_size = out.size();
    stats->millis = timer.ElapsedMillis();
  }
  return out;
}

PatternSet Minimize(const PatternSet& input) {
  return Minimize(input, MinimizeApproach::kAllAtOnce,
                  PatternIndexKind::kDiscriminationTree);
}

bool IsMinimal(const PatternSet& set) {
  std::unordered_set<Pattern, PatternHash> seen;
  for (const Pattern& p : set) {
    if (!seen.insert(p).second) return false;  // duplicate
  }
  for (const Pattern& p : set) {
    for (const Pattern& q : set) {
      if (q.StrictlySubsumes(p)) return false;
    }
  }
  return true;
}

}  // namespace pcdb
