#include "pattern/minimize.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/thread_annotations.h"
#include "common/timer.h"

namespace pcdb {

std::string MinimizeMethodName(PatternIndexKind kind,
                               MinimizeApproach approach) {
  return std::string(PatternIndexKindLetter(kind)) +
         std::to_string(static_cast<int>(approach));
}

namespace {

void TrackPeaks(const PatternIndex& index, MinimizeStats* stats) {
  if (stats == nullptr) return;
  stats->peak_index_size = std::max(stats->peak_index_size, index.size());
  stats->peak_memory_bytes =
      std::max(stats->peak_memory_bytes, index.ApproxMemoryBytes());
}

PatternSet MinimizeAllAtOnce(const PatternSet& input, PatternIndexKind kind,
                             MinimizeStats* stats) {
  if (input.empty()) return PatternSet();
  auto index = MakePatternIndex(kind, input[0].arity());
  // Indexes have set semantics, so loading also deduplicates.
  for (const Pattern& p : input) {
    index->Insert(p);
    TrackPeaks(*index, stats);
  }
  PatternSet out;
  for (const Pattern& p : index->Contents()) {
    if (!index->HasSubsumer(p, /*strict=*/true)) out.Add(p);
  }
  return out;
}

PatternSet MinimizeIncremental(const PatternSet& input, PatternIndexKind kind,
                               MinimizeStats* stats) {
  if (input.empty()) return PatternSet();
  auto index = MakePatternIndex(kind, input[0].arity());
  std::vector<Pattern> subsumed;
  for (const Pattern& p : input) {
    // Subsumption check: p contributes nothing if some maximal pattern
    // already subsumes it (or duplicates it).
    if (index->HasSubsumer(p, /*strict=*/false)) continue;
    // Supersumption retrieval: p displaces every stored pattern it
    // strictly subsumes.
    subsumed.clear();
    index->CollectSubsumed(p, /*strict=*/true, &subsumed);
    for (const Pattern& q : subsumed) index->Remove(q);
    index->Insert(p);
    TrackPeaks(*index, stats);
  }
  return PatternSet(index->Contents());
}

PatternSet MinimizeSortedIncremental(const PatternSet& input,
                                     PatternIndexKind kind,
                                     MinimizeStats* stats) {
  if (input.empty()) return PatternSet();
  std::vector<Pattern> sorted = input.patterns();
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Pattern& a, const Pattern& b) {
                     return a.NumWildcards() > b.NumWildcards();
                   });
  auto index = MakePatternIndex(kind, input[0].arity());
  for (const Pattern& p : sorted) {
    // A strict subsumer has strictly more wildcards, so it was processed
    // earlier; equal patterns are caught by the non-strict check. No
    // supersumption retrieval is needed.
    if (index->HasSubsumer(p, /*strict=*/false)) continue;
    index->Insert(p);
    TrackPeaks(*index, stats);
  }
  return PatternSet(index->Contents());
}

}  // namespace

PatternSet Minimize(const PatternSet& input, MinimizeApproach approach,
                    PatternIndexKind kind, MinimizeStats* stats) {
  WallTimer timer;
  PatternSet out;
  switch (approach) {
    case MinimizeApproach::kAllAtOnce:
      out = MinimizeAllAtOnce(input, kind, stats);
      break;
    case MinimizeApproach::kIncremental:
      out = MinimizeIncremental(input, kind, stats);
      break;
    case MinimizeApproach::kSortedIncremental:
      out = MinimizeSortedIncremental(input, kind, stats);
      break;
  }
  if (stats != nullptr) {
    stats->output_size = out.size();
    stats->millis = timer.ElapsedMillis();
  }
  return out;
}

PatternSet Minimize(const PatternSet& input) {
  return Minimize(input, MinimizeApproach::kAllAtOnce,
                  PatternIndexKind::kDiscriminationTree);
}

namespace {

/// Bit mask of the constant (non-wildcard) positions, capped at 64 bits.
/// If q subsumes p then q's constants are a subset of p's, so
/// sig(q) ⊆ sig(p) — even under the cap, since dropping positions
/// preserves the subset relation.
uint64_t ConstantSignature(const Pattern& p) {
  uint64_t mask = 0;
  const size_t n = std::min<size_t>(p.arity(), 64);
  for (size_t i = 0; i < n; ++i) {
    if (!p.IsWildcard(i)) mask |= uint64_t{1} << i;
  }
  return mask;
}

/// Folds per-shard peak counters into one result under a lock. Shards
/// finish in a nondeterministic order, but max-merging is commutative,
/// so the folded peaks are deterministic anyway.
class PeakAccumulator {
 public:
  void Merge(const MinimizeStats& s) PCDB_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    peak_index_size_ = std::max(peak_index_size_, s.peak_index_size);
    peak_memory_bytes_ = std::max(peak_memory_bytes_, s.peak_memory_bytes);
  }

  void FlushInto(MinimizeStats* stats) PCDB_EXCLUDES(mu_) {
    if (stats == nullptr) return;
    MutexLock lock(&mu_);
    stats->peak_index_size =
        std::max(stats->peak_index_size, peak_index_size_);
    stats->peak_memory_bytes =
        std::max(stats->peak_memory_bytes, peak_memory_bytes_);
  }

 private:
  Mutex mu_;
  size_t peak_index_size_ PCDB_GUARDED_BY(mu_) = 0;
  size_t peak_memory_bytes_ PCDB_GUARDED_BY(mu_) = 0;
};

}  // namespace

PatternSet ParallelMinimize(const PatternSet& input, MinimizeApproach approach,
                            PatternIndexKind kind, ThreadPool* pool,
                            MinimizeStats* stats) {
  const size_t threads = pool == nullptr ? 1 : pool->num_threads();
  // Oversubscribed sharding: up to 8 shards per worker (capped so every
  // shard keeps >= 2 patterns) lets the FIFO queue rebalance when the
  // signature distribution is skewed — one slow shard no longer idles
  // the other workers. Below 2 patterns per prospective shard the
  // shard/merge machinery is pure overhead; the serial path is
  // definitionally equivalent.
  size_t num_shards = ParallelChunkCount(threads, input.size() / 2);
  if (num_shards <= 1) {
    return Minimize(input, approach, kind, stats);
  }
  WallTimer timer;

  // Group pattern indices by signature; a whole group always lands in
  // one shard, so duplicates (and any equal-signature subsumption, which
  // is exactly equality) resolve locally.
  std::unordered_map<uint64_t, std::vector<uint32_t>> groups;
  for (size_t i = 0; i < input.size(); ++i) {
    groups[ConstantSignature(input[i])].push_back(static_cast<uint32_t>(i));
  }
  num_shards = std::min(num_shards, groups.size());
  if (num_shards <= 1) {
    return Minimize(input, approach, kind, stats);
  }

  // Greedy balance: largest group to the least-loaded shard. Sorting by
  // (size desc, signature asc) keeps the assignment deterministic.
  std::vector<const std::pair<const uint64_t, std::vector<uint32_t>>*> order;
  order.reserve(groups.size());
  for (const auto& g : groups) order.push_back(&g);
  std::sort(order.begin(), order.end(), [](const auto* a, const auto* b) {
    if (a->second.size() != b->second.size()) {
      return a->second.size() > b->second.size();
    }
    return a->first < b->first;
  });
  std::vector<PatternSet> shard_in(num_shards);
  std::vector<size_t> load(num_shards, 0);
  for (const auto* g : order) {
    size_t target = 0;
    for (size_t s = 1; s < num_shards; ++s) {
      if (load[s] < load[target]) target = s;
    }
    for (uint32_t idx : g->second) shard_in[target].Add(input[idx]);
    load[target] += g->second.size();
  }

  // Phase 1: minimize every shard concurrently with the requested
  // method. Each task owns its index and output slot; peak counters are
  // folded into a shared, mutex-guarded accumulator.
  std::vector<PatternSet> shard_out(num_shards);
  PeakAccumulator peaks;
  ParallelFor(pool, num_shards, [&](size_t s) {
    MinimizeStats local;
    shard_out[s] = Minimize(shard_in[s], approach, kind,
                            stats == nullptr ? nullptr : &local);
    if (stats != nullptr) peaks.Merge(local);
  });

  // Phase 2 (merge): all-at-once over the union of shard survivors. The
  // union is duplicate-free (duplicates share a signature and were
  // collapsed in-shard), so a strict subsumer check is exact. The index
  // is built once and only read afterwards; probes write disjoint
  // keep-slots, which makes the output deterministic.
  std::vector<Pattern> merged;
  for (const PatternSet& s : shard_out) {
    merged.insert(merged.end(), s.begin(), s.end());
  }
  PatternSet out;
  if (!merged.empty()) {
    auto index = MakePatternIndex(kind, merged[0].arity());
    for (const Pattern& p : merged) index->Insert(p);
    std::vector<char> keep(merged.size(), 0);
    ParallelFor(pool, merged.size(), [&](size_t i) {
      keep[i] = index->HasSubsumer(merged[i], /*strict=*/true) ? 0 : 1;
    });
    for (size_t i = 0; i < merged.size(); ++i) {
      if (keep[i]) out.Add(merged[i]);
    }
    if (stats != nullptr) {
      stats->peak_index_size = std::max(stats->peak_index_size, index->size());
      stats->peak_memory_bytes =
          std::max(stats->peak_memory_bytes, index->ApproxMemoryBytes());
    }
  }
  peaks.FlushInto(stats);
  if (stats != nullptr) {
    stats->output_size = out.size();
    stats->millis = timer.ElapsedMillis();
  }
  return out;
}

PatternSet ParallelMinimize(const PatternSet& input, MinimizeApproach approach,
                            PatternIndexKind kind, size_t num_threads,
                            MinimizeStats* stats) {
  if (num_threads <= 1) return Minimize(input, approach, kind, stats);
  ThreadPool pool(num_threads);
  return ParallelMinimize(input, approach, kind, &pool, stats);
}

PatternSet ParallelMinimize(const PatternSet& input, size_t num_threads) {
  return ParallelMinimize(input, MinimizeApproach::kAllAtOnce,
                          PatternIndexKind::kDiscriminationTree, num_threads);
}

bool IsMinimal(const PatternSet& set) {
  std::unordered_set<Pattern, PatternHash> seen;
  for (const Pattern& p : set) {
    if (!seen.insert(p).second) return false;  // duplicate
  }
  for (const Pattern& p : set) {
    for (const Pattern& q : set) {
      if (q.StrictlySubsumes(p)) return false;
    }
  }
  return true;
}

}  // namespace pcdb
