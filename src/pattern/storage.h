#ifndef PCDB_PATTERN_STORAGE_H_
#define PCDB_PATTERN_STORAGE_H_

#include <string>

#include "common/result.h"
#include "pattern/annotated.h"

namespace pcdb {

/// \brief On-disk persistence for partially complete databases (§6,
/// "Storage").
///
/// The paper's storage recipe: keep one metadata table per data table,
/// in the same schema, with the wildcard as a distinguished value —
/// using string escaping to disambiguate a literal "*" from the
/// wildcard. The directory layout is
///
///   <dir>/catalog            one line per table: name|col:TYPE|...
///   <dir>/<table>.data       one record per line, fields '|'-separated
///   <dir>/<table>.meta       one pattern per line, same format, where
///                            an unescaped * is the wildcard
///   <dir>/domains            optional attribute domains, one per line:
///                            column|v1|v2|...
///
/// Field escaping: '\' escapes itself, '|', newline (as \n) and '*', so
/// every string value round-trips; numeric fields are never escaped.

/// Serializes one field value for storage (escapes \, |, newline, *).
std::string EscapeField(const std::string& raw);

/// Inverse of EscapeField; fails on dangling escapes.
[[nodiscard]] Result<std::string> UnescapeField(const std::string& stored);

/// Writes the database, its metadata tables and registered domains under
/// `dir` (created if missing; existing files are overwritten).
[[nodiscard]] Status SaveAnnotatedDatabase(const AnnotatedDatabase& adb,
                             const std::string& dir);

/// Loads a database previously written by SaveAnnotatedDatabase.
[[nodiscard]] Result<AnnotatedDatabase> LoadAnnotatedDatabase(const std::string& dir);

}  // namespace pcdb

#endif  // PCDB_PATTERN_STORAGE_H_
