#include "pattern/feed.h"

#include "pattern/minimize.h"

namespace pcdb {

Status FeedManager::Ingest(const std::string& table, Tuple row) {
  // The violation check and the insert/retraction must be one atomic
  // step: a concurrent Punctuate between them could declare the slice
  // complete after we looked but before we stored the row, and the late
  // record would slip in unpoliced.
  MutexLock lock(&mu_);
  PCDB_ASSIGN_OR_RETURN(const Table* stored, adb_->database().GetTable(table));
  // Type-check before the violation check so malformed rows fail fast.
  if (row.size() != stored->schema().arity()) {
    return Status::InvalidArgument("row arity mismatch for table '" + table +
                                   "'");
  }
  const PatternSet& patterns = adb_->patterns(table);
  if (patterns.AnySubsumesTuple(row)) {
    ++stats_.violations;
    if (policy_ == FeedViolationPolicy::kRejectRecord) {
      ++stats_.records_rejected;
      return Status::InvalidArgument(
          "record arrived inside a slice already punctuated as complete");
    }
    // Retract every violated pattern: the punctuation was premature.
    PatternSet kept;
    for (const Pattern& p : patterns) {
      if (p.SubsumesTuple(row)) {
        ++stats_.patterns_retracted;
      } else {
        kept.Add(p);
      }
    }
    adb_->SetPatterns(table, std::move(kept));
  }
  PCDB_RETURN_NOT_OK(adb_->AddRow(table, std::move(row)));
  ++stats_.records_ingested;
  return Status::OK();
}

Status FeedManager::RetractViolated(const std::string& table,
                                    const Tuple& row) {
  MutexLock lock(&mu_);
  PCDB_ASSIGN_OR_RETURN(const Table* stored, adb_->database().GetTable(table));
  if (row.size() != stored->schema().arity()) {
    return Status::InvalidArgument("row arity mismatch for table '" + table +
                                   "'");
  }
  const PatternSet& patterns = adb_->patterns(table);
  if (!patterns.AnySubsumesTuple(row)) return Status::OK();
  ++stats_.violations;
  PatternSet kept;
  for (const Pattern& p : patterns) {
    if (p.SubsumesTuple(row)) {
      ++stats_.patterns_retracted;
    } else {
      kept.Add(p);
    }
  }
  adb_->SetPatterns(table, std::move(kept));
  return Status::OK();
}

Status FeedManager::Punctuate(const std::string& table, Pattern pattern) {
  MutexLock lock(&mu_);
  return PunctuateLocked(table, std::move(pattern));
}

Status FeedManager::Punctuate(const std::string& table,
                              const std::vector<std::string>& fields) {
  MutexLock lock(&mu_);
  PCDB_ASSIGN_OR_RETURN(const Table* stored, adb_->database().GetTable(table));
  PCDB_ASSIGN_OR_RETURN(Pattern p, Pattern::Parse(fields, stored->schema()));
  return PunctuateLocked(table, std::move(p));
}

Status FeedManager::PunctuateLocked(const std::string& table,
                                    Pattern pattern) {
  PCDB_RETURN_NOT_OK(adb_->AddPattern(table, std::move(pattern)));
  // Minimization preserves the promised set exactly, so install it
  // without bumping any epochs — AddPattern already bumped the one
  // signature this punctuation touched, and a table-epoch bump here
  // would wholesale-invalidate every cached answer over the table.
  adb_->SetEquivalentPatterns(table, Minimize(adb_->patterns(table)));
  ++stats_.punctuations;
  return Status::OK();
}

FeedStats FeedManager::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

}  // namespace pcdb
