#ifndef PCDB_PATTERN_DOMAIN_H_
#define PCDB_PATTERN_DOMAIN_H_

#include <map>
#include <string>
#include <vector>

#include "common/value.h"

namespace pcdb {

/// \brief Known attribute domains, required for zombie pattern
/// generation (Appendix E).
///
/// Zombie patterns assert completeness for values that can currently not
/// appear in a result; enumerating those values requires the attribute's
/// domain to be known and finite (e.g. month or state — the paper notes
/// generation is only feasible for such attributes). Domains are keyed
/// by column name; lookups first try the exact (possibly qualified)
/// name, then the unqualified base name, so a domain registered for
/// "day" also covers "W.day" in a join output schema.
class DomainRegistry {
 public:
  /// Registers (or replaces) the domain of `column`.
  void SetDomain(const std::string& column, std::vector<Value> values);

  /// The registered domain, or nullptr if the attribute's domain is
  /// unknown (no zombies will be generated for it).
  const std::vector<Value>* Lookup(const std::string& column) const;

  bool empty() const { return domains_.empty(); }

  /// Every registered domain, keyed by column name — checkpoint
  /// serialization needs to enumerate what Lookup can only probe.
  const std::map<std::string, std::vector<Value>>& all() const {
    return domains_;
  }

 private:
  std::map<std::string, std::vector<Value>> domains_;
};

}  // namespace pcdb

#endif  // PCDB_PATTERN_DOMAIN_H_
