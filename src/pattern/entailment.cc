#include "pattern/entailment.h"

#include <algorithm>
#include <set>
#include <unordered_set>

#include "relational/evaluator.h"

namespace pcdb {

Result<Table> AnswerSlice(const Expr& expr, const Database& db,
                          const Pattern& p) {
  PCDB_ASSIGN_OR_RETURN(Table answer, Evaluate(expr, db));
  if (p.arity() != answer.schema().arity()) {
    return Status::InvalidArgument(
        "pattern arity " + std::to_string(p.arity()) +
        " does not match query result arity " +
        std::to_string(answer.schema().arity()));
  }
  Table out(answer.schema());
  for (const Tuple& row : answer.rows()) {
    if (p.SubsumesTuple(row)) out.AppendUnchecked(row);
  }
  return out;
}

namespace {

void CollectExprConstants(const Expr& expr, std::set<Value>* out) {
  if (expr.kind() == ExprKind::kSelectConst) out->insert(expr.constant());
  if (expr.left() != nullptr) CollectExprConstants(*expr.left(), out);
  if (expr.right() != nullptr) CollectExprConstants(*expr.right(), out);
}

/// One candidate insertion: a tuple that a completion may add to a table.
struct Addition {
  std::string table;
  Tuple tuple;
};

constexpr size_t kMaxAdditions = 4096;
constexpr size_t kMaxCompletions = 4'000'000;

}  // namespace

Result<bool> EntailsWrtInstance(const AnnotatedDatabase& adb,
                                const Expr& expr, const Pattern& p,
                                const EntailmentOptions& options) {
  const Database& db = adb.database();
  PCDB_ASSIGN_OR_RETURN(Table reference, AnswerSlice(expr, db, p));

  // Assemble the relevant constants: active domain plus constants from
  // the query, the probe pattern, the base patterns, and fresh values
  // (genericity: only comparisons matter, so a small number of fresh
  // constants per type covers all "unseen value" behaviours).
  std::set<Value> constants;
  for (const std::string& name : db.TableNames()) {
    PCDB_ASSIGN_OR_RETURN(const Table* table, db.GetTable(name));
    for (const Tuple& t : table->rows()) {
      for (const Value& v : t) constants.insert(v);
    }
    for (const Pattern& bp : adb.patterns(name)) {
      for (size_t i = 0; i < bp.arity(); ++i) {
        if (!bp.IsWildcard(i)) constants.insert(bp.value(i));
      }
    }
  }
  CollectExprConstants(expr, &constants);
  for (size_t i = 0; i < p.arity(); ++i) {
    if (!p.IsWildcard(i)) constants.insert(p.value(i));
  }
  int64_t max_int = 0;
  double max_double = 0;
  for (const Value& v : constants) {
    if (v.is_int64()) max_int = std::max(max_int, v.int64());
    if (v.is_double()) max_double = std::max(max_double, v.dbl());
  }
  std::vector<Value> int_domain;
  std::vector<Value> double_domain;
  std::vector<Value> string_domain;
  for (const Value& v : constants) {
    switch (v.type()) {
      case ValueType::kInt64:
        int_domain.push_back(v);
        break;
      case ValueType::kDouble:
        double_domain.push_back(v);
        break;
      case ValueType::kString:
        string_domain.push_back(v);
        break;
    }
  }
  for (size_t k = 0; k < options.fresh_constants; ++k) {
    int_domain.push_back(Value(max_int + 1 + static_cast<int64_t>(k)));
    double_domain.push_back(Value(max_double + 1.5 + static_cast<double>(k)));
    string_domain.push_back(Value("~fresh" + std::to_string(k)));
  }

  auto domain_for = [&](ValueType type) -> const std::vector<Value>& {
    switch (type) {
      case ValueType::kInt64:
        return int_domain;
      case ValueType::kDouble:
        return double_domain;
      case ValueType::kString:
        return string_domain;
    }
    return string_domain;
  };

  // Candidate insertions per table: every domain tuple not subsumed by a
  // base pattern (subsumed tuples are frozen by the pattern's
  // completeness assertion and may not appear in any completion beyond
  // what D already holds).
  std::vector<Addition> additions;
  for (const std::string& name : db.TableNames()) {
    PCDB_ASSIGN_OR_RETURN(const Table* table, db.GetTable(name));
    const Schema& schema = table->schema();
    const PatternSet& base = adb.patterns(name);
    Tuple current(schema.arity());
    // Odometer enumeration of the domain product.
    std::vector<size_t> cursor(schema.arity(), 0);
    bool done = schema.arity() == 0;
    while (!done) {
      for (size_t i = 0; i < schema.arity(); ++i) {
        current[i] = domain_for(schema.column(i).type)[cursor[i]];
      }
      if (!base.AnySubsumesTuple(current)) {
        additions.push_back(Addition{name, current});
        if (additions.size() > kMaxAdditions) {
          return Status::OutOfRange(
              "entailment check: too many candidate insertions; shrink the "
              "instance or the domains");
        }
      }
      size_t pos = 0;
      for (; pos < schema.arity(); ++pos) {
        if (++cursor[pos] < domain_for(schema.column(pos).type).size()) {
          break;
        }
        cursor[pos] = 0;
      }
      if (pos == schema.arity()) done = true;
    }
  }

  // Enumerate completions: all subsets of additions of size ≤ k.
  // (Monotone SPJ queries need at most one added tuple per scan to
  // produce a new answer row, so bounded subsets are a complete search
  // for reasonable k.)
  size_t completions = 1;
  for (size_t i = 0; i < options.max_added_tuples && i < additions.size();
       ++i) {
    completions *= (additions.size() - i);
    if (completions > kMaxCompletions) {
      return Status::OutOfRange(
          "entailment check: too many candidate completions");
    }
  }

  // Resolve key-constraint columns once.
  struct ResolvedKey {
    std::string table;
    std::vector<size_t> columns;
  };
  std::vector<ResolvedKey> keys;
  for (const KeyConstraint& key : options.keys) {
    PCDB_ASSIGN_OR_RETURN(const Table* table, db.GetTable(key.table));
    ResolvedKey resolved{key.table, {}};
    for (const std::string& name : key.columns) {
      PCDB_ASSIGN_OR_RETURN(size_t idx, table->schema().Resolve(name));
      resolved.columns.push_back(idx);
    }
    keys.push_back(std::move(resolved));
  }

  // DFS over index-increasing subsets.
  struct Searcher {
    const std::vector<Addition>& additions;
    const Database& db;
    const Expr& expr;
    const Pattern& p;
    const Table& reference;
    size_t max_size;
    const std::vector<ResolvedKey>& keys;
    bool violated = false;
    Status error = Status::OK();
    std::vector<size_t> chosen;

    bool SatisfiesKeys(const Database& dc) const {
      for (const ResolvedKey& key : keys) {
        const Table* table = *dc.GetTable(key.table);
        std::unordered_set<Tuple, TupleHash> seen;
        for (const Tuple& t : table->rows()) {
          Tuple projection;
          projection.reserve(key.columns.size());
          for (size_t c : key.columns) projection.push_back(t[c]);
          if (!seen.insert(projection).second) return false;
        }
      }
      return true;
    }

    void Check() {
      if (chosen.empty()) return;  // D itself trivially agrees
      Database dc = db;
      for (size_t idx : chosen) {
        const Addition& add = additions[idx];
        Table* table = *dc.GetMutableTable(add.table);
        table->AppendUnchecked(add.tuple);
      }
      // Completions violating a known key constraint are not candidate
      // states of the real world.
      if (!SatisfiesKeys(dc)) return;
      auto slice = AnswerSlice(expr, dc, p);
      if (!slice.ok()) {
        error = slice.status();
        violated = true;  // stop search
        return;
      }
      if (!slice->BagEquals(reference)) violated = true;
    }

    void Recurse(size_t start) {
      if (violated) return;
      Check();
      if (violated || chosen.size() == max_size) return;
      for (size_t i = start; i < additions.size(); ++i) {
        chosen.push_back(i);
        Recurse(i + 1);
        chosen.pop_back();
        if (violated) return;
      }
    }
  };
  Searcher searcher{additions, db,
                    expr,      p,
                    reference, options.max_added_tuples,
                    keys,      false,
                    Status::OK(), {}};
  searcher.Recurse(0);
  if (!searcher.error.ok()) return searcher.error;
  return !searcher.violated;
}

}  // namespace pcdb
