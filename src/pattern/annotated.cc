#include "pattern/annotated.h"

#include "pattern/signature.h"

namespace pcdb {

std::string AnnotatedTable::ToString(size_t max_rows) const {
  // Render data rows and pattern rows in one grid, the paper's Table 1/3
  // presentation: records first, then a separator, then the completeness
  // patterns with '*' cells.
  const Schema& schema = data.schema();
  const size_t arity = schema.arity();
  std::vector<size_t> widths(arity);
  for (size_t i = 0; i < arity; ++i) {
    widths[i] = schema.column(i).name.size();
  }
  size_t shown = std::min(max_rows, data.num_rows());
  std::vector<std::vector<std::string>> data_cells;
  data_cells.reserve(shown);
  for (size_t r = 0; r < shown; ++r) {
    std::vector<std::string> row;
    row.reserve(arity);
    for (size_t i = 0; i < arity; ++i) {
      row.push_back(data.row(r)[i].ToString());
      widths[i] = std::max(widths[i], row.back().size());
    }
    data_cells.push_back(std::move(row));
  }
  std::vector<std::vector<std::string>> pattern_cells;
  pattern_cells.reserve(patterns.size());
  for (const Pattern& p : patterns) {
    std::vector<std::string> row;
    row.reserve(arity);
    for (size_t i = 0; i < arity && i < p.arity(); ++i) {
      row.push_back(p.IsWildcard(i) ? "*" : p.value(i).ToString());
      widths[i] = std::max(widths[i], row.back().size());
    }
    pattern_cells.push_back(std::move(row));
  }

  std::string out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    out += "|";
    for (size_t i = 0; i < cells.size(); ++i) {
      out += " ";
      out += cells[i];
      out.append(widths[i] - cells[i].size(), ' ');
      out += " |";
    }
    out += "\n";
  };
  auto emit_separator = [&] {
    out += "|";
    for (size_t i = 0; i < arity; ++i) {
      out.append(widths[i] + 2, '-');
      out += "|";
    }
    out += "\n";
  };
  std::vector<std::string> header;
  header.reserve(arity);
  for (size_t i = 0; i < arity; ++i) header.push_back(schema.column(i).name);
  emit_row(header);
  emit_separator();
  for (const auto& row : data_cells) emit_row(row);
  if (shown < data.num_rows()) {
    out += "... (" + std::to_string(data.num_rows() - shown) +
           " more rows)\n";
  }
  if (!pattern_cells.empty()) {
    out += degraded ? "complete for (degraded summary):\n" : "complete for:\n";
    emit_separator();
    for (const auto& row : pattern_cells) emit_row(row);
  } else if (degraded) {
    out += "complete for: (degraded summary, no patterns within budget)\n";
  }
  return out;
}

Status AnnotatedDatabase::CreateTable(const std::string& name,
                                      Schema schema) {
  return db_.CreateTable(name, std::move(schema));
}

Status AnnotatedDatabase::AddRow(const std::string& name, Tuple row) {
  PCDB_ASSIGN_OR_RETURN(Table * table, db_.GetMutableTable(name));
  return table->Append(std::move(row));
}

Status AnnotatedDatabase::AddPattern(const std::string& name,
                                     Pattern pattern) {
  PCDB_ASSIGN_OR_RETURN(const Table* table, db_.GetTable(name));
  if (pattern.arity() != table->schema().arity()) {
    return Status::InvalidArgument(
        "pattern arity " + std::to_string(pattern.arity()) +
        " does not match schema of table '" + name + "'");
  }
  for (size_t i = 0; i < pattern.arity(); ++i) {
    if (!pattern.IsWildcard(i) &&
        pattern.value(i).type() != table->schema().column(i).type) {
      return Status::TypeError(
          "pattern constant '" + pattern.value(i).ToString() +
          "' does not match the type of column '" +
          table->schema().column(i).name + "' in table '" + name + "'");
    }
  }
  RecordPattern(name, std::move(pattern));
  return Status::OK();
}

Status AnnotatedDatabase::AddPattern(const std::string& name,
                                     const std::vector<std::string>& fields) {
  PCDB_ASSIGN_OR_RETURN(const Table* table, db_.GetTable(name));
  PCDB_ASSIGN_OR_RETURN(Pattern p, Pattern::Parse(fields, table->schema()));
  RecordPattern(name, std::move(p));
  return Status::OK();
}

void AnnotatedDatabase::RecordPattern(const std::string& name,
                                      Pattern pattern) {
  PatternSet& set = patterns_[name];
  if (set.Contains(pattern)) return;  // re-asserting changes nothing
  // A new pattern is a *promise addition*: it can only sharpen the
  // completeness annotation of queries whose constant mask is comparable
  // with its signature, so bump the per-signature epoch rather than the
  // whole-table epoch. Cached answers under incomparable masks stay
  // valid (they would at worst under-report completeness, which additions
  // never cause for them — see docs/SERVER.md).
  const uint64_t sig = PatternConstantSignature(pattern);
  set.Add(std::move(pattern));
  ++pattern_sig_epochs_[name][sig];
}

const PatternSet& AnnotatedDatabase::patterns(const std::string& name) const {
  auto it = patterns_.find(name);
  return it == patterns_.end() ? empty_ : it->second;
}

void AnnotatedDatabase::SetPatterns(const std::string& name,
                                    PatternSet patterns) {
  // Wholesale replacement may retract promises; retractions can make a
  // cached annotation over-claim, so invalidate conservatively via the
  // table epoch (which every dependent cache key folds in).
  patterns_[name] = std::move(patterns);
  db_.BumpTableEpoch(name);
}

void AnnotatedDatabase::SetEquivalentPatterns(const std::string& name,
                                              PatternSet patterns) {
  patterns_[name] = std::move(patterns);
}

const std::map<uint64_t, uint64_t>& AnnotatedDatabase::PatternSigEpochs(
    const std::string& name) const {
  auto it = pattern_sig_epochs_.find(name);
  return it == pattern_sig_epochs_.end() ? empty_sig_epochs_ : it->second;
}

Result<AnnotatedTable> AnnotatedDatabase::GetAnnotated(
    const std::string& name) const {
  PCDB_ASSIGN_OR_RETURN(const Table* table, db_.GetTable(name));
  return AnnotatedTable{*table, patterns(name)};
}

}  // namespace pcdb
