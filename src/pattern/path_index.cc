#include "pattern/path_index.h"

#include <algorithm>

#include "common/logging.h"

namespace pcdb {

namespace {
constexpr size_t kBytesPerCell = sizeof(Pattern::Cell);
constexpr size_t kBytesPerPattern = sizeof(Pattern) + 16;
constexpr size_t kBytesPerPostingEntry = sizeof(uint32_t);
constexpr size_t kBytesPerPostingList = 64;  // map node + vector header
}  // namespace

void PathIndex::Insert(const Pattern& p) {
  PCDB_CHECK(p.arity() == arity_);
  if (slot_of_.count(p) > 0) return;
  uint32_t id = static_cast<uint32_t>(slots_.size());
  slots_.push_back(p);
  live_.push_back(true);
  ++live_count_;
  slot_of_.emplace(p, id);
  for (size_t i = 0; i < arity_; ++i) {
    postings_[i][p.cell(i)].push_back(id);
    ++posting_entries_;
  }
}

bool PathIndex::Remove(const Pattern& p) {
  auto it = slot_of_.find(p);
  if (it == slot_of_.end()) return false;
  live_[it->second] = false;
  --live_count_;
  slot_of_.erase(it);
  // Posting lists keep the stale id; reads filter through live_.
  return true;
}

std::vector<uint32_t> PathIndex::SubsumerCandidates(const Pattern& p,
                                                    size_t position) const {
  const PostingMap& map = postings_[position];
  const std::vector<uint32_t>* wild = nullptr;
  const std::vector<uint32_t>* exact = nullptr;
  auto wit = map.find(Pattern::Wildcard());
  if (wit != map.end()) wild = &wit->second;
  if (!p.IsWildcard(position)) {
    auto eit = map.find(p.cell(position));
    if (eit != map.end()) exact = &eit->second;
  }
  std::vector<uint32_t> merged;
  if (wild != nullptr && exact != nullptr) {
    merged.reserve(wild->size() + exact->size());
    std::merge(wild->begin(), wild->end(), exact->begin(), exact->end(),
               std::back_inserter(merged));
  } else if (wild != nullptr) {
    merged = *wild;
  } else if (exact != nullptr) {
    merged = *exact;
  }
  return merged;
}

bool PathIndex::HasSubsumer(const Pattern& p, bool strict) const {
  if (arity_ == 0) return live_count_ > 0 && !strict;
  std::vector<uint32_t> candidates = SubsumerCandidates(p, 0);
  for (size_t i = 1; i < arity_ && !candidates.empty(); ++i) {
    std::vector<uint32_t> next = SubsumerCandidates(p, i);
    std::vector<uint32_t> intersection;
    std::set_intersection(candidates.begin(), candidates.end(), next.begin(),
                          next.end(), std::back_inserter(intersection));
    candidates = std::move(intersection);
  }
  for (uint32_t id : candidates) {
    if (!live_[id]) continue;
    if (strict && slots_[id] == p) continue;
    return true;
  }
  return false;
}

void PathIndex::CollectSubsumers(const Pattern& p, bool strict,
                                 std::vector<Pattern>* out) const {
  if (arity_ == 0) {
    if (live_count_ > 0 && !strict) out->push_back(p);
    return;
  }
  std::vector<uint32_t> candidates = SubsumerCandidates(p, 0);
  for (size_t i = 1; i < arity_ && !candidates.empty(); ++i) {
    std::vector<uint32_t> next = SubsumerCandidates(p, i);
    std::vector<uint32_t> intersection;
    std::set_intersection(candidates.begin(), candidates.end(), next.begin(),
                          next.end(), std::back_inserter(intersection));
    candidates = std::move(intersection);
  }
  for (uint32_t id : candidates) {
    if (!live_[id]) continue;
    if (strict && slots_[id] == p) continue;
    out->push_back(slots_[id]);
  }
}

void PathIndex::CollectSubsumed(const Pattern& p, bool strict,
                                std::vector<Pattern>* out) const {
  // q is subsumed by p iff q agrees with p on every constant position of
  // p; intersect those positions' exact posting lists.
  std::vector<size_t> constant_positions;
  for (size_t i = 0; i < arity_; ++i) {
    if (!p.IsWildcard(i)) constant_positions.push_back(i);
  }
  if (constant_positions.empty()) {
    for (size_t id = 0; id < slots_.size(); ++id) {
      if (!live_[id]) continue;
      if (strict && slots_[id] == p) continue;
      out->push_back(slots_[id]);
    }
    return;
  }
  std::vector<uint32_t> candidates;
  bool first = true;
  for (size_t i : constant_positions) {
    auto it = postings_[i].find(p.cell(i));
    if (it == postings_[i].end()) return;  // no pattern has this constant
    if (first) {
      candidates = it->second;
      first = false;
    } else {
      std::vector<uint32_t> intersection;
      std::set_intersection(candidates.begin(), candidates.end(),
                            it->second.begin(), it->second.end(),
                            std::back_inserter(intersection));
      candidates = std::move(intersection);
    }
    if (candidates.empty()) return;
  }
  for (uint32_t id : candidates) {
    if (!live_[id]) continue;
    if (strict && slots_[id] == p) continue;
    out->push_back(slots_[id]);
  }
}

std::vector<Pattern> PathIndex::Contents() const {
  std::vector<Pattern> out;
  out.reserve(live_count_);
  for (size_t id = 0; id < slots_.size(); ++id) {
    if (live_[id]) out.push_back(slots_[id]);
  }
  return out;
}

size_t PathIndex::ApproxMemoryBytes() const {
  size_t list_count = 0;
  for (const PostingMap& map : postings_) list_count += map.size();
  return slots_.size() * (kBytesPerPattern + arity_ * kBytesPerCell) +
         posting_entries_ * kBytesPerPostingEntry +
         list_count * kBytesPerPostingList;
}

}  // namespace pcdb
