#include "pattern/annotated_eval.h"

#include <memory>

#include "common/failpoint.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "obs/trace.h"
#include "pattern/algebra.h"
#include "pattern/summary.h"
#include "pattern/zombie.h"
#include "relational/evaluator.h"

namespace pcdb {
namespace {

/// Appends `extra` to `base` without duplicating patterns.
void UnionInto(PatternSet* base, const PatternSet& extra) {
  for (const Pattern& p : extra) base->AddUnique(p);
}

/// Static span names for the per-node pattern step (the metadata half of
/// each operator); the data half is traced inside ApplyRootOperator.
const char* PatternSpanName(ExprKind kind) {
  switch (kind) {
    case ExprKind::kScan: return kSpanPatternScan;
    case ExprKind::kSelectConst: return kSpanPatternSelectConst;
    case ExprKind::kSelectAttrEq: return kSpanPatternSelectAttrEq;
    case ExprKind::kProjectOut: return kSpanPatternProjectOut;
    case ExprKind::kRearrange: return kSpanPatternRearrange;
    case ExprKind::kJoin: return kSpanPatternJoin;
    case ExprKind::kAggregate: return kSpanPatternAggregate;
    case ExprKind::kSort: return kSpanPatternSort;
    case ExprKind::kLimit: return kSpanPatternLimit;
    case ExprKind::kUnion: return kSpanPatternUnion;
  }
  return kSpanPatternOperator;
}

/// Short operator labels for QueryProfile rows.
const char* ProfileOpName(ExprKind kind) {
  switch (kind) {
    case ExprKind::kScan: return "scan";
    case ExprKind::kSelectConst: return "select_const";
    case ExprKind::kSelectAttrEq: return "select_attr_eq";
    case ExprKind::kProjectOut: return "project_out";
    case ExprKind::kRearrange: return "rearrange";
    case ExprKind::kJoin: return "join";
    case ExprKind::kAggregate: return "aggregate";
    case ExprKind::kSort: return "sort";
    case ExprKind::kLimit: return "limit";
    case ExprKind::kUnion: return "union";
  }
  return "operator";
}

/// Per-operator minimization with graceful degradation. A tripped
/// pattern budget (kResourceExhausted) falls back to a sound coarser
/// summary of the un-minimized set and flips `*degraded`; every other
/// failure (kTimeout, kCancelled, injected faults) propagates.
///
/// Under a pattern budget the sorted-incremental approach replaces the
/// default all-at-once one: its index only ever holds the running
/// maximal set, so it finishes within the budget whenever the exact
/// minimal set fits — all-at-once loads every input pattern first and
/// would trip spuriously.
Result<PatternSet> MinimizeWithDegradation(const PatternSet& patterns,
                                           ThreadPool* pool,
                                           const ExecContext& ctx,
                                           bool* degraded,
                                           AnnotatedEvalInfo* info,
                                           MinimizeStats* min_stats) {
  const MinimizeApproach approach =
      ctx.has_pattern_budget() ? MinimizeApproach::kSortedIncremental
                               : MinimizeApproach::kAllAtOnce;
  Result<PatternSet> out = ParallelMinimize(
      patterns, approach, PatternIndexKind::kDiscriminationTree, pool, ctx,
      min_stats);
  if (out.ok() || out.status().code() != StatusCode::kResourceExhausted ||
      !ctx.has_pattern_budget()) {
    return out;
  }
  *degraded = true;
  if (info != nullptr) ++info->degradations;
  EngineMetrics().degraded_to_summary->Increment();
  return SummarizePatterns(patterns, ctx.pattern_budget());
}

class AnnotatedEvaluator {
 public:
  AnnotatedEvaluator(const AnnotatedDatabase& adb,
                     const AnnotatedEvalOptions& options,
                     const ExecContext& ctx, AnnotatedEvalInfo* info)
      : adb_(adb), options_(options), ctx_(ctx), info_(info) {
    if (options.num_threads > 1) {
      pool_ = std::make_unique<ThreadPool>(options.num_threads);
    }
  }

  Result<AnnotatedTable> Eval(const Expr& expr, int depth = 0) {
    PCDB_FAILPOINT("annotated.operator");
    PCDB_RETURN_NOT_OK(ctx_.Check());
    AnnotatedTable left;
    AnnotatedTable right;
    if (expr.left() != nullptr) {
      PCDB_ASSIGN_OR_RETURN(left, Eval(*expr.left(), depth + 1));
    }
    if (expr.right() != nullptr) {
      PCDB_ASSIGN_OR_RETURN(right, Eval(*expr.right(), depth + 1));
    }

    const bool profiling = options_.collect_profile && info_ != nullptr;
    OperatorProfile op;
    if (profiling) {
      op.op = ProfileOpName(expr.kind());
      op.depth = depth;
      op.input_rows = left.data.num_rows() + right.data.num_rows();
      op.patterns_in = left.patterns.size() + right.patterns.size();
    }
    const size_t zombies_before =
        (profiling ? info_->zombies_added : size_t{0});

    // Metadata first: the pattern operators (promotion, zombies) read
    // the children's data, which the data step consumes afterwards.
    WallTimer timer;
    PatternSet patterns;
    {
      PCDB_TRACE_SPAN(span, PatternSpanName(expr.kind()));
      PCDB_ASSIGN_OR_RETURN(patterns, ComputePatterns(expr, left, right));
      if (info_ != nullptr) {
        info_->max_intermediate_patterns =
            std::max(info_->max_intermediate_patterns, patterns.size());
      }
      if (profiling) op.patterns_pre_min = patterns.size();
      if (options_.minimize_each_step) {
        MinimizeStats min_stats;
        PCDB_ASSIGN_OR_RETURN(
            patterns,
            MinimizeWithDegradation(patterns, pool_.get(), ctx_, &degraded_,
                                    info_, profiling ? &min_stats : nullptr));
        if (profiling) op.probes = min_stats.probes;
      } else if (profiling) {
        op.probes = 0;
      }
      span.Arg("patterns", patterns.size());
    }
    const double pattern_millis = timer.ElapsedMillis();
    if (info_ != nullptr) info_->pattern_millis += pattern_millis;

    timer.Reset();
    PCDB_ASSIGN_OR_RETURN(
        Table data,
        ApplyRootOperator(expr, adb_.database(), std::move(left.data),
                          std::move(right.data), pool_.get(), ctx_));
    const double data_millis = timer.ElapsedMillis();
    if (info_ != nullptr) info_->data_millis += data_millis;

    if (profiling) {
      op.output_rows = data.num_rows();
      op.patterns_out = patterns.size();
      op.zombies_added = info_->zombies_added - zombies_before;
      op.pattern_micros = pattern_millis * 1000.0;
      op.data_micros = data_millis * 1000.0;
      info_->profile.operators.push_back(std::move(op));
    }
    return AnnotatedTable{std::move(data), std::move(patterns), degraded_};
  }

  /// Eval plus the root-level budget guarantee: whatever path the
  /// patterns took (including minimize_each_step = false, which never
  /// runs the governed minimizer), the returned set respects the
  /// pattern budget, degrading at the root if it still must.
  Result<AnnotatedTable> EvalRoot(const Expr& expr) {
    PCDB_ASSIGN_OR_RETURN(AnnotatedTable out, Eval(expr));
    if (ctx_.has_pattern_budget() &&
        out.patterns.size() > ctx_.pattern_budget()) {
      out.patterns = SummarizePatterns(out.patterns, ctx_.pattern_budget());
      out.degraded = true;
      if (info_ != nullptr) ++info_->degradations;
      EngineMetrics().degraded_to_summary->Increment();
    }
    return out;
  }

 private:
  Result<PatternSet> ComputePatterns(const Expr& expr,
                                     const AnnotatedTable& left,
                                     const AnnotatedTable& right) {
    switch (expr.kind()) {
      case ExprKind::kScan:
        return adb_.patterns(expr.table_name());
      case ExprKind::kSelectConst: {
        const Schema& in = left.data.schema();
        PCDB_ASSIGN_OR_RETURN(size_t idx, in.Resolve(expr.attr()));
        PatternSet out =
            PatternSelectConst(left.patterns, idx, expr.constant());
        if (options_.zombies) {
          const std::vector<Value>* domain =
              adb_.domains().Lookup(in.column(idx).name);
          if (domain != nullptr) {
            PatternSet zombies = ZombiesForSelectConst(
                in.arity(), idx, expr.constant(), *domain);
            if (info_ != nullptr) info_->zombies_added += zombies.size();
            UnionInto(&out, zombies);
          }
        }
        return out;
      }
      case ExprKind::kSelectAttrEq: {
        const Schema& in = left.data.schema();
        PCDB_ASSIGN_OR_RETURN(size_t a, in.Resolve(expr.attr()));
        PCDB_ASSIGN_OR_RETURN(size_t b, in.Resolve(expr.attr2()));
        return PatternSelectAttrEq(left.patterns, a, b);
      }
      case ExprKind::kProjectOut: {
        PCDB_ASSIGN_OR_RETURN(size_t idx,
                              left.data.schema().Resolve(expr.attr()));
        return PatternProjectOut(left.patterns, idx);
      }
      case ExprKind::kRearrange: {
        std::vector<size_t> indices;
        indices.reserve(expr.attrs().size());
        for (const std::string& a : expr.attrs()) {
          PCDB_ASSIGN_OR_RETURN(size_t idx,
                                left.data.schema().Resolve(a));
          indices.push_back(idx);
        }
        return PatternRearrange(left.patterns, indices);
      }
      case ExprKind::kJoin: {
        if (expr.attr().empty()) {
          return PatternCross(left.patterns, right.patterns);
        }
        PCDB_ASSIGN_OR_RETURN(size_t a,
                              left.data.schema().Resolve(expr.attr()));
        PCDB_ASSIGN_OR_RETURN(size_t b,
                              right.data.schema().Resolve(expr.attr2()));
        PatternSet out;
        if (options_.instance_aware) {
          PromotionStats stats;
          out = InstanceAwarePatternJoin(
              left.patterns, a, left.data, right.patterns, b, right.data,
              options_.promotion, &stats, options_.join_strategy);
          if (info_ != nullptr) info_->promotion.MergeFrom(stats);
        } else {
          out = PatternJoin(left.patterns, a, right.patterns, b,
                            options_.join_strategy, pool_.get());
        }
        if (options_.zombies) {
          const std::vector<Value>* left_domain =
              adb_.domains().Lookup(left.data.schema().column(a).name);
          if (left_domain != nullptr) {
            PatternSet zombies = ZombiesForJoin(
                left.patterns, a, left.data, *left_domain,
                right.data.schema().arity(), /*side_is_left=*/true);
            if (info_ != nullptr) info_->zombies_added += zombies.size();
            UnionInto(&out, zombies);
          }
          const std::vector<Value>* right_domain =
              adb_.domains().Lookup(right.data.schema().column(b).name);
          if (right_domain != nullptr) {
            PatternSet zombies = ZombiesForJoin(
                right.patterns, b, right.data, *right_domain,
                left.data.schema().arity(), /*side_is_left=*/false);
            if (info_ != nullptr) info_->zombies_added += zombies.size();
            UnionInto(&out, zombies);
          }
        }
        return out;
      }
      case ExprKind::kAggregate: {
        std::vector<size_t> group_idx;
        group_idx.reserve(expr.attrs().size());
        for (const std::string& g : expr.attrs()) {
          PCDB_ASSIGN_OR_RETURN(size_t idx,
                                left.data.schema().Resolve(g));
          group_idx.push_back(idx);
        }
        return PatternAggregate(left.patterns, group_idx,
                                expr.aggs().size());
      }
      case ExprKind::kSort:
        // Sorting is a bag bijection; the metadata is order-free.
        return left.patterns;
      case ExprKind::kLimit:
        return PatternLimit(left.patterns);
      case ExprKind::kUnion:
        return PatternUnion(left.patterns, right.patterns);
    }
    return Status::Internal("unhandled expression kind");
  }

  const AnnotatedDatabase& adb_;
  const AnnotatedEvalOptions& options_;
  const ExecContext& ctx_;
  AnnotatedEvalInfo* info_;
  std::unique_ptr<ThreadPool> pool_;  // null when num_threads <= 1
  /// Latched once any intermediate set degrades to a summary.
  bool degraded_ = false;
};

/// Schema-only recursion: computes (output schema, pattern set) per node
/// without evaluating any data.
class SchemaOnlyEvaluator {
 public:
  SchemaOnlyEvaluator(const AnnotatedDatabase& adb,
                      const AnnotatedEvalOptions& options,
                      const ExecContext& ctx, size_t* cost)
      : adb_(adb), options_(options), ctx_(ctx), cost_(cost) {
    if (options.num_threads > 1) {
      pool_ = std::make_unique<ThreadPool>(options.num_threads);
    }
  }

  struct Node {
    Schema schema;
    PatternSet patterns;
  };

  Result<Node> Eval(const Expr& expr) {
    PCDB_FAILPOINT("annotated.operator");
    PCDB_RETURN_NOT_OK(ctx_.Check());
    Node left;
    Node right;
    if (expr.left() != nullptr) {
      PCDB_ASSIGN_OR_RETURN(left, Eval(*expr.left()));
    }
    if (expr.right() != nullptr) {
      PCDB_ASSIGN_OR_RETURN(right, Eval(*expr.right()));
    }
    PCDB_TRACE_SPAN(span, PatternSpanName(expr.kind()));
    PCDB_ASSIGN_OR_RETURN(Node node, Apply(expr, left, right));
    if (cost_ != nullptr) *cost_ += node.patterns.size();
    if (options_.minimize_each_step) {
      PCDB_ASSIGN_OR_RETURN(
          node.patterns,
          MinimizeWithDegradation(node.patterns, pool_.get(), ctx_,
                                  &degraded_, /*info=*/nullptr,
                                  /*min_stats=*/nullptr));
    }
    span.Arg("patterns", node.patterns.size());
    return node;
  }

  /// Root-level budget guarantee; see AnnotatedEvaluator::EvalRoot.
  Result<Node> EvalRoot(const Expr& expr) {
    PCDB_ASSIGN_OR_RETURN(Node node, Eval(expr));
    if (ctx_.has_pattern_budget() &&
        node.patterns.size() > ctx_.pattern_budget()) {
      node.patterns = SummarizePatterns(node.patterns, ctx_.pattern_budget());
      degraded_ = true;
      EngineMetrics().degraded_to_summary->Increment();
    }
    return node;
  }

  bool degraded() const { return degraded_; }

 private:
  Result<Node> Apply(const Expr& expr, const Node& left, const Node& right) {
    switch (expr.kind()) {
      case ExprKind::kScan: {
        PCDB_ASSIGN_OR_RETURN(Schema schema,
                              expr.OutputSchema(adb_.database()));
        return Node{std::move(schema), adb_.patterns(expr.table_name())};
      }
      case ExprKind::kSelectConst: {
        PCDB_ASSIGN_OR_RETURN(size_t idx, left.schema.Resolve(expr.attr()));
        return Node{left.schema, PatternSelectConst(left.patterns, idx,
                                                    expr.constant())};
      }
      case ExprKind::kSelectAttrEq: {
        PCDB_ASSIGN_OR_RETURN(size_t a, left.schema.Resolve(expr.attr()));
        PCDB_ASSIGN_OR_RETURN(size_t b, left.schema.Resolve(expr.attr2()));
        return Node{left.schema, PatternSelectAttrEq(left.patterns, a, b)};
      }
      case ExprKind::kProjectOut: {
        PCDB_ASSIGN_OR_RETURN(size_t idx, left.schema.Resolve(expr.attr()));
        return Node{left.schema.WithoutColumn(idx),
                    PatternProjectOut(left.patterns, idx)};
      }
      case ExprKind::kRearrange: {
        std::vector<size_t> indices;
        indices.reserve(expr.attrs().size());
        for (const std::string& a : expr.attrs()) {
          PCDB_ASSIGN_OR_RETURN(size_t idx, left.schema.Resolve(a));
          indices.push_back(idx);
        }
        return Node{left.schema.Select(indices),
                    PatternRearrange(left.patterns, indices)};
      }
      case ExprKind::kJoin: {
        Schema schema = left.schema.Concat(right.schema);
        if (expr.attr().empty()) {
          return Node{std::move(schema),
                      PatternCross(left.patterns, right.patterns)};
        }
        PCDB_ASSIGN_OR_RETURN(size_t a, left.schema.Resolve(expr.attr()));
        PCDB_ASSIGN_OR_RETURN(size_t b, right.schema.Resolve(expr.attr2()));
        return Node{std::move(schema),
                    PatternJoin(left.patterns, a, right.patterns, b,
                                options_.join_strategy, pool_.get())};
      }
      case ExprKind::kAggregate: {
        std::vector<size_t> group_idx;
        group_idx.reserve(expr.attrs().size());
        for (const std::string& g : expr.attrs()) {
          PCDB_ASSIGN_OR_RETURN(size_t idx, left.schema.Resolve(g));
          group_idx.push_back(idx);
        }
        PCDB_ASSIGN_OR_RETURN(Schema schema,
                              expr.OutputSchema(adb_.database()));
        // OutputSchema recomputes the whole subtree, which is redundant
        // but cheap; only the aggregate's column list is needed here.
        return Node{std::move(schema),
                    PatternAggregate(left.patterns, group_idx,
                                     expr.aggs().size())};
      }
      case ExprKind::kSort:
        return Node{left.schema, left.patterns};
      case ExprKind::kLimit:
        return Node{left.schema, PatternLimit(left.patterns)};
      case ExprKind::kUnion:
        return Node{left.schema,
                    PatternUnion(left.patterns, right.patterns)};
    }
    return Status::Internal("unhandled expression kind");
  }

  const AnnotatedDatabase& adb_;
  const AnnotatedEvalOptions& options_;
  const ExecContext& ctx_;
  size_t* cost_;
  std::unique_ptr<ThreadPool> pool_;  // null when num_threads <= 1
  bool degraded_ = false;
};

}  // namespace

Result<AnnotatedTable> EvaluateAnnotated(const Expr& expr,
                                         const AnnotatedDatabase& adb,
                                         const AnnotatedEvalOptions& options,
                                         AnnotatedEvalInfo* info) {
  return EvaluateAnnotated(expr, adb, options, ExecContext::Unbounded(), info);
}

Result<AnnotatedTable> EvaluateAnnotated(const Expr& expr,
                                         const AnnotatedDatabase& adb,
                                         const AnnotatedEvalOptions& options,
                                         const ExecContext& ctx,
                                         AnnotatedEvalInfo* info) {
  // The exception guard catches throw-action failpoints on the serial
  // path (the pool path already converts them worker-side), so every
  // injected fault surfaces as a Status from this entry point.
  TraceContextScope trace_scope(ctx.trace());
  PCDB_TRACE_SPAN(span, kSpanEvaluateAnnotated);
  try {
    AnnotatedEvaluator evaluator(adb, options, ctx, info);
    Result<AnnotatedTable> out = evaluator.EvalRoot(expr);
    if (out.ok()) span.Arg("patterns", out->patterns.size());
    return out;
  } catch (const std::exception& e) {
    return Status::Internal(std::string("annotated evaluation failed: ") +
                            e.what());
  }
}

Result<PatternSet> ComputeQueryPatterns(const Expr& expr,
                                        const AnnotatedDatabase& adb,
                                        const AnnotatedEvalOptions& options,
                                        size_t* total_intermediate_patterns) {
  return ComputeQueryPatterns(expr, adb, options, ExecContext::Unbounded(),
                              /*degraded=*/nullptr,
                              total_intermediate_patterns);
}

Result<PatternSet> ComputeQueryPatterns(const Expr& expr,
                                        const AnnotatedDatabase& adb,
                                        const AnnotatedEvalOptions& options,
                                        const ExecContext& ctx, bool* degraded,
                                        size_t* total_intermediate_patterns) {
  if (options.instance_aware || options.zombies) {
    return Status::InvalidArgument(
        "ComputeQueryPatterns is schema-level only: the instance-aware "
        "algebra and zombie generation read the data; use "
        "EvaluateAnnotated instead");
  }
  if (total_intermediate_patterns != nullptr) {
    *total_intermediate_patterns = 0;
  }
  if (degraded != nullptr) *degraded = false;
  TraceContextScope trace_scope(ctx.trace());
  PCDB_TRACE_SPAN(span, kSpanComputeQueryPatterns);
  try {
    SchemaOnlyEvaluator evaluator(adb, options, ctx,
                                  total_intermediate_patterns);
    PCDB_ASSIGN_OR_RETURN(SchemaOnlyEvaluator::Node node,
                          evaluator.EvalRoot(expr));
    if (degraded != nullptr) *degraded = evaluator.degraded();
    return std::move(node.patterns);
  } catch (const std::exception& e) {
    return Status::Internal(std::string("pattern computation failed: ") +
                            e.what());
  }
}

}  // namespace pcdb
