#ifndef PCDB_PATTERN_PATH_INDEX_H_
#define PCDB_PATTERN_PATH_INDEX_H_

#include <unordered_map>
#include <vector>

#include "pattern/pattern_index.h"

namespace pcdb {

/// \brief Structure C of §4.4: a path index (per-position inverted
/// lists), borrowed from term indexing in theorem proving [McCune '92].
///
/// For every (position, symbol) pair — the wildcard is a symbol — the
/// index keeps a sorted posting list of pattern ids. A subsumption check
/// intersects, across all positions, the union of the lists for the
/// wildcard and the probe's constant; supersumption retrieval intersects
/// the constant-position lists. The intersections are expensive, which
/// matches the paper's finding that path indexing performs poorly on
/// data with few distinct attribute values.
///
/// Thread-compatible per the PatternIndex contract: no internal locking,
/// mutation requires exclusive access (shards own private instances).
class PathIndex : public PatternIndex {
 public:
  explicit PathIndex(size_t arity)
      : arity_(arity), postings_(arity) {}

  void Insert(const Pattern& p) override;
  bool Remove(const Pattern& p) override;
  bool HasSubsumer(const Pattern& p, bool strict) const override;
  void CollectSubsumed(const Pattern& p, bool strict,
                       std::vector<Pattern>* out) const override;
  void CollectSubsumers(const Pattern& p, bool strict,
                        std::vector<Pattern>* out) const override;
  size_t size() const override { return live_count_; }
  std::vector<Pattern> Contents() const override;
  size_t ApproxMemoryBytes() const override;
  const char* name() const override { return "C"; }

 private:
  struct CellHash {
    size_t operator()(const Pattern::Cell& c) const {
      return c.has_value() ? c->Hash() : 0x5bd1e995u;
    }
  };
  using PostingMap =
      std::unordered_map<Pattern::Cell, std::vector<uint32_t>, CellHash>;

  /// Sorted union of the posting lists relevant for subsumers of `p` at
  /// `position` (wildcard list, plus the constant's list if p has one).
  std::vector<uint32_t> SubsumerCandidates(const Pattern& p,
                                           size_t position) const;

  size_t arity_;
  std::vector<Pattern> slots_;
  std::vector<bool> live_;
  size_t live_count_ = 0;
  size_t posting_entries_ = 0;
  std::unordered_map<Pattern, uint32_t, PatternHash> slot_of_;
  std::vector<PostingMap> postings_;  // one map per position
};

}  // namespace pcdb

#endif  // PCDB_PATTERN_PATH_INDEX_H_
