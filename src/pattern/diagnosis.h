#ifndef PCDB_PATTERN_DIAGNOSIS_H_
#define PCDB_PATTERN_DIAGNOSIS_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "pattern/annotated.h"
#include "relational/expr.h"

namespace pcdb {

/// \brief Diagnosis of one answer row's completeness.
struct RowDiagnosis {
  /// Row index into the report's answer table.
  size_t row = 0;
  /// The row's slice is covered by a query completeness pattern: its
  /// neighbourhood is guaranteed final.
  bool guaranteed = false;
  /// For unguaranteed rows: the base tables whose contributing tuple
  /// lies outside every asserted completeness pattern — the "specific
  /// additional data sources" (§1) a user should consult or re-load.
  /// Empty for unguaranteed rows whose sources are all covered (the
  /// guarantee was lost through operators, e.g. projection).
  std::vector<std::string> suspect_tables;
};

/// \brief Why-provenance-based incompleteness report for a query answer.
struct IncompletenessReport {
  Table answer;
  std::vector<RowDiagnosis> rows;  // parallel to answer rows
  /// How many unguaranteed answer rows implicate each base table.
  std::map<std::string, size_t> suspect_counts;
  size_t guaranteed_rows = 0;

  /// Multi-line human-readable rendering.
  std::string ToString(size_t max_rows = 20) const;
};

/// \brief Explains which parts of a query answer lack completeness
/// guarantees and which sources are responsible.
///
/// Combines the computed query completeness patterns (which rows are
/// guaranteed) with why-provenance (which base tuples produced each
/// row): an unguaranteed row is attributed to the base tables whose
/// contributing tuple is not covered by any base completeness pattern.
/// Supports the SPJ fragment plus sort/limit (lineage restriction).
[[nodiscard]] Result<IncompletenessReport> DiagnoseIncompleteness(
    const Expr& expr, const AnnotatedDatabase& adb);

[[nodiscard]] inline Result<IncompletenessReport> DiagnoseIncompleteness(
    const ExprPtr& expr, const AnnotatedDatabase& adb) {
  return DiagnoseIncompleteness(*expr, adb);
}

}  // namespace pcdb

#endif  // PCDB_PATTERN_DIAGNOSIS_H_
