#ifndef PCDB_PATTERN_LINEAR_INDEX_H_
#define PCDB_PATTERN_LINEAR_INDEX_H_

#include <vector>

#include "pattern/pattern_index.h"

namespace pcdb {

/// \brief Structure A of §4.4: a plain list of patterns.
///
/// Every operation is a linear scan; with pairwise comparison this yields
/// the quadratic baseline minimization algorithm (method A1).
///
/// Thread-compatible per the PatternIndex contract: no internal locking,
/// mutation requires exclusive access (shards own private instances).
class LinearIndex : public PatternIndex {
 public:
  explicit LinearIndex(size_t arity) : arity_(arity) {}

  void Insert(const Pattern& p) override;
  bool Remove(const Pattern& p) override;
  bool HasSubsumer(const Pattern& p, bool strict) const override;
  void CollectSubsumed(const Pattern& p, bool strict,
                       std::vector<Pattern>* out) const override;
  void CollectSubsumers(const Pattern& p, bool strict,
                        std::vector<Pattern>* out) const override;
  size_t size() const override { return patterns_.size(); }
  std::vector<Pattern> Contents() const override { return patterns_; }
  size_t ApproxMemoryBytes() const override;
  const char* name() const override { return "A"; }

 private:
  size_t arity_;
  std::vector<Pattern> patterns_;
};

}  // namespace pcdb

#endif  // PCDB_PATTERN_LINEAR_INDEX_H_
