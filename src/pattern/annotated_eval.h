#ifndef PCDB_PATTERN_ANNOTATED_EVAL_H_
#define PCDB_PATTERN_ANNOTATED_EVAL_H_

#include "common/exec_context.h"
#include "obs/profile.h"
#include "pattern/annotated.h"
#include "pattern/minimize.h"
#include "pattern/promotion.h"
#include "relational/expr.h"

namespace pcdb {

/// \brief Configuration for annotated query evaluation.
struct AnnotatedEvalOptions {
  /// Use the instance-aware algebra (§5): joins run pattern promotion
  /// against the join inputs, producing more general patterns at
  /// potentially exponential cost (mitigated by PromotionOptions).
  bool instance_aware = false;
  /// Generate zombie patterns (Appendix E) at constant selections and
  /// joins. Requires attribute domains in the database's DomainRegistry;
  /// attributes without a registered domain are skipped.
  bool zombies = false;
  /// Minimize the pattern set after every operator. Keeps intermediate
  /// sets small; promotion and zombies in particular produce many
  /// subsumed patterns (Tables 9, 10).
  bool minimize_each_step = true;
  /// Worker threads shared by the whole evaluation: per-operator
  /// minimization (ParallelMinimize), the partitioned pattern join, and
  /// the data-side hash-join probe all fan out over one pool. 1 = the
  /// serial paths; results are SetEquals/bit-identical either way.
  size_t num_threads = 1;
  PatternJoinStrategy join_strategy =
      PatternJoinStrategy::kPartitionedHashJoin;
  PromotionOptions promotion;
  /// Collect a per-operator QueryProfile (EXPLAIN ANALYZE) into
  /// `info->profile`. Requires a non-null AnnotatedEvalInfo; adds one
  /// OperatorProfile per plan node in post-order. Off by default — the
  /// per-node bookkeeping (row/pattern counts, per-node timers) is cheap
  /// but not free.
  bool collect_profile = false;
};

/// \brief Counters and timings from one annotated evaluation.
struct AnnotatedEvalInfo {
  /// Time spent computing the data result (query evaluation).
  double data_millis = 0;
  /// Time spent computing the metadata result (completeness
  /// calculation) — the paper's headline comparison (Table 7).
  double pattern_millis = 0;
  /// Largest intermediate pattern set (before minimization).
  size_t max_intermediate_patterns = 0;
  /// Zombie patterns generated (before minimization).
  size_t zombies_added = 0;
  /// Times a tripped pattern budget degraded an intermediate set to a
  /// summary (SummarizePatterns) instead of failing the evaluation.
  size_t degradations = 0;
  PromotionStats promotion;
  /// Per-operator profile, populated only when
  /// AnnotatedEvalOptions::collect_profile is set. Operators appear in
  /// post-order; per-operator micros are disjoint, so their sum is at
  /// most the caller-measured wall time.
  QueryProfile profile;
};

/// \brief Evaluates `expr` over a partially complete database, computing
/// both the query answer and the completeness patterns entailed for it.
///
/// This is the paper's end-to-end pipeline: the metadata is computed by
/// running, for each algebra operator applied to the data, the analogous
/// pattern operator on the metadata (§4.1), optionally strengthened by
/// instance-aware promotion (§5) and zombie patterns (Appendix E).
/// The returned patterns are sound: every completion of the database
/// consistent with the base patterns agrees with the answer on every
/// returned pattern's slice (Proposition 5).
[[nodiscard]] Result<AnnotatedTable> EvaluateAnnotated(
    const Expr& expr, const AnnotatedDatabase& adb,
    const AnnotatedEvalOptions& options = {},
    AnnotatedEvalInfo* info = nullptr);

/// Governed end-to-end pipeline: `ctx` is polled at every plan node
/// (the "annotated.operator" failpoint fires there too) and inside the
/// data operators and minimizations underneath. Deadline, cancellation,
/// and row-budget violations return kTimeout / kCancelled /
/// kResourceExhausted; a tripped *pattern* budget degrades gracefully
/// instead — the offending intermediate set is replaced by a sound
/// coarser summary (SummarizePatterns) and the result is returned with
/// `degraded = true`. The returned patterns stay sound either way.
[[nodiscard]] Result<AnnotatedTable> EvaluateAnnotated(const Expr& expr,
                                         const AnnotatedDatabase& adb,
                                         const AnnotatedEvalOptions& options,
                                         const ExecContext& ctx,
                                         AnnotatedEvalInfo* info = nullptr);

[[nodiscard]] inline Result<AnnotatedTable> EvaluateAnnotated(
    const ExprPtr& expr, const AnnotatedDatabase& adb,
    const AnnotatedEvalOptions& options = {},
    AnnotatedEvalInfo* info = nullptr) {
  return EvaluateAnnotated(*expr, adb, options, info);
}

[[nodiscard]] inline Result<AnnotatedTable> EvaluateAnnotated(
    const ExprPtr& expr, const AnnotatedDatabase& adb,
    const AnnotatedEvalOptions& options, const ExecContext& ctx,
    AnnotatedEvalInfo* info = nullptr) {
  return EvaluateAnnotated(*expr, adb, options, ctx, info);
}

/// \brief Computes the completeness patterns of a query answer *without
/// touching the data* — the pattern algebra is purely schema-level
/// (§4.1), so the reasoner can run outside the DBMS (§6, "Placement of
/// Reasoner").
///
/// Only the schema-level algebra is available here: the instance-aware
/// extension (§5) and zombie generation read tuples, so
/// options.instance_aware and options.zombies must be false
/// (InvalidArgument otherwise). If `total_intermediate_patterns` is
/// given, it receives the summed sizes of all intermediate pattern sets
/// — the cost measure the metadata plan optimizer minimizes.
[[nodiscard]] Result<PatternSet> ComputeQueryPatterns(
    const Expr& expr, const AnnotatedDatabase& adb,
    const AnnotatedEvalOptions& options = {},
    size_t* total_intermediate_patterns = nullptr);

/// Governed schema-level reasoning with graceful degradation: same
/// contract as the governed EvaluateAnnotated, with `*degraded` (if
/// non-null) set to true when a tripped pattern budget forced a
/// summary. The result then holds at most ctx.pattern_budget() patterns,
/// each still sound for the query.
[[nodiscard]] Result<PatternSet> ComputeQueryPatterns(
    const Expr& expr, const AnnotatedDatabase& adb,
    const AnnotatedEvalOptions& options, const ExecContext& ctx,
    bool* degraded, size_t* total_intermediate_patterns = nullptr);

[[nodiscard]] inline Result<PatternSet> ComputeQueryPatterns(
    const ExprPtr& expr, const AnnotatedDatabase& adb,
    const AnnotatedEvalOptions& options = {},
    size_t* total_intermediate_patterns = nullptr) {
  return ComputeQueryPatterns(*expr, adb, options,
                              total_intermediate_patterns);
}

[[nodiscard]] inline Result<PatternSet> ComputeQueryPatterns(
    const ExprPtr& expr, const AnnotatedDatabase& adb,
    const AnnotatedEvalOptions& options, const ExecContext& ctx,
    bool* degraded, size_t* total_intermediate_patterns = nullptr) {
  return ComputeQueryPatterns(*expr, adb, options, ctx, degraded,
                              total_intermediate_patterns);
}

}  // namespace pcdb

#endif  // PCDB_PATTERN_ANNOTATED_EVAL_H_
