#include "pattern/zombie.h"

#include <unordered_set>

#include "common/logging.h"

namespace pcdb {

PatternSet ZombiesForSelectConst(size_t arity, size_t attr, const Value& d,
                                 const std::vector<Value>& domain) {
  PCDB_CHECK(attr < arity);
  PatternSet out;
  for (const Value& c : domain) {
    if (c == d) continue;
    out.Add(Pattern::AllWildcards(arity).WithValue(attr, c));
  }
  return out;
}

PatternSet ZombiesForJoin(const PatternSet& side_patterns, size_t attr,
                          const Table& side_data,
                          const std::vector<Value>& domain,
                          size_t other_arity, bool side_is_left) {
  std::unordered_set<Value, ValueHash> present;
  for (const Tuple& t : side_data.rows()) {
    PCDB_CHECK(attr < t.size());
    present.insert(t[attr]);
  }
  const Pattern padding = Pattern::AllWildcards(other_arity);
  PatternSet out;
  std::unordered_set<Pattern, PatternHash> seen;
  for (const Pattern& p : side_patterns) {
    PCDB_CHECK(attr < p.arity());
    if (!p.IsWildcard(attr)) continue;
    for (const Value& d : domain) {
      if (present.count(d) > 0) continue;
      // p is complete with '*' at the join attribute and no current row
      // has value d there, so no p[A/d]-matching row can ever exist; the
      // join result is vacuously complete for that slice.
      Pattern specialized = p.WithValue(attr, d);
      Pattern zombie = side_is_left ? specialized.Concat(padding)
                                    : padding.Concat(specialized);
      if (seen.insert(zombie).second) out.Add(std::move(zombie));
    }
  }
  return out;
}

}  // namespace pcdb
