#ifndef PCDB_PATTERN_CONSTRAINTS_H_
#define PCDB_PATTERN_CONSTRAINTS_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "pattern/annotated.h"

namespace pcdb {

/// \brief Schema constraints that strengthen completeness reasoning —
/// the extension the paper's conclusion names as future work ("take into
/// account constraints such as keys, foreign keys, inclusion or
/// functional dependencies").
///
/// Two inference rules are implemented:
///
/// 1. *Key-based patterns* — if K is a key of R, then for every tuple t
///    already present in R the slice σ_{K = t[K]}(R) is complete: the
///    key admits at most one tuple with those key values and it is
///    already here. DeriveKeyPatterns materializes these assertions.
///
/// 2. *Inclusion-based domains* — an inclusion dependency R.A ⊆ S.B
///    together with a base pattern making the relevant part of S.B
///    closed-world bounds the possible values of R.A by the values
///    currently in S.B. DeriveInclusionDomain feeds this bound into the
///    DomainRegistry, where zombie generation (Appendix E) picks it up;
///    attributes whose domains were previously unknown become eligible.

/// \brief A key (uniqueness) constraint: `columns` of `table` determine
/// the whole tuple; no two distinct real-world tuples share them.
struct KeyConstraint {
  std::string table;
  std::vector<std::string> columns;
};

/// \brief An inclusion dependency: every value of `table.column` that
/// can exist in the real world also appears in `ref_table.ref_column`.
/// (Foreign keys are the enforced special case.)
struct InclusionConstraint {
  std::string table;
  std::string column;
  std::string ref_table;
  std::string ref_column;
};

/// Patterns derivable from a key constraint and the instance: one
/// pattern per distinct key value present in the table, with constants
/// at the key columns and '*' elsewhere. Sound under the constraint:
/// the pattern's slice holds at most the tuples already present.
/// Returns InvalidArgument if a key column cannot be resolved.
[[nodiscard]] Result<PatternSet> DeriveKeyPatterns(const AnnotatedDatabase& adb,
                                     const KeyConstraint& key);

/// Adds the key-derived patterns of `key` to its table's pattern set
/// (minimized together with the existing assertions).
[[nodiscard]] Status ApplyKeyConstraint(AnnotatedDatabase* adb, const KeyConstraint& key);

/// The domain bound implied by an inclusion dependency whose referenced
/// column is covered by completeness assertions: the distinct values of
/// ref_table.ref_column, provided some base pattern of ref_table with
/// '*' (or any value) at ref_column... Specifically, the bound is sound
/// iff the referenced column is *closed*: every real-world value of
/// ref_column occurs in the stored ref_table. That holds when the
/// all-wildcard projection of ref_table onto ref_column is complete,
/// i.e. some base pattern with '*' at every position except possibly
/// ref_column subsumes all candidate rows — conservatively, when the
/// pattern set contains a pattern that is all-'*'. Returns NotFound when
/// the bound cannot be established.
[[nodiscard]] Result<std::vector<Value>> DeriveInclusionDomain(
    const AnnotatedDatabase& adb, const InclusionConstraint& inclusion);

/// Registers the inclusion-derived domain bound for `table.column` in
/// the database's DomainRegistry (no-op with NotFound if the bound
/// cannot be established).
[[nodiscard]] Status ApplyInclusionConstraint(AnnotatedDatabase* adb,
                                const InclusionConstraint& inclusion);

}  // namespace pcdb

#endif  // PCDB_PATTERN_CONSTRAINTS_H_
