#ifndef PCDB_PATTERN_ENTAILMENT_H_
#define PCDB_PATTERN_ENTAILMENT_H_

#include "pattern/annotated.h"
#include "pattern/constraints.h"
#include "relational/expr.h"

namespace pcdb {

/// \brief Configuration for the naive entailment checker.
struct EntailmentOptions {
  /// Candidate completions add at most this many tuples to the database.
  /// For monotone SPJ queries a minimal violation witness adds at most
  /// one tuple per scanned table, so set this to the number of scans (or
  /// leave the default for ≤3-table queries).
  size_t max_added_tuples = 3;
  /// Fresh constants injected per value type beyond the active domain,
  /// so completions can introduce values the database has never seen.
  size_t fresh_constants = 1;
  /// Key constraints the real world is known to satisfy: candidate
  /// completions violating one are excluded (the semantics under which
  /// key-derived patterns, constraints.h, are entailed).
  std::vector<KeyConstraint> keys;
};

/// \brief Ground-truth decision procedure for entailment (Definition 4):
/// does the set of base completeness patterns of `adb` entail the query
/// completeness pattern (p, expr) with respect to the instance?
///
/// Enumerates candidate completions D_c ⊇ D over a finite domain (the
/// active domain plus constants from the query, the patterns, and a few
/// fresh values) and checks Q_p(D_c) = Q_p(D) for each. Tuples subsumed
/// by a base pattern may not be added (they would violate the pattern);
/// all other domain tuples may.
///
/// The enumeration is exponential in the schema size and domain — this
/// exists to validate the pattern algebra (Propositions 5 and 6) on tiny
/// instances in tests, not for production use.
[[nodiscard]] Result<bool> EntailsWrtInstance(const AnnotatedDatabase& adb,
                                const Expr& expr, const Pattern& p,
                                const EntailmentOptions& options = {});

[[nodiscard]] inline Result<bool> EntailsWrtInstance(const AnnotatedDatabase& adb,
                                       const ExprPtr& expr, const Pattern& p,
                                       const EntailmentOptions& options = {}) {
  return EntailsWrtInstance(adb, *expr, p, options);
}

/// Q_p(D): the rows of expr's answer over `db` that match `p`
/// (σ_{attr(Q)=p}(Q(D)), Definition 3).
[[nodiscard]] Result<Table> AnswerSlice(const Expr& expr, const Database& db,
                          const Pattern& p);

}  // namespace pcdb

#endif  // PCDB_PATTERN_ENTAILMENT_H_
