#include "pattern/pattern.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"

namespace pcdb {

Result<Pattern> Pattern::Parse(const std::vector<std::string>& fields,
                               const Schema& schema) {
  if (fields.size() != schema.arity()) {
    return Status::InvalidArgument(
        "pattern arity " + std::to_string(fields.size()) +
        " does not match schema arity " + std::to_string(schema.arity()));
  }
  std::vector<Cell> cells;
  cells.reserve(fields.size());
  for (size_t i = 0; i < fields.size(); ++i) {
    if (fields[i] == "*") {
      cells.push_back(Wildcard());
    } else {
      PCDB_ASSIGN_OR_RETURN(Value v,
                            Value::Parse(fields[i], schema.column(i).type));
      cells.push_back(std::move(v));
    }
  }
  return Pattern(std::move(cells));
}

Pattern Pattern::FromTuple(const Tuple& t) {
  std::vector<Cell> cells;
  cells.reserve(t.size());
  for (const Value& v : t) cells.push_back(v);
  return Pattern(std::move(cells));
}

size_t Pattern::NumWildcards() const {
  size_t n = 0;
  for (const Cell& c : cells_) {
    if (!c.has_value()) ++n;
  }
  return n;
}

Pattern Pattern::WithWildcard(size_t i) const {
  PCDB_CHECK(i < cells_.size());
  Pattern p = *this;
  p.cells_[i] = Wildcard();
  return p;
}

Pattern Pattern::WithValue(size_t i, Value v) const {
  PCDB_CHECK(i < cells_.size());
  Pattern p = *this;
  p.cells_[i] = std::move(v);
  return p;
}

Pattern Pattern::WithSwapped(size_t i, size_t j) const {
  PCDB_CHECK(i < cells_.size() && j < cells_.size());
  Pattern p = *this;
  std::swap(p.cells_[i], p.cells_[j]);
  return p;
}

Pattern Pattern::WithoutPosition(size_t i) const {
  PCDB_CHECK(i < cells_.size());
  std::vector<Cell> cells;
  cells.reserve(cells_.size() - 1);
  for (size_t j = 0; j < cells_.size(); ++j) {
    if (j != i) cells.push_back(cells_[j]);
  }
  return Pattern(std::move(cells));
}

Pattern Pattern::Concat(const Pattern& other) const {
  std::vector<Cell> cells = cells_;
  cells.insert(cells.end(), other.cells_.begin(), other.cells_.end());
  return Pattern(std::move(cells));
}

bool Pattern::Subsumes(const Pattern& other) const {
  PCDB_CHECK(arity() == other.arity())
      << "subsumption between arities " << arity() << " and "
      << other.arity();
  for (size_t i = 0; i < cells_.size(); ++i) {
    if (!cells_[i].has_value()) continue;
    if (!other.cells_[i].has_value() || *cells_[i] != *other.cells_[i]) {
      return false;
    }
  }
  return true;
}

bool Pattern::SubsumesTuple(const Tuple& t) const {
  PCDB_CHECK(arity() == t.size());
  for (size_t i = 0; i < cells_.size(); ++i) {
    if (cells_[i].has_value() && *cells_[i] != t[i]) return false;
  }
  return true;
}

bool Pattern::UnifiableWith(const Pattern& other) const {
  PCDB_CHECK(arity() == other.arity());
  for (size_t i = 0; i < cells_.size(); ++i) {
    if (cells_[i].has_value() && other.cells_[i].has_value() &&
        *cells_[i] != *other.cells_[i]) {
      return false;
    }
  }
  return true;
}

Pattern Pattern::UnifyWith(const Pattern& other) const {
  PCDB_CHECK(UnifiableWith(other));
  std::vector<Cell> cells;
  cells.reserve(cells_.size());
  for (size_t i = 0; i < cells_.size(); ++i) {
    cells.push_back(cells_[i].has_value() ? cells_[i] : other.cells_[i]);
  }
  return Pattern(std::move(cells));
}

std::string Pattern::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < cells_.size(); ++i) {
    if (i > 0) out += ", ";
    out += cells_[i].has_value() ? cells_[i]->ToString() : "*";
  }
  out += ")";
  return out;
}

bool Pattern::operator<(const Pattern& other) const {
  if (arity() != other.arity()) return arity() < other.arity();
  for (size_t i = 0; i < cells_.size(); ++i) {
    const bool a_wild = !cells_[i].has_value();
    const bool b_wild = !other.cells_[i].has_value();
    if (a_wild != b_wild) return a_wild;  // wildcard sorts first
    if (!a_wild && *cells_[i] != *other.cells_[i]) {
      return *cells_[i] < *other.cells_[i];
    }
  }
  return false;
}

size_t Pattern::Hash() const {
  size_t seed = 0xa1b2c3d4e5f60718ULL;
  for (const Cell& c : cells_) {
    seed = HashCombine(seed, c.has_value() ? c->Hash() : 0x5bd1e995u);
  }
  return seed;
}

std::ostream& operator<<(std::ostream& os, const Pattern& p) {
  return os << p.ToString();
}

void PatternSet::AddUnique(Pattern p) {
  if (!Contains(p)) patterns_.push_back(std::move(p));
}

bool PatternSet::Contains(const Pattern& p) const {
  return std::find(patterns_.begin(), patterns_.end(), p) != patterns_.end();
}

bool PatternSet::AnySubsumes(const Pattern& p) const {
  for (const Pattern& q : patterns_) {
    if (q.Subsumes(p)) return true;
  }
  return false;
}

bool PatternSet::AnySubsumesTuple(const Tuple& t) const {
  for (const Pattern& q : patterns_) {
    if (q.SubsumesTuple(t)) return true;
  }
  return false;
}

void PatternSet::Sort() { std::sort(patterns_.begin(), patterns_.end()); }

bool PatternSet::SetEquals(const PatternSet& other) const {
  std::unordered_set<Pattern, PatternHash> mine(patterns_.begin(),
                                                patterns_.end());
  std::unordered_set<Pattern, PatternHash> theirs(other.patterns_.begin(),
                                                  other.patterns_.end());
  return mine == theirs;
}

std::string PatternSet::ToString() const {
  std::string out;
  for (const Pattern& p : patterns_) {
    out += p.ToString();
    out += "\n";
  }
  return out;
}

}  // namespace pcdb
