#ifndef PCDB_PATTERN_ANNOTATED_H_
#define PCDB_PATTERN_ANNOTATED_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "pattern/domain.h"
#include "pattern/pattern.h"
#include "relational/database.h"
#include "relational/table.h"

namespace pcdb {

/// \brief A relation together with the completeness patterns that hold
/// for it — a data table annotated with its metadata table, as in
/// Tables 1–3 of the paper.
struct AnnotatedTable {
  Table data;
  PatternSet patterns;
  /// True when a resource budget forced the patterns down to a coarser
  /// summary (SummarizePatterns): still sound, but the set may promise
  /// less completeness than the exact minimized patterns would.
  bool degraded = false;

  /// Renders rows followed by pattern rows, the paper's presentation
  /// (rows r1..rn, then patterns p1..pm with '*' cells).
  std::string ToString(size_t max_rows = 50) const;
};

/// \brief A partially complete database: an instance plus, for each
/// table, a set of base completeness patterns (§3.2), plus optional
/// attribute domains for zombie generation.
class AnnotatedDatabase {
 public:
  Database& database() { return db_; }
  const Database& database() const { return db_; }

  /// Registers a new empty table.
  [[nodiscard]] Status CreateTable(const std::string& name, Schema schema);

  /// Appends a data row (type-checked against the schema).
  [[nodiscard]] Status AddRow(const std::string& name, Tuple row);

  /// Asserts a base completeness pattern for `name`; the pattern arity
  /// must match the table schema.
  [[nodiscard]] Status AddPattern(const std::string& name, Pattern pattern);

  /// Parses and asserts a pattern from display fields, e.g.
  /// {"Mon", "2", "*", "*"}; "*" is the wildcard.
  [[nodiscard]] Status AddPattern(const std::string& name,
                    const std::vector<std::string>& fields);

  /// The base patterns of `name` (the empty set for unknown tables or
  /// tables without assertions — everything open-world).
  const PatternSet& patterns(const std::string& name) const;

  /// Replaces the pattern set of `name`. The replacement may retract
  /// promises, so this bumps the table epoch (conservative wholesale
  /// invalidation of dependent cached answers).
  void SetPatterns(const std::string& name, PatternSet patterns);

  /// Replaces the pattern set of `name` with a *semantically equivalent*
  /// one (same promises — e.g. the minimized form of the current set).
  /// Bumps no epochs, so cached answers derived from the old form stay
  /// valid. Callers must guarantee equivalence.
  void SetEquivalentPatterns(const std::string& name, PatternSet patterns);

  /// Per-signature pattern epochs of `name`: for each constant-position
  /// signature (pattern/signature.h) asserted on the table, how many
  /// distinct pattern additions carried it. The answer cache folds the
  /// epochs of signatures comparable with a query's constant mask into
  /// its keys, so an addition under an incomparable signature leaves
  /// unrelated cached entries intact (soundness argument in
  /// docs/SERVER.md). Empty map for tables without additions.
  const std::map<uint64_t, uint64_t>& PatternSigEpochs(
      const std::string& name) const;

  /// Restores `name`'s per-signature epochs verbatim — checkpoint
  /// recovery only, paired with Database::SetTableEpoch. Normal pattern
  /// additions must go through AddPattern so epochs advance.
  void RestorePatternSigEpochs(const std::string& name,
                               std::map<uint64_t, uint64_t> epochs) {
    pattern_sig_epochs_[name] = std::move(epochs);
  }

  /// The annotated view of a base table.
  [[nodiscard]] Result<AnnotatedTable> GetAnnotated(const std::string& name) const;

  DomainRegistry& domains() { return domains_; }
  const DomainRegistry& domains() const { return domains_; }

 private:
  /// Adds `pattern` to `name`'s set unless already present, bumping the
  /// per-signature epoch only on genuine additions (re-assertions must
  /// not invalidate anything).
  void RecordPattern(const std::string& name, Pattern pattern);

  Database db_;
  std::map<std::string, PatternSet> patterns_;
  /// signature -> number of pattern additions with that signature; the
  /// fine-grained counterpart of Database table epochs (copied with the
  /// rest of the snapshot under MVCC).
  std::map<std::string, std::map<uint64_t, uint64_t>> pattern_sig_epochs_;
  PatternSet empty_;
  std::map<uint64_t, uint64_t> empty_sig_epochs_;
  DomainRegistry domains_;
};

}  // namespace pcdb

#endif  // PCDB_PATTERN_ANNOTATED_H_
