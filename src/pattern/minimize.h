#ifndef PCDB_PATTERN_MINIMIZE_H_
#define PCDB_PATTERN_MINIMIZE_H_

#include <string>

#include "pattern/pattern.h"
#include "pattern/pattern_index.h"

namespace pcdb {

/// \brief Processing approaches for pattern set minimization (§4.4).
enum class MinimizeApproach {
  /// 1: load everything, then test each pattern for a strict subsumer.
  kAllAtOnce = 1,
  /// 2: maintain the maximal set while streaming patterns in; needs both
  /// subsumption checking and supersumption retrieval.
  kIncremental = 2,
  /// 3: sort by wildcard count (descending) first; later patterns can
  /// never subsume earlier ones, so supersumption retrieval is not
  /// needed.
  kSortedIncremental = 3,
};

/// The paper's method label, e.g. "D1" for all-at-once over a
/// discrimination tree.
std::string MinimizeMethodName(PatternIndexKind kind,
                               MinimizeApproach approach);

/// \brief Observability for the minimization experiments (Figs. 4, 5).
struct MinimizeStats {
  /// Patterns in the minimized output.
  size_t output_size = 0;
  /// Largest number of patterns held by the index at any point.
  size_t peak_index_size = 0;
  /// Largest ApproxMemoryBytes() of the index at any point.
  size_t peak_memory_bytes = 0;
  /// Wall-clock time.
  double millis = 0;
};

/// \brief Removes all non-maximal (strictly subsumed) patterns and
/// duplicates from `input` (§3.2: a set is minimal iff all its elements
/// are maximal).
///
/// `approach` and `kind` select the §4.4 method; `stats` (optional)
/// receives runtime/space counters. The output order is unspecified.
PatternSet Minimize(const PatternSet& input, MinimizeApproach approach,
                    PatternIndexKind kind, MinimizeStats* stats = nullptr);

/// Minimizes with the best-performing method from the paper's
/// experiments (all-at-once over a discrimination tree, D1).
PatternSet Minimize(const PatternSet& input);

/// True if no element of `set` is strictly subsumed by another and there
/// are no duplicate patterns.
bool IsMinimal(const PatternSet& set);

}  // namespace pcdb

#endif  // PCDB_PATTERN_MINIMIZE_H_
