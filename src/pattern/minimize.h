#ifndef PCDB_PATTERN_MINIMIZE_H_
#define PCDB_PATTERN_MINIMIZE_H_

#include <string>

#include "common/exec_context.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "pattern/pattern.h"
#include "pattern/pattern_index.h"

namespace pcdb {

/// \brief Processing approaches for pattern set minimization (§4.4).
enum class MinimizeApproach {
  /// 1: load everything, then test each pattern for a strict subsumer.
  kAllAtOnce = 1,
  /// 2: maintain the maximal set while streaming patterns in; needs both
  /// subsumption checking and supersumption retrieval.
  kIncremental = 2,
  /// 3: sort by wildcard count (descending) first; later patterns can
  /// never subsume earlier ones, so supersumption retrieval is not
  /// needed.
  kSortedIncremental = 3,
};

/// The paper's method label, e.g. "D1" for all-at-once over a
/// discrimination tree.
std::string MinimizeMethodName(PatternIndexKind kind,
                               MinimizeApproach approach);

/// \brief Observability for the minimization experiments (Figs. 4, 5).
struct MinimizeStats {
  /// Patterns in the minimized output.
  size_t output_size = 0;
  /// Largest number of patterns held by the index at any point.
  size_t peak_index_size = 0;
  /// Largest ApproxMemoryBytes() of the index at any point.
  size_t peak_memory_bytes = 0;
  /// Index probe operations (HasSubsumer / CollectSubsumed calls) this
  /// run issued. Accumulates across shard merges; also mirrored into
  /// the engine_subsumption_probes global counter.
  size_t probes = 0;
  /// Wall-clock time.
  double millis = 0;
};

/// \brief Removes all non-maximal (strictly subsumed) patterns and
/// duplicates from `input` (§3.2: a set is minimal iff all its elements
/// are maximal).
///
/// `approach` and `kind` select the §4.4 method; `stats` (optional)
/// receives runtime/space counters. The output order is unspecified.
PatternSet Minimize(const PatternSet& input, MinimizeApproach approach,
                    PatternIndexKind kind, MinimizeStats* stats = nullptr);

/// Governed minimization: `ctx` is polled inside the insert/probe loops,
/// so a cancelled token, expired deadline, or tripped pattern/memory
/// budget stops the run cooperatively (kCancelled / kTimeout /
/// kResourceExhausted). The "minimize.pattern" failpoint fires per
/// processed pattern. Note the pattern budget caps the *index* size: the
/// all-at-once approach loads every input pattern before dropping any,
/// so under a budget smaller than the input it always trips — governed
/// callers that want to finish within a budget use kSortedIncremental,
/// whose index only ever holds the running maximal set.
[[nodiscard]] Result<PatternSet> Minimize(const PatternSet& input, MinimizeApproach approach,
                            PatternIndexKind kind, const ExecContext& ctx,
                            MinimizeStats* stats = nullptr);

/// Governed minimization with an optional worker pool for the *inner*
/// scans. Today only the kIncremental approach uses it: its
/// supersumption retrieval (CollectSubsumed — which stored patterns does
/// the incoming one displace?) runs as a chunked parallel scan over a
/// snapshot of the index contents once the index is large enough. This
/// is the intra-shard complement of ParallelMinimize's inter-shard
/// fan-out, and the only parallelism available when every pattern shares
/// one constant signature (a single shard). The result is SetEquals-
/// identical to the serial run; a null pool (or <= 1 worker) is exactly
/// the serial path. Must not be called from inside a task already
/// running on `scan_pool` (ThreadPool::Wait would deadlock) — the
/// sharded ParallelMinimize therefore passes the pool only on its
/// not-actually-sharded fallback paths, never into shard tasks.
[[nodiscard]] Result<PatternSet> Minimize(const PatternSet& input, MinimizeApproach approach,
                            PatternIndexKind kind, ThreadPool* scan_pool,
                            const ExecContext& ctx,
                            MinimizeStats* stats = nullptr);

/// Minimizes with the best-performing method from the paper's
/// experiments (all-at-once over a discrimination tree, D1).
PatternSet Minimize(const PatternSet& input);

/// \brief Sharded, multi-threaded minimization. Produces a result that
/// is SetEquals-identical to `Minimize(input, approach, kind)`.
///
/// Patterns are grouped by their *constant-position signature* (the bit
/// mask of non-wildcard positions) and signature groups are packed into
/// one shard per thread. Subsumption q ≻ p forces sig(q) ⊆ sig(p), so
/// patterns whose signatures are incomparable can never subsume one
/// another — in particular, duplicates and equal-signature subsumptions
/// always resolve inside one shard. Shards are minimized concurrently
/// with the selected §4.4 method; a cross-shard merge pass (an
/// all-at-once sweep over the union of shard survivors, probed in
/// parallel against a shared read-only index) removes the remaining
/// subsumptions between comparable signatures. See docs/ALGEBRA.md,
/// "Parallel minimization" for the full correctness argument.
///
/// `num_threads <= 1` (or a trivially small input) falls back to the
/// serial Minimize path. `stats`, if given, receives the output size,
/// total wall time and the worst per-shard/merge index peaks.
PatternSet ParallelMinimize(const PatternSet& input, MinimizeApproach approach,
                            PatternIndexKind kind, size_t num_threads,
                            MinimizeStats* stats = nullptr);

/// As above, but runs on a caller-owned pool (the annotated evaluator
/// reuses one pool across all per-operator minimizations). A null pool
/// means serial.
PatternSet ParallelMinimize(const PatternSet& input, MinimizeApproach approach,
                            PatternIndexKind kind, ThreadPool* pool,
                            MinimizeStats* stats = nullptr);

/// Governed sharded minimization: shard tasks run under
/// first-error-cancel-the-rest semantics (common/thread_pool.h), `ctx`
/// is polled inside every shard and during the merge pass, and the
/// "minimize.shard" failpoint fires once per shard task. The serial
/// fallback and the sharded path return identical error codes for the
/// same fault, and a pattern-budget trip anywhere surfaces as
/// kResourceExhausted so callers can degrade to a summary.
[[nodiscard]] Result<PatternSet> ParallelMinimize(const PatternSet& input,
                                    MinimizeApproach approach,
                                    PatternIndexKind kind, ThreadPool* pool,
                                    const ExecContext& ctx,
                                    MinimizeStats* stats = nullptr);

/// ParallelMinimize with the paper's best method (D1).
PatternSet ParallelMinimize(const PatternSet& input, size_t num_threads);

/// True if no element of `set` is strictly subsumed by another and there
/// are no duplicate patterns.
bool IsMinimal(const PatternSet& set);

}  // namespace pcdb

#endif  // PCDB_PATTERN_MINIMIZE_H_
