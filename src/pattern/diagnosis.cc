#include "pattern/diagnosis.h"

#include <algorithm>

#include "pattern/annotated_eval.h"
#include "relational/lineage.h"

namespace pcdb {

std::string IncompletenessReport::ToString(size_t max_rows) const {
  std::string out;
  out += std::to_string(guaranteed_rows) + "/" +
         std::to_string(answer.num_rows()) +
         " answer rows guaranteed final\n";
  size_t shown = 0;
  for (const RowDiagnosis& d : rows) {
    if (d.guaranteed) continue;
    if (shown++ == max_rows) {
      out += "  ...\n";
      break;
    }
    out += "  row " + TupleToString(answer.row(d.row)) + ": unguaranteed";
    if (d.suspect_tables.empty()) {
      out += " (sources covered; guarantee lost through operators)";
    } else {
      out += "; consult:";
      for (const std::string& t : d.suspect_tables) out += " " + t;
    }
    out += "\n";
  }
  if (!suspect_counts.empty()) {
    out += "suspect tables:";
    for (const auto& [table, count] : suspect_counts) {
      out += " " + table + "(" + std::to_string(count) + ")";
    }
    out += "\n";
  }
  return out;
}

Result<IncompletenessReport> DiagnoseIncompleteness(
    const Expr& expr, const AnnotatedDatabase& adb) {
  // Query patterns are a set — row order independent — so they can be
  // computed schema-level while the rows come from the lineage run.
  PCDB_ASSIGN_OR_RETURN(PatternSet patterns,
                        ComputeQueryPatterns(expr, adb));
  PCDB_ASSIGN_OR_RETURN(LineageTable lineage,
                        EvaluateWithLineage(expr, adb.database()));

  IncompletenessReport report;
  report.answer = std::move(lineage.data);
  report.rows.reserve(report.answer.num_rows());
  for (size_t r = 0; r < report.answer.num_rows(); ++r) {
    RowDiagnosis diagnosis;
    diagnosis.row = r;
    diagnosis.guaranteed = patterns.AnySubsumesTuple(report.answer.row(r));
    if (diagnosis.guaranteed) {
      ++report.guaranteed_rows;
    } else {
      for (size_t s = 0; s < lineage.scans.size(); ++s) {
        const std::string& table_name = lineage.scans[s];
        PCDB_ASSIGN_OR_RETURN(const Table* table,
                              adb.database().GetTable(table_name));
        const Tuple& source = table->row(lineage.lineage[r][s]);
        if (!adb.patterns(table_name).AnySubsumesTuple(source)) {
          // Avoid duplicate table names (self-joins).
          if (std::find(diagnosis.suspect_tables.begin(),
                        diagnosis.suspect_tables.end(),
                        table_name) == diagnosis.suspect_tables.end()) {
            diagnosis.suspect_tables.push_back(table_name);
            ++report.suspect_counts[table_name];
          }
        }
      }
    }
    report.rows.push_back(std::move(diagnosis));
  }
  return report;
}

}  // namespace pcdb
