#include "pattern/linear_index.h"

#include <algorithm>

#include "common/logging.h"

namespace pcdb {

namespace {
// Uniform cost model shared by all indexes (see PatternIndex docs): a
// stored pattern cell costs the size of its optional<Value> plus vector
// bookkeeping.
constexpr size_t kBytesPerCell = sizeof(Pattern::Cell);
constexpr size_t kBytesPerPattern = sizeof(Pattern) + 16;
}  // namespace

void LinearIndex::Insert(const Pattern& p) {
  PCDB_CHECK(p.arity() == arity_);
  if (std::find(patterns_.begin(), patterns_.end(), p) == patterns_.end()) {
    patterns_.push_back(p);
  }
}

bool LinearIndex::Remove(const Pattern& p) {
  auto it = std::find(patterns_.begin(), patterns_.end(), p);
  if (it == patterns_.end()) return false;
  *it = std::move(patterns_.back());
  patterns_.pop_back();
  return true;
}

bool LinearIndex::HasSubsumer(const Pattern& p, bool strict) const {
  for (const Pattern& q : patterns_) {
    if (strict ? q.StrictlySubsumes(p) : q.Subsumes(p)) return true;
  }
  return false;
}

void LinearIndex::CollectSubsumed(const Pattern& p, bool strict,
                                  std::vector<Pattern>* out) const {
  for (const Pattern& q : patterns_) {
    if (strict ? p.StrictlySubsumes(q) : p.Subsumes(q)) out->push_back(q);
  }
}

void LinearIndex::CollectSubsumers(const Pattern& p, bool strict,
                                   std::vector<Pattern>* out) const {
  for (const Pattern& q : patterns_) {
    if (strict ? q.StrictlySubsumes(p) : q.Subsumes(p)) out->push_back(q);
  }
}

size_t LinearIndex::ApproxMemoryBytes() const {
  return patterns_.size() * (kBytesPerPattern + arity_ * kBytesPerCell);
}

}  // namespace pcdb
