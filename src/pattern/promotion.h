#ifndef PCDB_PATTERN_PROMOTION_H_
#define PCDB_PATTERN_PROMOTION_H_

#include <vector>

#include "pattern/algebra.h"
#include "pattern/pattern.h"
#include "relational/table.h"

namespace pcdb {

/// \brief Tuning knobs for the promotion search (§5.2). Each corresponds
/// to one of the paper's optimizations and can be disabled for ablation.
struct PromotionOptions {
  /// Test unifiability incrementally while a choice set is being built
  /// ("on-the-go") instead of only on complete sets.
  bool enable_pruning = true;
  /// Abandon a branch whose intermediate unifier is already more
  /// specific than a previously promoted pattern (its results would be
  /// redundant).
  bool enable_subsumption_detection = true;
  /// Iterate A-sets from smallest to largest (best search order found by
  /// the paper).
  bool smallest_sets_first = true;
  /// Let patterns with '*' at the join attribute stand in for any
  /// required value when assembling choice sets. Sound: if p with
  /// p[A]='*' holds, so does its specialization p[A/d].
  bool include_wildcard_patterns = true;
  /// Abort promotion when the budget is exceeded (0 = unlimited). The
  /// paper uses a 30 s timeout in Table 8.
  double timeout_millis = 0;
};

/// \brief Counters describing one promotion run (Table 8 / Appendix D).
struct PromotionStats {
  /// Initial patterns p0 with '*' at the join position (promotion
  /// attempts, both directions combined).
  size_t attempts = 0;
  /// Attempts abandoned because a required A-set was empty.
  size_t trivial_failures = 0;
  /// Choice sets that reached a complete unifiability test.
  size_t choice_sets_tested = 0;
  /// Choice sets that would be tested without any optimization
  /// (the product of required A-set sizes, summed over attempts).
  size_t naive_choice_sets = 0;
  /// Incremental pairwise unification tests performed.
  size_t unification_steps = 0;
  /// Promoted patterns emitted (before minimization).
  size_t promoted = 0;
  /// True if the timeout fired; the result is then partial but sound.
  bool timed_out = false;

  void MergeFrom(const PromotionStats& other);
};

/// \brief Promotes completeness patterns across one side of an equijoin
/// (§5.1).
///
/// For every pattern p0 of the *source* side with '*' at its join
/// attribute, the allowable domain Δ is read from the source data (the
/// distinct join-attribute values of source rows matching p0 — all
/// values that can ever appear, since p0 asserts completeness). Choice
/// sets — one *target* pattern per value of Δ — are tested for
/// unifiability after wildcarding the join attribute; each unifier u
/// yields the promoted target-side pattern u, valid for the join result
/// in combination with p0.
///
/// Returns (unifier, index of p0 in `source_patterns`) pairs; the caller
/// concatenates them in join column order. Both pattern sets must match
/// their tables' schemas positionally.
std::vector<std::pair<Pattern, size_t>> PromoteOneDirection(
    const PatternSet& source_patterns, size_t source_attr,
    const Table& source_data, const PatternSet& target_patterns,
    size_t target_attr, const PromotionOptions& options = {},
    PromotionStats* stats = nullptr);

/// \brief The instance-aware pattern join ⋈̂ (§5.1): the schema-level
/// pattern join plus promotion in both directions.
///
/// `left_data` and `right_data` are the data relations the pattern sets
/// describe (the join *inputs*, E1(D) and E2(D)). The result is
/// deduplicated but not minimized; promoted patterns typically subsume
/// many regular join outputs, so minimizing afterwards shrinks the
/// result (Table 9).
PatternSet InstanceAwarePatternJoin(
    const PatternSet& left, size_t attr_a, const Table& left_data,
    const PatternSet& right, size_t attr_b, const Table& right_data,
    const PromotionOptions& options = {}, PromotionStats* stats = nullptr,
    PatternJoinStrategy strategy = PatternJoinStrategy::kPartitionedHashJoin);

}  // namespace pcdb

#endif  // PCDB_PATTERN_PROMOTION_H_
