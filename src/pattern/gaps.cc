#include "pattern/gaps.h"

#include "pattern/discrimination_tree.h"

namespace pcdb {
namespace {

/// DFS specialization: find the maximal patterns non-unifiable with
/// every asserted pattern. From the current candidate, pick the first
/// asserted pattern still unifiable with it and branch over all ways of
/// blocking it (a domain value different from its constant, substituted
/// into a wildcard position of the candidate).
class GapSearch {
 public:
  GapSearch(const PatternSet& asserted,
            const std::vector<std::vector<Value>>& domains, size_t max_gaps)
      : asserted_(asserted),
        domains_(domains),
        max_gaps_(max_gaps),
        gaps_(domains.size()) {}

  Status Run() {
    PCDB_RETURN_NOT_OK(Descend(Pattern::AllWildcards(domains_.size())));
    return Status::OK();
  }

  PatternSet TakeGaps() { return PatternSet(gaps_.Contents()); }

 private:
  Status Descend(const Pattern& candidate) {
    if (++visited_ > max_gaps_ * 64) {
      return Status::OutOfRange("coverage-gap enumeration budget exceeded");
    }
    // Already inside a known maximal gap: nothing new below.
    if (gaps_.HasSubsumer(candidate, /*strict=*/false)) return Status::OK();
    const Pattern* blocker = nullptr;
    for (const Pattern& q : asserted_) {
      if (q.UnifiableWith(candidate)) {
        blocker = &q;
        break;
      }
    }
    if (blocker == nullptr) {
      // Disjoint from every asserted pattern: a gap. Keep the set
      // minimal (maximal gaps only).
      if (gaps_.size() >= max_gaps_) {
        return Status::OutOfRange(
            "more than max_gaps maximal coverage gaps");
      }
      std::vector<Pattern> covered;
      gaps_.CollectSubsumed(candidate, /*strict=*/true, &covered);
      for (const Pattern& g : covered) gaps_.Remove(g);
      gaps_.Insert(candidate);
      return Status::OK();
    }
    // Block the blocker at one of its constant positions where the
    // candidate still has a wildcard. If there is no such position, the
    // blocker's constants all coincide with the candidate's — every
    // specialization stays unifiable and this branch is dead.
    for (size_t i = 0; i < candidate.arity(); ++i) {
      if (!candidate.IsWildcard(i) || blocker->IsWildcard(i)) continue;
      for (const Value& d : domains_[i]) {
        if (d == blocker->value(i)) continue;
        PCDB_RETURN_NOT_OK(Descend(candidate.WithValue(i, d)));
      }
    }
    return Status::OK();
  }

  const PatternSet& asserted_;
  const std::vector<std::vector<Value>>& domains_;
  size_t max_gaps_;
  size_t visited_ = 0;
  DiscriminationTree gaps_;
};

}  // namespace

Result<PatternSet> CoverageGaps(const PatternSet& asserted,
                                const std::vector<std::vector<Value>>& domains,
                                size_t max_gaps) {
  for (const Pattern& p : asserted) {
    if (p.arity() != domains.size()) {
      return Status::InvalidArgument(
          "pattern arity does not match the number of domains");
    }
  }
  GapSearch search(asserted, domains, max_gaps);
  PCDB_RETURN_NOT_OK(search.Run());
  return search.TakeGaps();
}

Result<PatternSet> TableCoverageGaps(const AnnotatedDatabase& adb,
                                     const std::string& table,
                                     size_t max_gaps) {
  PCDB_ASSIGN_OR_RETURN(const Table* stored, adb.database().GetTable(table));
  std::vector<std::vector<Value>> domains;
  domains.reserve(stored->schema().arity());
  for (size_t c = 0; c < stored->schema().arity(); ++c) {
    const std::vector<Value>* registered =
        adb.domains().Lookup(stored->schema().column(c).name);
    domains.push_back(registered != nullptr ? *registered
                                            : stored->DistinctValues(c));
  }
  return CoverageGaps(adb.patterns(table), domains, max_gaps);
}

}  // namespace pcdb
