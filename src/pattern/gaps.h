#ifndef PCDB_PATTERN_GAPS_H_
#define PCDB_PATTERN_GAPS_H_

#include <vector>

#include "common/result.h"
#include "pattern/annotated.h"

namespace pcdb {

/// \brief Coverage-gap analysis: the maximal slices of a table that no
/// completeness pattern touches.
///
/// The dual of the metadata: while patterns describe where data is
/// guaranteed final, the gaps describe where *nothing* is guaranteed —
/// the slices an operator should prioritize when adding sources or
/// punctuations. A pattern g is a gap iff its slice is disjoint from
/// every asserted pattern's slice, i.e. g is non-unifiable with each of
/// them; CoverageGaps returns the minimal set of maximal such patterns.
///
/// Requires finite domains for the attributes used to block asserted
/// patterns (like zombie generation, Appendix E); attributes without a
/// registered domain cannot be specialized, which may make some gaps
/// unrepresentable — those are simply not reported (the result is
/// always sound: every reported slice is fully uncovered).
///
/// The gap set can be exponential in the worst case; enumeration stops
/// with OutOfRange after `max_gaps` results.
[[nodiscard]] Result<PatternSet> CoverageGaps(const PatternSet& asserted,
                                const std::vector<std::vector<Value>>& domains,
                                size_t max_gaps = 10000);

/// Convenience overload for a table of `adb`: domains are looked up in
/// the DomainRegistry by column name; columns without a registered
/// domain fall back to their active domain (the values present in the
/// data) — sound for reporting, though gaps involving never-seen values
/// are then missed.
[[nodiscard]] Result<PatternSet> TableCoverageGaps(const AnnotatedDatabase& adb,
                                     const std::string& table,
                                     size_t max_gaps = 10000);

}  // namespace pcdb

#endif  // PCDB_PATTERN_GAPS_H_
