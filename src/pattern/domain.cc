#include "pattern/domain.h"

namespace pcdb {

void DomainRegistry::SetDomain(const std::string& column,
                               std::vector<Value> values) {
  domains_.insert_or_assign(column, std::move(values));
}

const std::vector<Value>* DomainRegistry::Lookup(
    const std::string& column) const {
  auto it = domains_.find(column);
  if (it != domains_.end()) return &it->second;
  size_t dot = column.rfind('.');
  if (dot != std::string::npos) {
    it = domains_.find(column.substr(dot + 1));
    if (it != domains_.end()) return &it->second;
  }
  return nullptr;
}

}  // namespace pcdb
