#include "pattern/promotion.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"
#include "common/timer.h"
#include "pattern/discrimination_tree.h"
#include "pattern/minimize.h"

namespace pcdb {

void PromotionStats::MergeFrom(const PromotionStats& other) {
  attempts += other.attempts;
  trivial_failures += other.trivial_failures;
  choice_sets_tested += other.choice_sets_tested;
  naive_choice_sets += other.naive_choice_sets;
  unification_steps += other.unification_steps;
  promoted += other.promoted;
  timed_out = timed_out || other.timed_out;
}

namespace {

/// Depth-first enumeration of choice sets for one initial pattern p0.
class ChoiceSetSearch {
 public:
  ChoiceSetSearch(const std::vector<std::vector<Pattern>>& a_sets,
                  size_t target_arity, const PromotionOptions& options,
                  const WallTimer& timer, PromotionStats* stats)
      : a_sets_(a_sets),
        target_arity_(target_arity),
        options_(options),
        timer_(timer),
        stats_(stats),
        result_index_(target_arity) {}

  /// Runs the search; returns the unifiers of all unifiable choice sets
  /// (with the join attribute already wildcarded by the caller's A-set
  /// preparation). Unifiers subsumed by earlier ones are skipped when
  /// subsumption detection is on.
  std::vector<Pattern> Run() {
    if (options_.enable_pruning) {
      Descend(0, Pattern::AllWildcards(target_arity_));
    } else {
      std::vector<const Pattern*> choice;
      DescendUnpruned(0, &choice);
    }
    return std::move(results_);
  }

  bool timed_out() const { return timed_out_; }

 private:
  bool CheckTimeout() {
    if (options_.timeout_millis <= 0) return false;
    if (++timeout_probe_ % 64 != 0) return false;
    if (timer_.ElapsedMillis() > options_.timeout_millis) {
      timed_out_ = true;
    }
    return timed_out_;
  }

  void Emit(const Pattern& unifier) {
    if (options_.enable_subsumption_detection) {
      // Redundant results were pruned already; still guard against
      // duplicates and subsumption from sibling branches.
      if (result_index_.HasSubsumer(unifier, /*strict=*/false)) return;
    } else {
      // Baseline mode keeps every distinct unifier (exact dedupe only).
      if (std::find(results_.begin(), results_.end(), unifier) !=
          results_.end()) {
        return;
      }
    }
    result_index_.Insert(unifier);
    results_.push_back(unifier);
  }

  void Descend(size_t level, const Pattern& unifier) {
    if (timed_out_ || CheckTimeout()) return;
    if (level == a_sets_.size()) {
      if (stats_ != nullptr) ++stats_->choice_sets_tested;
      Emit(unifier);
      return;
    }
    for (const Pattern& candidate : a_sets_[level]) {
      if (stats_ != nullptr) ++stats_->unification_steps;
      if (!unifier.UnifiableWith(candidate)) continue;
      Pattern next = unifier.UnifyWith(candidate);
      if (options_.enable_subsumption_detection &&
          result_index_.HasSubsumer(next, /*strict=*/false)) {
        // A promoted pattern already subsumes the intermediate unifier:
        // every completion of this branch is redundant.
        continue;
      }
      Descend(level + 1, next);
      if (timed_out_) return;
    }
  }

  void DescendUnpruned(size_t level, std::vector<const Pattern*>* choice) {
    if (timed_out_ || CheckTimeout()) return;
    if (level == a_sets_.size()) {
      if (stats_ != nullptr) ++stats_->choice_sets_tested;
      // Unifiability test over the complete set.
      Pattern unifier = Pattern::AllWildcards(target_arity_);
      for (const Pattern* p : *choice) {
        if (stats_ != nullptr) ++stats_->unification_steps;
        if (!unifier.UnifiableWith(*p)) return;
        unifier = unifier.UnifyWith(*p);
      }
      Emit(unifier);
      return;
    }
    for (const Pattern& candidate : a_sets_[level]) {
      choice->push_back(&candidate);
      DescendUnpruned(level + 1, choice);
      choice->pop_back();
      if (timed_out_) return;
    }
  }

  const std::vector<std::vector<Pattern>>& a_sets_;
  size_t target_arity_;
  const PromotionOptions& options_;
  const WallTimer& timer_;
  PromotionStats* stats_;
  std::vector<Pattern> results_;
  /// Mirror of results_ supporting fast subsumption checks for pruning.
  DiscriminationTree result_index_;
  size_t timeout_probe_ = 0;
  bool timed_out_ = false;
};

}  // namespace

std::vector<std::pair<Pattern, size_t>> PromoteOneDirection(
    const PatternSet& source_patterns, size_t source_attr,
    const Table& source_data, const PatternSet& target_patterns,
    size_t target_attr, const PromotionOptions& options,
    PromotionStats* stats) {
  std::vector<std::pair<Pattern, size_t>> promoted;
  if (target_patterns.empty()) return promoted;
  const size_t target_arity = target_patterns[0].arity();
  WallTimer timer;

  // Allowable domains only need the distinct source rows; join results
  // in particular repeat rows heavily.
  std::unordered_set<Tuple, TupleHash> distinct_rows(
      source_data.rows().begin(), source_data.rows().end());

  // Split the target patterns into A-sets keyed by their join-attribute
  // constant; wildcard patterns can stand in for any value. The join
  // attribute is wildcarded up front: choice-set members are compared on
  // the remaining positions only. Each A-set is then reduced to its
  // maximal remainders — choosing a strictly subsumed remainder can only
  // produce a strictly subsumed unifier, so non-maximal members never
  // contribute maximal promoted patterns. (This also deduplicates
  // remainders that differed only in the join constant, which collapses
  // the choice-set space by orders of magnitude.)
  std::unordered_map<Value, PatternSet, ValueHash> raw_a_sets;
  PatternSet wildcard_set;
  for (const Pattern& p : target_patterns) {
    PCDB_CHECK(target_attr < p.arity());
    if (p.IsWildcard(target_attr)) {
      if (options.include_wildcard_patterns) wildcard_set.Add(p);
    } else {
      raw_a_sets[p.value(target_attr)].Add(p.WithWildcard(target_attr));
    }
  }
  std::unordered_map<Value, std::vector<Pattern>, ValueHash> a_sets;
  for (auto& [value, set] : raw_a_sets) {
    for (const Pattern& w : wildcard_set) set.Add(w);
    a_sets.emplace(value, Minimize(set).patterns());
  }
  std::vector<Pattern> wildcard_only = Minimize(wildcard_set).patterns();

  for (size_t p0_index = 0; p0_index < source_patterns.size(); ++p0_index) {
    const Pattern& p0 = source_patterns[p0_index];
    PCDB_CHECK(source_attr < p0.arity());
    // Promotion attempts start from source patterns with '*' at the join
    // position: only those bound the domain of the join attribute.
    if (!p0.IsWildcard(source_attr)) continue;
    if (stats != nullptr) ++stats->attempts;

    // Allowable domain Δ: all join-attribute values of source rows
    // matching p0 — by p0's completeness, no other value can ever join.
    std::unordered_set<Value, ValueHash> delta;
    for (const Tuple& t : distinct_rows) {
      if (p0.SubsumesTuple(t)) delta.insert(t[source_attr]);
    }

    // Assemble the required A-sets. A domain value without constant
    // patterns is covered by the wildcard stand-ins alone (when
    // enabled).
    std::vector<std::vector<Pattern>> required;
    required.reserve(delta.size());
    bool trivially_failed = false;
    size_t naive = 1;
    for (const Value& d : delta) {
      auto it = a_sets.find(d);
      const std::vector<Pattern>& set =
          it == a_sets.end() ? wildcard_only : it->second;
      if (set.empty()) {
        trivially_failed = true;
        break;
      }
      // Saturating multiply: the naive choice-set count is astronomical
      // for high-cardinality attributes and only reported for context.
      constexpr size_t kNaiveCap = size_t{1} << 62;
      naive = naive > kNaiveCap / set.size() ? kNaiveCap
                                             : naive * set.size();
      required.push_back(set);
    }
    if (trivially_failed) {
      if (stats != nullptr) ++stats->trivial_failures;
      continue;
    }
    if (stats != nullptr) stats->naive_choice_sets += naive;
    if (options.smallest_sets_first) {
      std::sort(required.begin(), required.end(),
                [](const std::vector<Pattern>& a,
                   const std::vector<Pattern>& b) {
                  return a.size() < b.size();
                });
    }

    ChoiceSetSearch search(required, target_arity, options, timer, stats);
    std::vector<Pattern> unifiers = search.Run();
    for (Pattern& u : unifiers) {
      promoted.emplace_back(std::move(u), p0_index);
    }
    if (stats != nullptr) stats->promoted += unifiers.size();
    if (search.timed_out()) {
      if (stats != nullptr) stats->timed_out = true;
      break;
    }
  }
  return promoted;
}

PatternSet InstanceAwarePatternJoin(const PatternSet& left, size_t attr_a,
                                    const Table& left_data,
                                    const PatternSet& right, size_t attr_b,
                                    const Table& right_data,
                                    const PromotionOptions& options,
                                    PromotionStats* stats,
                                    PatternJoinStrategy strategy) {
  PatternSet out = PatternJoin(left, attr_a, right, attr_b, strategy);
  std::unordered_set<Pattern, PatternHash> seen(out.begin(), out.end());
  auto add = [&](Pattern p) {
    if (seen.insert(p).second) out.Add(std::move(p));
  };

  // Promote left-side patterns using right-side initial patterns:
  // result pattern = unifier(left) · p0(right).
  for (auto& [unifier, p0_index] : PromoteOneDirection(
           right, attr_b, right_data, left, attr_a, options, stats)) {
    add(unifier.Concat(right[p0_index]));
  }
  // And the reverse direction: p0(left) · unifier(right).
  for (auto& [unifier, p0_index] : PromoteOneDirection(
           left, attr_a, left_data, right, attr_b, options, stats)) {
    add(left[p0_index].Concat(unifier));
  }
  return out;
}

}  // namespace pcdb
