#ifndef PCDB_PATTERN_PATTERN_H_
#define PCDB_PATTERN_PATTERN_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/value.h"
#include "relational/schema.h"
#include "relational/tuple.h"

namespace pcdb {

/// \brief A completeness pattern (§3.2): a tuple of constants and the
/// wildcard symbol "*".
///
/// A base completeness pattern (p, R) asserts that every real-world tuple
/// of R that matches p is present in the database: the p-part of R is
/// closed-world, the rest open-world. Cells are std::optional<Value>;
/// std::nullopt is the wildcard.
class Pattern {
 public:
  using Cell = std::optional<Value>;

  /// The wildcard cell.
  static Cell Wildcard() { return std::nullopt; }

  Pattern() = default;
  explicit Pattern(std::vector<Cell> cells) : cells_(std::move(cells)) {}

  /// The most general pattern (*, *, ..., *) of the given arity.
  static Pattern AllWildcards(size_t arity) {
    return Pattern(std::vector<Cell>(arity));
  }

  /// Builds a pattern from display strings: "*" becomes the wildcard, any
  /// other field is parsed as a constant of the column's type. This is
  /// how metadata rows such as (Mon, 2, *, *) are written in tables.
  [[nodiscard]] static Result<Pattern> Parse(const std::vector<std::string>& fields,
                               const Schema& schema);

  /// A pattern matching exactly one tuple (tuples are a special case of
  /// patterns, §3.2).
  static Pattern FromTuple(const Tuple& t);

  size_t arity() const { return cells_.size(); }
  bool IsWildcard(size_t i) const { return !cells_[i].has_value(); }
  /// The constant at position i; call only when !IsWildcard(i).
  const Value& value(size_t i) const { return *cells_[i]; }
  const Cell& cell(size_t i) const { return cells_[i]; }
  const std::vector<Cell>& cells() const { return cells_; }

  size_t NumWildcards() const;
  size_t NumConstants() const { return arity() - NumWildcards(); }

  /// True if every cell is the wildcard.
  bool IsAllWildcards() const { return NumWildcards() == arity(); }

  /// In-place overwrite of position i. For scratch patterns on probe
  /// hot paths (hash_index generalization enumeration) where the
  /// copy-per-mask of WithWildcard would dominate; most callers want the
  /// immutable With* builders below.
  void SetCell(size_t i, Cell cell) { cells_[i] = std::move(cell); }

  /// p[A/∗] — copy with position i replaced by the wildcard (§4.1.1).
  Pattern WithWildcard(size_t i) const;

  /// Copy with position i replaced by a constant.
  Pattern WithValue(size_t i, Value v) const;

  /// p[A ↔ B] — copy with the cells at i and j swapped (§4.1.3).
  Pattern WithSwapped(size_t i, size_t j) const;

  /// Copy with position i removed (the π_{¬A} projection of a pattern).
  Pattern WithoutPosition(size_t i) const;

  /// Concatenation p · q (used by the pattern join and promotion).
  Pattern Concat(const Pattern& other) const;

  /// Subsumption (§3.2): this pattern subsumes `other` if at every
  /// position they agree or this pattern has the wildcard. Subsumption
  /// coincides with the "more general than" order on patterns.
  bool Subsumes(const Pattern& other) const;

  /// True if `Subsumes(other)` and the patterns differ.
  bool StrictlySubsumes(const Pattern& other) const {
    return Subsumes(other) && !(*this == other);
  }

  /// True if the data tuple `t` matches this pattern (t is subsumed).
  bool SubsumesTuple(const Tuple& t) const;

  /// True if some tuple can match both patterns, i.e. they agree on every
  /// position where both have constants. The unifier of compatible
  /// patterns keeps each position's constant if either side has one.
  bool UnifiableWith(const Pattern& other) const;

  /// Most general pattern subsumed by both (defined when UnifiableWith).
  Pattern UnifyWith(const Pattern& other) const;

  /// "(Mon, 2, *, *)".
  std::string ToString() const;

  bool operator==(const Pattern& other) const {
    return cells_ == other.cells_;
  }
  bool operator!=(const Pattern& other) const { return !(*this == other); }
  /// Arbitrary total order (for sorted containers and deterministic
  /// output): wildcard sorts before any constant.
  bool operator<(const Pattern& other) const;

  size_t Hash() const;

 private:
  std::vector<Cell> cells_;
};

std::ostream& operator<<(std::ostream& os, const Pattern& p);

struct PatternHash {
  size_t operator()(const Pattern& p) const { return p.Hash(); }
};

/// \brief A set of completeness patterns over one (implicit) schema: the
/// metadata relation P accompanying a data relation R (§4.1).
///
/// Stored as a vector for cheap iteration; Add does not deduplicate (use
/// AddUnique or Minimize from minimize.h). All patterns in a set must
/// have the same arity.
class PatternSet {
 public:
  PatternSet() = default;
  explicit PatternSet(std::vector<Pattern> patterns)
      : patterns_(std::move(patterns)) {}

  size_t size() const { return patterns_.size(); }
  bool empty() const { return patterns_.empty(); }
  const Pattern& operator[](size_t i) const { return patterns_[i]; }
  const std::vector<Pattern>& patterns() const { return patterns_; }

  std::vector<Pattern>::const_iterator begin() const {
    return patterns_.begin();
  }
  std::vector<Pattern>::const_iterator end() const { return patterns_.end(); }

  void Add(Pattern p) { patterns_.push_back(std::move(p)); }
  /// Adds `p` unless an identical pattern is already present. Linear.
  void AddUnique(Pattern p);
  void Reserve(size_t n) { patterns_.reserve(n); }
  void Clear() { patterns_.clear(); }

  bool Contains(const Pattern& p) const;

  /// p ⪯ P (§4.1): true if some member subsumes `p`.
  bool AnySubsumes(const Pattern& p) const;

  /// True if the data tuple matches some member.
  bool AnySubsumesTuple(const Tuple& t) const;

  /// Stable sort for deterministic comparison/output.
  void Sort();

  /// True if both sets contain the same patterns (as sets).
  bool SetEquals(const PatternSet& other) const;

  /// Multi-line rendering, one pattern per line.
  std::string ToString() const;

 private:
  std::vector<Pattern> patterns_;
};

}  // namespace pcdb

#endif  // PCDB_PATTERN_PATTERN_H_
